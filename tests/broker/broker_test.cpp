#include "broker/broker.h"

#include <gtest/gtest.h>

namespace bdps {
namespace {

/// Star around broker 0: publisher behind 0, subscribers behind 1, 2 and on
/// 0 itself.
struct StarRig {
  Topology topo;
  std::vector<Subscription> subs;
  std::unique_ptr<RoutingFabric> fabric;
  Strategy strategy{StrategyKind::kFifo};

  StarRig() {
    topo.graph.resize(3);
    topo.graph.add_bidirectional(0, 1, LinkParams{50.0, 10.0});
    topo.graph.add_bidirectional(0, 2, LinkParams{80.0, 10.0});
    topo.publisher_edges = {0};
    topo.subscriber_homes = {1, 2, 0};

    for (int s = 0; s < 3; ++s) {
      Subscription sub;
      sub.subscriber = s;
      sub.home = topo.subscriber_homes[s];
      sub.allowed_delay = seconds(30.0);
      sub.price = 1.0 + s;
      subs.push_back(sub);  // Wildcard filters.
    }
    fabric = std::make_unique<RoutingFabric>(topo, subs);
  }
};

std::shared_ptr<const Message> make_message(double size_kb = 50.0) {
  return std::make_shared<Message>(1, 0, 0.0, size_kb,
                                   std::vector<Attribute>{});
}

TEST(Broker, CreatesOneQueuePerDownstreamNeighbour) {
  const StarRig rig;
  const Broker broker(0, rig.fabric.get(), &rig.topo.graph, &rig.strategy);
  EXPECT_NE(broker.slot_of(1), Broker::kNoSlot);
  EXPECT_NE(broker.slot_of(2), Broker::kNoSlot);
  EXPECT_EQ(broker.slot_of(0), Broker::kNoSlot);
  EXPECT_EQ(broker.queues().size(), 2u);
}

TEST(Broker, LeafBrokerHasNoQueues) {
  const StarRig rig;
  const Broker broker(1, rig.fabric.get(), &rig.topo.graph, &rig.strategy);
  EXPECT_TRUE(broker.queues().empty());
}

TEST(Broker, ProcessFansOutPerNeighbourAndDeliversLocally) {
  const StarRig rig;
  Broker broker(0, rig.fabric.get(), &rig.topo.graph, &rig.strategy);
  const Broker::FanOut fanout = broker.process(make_message(), 10.0);

  ASSERT_EQ(fanout.local.size(), 1u);
  EXPECT_EQ(fanout.local[0]->subscription->subscriber, 2);

  ASSERT_EQ(fanout.sendable.size(), 2u);  // Both links were idle.
  // Fan-out names queue slots; slots are ascending-neighbour ranks.
  EXPECT_EQ(broker.queue_at(fanout.sendable[0]).neighbor(), 1);
  EXPECT_EQ(broker.queue_at(fanout.sendable[1]).neighbor(), 2);
  EXPECT_EQ(broker.queue_at(broker.slot_of(1)).size(), 1u);
  EXPECT_EQ(broker.queue_at(broker.slot_of(2)).size(), 1u);
  // Each copy carries exactly the subscriptions behind that neighbour.
  EXPECT_EQ(broker.queue_at(broker.slot_of(1))
                .messages()[0]
                .targets[0]
                ->subscription->subscriber,
            0);
  EXPECT_EQ(broker.queue_at(broker.slot_of(2))
                .messages()[0]
                .targets[0]
                ->subscription->subscriber,
            1);
}

TEST(Broker, BusyLinkIsNotReportedSendable) {
  const StarRig rig;
  Broker broker(0, rig.fabric.get(), &rig.topo.graph, &rig.strategy);
  broker.queue_at(broker.slot_of(1)).set_link_busy(true);
  const Broker::FanOut fanout = broker.process(make_message(), 0.0);
  ASSERT_EQ(fanout.sendable.size(), 1u);
  EXPECT_EQ(broker.queue_at(fanout.sendable[0]).neighbor(), 2);
  // Still enqueued, just not started.
  EXPECT_EQ(broker.queue_at(broker.slot_of(1)).size(), 1u);
}

TEST(Broker, RunningAverageMessageSize) {
  const StarRig rig;
  Broker broker(0, rig.fabric.get(), &rig.topo.graph, &rig.strategy);
  EXPECT_DOUBLE_EQ(broker.average_message_size_kb(), 0.0);
  broker.process(make_message(40.0), 0.0);
  broker.process(make_message(60.0), 0.0);
  EXPECT_DOUBLE_EQ(broker.average_message_size_kb(), 50.0);
}

TEST(Broker, ContextUsesBelievedLinkForFt) {
  const StarRig rig;
  Broker broker(0, rig.fabric.get(), &rig.topo.graph, &rig.strategy);
  broker.process(make_message(50.0), 0.0);
  const SchedulingContext context =
      broker.context_at(broker.slot_of(1), 123.0, 2.0);
  EXPECT_DOUBLE_EQ(context.now, 123.0);
  EXPECT_DOUBLE_EQ(context.processing_delay, 2.0);
  // FT = avg size (50 KB) * believed mean (50 ms/KB) = 2500 ms.
  EXPECT_DOUBLE_EQ(context.head_of_line_estimate, 2500.0);
}

TEST(Broker, PublisherMaskFiltersForeignPublishers) {
  // Two publishers, one subscriber; the topology forces distinct paths, so
  // each intermediate broker must only forward its own publisher's traffic.
  Topology topo;
  topo.graph.resize(4);
  topo.graph.add_bidirectional(0, 1, LinkParams{50.0, 10.0});
  topo.graph.add_bidirectional(1, 2, LinkParams{50.0, 10.0});
  topo.graph.add_bidirectional(3, 2, LinkParams{50.0, 10.0});
  topo.publisher_edges = {0, 3};
  topo.subscriber_homes = {2};
  Subscription sub;
  sub.subscriber = 0;
  sub.home = 2;
  sub.allowed_delay = seconds(30.0);
  const RoutingFabric fabric(topo, {sub});

  const Strategy strategy{StrategyKind::kFifo};
  Broker broker1(1, &fabric, &topo.graph, &strategy);
  // Publisher 0's message flows through broker 1 ...
  const auto from_p0 = broker1.process(
      std::make_shared<Message>(1, 0, 0.0, 50.0, std::vector<Attribute>{}),
      0.0);
  EXPECT_EQ(broker1.queue_at(broker1.slot_of(2)).size(), 1u);
  EXPECT_EQ(from_p0.sendable.size(), 1u);
  // ... but publisher 1's must not be forwarded by broker 1 even though the
  // subscription is in its table.
  const auto from_p1 = broker1.process(
      std::make_shared<Message>(2, 1, 0.0, 50.0, std::vector<Attribute>{}),
      0.0);
  EXPECT_TRUE(from_p1.sendable.empty());
  EXPECT_EQ(broker1.queue_at(broker1.slot_of(2)).size(), 1u);  // Unchanged.
}

TEST(OutputQueue, TakeNextRemovesChosenMessage) {
  const StarRig rig;
  Broker broker(0, rig.fabric.get(), &rig.topo.graph, &rig.strategy);
  broker.process(make_message(), 0.0);
  broker.process(make_message(), 0.0);
  OutputQueue& queue = broker.queue_at(broker.slot_of(1));
  ASSERT_EQ(queue.size(), 2u);

  PurgeStats stats;
  const auto taken = queue.take_next(
      broker.context_at(broker.slot_of(1), 0.0, 2.0), PurgePolicy{}, &stats);
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(queue.size(), 1u);
}

TEST(OutputQueue, TakeNextPurgesFirst) {
  const StarRig rig;
  Broker broker(0, rig.fabric.get(), &rig.topo.graph, &rig.strategy);
  // A message published 31 s ago is already past the 30 s bound.
  auto stale = std::make_shared<Message>(9, 0, -seconds(31.0), 50.0,
                                         std::vector<Attribute>{});
  broker.process(stale, 0.0);
  OutputQueue& queue = broker.queue_at(broker.slot_of(1));
  ASSERT_EQ(queue.size(), 1u);

  PurgeStats stats;
  const auto taken = queue.take_next(
      broker.context_at(broker.slot_of(1), 0.0, 2.0), PurgePolicy{}, &stats);
  EXPECT_FALSE(taken.has_value());
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_TRUE(queue.empty());
}

TEST(OutputQueue, BelievedLinkIsAdjustable) {
  const Strategy strategy{StrategyKind::kFifo};
  OutputQueue queue(1, 0, LinkParams{50.0, 20.0}, &strategy);
  EXPECT_DOUBLE_EQ(queue.head_of_line_estimate(50.0), 2500.0);
  queue.set_believed_link(LinkParams{80.0, 20.0});
  EXPECT_DOUBLE_EQ(queue.head_of_line_estimate(50.0), 4000.0);
}

}  // namespace
}  // namespace bdps
