#include "runtime/live_network.h"

#include <gtest/gtest.h>

namespace bdps {
namespace {

/// Small rig running at 200x real time: a line 0 - 1 - 2 with fast links so
/// tests finish in tens of real milliseconds.
struct LiveRig {
  Topology topo;
  std::unique_ptr<RoutingFabric> fabric;
  std::unique_ptr<const Strategy> scheduler;

  explicit LiveRig(TimeMs deadline = seconds(30.0),
                   StrategyKind strategy = StrategyKind::kEb) {
    topo.graph.resize(3);
    topo.graph.add_bidirectional(0, 1, LinkParams{2.0, 0.2});
    topo.graph.add_bidirectional(1, 2, LinkParams{2.0, 0.2});
    topo.publisher_edges = {0};
    topo.subscriber_homes = {2, 2};
    std::vector<Subscription> subs;
    for (int s = 0; s < 2; ++s) {
      Subscription sub;
      sub.subscriber = s;
      sub.home = 2;
      sub.allowed_delay = deadline;
      sub.price = 2.0;
      subs.push_back(sub);
    }
    fabric = std::make_unique<RoutingFabric>(topo, std::move(subs));
    scheduler = make_strategy(strategy);
  }

  LiveOptions options() const {
    LiveOptions opt;
    opt.processing_delay = 1.0;
    opt.speedup = 200.0;
    return opt;
  }

  static Message message_template(TimeMs deadline = kNoDeadline) {
    return Message(0, 0, 0.0, 50.0, {{"A1", Value(1.0)}}, deadline);
  }
};

TEST(LiveNetwork, DeliversPublishedMessagesToAllSubscribers) {
  LiveRig rig;
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.scheduler.get(),
                  rig.options());
  net.start();
  for (int i = 0; i < 5; ++i) {
    net.publish(0, LiveRig::message_template());
  }
  net.drain();
  net.stop();

  // 5 messages x 2 subscribers.
  EXPECT_EQ(net.stats().deliveries().size(), 10u);
  EXPECT_EQ(net.stats().valid_deliveries(), 10u);
  EXPECT_DOUBLE_EQ(net.stats().earning(), 20.0);
  // Each message was received by 3 brokers.
  EXPECT_EQ(net.stats().receptions(), 15u);
}

TEST(LiveNetwork, DeliveryDelaysAreMeasuredOnTheScaledClock) {
  LiveRig rig;
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.scheduler.get(),
                  rig.options());
  net.start();
  net.publish(0, LiveRig::message_template());
  net.drain();
  net.stop();

  ASSERT_EQ(net.stats().deliveries().size(), 2u);
  for (const LiveDelivery& d : net.stats().deliveries()) {
    // Two ~100 ms (sim) transmissions + processing: the delay must be in a
    // plausible simulated-milliseconds band, not wall-clock units.
    EXPECT_GT(d.delay, 100.0);
    EXPECT_LT(d.delay, 5000.0);
    EXPECT_TRUE(d.valid);
  }
}

TEST(LiveNetwork, ExpiredDeadlinesAreRecordedInvalid) {
  // 1 ms allowed delay cannot be met (each hop takes ~100 simulated ms),
  // but with purging disabled the copies still travel and deliver late.
  LiveRig rig(/*deadline=*/1.0);
  LiveOptions opt = rig.options();
  opt.purge.epsilon = 0.0;
  opt.purge.drop_expired = false;
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.scheduler.get(), opt);
  net.start();
  net.publish(0, LiveRig::message_template());
  net.drain();
  net.stop();
  EXPECT_EQ(net.stats().deliveries().size(), 2u);
  EXPECT_EQ(net.stats().valid_deliveries(), 0u);
  EXPECT_DOUBLE_EQ(net.stats().earning(), 0.0);
}

TEST(LiveNetwork, PurgeDropsHopelessTraffic) {
  LiveRig rig(/*deadline=*/1.0);  // Paper-style purge enabled by default.
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.scheduler.get(),
                  rig.options());
  net.start();
  for (int i = 0; i < 3; ++i) net.publish(0, LiveRig::message_template());
  net.drain();
  net.stop();
  EXPECT_EQ(net.stats().deliveries().size(), 0u);
  EXPECT_EQ(net.stats().purged(), 3u);
}

TEST(LiveNetwork, StopIsIdempotentAndDestructorSafe) {
  LiveRig rig;
  {
    LiveNetwork net(&rig.topo, rig.fabric.get(), rig.scheduler.get(),
                    rig.options());
    net.start();
    net.publish(0, LiveRig::message_template());
    net.drain();
    net.stop();
    net.stop();  // Second stop must be a no-op.
  }                // Destructor runs after explicit stop.
  SUCCEED();
}

TEST(LiveNetwork, ManyConcurrentPublishesAllAccountedFor) {
  LiveRig rig;
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.scheduler.get(),
                  rig.options());
  net.start();
  constexpr int kMessages = 40;
  for (int i = 0; i < kMessages; ++i) {
    net.publish(0, LiveRig::message_template());
  }
  net.drain();
  net.stop();
  // Conservation: every copy was delivered (x2 subscribers) or purged.
  const std::size_t delivered_messages = net.stats().deliveries().size() / 2;
  EXPECT_EQ(delivered_messages + net.stats().purged(),
            static_cast<std::size_t>(kMessages));
}

TEST(LiveClock, ScalesAndSleeps) {
  LiveClock clock(100.0);
  clock.start();
  clock.sleep_for(200.0);  // 200 simulated ms = 2 real ms.
  const TimeMs now = clock.now();
  EXPECT_GE(now, 200.0);
  EXPECT_LT(now, 20000.0);  // Generous upper bound for slow CI machines.
}

}  // namespace
}  // namespace bdps
