#include "runtime/live_network.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace bdps {
namespace {

/// Small rig running at 200x real time: a line 0 - 1 - 2 with fast links so
/// tests finish in tens of real milliseconds.
struct LiveRig {
  Topology topo;
  std::unique_ptr<RoutingFabric> fabric;
  std::unique_ptr<const Strategy> scheduler;

  explicit LiveRig(TimeMs deadline = seconds(30.0),
                   StrategyKind strategy = StrategyKind::kEb) {
    topo.graph.resize(3);
    topo.graph.add_bidirectional(0, 1, LinkParams{2.0, 0.2});
    topo.graph.add_bidirectional(1, 2, LinkParams{2.0, 0.2});
    topo.publisher_edges = {0};
    topo.subscriber_homes = {2, 2};
    std::vector<Subscription> subs;
    for (int s = 0; s < 2; ++s) {
      Subscription sub;
      sub.subscriber = s;
      sub.home = 2;
      sub.allowed_delay = deadline;
      sub.price = 2.0;
      subs.push_back(sub);
    }
    fabric = std::make_unique<RoutingFabric>(topo, std::move(subs));
    scheduler = make_strategy(strategy);
  }

  LiveOptions options(LiveMode mode) const {
    LiveOptions opt;
    opt.processing_delay = 1.0;
    opt.speedup = 200.0;
    opt.mode = mode;
    opt.workers = 2;  // Exercise cross-worker handoff even on a 3-line.
    return opt;
  }

  static Message message_template(TimeMs deadline = kNoDeadline) {
    return Message(0, 0, 0.0, 50.0, {{"A1", Value(1.0)}}, deadline);
  }
};

/// Every behavioural test runs in both modes: the reactor is the
/// in-process engine, and single-shard socket mode must behave
/// identically with the trunk endpoint idling in the loop (every broker
/// local, no peers — the degenerate cluster).
class LiveNetworkModes : public ::testing::TestWithParam<LiveMode> {};

INSTANTIATE_TEST_SUITE_P(BothModes, LiveNetworkModes,
                         ::testing::Values(LiveMode::kReactor,
                                           LiveMode::kSocket),
                         [](const auto& info) {
                           return info.param == LiveMode::kReactor
                                      ? "Reactor"
                                      : "Socket";
                         });

TEST_P(LiveNetworkModes, DeliversPublishedMessagesToAllSubscribers) {
  LiveRig rig;
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.scheduler.get(),
                  rig.options(GetParam()));
  net.start();
  for (int i = 0; i < 5; ++i) {
    net.publish(0, LiveRig::message_template());
  }
  net.drain();
  net.stop();

  // 5 messages x 2 subscribers.
  EXPECT_EQ(net.stats().deliveries().size(), 10u);
  EXPECT_EQ(net.stats().valid_deliveries(), 10u);
  EXPECT_DOUBLE_EQ(net.stats().earning(), 20.0);
  // Each message was received by 3 brokers.
  EXPECT_EQ(net.stats().receptions(), 15u);
}

TEST_P(LiveNetworkModes, DeliveryDelaysAreMeasuredOnTheScaledClock) {
  LiveRig rig;
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.scheduler.get(),
                  rig.options(GetParam()));
  net.start();
  net.publish(0, LiveRig::message_template());
  net.drain();
  net.stop();

  ASSERT_EQ(net.stats().deliveries().size(), 2u);
  for (const LiveDelivery& d : net.stats().deliveries()) {
    // Two ~100 ms (sim) transmissions + processing: the delay must be in a
    // plausible simulated-milliseconds band, not wall-clock units.
    EXPECT_GT(d.delay, 100.0);
    EXPECT_LT(d.delay, 5000.0);
    EXPECT_TRUE(d.valid);
  }
}

TEST_P(LiveNetworkModes, ExpiredDeadlinesAreRecordedInvalid) {
  // 1 ms allowed delay cannot be met (each hop takes ~100 simulated ms),
  // but with purging disabled the copies still travel and deliver late.
  LiveRig rig(/*deadline=*/1.0);
  LiveOptions opt = rig.options(GetParam());
  opt.purge.epsilon = 0.0;
  opt.purge.drop_expired = false;
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.scheduler.get(), opt);
  net.start();
  net.publish(0, LiveRig::message_template());
  net.drain();
  net.stop();
  EXPECT_EQ(net.stats().deliveries().size(), 2u);
  EXPECT_EQ(net.stats().valid_deliveries(), 0u);
  EXPECT_DOUBLE_EQ(net.stats().earning(), 0.0);
}

TEST_P(LiveNetworkModes, PurgeDropsHopelessTraffic) {
  LiveRig rig(/*deadline=*/1.0);  // Paper-style purge enabled by default.
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.scheduler.get(),
                  rig.options(GetParam()));
  net.start();
  for (int i = 0; i < 3; ++i) net.publish(0, LiveRig::message_template());
  net.drain();
  net.stop();
  EXPECT_EQ(net.stats().deliveries().size(), 0u);
  EXPECT_EQ(net.stats().purged(), 3u);
}

TEST_P(LiveNetworkModes, StopIsIdempotentAndDestructorSafe) {
  LiveRig rig;
  {
    LiveNetwork net(&rig.topo, rig.fabric.get(), rig.scheduler.get(),
                    rig.options(GetParam()));
    net.start();
    net.publish(0, LiveRig::message_template());
    net.drain();
    net.stop();
    net.stop();  // Second stop must be a no-op.
  }                // Destructor runs after explicit stop.
  SUCCEED();
}

TEST_P(LiveNetworkModes, PublishRacingStopNeverStrandsCopies) {
  // Hammer publish from another thread while stop() runs.  Every accepted
  // copy must be fully processed (or dropped with its accounting unwound)
  // before stop returns: a reactor worker may not exit with its injector
  // open.  A stranded copy shows up as drain() hanging.
  LiveRig rig;
  for (int round = 0; round < 10; ++round) {
    LiveNetwork net(&rig.topo, rig.fabric.get(), rig.scheduler.get(),
                    rig.options(GetParam()));
    net.start();
    std::atomic<bool> go{false};
    std::thread publisher([&] {
      while (!go.load()) {
      }
      for (int i = 0; i < 30; ++i) {
        net.publish(0, LiveRig::message_template());
      }
    });
    go.store(true);
    net.stop();
    publisher.join();
    net.drain();  // Must return: no copy may outlive stop().
  }
  SUCCEED();
}

TEST_P(LiveNetworkModes, ManyConcurrentPublishesAllAccountedFor) {
  LiveRig rig;
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.scheduler.get(),
                  rig.options(GetParam()));
  net.start();
  constexpr int kMessages = 40;
  for (int i = 0; i < kMessages; ++i) {
    net.publish(0, LiveRig::message_template());
  }
  net.drain();
  net.stop();
  // Conservation: every copy was delivered (x2 subscribers) or purged.
  const std::size_t delivered_messages = net.stats().deliveries().size() / 2;
  EXPECT_EQ(delivered_messages + net.stats().purged(),
            static_cast<std::size_t>(kMessages));
}

TEST(LiveNetwork, ReactorIsTheDefaultModeAndSizesItsPool) {
  LiveRig rig;
  LiveOptions opt;
  opt.speedup = 200.0;
  ASSERT_EQ(opt.mode, LiveMode::kReactor);
  opt.workers = 2;
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.scheduler.get(), opt);
  EXPECT_EQ(net.worker_count(), 2u);
  EXPECT_EQ(net.link_count(), 2u);  // 0->1 and 1->2 carry subscriptions.
  net.start();
  net.publish(0, LiveRig::message_template());
  net.drain();
  net.stop();
  EXPECT_EQ(net.stats().deliveries().size(), 2u);
}

TEST(LiveNetwork, ReactorRejectsNonPositiveWheelTick) {
  LiveRig rig;
  LiveOptions opt;
  opt.wheel_tick_ms = 0.0;
  EXPECT_THROW(LiveNetwork(&rig.topo, rig.fabric.get(), rig.scheduler.get(),
                           opt),
               std::invalid_argument);
}

TEST(LiveNetwork, ReactorWorkerKnobClampsToBrokerCount) {
  LiveRig rig;
  LiveOptions opt;
  opt.speedup = 200.0;
  opt.workers = 64;  // Far more than the 3 brokers.
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.scheduler.get(), opt);
  EXPECT_LE(net.worker_count(), 3u);
  net.start();
  net.publish(0, LiveRig::message_template());
  net.drain();
  net.stop();
  EXPECT_EQ(net.stats().valid_deliveries(), 2u);
}

TEST(LiveClock, ScalesAndSleeps) {
  LiveClock clock(100.0);
  clock.start();
  clock.sleep_for(200.0);  // 200 simulated ms = 2 real ms.
  const TimeMs now = clock.now();
  EXPECT_GE(now, 200.0);
  EXPECT_LT(now, 20000.0);  // Generous upper bound for slow CI machines.
}

TEST(LiveClock, MapsSimulatedInstantsBackToRealOnes) {
  LiveClock clock(50.0);
  clock.start();
  // 500 simulated ms = 10 real ms after start.
  const auto at = clock.real_time_at(500.0);
  const auto base = clock.real_time_at(0.0);
  const double real_ms =
      std::chrono::duration<double, std::milli>(at - base).count();
  EXPECT_NEAR(real_ms, 10.0, 1e-6);
}

}  // namespace
}  // namespace bdps
