#include "experiment/live.h"

#include <gtest/gtest.h>

namespace bdps {
namespace {

LiveRunConfig small_config(LiveMode mode) {
  LiveRunConfig config;
  config.sim.seed = 99;
  config.sim.topology = TopologyKind::kRandomMesh;
  config.sim.broker_count = 12;
  config.sim.extra_edges = 8;
  config.sim.publisher_count = 2;
  config.sim.subscriber_count = 24;
  config.sim.strategy = StrategyKind::kEbpc;
  config.sim.workload.scenario = ScenarioKind::kSsd;
  config.sim.workload.duration = seconds(30.0);
  config.sim.workload.publishing_rate_per_min = 60.0;
  // Deadlines far beyond the scaled run (2 sim hours = 2.4 real seconds at
  // this speedup) so nothing purges and totals are workload-determined,
  // not timing-determined, even on slow sanitizer hosts.
  config.sim.workload.ssd_tiers = {{hours(2.0), 1.0}};
  config.mode = mode;
  config.workers = 2;
  config.speedup = 3000.0;
  return config;
}

TEST(RunLive, ReactorRunsASimConfigWorkloadToCompletion) {
  const LiveRunResult r = run_live(small_config(LiveMode::kReactor));
  EXPECT_GT(r.published, 0u);
  EXPECT_GE(r.receptions, r.published);
  EXPECT_GT(r.links, 0u);
  EXPECT_EQ(r.workers, 2u);
  EXPECT_EQ(r.purged, 0u);
  EXPECT_EQ(r.valid_deliveries, r.deliveries);
  EXPECT_GT(r.wall_ms, 0.0);
}

TEST(RunLive, ModesAgreeOnTheWorkloadTotals) {
  const LiveRunResult reactor = run_live(small_config(LiveMode::kReactor));
  const LiveRunResult oracle =
      run_live(small_config(LiveMode::kThreadPerLink));
  // Same seed -> same topology, workload and routing; with generous
  // deadlines both runtimes must deliver the identical matched totals.
  EXPECT_EQ(reactor.published, oracle.published);
  EXPECT_EQ(reactor.deliveries, oracle.deliveries);
  EXPECT_EQ(reactor.valid_deliveries, oracle.valid_deliveries);
  EXPECT_DOUBLE_EQ(reactor.earning, oracle.earning);
  EXPECT_EQ(reactor.links, oracle.links);
  EXPECT_EQ(oracle.workers, 0u) << "oracle mode reports no reactor pool";
  EXPECT_GT(reactor.workers, 0u);
}

TEST(RunLive, MessageLimitCapsThePublishedWorkload) {
  LiveRunConfig config = small_config(LiveMode::kReactor);
  config.message_limit = 3;
  const LiveRunResult r = run_live(config);
  EXPECT_EQ(r.published, 3u);
}

}  // namespace
}  // namespace bdps
