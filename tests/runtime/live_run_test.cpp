#include "experiment/live.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace bdps {
namespace {

LiveRunConfig small_config(LiveMode mode) {
  LiveRunConfig config;
  config.sim.seed = 99;
  config.sim.topology = TopologyKind::kRandomMesh;
  config.sim.broker_count = 12;
  config.sim.extra_edges = 8;
  config.sim.publisher_count = 2;
  config.sim.subscriber_count = 24;
  config.sim.strategy = StrategyKind::kEbpc;
  config.sim.workload.scenario = ScenarioKind::kSsd;
  config.sim.workload.duration = seconds(30.0);
  config.sim.workload.publishing_rate_per_min = 60.0;
  // Deadlines far beyond the scaled run (2 sim hours = 2.4 real seconds at
  // this speedup) so nothing purges and totals are workload-determined,
  // not timing-determined, even on slow sanitizer hosts.
  config.sim.workload.ssd_tiers = {{hours(2.0), 1.0}};
  config.mode = mode;
  config.workers = 2;
  config.speedup = 3000.0;
  return config;
}

std::vector<std::pair<SubscriberId, MessageId>> delivery_multiset(
    const LiveRunResult& r) {
  std::vector<std::pair<SubscriberId, MessageId>> out;
  out.reserve(r.delivery_log.size());
  for (const LiveDelivery& d : r.delivery_log) {
    out.emplace_back(d.subscriber, d.message);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RunLive, ReactorRunsASimConfigWorkloadToCompletion) {
  const LiveRunResult r = run_live(small_config(LiveMode::kReactor));
  EXPECT_GT(r.published, 0u);
  EXPECT_GE(r.receptions, r.published);
  EXPECT_GT(r.links, 0u);
  EXPECT_EQ(r.workers, 2u);
  EXPECT_EQ(r.purged, 0u);
  EXPECT_EQ(r.lost, 0u);
  EXPECT_EQ(r.valid_deliveries, r.deliveries);
  EXPECT_EQ(r.delivery_log.size(), r.deliveries);
  EXPECT_GT(r.wall_ms, 0.0);
}

TEST(RunLive, ModesAgreeOnTheWorkloadTotals) {
  const LiveRunResult reactor = run_live(small_config(LiveMode::kReactor));
  const LiveRunResult socket = run_live(small_config(LiveMode::kSocket));
  // Same seed -> same topology, workload, routing and message ids; with
  // generous deadlines both runtimes must deliver the identical matched
  // (subscriber, message) multiset, not merely equal totals.
  EXPECT_EQ(reactor.published, socket.published);
  EXPECT_EQ(reactor.deliveries, socket.deliveries);
  EXPECT_EQ(reactor.valid_deliveries, socket.valid_deliveries);
  EXPECT_DOUBLE_EQ(reactor.earning, socket.earning);
  EXPECT_EQ(reactor.links, socket.links);
  EXPECT_GT(reactor.workers, 0u);
  EXPECT_GT(socket.workers, 0u);
  EXPECT_EQ(delivery_multiset(reactor), delivery_multiset(socket));
}

TEST(RunLive, MessageLimitCapsThePublishedWorkload) {
  LiveRunConfig config = small_config(LiveMode::kReactor);
  config.message_limit = 3;
  const LiveRunResult r = run_live(config);
  EXPECT_EQ(r.published, 3u);
}

TEST(LiveConfig, FormatParseRoundTripIsBitExact) {
  LiveRunConfig config = small_config(LiveMode::kSocket);
  config.sim.seed = 1234567890123ull;
  config.sim.ebpc_weight = 0.37;
  config.sim.processing_delay = 2.125;
  config.sim.purge.epsilon = 1e-4;
  config.sim.workload.scenario = ScenarioKind::kBoth;
  config.sim.workload.poisson_arrivals = false;
  config.sim.workload.churn_fraction = 0.25;
  config.sim.workload.bursts.push_back(
      WorkloadConfig::PublishBurst{1000.0, 500.0, 3.5});
  config.sim.grid_torus = true;
  config.shards = 4;
  config.workers = 3;
  config.speedup = 777.5;
  config.reconnect_initial_ms = 2.5;
  config.bind_host = "0.0.0.0";
  config.peer_hosts = {"10.0.0.1", "", "10.0.0.3", "10.0.0.4"};
  config.sim.faults.link_outages.push_back(LinkOutage{100.0, 320.0, 1, 2});

  const std::string text = format_live_config(config);
  const LiveRunConfig parsed = parse_live_config(text);

  // Bit-exactness shows up two ways: the re-serialized text is identical,
  // and both configs build the identical world (same seed-split order,
  // same message schedule).
  EXPECT_EQ(format_live_config(parsed), text);
  EXPECT_EQ(parsed.sim.seed, config.sim.seed);
  EXPECT_EQ(parsed.sim.strategy, config.sim.strategy);
  EXPECT_EQ(parsed.sim.workload.scenario, config.sim.workload.scenario);
  EXPECT_EQ(parsed.sim.workload.bursts.size(), 1u);
  EXPECT_EQ(parsed.sim.faults.link_outages.size(), 1u);
  EXPECT_EQ(parsed.shards, 4u);
  EXPECT_EQ(parsed.mode, LiveMode::kSocket);
  EXPECT_EQ(parsed.bind_host, "0.0.0.0");
  EXPECT_EQ(parsed.peer_hosts, config.peer_hosts);

  const LiveWorld a = build_live_world(config);
  const LiveWorld b = build_live_world(parsed);
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < a.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i]->id(), b.messages[i]->id());
    EXPECT_EQ(a.messages[i]->publish_time(), b.messages[i]->publish_time());
    EXPECT_EQ(a.messages[i]->publisher(), b.messages[i]->publisher());
  }
  EXPECT_EQ(a.topology.graph.edge_count(), b.topology.graph.edge_count());
}

TEST(LiveConfig, ParseRejectsGarbage) {
  EXPECT_THROW(parse_live_config("topology=not-a-topology\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_live_config("mode=carrier-pigeon\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_live_config("ssd_tiers=1.0,2.0,3.0\n"),
               std::invalid_argument);
}

}  // namespace
}  // namespace bdps
