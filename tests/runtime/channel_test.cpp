#include "runtime/channel.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace bdps {
namespace {

TEST(Channel, PopReturnsItemsInFifoOrderThenNulloptAfterClose) {
  Channel<int> channel;
  EXPECT_TRUE(channel.push(1));
  EXPECT_TRUE(channel.push(2));
  EXPECT_EQ(channel.pop(), std::optional<int>(1));
  EXPECT_EQ(channel.pop(), std::optional<int>(2));
  channel.push(3);
  channel.close();
  EXPECT_FALSE(channel.push(4)) << "push after close must fail";
  EXPECT_EQ(channel.pop(), std::optional<int>(3)) << "drain after close";
  EXPECT_EQ(channel.pop(), std::nullopt);
}

TEST(Channel, PopAllDrainsEverythingInOneSwap) {
  Channel<int> channel;
  for (int i = 0; i < 5; ++i) channel.push(i);
  const auto batch = channel.pop_all();
  ASSERT_EQ(batch.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(batch[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(channel.size(), 0u);
}

TEST(Channel, PopAllEmptyMeansClosedAndDrained) {
  Channel<int> channel;
  channel.push(7);
  channel.close();
  EXPECT_EQ(channel.pop_all().size(), 1u);
  EXPECT_TRUE(channel.pop_all().empty()) << "closed + drained terminates";
}

TEST(Channel, PopAllBlocksUntilAProducerArrives) {
  Channel<int> channel;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    channel.push(1);
    channel.push(2);
  });
  const auto batch = channel.pop_all();  // Must block, then see the burst.
  producer.join();
  EXPECT_GE(batch.size(), 1u);
  EXPECT_EQ(batch[0], 1);
}

TEST(Channel, TryDrainAppendsIntoCallerVectorAndReusesIt) {
  Channel<int> channel;
  std::vector<int> scratch = {-1};  // Pre-existing content must survive.
  EXPECT_FALSE(channel.try_drain(scratch));
  channel.push(1);
  channel.push(2);
  EXPECT_TRUE(channel.try_drain(scratch));
  EXPECT_EQ(scratch, (std::vector<int>{-1, 1, 2}));
  EXPECT_FALSE(channel.try_drain(scratch)) << "drained channel is empty";
  channel.close();
  channel.push(3);  // Rejected: closed.
  EXPECT_FALSE(channel.try_drain(scratch));
}

TEST(Channel, PopAndPopAllComposeAcrossThreads) {
  Channel<int> channel;
  constexpr int kItems = 2000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) channel.push(i);
    channel.close();
  });
  std::vector<int> seen;
  for (;;) {
    auto batch = channel.pop_all();
    if (batch.empty()) break;
    for (int v : batch) seen.push_back(v);
  }
  producer.join();
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
  }
}

}  // namespace
}  // namespace bdps
