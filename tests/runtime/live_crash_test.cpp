// Broker-crash parity with the simulator's fault semantics, pinned with
// controlled timing (crash losses are inherently schedule-dependent, so
// these tests engineer the schedule instead of comparing multisets):
//
//   * crash wipes the broker's input queue and every outgoing OutputQueue
//     — each wiped copy is a loss, and the overlay still drains;
//   * a copy whose transmission completes toward a down broker deposits
//     as a loss (the sender does not stall);
//   * restart brings the broker back with empty queues and full routing
//     (static configuration survives, exactly like sim/faults).
//
// Runs in both modes: the reactor, and single-shard socket mode (the
// degenerate cluster — same engine with the trunk endpoint idling).  The
// cross-shard variant (a crash behind a TCP trunk) rides in
// tests/net via the storm configs; here the timing must be exact.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "runtime/live_network.h"

namespace bdps {
namespace {

/// Line 0 - 1 - 2 with both subscribers homed at broker 2, so every copy
/// must pass through broker 1 — the crash target.
struct CrashRig {
  Topology topo;
  std::unique_ptr<RoutingFabric> fabric;
  std::unique_ptr<const Strategy> strategy;

  CrashRig() {
    topo.graph.resize(3);
    topo.graph.add_bidirectional(0, 1, LinkParams{2.0, 0.2});
    topo.graph.add_bidirectional(1, 2, LinkParams{2.0, 0.2});
    topo.publisher_edges = {0};
    topo.subscriber_homes = {2, 2};
    std::vector<Subscription> subs;
    for (int s = 0; s < 2; ++s) {
      Subscription sub;
      sub.subscriber = s;
      sub.home = 2;
      sub.allowed_delay = kNoDeadline;
      sub.price = 2.0;
      subs.push_back(sub);
    }
    fabric = std::make_unique<RoutingFabric>(topo, std::move(subs));
    strategy = make_strategy(StrategyKind::kEb);
  }

  LiveOptions options(LiveMode mode) const {
    LiveOptions opt;
    opt.processing_delay = 1.0;
    opt.speedup = 200.0;
    opt.mode = mode;
    opt.workers = 2;
    return opt;
  }

  static Message message() {
    return Message(0, 0, 0.0, 50.0, {{"A1", Value(1.0)}}, kNoDeadline);
  }
};

/// Spin until `stats.receptions()` reaches `want` (generous deadline —
/// the copies are in flight on a 200x clock).
void wait_receptions(const LiveStats& stats, std::size_t want) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (stats.receptions() < want &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(stats.receptions(), want);
}

class LiveCrashModes : public ::testing::TestWithParam<LiveMode> {};

INSTANTIATE_TEST_SUITE_P(BothModes, LiveCrashModes,
                         ::testing::Values(LiveMode::kReactor,
                                           LiveMode::kSocket),
                         [](const auto& info) {
                           return info.param == LiveMode::kReactor
                                      ? "Reactor"
                                      : "Socket";
                         });

TEST_P(LiveCrashModes, CrashWipesQueuedCopiesAsLosses) {
  CrashRig rig;
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.strategy.get(),
                  rig.options(GetParam()));
  net.start();
  // Hold the downstream link so copies pile up in broker 1's output
  // queue, then publish and wait until every copy has arrived there.
  net.set_link_state(1, 2, false);
  constexpr std::size_t kMessages = 5;
  for (std::size_t i = 0; i < kMessages; ++i) {
    net.publish(0, CrashRig::message());
  }
  wait_receptions(net.stats(), 2 * kMessages);  // Broker 0 + broker 1.

  // Crash the relay: its queued copies (held toward 1->2, or still in PD
  // processing) are wiped as losses, which is exactly what lets drain()
  // return even though the held link never came back while they existed.
  net.set_broker_state(1, false);
  net.drain();
  net.set_link_state(1, 2, true);
  net.set_broker_state(1, true);
  net.stop();

  EXPECT_EQ(net.stats().deliveries().size(), 0u);
  EXPECT_EQ(net.stats().lost(), kMessages);
  EXPECT_EQ(net.stats().purged(), 0u);
}

TEST_P(LiveCrashModes, DepositAtDownBrokerIsALoss) {
  CrashRig rig;
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.strategy.get(),
                  rig.options(GetParam()));
  net.start();
  net.set_broker_state(1, false);  // Crash before any traffic.
  constexpr std::size_t kMessages = 3;
  for (std::size_t i = 0; i < kMessages; ++i) {
    net.publish(0, CrashRig::message());
  }
  // The sender at broker 0 must not stall: each transmission completes
  // and deposits at the dead broker as a loss, so drain() returns.
  net.drain();
  net.set_broker_state(1, true);
  net.stop();

  EXPECT_EQ(net.stats().deliveries().size(), 0u);
  EXPECT_EQ(net.stats().lost(), kMessages);
  // Only broker 0 ever received the messages.
  EXPECT_EQ(net.stats().receptions(), kMessages);
}

TEST_P(LiveCrashModes, RestartRestoresServiceWithEmptyQueues) {
  CrashRig rig;
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.strategy.get(),
                  rig.options(GetParam()));
  net.start();
  net.set_broker_state(1, false);
  net.publish(0, CrashRig::message());
  net.publish(0, CrashRig::message());
  net.drain();  // Both lost at the dead relay.
  ASSERT_EQ(net.stats().lost(), 2u);

  // Restart: routing is static configuration, so traffic flows again
  // end-to-end; the crash-era losses stay lost (no replay).
  net.set_broker_state(1, true);
  for (int i = 0; i < 3; ++i) net.publish(0, CrashRig::message());
  net.drain();
  net.stop();

  EXPECT_EQ(net.stats().deliveries().size(), 3u * 2u);
  EXPECT_EQ(net.stats().valid_deliveries(), 6u);
  EXPECT_EQ(net.stats().lost(), 2u);
}

TEST_P(LiveCrashModes, CrashOfALeafBrokerDropsOnlyItsSubscribers) {
  // Subscribers live at broker 2; crashing it loses the deliveries but
  // upstream brokers keep functioning (receptions at 0 and 1 continue).
  CrashRig rig;
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.strategy.get(),
                  rig.options(GetParam()));
  net.start();
  net.set_broker_state(2, false);
  constexpr std::size_t kMessages = 4;
  for (std::size_t i = 0; i < kMessages; ++i) {
    net.publish(0, CrashRig::message());
  }
  net.drain();
  net.set_broker_state(2, true);
  net.stop();

  EXPECT_EQ(net.stats().deliveries().size(), 0u);
  EXPECT_EQ(net.stats().lost(), kMessages);
  EXPECT_EQ(net.stats().receptions(), 2 * kMessages);
}

}  // namespace
}  // namespace bdps
