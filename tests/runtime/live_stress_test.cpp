// Live-runtime stress + differential suite: the reactor must survive a
// 1k-link topology with a hardware-sized worker pool and deliver exactly
// the message set the (single-shard) socket runtime delivers — the same
// engine with the trunk endpoint in the loop.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <utility>

#include "runtime/live_network.h"
#include "topology/builders.h"

namespace bdps {
namespace {

// ThreadSanitizer multiplies per-thread cost; shrink the stress width
// there (plain builds still run the full suite).
#if defined(__SANITIZE_THREAD__)
constexpr std::size_t kSpokes = 192;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr std::size_t kSpokes = 192;
#else
constexpr std::size_t kSpokes = 1024;
#endif
#else
constexpr std::size_t kSpokes = 1024;
#endif

/// Hub-and-spoke: one publisher at the hub, one subscriber per spoke, so
/// every hub->spoke directed link carries a subscription — `spokes` live
/// links, the worst case for per-link threading.
struct StarRig {
  Topology topo;
  std::unique_ptr<RoutingFabric> fabric;
  std::unique_ptr<const Strategy> scheduler;

  explicit StarRig(std::size_t spokes) {
    topo.graph.resize(spokes + 1);
    for (std::size_t s = 0; s < spokes; ++s) {
      topo.graph.add_bidirectional(0, static_cast<BrokerId>(s + 1),
                                   LinkParams{0.5, 0.05});
    }
    topo.publisher_edges = {0};
    std::vector<Subscription> subs;
    for (std::size_t s = 0; s < spokes; ++s) {
      Subscription sub;
      sub.subscriber = static_cast<SubscriberId>(s);
      sub.home = static_cast<BrokerId>(s + 1);
      topo.subscriber_homes.push_back(sub.home);
      sub.allowed_delay = seconds(600.0);
      sub.price = 1.0;
      subs.push_back(std::move(sub));
    }
    fabric = std::make_unique<RoutingFabric>(topo, std::move(subs));
    scheduler = make_strategy(StrategyKind::kEb);
  }
};

using DeliverySet = std::set<std::pair<SubscriberId, MessageId>>;

DeliverySet delivery_set(const LiveNetwork& net) {
  DeliverySet out;
  for (const LiveDelivery& d : net.stats().deliveries()) {
    out.emplace(d.subscriber, d.message);
  }
  return out;
}

/// Runs `messages` publishes through the rig in one mode and returns the
/// drained network's delivery set after asserting the stats invariants.
DeliverySet run_star(const StarRig& rig, LiveMode mode, int messages,
                     std::size_t spokes) {
  LiveOptions opt;
  opt.processing_delay = 1.0;
  opt.speedup = 1000.0;
  opt.mode = mode;
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.scheduler.get(), opt);
  EXPECT_EQ(net.link_count(), spokes);
  if (mode == LiveMode::kReactor) {
    // The whole point: worker pool sized by hardware, not topology.
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    EXPECT_GE(net.worker_count(), 1u);
    EXPECT_LE(net.worker_count(), hw);
  }
  net.start();
  const Message tick(0, 0, 0.0, 1.0, {{"A1", Value(1.0)}}, kNoDeadline);
  for (int i = 0; i < messages; ++i) net.publish(0, tick);
  net.drain();
  net.stop();

  // Invariants: every copy delivered (generous deadlines, no purges), the
  // hub and every spoke received every message.
  EXPECT_EQ(net.stats().purged(), 0u);
  EXPECT_EQ(net.stats().deliveries().size(),
            static_cast<std::size_t>(messages) * spokes);
  EXPECT_EQ(net.stats().valid_deliveries(),
            static_cast<std::size_t>(messages) * spokes);
  EXPECT_EQ(net.stats().receptions(),
            static_cast<std::size_t>(messages) * (spokes + 1));
  return delivery_set(net);
}

TEST(LiveStress, ThousandLinkStarBothModesDeliverTheSameSet) {
  const StarRig rig(kSpokes);
  constexpr int kMessages = 4;
  const DeliverySet reactor =
      run_star(rig, LiveMode::kReactor, kMessages, kSpokes);
  const DeliverySet socket =
      run_star(rig, LiveMode::kSocket, kMessages, kSpokes);
  EXPECT_EQ(reactor.size(),
            static_cast<std::size_t>(kMessages) * kSpokes);
  EXPECT_EQ(reactor, socket)
      << "reactor and socket modes delivered different message sets";
}

TEST(LiveStress, MultiHopMeshBothModesDeliverTheSameSet) {
  // A routed mesh (multi-hop forwarding, filtered subscriptions) with
  // deadlines far beyond the run: both modes must deliver the identical —
  // and complete — matched set.
  Rng rng(2026);
  Rng topo_rng = rng.split();
  Rng sub_rng = rng.split();
  const Topology topo =
      build_random_mesh(topo_rng, 24, 16, 2, 48, 40.0, 80.0, 15.0);
  std::vector<Subscription> subs;
  for (std::size_t s = 0; s < topo.subscriber_count(); ++s) {
    Subscription sub;
    sub.subscriber = static_cast<SubscriberId>(s);
    sub.home = topo.subscriber_homes[s];
    Filter f;
    f.where("A1", Op::kLt, Value(sub_rng.uniform(2.0, 10.0)));
    sub.filter = std::move(f);
    // Deadline-free so a slow CI host can never purge its way out of the
    // set-equality check.
    sub.allowed_delay = kNoDeadline;
    sub.price = 1.0;
    subs.push_back(std::move(sub));
  }
  const RoutingFabric fabric(topo, std::move(subs));
  const auto strategy = make_strategy(StrategyKind::kEbpc, 0.6);

  auto run_mesh = [&](LiveMode mode) {
    LiveOptions opt;
    opt.processing_delay = 2.0;
    opt.speedup = 2000.0;
    opt.mode = mode;
    LiveNetwork net(&topo, &fabric, strategy.get(), opt);
    net.start();
    Rng publish_rng(7);
    for (int i = 0; i < 12; ++i) {
      const Message tick(0, 0, 0.0, 50.0,
                         {{"A1", Value(publish_rng.uniform(0.0, 10.0))},
                          {"A2", Value(publish_rng.uniform(0.0, 10.0))}});
      net.publish(static_cast<PublisherId>(i % 2), tick);
    }
    net.drain();
    net.stop();
    EXPECT_EQ(net.stats().purged(), 0u) << "deadlines were generous";
    return delivery_set(net);
  };

  const DeliverySet reactor = run_mesh(LiveMode::kReactor);
  const DeliverySet socket = run_mesh(LiveMode::kSocket);
  EXPECT_EQ(reactor, socket);
  EXPECT_FALSE(reactor.empty()) << "workload matched nothing — vacuous test";
}

}  // namespace
}  // namespace bdps
