// Link churn in the live runtime: down links hold, link-up releases, and
// the same storm yields the same delivery set in both execution modes
// (reactor, and single-shard socket — the same Tx teardown with the trunk
// endpoint in the loop).  Timing may differ — the *delivery multiset*
// must not, and with recovery before drain and purging off it must equal
// the full (message x subscriber) product in either mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/live_network.h"
#include "sim/faults/plan.h"
#include "sim/faults/timeline.h"

namespace bdps {
namespace {

/// Line 0 - 1 - 2 at 200x real time, two subscribers at the far end.
struct StormRig {
  Topology topo;
  std::unique_ptr<RoutingFabric> fabric;
  std::unique_ptr<const Strategy> scheduler = make_strategy(StrategyKind::kEb);

  StormRig() {
    topo.graph.resize(3);
    topo.graph.add_bidirectional(0, 1, LinkParams{2.0, 0.2});
    topo.graph.add_bidirectional(1, 2, LinkParams{2.0, 0.2});
    topo.publisher_edges = {0};
    topo.subscriber_homes = {2, 2};
    std::vector<Subscription> subs;
    for (int s = 0; s < 2; ++s) {
      Subscription sub;
      sub.subscriber = s;
      sub.home = 2;
      sub.allowed_delay = minutes(5.0);
      sub.price = 2.0;
      subs.push_back(sub);
    }
    fabric = std::make_unique<RoutingFabric>(topo, std::move(subs));
  }

  LiveOptions options(LiveMode mode) const {
    LiveOptions opt;
    opt.processing_delay = 1.0;
    opt.speedup = 200.0;
    opt.mode = mode;
    opt.workers = 2;
    return opt;
  }

  static Message message_template() {
    return Message(0, 0, 0.0, 50.0, {{"A1", Value(1.0)}});
  }
};

class LiveStormModes : public ::testing::TestWithParam<LiveMode> {};

INSTANTIATE_TEST_SUITE_P(BothModes, LiveStormModes,
                         ::testing::Values(LiveMode::kReactor,
                                           LiveMode::kSocket),
                         [](const auto& info) {
                           return info.param == LiveMode::kReactor
                                      ? "Reactor"
                                      : "Socket";
                         });

TEST_P(LiveStormModes, DownLinkHoldsUntilLinkUpReleases) {
  StormRig rig;
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.scheduler.get(),
                  rig.options(GetParam()));
  net.start();
  net.set_link_state(1, 2, /*up=*/false);

  for (int i = 0; i < 5; ++i) {
    net.publish(0, StormRig::message_template());
  }
  // Transit is ~1 real ms end to end; 100 ms is ample proof the copies are
  // held at broker 1, not merely slow.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(net.stats().deliveries().size(), 0u);
  EXPECT_EQ(net.stats().purged(), 0u);

  net.set_link_state(1, 2, /*up=*/true);
  net.drain();
  net.stop();

  EXPECT_EQ(net.stats().deliveries().size(), 10u);
  EXPECT_EQ(net.stats().valid_deliveries(), 10u);
}

TEST_P(LiveStormModes, ChurnWhileTransmittingLosesNothing) {
  StormRig rig;
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.scheduler.get(),
                  rig.options(GetParam()));
  net.start();

  // Rapid flapping racing live traffic: whatever instant the down lands —
  // queue idle, pick pending, frame mid-wire (the reactor's cancel/requeue
  // path) — every copy must survive to delivery once the link settles up.
  for (int round = 0; round < 10; ++round) {
    net.publish(0, StormRig::message_template());
    net.set_link_state(1, 2, /*up=*/false);
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    net.set_link_state(1, 2, /*up=*/true);
    net.publish(0, StormRig::message_template());
  }
  net.drain();
  net.stop();

  EXPECT_EQ(net.stats().deliveries().size(), 40u);  // 20 messages x 2 subs.
  EXPECT_EQ(net.stats().purged(), 0u);
}

/// Ring overlay with subscribers everywhere, driven through a compiled
/// fault timeline exactly the way run_live replays one.
struct RingStormRig {
  Topology topo;
  std::unique_ptr<RoutingFabric> fabric;
  std::unique_ptr<const Strategy> scheduler =
      make_strategy(StrategyKind::kEbpc);

  explicit RingStormRig(std::size_t brokers = 5) {
    topo.graph.resize(brokers);
    for (std::size_t b = 0; b < brokers; ++b) {
      topo.graph.add_bidirectional(static_cast<BrokerId>(b),
                                   static_cast<BrokerId>((b + 1) % brokers),
                                   LinkParams{2.0, 0.2});
    }
    topo.publisher_edges = {0, 2};
    std::vector<Subscription> subs;
    for (std::size_t b = 0; b < brokers; ++b) {
      topo.subscriber_homes.push_back(static_cast<BrokerId>(b));
      Subscription sub;
      sub.subscriber = static_cast<SubscriberId>(b);
      sub.home = static_cast<BrokerId>(b);
      sub.allowed_delay = minutes(5.0);
      sub.price = 1.0;
      subs.push_back(sub);
    }
    fabric = std::make_unique<RoutingFabric>(topo, std::move(subs));
  }
};

std::vector<std::pair<SubscriberId, MessageId>> run_storm(
    const RingStormRig& rig, LiveMode mode,
    const CompiledFaults& faults) {
  LiveOptions options;
  options.processing_delay = 1.0;
  options.speedup = 500.0;
  options.seed = 11;
  options.mode = mode;
  options.workers = 2;

  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.scheduler.get(), options);
  net.start();

  std::size_t cursor = 0;
  const auto apply_until = [&](TimeMs upto) {
    while (cursor < faults.batches().size() &&
           faults.batches()[cursor].at <= upto) {
      const FaultBatch& batch = faults.batches()[cursor++];
      const TimeMs ahead = batch.at - net.clock().now();
      if (ahead > 0.0) net.clock().sleep_for(ahead);
      for (const EdgeId e : batch.edges_down) net.set_edge_state(e, false);
      for (const EdgeId e : batch.edges_up) net.set_edge_state(e, true);
    }
  };

  // 30 messages, 25 simulated ms apart, alternating publishers — the storm
  // windows below land mid-stream.
  for (int i = 0; i < 30; ++i) {
    const TimeMs at = 25.0 * static_cast<double>(i);
    apply_until(at);
    const TimeMs ahead = at - net.clock().now();
    if (ahead > 0.0) net.clock().sleep_for(ahead);
    net.publish(static_cast<PublisherId>(i % 2),
                Message(0, 0, 0.0, 40.0, {{"A1", Value(1.0)}}));
  }
  apply_until(kNoDeadline);
  net.drain();
  net.stop();

  std::vector<std::pair<SubscriberId, MessageId>> delivered;
  for (const LiveDelivery& d : net.stats().deliveries()) {
    delivered.emplace_back(d.subscriber, d.message);
  }
  std::sort(delivered.begin(), delivered.end());
  return delivered;
}

TEST(LiveStormEquivalence, DeliverySetsMatchAcrossModes) {
  const RingStormRig rig;

  FaultPlan plan;
  // Two overlapping outages plus a flap: every link of the ring keeps at
  // least one live detour, and everything recovers well inside the run.
  plan.link_outages.push_back(LinkOutage{100.0, 320.0, 1, 2});
  plan.link_outages.push_back(LinkOutage{250.0, 480.0, 3, 4});
  plan.flaps.push_back(LinkFlap{0, 1, 150.0, 120.0, 40.0, 3});
  Rng rng(5);
  const FaultPlan normalized =
      materialize_faults(plan, rig.topo.graph, rng);
  const CompiledFaults faults =
      CompiledFaults::compile(normalized, rig.topo.graph);
  ASSERT_FALSE(faults.batches().empty());

  const auto reactor = run_storm(rig, LiveMode::kReactor, faults);
  const auto socket = run_storm(rig, LiveMode::kSocket, faults);

  // With recovery before drain and purging off, nothing may be lost: both
  // modes deliver the full message x subscriber product — and therefore
  // the exact same multiset.
  EXPECT_EQ(reactor.size(), 30u * 5u);
  EXPECT_EQ(reactor, socket);
}

}  // namespace
}  // namespace bdps
