// EdgeId addressing and the dense per-edge containers.
//
// edge_id is the hot-path link resolver: it must agree with the validated
// linear-scan find_edge on every (from, to) pair — present or absent — on
// the shapes the builders produce (ring, star, dense random mesh).
// EdgeMap/EdgeFlags are plain indexed storage; the tests pin the indexing
// and the set-bit bookkeeping behind EdgeFlags::none().
#include <gtest/gtest.h>

#include "common/random.h"
#include "topology/builders.h"
#include "topology/edge_map.h"

namespace bdps {
namespace {

void expect_edge_id_matches_find_edge(const Graph& graph) {
  const auto n = static_cast<BrokerId>(graph.broker_count());
  for (BrokerId from = 0; from < n; ++from) {
    for (BrokerId to = 0; to < n; ++to) {
      EXPECT_EQ(graph.edge_id(from, to), graph.find_edge(from, to))
          << "from=" << from << " to=" << to;
    }
  }
}

TEST(EdgeId, MatchesFindEdgeOnRing) {
  Rng rng(1);
  const Topology topo = build_ring(rng, 12, 2, 8, 50.0, 100.0, 20.0);
  expect_edge_id_matches_find_edge(topo.graph);
  EXPECT_EQ(topo.graph.edge_count(), 24u);  // 12 undirected links.
}

TEST(EdgeId, MatchesFindEdgeOnStar) {
  Graph graph(9);
  for (BrokerId leaf = 1; leaf < 9; ++leaf) {
    graph.add_bidirectional(0, leaf, LinkParams{60.0, 10.0});
  }
  expect_edge_id_matches_find_edge(graph);
  // The hub's adjacency is the interesting row: every leaf resolves.
  for (BrokerId leaf = 1; leaf < 9; ++leaf) {
    EXPECT_NE(graph.edge_id(0, leaf), kNoEdge);
    EXPECT_EQ(graph.edge(graph.edge_id(0, leaf)).to, leaf);
  }
  EXPECT_EQ(graph.edge_id(1, 2), kNoEdge);  // Leaves are not adjacent.
}

TEST(EdgeId, MatchesFindEdgeOnDenseRandomMeshes) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Rng rng(seed);
    const Topology topo =
        build_random_mesh(rng, 24, 120, 4, 16, 50.0, 100.0, 20.0);
    expect_edge_id_matches_find_edge(topo.graph);
  }
}

TEST(EdgeId, ResolvesOutOfOrderInsertionAndReturnsFirstParallelEdge) {
  Graph graph(4);
  // Descending destinations force the sorted row to reorder on insert.
  const EdgeId e3 = graph.add_edge(0, 3, LinkParams{50.0, 5.0});
  const EdgeId e1 = graph.add_edge(0, 1, LinkParams{60.0, 5.0});
  const EdgeId e2 = graph.add_edge(0, 2, LinkParams{70.0, 5.0});
  EXPECT_EQ(graph.edge_id(0, 1), e1);
  EXPECT_EQ(graph.edge_id(0, 2), e2);
  EXPECT_EQ(graph.edge_id(0, 3), e3);
  // A parallel edge resolves to the first-added one, like find_edge.
  const EdgeId dup = graph.add_edge(0, 2, LinkParams{80.0, 5.0});
  EXPECT_NE(dup, e2);
  EXPECT_EQ(graph.edge_id(0, 2), e2);
  EXPECT_EQ(graph.find_edge(0, 2), e2);
}

TEST(EdgeMap, IndexesPerEdgeState) {
  Rng rng(5);
  const Topology topo = build_ring(rng, 8, 2, 8, 50.0, 100.0, 20.0);
  EdgeMap<int> counters(topo.graph, 0);
  EXPECT_EQ(counters.size(), topo.graph.edge_count());
  for (std::size_t e = 0; e < topo.graph.edge_count(); ++e) {
    counters[static_cast<EdgeId>(e)] = static_cast<int>(e) * 3;
  }
  for (std::size_t e = 0; e < topo.graph.edge_count(); ++e) {
    EXPECT_EQ(counters[static_cast<EdgeId>(e)], static_cast<int>(e) * 3);
  }
  counters.assign(4, -1);
  EXPECT_EQ(counters.size(), 4u);
  EXPECT_EQ(counters[2], -1);
}

TEST(EdgeFlags, TracksBitsAndSetCount) {
  EdgeFlags flags(130);  // Spans three 64-bit words.
  EXPECT_TRUE(flags.none());
  EXPECT_EQ(flags.size(), 130u);
  flags.set(0);
  flags.set(64);
  flags.set(129);
  flags.set(129);  // Idempotent: count must not double-bump.
  EXPECT_EQ(flags.count(), 3u);
  EXPECT_TRUE(flags.any());
  EXPECT_TRUE(flags.test(0));
  EXPECT_TRUE(flags.test(64));
  EXPECT_TRUE(flags.test(129));
  EXPECT_FALSE(flags.test(1));
  flags.reset(64);
  flags.reset(64);
  EXPECT_EQ(flags.count(), 2u);
  EXPECT_FALSE(flags.test(64));
  flags.reset(0);
  flags.reset(129);
  EXPECT_TRUE(flags.none());
}

TEST(EdgeFlags, ClearWipesAllBitsAndCount) {
  EdgeFlags flags(200);
  for (EdgeId id = 0; id < 200; id += 3) flags.set(id);
  EXPECT_EQ(flags.count(), 67u);
  flags.clear();
  EXPECT_TRUE(flags.none());
  EXPECT_EQ(flags.count(), 0u);
  EXPECT_EQ(flags.size(), 200u);  // Clear keeps the sizing.
  for (EdgeId id = 0; id < 200; ++id) EXPECT_FALSE(flags.test(id)) << id;
  // Set/reset bookkeeping still consistent after a wipe (restore path).
  flags.set(5);
  flags.set(5);
  EXPECT_EQ(flags.count(), 1u);
  flags.reset(5);
  EXPECT_TRUE(flags.none());
}

}  // namespace
}  // namespace bdps
