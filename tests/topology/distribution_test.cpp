// Moment-matching and shape properties of the link-rate distributions.
#include <gtest/gtest.h>

#include <cmath>

#include "experiment/paper.h"
#include "experiment/runner.h"
#include "topology/link.h"

namespace bdps {
namespace {

struct Moments {
  double mean = 0.0;
  double stddev = 0.0;
  double skew = 0.0;
  double min = 0.0;
};

Moments sample_moments(const LinkModel& link, int n = 200000) {
  Rng rng(7);
  double sum = 0.0;
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (auto& x : xs) {
    x = link.sample_rate(rng);
    sum += x;
  }
  Moments m;
  m.mean = sum / n;
  double var = 0.0;
  double cubed = 0.0;
  m.min = xs[0];
  for (const double x : xs) {
    const double d = x - m.mean;
    var += d * d;
    cubed += d * d * d;
    if (x < m.min) m.min = x;
  }
  var /= n;
  m.stddev = std::sqrt(var);
  m.skew = (cubed / n) / (var * m.stddev);
  return m;
}

class ShapeMoments : public ::testing::TestWithParam<RateShape> {};

TEST_P(ShapeMoments, MeanAndStddevAreMatched) {
  LinkParams params{75.0, 20.0, GetParam()};
  const Moments m = sample_moments(LinkModel(params));
  EXPECT_NEAR(m.mean, 75.0, 0.5);
  // The truncated normal loses a sliver of its lower tail; allow 5%.
  EXPECT_NEAR(m.stddev, 20.0, 1.0);
  EXPECT_GT(m.min, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeMoments,
                         ::testing::Values(RateShape::kNormal,
                                           RateShape::kShiftedGamma,
                                           RateShape::kLognormal));

TEST(ShapeSkewness, GammaAndLognormalAreRightSkewedNormalIsNot) {
  const Moments normal =
      sample_moments(LinkModel(LinkParams{75.0, 20.0, RateShape::kNormal}));
  const Moments gamma = sample_moments(
      LinkModel(LinkParams{75.0, 20.0, RateShape::kShiftedGamma}));
  const Moments lognormal = sample_moments(
      LinkModel(LinkParams{75.0, 20.0, RateShape::kLognormal}));
  EXPECT_NEAR(normal.skew, 0.0, 0.1);
  EXPECT_GT(gamma.skew, 0.5);      // k = 4 gamma: skew = 2/sqrt(k) = 1.
  EXPECT_GT(lognormal.skew, 0.4);  // cv ~ 0.27: skew ~ 0.82.
}

TEST(ShapeSkewness, GammaHasHardLowerBound) {
  // shift = mean - 2*stddev = 35: no sample may fall below it.
  const LinkModel link(LinkParams{75.0, 20.0, RateShape::kShiftedGamma});
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    ASSERT_GE(link.sample_rate(rng), 35.0);
  }
}

TEST(ShapeDegenerate, ZeroStddevIsDeterministicForAllShapes) {
  Rng rng(1);
  for (const RateShape shape :
       {RateShape::kNormal, RateShape::kShiftedGamma,
        RateShape::kLognormal}) {
    const LinkModel link(LinkParams{75.0, 0.0, shape});
    EXPECT_DOUBLE_EQ(link.sample_rate(rng), 75.0);
  }
}

TEST(RngGamma, MomentsMatchTheory) {
  Rng rng(5);
  const double k = 4.0;
  const double theta = 10.0;
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(k, theta);
    ASSERT_GT(x, 0.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, k * theta, 0.5);          // 40.
  EXPECT_NEAR(var, k * theta * theta, 10.0);  // 400.
}

TEST(RngGamma, SmallShapeBoostWorks) {
  Rng rng(6);
  const double k = 0.5;
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(k, 2.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.05);  // mean = k * theta = 1.
}

TEST(RngLognormal, MedianIsExpOfMu) {
  Rng rng(8);
  const int n = 100001;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.lognormal(2.0, 0.5);
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], std::exp(2.0), 0.1);
}

TEST(ModelMismatch, SimulationStillFavoursEbUnderSkewedReality) {
  for (const RateShape shape :
       {RateShape::kShiftedGamma, RateShape::kLognormal}) {
    SimConfig eb = paper_base_config(ScenarioKind::kSsd, 12.0,
                                     StrategyKind::kEb, 9);
    eb.workload.duration = minutes(10.0);
    eb.true_rate_shape = shape;
    SimConfig fifo = eb;
    fifo.strategy = StrategyKind::kFifo;
    const SimResult a = run_simulation(eb);
    const SimResult b = run_simulation(fifo);
    EXPECT_GT(a.earning, 1.5 * b.earning)
        << "shape " << static_cast<int>(shape);
  }
}

}  // namespace
}  // namespace bdps
