#include "topology/graph.h"

#include <gtest/gtest.h>

namespace bdps {
namespace {

TEST(Graph, AddAndFindEdges) {
  Graph g(3);
  const EdgeId e01 = g.add_edge(0, 1, LinkParams{50.0, 20.0});
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.find_edge(0, 1), e01);
  EXPECT_EQ(g.find_edge(1, 0), kNoEdge);
  EXPECT_EQ(g.find_edge(0, 2), kNoEdge);
  EXPECT_DOUBLE_EQ(g.edge(e01).link.params().mean_ms_per_kb, 50.0);
}

TEST(Graph, BidirectionalAddsBothDirections) {
  Graph g(2);
  g.add_bidirectional(0, 1, LinkParams{60.0, 20.0});
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_NE(g.find_edge(0, 1), kNoEdge);
  EXPECT_NE(g.find_edge(1, 0), kNoEdge);
}

TEST(Graph, OutEdgesList) {
  Graph g(4);
  g.add_edge(0, 1, LinkParams{50.0, 1.0});
  g.add_edge(0, 2, LinkParams{50.0, 1.0});
  g.add_edge(0, 3, LinkParams{50.0, 1.0});
  g.add_edge(1, 0, LinkParams{50.0, 1.0});
  EXPECT_EQ(g.out_edges(0).size(), 3u);
  EXPECT_EQ(g.out_edges(1).size(), 1u);
  EXPECT_TRUE(g.out_edges(2).empty());
}

TEST(Graph, ValidateAcceptsWellFormed) {
  Graph g(3);
  g.add_bidirectional(0, 1, LinkParams{50.0, 20.0});
  g.add_bidirectional(1, 2, LinkParams{80.0, 20.0});
  EXPECT_TRUE(g.validate());
}

TEST(Graph, ValidateRejectsNonPositiveMean) {
  Graph g(2);
  g.add_edge(0, 1, LinkParams{0.0, 20.0});
  EXPECT_FALSE(g.validate());
}

TEST(Graph, ValidateRejectsNegativeStddev) {
  Graph g(2);
  g.add_edge(0, 1, LinkParams{50.0, -1.0});
  EXPECT_FALSE(g.validate());
}

TEST(LinkModel, SamplesArePositiveAndCentered) {
  const LinkModel link(LinkParams{75.0, 20.0});
  Rng rng(1);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double r = link.sample_rate(rng);
    ASSERT_GT(r, 0.0);
    sum += r;
  }
  EXPECT_NEAR(sum / n, 75.0, 0.5);
}

TEST(LinkModel, SendTimeScalesWithSize) {
  const LinkModel link(LinkParams{100.0, 0.0});  // Deterministic.
  Rng rng(1);
  EXPECT_DOUBLE_EQ(link.sample_send_time(rng, 50.0), 5000.0);
  EXPECT_DOUBLE_EQ(link.sample_send_time(rng, 1.0), 100.0);
}

TEST(LinkParams, VarianceIsStddevSquared) {
  const LinkParams p{50.0, 20.0};
  EXPECT_DOUBLE_EQ(p.variance(), 400.0);
}

}  // namespace
}  // namespace bdps
