// DOT export and the grid / scale-free builders.
#include <gtest/gtest.h>

#include <set>

#include "topology/dot.h"

namespace bdps {
namespace {

bool connected(const Graph& g) {
  std::vector<bool> seen(g.broker_count(), false);
  std::vector<BrokerId> stack = {0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const BrokerId u = stack.back();
    stack.pop_back();
    for (const EdgeId e : g.out_edges(u)) {
      const BrokerId v = g.edge(e).to;
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == g.broker_count();
}

TEST(GridBuilder, PlainGridEdgeCount) {
  Rng rng(1);
  const Topology topo = build_grid(rng, 3, 4, false, 2, 6, 50.0, 100.0, 20.0);
  EXPECT_EQ(topo.graph.broker_count(), 12u);
  // Horizontal: 3 rows x 3 = 9; vertical: 2 x 4 = 8 -> 17 undirected.
  EXPECT_EQ(topo.graph.edge_count(), 2u * 17u);
  EXPECT_TRUE(connected(topo.graph));
  EXPECT_TRUE(topo.graph.validate());
}

TEST(GridBuilder, TorusWrapAddsRings) {
  Rng rng(2);
  const Topology topo = build_grid(rng, 3, 4, true, 2, 6, 50.0, 100.0, 20.0);
  // Plain 17 + row wraps 3 + column wraps 4 = 24 undirected.
  EXPECT_EQ(topo.graph.edge_count(), 2u * 24u);
  // Wrap edges exist.
  EXPECT_NE(topo.graph.find_edge(3, 0), kNoEdge);   // Row 0: col 3 -> col 0.
  EXPECT_NE(topo.graph.find_edge(8, 0), kNoEdge);   // Col 0: row 2 -> row 0.
}

TEST(GridBuilder, PublishersSitOnCorners) {
  Rng rng(3);
  const Topology topo = build_grid(rng, 4, 5, false, 4, 8, 50.0, 100.0, 20.0);
  const std::set<BrokerId> corners = {0, 4, 15, 19};
  for (const BrokerId p : topo.publisher_edges) {
    EXPECT_TRUE(corners.count(p)) << p;
  }
}

TEST(GridBuilder, RejectsDegenerateSizes) {
  Rng rng(1);
  EXPECT_THROW(build_grid(rng, 1, 5, false, 1, 1, 50.0, 100.0, 20.0),
               std::invalid_argument);
}

TEST(ScaleFreeBuilder, ConnectedWithHubs) {
  Rng rng(4);
  const Topology topo =
      build_scale_free(rng, 60, 2, 3, 20, 50.0, 100.0, 20.0);
  EXPECT_EQ(topo.graph.broker_count(), 60u);
  EXPECT_TRUE(connected(topo.graph));
  EXPECT_TRUE(topo.graph.validate());
  // Preferential attachment: the max degree should clearly exceed the mean
  // (2m = 4-ish) — hubs exist.
  std::size_t max_degree = 0;
  for (std::size_t b = 0; b < 60; ++b) {
    max_degree = std::max(max_degree,
                          topo.graph.out_edges(static_cast<BrokerId>(b)).size());
  }
  EXPECT_GE(max_degree, 8u);
}

TEST(ScaleFreeBuilder, RejectsDegenerateParams) {
  Rng rng(1);
  EXPECT_THROW(build_scale_free(rng, 1, 2, 1, 1, 50.0, 100.0, 20.0),
               std::invalid_argument);
  EXPECT_THROW(build_scale_free(rng, 10, 0, 1, 1, 50.0, 100.0, 20.0),
               std::invalid_argument);
}

TEST(DotExport, ContainsNodesEdgesAndDecorations) {
  Rng rng(5);
  Topology topo;
  topo.graph.resize(3);
  topo.graph.add_bidirectional(0, 1, LinkParams{50.0, 20.0});
  topo.graph.add_bidirectional(1, 2, LinkParams{75.0, 20.0});
  topo.publisher_edges = {0};
  topo.subscriber_homes = {2, 2};
  const std::string dot = to_dot(topo);
  EXPECT_NE(dot.find("graph overlay {"), std::string::npos);
  EXPECT_NE(dot.find("B0 [label=\"B0\\nP\""), std::string::npos);
  EXPECT_NE(dot.find("2 subs"), std::string::npos);
  EXPECT_NE(dot.find("B0 -- B1"), std::string::npos);
  EXPECT_NE(dot.find("B1 -- B2"), std::string::npos);
  EXPECT_NE(dot.find("50"), std::string::npos);
  // Each undirected link appears exactly once.
  EXPECT_EQ(dot.find("B1 -- B0"), std::string::npos);
  (void)rng;
}

TEST(DotExport, HighlightsRoutingTree) {
  Topology topo;
  topo.graph.resize(3);
  topo.graph.add_bidirectional(0, 1, LinkParams{50.0, 20.0});
  topo.graph.add_bidirectional(1, 2, LinkParams{75.0, 20.0});
  topo.graph.add_bidirectional(0, 2, LinkParams{300.0, 20.0});
  topo.publisher_edges = {0};
  topo.subscriber_homes = {2};
  const ShortestPathTree tree = compute_tree_toward(topo.graph, 2);
  const std::string dot = to_dot(topo, tree);
  // The chosen 0-1-2 path is red; the 0-2 shortcut is not.
  const auto red_count = [&] {
    std::size_t count = 0;
    std::size_t pos = 0;
    while ((pos = dot.find("color=red", pos)) != std::string::npos) {
      ++count;
      pos += 9;
    }
    return count;
  }();
  EXPECT_EQ(red_count, 2u);
  EXPECT_NE(dot.find("fillcolor=lightblue"), std::string::npos);
}

TEST(DotExport, PaperTopologyRendersAllBrokers) {
  Rng rng(6);
  const Topology topo = build_paper_topology(rng);
  const std::string dot = to_dot(topo);
  for (int b = 0; b < 32; ++b) {
    EXPECT_NE(dot.find("B" + std::to_string(b) + " [label"),
              std::string::npos)
        << b;
  }
}

}  // namespace
}  // namespace bdps
