#include "topology/builders.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>
#include <vector>

namespace bdps {
namespace {

/// Undirected connectivity check via DFS over directed edge pairs.
bool connected(const Graph& g) {
  if (g.broker_count() == 0) return true;
  std::vector<bool> seen(g.broker_count(), false);
  std::vector<BrokerId> stack = {0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const BrokerId u = stack.back();
    stack.pop_back();
    for (const EdgeId e : g.out_edges(u)) {
      const BrokerId v = g.edge(e).to;
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == g.broker_count();
}

TEST(PaperTopology, MatchesFig3Counts) {
  Rng rng(1);
  const Topology topo = build_paper_topology(rng);
  EXPECT_EQ(topo.graph.broker_count(), 32u);
  EXPECT_EQ(topo.publisher_count(), 4u);
  EXPECT_EQ(topo.subscriber_count(), 160u);
  // Links: 4*4 (L1-L2 full mesh) + 8*2 (L3 uplinks) + 16*2 (L4 uplinks)
  // = 64 undirected = 128 directed edges.
  EXPECT_EQ(topo.graph.edge_count(), 128u);
  EXPECT_TRUE(topo.graph.validate());
  EXPECT_TRUE(connected(topo.graph));
}

TEST(PaperTopology, AttachmentLayersAreCorrect) {
  Rng rng(2);
  const Topology topo = build_paper_topology(rng);
  for (const BrokerId b : topo.publisher_edges) {
    EXPECT_GE(b, 0);
    EXPECT_LT(b, 4);  // Publishers behind layer-1 brokers.
  }
  for (const BrokerId b : topo.subscriber_homes) {
    EXPECT_GE(b, 16);  // Subscribers on layer-4 brokers (ids 16..31).
    EXPECT_LT(b, 32);
  }
  // Exactly 10 subscribers per layer-4 broker.
  std::map<BrokerId, int> per_broker;
  for (const BrokerId b : topo.subscriber_homes) ++per_broker[b];
  EXPECT_EQ(per_broker.size(), 16u);
  for (const auto& [broker, count] : per_broker) EXPECT_EQ(count, 10);
}

TEST(PaperTopology, LinkParametersInConfiguredRange) {
  Rng rng(3);
  const Topology topo = build_paper_topology(rng);
  for (std::size_t e = 0; e < topo.graph.edge_count(); ++e) {
    const LinkParams& p = topo.graph.edge(static_cast<EdgeId>(e)).link.params();
    EXPECT_GE(p.mean_ms_per_kb, 50.0);
    EXPECT_LT(p.mean_ms_per_kb, 100.0);
    EXPECT_DOUBLE_EQ(p.stddev_ms_per_kb, 20.0);
  }
}

TEST(PaperTopology, UplinksAreDistinct) {
  // sample_distinct must never pick the same parent twice for one broker.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const Topology topo = build_paper_topology(rng);
    for (std::size_t b = 8; b < 32; ++b) {
      std::set<BrokerId> parents;
      for (const EdgeId e : topo.graph.out_edges(static_cast<BrokerId>(b))) {
        const BrokerId to = topo.graph.edge(e).to;
        if (to < static_cast<BrokerId>(b)) {
          // Uplink (parents have smaller layer base => smaller id here).
          EXPECT_TRUE(parents.insert(to).second)
              << "broker " << b << " double-linked to " << to;
        }
      }
    }
  }
}

TEST(PaperTopology, RejectsImpossibleUplinkCounts) {
  Rng rng(1);
  PaperTopologyConfig config;
  config.uplinks_per_layer3 = 10;  // > layer2 = 4.
  EXPECT_THROW(build_paper_topology(rng, config), std::invalid_argument);
}

class AcyclicSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AcyclicSizes, TreeHasExactlyNMinusOneLinks) {
  Rng rng(7);
  const std::size_t n = GetParam();
  const Topology topo =
      build_acyclic_topology(rng, n, 2, 10, 50.0, 100.0, 20.0);
  EXPECT_EQ(topo.graph.broker_count(), n);
  EXPECT_EQ(topo.graph.edge_count(), 2 * (n - 1));  // Directed pairs.
  EXPECT_TRUE(connected(topo.graph));
  EXPECT_EQ(topo.publisher_count(), 2u);
  EXPECT_EQ(topo.subscriber_count(), 10u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AcyclicSizes,
                         ::testing::Values(1u, 2u, 5u, 16u, 64u, 200u));

TEST(AcyclicTopology, ZeroBrokersRejected) {
  Rng rng(1);
  EXPECT_THROW(build_acyclic_topology(rng, 0, 1, 1, 50.0, 100.0, 20.0),
               std::invalid_argument);
}

TEST(RandomMesh, AddsRequestedExtraEdges) {
  Rng rng(11);
  const Topology topo =
      build_random_mesh(rng, 20, 15, 2, 10, 50.0, 100.0, 20.0);
  EXPECT_EQ(topo.graph.edge_count(), 2 * (19 + 15));
  EXPECT_TRUE(connected(topo.graph));
  EXPECT_TRUE(topo.graph.validate());
}

TEST(RandomMesh, NoDuplicateLinks) {
  Rng rng(12);
  const Topology topo =
      build_random_mesh(rng, 10, 20, 1, 5, 50.0, 100.0, 20.0);
  std::set<std::pair<BrokerId, BrokerId>> seen;
  for (std::size_t e = 0; e < topo.graph.edge_count(); ++e) {
    const Edge& edge = topo.graph.edge(static_cast<EdgeId>(e));
    EXPECT_TRUE(seen.emplace(edge.from, edge.to).second);
  }
}

TEST(Dumbbell, StructureAndAttachment) {
  Rng rng(1);
  const Topology topo = build_dumbbell(rng, 3, 5, LinkParams{10.0, 1.0},
                                       LinkParams{100.0, 20.0});
  EXPECT_EQ(topo.graph.broker_count(), 8u);  // 2 hubs + 3 + 3 leaves.
  EXPECT_EQ(topo.publisher_count(), 3u);
  EXPECT_EQ(topo.subscriber_count(), 15u);
  EXPECT_TRUE(connected(topo.graph));
  // The bottleneck is the hub-hub link.
  const EdgeId hub = topo.graph.find_edge(0, 1);
  ASSERT_NE(hub, kNoEdge);
  EXPECT_DOUBLE_EQ(topo.graph.edge(hub).link.params().mean_ms_per_kb, 100.0);
}

TEST(Ring, HasCycleAndBothDirections) {
  Rng rng(5);
  const Topology topo = build_ring(rng, 6, 2, 4, 50.0, 100.0, 20.0);
  EXPECT_EQ(topo.graph.broker_count(), 6u);
  EXPECT_EQ(topo.graph.edge_count(), 12u);
  EXPECT_TRUE(connected(topo.graph));
  EXPECT_NE(topo.graph.find_edge(0, 5), kNoEdge);  // Wrap-around link.
}

TEST(Ring, TooSmallRejected) {
  Rng rng(1);
  EXPECT_THROW(build_ring(rng, 2, 1, 1, 50.0, 100.0, 20.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace bdps
