// Wire-format gates: parse(format(f)) == f for every frame type with
// bit-exact doubles, malformed-input rejection (truncations, bad
// version/type, oversize lengths, trailing bytes, random corruption), and
// FrameAssembler reassembly across arbitrary split boundaries.
#include "net/wire.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <random>

namespace bdps {
namespace {

Message sample_message() {
  return Message(/*id=*/42, /*publisher=*/3, /*publish_time=*/1234.5625,
                 /*size_kb=*/50.0,
                 {{"A1", Value(0.1)}, {"A2", Value(-7.25)},
                  {"symbol", Value(std::string("ACME"))}},
                 /*deadline=*/9876.5);
}

/// One of every frame type, with awkward payload values.
std::vector<Frame> sample_frames() {
  std::vector<Frame> frames;
  frames.push_back(Frame{HelloFrame{7, 12, PeerRole::kController}});
  frames.push_back(Frame{ForwardFrame{0xDEADBEEFCAFEull, 19, sample_message()}});
  frames.push_back(Frame{AckFrame{0xFFFFFFFFFFFFFFFFull}});
  Filter filter;
  filter.where("A1", Op::kLt, Value(0.30000000000000004))
      .where("A2", Op::kInRange, Value(-1e308), Value(1e308))
      .where("symbol", Op::kEq, Value(std::string("ACME")));
  frames.push_back(Frame{SubscribeFrame{9, 4, 1500.25, 2.5, filter}});
  frames.push_back(Frame{LinkStateFrame{31, true}});
  frames.push_back(Frame{BrokerStateFrame{5, false}});
  frames.push_back(Frame{ConfigFrame{"seed=7\ntopology=ring\n%%faults\n"}});
  frames.push_back(Frame{PortsFrame{{49152, 49153, 0, 65535}}});
  frames.push_back(Frame{PortReplyFrame{3, 49154}});
  frames.push_back(Frame{StartFrame{}});
  frames.push_back(Frame{StatusFrame{}});
  StatusReplyFrame status;
  status.shard = 2;
  status.outstanding = 17;
  status.forwards_sent = 1000;
  status.forwards_received = 999;
  status.receptions = 123456789;
  status.deliveries = 42;
  status.purged = 7;
  status.lost = 1;
  status.published = 30;
  status.driver_done = true;
  frames.push_back(Frame{status});
  frames.push_back(Frame{DumpFrame{}});
  frames.push_back(Frame{DeliveryFrame{11, 22, 333.375, true, 2.0}});
  SummaryFrame summary;
  summary.shard = 1;
  summary.delivery_count = 100;
  summary.earning = 250.125;
  frames.push_back(Frame{summary});
  frames.push_back(Frame{ShutdownFrame{}});
  frames.push_back(Frame{ErrorFrame{"bind: address in use \"quoted\"\n"}});
  return frames;
}

TEST(Wire, EveryFrameTypeRoundTrips) {
  for (const Frame& frame : sample_frames()) {
    const std::vector<std::uint8_t> bytes = encode_frame(frame);
    ASSERT_GE(bytes.size(), kWireHeaderBytes);
    const Frame back = parse_frame(bytes.data(), bytes.size());
    EXPECT_EQ(back.type(), frame.type());
    EXPECT_EQ(back, frame) << "frame type "
                           << static_cast<int>(frame.type());
  }
}

TEST(Wire, DoublesAreBitExactIncludingEdgeCases) {
  // The differential gates compare delivery sets computed from these
  // numbers; any decimal detour would already be drift.  kNoDeadline
  // (infinity), negative zero, denormals and an exactly-representable
  // decimal all must survive as the same bit pattern.
  const double cases[] = {kNoDeadline,
                          -std::numeric_limits<double>::infinity(),
                          -0.0,
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max(),
                          0.30000000000000004,
                          1.0 / 3.0};
  for (const double value : cases) {
    const Frame frame{DeliveryFrame{1, 2, value, false, value}};
    const auto bytes = encode_frame(frame);
    const Frame back = parse_frame(bytes.data(), bytes.size());
    const auto& d = back.as<DeliveryFrame>();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(d.delay),
              std::bit_cast<std::uint64_t>(value));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(d.price),
              std::bit_cast<std::uint64_t>(value));
  }
}

TEST(Wire, MessagePayloadRoundTripsExactly) {
  const Message original = sample_message();
  const Frame frame{ForwardFrame{5, 2, original}};
  const auto bytes = encode_frame(frame);
  const Frame parsed = parse_frame(bytes.data(), bytes.size());
  const Message& m = parsed.as<ForwardFrame>().message;
  EXPECT_EQ(m.id(), original.id());
  EXPECT_EQ(m.publisher(), original.publisher());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(m.publish_time()),
            std::bit_cast<std::uint64_t>(original.publish_time()));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(m.size_kb()),
            std::bit_cast<std::uint64_t>(original.size_kb()));
}

TEST(Wire, EveryTruncationIsRejectedNotOverread) {
  for (const Frame& frame : sample_frames()) {
    const auto bytes = encode_frame(frame);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      EXPECT_THROW(parse_frame(bytes.data(), cut), WireError)
          << "cut at " << cut << " of " << bytes.size();
    }
  }
}

TEST(Wire, TrailingBytesAreRejected) {
  auto bytes = encode_frame(Frame{AckFrame{9}});
  bytes.push_back(0);
  EXPECT_THROW(parse_frame(bytes.data(), bytes.size()), WireError);
}

TEST(Wire, BadVersionAndTypeAreRejected) {
  auto bytes = encode_frame(Frame{StartFrame{}});
  auto bad_version = bytes;
  bad_version[4] = kWireVersion + 1;
  EXPECT_THROW(parse_frame(bad_version.data(), bad_version.size()),
               WireError);
  auto bad_type = bytes;
  bad_type[5] = 0;  // Below the FrameType range.
  EXPECT_THROW(parse_frame(bad_type.data(), bad_type.size()), WireError);
  bad_type[5] = 200;  // Above it.
  EXPECT_THROW(parse_frame(bad_type.data(), bad_type.size()), WireError);
  auto bad_reserved = bytes;
  bad_reserved[6] = 1;
  EXPECT_THROW(parse_frame(bad_reserved.data(), bad_reserved.size()),
               WireError);
}

TEST(Wire, OversizedLengthCannotAskForGigabytes) {
  auto bytes = encode_frame(Frame{ErrorFrame{"x"}});
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::memcpy(bytes.data(), &huge, sizeof(huge));
  EXPECT_THROW(parse_frame(bytes.data(), bytes.size()), WireError);

  // Same via the assembler: the poisoning must happen at header time,
  // before any giant allocation.
  FrameAssembler assembler;
  assembler.feed(bytes.data(), bytes.size());
  EXPECT_THROW(assembler.next(), WireError);
  EXPECT_THROW(assembler.next(), WireError);  // Poisoned: rethrows.
}

TEST(Wire, RandomCorruptionNeverCrashesTheParser) {
  // Deterministic fuzz: flip bytes in valid encodings and assert the
  // parser either round-trips a (possibly different) valid frame or
  // throws WireError — never crashes, never overreads (ASan run covers
  // this suite).
  std::mt19937_64 rng(20260808);
  const std::vector<Frame> frames = sample_frames();
  for (int round = 0; round < 2000; ++round) {
    auto bytes = encode_frame(frames[round % frames.size()]);
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      bytes[rng() % bytes.size()] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    try {
      const Frame parsed = parse_frame(bytes.data(), bytes.size());
      const auto re = encode_frame(parsed);  // Whatever parsed, re-encodes.
      EXPECT_FALSE(re.empty());
    } catch (const WireError&) {
      // Expected for most corruptions.
    }
  }
}

TEST(WireAssembler, ReassemblesAcrossEverySplitBoundary) {
  // Concatenate all sample frames, then feed the stream split at every
  // single byte position k (two feeds: [0,k) and [k,end)) and assert the
  // full frame sequence comes back.
  const std::vector<Frame> frames = sample_frames();
  std::vector<std::uint8_t> stream;
  for (const Frame& f : frames) encode_frame(f, stream);

  for (std::size_t split = 0; split <= stream.size(); split += 7) {
    FrameAssembler assembler;
    assembler.feed(stream.data(), split);
    std::vector<Frame> got;
    while (auto f = assembler.next()) got.push_back(std::move(*f));
    assembler.feed(stream.data() + split, stream.size() - split);
    while (auto f = assembler.next()) got.push_back(std::move(*f));
    ASSERT_EQ(got.size(), frames.size()) << "split at " << split;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(got[i], frames[i]) << "split " << split << " frame " << i;
    }
    EXPECT_EQ(assembler.buffered(), 0u);
  }
}

TEST(WireAssembler, ReassemblesFromRandomChunkSizes) {
  // Socket reads return arbitrary chunk lengths; 1-byte dribble and random
  // chunking must both produce the identical frame sequence.
  const std::vector<Frame> frames = sample_frames();
  std::vector<std::uint8_t> stream;
  for (const Frame& f : frames) encode_frame(f, stream);

  std::mt19937_64 rng(7);
  for (int round = 0; round < 20; ++round) {
    FrameAssembler assembler;
    std::vector<Frame> got;
    std::size_t offset = 0;
    while (offset < stream.size()) {
      const std::size_t chunk = round == 0
                                    ? 1  // Pure byte dribble.
                                    : 1 + rng() % 97;
      const std::size_t take = std::min(chunk, stream.size() - offset);
      assembler.feed(stream.data() + offset, take);
      offset += take;
      while (auto f = assembler.next()) got.push_back(std::move(*f));
    }
    ASSERT_EQ(got.size(), frames.size());
    for (std::size_t i = 0; i < frames.size(); ++i) {
      EXPECT_EQ(got[i], frames[i]);
    }
  }
}

TEST(WireAssembler, EmptyFilterAndEmptyStringsSurvive) {
  const Frame wildcard{SubscribeFrame{1, 2, kNoDeadline, 1.0, Filter{}}};
  const Frame empty_error{ErrorFrame{""}};
  const Frame empty_config{ConfigFrame{""}};
  const Frame no_ports{PortsFrame{{}}};
  for (const Frame& f : {wildcard, empty_error, empty_config, no_ports}) {
    const auto bytes = encode_frame(f);
    EXPECT_EQ(parse_frame(bytes.data(), bytes.size()), f);
  }
}

}  // namespace
}  // namespace bdps
