// The socket transport's differential gate: on loss-free loopback the
// multi-shard socket cluster must produce the *identical* delivery
// multiset as the in-process reactor — same (subscriber, message-id)
// pairs, same valid counts — for a star flood, a SimConfig mesh workload,
// and a storm replay with link outages.  With no effective deadlines and
// link-outage-only faults the delivery multiset is schedule-independent
// (outage windows hold copies, they never drop them), so any divergence
// is a transport bug: a trunk copy lost, duplicated, or misrouted.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "experiment/live.h"
#include "routing/fabric.h"
#include "topology/builders.h"

namespace bdps {
namespace {

using Multiset = std::vector<std::pair<SubscriberId, MessageId>>;

Multiset sorted_pairs(const std::vector<LiveDelivery>& deliveries) {
  Multiset out;
  out.reserve(deliveries.size());
  for (const LiveDelivery& d : deliveries) {
    out.emplace_back(d.subscriber, d.message);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Multiset sorted_pairs(const LiveRunResult& r) {
  return sorted_pairs(r.delivery_log);
}

// ---- Star flood: hand-built broom, explicit message ids ------------------

struct StarRig {
  Topology topo;
  std::unique_ptr<RoutingFabric> fabric;
  std::unique_ptr<const Strategy> strategy;

  StarRig() {
    topo = build_star_of_chains(/*chains=*/6, /*depth=*/3,
                                LinkParams{1.0, 0.1});
    fabric = std::make_unique<RoutingFabric>(topo,
                                             flood_subscriptions(topo));
    strategy = make_strategy(StrategyKind::kEb);
  }

  LiveOptions options() const {
    LiveOptions opt;
    opt.processing_delay = 0.5;
    opt.speedup = 2000.0;
    opt.workers = 2;
    return opt;
  }

  static Message message(MessageId id) {
    return Message(id, 0, 0.0, 1.0, {{"A1", Value(1.0)}}, kNoDeadline);
  }
};

constexpr int kStarMessages = 12;

Multiset run_star_reactor(const StarRig& rig, std::size_t* deliveries) {
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.strategy.get(),
                  rig.options());
  net.start();
  for (int i = 0; i < kStarMessages; ++i) {
    net.publish(0, StarRig::message(i), MessageId(i));
  }
  net.drain();
  net.stop();
  *deliveries = net.stats().deliveries().size();
  return sorted_pairs(net.stats().deliveries());
}

Multiset run_star_socket(const StarRig& rig, int shards,
                         std::size_t* deliveries,
                         std::uint64_t* trunk_forwards) {
  const std::vector<std::uint32_t> broker_shard =
      live_broker_shards(rig.topo.graph, static_cast<std::size_t>(shards));
  std::vector<std::unique_ptr<LiveNetwork>> nets;
  std::vector<LiveNetwork*> raw;
  for (int shard = 0; shard < shards; ++shard) {
    LiveOptions opt = rig.options();
    opt.mode = LiveMode::kSocket;
    opt.net.shard = shard;
    opt.net.shard_count = shards;
    opt.net.broker_shard = broker_shard;
    nets.push_back(std::make_unique<LiveNetwork>(
        &rig.topo, rig.fabric.get(), rig.strategy.get(), opt));
    raw.push_back(nets.back().get());
  }
  std::vector<std::uint16_t> ports;
  for (const auto& net : nets) ports.push_back(net->trunk_port());
  for (const auto& net : nets) net->connect_trunks(ports);
  for (const auto& net : nets) net->start();
  for (const auto& net : nets) {
    EXPECT_TRUE(net->wait_trunks(std::chrono::milliseconds(10000)));
  }
  LiveNetwork* hub_home = nullptr;
  for (LiveNetwork* net : raw) {
    if (net->serves(0)) hub_home = net;
  }
  EXPECT_NE(hub_home, nullptr);
  for (int i = 0; i < kStarMessages; ++i) {
    hub_home->publish(0, StarRig::message(i), MessageId(i));
  }
  drain_live_cluster(raw);
  std::vector<LiveDelivery> all;
  *deliveries = 0;
  *trunk_forwards = 0;
  for (const auto& net : nets) {
    net->stop();
    const auto local = net->stats().deliveries();
    all.insert(all.end(), local.begin(), local.end());
    *deliveries += local.size();
    *trunk_forwards += net->trunk_forwards_sent();
    EXPECT_EQ(net->stats().lost(), 0u);
  }
  return sorted_pairs(all);
}

TEST(SocketEquality, StarFloodMatchesReactorExactly) {
  StarRig rig;
  std::size_t reactor_count = 0;
  const Multiset reactor = run_star_reactor(rig, &reactor_count);
  // Every message floods to every subscriber.
  ASSERT_EQ(reactor_count,
            static_cast<std::size_t>(kStarMessages) *
                rig.topo.subscriber_count());

  for (const int shards : {2, 3}) {
    std::size_t socket_count = 0;
    std::uint64_t trunk_forwards = 0;
    const Multiset socket =
        run_star_socket(rig, shards, &socket_count, &trunk_forwards);
    EXPECT_EQ(socket_count, reactor_count) << shards << " shards";
    EXPECT_EQ(socket, reactor) << shards << " shards";
    // The split must actually exercise the wire: a broom cut anywhere
    // sends every downstream copy across a trunk.
    EXPECT_GT(trunk_forwards, 0u) << shards << " shards";
  }
}

TEST(SocketEquality, TrunkSeverAndHealReentersService) {
  // Downing a *cut* edge severs its TCP trunk for real; the endpoint
  // redials with capped backoff and the edge re-enters service (via the
  // same set_link_state path) once the fault lifts AND the trunk is back.
  // Copies queued toward the cut are held the whole time — loss-free.
  StarRig rig;
  const std::vector<std::uint32_t> broker_shard =
      live_broker_shards(rig.topo.graph, 2);
  // Find a cut edge to fault.
  BrokerId cut_a = kNoBroker, cut_b = kNoBroker;
  for (EdgeId e = 0; e < rig.topo.graph.edge_count(); ++e) {
    const Edge& edge = rig.topo.graph.edge(e);
    if (broker_shard[edge.from] != broker_shard[edge.to]) {
      cut_a = edge.from;
      cut_b = edge.to;
      break;
    }
  }
  ASSERT_NE(cut_a, kNoBroker);

  std::vector<std::unique_ptr<LiveNetwork>> nets;
  std::vector<LiveNetwork*> raw;
  for (int shard = 0; shard < 2; ++shard) {
    LiveOptions opt = rig.options();
    opt.mode = LiveMode::kSocket;
    opt.net.shard = shard;
    opt.net.shard_count = 2;
    opt.net.broker_shard = broker_shard;
    opt.net.reconnect_initial_ms = 1.0;  // Heal fast in-test.
    opt.net.reconnect_max_ms = 20.0;
    nets.push_back(std::make_unique<LiveNetwork>(
        &rig.topo, rig.fabric.get(), rig.strategy.get(), opt));
    raw.push_back(nets.back().get());
  }
  const std::vector<std::uint16_t> ports = {nets[0]->trunk_port(),
                                            nets[1]->trunk_port()};
  for (const auto& net : nets) net->connect_trunks(ports);
  for (const auto& net : nets) net->start();
  for (const auto& net : nets) {
    ASSERT_TRUE(net->wait_trunks(std::chrono::milliseconds(10000)));
  }

  for (LiveNetwork* net : raw) net->set_link_state(cut_a, cut_b, false);
  LiveNetwork* hub_home = raw[nets[0]->serves(0) ? 0 : 1];
  for (int i = 0; i < kStarMessages; ++i) {
    hub_home->publish(0, StarRig::message(i), MessageId(i));
  }
  // Give traffic time to reach (and queue at) the severed cut.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (LiveNetwork* net : raw) net->set_link_state(cut_a, cut_b, true);
  drain_live_cluster(raw);

  std::size_t delivered = 0;
  std::uint64_t reconnects = 0;
  for (const auto& net : nets) {
    net->stop();
    delivered += net->stats().deliveries().size();
    reconnects += net->trunk_reconnects();
    EXPECT_EQ(net->stats().lost(), 0u);
  }
  EXPECT_EQ(delivered, static_cast<std::size_t>(kStarMessages) *
                           rig.topo.subscriber_count());
  // The fault really did sever TCP: at least one side redialed.
  EXPECT_GE(reconnects, 1u);
}

// ---- SimConfig workloads through run_live --------------------------------

LiveRunConfig mesh_config(LiveMode mode, std::size_t shards) {
  LiveRunConfig config;
  config.sim.seed = 4242;
  config.sim.topology = TopologyKind::kRandomMesh;
  config.sim.broker_count = 14;
  config.sim.extra_edges = 10;
  config.sim.publisher_count = 3;
  config.sim.subscriber_count = 30;
  config.sim.strategy = StrategyKind::kEbpc;
  config.sim.workload.scenario = ScenarioKind::kSsd;
  config.sim.workload.duration = seconds(20.0);
  config.sim.workload.publishing_rate_per_min = 90.0;
  // No effective deadline (2 sim hours vs a sub-second scaled run): the
  // delivery multiset is then workload-determined, not timing-determined.
  config.sim.workload.ssd_tiers = {{hours(2.0), 1.0}};
  config.mode = mode;
  config.workers = 2;
  config.speedup = 3000.0;
  config.shards = shards;
  return config;
}

TEST(SocketEquality, MeshWorkloadMatchesReactorAcrossShardCounts) {
  const LiveRunResult reactor =
      run_live(mesh_config(LiveMode::kReactor, 0));
  ASSERT_GT(reactor.published, 0u);
  ASSERT_EQ(reactor.lost, 0u);
  const Multiset want = sorted_pairs(reactor);

  for (const std::size_t shards : {2u, 4u}) {
    const LiveRunResult socket =
        run_live(mesh_config(LiveMode::kSocket, shards));
    EXPECT_EQ(socket.published, reactor.published) << shards << " shards";
    EXPECT_EQ(socket.deliveries, reactor.deliveries) << shards << " shards";
    EXPECT_EQ(socket.valid_deliveries, reactor.valid_deliveries);
    EXPECT_DOUBLE_EQ(socket.earning, reactor.earning);
    EXPECT_EQ(socket.lost, 0u);
    EXPECT_EQ(sorted_pairs(socket), want) << shards << " shards";
    EXPECT_GT(socket.trunk_forwards, 0u) << shards << " shards";
  }
}

LiveRunConfig storm_config(LiveMode mode, std::size_t shards) {
  LiveRunConfig config;
  config.sim.seed = 777;
  config.sim.topology = TopologyKind::kRing;
  config.sim.broker_count = 10;
  config.sim.publisher_count = 2;
  config.sim.subscriber_count = 20;
  config.sim.strategy = StrategyKind::kEb;
  config.sim.workload.scenario = ScenarioKind::kSsd;
  config.sim.workload.duration = seconds(20.0);
  config.sim.workload.publishing_rate_per_min = 90.0;
  config.sim.workload.ssd_tiers = {{hours(2.0), 1.0}};
  // Link-outage-only storm: down links *hold* copies (and in socket mode
  // sever + heal the trunk underneath), they never drop them, so the
  // replay keeps the run loss-free and the multiset schedule-independent.
  config.sim.faults.link_outages.push_back(
      LinkOutage{/*at=*/2000.0, /*until=*/8000.0, 0, 1});
  config.sim.faults.link_outages.push_back(
      LinkOutage{/*at=*/4000.0, /*until=*/10000.0, 4, 5});
  config.sim.faults.link_outages.push_back(
      LinkOutage{/*at=*/6000.0, /*until=*/12000.0, 7, 8});
  config.mode = mode;
  config.workers = 2;
  config.speedup = 3000.0;
  config.shards = shards;
  return config;
}

TEST(SocketEquality, StormReplayWithLinkOutagesMatchesReactor) {
  const LiveRunResult reactor =
      run_live(storm_config(LiveMode::kReactor, 0));
  ASSERT_GT(reactor.published, 0u);
  ASSERT_GT(reactor.deliveries, 0u);
  ASSERT_EQ(reactor.lost, 0u);

  const LiveRunResult socket =
      run_live(storm_config(LiveMode::kSocket, 3));
  EXPECT_EQ(socket.published, reactor.published);
  EXPECT_EQ(socket.lost, 0u);
  EXPECT_EQ(socket.deliveries, reactor.deliveries);
  EXPECT_EQ(sorted_pairs(socket), sorted_pairs(reactor));
}

}  // namespace
}  // namespace bdps
