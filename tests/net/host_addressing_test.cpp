// Host-addressing satellite: the transport's bind/dial host knobs.  The
// overlay historically hard-wired 127.0.0.1; NetEndpointOptions::bind_host
// and peer_hosts now aim listeners and trunk dials at explicit IPv4
// literals.  Loopback-only CI can still prove the plumbing: "0.0.0.0"
// binds all interfaces (reachable via 127.0.0.1), explicit "127.0.0.1"
// entries must behave exactly like the empty-host default, and non-literal
// hosts fail loudly (throw on bind/non-blocking dial, false on blocking
// dial) instead of silently reverting to loopback.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "net/endpoint.h"
#include "net/socket_link.h"

namespace bdps {
namespace {

TEST(HostAddressing, ListenerOnAllInterfacesAcceptsLoopbackDials) {
  TcpListener listener(0, "0.0.0.0");
  ASSERT_GT(listener.port(), 0);
  BlockingConn conn;
  ASSERT_TRUE(conn.dial(listener.port(), "127.0.0.1"));
  // The accept side may need a poll-free beat on a loaded machine.
  int fd = -1;
  for (int i = 0; i < 200 && fd < 0; ++i) {
    fd = listener.accept_connection();
    if (fd < 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(fd, 0);
  if (fd >= 0) {
    BlockingConn accepted(fd);
    EXPECT_TRUE(accepted.open());
  }
}

TEST(HostAddressing, ExplicitLoopbackEqualsTheDefault) {
  TcpListener listener(0, "127.0.0.1");
  BlockingConn explicit_host;
  EXPECT_TRUE(explicit_host.dial(listener.port(), "127.0.0.1"));
  BlockingConn default_host;
  EXPECT_TRUE(default_host.dial(listener.port()));
}

TEST(HostAddressing, NonLiteralHostsFailLoudly) {
  EXPECT_THROW(TcpListener(0, "broker-7.example.com"), std::runtime_error);
  EXPECT_THROW(TcpListener(0, "999.0.0.1"), std::runtime_error);
  SocketLink link;
  EXPECT_THROW(link.dial(1, "not-an-address"), std::runtime_error);
  EXPECT_TRUE(link.closed());
  BlockingConn conn;
  EXPECT_FALSE(conn.dial(1, "not-an-address"));
}

TEST(HostAddressing, EndpointsTrunkOverExplicitHosts) {
  // Two shards, both binding all interfaces and dialing each other through
  // explicit per-peer host entries: a forward must arrive and its ack
  // must release the sender's outstanding copy.
  std::atomic<int> received{0};
  std::atomic<std::uint64_t> acked{0};
  auto make_options = [](int shard) {
    NetEndpointOptions options;
    options.shard = shard;
    options.shard_count = 2;
    options.bind_host = "0.0.0.0";
    options.peer_hosts = {"127.0.0.1", "127.0.0.1"};
    return options;
  };
  NetEndpoint a(
      make_options(0), [&](BrokerId, const Message&) { ++received; },
      [&](std::uint64_t n) { acked += n; }, nullptr);
  NetEndpoint b(
      make_options(1), [&](BrokerId, const Message&) { ++received; },
      [&](std::uint64_t n) { acked += n; }, nullptr);
  const std::vector<std::uint16_t> ports{a.port(), b.port()};
  a.connect(ports);
  b.connect(ports);
  ASSERT_TRUE(a.wait_connected(std::chrono::seconds(5)));
  ASSERT_TRUE(b.wait_connected(std::chrono::seconds(5)));

  const auto message = std::make_shared<const Message>(
      MessageId{1}, PublisherId{0}, 0.0, 50.0,
      std::vector<Attribute>{{"A", Value(1.0)}});
  ASSERT_TRUE(a.forward_remote(1, BrokerId{0}, message));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while ((received.load() < 1 || acked.load() < 1) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(received.load(), 1);
  EXPECT_EQ(acked.load(), 1u);
  EXPECT_EQ(a.stop(), 0u);
  EXPECT_EQ(b.stop(), 0u);
}

}  // namespace
}  // namespace bdps
