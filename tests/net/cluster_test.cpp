// End-to-end gate for the distributed daemon: run_live_cluster spawns
// >= 4 brokerd processes (the real binary, via BDPS_BROKERD_PATH),
// distributes a SimConfig workload over the control plane, and the merged
// cross-process result must match the in-process reactor bit-for-bit on
// the (subscriber, message-id) delivery multiset — the same determinism
// the in-process socket gate pins, now across fork/exec, serialized
// config, and loopback trunks.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "experiment/cluster.h"

namespace bdps {
namespace {

using Multiset = std::vector<std::pair<SubscriberId, MessageId>>;

Multiset sorted_pairs(const LiveRunResult& r) {
  Multiset out;
  out.reserve(r.delivery_log.size());
  for (const LiveDelivery& d : r.delivery_log) {
    out.emplace_back(d.subscriber, d.message);
  }
  std::sort(out.begin(), out.end());
  return out;
}

LiveRunConfig cluster_config() {
  LiveRunConfig config;
  config.sim.seed = 1207;
  config.sim.topology = TopologyKind::kRandomMesh;
  config.sim.broker_count = 16;
  config.sim.extra_edges = 12;
  config.sim.publisher_count = 3;
  config.sim.subscriber_count = 32;
  config.sim.strategy = StrategyKind::kEbpc;
  config.sim.workload.scenario = ScenarioKind::kSsd;
  config.sim.workload.duration = seconds(20.0);
  config.sim.workload.publishing_rate_per_min = 90.0;
  // No effective deadline: the delivery multiset is workload-determined.
  config.sim.workload.ssd_tiers = {{hours(2.0), 1.0}};
  config.mode = LiveMode::kSocket;
  config.shards = 4;
  config.workers = 2;
  config.speedup = 3000.0;
  return config;
}

TEST(BrokerdCluster, FourProcessRunCompletesAndMatchesTheReactor) {
  const LiveRunConfig config = cluster_config();

  LiveRunConfig reactor_config = config;
  reactor_config.mode = LiveMode::kReactor;
  reactor_config.shards = 0;
  const LiveRunResult reactor = run_live(reactor_config);
  ASSERT_GT(reactor.published, 0u);
  ASSERT_EQ(reactor.lost, 0u);

  const LiveRunResult cluster =
      run_live_cluster(config, BDPS_BROKERD_PATH);
  EXPECT_EQ(cluster.published, reactor.published);
  EXPECT_EQ(cluster.deliveries, reactor.deliveries);
  EXPECT_EQ(cluster.valid_deliveries, reactor.valid_deliveries);
  EXPECT_DOUBLE_EQ(cluster.earning, reactor.earning);
  EXPECT_EQ(cluster.lost, 0u);
  EXPECT_EQ(cluster.delivery_log.size(), cluster.deliveries);
  // A 4-way cut of a 16-broker mesh must push real traffic over TCP.
  EXPECT_GT(cluster.trunk_forwards, 0u);
  EXPECT_EQ(sorted_pairs(cluster), sorted_pairs(reactor));
}

TEST(BrokerdCluster, SurvivesALinkOutageStormLossFree) {
  LiveRunConfig config = cluster_config();
  config.sim.seed = 1208;
  // Pick outage targets from the topology this seed actually generates (a
  // random mesh — hardcoded broker pairs may not be links).
  const LiveWorld probe = build_live_world(config);
  const Edge& first = probe.topology.graph.edge(0);
  const Edge& last =
      probe.topology.graph.edge(probe.topology.graph.edge_count() - 1);
  config.sim.faults.link_outages.push_back(
      LinkOutage{/*down_at=*/2000.0, /*up_at=*/9000.0, first.from, first.to});
  config.sim.faults.link_outages.push_back(
      LinkOutage{/*down_at=*/5000.0, /*up_at=*/12000.0, last.from, last.to});

  LiveRunConfig reactor_config = config;
  reactor_config.mode = LiveMode::kReactor;
  reactor_config.shards = 0;
  const LiveRunResult reactor = run_live(reactor_config);
  ASSERT_EQ(reactor.lost, 0u);

  // Down links hold copies (and sever/heal trunks underneath); nothing is
  // dropped, so the cross-process multiset still matches exactly.
  const LiveRunResult cluster =
      run_live_cluster(config, BDPS_BROKERD_PATH);
  EXPECT_EQ(cluster.published, reactor.published);
  EXPECT_EQ(cluster.lost, 0u);
  EXPECT_EQ(cluster.deliveries, reactor.deliveries);
  EXPECT_EQ(sorted_pairs(cluster), sorted_pairs(reactor));
}

TEST(BrokerdCluster, ReportsASpawnFailureAsACleanError) {
  const LiveRunConfig config = cluster_config();
  // A nonexistent daemon binary must surface as a thrown error from the
  // controller (which reaps whatever it spawned), not a hang: the child's
  // exec fails, the control-plane accept loop times out.
  EXPECT_THROW(run_live_cluster(config, "/nonexistent/brokerd"),
               std::runtime_error);
}

}  // namespace
}  // namespace bdps
