// Concurrency suite (TSan target: the tsan preset runs `ctest -L
// matching`).  Readers race writers through the epoch-published snapshots;
// the invariants checked here are exactly the ones the protocol promises:
// every emitted row was added with a filter that matches the probe, results
// are ascending and duplicate-free, and a quiesced fabric agrees with brute
// force.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "matching/sharded_index.h"
#include "routing/fabric.h"
#include "workload/generator.h"

namespace bdps::matching {
namespace {

TEST(MatchFabricConcurrent, ReadersRaceChurnWriter) {
  MatchFabricOptions options;
  options.shards = 4;
  options.rebuild_min = 16;  // Frequent republication under the readers.
  MatchFabric fabric(options);

  ChurnWorkloadConfig config;
  config.seed = 11;
  config.attribute_pool = 10;
  config.threshold_pool = 8;
  ChurnWorkload workload(config);

  // The whole add schedule is fixed up front so readers can validate
  // emitted rows against an immutable filter table.
  constexpr std::size_t kAdds = 1500;
  std::vector<Filter> filters;
  filters.reserve(kAdds);
  for (std::size_t i = 0; i < kAdds; ++i) {
    filters.push_back(workload.next_filter());
  }
  std::vector<Message> probes;
  for (int i = 0; i < 32; ++i) probes.push_back(workload.next_message());

  std::atomic<bool> done{false};
  std::thread writer([&] {
    Rng remove_rng(99);
    for (std::size_t i = 0; i < kAdds; ++i) {
      const RowId row = fabric.add(filters[i]);
      ASSERT_EQ(row, i);
      // Tombstone a random earlier row now and then; removed rows may or
      // may not appear in concurrent matches (both linearisations valid),
      // but their filters still matched — the reader invariant holds.
      if (i > 0 && i % 7 == 0) {
        fabric.remove(remove_rng.uniform_index(i));
      }
    }
    done.store(true, std::memory_order_release);
  });

  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      MatchScratch scratch;
      std::size_t iterations = 0;
      while (!done.load(std::memory_order_acquire) || iterations < 50) {
        const Message& m = probes[(iterations + static_cast<std::size_t>(r)) %
                                  probes.size()];
        const auto& got = fabric.match(m, scratch);
        ASSERT_TRUE(std::is_sorted(got.begin(), got.end()));
        ASSERT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end());
        for (const RowId row : got) {
          ASSERT_LT(row, filters.size());
          ASSERT_TRUE(filters[row].matches(m)) << "row " << row;
        }
        ++iterations;
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  // Quiesced: the fabric must now agree with brute force over the live set.
  std::vector<bool> alive(kAdds, true);
  {
    Rng remove_rng(99);
    for (std::size_t i = 0; i < kAdds; ++i) {
      if (i > 0 && i % 7 == 0) alive[remove_rng.uniform_index(i)] = false;
    }
  }
  MatchScratch scratch;
  for (const Message& m : probes) {
    std::vector<RowId> expect;
    for (std::size_t i = 0; i < kAdds; ++i) {
      if (alive[i] && filters[i].matches(m)) expect.push_back(i);
    }
    ASSERT_EQ(fabric.match(m, scratch), expect);
  }
}

TEST(MatchFabricConcurrent, CompileTierRacesReadersAndChurnWriter) {
  // The compile tier's three publication paths all race here: rebuilds
  // compile hot roots inline, writers drain reader-raised compile_wanted
  // flags, and readers themselves volunteer through try_lock mid-match.
  // hits=1/min_members=1 makes every matched root hot immediately, so
  // program republishes happen constantly under the reader load (the TSan
  // matching preset runs this).
  MatchFabricOptions options;
  options.shards = 2;
  options.rebuild_min = 16;
  options.compile_hot_hits = 1;
  options.compile_min_members = 1;
  MatchFabric fabric(options);

  ChurnWorkloadConfig config;
  config.seed = 17;
  config.attribute_pool = 8;   // Heavy collisions: big covering roots.
  config.threshold_pool = 6;
  ChurnWorkload workload(config);

  constexpr std::size_t kAdds = 1200;
  std::vector<Filter> filters;
  filters.reserve(kAdds);
  for (std::size_t i = 0; i < kAdds; ++i) {
    filters.push_back(workload.next_filter());
  }
  std::vector<Message> probes;
  for (int i = 0; i < 32; ++i) probes.push_back(workload.next_message());

  std::atomic<bool> done{false};
  std::thread writer([&] {
    Rng remove_rng(5);
    for (std::size_t i = 0; i < kAdds; ++i) {
      const RowId row = fabric.add(filters[i]);
      ASSERT_EQ(row, i);
      if (i > 0 && i % 5 == 0) {
        fabric.remove(remove_rng.uniform_index(i));
      }
    }
    done.store(true, std::memory_order_release);
  });

  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      MatchScratch scratch;
      std::size_t iterations = 0;
      while (!done.load(std::memory_order_acquire) || iterations < 80) {
        const Message& m = probes[(iterations + static_cast<std::size_t>(r)) %
                                  probes.size()];
        const auto& got = fabric.match(m, scratch);
        ASSERT_TRUE(std::is_sorted(got.begin(), got.end()));
        ASSERT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end());
        for (const RowId row : got) {
          ASSERT_LT(row, filters.size());
          ASSERT_TRUE(filters[row].matches(m)) << "row " << row;
        }
        ++iterations;
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  // Quiesced: compiled answers equal brute force over the live set, and
  // the tier demonstrably ran.
  std::vector<bool> alive(kAdds, true);
  {
    Rng remove_rng(5);
    for (std::size_t i = 0; i < kAdds; ++i) {
      if (i > 0 && i % 5 == 0) alive[remove_rng.uniform_index(i)] = false;
    }
  }
  MatchScratch scratch;
  for (const Message& m : probes) {
    std::vector<RowId> expect;
    for (std::size_t i = 0; i < kAdds; ++i) {
      if (alive[i] && filters[i].matches(m)) expect.push_back(i);
    }
    ASSERT_EQ(fabric.match(m, scratch), expect);
  }
  const MatchFabric::Stats stats = fabric.stats();
  EXPECT_GT(stats.compiles, 0u);
  EXPECT_GT(stats.compiled_roots, 0u);
  EXPECT_GT(stats.vm_member_evals, 0u);
}

TEST(MatchFabricConcurrent, SharedProgramsRaceCompileAndRetireAcrossShards) {
  // Cross-shard program sharing under fire: two signature-identical hot
  // roots live in different hash shards (one pinned in the pre-promotion
  // shard, one fanned out after promote_rows), so their compiles race
  // through the shared program cache — whichever shard compiles first
  // inserts, the rival hits.  Meanwhile the writer's throwaway roots on
  // the same attribute keep that shard rebuilding (rebuild_min=4), so
  // compiled programs retire through the epoch domain and the cache sweep
  // reclaims entries whose last snapshot reference dropped — the
  // compile/retire/sweep interleaving is exactly what TSan watches here.
  MatchFabricOptions options;
  options.shards = 8;
  options.promote_rows = 12;
  options.rebuild_min = 4;  // Constant rebuild/retire churn under readers.
  options.compile_hot_hits = 1;
  options.compile_min_members = 1;
  MatchFabric fabric(options);

  // A root attribute whose hash shard differs from the pinned
  // pre-promotion shard (1), so the two equal groups land apart.
  std::string attr = "R0";
  for (int i = 1; 1 + std::hash<std::string>{}(attr) % 8 == 1; ++i) {
    attr = "R" + std::to_string(i);
  }

  // The whole add schedule is fixed up front (immutable filter table for
  // the readers).  Rows 0-8: covering group in the pre-promotion shard.
  // Rows 9-11: filler crossing promote_rows.  Rows 12-20: the identical
  // group, fanned to attr's own hash shard.  Rows 21+: writer churn —
  // equal-signature throwaway roots on the same attribute (>= 200 never
  // overlaps the groups) plus sprayed W* attributes.
  std::vector<Filter> filters;
  const auto push_group = [&] {
    Filter root;
    root.where(attr, Op::kLt, Value(100.0));
    filters.push_back(std::move(root));
    for (int k = 1; k <= 8; ++k) {
      Filter member;
      member.where(attr, Op::kLt, Value(static_cast<double>(k)));
      filters.push_back(std::move(member));
    }
  };
  push_group();
  for (int i = 0; i < 3; ++i) {
    Filter f;
    f.where("F" + std::to_string(i), Op::kGe, Value(0.0));
    filters.push_back(std::move(f));
  }
  push_group();
  const std::size_t kFixed = filters.size();
  constexpr std::size_t kAdds = 900;
  for (std::size_t i = 0; i < kAdds; ++i) {
    Filter f;
    if (i % 2 == 0) {
      f.where(attr, Op::kGe, Value(200.0 + static_cast<double>(i % 16)));
    } else {
      f.where("W" + std::to_string(i % 7), Op::kLt,
              Value(static_cast<double>(i % 9)));
    }
    filters.push_back(std::move(f));
  }

  for (std::size_t i = 0; i < kFixed; ++i) {
    ASSERT_EQ(fabric.add(filters[i]), i);
  }

  // Probes heat both group roots (0.5), the writer's >= 200 roots (260 —
  // removes keep killing those, so their retired programs go cache-only
  // and the sweep reclaims them), and the W* spray.
  std::vector<Message> probes;
  probes.emplace_back(0, 0, 0.0, 1.0,
                      std::vector<Attribute>{{attr, Value(0.5)}});
  probes.emplace_back(1, 0, 0.0, 1.0,
                      std::vector<Attribute>{{attr, Value(260.0)}});
  for (int w = 0; w < 7; ++w) {
    probes.emplace_back(2 + w, 0, 0.0, 1.0,
                        std::vector<Attribute>{
                            {"W" + std::to_string(w), Value(4.5)},
                            {attr, Value(0.5)}});
  }

  std::atomic<bool> done{false};
  std::thread writer([&] {
    Rng remove_rng(23);
    for (std::size_t i = 0; i < kAdds; ++i) {
      const RowId row = fabric.add(filters[kFixed + i]);
      ASSERT_EQ(row, kFixed + i);
      // Tombstone only the writer's own earlier rows: the two groups stay
      // alive, so the shared hot roots' member lists never change.
      if (i > 0 && i % 5 == 0) {
        fabric.remove(kFixed + remove_rng.uniform_index(i));
      }
    }
    done.store(true, std::memory_order_release);
  });

  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      MatchScratch scratch;
      std::size_t iterations = 0;
      while (!done.load(std::memory_order_acquire) || iterations < 80) {
        const Message& m = probes[(iterations + static_cast<std::size_t>(r)) %
                                  probes.size()];
        const auto& got = fabric.match(m, scratch);
        ASSERT_TRUE(std::is_sorted(got.begin(), got.end()));
        ASSERT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end());
        for (const RowId row : got) {
          ASSERT_LT(row, filters.size());
          ASSERT_TRUE(filters[row].matches(m)) << "row " << row;
        }
        ++iterations;
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  // Quiesced: force one more rebuild of the fanned shard (its overlay
  // threshold is core/8, far below this forcer count) so the hot group
  // root deterministically recompiles through the cache — by now both
  // shards compiled, so the fold is a guaranteed cache hit even if the
  // racing volunteer compiles above both missed and dedup'd at insert.
  const std::size_t kForcers = 160;
  for (std::size_t i = 0; i < kForcers; ++i) {
    Filter f;
    f.where(attr, Op::kGe, Value(200.0 + static_cast<double>(i % 16)));
    ASSERT_EQ(fabric.add(f), filters.size());
    filters.push_back(std::move(f));
  }

  // The fabric agrees with brute force over the live set, and the cache
  // demonstrably shared a program across the two shards.
  std::vector<bool> alive(filters.size(), true);
  {
    Rng remove_rng(23);
    for (std::size_t i = 0; i < kAdds; ++i) {
      if (i > 0 && i % 5 == 0) {
        alive[kFixed + remove_rng.uniform_index(i)] = false;
      }
    }
  }
  MatchScratch scratch;
  for (const Message& m : probes) {
    std::vector<RowId> expect;
    for (std::size_t i = 0; i < filters.size(); ++i) {
      if (alive[i] && filters[i].matches(m)) expect.push_back(i);
    }
    ASSERT_EQ(fabric.match(m, scratch), expect);
  }
  const MatchFabric::Stats stats = fabric.stats();
  EXPECT_GT(stats.compiles, 0u);
  EXPECT_GE(stats.shared_programs, 1u);
  EXPECT_GT(stats.vm_batch_evals, 0u);
  EXPECT_GE(stats.unique_programs, 1u);
}

TEST(MatchFabricConcurrent, ManyScratchesShareOneDomainSlotPool) {
  MatchFabric fabric;
  for (int i = 0; i < 8; ++i) {
    Filter f;
    f.where("A", Op::kGe, Value(static_cast<double>(i)));
    fabric.add(f);
  }
  const Message m(1, 0, 0.0, 1.0, {{"A", Value(100.0)}});
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      // Scratches come and go: slots must recycle without double-use.
      for (int i = 0; i < 200; ++i) {
        MatchScratch scratch;
        ASSERT_EQ(fabric.match(m, scratch).size(), 8u);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

/// Satellite: concurrent match_at from distinct brokers (the reactor's
/// broker-ownership layout) — and, under kSharded, from the *same* broker
/// with caller scratches — is race-free and agrees with the sequential
/// answer.
TEST(RoutingFabricConcurrent, MatchAtFromDistinctBrokersIsRaceFree) {
  // Star-of-chains topology: publisher at the hub, subscribers spread over
  // every chain so most brokers carry rows.
  Rng rng(3);
  Topology topo;
  constexpr std::size_t kBrokers = 16;
  topo.graph.resize(kBrokers);
  for (std::size_t b = 1; b < kBrokers; ++b) {
    topo.graph.add_bidirectional(0, static_cast<BrokerId>(b),
                                 LinkParams{50.0 + 2.0 * b, 10.0});
  }
  topo.publisher_edges = {0};
  std::vector<Subscription> subs;
  for (std::size_t s = 0; s < 64; ++s) {
    Subscription sub;
    sub.subscriber = static_cast<SubscriberId>(s);
    sub.home = static_cast<BrokerId>(1 + s % (kBrokers - 1));
    topo.subscriber_homes.push_back(sub.home);
    Filter f;
    f.where("A1", Op::kLt, Value(rng.uniform(0.0, 10.0)));
    if (s % 3 == 0) f.where("A2", Op::kGe, Value(rng.uniform(0.0, 10.0)));
    sub.filter = std::move(f);
    subs.push_back(std::move(sub));
  }

  FabricOptions options;
  options.engine = MatchEngine::kSharded;
  const RoutingFabric fabric(topo, std::move(subs), options);

  std::vector<Message> probes;
  for (int i = 0; i < 24; ++i) {
    probes.emplace_back(i, 0, 0.0, 1.0,
                        std::vector<Attribute>{
                            {"A1", Value(rng.uniform(0.0, 10.0))},
                            {"A2", Value(rng.uniform(0.0, 10.0))}});
  }

  // Sequential ground truth, then the racing replay.
  std::vector<std::vector<std::vector<const SubscriptionEntry*>>> expect(
      kBrokers);
  for (BrokerId b = 0; b < static_cast<BrokerId>(kBrokers); ++b) {
    for (const Message& m : probes) expect[b].push_back(fabric.match_at(b, m));
  }

  std::vector<std::thread> threads;
  for (BrokerId b = 0; b < static_cast<BrokerId>(kBrokers); ++b) {
    threads.emplace_back([&, b] {
      std::vector<const SubscriptionEntry*> out;
      for (int round = 0; round < 20; ++round) {
        for (std::size_t i = 0; i < probes.size(); ++i) {
          fabric.match_at(b, probes[i], out);
          ASSERT_EQ(out, expect[b][i]);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Same broker, many threads, caller-owned scratches (kSharded only).
  std::vector<std::thread> same_broker;
  for (int t = 0; t < 4; ++t) {
    same_broker.emplace_back([&] {
      MatchScratch scratch;
      std::vector<const SubscriptionEntry*> out;
      for (int round = 0; round < 40; ++round) {
        for (std::size_t i = 0; i < probes.size(); ++i) {
          fabric.match_at(1, probes[i], scratch, out);
          ASSERT_EQ(out, expect[1][i]);
        }
      }
    });
  }
  for (std::thread& t : same_broker) t.join();
}

}  // namespace
}  // namespace bdps::matching
