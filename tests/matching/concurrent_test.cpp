// Concurrency suite (TSan target: the tsan preset runs `ctest -L
// matching`).  Readers race writers through the epoch-published snapshots;
// the invariants checked here are exactly the ones the protocol promises:
// every emitted row was added with a filter that matches the probe, results
// are ascending and duplicate-free, and a quiesced fabric agrees with brute
// force.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"
#include "matching/sharded_index.h"
#include "routing/fabric.h"
#include "workload/generator.h"

namespace bdps::matching {
namespace {

TEST(MatchFabricConcurrent, ReadersRaceChurnWriter) {
  MatchFabricOptions options;
  options.shards = 4;
  options.rebuild_min = 16;  // Frequent republication under the readers.
  MatchFabric fabric(options);

  ChurnWorkloadConfig config;
  config.seed = 11;
  config.attribute_pool = 10;
  config.threshold_pool = 8;
  ChurnWorkload workload(config);

  // The whole add schedule is fixed up front so readers can validate
  // emitted rows against an immutable filter table.
  constexpr std::size_t kAdds = 1500;
  std::vector<Filter> filters;
  filters.reserve(kAdds);
  for (std::size_t i = 0; i < kAdds; ++i) {
    filters.push_back(workload.next_filter());
  }
  std::vector<Message> probes;
  for (int i = 0; i < 32; ++i) probes.push_back(workload.next_message());

  std::atomic<bool> done{false};
  std::thread writer([&] {
    Rng remove_rng(99);
    for (std::size_t i = 0; i < kAdds; ++i) {
      const RowId row = fabric.add(filters[i]);
      ASSERT_EQ(row, i);
      // Tombstone a random earlier row now and then; removed rows may or
      // may not appear in concurrent matches (both linearisations valid),
      // but their filters still matched — the reader invariant holds.
      if (i > 0 && i % 7 == 0) {
        fabric.remove(remove_rng.uniform_index(i));
      }
    }
    done.store(true, std::memory_order_release);
  });

  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      MatchScratch scratch;
      std::size_t iterations = 0;
      while (!done.load(std::memory_order_acquire) || iterations < 50) {
        const Message& m = probes[(iterations + static_cast<std::size_t>(r)) %
                                  probes.size()];
        const auto& got = fabric.match(m, scratch);
        ASSERT_TRUE(std::is_sorted(got.begin(), got.end()));
        ASSERT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end());
        for (const RowId row : got) {
          ASSERT_LT(row, filters.size());
          ASSERT_TRUE(filters[row].matches(m)) << "row " << row;
        }
        ++iterations;
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  // Quiesced: the fabric must now agree with brute force over the live set.
  std::vector<bool> alive(kAdds, true);
  {
    Rng remove_rng(99);
    for (std::size_t i = 0; i < kAdds; ++i) {
      if (i > 0 && i % 7 == 0) alive[remove_rng.uniform_index(i)] = false;
    }
  }
  MatchScratch scratch;
  for (const Message& m : probes) {
    std::vector<RowId> expect;
    for (std::size_t i = 0; i < kAdds; ++i) {
      if (alive[i] && filters[i].matches(m)) expect.push_back(i);
    }
    ASSERT_EQ(fabric.match(m, scratch), expect);
  }
}

TEST(MatchFabricConcurrent, CompileTierRacesReadersAndChurnWriter) {
  // The compile tier's three publication paths all race here: rebuilds
  // compile hot roots inline, writers drain reader-raised compile_wanted
  // flags, and readers themselves volunteer through try_lock mid-match.
  // hits=1/min_members=1 makes every matched root hot immediately, so
  // program republishes happen constantly under the reader load (the TSan
  // matching preset runs this).
  MatchFabricOptions options;
  options.shards = 2;
  options.rebuild_min = 16;
  options.compile_hot_hits = 1;
  options.compile_min_members = 1;
  MatchFabric fabric(options);

  ChurnWorkloadConfig config;
  config.seed = 17;
  config.attribute_pool = 8;   // Heavy collisions: big covering roots.
  config.threshold_pool = 6;
  ChurnWorkload workload(config);

  constexpr std::size_t kAdds = 1200;
  std::vector<Filter> filters;
  filters.reserve(kAdds);
  for (std::size_t i = 0; i < kAdds; ++i) {
    filters.push_back(workload.next_filter());
  }
  std::vector<Message> probes;
  for (int i = 0; i < 32; ++i) probes.push_back(workload.next_message());

  std::atomic<bool> done{false};
  std::thread writer([&] {
    Rng remove_rng(5);
    for (std::size_t i = 0; i < kAdds; ++i) {
      const RowId row = fabric.add(filters[i]);
      ASSERT_EQ(row, i);
      if (i > 0 && i % 5 == 0) {
        fabric.remove(remove_rng.uniform_index(i));
      }
    }
    done.store(true, std::memory_order_release);
  });

  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      MatchScratch scratch;
      std::size_t iterations = 0;
      while (!done.load(std::memory_order_acquire) || iterations < 80) {
        const Message& m = probes[(iterations + static_cast<std::size_t>(r)) %
                                  probes.size()];
        const auto& got = fabric.match(m, scratch);
        ASSERT_TRUE(std::is_sorted(got.begin(), got.end()));
        ASSERT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end());
        for (const RowId row : got) {
          ASSERT_LT(row, filters.size());
          ASSERT_TRUE(filters[row].matches(m)) << "row " << row;
        }
        ++iterations;
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  // Quiesced: compiled answers equal brute force over the live set, and
  // the tier demonstrably ran.
  std::vector<bool> alive(kAdds, true);
  {
    Rng remove_rng(5);
    for (std::size_t i = 0; i < kAdds; ++i) {
      if (i > 0 && i % 5 == 0) alive[remove_rng.uniform_index(i)] = false;
    }
  }
  MatchScratch scratch;
  for (const Message& m : probes) {
    std::vector<RowId> expect;
    for (std::size_t i = 0; i < kAdds; ++i) {
      if (alive[i] && filters[i].matches(m)) expect.push_back(i);
    }
    ASSERT_EQ(fabric.match(m, scratch), expect);
  }
  const MatchFabric::Stats stats = fabric.stats();
  EXPECT_GT(stats.compiles, 0u);
  EXPECT_GT(stats.compiled_roots, 0u);
  EXPECT_GT(stats.vm_member_evals, 0u);
}

TEST(MatchFabricConcurrent, ManyScratchesShareOneDomainSlotPool) {
  MatchFabric fabric;
  for (int i = 0; i < 8; ++i) {
    Filter f;
    f.where("A", Op::kGe, Value(static_cast<double>(i)));
    fabric.add(f);
  }
  const Message m(1, 0, 0.0, 1.0, {{"A", Value(100.0)}});
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      // Scratches come and go: slots must recycle without double-use.
      for (int i = 0; i < 200; ++i) {
        MatchScratch scratch;
        ASSERT_EQ(fabric.match(m, scratch).size(), 8u);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

/// Satellite: concurrent match_at from distinct brokers (the reactor's
/// broker-ownership layout) — and, under kSharded, from the *same* broker
/// with caller scratches — is race-free and agrees with the sequential
/// answer.
TEST(RoutingFabricConcurrent, MatchAtFromDistinctBrokersIsRaceFree) {
  // Star-of-chains topology: publisher at the hub, subscribers spread over
  // every chain so most brokers carry rows.
  Rng rng(3);
  Topology topo;
  constexpr std::size_t kBrokers = 16;
  topo.graph.resize(kBrokers);
  for (std::size_t b = 1; b < kBrokers; ++b) {
    topo.graph.add_bidirectional(0, static_cast<BrokerId>(b),
                                 LinkParams{50.0 + 2.0 * b, 10.0});
  }
  topo.publisher_edges = {0};
  std::vector<Subscription> subs;
  for (std::size_t s = 0; s < 64; ++s) {
    Subscription sub;
    sub.subscriber = static_cast<SubscriberId>(s);
    sub.home = static_cast<BrokerId>(1 + s % (kBrokers - 1));
    topo.subscriber_homes.push_back(sub.home);
    Filter f;
    f.where("A1", Op::kLt, Value(rng.uniform(0.0, 10.0)));
    if (s % 3 == 0) f.where("A2", Op::kGe, Value(rng.uniform(0.0, 10.0)));
    sub.filter = std::move(f);
    subs.push_back(std::move(sub));
  }

  FabricOptions options;
  options.engine = MatchEngine::kSharded;
  const RoutingFabric fabric(topo, std::move(subs), options);

  std::vector<Message> probes;
  for (int i = 0; i < 24; ++i) {
    probes.emplace_back(i, 0, 0.0, 1.0,
                        std::vector<Attribute>{
                            {"A1", Value(rng.uniform(0.0, 10.0))},
                            {"A2", Value(rng.uniform(0.0, 10.0))}});
  }

  // Sequential ground truth, then the racing replay.
  std::vector<std::vector<std::vector<const SubscriptionEntry*>>> expect(
      kBrokers);
  for (BrokerId b = 0; b < static_cast<BrokerId>(kBrokers); ++b) {
    for (const Message& m : probes) expect[b].push_back(fabric.match_at(b, m));
  }

  std::vector<std::thread> threads;
  for (BrokerId b = 0; b < static_cast<BrokerId>(kBrokers); ++b) {
    threads.emplace_back([&, b] {
      std::vector<const SubscriptionEntry*> out;
      for (int round = 0; round < 20; ++round) {
        for (std::size_t i = 0; i < probes.size(); ++i) {
          fabric.match_at(b, probes[i], out);
          ASSERT_EQ(out, expect[b][i]);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Same broker, many threads, caller-owned scratches (kSharded only).
  std::vector<std::thread> same_broker;
  for (int t = 0; t < 4; ++t) {
    same_broker.emplace_back([&] {
      MatchScratch scratch;
      std::vector<const SubscriptionEntry*> out;
      for (int round = 0; round < 40; ++round) {
        for (std::size_t i = 0; i < probes.size(); ++i) {
          fabric.match_at(1, probes[i], scratch, out);
          ASSERT_EQ(out, expect[1][i]);
        }
      }
    });
  }
  for (std::thread& t : same_broker) t.join();
}

}  // namespace
}  // namespace bdps::matching
