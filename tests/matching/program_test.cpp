// PredicateProgram unit suite: the compiled tier's equivalence contract
// against Filter::matches, pinned at the places it could plausibly break —
// nextafter boundary folds (kLt/kGt vs kLe/kGe at shared thresholds),
// +-inf message values against inclusive bounds, kInRange, string
// equality interning, fallback members (kNe, string orderings, non-finite
// operands), contradictory members, and slot sharing across members.
#include "matching/program/program.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "workload/generator.h"

namespace bdps::matching::program {
namespace {

Message make_message(std::vector<Attribute> head) {
  return Message(1, 0, 0.0, 50.0, std::move(head));
}

Filter where(const std::string& attr, Op op, Value v, Value v2 = Value()) {
  Filter f;
  f.where(attr, op, std::move(v), std::move(v2));
  return f;
}

/// Compiles `members` and checks evaluate() against Filter::matches for
/// every probe — the contract the fabric's differential fuzz relies on.
void expect_equivalent(const std::vector<Filter>& members,
                       const std::vector<Message>& probes) {
  std::vector<const Filter*> pointers;
  for (const Filter& f : members) pointers.push_back(&f);
  const PredicateProgram program = PredicateProgram::compile(pointers);
  ASSERT_EQ(program.member_count(), members.size());
  ProgramEval eval;
  for (std::size_t p = 0; p < probes.size(); ++p) {
    program.evaluate(probes[p], eval);
    for (std::size_t m = 0; m < members.size(); ++m) {
      ASSERT_EQ(eval.matched[m] != 0, members[m].matches(probes[p]))
          << "member " << m << " (" << members[m].to_string() << ") probe "
          << p;
    }
  }
}

TEST(PredicateProgram, StrictBoundsFoldExactlyAtSharedThresholds) {
  // All four comparison shapes on one threshold: the nextafter folds must
  // reproduce the strict/inclusive split at c exactly, including one ulp
  // on either side.
  const double c = 5.0;
  const std::vector<Filter> members = {
      where("A", Op::kLt, Value(c)), where("A", Op::kLe, Value(c)),
      where("A", Op::kGt, Value(c)), where("A", Op::kGe, Value(c)),
      where("A", Op::kEq, Value(c))};
  std::vector<Message> probes;
  const double inf = std::numeric_limits<double>::infinity();
  for (const double v :
       {c, std::nextafter(c, -inf), std::nextafter(c, inf), 0.0, -inf, inf,
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::lowest(),
        std::numeric_limits<double>::denorm_min()}) {
    probes.push_back(make_message({{"A", Value(v)}}));
  }
  probes.push_back(make_message({}));  // Missing attribute: nothing matches.
  expect_equivalent(members, probes);
}

TEST(PredicateProgram, InfiniteMessageValuesAgainstFiniteBounds) {
  // The inclusive-bound representation exists for exactly this case: a
  // half-open fold would misclassify v = +inf under an unbounded-above
  // interval.  kLe DBL_MAX must reject +inf, kGe lowest() must reject
  // -inf's complement, etc.
  const std::vector<Filter> members = {
      where("A", Op::kLe, Value(std::numeric_limits<double>::max())),
      where("A", Op::kGe, Value(std::numeric_limits<double>::lowest())),
      where("A", Op::kLt, Value(std::numeric_limits<double>::max())),
      where("A", Op::kGt, Value(std::numeric_limits<double>::lowest()))};
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<Message> probes;
  for (const double v : {inf, -inf, 0.0, std::numeric_limits<double>::max(),
                         std::numeric_limits<double>::lowest()}) {
    probes.push_back(make_message({{"A", Value(v)}}));
  }
  expect_equivalent(members, probes);
}

TEST(PredicateProgram, InRangeIsInclusiveBothEnds) {
  const std::vector<Filter> members = {
      where("A", Op::kInRange, Value(2.0), Value(4.0)),
      where("A", Op::kInRange, Value(3.0), Value(3.0)),   // Point range.
      where("A", Op::kInRange, Value(4.0), Value(2.0))};  // Empty range.
  std::vector<Message> probes;
  for (const double v : {1.0, 2.0, 2.5, 3.0, 4.0, 4.5}) {
    probes.push_back(make_message({{"A", Value(v)}}));
  }
  expect_equivalent(members, probes);
}

TEST(PredicateProgram, ConjunctionsCountAcrossSharedSlots) {
  // Members constraining overlapping attribute sets: slots are shared,
  // counts must land on the right member.
  std::vector<Filter> members;
  {
    Filter f;
    f.where("A", Op::kGe, Value(1.0));
    f.where("B", Op::kLt, Value(5.0));
    members.push_back(std::move(f));
  }
  {
    Filter f;
    f.where("A", Op::kLt, Value(3.0));
    f.where("C", Op::kGt, Value(0.0));
    members.push_back(std::move(f));
  }
  {
    Filter f;  // Same attribute twice: both predicates must hold.
    f.where("A", Op::kGe, Value(1.0));
    f.where("A", Op::kLe, Value(2.0));
    members.push_back(std::move(f));
  }
  members.push_back(Filter{});  // Wildcard member: required count 0.
  std::vector<Message> probes = {
      make_message({{"A", Value(2.0)}, {"B", Value(1.0)}, {"C", Value(1.0)}}),
      make_message({{"A", Value(2.5)}, {"B", Value(9.0)}}),
      make_message({{"A", Value(0.5)}, {"C", Value(1.0)}}),
      make_message({{"B", Value(1.0)}}),
      make_message({})};
  expect_equivalent(members, probes);
}

TEST(PredicateProgram, StringEqualityComparesInternedIds) {
  const std::vector<Filter> members = {
      where("S", Op::kEq, Value(std::string("alpha"))),
      where("S", Op::kEq, Value(std::string("beta"))),
      where("T", Op::kEq, Value(std::string("alpha")))};
  const std::vector<Message> probes = {
      make_message({{"S", Value(std::string("alpha"))}}),
      make_message({{"S", Value(std::string("beta"))},
                    {"T", Value(std::string("alpha"))}}),
      make_message({{"S", Value(std::string("gamma"))}}),  // Never interned.
      make_message({{"S", Value(7.0)}}),  // Type mismatch on a string slot.
      make_message({})};
  expect_equivalent(members, probes);
}

TEST(PredicateProgram, UncompilablePredicatesFallBackToInterpreter) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<Filter> members = {
      where("A", Op::kNe, Value(3.0)),                      // kNe.
      where("S", Op::kLt, Value(std::string("m"))),         // String order.
      where("A", Op::kLe, Value(nan)),                      // NaN operand.
      where("A", Op::kGe,
            Value(std::numeric_limits<double>::infinity())),  // Inf operand.
      where("A", Op::kLt, Value(3.0))};                     // Compiled peer.
  std::vector<const Filter*> pointers;
  for (const Filter& f : members) pointers.push_back(&f);
  const PredicateProgram program = PredicateProgram::compile(pointers);
  EXPECT_GE(program.fallback_count(), 4u);
  const std::vector<Message> probes = {
      make_message({{"A", Value(2.0)}, {"S", Value(std::string("a"))}}),
      make_message({{"A", Value(3.0)}, {"S", Value(std::string("z"))}}),
      make_message({{"A", Value(std::numeric_limits<double>::infinity())}}),
      make_message({})};
  expect_equivalent(members, probes);
}

TEST(PredicateProgram, ContradictoryMembersNeverMatch) {
  std::vector<Filter> members;
  {
    Filter f;  // Empty numeric interval.
    f.where("A", Op::kGt, Value(5.0));
    f.where("A", Op::kLt, Value(5.0));
    members.push_back(std::move(f));
  }
  {
    Filter f;  // Clashing string equalities.
    f.where("S", Op::kEq, Value(std::string("x")));
    f.where("S", Op::kEq, Value(std::string("y")));
    members.push_back(std::move(f));
  }
  {
    Filter f;  // Number-equality vs string-equality on one attribute.
    f.where("A", Op::kEq, Value(2.0));
    f.where("A", Op::kEq, Value(std::string("two")));
    members.push_back(std::move(f));
  }
  const std::vector<Message> probes = {
      make_message({{"A", Value(5.0)}, {"S", Value(std::string("x"))}}),
      make_message({{"A", Value(2.0)}, {"S", Value(std::string("y"))}}),
      make_message({{"A", Value(std::string("two"))}})};
  expect_equivalent(members, probes);
}

TEST(PredicateProgram, DuplicateMessageAttributesUseFirstOccurrence) {
  // Message::find returns the first occurrence; the program resolves each
  // slot through the same lookup, so duplicate-name heads stay equivalent.
  const std::vector<Filter> members = {where("A", Op::kGe, Value(3.0)),
                                       where("A", Op::kLt, Value(3.0))};
  const std::vector<Message> probes = {
      make_message({{"A", Value(5.0)}, {"A", Value(1.0)}}),
      make_message({{"A", Value(1.0)}, {"A", Value(5.0)}})};
  expect_equivalent(members, probes);
}

TEST(PredicateProgram, ZipfCorpusEquivalenceSweep) {
  // Randomized closure over the generator the fabric benches use: every
  // (member, probe) verdict must agree with the interpreter.
  for (const std::uint64_t seed : {21ULL, 22ULL, 23ULL}) {
    ChurnWorkloadConfig config;
    config.seed = seed;
    config.attribute_pool = 10;
    config.threshold_pool = 6;
    ChurnWorkload workload(config);
    std::vector<Filter> members;
    for (int i = 0; i < 96; ++i) members.push_back(workload.next_filter());
    std::vector<Message> probes;
    for (int i = 0; i < 64; ++i) probes.push_back(workload.next_message());
    expect_equivalent(members, probes);
  }
}

TEST(PredicateProgram, EvaluateIsReentrantAcrossScratches) {
  // One immutable program, two scratches, interleaved evaluations.
  const std::vector<Filter> members = {where("A", Op::kLt, Value(5.0)),
                                       where("A", Op::kGe, Value(5.0))};
  std::vector<const Filter*> pointers;
  for (const Filter& f : members) pointers.push_back(&f);
  const PredicateProgram program = PredicateProgram::compile(pointers);
  ProgramEval a;
  ProgramEval b;
  const Message low = make_message({{"A", Value(1.0)}});
  const Message high = make_message({{"A", Value(9.0)}});
  program.evaluate(low, a);
  program.evaluate(high, b);
  EXPECT_NE(a.matched[0], 0);
  EXPECT_EQ(a.matched[1], 0);
  EXPECT_EQ(b.matched[0], 0);
  EXPECT_NE(b.matched[1], 0);
}

}  // namespace
}  // namespace bdps::matching::program
