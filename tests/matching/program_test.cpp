// PredicateProgram unit suite: the compiled tier's equivalence contract
// against Filter::matches, pinned at the places it could plausibly break —
// nextafter boundary folds (kLt/kGt vs kLe/kGe at shared thresholds),
// +-inf message values against inclusive bounds, kInRange, string
// equality interning, fallback members (kNe, string orderings, non-finite
// operands), contradictory members, and slot sharing across members.
#include "matching/program/program.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "matching/program/simd.h"
#include "workload/generator.h"

namespace bdps::matching::program {
namespace {

Message make_message(std::vector<Attribute> head) {
  return Message(1, 0, 0.0, 50.0, std::move(head));
}

Filter where(const std::string& attr, Op op, Value v, Value v2 = Value()) {
  Filter f;
  f.where(attr, op, std::move(v), std::move(v2));
  return f;
}

/// Compiles `members` and checks evaluate() against Filter::matches for
/// every probe — the contract the fabric's differential fuzz relies on.
void expect_equivalent(const std::vector<Filter>& members,
                       const std::vector<Message>& probes) {
  std::vector<const Filter*> pointers;
  for (const Filter& f : members) pointers.push_back(&f);
  const PredicateProgram program = PredicateProgram::compile(pointers);
  ASSERT_EQ(program.member_count(), members.size());
  ProgramEval eval;
  for (std::size_t p = 0; p < probes.size(); ++p) {
    program.evaluate(probes[p], eval);
    for (std::size_t m = 0; m < members.size(); ++m) {
      ASSERT_EQ(eval.matched[m] != 0, members[m].matches(probes[p]))
          << "member " << m << " (" << members[m].to_string() << ") probe "
          << p;
    }
  }
}

TEST(PredicateProgram, StrictBoundsFoldExactlyAtSharedThresholds) {
  // All four comparison shapes on one threshold: the nextafter folds must
  // reproduce the strict/inclusive split at c exactly, including one ulp
  // on either side.
  const double c = 5.0;
  const std::vector<Filter> members = {
      where("A", Op::kLt, Value(c)), where("A", Op::kLe, Value(c)),
      where("A", Op::kGt, Value(c)), where("A", Op::kGe, Value(c)),
      where("A", Op::kEq, Value(c))};
  std::vector<Message> probes;
  const double inf = std::numeric_limits<double>::infinity();
  for (const double v :
       {c, std::nextafter(c, -inf), std::nextafter(c, inf), 0.0, -inf, inf,
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::lowest(),
        std::numeric_limits<double>::denorm_min()}) {
    probes.push_back(make_message({{"A", Value(v)}}));
  }
  probes.push_back(make_message({}));  // Missing attribute: nothing matches.
  expect_equivalent(members, probes);
}

TEST(PredicateProgram, InfiniteMessageValuesAgainstFiniteBounds) {
  // The inclusive-bound representation exists for exactly this case: a
  // half-open fold would misclassify v = +inf under an unbounded-above
  // interval.  kLe DBL_MAX must reject +inf, kGe lowest() must reject
  // -inf's complement, etc.
  const std::vector<Filter> members = {
      where("A", Op::kLe, Value(std::numeric_limits<double>::max())),
      where("A", Op::kGe, Value(std::numeric_limits<double>::lowest())),
      where("A", Op::kLt, Value(std::numeric_limits<double>::max())),
      where("A", Op::kGt, Value(std::numeric_limits<double>::lowest()))};
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<Message> probes;
  for (const double v : {inf, -inf, 0.0, std::numeric_limits<double>::max(),
                         std::numeric_limits<double>::lowest()}) {
    probes.push_back(make_message({{"A", Value(v)}}));
  }
  expect_equivalent(members, probes);
}

TEST(PredicateProgram, InRangeIsInclusiveBothEnds) {
  const std::vector<Filter> members = {
      where("A", Op::kInRange, Value(2.0), Value(4.0)),
      where("A", Op::kInRange, Value(3.0), Value(3.0)),   // Point range.
      where("A", Op::kInRange, Value(4.0), Value(2.0))};  // Empty range.
  std::vector<Message> probes;
  for (const double v : {1.0, 2.0, 2.5, 3.0, 4.0, 4.5}) {
    probes.push_back(make_message({{"A", Value(v)}}));
  }
  expect_equivalent(members, probes);
}

TEST(PredicateProgram, ConjunctionsCountAcrossSharedSlots) {
  // Members constraining overlapping attribute sets: slots are shared,
  // counts must land on the right member.
  std::vector<Filter> members;
  {
    Filter f;
    f.where("A", Op::kGe, Value(1.0));
    f.where("B", Op::kLt, Value(5.0));
    members.push_back(std::move(f));
  }
  {
    Filter f;
    f.where("A", Op::kLt, Value(3.0));
    f.where("C", Op::kGt, Value(0.0));
    members.push_back(std::move(f));
  }
  {
    Filter f;  // Same attribute twice: both predicates must hold.
    f.where("A", Op::kGe, Value(1.0));
    f.where("A", Op::kLe, Value(2.0));
    members.push_back(std::move(f));
  }
  members.push_back(Filter{});  // Wildcard member: required count 0.
  std::vector<Message> probes = {
      make_message({{"A", Value(2.0)}, {"B", Value(1.0)}, {"C", Value(1.0)}}),
      make_message({{"A", Value(2.5)}, {"B", Value(9.0)}}),
      make_message({{"A", Value(0.5)}, {"C", Value(1.0)}}),
      make_message({{"B", Value(1.0)}}),
      make_message({})};
  expect_equivalent(members, probes);
}

TEST(PredicateProgram, StringEqualityComparesInternedIds) {
  const std::vector<Filter> members = {
      where("S", Op::kEq, Value(std::string("alpha"))),
      where("S", Op::kEq, Value(std::string("beta"))),
      where("T", Op::kEq, Value(std::string("alpha")))};
  const std::vector<Message> probes = {
      make_message({{"S", Value(std::string("alpha"))}}),
      make_message({{"S", Value(std::string("beta"))},
                    {"T", Value(std::string("alpha"))}}),
      make_message({{"S", Value(std::string("gamma"))}}),  // Never interned.
      make_message({{"S", Value(7.0)}}),  // Type mismatch on a string slot.
      make_message({})};
  expect_equivalent(members, probes);
}

TEST(PredicateProgram, UncompilablePredicatesFallBackToInterpreter) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<Filter> members = {
      where("A", Op::kNe, Value(3.0)),                      // kNe.
      where("S", Op::kLt, Value(std::string("m"))),         // String order.
      where("A", Op::kLe, Value(nan)),                      // NaN operand.
      where("A", Op::kGe,
            Value(std::numeric_limits<double>::infinity())),  // Inf operand.
      where("A", Op::kLt, Value(3.0))};                     // Compiled peer.
  std::vector<const Filter*> pointers;
  for (const Filter& f : members) pointers.push_back(&f);
  const PredicateProgram program = PredicateProgram::compile(pointers);
  EXPECT_GE(program.fallback_count(), 4u);
  const std::vector<Message> probes = {
      make_message({{"A", Value(2.0)}, {"S", Value(std::string("a"))}}),
      make_message({{"A", Value(3.0)}, {"S", Value(std::string("z"))}}),
      make_message({{"A", Value(std::numeric_limits<double>::infinity())}}),
      make_message({})};
  expect_equivalent(members, probes);
}

TEST(PredicateProgram, ContradictoryMembersNeverMatch) {
  std::vector<Filter> members;
  {
    Filter f;  // Empty numeric interval.
    f.where("A", Op::kGt, Value(5.0));
    f.where("A", Op::kLt, Value(5.0));
    members.push_back(std::move(f));
  }
  {
    Filter f;  // Clashing string equalities.
    f.where("S", Op::kEq, Value(std::string("x")));
    f.where("S", Op::kEq, Value(std::string("y")));
    members.push_back(std::move(f));
  }
  {
    Filter f;  // Number-equality vs string-equality on one attribute.
    f.where("A", Op::kEq, Value(2.0));
    f.where("A", Op::kEq, Value(std::string("two")));
    members.push_back(std::move(f));
  }
  const std::vector<Message> probes = {
      make_message({{"A", Value(5.0)}, {"S", Value(std::string("x"))}}),
      make_message({{"A", Value(2.0)}, {"S", Value(std::string("y"))}}),
      make_message({{"A", Value(std::string("two"))}})};
  expect_equivalent(members, probes);
}

TEST(PredicateProgram, DuplicateMessageAttributesUseFirstOccurrence) {
  // Message::find returns the first occurrence; the program resolves each
  // slot through the same lookup, so duplicate-name heads stay equivalent.
  const std::vector<Filter> members = {where("A", Op::kGe, Value(3.0)),
                                       where("A", Op::kLt, Value(3.0))};
  const std::vector<Message> probes = {
      make_message({{"A", Value(5.0)}, {"A", Value(1.0)}}),
      make_message({{"A", Value(1.0)}, {"A", Value(5.0)}})};
  expect_equivalent(members, probes);
}

TEST(PredicateProgram, ZipfCorpusEquivalenceSweep) {
  // Randomized closure over the generator the fabric benches use: every
  // (member, probe) verdict must agree with the interpreter.
  for (const std::uint64_t seed : {21ULL, 22ULL, 23ULL}) {
    ChurnWorkloadConfig config;
    config.seed = seed;
    config.attribute_pool = 10;
    config.threshold_pool = 6;
    ChurnWorkload workload(config);
    std::vector<Filter> members;
    for (int i = 0; i < 96; ++i) members.push_back(workload.next_filter());
    std::vector<Message> probes;
    for (int i = 0; i < 64; ++i) probes.push_back(workload.next_message());
    expect_equivalent(members, probes);
  }
}

// ---- SIMD kernel differential suite ---------------------------------------
//
// The hard gate of the SIMD tier: every kernel in the dispatch table,
// forced in turn, must produce byte-identical count and verdict buffers —
// on ±1ulp boundary probes, ±inf/NaN/denormal heads, and member counts
// that leave a partial final vector lane.

/// Restores auto-dispatch (env, then CPU detection) however a test exits.
struct KernelGuard {
  ~KernelGuard() { simd::force_kernel(nullptr); }
};

/// Deterministic member mix for one program width: dense interval runs on
/// shared slots, conjunctions, string equalities, fallbacks (kNe),
/// contradictions and wildcards — every compiled shape in one program.
std::vector<Filter> adversarial_members(std::size_t n, double c) {
  std::vector<Filter> members;
  members.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double step = static_cast<double>(i / 8);
    switch (i % 8) {
      case 0:
        members.push_back(where("A", Op::kLt, Value(c + step)));
        break;
      case 1:
        members.push_back(where("A", Op::kGe, Value(c - step)));
        break;
      case 2: {
        Filter f;
        f.where("A", Op::kGe, Value(c - step));
        f.where("B", Op::kLe, Value(c + step));
        members.push_back(std::move(f));
        break;
      }
      case 3:
        members.push_back(
            where("B", Op::kInRange, Value(c - step), Value(c + step)));
        break;
      case 4:
        members.push_back(where(
            "S", Op::kEq, Value(std::string("s") + std::to_string(i % 3))));
        break;
      case 5:
        members.push_back(where("A", Op::kNe, Value(c)));  // Fallback.
        break;
      case 6: {
        Filter f;  // Contradiction: required count is unreachable.
        f.where("A", Op::kGt, Value(c));
        f.where("A", Op::kLt, Value(c));
        members.push_back(std::move(f));
        break;
      }
      default:
        members.push_back(Filter{});  // Wildcard.
        break;
    }
  }
  return members;
}

/// (probe, head contains NaN) — NaN probes stay in the kernel-vs-kernel
/// bitwise comparison but out of the interpreter check (program.h: NaN
/// heads sit outside the Filter::matches equivalence contract).
std::vector<std::pair<Message, bool>> adversarial_probes(double c) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<std::pair<Message, bool>> probes;
  for (const double v :
       {c, std::nextafter(c, -inf), std::nextafter(c, inf), c - 1.0, c + 1.0,
        0.0, -0.0, inf, -inf, std::numeric_limits<double>::max(),
        std::numeric_limits<double>::lowest(),
        std::numeric_limits<double>::denorm_min(),
        -std::numeric_limits<double>::denorm_min()}) {
    probes.emplace_back(make_message({{"A", Value(v)}, {"B", Value(v)}}),
                        false);
    probes.emplace_back(
        make_message({{"A", Value(v)}, {"S", Value(std::string("s1"))}}),
        false);
  }
  probes.emplace_back(make_message({{"A", Value(nan)}, {"B", Value(nan)}}),
                      true);
  probes.emplace_back(make_message({{"A", Value(nan)}, {"B", Value(c)}}),
                      true);
  probes.emplace_back(
      make_message({{"S", Value(std::string("s0"))}, {"B", Value(c)}}), false);
  probes.emplace_back(make_message({{"S", Value(std::string("zz"))}}), false);
  probes.emplace_back(make_message({{"A", Value(std::string("s1"))}}),
                      false);  // Type mismatch on a numeric slot.
  probes.emplace_back(make_message({}), false);
  return probes;
}

TEST(PredicateProgramSimd, DispatchTableAlwaysResolvesPortableLast) {
  const std::vector<const simd::Kernel*> kernels = simd::available_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_STREQ(kernels.back()->name, "portable");
  EXPECT_NE(simd::active_kernel_name(), nullptr);
  EXPECT_FALSE(simd::force_kernel("no-such-isa"));
}

TEST(PredicateProgramSimd, EnvOverridePinsTheKernel) {
  KernelGuard guard;
  ASSERT_EQ(::setenv("BDPS_SIMD_KERNEL", "portable", 1), 0);
  ASSERT_TRUE(simd::force_kernel(nullptr));  // Re-resolve: reads the env.
  EXPECT_STREQ(simd::active_kernel_name(), "portable");
  ASSERT_EQ(::unsetenv("BDPS_SIMD_KERNEL"), 0);
}

TEST(PredicateProgramSimd, AllKernelsBitwiseAgreeOnAdversarialWidths) {
  KernelGuard guard;
  const std::vector<const simd::Kernel*> kernels = simd::available_kernels();
  ASSERT_FALSE(kernels.empty());
  const double c = 1.5;
  const auto probes = adversarial_probes(c);
  // Odd widths leave partial final lanes at every vector width (2/4/8/16);
  // the larger ones cover the full unrolled blocks.
  for (const std::size_t width : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 13u, 15u,
                                  16u, 17u, 31u, 33u, 64u, 100u, 255u}) {
    const std::vector<Filter> members = adversarial_members(width, c);
    std::vector<const Filter*> pointers;
    for (const Filter& f : members) pointers.push_back(&f);
    const PredicateProgram program = PredicateProgram::compile(pointers);
    ProgramEval eval;
    for (std::size_t p = 0; p < probes.size(); ++p) {
      std::vector<std::uint16_t> baseline_counts;
      std::vector<std::uint8_t> baseline_matched;
      for (std::size_t k = 0; k < kernels.size(); ++k) {
        ASSERT_TRUE(simd::force_kernel(kernels[k]->name));
        program.evaluate(probes[p].first, eval);
        if (k == 0) {
          baseline_counts = eval.counts;
          baseline_matched = eval.matched;
          continue;
        }
        ASSERT_EQ(eval.counts, baseline_counts)
            << "kernel " << kernels[k]->name << " vs " << kernels[0]->name
            << " width " << width << " probe " << p;
        ASSERT_EQ(eval.matched, baseline_matched)
            << "kernel " << kernels[k]->name << " vs " << kernels[0]->name
            << " width " << width << " probe " << p;
      }
      if (probes[p].second) continue;  // NaN head: kernels-only comparison.
      for (std::size_t m = 0; m < members.size(); ++m) {
        ASSERT_EQ(baseline_matched[m] != 0,
                  members[m].matches(probes[p].first))
            << "member " << m << " (" << members[m].to_string() << ") width "
            << width << " probe " << p;
      }
    }
  }
}

TEST(PredicateProgramSimd, EveryKernelPassesTheZipfEquivalenceSweep) {
  KernelGuard guard;
  for (const simd::Kernel* kernel : simd::available_kernels()) {
    ASSERT_TRUE(simd::force_kernel(kernel->name));
    ChurnWorkloadConfig config;
    config.seed = 29;
    config.attribute_pool = 10;
    config.threshold_pool = 6;
    ChurnWorkload workload(config);
    std::vector<Filter> members;
    for (int i = 0; i < 96; ++i) members.push_back(workload.next_filter());
    std::vector<Message> probes;
    for (int i = 0; i < 64; ++i) probes.push_back(workload.next_message());
    expect_equivalent(members, probes);
  }
}

TEST(PredicateProgramSimd, BatchOverloadMatchesConvenienceOverload) {
  // The fabric's batch entry point: one SlotValues view shared across
  // programs must produce the verdicts of the per-call overload.
  const double c = 1.5;
  const std::vector<Filter> members = adversarial_members(33, c);
  std::vector<const Filter*> pointers;
  for (const Filter& f : members) pointers.push_back(&f);
  const PredicateProgram program = PredicateProgram::compile(pointers);
  SlotValues values;
  ProgramEval plain;
  ProgramEval batch;
  for (const auto& [probe, has_nan] : adversarial_probes(c)) {
    (void)has_nan;  // Bitwise overload parity holds for NaN heads too.
    program.evaluate(probe, plain);
    values.reset(probe);
    program.evaluate(probe, values, batch);
    ASSERT_EQ(batch.counts, plain.counts);
    ASSERT_EQ(batch.matched, plain.matched);
  }
}

TEST(PredicateProgram, EvaluateIsReentrantAcrossScratches) {
  // One immutable program, two scratches, interleaved evaluations.
  const std::vector<Filter> members = {where("A", Op::kLt, Value(5.0)),
                                       where("A", Op::kGe, Value(5.0))};
  std::vector<const Filter*> pointers;
  for (const Filter& f : members) pointers.push_back(&f);
  const PredicateProgram program = PredicateProgram::compile(pointers);
  ProgramEval a;
  ProgramEval b;
  const Message low = make_message({{"A", Value(1.0)}});
  const Message high = make_message({{"A", Value(9.0)}});
  program.evaluate(low, a);
  program.evaluate(high, b);
  EXPECT_NE(a.matched[0], 0);
  EXPECT_EQ(a.matched[1], 0);
  EXPECT_EQ(b.matched[0], 0);
  EXPECT_NE(b.matched[1], 0);
}

}  // namespace
}  // namespace bdps::matching::program
