// Engine differential: RoutingFabric under MatchEngine::kSharded (covering
// on and off) must produce exactly the match_at sequences of
// MatchEngine::kReference — same rows, same canonical ascending order — so
// the simulator's FP reductions are bitwise identical regardless of
// engine.  This is the property the golden matrix leans on.
#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "routing/fabric.h"
#include "workload/generator.h"

namespace bdps {
namespace {

/// Mesh with enough extra edges that tables differ per broker.
Topology mesh_topology(Rng& rng, std::size_t brokers,
                       std::vector<Subscription>* subs_out,
                       std::size_t subscribers) {
  Topology topo;
  topo.graph.resize(brokers);
  for (std::size_t b = 1; b < brokers; ++b) {
    const auto parent = static_cast<BrokerId>(rng.uniform_index(b));
    topo.graph.add_bidirectional(parent, static_cast<BrokerId>(b),
                                 LinkParams{rng.uniform(40.0, 90.0), 10.0});
  }
  for (std::size_t e = 0; e < brokers / 2; ++e) {
    const auto a = static_cast<BrokerId>(rng.uniform_index(brokers));
    const auto b = static_cast<BrokerId>(rng.uniform_index(brokers));
    if (a == b || topo.graph.edge_id(a, b) != kNoEdge) continue;
    topo.graph.add_bidirectional(a, b, LinkParams{rng.uniform(40.0, 90.0),
                                                  10.0});
  }
  topo.publisher_edges = {0, static_cast<BrokerId>(brokers - 1)};

  ChurnWorkloadConfig config;
  config.seed = 17;
  config.attribute_pool = 8;
  config.threshold_pool = 6;
  ChurnWorkload workload(config);
  Rng aux(5);
  for (std::size_t s = 0; s < subscribers; ++s) {
    Subscription sub;
    sub.subscriber = static_cast<SubscriberId>(s);
    sub.home = static_cast<BrokerId>(rng.uniform_index(brokers));
    topo.subscriber_homes.push_back(sub.home);
    sub.filter = workload.next_filter();
    if (aux.uniform() < 0.2) sub.or_filters.push_back(workload.next_filter());
    subs_out->push_back(std::move(sub));
  }
  return topo;
}

std::vector<std::size_t> entry_rows(
    const SubscriptionTable& table,
    const std::vector<const SubscriptionEntry*>& entries) {
  // Tables are deques (not contiguous); translate pointers to row indices
  // through an address map.
  std::unordered_map<const SubscriptionEntry*, std::size_t> index;
  for (std::size_t row = 0; row < table.size(); ++row) {
    index.emplace(&table.entries()[row], row);
  }
  std::vector<std::size_t> rows;
  rows.reserve(entries.size());
  for (const SubscriptionEntry* e : entries) {
    rows.push_back(index.at(e));
  }
  return rows;
}

class EngineEquality : public ::testing::TestWithParam<bool> {};

TEST_P(EngineEquality, ShardedMatchesReferenceRowForRow) {
  const bool covering = GetParam();

  Rng rng_a(23);
  std::vector<Subscription> subs_a;
  const Topology topo = mesh_topology(rng_a, 12, &subs_a, 96);
  std::vector<Subscription> subs_b = subs_a;  // Same set for both fabrics.

  FabricOptions reference;
  reference.engine = MatchEngine::kReference;
  FabricOptions sharded;
  sharded.engine = MatchEngine::kSharded;
  sharded.covering = covering;
  sharded.match_shards = 3;  // Off the default to catch shard-count leaks.
  const RoutingFabric ref(topo, std::move(subs_a), reference);
  const RoutingFabric shd(topo, std::move(subs_b), sharded);

  ChurnWorkloadConfig config;
  config.seed = 17;
  config.attribute_pool = 8;
  config.threshold_pool = 6;
  ChurnWorkload workload(config);
  for (int skip = 0; skip < 96; ++skip) workload.next_filter();

  matching::MatchScratch scratch;
  std::vector<const SubscriptionEntry*> ref_out;
  std::vector<const SubscriptionEntry*> shd_out;
  std::vector<const SubscriptionEntry*> shd_scratch_out;
  for (int probe = 0; probe < 200; ++probe) {
    const Message m = workload.next_message();
    for (BrokerId b = 0; b < static_cast<BrokerId>(ref.broker_count()); ++b) {
      ref.match_at(b, m, ref_out);
      shd.match_at(b, m, shd_out);
      ASSERT_EQ(entry_rows(ref.table(b), ref_out),
                entry_rows(shd.table(b), shd_out))
          << "broker " << b << " probe " << probe
          << (covering ? " (covering)" : " (no covering)");
      // The caller-scratch overload emits the identical sequence.
      shd.match_at(b, m, scratch, shd_scratch_out);
      ASSERT_EQ(entry_rows(shd.table(b), shd_out),
                entry_rows(shd.table(b), shd_scratch_out));
    }
    // match_all (the metrics path) stays on the global reference index in
    // both configurations and must agree with itself.
    ASSERT_EQ(ref.match_all(m), shd.match_all(m)) << "probe " << probe;
  }
}

INSTANTIATE_TEST_SUITE_P(Covering, EngineEquality, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "on" : "off";
                         });

}  // namespace
}  // namespace bdps
