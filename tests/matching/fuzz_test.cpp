// Differential gate: the sharded/snapshot/covering fabric must be
// set-identical (and, being canonical, sequence-identical) to brute-force
// filter evaluation across a randomized corpus of filters, messages and
// churn interleavings.  The churn workload's Zipf pools manufacture the
// adversarial cases on purpose: exact duplicates (equivalence merges),
// wide single-bound roots (cover chains), shared thresholds (boundary
// collisions at the nextafter folds).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "matching/program/simd.h"
#include "matching/sharded_index.h"
#include "workload/generator.h"

namespace bdps::matching {
namespace {

struct BruteRow {
  Filter filter;
  std::vector<Filter> ors;
  bool alive = true;
};

std::vector<RowId> brute_force(const std::vector<BruteRow>& rows,
                               const Message& m) {
  std::vector<RowId> out;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (!rows[i].alive) continue;
    bool hit = rows[i].filter.matches(m);
    for (const Filter& f : rows[i].ors) {
      if (hit) break;
      hit = f.matches(m);
    }
    if (hit) out.push_back(i);
  }
  return out;
}

/// (seed, shards, covering, rebuild_min, compile_hits, kernel) — shards
/// == 1 exercises the degenerate everything-in-one-shard layout, tiny
/// rebuild_min exercises the rebuild/fold path constantly, and
/// compile_hits > 0 runs the compiled-program tier (hits=1 compiles every
/// matched root, so churn keeps flipping roots across the hot threshold
/// and programs are rebuilt/dropped along the rebuild cadence).  A
/// non-empty kernel forces that SIMD dispatch-table entry for the whole
/// run (skipped when this machine cannot run it), so the brute-force
/// differential covers every kernel, not just the auto-dispatched one.
using FuzzParam = std::tuple<std::uint64_t, std::size_t, bool, std::size_t,
                             std::size_t, std::string>;

class MatchFabricFuzz : public ::testing::TestWithParam<FuzzParam> {
 protected:
  ~MatchFabricFuzz() override { program::simd::force_kernel(nullptr); }
};

TEST_P(MatchFabricFuzz, AgreesWithBruteForceUnderChurn) {
  const auto [seed, shards, covering, rebuild_min, compile_hits, kernel] =
      GetParam();
  if (!kernel.empty() && !program::simd::force_kernel(kernel.c_str())) {
    GTEST_SKIP() << "kernel '" << kernel << "' not dispatchable here";
  }

  MatchFabricOptions options;
  options.shards = shards;
  options.covering = covering;
  options.rebuild_min = rebuild_min;
  options.compile_hot_hits = compile_hits;
  // Compile even two-member roots so programs carry as much of the match
  // as possible when the tier is on (or_filters, opaque remainders and
  // boundary folds all route through evaluate()).
  options.compile_min_members = compile_hits > 0 ? 1 : 4;
  MatchFabric fabric(options);
  MatchScratch scratch;

  ChurnWorkloadConfig config;
  config.seed = seed;
  config.attribute_pool = 12;  // Small pools: collisions are the point.
  config.threshold_pool = 8;
  config.message_attributes = 5;
  ChurnWorkload workload(config);
  Rng aux(seed ^ 0x9e3779b97f4a7c15ULL);  // Disjunct/probe decisions.

  std::vector<BruteRow> rows;
  std::vector<RowId> live;  // Row ids alive, for victim lookup.

  for (int op_index = 0; op_index < 500; ++op_index) {
    const ChurnOp op = workload.next_op(/*remove_fraction=*/0.3, live.size());
    if (op.kind == ChurnOp::Kind::kRemove) {
      const RowId victim = live[op.victim];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(op.victim));
      fabric.remove(victim);
      rows[victim].alive = false;
    } else {
      BruteRow row;
      row.filter = op.filter;
      // Occasional disjuncts so OR rows ride the same churn schedule.
      if (aux.uniform() < 0.15) row.ors.push_back(workload.next_filter());
      const RowId id = fabric.add(row.filter, row.ors);
      ASSERT_EQ(id, rows.size());
      live.push_back(id);
      rows.push_back(std::move(row));
    }

    // Probe after every mutation burst; every probe compares the full
    // match sequence (ids ascending on both sides).
    if (op_index % 8 != 7) continue;
    for (int probe = 0; probe < 4; ++probe) {
      const Message m = workload.next_message();
      const auto& got = fabric.match(m, scratch);
      ASSERT_EQ(got, brute_force(rows, m))
          << "op " << op_index << " probe " << probe << " seed " << seed;
    }
  }

  // Every merge class must account for every live unit (no row lost to
  // compression bookkeeping).
  const MatchFabric::Stats stats = fabric.stats();
  EXPECT_EQ(stats.live_rows, live.size());
  EXPECT_EQ(stats.total_rows, rows.size());
  if (covering) {
    EXPECT_GE(stats.compression(), 1.0);
  } else {
    EXPECT_EQ(stats.equal_members + stats.covered_members, 0u);
  }
  if (compile_hits == 1 && covering) {
    // hits=1 + min_members=1: every probe burst re-heats its roots, so the
    // tier must actually have engaged (otherwise the corpus silently
    // stopped covering the compiled path).  Covering-off roots have no
    // evaluated members, hence nothing to compile.
    EXPECT_GT(stats.compiles, 0u);
    EXPECT_GT(stats.vm_member_evals, 0u);
  } else if (compile_hits == 0 || !covering) {
    EXPECT_EQ(stats.compiles, 0u);
    EXPECT_EQ(stats.vm_member_evals, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, MatchFabricFuzz,
    ::testing::Values(
        FuzzParam{1, 8, true, 64, 0, ""}, FuzzParam{2, 8, false, 64, 0, ""},
        FuzzParam{3, 1, true, 4, 0, ""}, FuzzParam{4, 1, false, 4, 0, ""},
        FuzzParam{5, 3, true, 8, 0, ""}, FuzzParam{6, 16, true, 16, 0, ""},
        FuzzParam{7, 2, true, 4, 0, ""}, FuzzParam{8, 4, false, 8, 0, ""},
        // Compiled tier on: hits=1 compiles everything ever matched,
        // hits=3 keeps roots flipping across the threshold under churn.
        FuzzParam{9, 8, true, 64, 1, ""}, FuzzParam{10, 1, true, 4, 1, ""},
        FuzzParam{11, 4, true, 8, 3, ""}, FuzzParam{12, 8, false, 16, 1, ""},
        FuzzParam{13, 2, true, 4, 2, ""}, FuzzParam{14, 16, true, 32, 1, ""},
        // Every dispatch-table kernel forced through the compiled tier
        // (runs that this host cannot dispatch are skipped at runtime).
        FuzzParam{15, 4, true, 8, 1, "portable"},
        FuzzParam{16, 8, true, 16, 1, "sse2"},
        FuzzParam{17, 2, true, 4, 1, "avx2"},
        FuzzParam{18, 4, true, 8, 2, "neon"}),
    [](const ::testing::TestParamInfo<FuzzParam>& info) {
      const std::string& kernel = std::get<5>(info.param);
      return "seed" + std::to_string(std::get<0>(info.param)) + "_shards" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_cover" : "_nocover") + "_rb" +
             std::to_string(std::get<3>(info.param)) + "_hits" +
             std::to_string(std::get<4>(info.param)) +
             (kernel.empty() ? "" : "_" + kernel);
    });

/// The workload generator itself must be reproducible: two instances of
/// the same config emit identical streams (the bench and the scaling probe
/// rely on this to describe their corpora by config alone).
TEST(ChurnWorkload, DeterministicAcrossInstances) {
  ChurnWorkloadConfig config;
  config.seed = 42;
  ChurnWorkload a(config);
  ChurnWorkload b(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_filter().to_string(), b.next_filter().to_string());
    const Message ma = a.next_message();
    const Message mb = b.next_message();
    ASSERT_EQ(ma.head().size(), mb.head().size());
    for (std::size_t k = 0; k < ma.head().size(); ++k) {
      EXPECT_EQ(ma.head()[k].name, mb.head()[k].name);
      EXPECT_EQ(ma.head()[k].value.to_string(), mb.head()[k].value.to_string());
    }
  }
}

/// Zipf sampling is head-heavy and in-range.
TEST(ZipfSampler, SkewsTowardLowRanks) {
  ZipfSampler zipf(64, 1.1);
  Rng rng(7);
  std::vector<std::size_t> counts(64, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::size_t k = zipf.sample(rng);
    ASSERT_LT(k, 64u);
    ++counts[k];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20000u / 10);  // Rank 0 draws far above uniform share.
}

}  // namespace
}  // namespace bdps::matching
