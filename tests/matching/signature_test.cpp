#include "matching/signature.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace bdps::matching {
namespace {

FilterSignature sig(const Filter& f) { return FilterSignature::of(f); }

Filter where(const std::string& attr, Op op, Value v) {
  Filter f;
  f.where(attr, op, std::move(v));
  return f;
}

TEST(FilterSignature, WildcardIsExactAndCoversNothingButItself) {
  const FilterSignature w = sig(Filter{});
  EXPECT_TRUE(w.wildcard());
  EXPECT_TRUE(w.exact());
  EXPECT_FALSE(w.never_matches());
  EXPECT_EQ(w.anchor_attribute(), "");
  EXPECT_EQ(w.selective_attribute(), "");
  // An unconstrained filter covers every filter (match(any) subset of all).
  EXPECT_TRUE(w.covers(sig(where("A", Op::kLt, Value(5.0)))));
}

TEST(FilterSignature, ConjunctsOnOneAttributeIntersect) {
  Filter f;
  f.where("A", Op::kLt, Value(5.0)).where("A", Op::kGe, Value(1.0));
  const FilterSignature s = sig(f);
  ASSERT_EQ(s.numeric_constraints().size(), 1u);
  EXPECT_EQ(s.numeric_constraints()[0].lo, 1.0);
  EXPECT_EQ(s.numeric_constraints()[0].hi, 5.0);
  EXPECT_TRUE(s.exact());
}

TEST(FilterSignature, ContradictionIsNeverMatches) {
  Filter f;
  f.where("A", Op::kGt, Value(5.0)).where("A", Op::kLt, Value(3.0));
  EXPECT_TRUE(sig(f).never_matches());

  // Mixed-type constraints on one attribute can never both hold.
  Filter mixed;
  mixed.where("A", Op::kEq, Value("x")).where("A", Op::kLt, Value(3.0));
  EXPECT_TRUE(sig(mixed).never_matches());

  // Two different string equalities on one attribute.
  Filter strings;
  strings.where("A", Op::kEq, Value("x")).where("A", Op::kEq, Value("y"));
  EXPECT_TRUE(sig(strings).never_matches());
}

TEST(FilterSignature, InclusiveBoundsFoldExactly) {
  // kLe c and kLt nextafter(c, +inf) describe the same half-open interval,
  // so their signatures are equivalent — the same folding the counting
  // index uses.
  const double c = 5.0;
  const double up = std::nextafter(c, std::numeric_limits<double>::infinity());
  EXPECT_TRUE(sig(where("A", Op::kLe, Value(c)))
                  .equivalent(sig(where("A", Op::kLt, Value(up)))));
  EXPECT_TRUE(sig(where("A", Op::kGt, Value(c)))
                  .equivalent(sig(where("A", Op::kGe, Value(up)))));
}

TEST(FilterSignature, CoversWidensAndRespectsBoundaries) {
  const FilterSignature wide = sig(where("A", Op::kLt, Value(10.0)));
  EXPECT_TRUE(wide.covers(sig(where("A", Op::kLt, Value(5.0)))));
  EXPECT_TRUE(wide.covers(sig(where("A", Op::kLe, Value(5.0)))));
  EXPECT_TRUE(wide.covers(sig(where("A", Op::kLt, Value(10.0)))));
  // A <= 10 admits exactly 10, which A < 10 rejects.
  EXPECT_FALSE(wide.covers(sig(where("A", Op::kLe, Value(10.0)))));
  EXPECT_FALSE(sig(where("A", Op::kLt, Value(5.0))).covers(wide));
  // Point equality at an interior value is covered.
  EXPECT_TRUE(wide.covers(sig(where("A", Op::kEq, Value(3.0)))));
  EXPECT_FALSE(wide.covers(sig(where("A", Op::kEq, Value(10.0)))));
}

TEST(FilterSignature, CoversRequiresAttributeSubset) {
  // Missing-attribute semantics: a message matching {A<5, B<2} carries a
  // satisfying A, so A<10 covers it...
  Filter narrow;
  narrow.where("A", Op::kLt, Value(5.0)).where("B", Op::kLt, Value(2.0));
  EXPECT_TRUE(sig(where("A", Op::kLt, Value(10.0))).covers(sig(narrow)));
  // ...but a coverer constraining an attribute the covered filter does not
  // mention can reject messages the covered filter accepts.
  EXPECT_FALSE(sig(where("C", Op::kLt, Value(10.0))).covers(sig(narrow)));
  EXPECT_FALSE(sig(narrow).covers(sig(where("A", Op::kLt, Value(5.0)))));
}

TEST(FilterSignature, StringConstraintsCoverOnlyExactValue) {
  const FilterSignature goog = sig(where("sym", Op::kEq, Value("GOOG")));
  Filter both;
  both.where("sym", Op::kEq, Value("GOOG")).where("A", Op::kLt, Value(5.0));
  EXPECT_TRUE(goog.covers(sig(both)));
  EXPECT_FALSE(goog.covers(sig(where("sym", Op::kEq, Value("MSFT")))));
  EXPECT_FALSE(sig(both).covers(goog));
}

TEST(FilterSignature, OpaquePredicatesMakeSignatureInexact) {
  const FilterSignature ne = sig(where("A", Op::kNe, Value(3.0)));
  EXPECT_FALSE(ne.exact());
  EXPECT_FALSE(ne.never_matches());
  // Inexact signatures cover only structurally identical filters...
  EXPECT_TRUE(ne.covers(sig(where("A", Op::kNe, Value(3.0)))));
  EXPECT_FALSE(ne.covers(sig(where("A", Op::kNe, Value(4.0)))));
  EXPECT_FALSE(ne.covers(sig(where("A", Op::kLt, Value(1.0)))));
  // ...but can themselves BE covered through their canonical relaxation:
  // dropping A != 3 from {A < 5, A != 3} only enlarges the match set.
  Filter inexact_narrow;
  inexact_narrow.where("A", Op::kLt, Value(5.0))
      .where("A", Op::kNe, Value(3.0));
  EXPECT_TRUE(sig(where("A", Op::kLt, Value(10.0))).covers(sig(inexact_narrow)));
}

TEST(FilterSignature, NonFiniteOperandsAreOpaque) {
  const double inf = std::numeric_limits<double>::infinity();
  const FilterSignature s = sig(where("A", Op::kLt, Value(inf)));
  EXPECT_FALSE(s.exact());
  EXPECT_FALSE(s.never_matches());
  EXPECT_EQ(s.numeric_constraints().size(), 0u);
  EXPECT_EQ(s.opaque_predicates().size(), 1u);
}

TEST(FilterSignature, NeverMatchesIsCoveredByEverything) {
  Filter contradiction;
  contradiction.where("A", Op::kGt, Value(5.0)).where("A", Op::kLt, Value(3.0));
  const FilterSignature never = sig(contradiction);
  EXPECT_TRUE(sig(where("B", Op::kEq, Value(1.0))).covers(never));
  // A provably-empty coverer covers nothing non-empty.
  EXPECT_FALSE(never.covers(sig(where("A", Op::kLt, Value(1.0)))));
  EXPECT_TRUE(never.covers(never));
}

TEST(FilterSignature, EquivalenceIsOrderInsensitive) {
  Filter ab;
  ab.where("A", Op::kLt, Value(5.0)).where("B", Op::kGe, Value(2.0));
  Filter ba;
  ba.where("B", Op::kGe, Value(2.0)).where("A", Op::kLt, Value(5.0));
  EXPECT_TRUE(sig(ab).equivalent(sig(ba)));
  EXPECT_EQ(sig(ab).hash(), sig(ba).hash());
  EXPECT_FALSE(sig(ab).equivalent(sig(where("A", Op::kLt, Value(5.0)))));
}

TEST(FilterSignature, NearbyOperandsNeverFalselyMerge) {
  // Predicate::to_string-style default precision would render these two
  // operands identically; the canonical keys must not.
  const double a = 1.0;
  const double b = std::nextafter(a, 2.0);
  EXPECT_FALSE(sig(where("A", Op::kNe, Value(a)))
                   .equivalent(sig(where("A", Op::kNe, Value(b)))));
  EXPECT_FALSE(sig(where("A", Op::kLt, Value(a)))
                   .equivalent(sig(where("A", Op::kLt, Value(b)))));
}

TEST(FilterSignature, AnchorIsSmallestConstrainedName) {
  Filter f;
  f.where("C", Op::kLt, Value(5.0)).where("B", Op::kEq, Value("x"));
  EXPECT_EQ(sig(f).anchor_attribute(), "B");
  // Opaque-only filters have no canonical constraints to anchor on.
  EXPECT_EQ(sig(where("A", Op::kNe, Value(1.0))).anchor_attribute(), "");
}

TEST(FilterSignature, SelectiveAttributePrefersTighterConstraints) {
  // String equality (a point) beats a bounded interval beats half-bounded.
  Filter f;
  f.where("A", Op::kLt, Value(5.0))
      .where("B", Op::kGe, Value(1.0))
      .where("B", Op::kLe, Value(2.0))
      .where("C", Op::kEq, Value("x"));
  EXPECT_EQ(sig(f).selective_attribute(), "C");

  Filter no_string;
  no_string.where("A", Op::kLt, Value(5.0))
      .where("B", Op::kGe, Value(1.0))
      .where("B", Op::kLe, Value(2.0));
  EXPECT_EQ(sig(no_string).selective_attribute(), "B");

  EXPECT_EQ(sig(where("A", Op::kLt, Value(5.0))).selective_attribute(), "A");
  // Numeric point equality ranks with string equality.
  Filter point;
  point.where("A", Op::kGe, Value(1.0))
      .where("A", Op::kLe, Value(9.0))
      .where("D", Op::kEq, Value(3.0));
  EXPECT_EQ(sig(point).selective_attribute(), "D");
  // No canonical constraint at all: the fallback-shard signal.
  EXPECT_EQ(sig(where("A", Op::kNe, Value(1.0))).selective_attribute(), "");
}

TEST(FilterSignature, IntOperandsFoldLikeDoubles) {
  EXPECT_TRUE(sig(where("A", Op::kLt, Value(static_cast<std::int64_t>(5))))
                  .equivalent(sig(where("A", Op::kLt, Value(5.0)))));
}

}  // namespace
}  // namespace bdps::matching
