#include "matching/sharded_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace bdps::matching {
namespace {

Message make_message(std::vector<Attribute> head) {
  return Message(1, 0, 0.0, 50.0, std::move(head));
}

Filter where(const std::string& attr, Op op, Value v, Value v2 = Value()) {
  Filter f;
  f.where(attr, op, std::move(v), std::move(v2));
  return f;
}

std::vector<RowId> match(const MatchFabric& fabric, MatchScratch& scratch,
                         const Message& m) {
  return fabric.match(m, scratch);
}

TEST(MatchFabric, BasicAddMatchRemove) {
  MatchFabric fabric;
  MatchScratch scratch;
  const RowId narrow = fabric.add(where("A", Op::kLt, Value(5.0)));
  const RowId wide = fabric.add(where("A", Op::kLt, Value(10.0)));
  EXPECT_EQ(fabric.row_bound(), 2u);

  const Message low = make_message({{"A", Value(1.0)}});
  EXPECT_EQ(match(fabric, scratch, low), (std::vector<RowId>{narrow, wide}));
  const Message mid = make_message({{"A", Value(7.0)}});
  EXPECT_EQ(match(fabric, scratch, mid), (std::vector<RowId>{wide}));

  fabric.remove(narrow);
  EXPECT_EQ(match(fabric, scratch, low), (std::vector<RowId>{wide}));
  fabric.remove(narrow);  // Idempotent.
  EXPECT_EQ(fabric.stats().live_rows, 1u);
  fabric.remove(wide);
  EXPECT_TRUE(match(fabric, scratch, low).empty());
}

TEST(MatchFabric, ResultsAscendEvenAcrossShards) {
  MatchFabricOptions options;
  options.shards = 4;
  MatchFabric fabric(options);
  MatchScratch scratch;
  // Spread rows over attributes (hence shards) in a scrambled add order.
  std::vector<RowId> expect;
  for (int i = 0; i < 64; ++i) {
    expect.push_back(
        fabric.add(where("Z" + std::to_string(i % 7), Op::kGe, Value(0.0))));
  }
  std::vector<Attribute> head;
  for (int a = 0; a < 7; ++a) {
    head.push_back(Attribute{"Z" + std::to_string(a), Value(1.0)});
  }
  const auto& got = fabric.match(make_message(head), scratch);
  EXPECT_EQ(got, expect);  // 0..63 ascending.
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

TEST(MatchFabric, DisjunctsEmitTheRowOnce) {
  MatchFabric fabric;
  MatchScratch scratch;
  const RowId row = fabric.add(
      where("A", Op::kLt, Value(5.0)),
      {where("B", Op::kGt, Value(0.0)), where("A", Op::kGt, Value(8.0))});
  // Two disjuncts match this head; the row appears once.
  const Message both =
      make_message({{"A", Value(2.0)}, {"B", Value(1.0)}});
  EXPECT_EQ(match(fabric, scratch, both), (std::vector<RowId>{row}));
  const Message neither = make_message({{"A", Value(6.0)}});
  EXPECT_TRUE(match(fabric, scratch, neither).empty());
  // Removing the row kills every disjunct.
  fabric.remove(row);
  EXPECT_TRUE(match(fabric, scratch, both).empty());
}

TEST(MatchFabric, WildcardAndOpaqueFiltersLandInFallbackShard) {
  MatchFabricOptions options;
  options.shards = 8;
  MatchFabric fabric(options);
  MatchScratch scratch;
  const RowId wild = fabric.add(Filter{});
  const RowId opaque = fabric.add(where("A", Op::kNe, Value(3.0)));
  const RowId range =
      fabric.add(where("A", Op::kInRange, Value(2.0), Value(4.0)));

  EXPECT_EQ(match(fabric, scratch, make_message({{"A", Value(2.0)}})),
            (std::vector<RowId>{wild, opaque, range}));
  EXPECT_EQ(match(fabric, scratch, make_message({{"A", Value(3.0)}})),
            (std::vector<RowId>{wild, range}));
  EXPECT_EQ(match(fabric, scratch, make_message({})),
            (std::vector<RowId>{wild}));
}

TEST(MatchFabric, EquivalentFiltersMergeWithoutLosingRows) {
  MatchFabricOptions options;
  options.shards = 2;
  options.rebuild_min = 4;  // Force early rebuilds so merging engages.
  MatchFabric fabric(options);
  MatchScratch scratch;
  std::vector<RowId> rows;
  for (int i = 0; i < 32; ++i) {
    rows.push_back(fabric.add(where("A", Op::kLe, Value(5.0))));
  }
  const auto& got = fabric.match(make_message({{"A", Value(5.0)}}), scratch);
  EXPECT_EQ(got, rows);

  const MatchFabric::Stats stats = fabric.stats();
  EXPECT_EQ(stats.live_rows, 32u);
  EXPECT_EQ(stats.live_units, 32u);
  EXPECT_GT(stats.equal_members, 0u);
  EXPECT_LT(stats.index_roots, 32u);
  EXPECT_GT(stats.compression(), 1.0);
}

TEST(MatchFabric, CoveredFiltersStillMatchExactly) {
  MatchFabricOptions options;
  options.shards = 2;
  options.rebuild_min = 4;
  MatchFabric fabric(options);
  MatchScratch scratch;
  // One wide root, many strictly narrower members.
  const RowId root = fabric.add(where("A", Op::kLt, Value(100.0)));
  std::vector<RowId> narrow;
  for (int i = 0; i < 16; ++i) {
    narrow.push_back(
        fabric.add(where("A", Op::kLt, Value(static_cast<double>(i + 1)))));
  }
  // A head at 50 hits the root and members 51.. none — only narrow rows
  // whose bound exceeds the value may appear.
  const auto& at_half = fabric.match(make_message({{"A", Value(8.5)}}), scratch);
  std::vector<RowId> expect{root};
  for (int i = 0; i < 16; ++i) {
    if (8.5 < static_cast<double>(i + 1)) expect.push_back(narrow[i]);
  }
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(at_half, expect);

  const MatchFabric::Stats stats = fabric.stats();
  EXPECT_GT(stats.covered_members, 0u);
  EXPECT_GT(stats.compression(), 1.0);

  // Removing the root must not take the members with it.
  fabric.remove(root);
  const auto& after = fabric.match(make_message({{"A", Value(0.5)}}), scratch);
  EXPECT_EQ(after, narrow);
}

TEST(MatchFabric, CoveringOffKeepsEveryRowARoot) {
  MatchFabricOptions options;
  options.covering = false;
  options.rebuild_min = 4;
  MatchFabric fabric(options);
  MatchScratch scratch;
  for (int i = 0; i < 16; ++i) {
    fabric.add(where("A", Op::kLe, Value(5.0)));
  }
  const MatchFabric::Stats stats = fabric.stats();
  EXPECT_EQ(stats.equal_members, 0u);
  EXPECT_EQ(stats.covered_members, 0u);
  EXPECT_EQ(stats.index_roots, 16u);
  EXPECT_EQ(match(fabric, scratch, make_message({{"A", Value(1.0)}})).size(),
            16u);
}

TEST(MatchFabric, RebuildFoldsTombstonesAndKeepsMatching) {
  MatchFabricOptions options;
  options.shards = 1;
  options.rebuild_min = 8;
  options.rebuild_divisor = 1;
  MatchFabric fabric(options);
  MatchScratch scratch;

  std::vector<RowId> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back(fabric.add(
        where("A", Op::kGe, Value(static_cast<double>(i % 10)))));
  }
  // Remove every even row; enough tombstones to trigger fold-away rebuilds.
  for (std::size_t i = 0; i < rows.size(); i += 2) fabric.remove(rows[i]);

  std::vector<RowId> expect;
  for (std::size_t i = 1; i < rows.size(); i += 2) {
    if (static_cast<double>(i % 10) <= 4.5) expect.push_back(rows[i]);
  }
  EXPECT_EQ(match(fabric, scratch, make_message({{"A", Value(4.5)}})), expect);

  const MatchFabric::Stats stats = fabric.stats();
  EXPECT_EQ(stats.live_rows, 100u);
  EXPECT_EQ(stats.total_rows, 200u);
  EXPECT_GT(stats.rebuilds, 0u);
  EXPECT_GT(stats.publications, stats.rebuilds);
}

TEST(MatchFabric, PromotesFromOneShardExactlyAboveTheRowThreshold) {
  // promote_rows > 0 starts every table on one hash shard; the N+1th row
  // flips routing to the configured shard count.  The promotion is a pure
  // layout change: rows installed before it stay in their shard (no
  // reallocation under readers) and match sets are unaffected.
  constexpr std::size_t kThreshold = 24;
  MatchFabricOptions options;
  options.shards = 8;
  options.promote_rows = kThreshold;
  MatchFabric fabric(options);
  MatchScratch scratch;

  std::vector<RowId> rows;
  for (std::size_t i = 0; i < kThreshold; ++i) {
    rows.push_back(
        fabric.add(where("Z" + std::to_string(i % 5), Op::kGe, Value(0.0))));
  }
  EXPECT_EQ(fabric.stats().active_shards, 1u);  // At the boundary: single.

  rows.push_back(fabric.add(where("Z0", Op::kGe, Value(0.0))));
  EXPECT_EQ(fabric.stats().active_shards, 8u);  // One past: promoted.

  // Post-promotion rows route by attribute hash; pre-promotion rows stay
  // where they were — the match set is the full ascending row list either
  // way.
  for (std::size_t i = 0; i < 40; ++i) {
    rows.push_back(
        fabric.add(where("Z" + std::to_string(i % 5), Op::kGe, Value(0.0))));
  }
  std::vector<Attribute> head;
  for (int a = 0; a < 5; ++a) {
    head.push_back(Attribute{"Z" + std::to_string(a), Value(1.0)});
  }
  EXPECT_EQ(match(fabric, scratch, make_message(head)), rows);

  // Removes do not demote (hysteresis: the promotion is one-way).
  fabric.remove(rows.back());
  EXPECT_EQ(fabric.stats().active_shards, 8u);
}

TEST(MatchFabric, PromoteRowsZeroKeepsAllShardsFromTheStart) {
  MatchFabricOptions options;
  options.shards = 4;
  options.promote_rows = 0;
  MatchFabric fabric(options);
  fabric.add(where("A", Op::kGe, Value(0.0)));
  EXPECT_EQ(fabric.stats().active_shards, 4u);
}

TEST(MatchFabric, ScratchIsReusableAcrossFabricsOfOneDomain) {
  EpochDomain domain;
  MatchFabric a(MatchFabricOptions{}, &domain);
  MatchFabric b(MatchFabricOptions{}, &domain);
  MatchScratch scratch;
  const RowId ra = a.add(where("A", Op::kLt, Value(5.0)));
  const RowId rb = b.add(where("A", Op::kLt, Value(5.0)));
  const Message m = make_message({{"A", Value(1.0)}});
  EXPECT_EQ(match(a, scratch, m), (std::vector<RowId>{ra}));
  EXPECT_EQ(match(b, scratch, m), (std::vector<RowId>{rb}));
  EXPECT_EQ(&a.domain(), &domain);
}

TEST(MatchFabric, StatsCountDisjunctUnitsSeparately) {
  MatchFabric fabric;
  fabric.add(where("A", Op::kLt, Value(5.0)),
             {where("B", Op::kGt, Value(0.0))});
  const MatchFabric::Stats stats = fabric.stats();
  EXPECT_EQ(stats.live_rows, 1u);
  EXPECT_EQ(stats.live_units, 2u);
}

TEST(MatchFabric, RebuildReusesTheCachedProgramForAnUnchangedRoot) {
  // A rebuild recompiles every hot root; when the root's evaluated member
  // list is unchanged, the program cache must serve the existing program
  // instead of building a new one — compiles stays put, shared_programs
  // counts the reuse, and the stats see one unique program.
  MatchFabricOptions options;
  options.shards = 4;
  options.rebuild_min = 1;  // Rebuild on every second add: constant folds.
  options.compile_hot_hits = 1;
  MatchFabric fabric(options);
  MatchScratch scratch;

  std::vector<RowId> expect;
  expect.push_back(fabric.add(where("X", Op::kLt, Value(100.0))));  // Root.
  for (int k = 1; k <= 8; ++k) {  // Covered members: the compile unit.
    expect.push_back(
        fabric.add(where("X", Op::kLt, Value(static_cast<double>(k)))));
  }
  // Two disjoint-interval units so later adds can force rebuilds without
  // touching the hot root's member list (they merge as equal members of
  // their own root, never of X < 100).
  fabric.add(where("X", Op::kGe, Value(200.0)));
  fabric.add(where("X", Op::kGe, Value(200.0)));

  const Message probe = make_message({{"X", Value(0.5)}});
  EXPECT_EQ(match(fabric, scratch, probe), expect);  // Heats + volunteers.
  MatchFabric::Stats stats = fabric.stats();
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_EQ(stats.compiled_roots, 1u);
  EXPECT_EQ(stats.unique_programs, 1u);
  EXPECT_EQ(stats.shared_programs, 0u);

  // Force a rebuild that leaves the hot root's member list unchanged.
  fabric.add(where("X", Op::kGe, Value(200.0)));
  stats = fabric.stats();
  EXPECT_EQ(stats.compiles, 1u);          // No recompile...
  EXPECT_EQ(stats.shared_programs, 1u);   // ...the cache served it.
  EXPECT_EQ(stats.compiled_roots, 1u);
  EXPECT_EQ(stats.unique_programs, 1u);

  EXPECT_EQ(match(fabric, scratch, probe), expect);
  EXPECT_GE(fabric.stats().vm_batch_evals, 1u);
}

TEST(MatchFabric, EqualRootsInDifferentShardsShareOneProgram) {
  // Row-count promotion splits a popular filter population across shards:
  // the pre-promotion copies sit in the single starting shard, the
  // post-promotion copies in their hash shard.  Both roots compile the
  // same member list — the second must share the first's program, and
  // stats() must count the program once (unique_programs) while still
  // reporting both roots (compiled_roots).
  MatchFabricOptions options;
  options.shards = 8;
  options.promote_rows = 12;
  options.rebuild_min = 1;
  options.compile_hot_hits = 1;
  MatchFabric fabric(options);
  MatchScratch scratch;

  // An attribute whose hash shard differs from the pre-promotion shard
  // (index 1), so the two copies really land in different shards.
  std::string attr;
  for (int i = 0; i < 64 && attr.empty(); ++i) {
    const std::string candidate = "G" + std::to_string(i);
    if (1 + std::hash<std::string>{}(candidate) % 8 != 1) attr = candidate;
  }
  ASSERT_FALSE(attr.empty());

  std::vector<RowId> expect;
  const auto add_group = [&]() {
    expect.push_back(fabric.add(where(attr, Op::kLt, Value(100.0))));
    for (int k = 1; k <= 8; ++k) {
      expect.push_back(
          fabric.add(where(attr, Op::kLt, Value(static_cast<double>(k)))));
    }
    fabric.add(where(attr, Op::kGe, Value(200.0)));  // Rebuild forcers.
    fabric.add(where(attr, Op::kGe, Value(200.0)));
  };
  add_group();                               // Rows 0..10: shard 1.
  fabric.add(where("F", Op::kGe, Value(0.0)));  // Row 11: crosses nothing.
  ASSERT_EQ(fabric.stats().active_shards, 1u);
  add_group();                               // Rows 12..22: promoted shard.
  ASSERT_EQ(fabric.stats().active_shards, 8u);

  const Message probe = make_message({{attr, Value(0.5)}});
  EXPECT_EQ(match(fabric, scratch, probe), expect);  // Heats + volunteers.

  const MatchFabric::Stats stats = fabric.stats();
  EXPECT_EQ(stats.compiles, 1u);         // One real compile...
  EXPECT_EQ(stats.shared_programs, 1u);  // ...shared by the twin root.
  EXPECT_EQ(stats.compiled_roots, 2u);   // Both roots carry it.
  EXPECT_EQ(stats.unique_programs, 1u);  // Counted once after dedup.

  EXPECT_EQ(match(fabric, scratch, probe), expect);
  EXPECT_GE(fabric.stats().vm_batch_evals, 2u);
}

TEST(EpochDomain, RetireReclaimsOnlyPastPinnedEpochs) {
  EpochDomain domain;
  EpochDomain::Slot* slot = domain.acquire_slot();
  auto retired = std::make_shared<int>(7);
  std::weak_ptr<int> watch = retired;
  {
    EpochDomain::Pin pin(domain, *slot);
    domain.retire(std::move(retired));
    domain.try_reclaim();
    // The pin predates the retirement stamp; the object must survive.
    EXPECT_FALSE(watch.expired());
  }
  domain.try_reclaim();
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(domain.retired_count(), 0u);
  domain.release_slot(slot);
}

}  // namespace
}  // namespace bdps::matching
