// Fault-storm engine behavior and cross-engine equivalence.
//
// Three layers:
//   * Semantics on hand-built overlays where every instant is known: a
//     down link *holds* copies until recovery (unlike the legacy terminal
//     failures, which drain), a crashed broker drops its queues as losses,
//     and a flap strictly inside a transfer dooms the in-flight copy.
//   * Incremental SPT repair: with options.repair_fabric the overlay
//     routes around an outage it would otherwise wait out forever.
//   * Bitwise equivalence: the same storm through run_simulation at
//     shards 0 vs {1,2,4,7}, and trace-stream equality on a hand rig —
//     fault batches must land at the exact same point of the merged
//     event order in both engines.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "experiment/paper.h"
#include "experiment/runner.h"
#include "routing/fabric.h"
#include "sim/faults/plan.h"
#include "sim/parallel/parallel_simulator.h"
#include "sim/simulator.h"

namespace bdps {
namespace {

std::shared_ptr<const CompiledFaults> compile_plan(const FaultPlan& plan,
                                                   const Graph& graph,
                                                   std::uint64_t seed = 7) {
  Rng rng(seed);
  const FaultPlan normalized = materialize_faults(plan, graph, rng);
  return std::make_shared<const CompiledFaults>(
      CompiledFaults::compile(normalized, graph));
}

/// Chain 0-1-...-(n-1) with deterministic links (stddev 0), one publisher
/// at broker 0 and one wildcard subscriber at the far end.
struct ChainRig {
  Topology topo;
  std::unique_ptr<RoutingFabric> fabric;
  std::unique_ptr<const Strategy> strategy = make_strategy(StrategyKind::kEbpc);

  explicit ChainRig(std::size_t brokers, double mean_ms_per_kb = 10.0,
                    bool repairable = false) {
    topo.graph.resize(brokers);
    for (std::size_t b = 0; b + 1 < brokers; ++b) {
      topo.graph.add_bidirectional(static_cast<BrokerId>(b),
                                   static_cast<BrokerId>(b + 1),
                                   LinkParams{mean_ms_per_kb, 0.0});
    }
    topo.publisher_edges = {0};
    topo.subscriber_homes = {static_cast<BrokerId>(brokers - 1)};
    Subscription sub;
    sub.subscriber = 0;
    sub.home = static_cast<BrokerId>(brokers - 1);
    sub.allowed_delay = minutes(2.0);
    sub.price = 2.0;
    FabricOptions fabric_options;
    fabric_options.repairable = repairable;
    fabric = std::make_unique<RoutingFabric>(
        topo, std::vector<Subscription>{sub}, fabric_options);
  }

  std::vector<std::shared_ptr<const Message>> make_messages(
      std::size_t count, TimeMs first_at = 100.0,
      TimeMs spacing = 100.0, double size_kb = 10.0) const {
    std::vector<std::shared_ptr<const Message>> messages;
    for (std::size_t i = 0; i < count; ++i) {
      messages.push_back(std::make_shared<Message>(
          static_cast<MessageId>(i), 0,
          first_at + spacing * static_cast<double>(i), size_kb,
          std::vector<Attribute>{}));
    }
    return messages;
  }
};

void run_with(Simulator& sim,
              std::vector<std::shared_ptr<const Message>> messages) {
  for (auto& message : messages) sim.schedule_publish(std::move(message));
  sim.run();
}

// A down link holds its queued copies and delivers them all after the
// recovery kick; a never-recovering outage strands them without loss.
TEST(FaultStorm, HoldAndRecoverDeliversEverything) {
  FaultPlan plan;
  plan.link_outages.push_back(LinkOutage{0.0, 5000.0, 1, 2});

  ChainRig rig(3);
  SimulatorOptions options;
  options.faults = compile_plan(plan, rig.topo.graph);
  Simulator sim(&rig.topo, &rig.topo.graph, rig.fabric.get(),
                rig.strategy.get(), options, Rng(3));
  run_with(sim, rig.make_messages(3));

  // Copies pile up at broker 1 until the recovery batch at t=5000 kicks
  // the link; with a generous allowed delay every delivery is still valid.
  EXPECT_EQ(sim.collector().deliveries(), 3u);
  EXPECT_EQ(sim.collector().valid_deliveries(), 3u);
  EXPECT_EQ(sim.collector().lost_copies(), 0u);
  EXPECT_GT(sim.now(), 5000.0);
}

TEST(FaultStorm, UnrecoveredOutageStrandsWithoutLoss) {
  FaultPlan plan;
  plan.link_outages.push_back(LinkOutage{0.0, kNoDeadline, 1, 2});

  ChainRig rig(3);
  SimulatorOptions options;
  options.faults = compile_plan(plan, rig.topo.graph);
  Simulator sim(&rig.topo, &rig.topo.graph, rig.fabric.get(),
                rig.strategy.get(), options, Rng(3));
  run_with(sim, rig.make_messages(3));

  // Held is not lost: the copies sit in broker 1's output queue when the
  // event queue drains.  The legacy `failures` path would have counted
  // three losses here.
  EXPECT_EQ(sim.collector().deliveries(), 0u);
  EXPECT_EQ(sim.collector().lost_copies(), 0u);
}

// A broker crash drops its input and output queues as losses and dooms
// the send it had in flight.
TEST(FaultStorm, BrokerCrashDropsQueues) {
  FaultPlan plan;
  // Broker 1 crashes at t=600 with copies queued toward the slow tail
  // link, and never restarts.
  plan.broker_outages.push_back(BrokerOutage{600.0, kNoDeadline, 1});

  ChainRig rig(3, /*mean_ms_per_kb=*/10.0);
  // Slow down the tail link so copies queue at broker 1: 100 ms/KB x
  // 10 KB = 1000 ms per send vs 100 ms on the head link.
  const EdgeId tail = rig.topo.graph.edge_id(1, 2);
  ASSERT_NE(tail, kNoEdge);
  const EdgeId tail_back = rig.topo.graph.edge_id(2, 1);
  ASSERT_NE(tail_back, kNoEdge);
  rig.topo.graph.edge(tail).link = LinkModel(LinkParams{100.0, 0.0});
  rig.topo.graph.edge(tail_back).link = LinkModel(LinkParams{100.0, 0.0});

  SimulatorOptions options;
  options.faults = compile_plan(plan, rig.topo.graph);
  Simulator sim(&rig.topo, &rig.topo.graph, rig.fabric.get(),
                rig.strategy.get(), options, Rng(3));
  // Five messages 100 ms apart: all have crossed the head link by ~600 ms,
  // the first is mid-transfer on the tail link, the rest are queued at 1.
  run_with(sim, rig.make_messages(5));

  EXPECT_EQ(sim.collector().deliveries(), 0u);
  EXPECT_GT(sim.collector().lost_copies(), 0u);
}

// A flap strictly inside a transfer window dooms the in-flight copy even
// though the link is back up at completion time.
TEST(FaultStorm, FlapInsideTransferDoomsTheCopy) {
  FaultPlan plan;
  plan.flaps.push_back(LinkFlap{0, 1, 400.0, seconds(10.0), 100.0, 1});

  ChainRig rig(2, /*mean_ms_per_kb=*/100.0);
  SimulatorOptions options;
  options.faults = compile_plan(plan, rig.topo.graph);
  Simulator sim(&rig.topo, &rig.topo.graph, rig.fabric.get(),
                rig.strategy.get(), options, Rng(3));
  // One 10 KB message at t=100: the send occupies [102, 1102] and the
  // flap window [400, 500) sits strictly inside it.
  run_with(sim, rig.make_messages(1));

  EXPECT_EQ(sim.collector().deliveries(), 0u);
  EXPECT_EQ(sim.collector().lost_copies(), 1u);
}

// Incremental SPT repair: a diamond overlay with a cheap and an expensive
// path.  Without repair an outage on the cheap path strands every copy;
// with options.repair_fabric the fabric reroutes over the detour and the
// subscriber still gets everything.
TEST(FaultStorm, RepairRoutesAroundTheOutage) {
  const auto build_diamond = [](bool repairable) {
    Topology topo;
    topo.graph.resize(4);
    // Cheap path 0-1-3 (10 ms/KB hops), detour 0-2-3 (50 ms/KB hops).
    topo.graph.add_bidirectional(0, 1, LinkParams{10.0, 0.0});
    topo.graph.add_bidirectional(1, 3, LinkParams{10.0, 0.0});
    topo.graph.add_bidirectional(0, 2, LinkParams{50.0, 0.0});
    topo.graph.add_bidirectional(2, 3, LinkParams{50.0, 0.0});
    topo.publisher_edges = {0};
    topo.subscriber_homes = {3};
    Subscription sub;
    sub.subscriber = 0;
    sub.home = 3;
    sub.allowed_delay = minutes(2.0);
    sub.price = 2.0;
    FabricOptions fabric_options;
    fabric_options.repairable = repairable;
    return std::make_pair(
        topo, std::make_unique<RoutingFabric>(
                  topo, std::vector<Subscription>{sub}, fabric_options));
  };

  FaultPlan plan;
  plan.link_outages.push_back(LinkOutage{0.0, kNoDeadline, 1, 3});

  const auto strategy = make_strategy(StrategyKind::kEbpc);
  const auto run_diamond = [&](bool repair) {
    auto [topo, fabric] = build_diamond(repair);
    SimulatorOptions options;
    options.faults = compile_plan(plan, topo.graph);
    if (repair) options.repair_fabric = fabric.get();
    Simulator sim(&topo, &topo.graph, fabric.get(), strategy.get(), options,
                  Rng(3));
    std::vector<std::shared_ptr<const Message>> messages;
    for (MessageId i = 0; i < 4; ++i) {
      messages.push_back(std::make_shared<Message>(
          i, 0, 100.0 + 200.0 * static_cast<double>(i), 10.0,
          std::vector<Attribute>{}));
    }
    run_with(sim, std::move(messages));
    return sim.collector().valid_deliveries();
  };

  EXPECT_EQ(run_diamond(/*repair=*/false), 0u);
  EXPECT_EQ(run_diamond(/*repair=*/true), 4u);
}

// The same storm scenarios through run_simulation must produce an exactly
// identical SimResult at every shard count.
void expect_same_result(const SimResult& sequential, const SimResult& sharded,
                        const std::string& label) {
  EXPECT_EQ(sequential.published, sharded.published) << label;
  EXPECT_EQ(sequential.receptions, sharded.receptions) << label;
  EXPECT_EQ(sequential.deliveries, sharded.deliveries) << label;
  EXPECT_EQ(sequential.valid_deliveries, sharded.valid_deliveries) << label;
  EXPECT_EQ(sequential.total_interested, sharded.total_interested) << label;
  EXPECT_EQ(sequential.delivery_rate, sharded.delivery_rate) << label;
  EXPECT_EQ(sequential.earning, sharded.earning) << label;
  EXPECT_EQ(sequential.potential_earning, sharded.potential_earning) << label;
  EXPECT_EQ(sequential.purged_expired, sharded.purged_expired) << label;
  EXPECT_EQ(sequential.purged_hopeless, sharded.purged_hopeless) << label;
  EXPECT_EQ(sequential.lost_copies, sharded.lost_copies) << label;
  EXPECT_EQ(sequential.max_input_queue, sharded.max_input_queue) << label;
  EXPECT_EQ(sequential.mean_valid_delay_ms, sharded.mean_valid_delay_ms)
      << label;
  EXPECT_EQ(sequential.end_time, sharded.end_time) << label;
}

TEST(FaultStormEquivalence, StormConfigGrid) {
  std::vector<std::pair<std::string, SimConfig>> configs;

  // Ring: the consecutive links are known, so outages and flaps can be
  // addressed directly.  Mixed link churn plus a broker crash window.
  {
    SimConfig config =
        paper_base_config(ScenarioKind::kSsd, 10.0, StrategyKind::kEbpc, 31);
    config.workload.duration = seconds(30.0);
    config.topology = TopologyKind::kRing;
    config.broker_count = 16;
    config.faults.link_outages.push_back(
        LinkOutage{seconds(3.0), seconds(9.0), 2, 3});
    config.faults.flaps.push_back(
        LinkFlap{8, 9, seconds(5.0), seconds(4.0), seconds(0.5), 4});
    config.faults.broker_outages.push_back(
        BrokerOutage{seconds(4.0), seconds(12.0), 5});
    configs.emplace_back("ring_churn", config);
  }
  // Ring with routing repair and serialized processing: the fabric is
  // patched at fault batches in both engines.
  {
    SimConfig config =
        paper_base_config(ScenarioKind::kPsd, 12.0, StrategyKind::kPc, 37);
    config.workload.duration = seconds(30.0);
    config.topology = TopologyKind::kRing;
    config.broker_count = 14;
    config.serialize_processing = true;
    config.repair_routing = true;
    config.faults.link_outages.push_back(
        LinkOutage{seconds(2.0), seconds(20.0), 4, 5});
    config.faults.link_outages.push_back(
        LinkOutage{seconds(6.0), seconds(14.0), 10, 11});
    config.faults.flaps.push_back(
        LinkFlap{0, 1, seconds(8.0), seconds(3.0), seconds(1.0), 3});
    configs.emplace_back("ring_repair", config);
  }
  // Mesh: a killer storm centered on a hub, online estimation and a
  // flash-crowd burst riding on top.
  {
    SimConfig config =
        paper_base_config(ScenarioKind::kBoth, 12.0, StrategyKind::kEbpc, 41);
    config.workload.duration = seconds(30.0);
    config.topology = TopologyKind::kRandomMesh;
    config.broker_count = 18;
    config.extra_edges = 14;
    config.online_estimation = true;
    config.belief_noise_frac = 0.2;
    RegionStorm storm;
    storm.at = seconds(6.0);
    storm.epicenter = 3;
    storm.radius = 2;
    storm.recovery_delay = seconds(8.0);
    storm.recovery_jitter = seconds(2.0);
    storm.kill_brokers = true;
    config.faults.storms.push_back(storm);
    config.workload.bursts.push_back(
        WorkloadConfig::PublishBurst{seconds(7.0), seconds(3.0), 4.0});
    configs.emplace_back("mesh_storm", config);
  }
  // Mesh storm with repair: the strongest interaction — incremental SPT
  // repair driven from inside both engines at every batch.
  {
    SimConfig config =
        paper_base_config(ScenarioKind::kSsd, 15.0, StrategyKind::kEb, 43);
    config.workload.duration = seconds(30.0);
    config.topology = TopologyKind::kRandomMesh;
    config.broker_count = 16;
    config.extra_edges = 12;
    config.repair_routing = true;
    RegionStorm storm;
    storm.at = seconds(5.0);
    storm.epicenter = 7;
    storm.radius = 1;
    storm.recovery_delay = seconds(10.0);
    storm.recovery_jitter = seconds(1.0);
    config.faults.storms.push_back(storm);
    config.faults.broker_outages.push_back(
        BrokerOutage{seconds(15.0), seconds(22.0), 2});
    configs.emplace_back("mesh_storm_repair", config);
  }

  for (const auto& [name, base] : configs) {
    SimConfig sequential_config = base;
    sequential_config.shards = 0;
    const SimResult sequential = run_simulation(sequential_config);
    EXPECT_GT(sequential.published, 0u) << name;
    for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
      SimConfig sharded_config = base;
      sharded_config.shards = shards;
      const SimResult sharded = run_simulation(sharded_config);
      expect_same_result(sequential, sharded,
                         name + "/P" + std::to_string(shards));
    }
  }
}

/// Ring overlay driven directly so both engines can carry a MemoryTrace
/// through a storm.
struct StormRing {
  Topology topo;
  std::unique_ptr<RoutingFabric> fabric;
  std::unique_ptr<const Strategy> strategy = make_strategy(StrategyKind::kEbpc);

  explicit StormRing(std::size_t brokers = 8) {
    topo.graph.resize(brokers);
    for (std::size_t b = 0; b < brokers; ++b) {
      topo.graph.add_bidirectional(
          static_cast<BrokerId>(b), static_cast<BrokerId>((b + 1) % brokers),
          LinkParams{40.0 + 5.0 * (b % 3), 8.0});
    }
    topo.publisher_edges = {0, static_cast<BrokerId>(brokers / 2)};
    std::vector<Subscription> subs;
    for (std::size_t b = 0; b < brokers; ++b) {
      topo.subscriber_homes.push_back(static_cast<BrokerId>(b));
      Subscription sub;
      sub.subscriber = static_cast<SubscriberId>(b);
      sub.home = static_cast<BrokerId>(b);
      sub.allowed_delay = minutes(2.0);
      sub.price = 1.0 + static_cast<double>(b % 4);
      subs.push_back(sub);
    }
    fabric = std::make_unique<RoutingFabric>(topo, std::move(subs));
  }

  std::vector<std::shared_ptr<const Message>> make_messages() const {
    std::vector<std::shared_ptr<const Message>> messages;
    for (MessageId i = 0; i < 40; ++i) {
      messages.push_back(std::make_shared<Message>(
          i, static_cast<PublisherId>(i % 2), 250.0 * static_cast<double>(i),
          30.0 + static_cast<double>(i % 5), std::vector<Attribute>{}));
    }
    return messages;
  }
};

TEST(FaultStormEquivalence, TraceStreamsMatchUnderStorm) {
  const StormRing rig;
  FaultPlan plan;
  RegionStorm storm;
  storm.at = 2000.0;
  storm.epicenter = 3;
  storm.radius = 1;
  storm.recovery_delay = 3000.0;
  storm.recovery_jitter = 500.0;
  storm.kill_brokers = true;
  plan.storms.push_back(storm);
  plan.flaps.push_back(LinkFlap{6, 7, 1500.0, 2500.0, 400.0, 3});
  plan.broker_outages.push_back(BrokerOutage{7000.0, 9000.0, 5});

  SimulatorOptions options;
  options.online_estimation = true;
  options.faults = compile_plan(plan, rig.topo.graph, /*seed=*/17);

  MemoryTrace sequential_trace;
  Simulator sequential(&rig.topo, &rig.topo.graph, rig.fabric.get(),
                       rig.strategy.get(), options, Rng(99));
  sequential.set_trace(&sequential_trace);
  run_with(sequential, rig.make_messages());
  EXPECT_GT(sequential.collector().deliveries(), 0u);

  for (const std::size_t shards : {2u, 3u, 7u}) {
    SimulatorOptions sharded_options = options;
    sharded_options.shards = shards;
    MemoryTrace parallel_trace;
    ParallelSimulator parallel(&rig.topo, &rig.topo.graph, rig.fabric.get(),
                               rig.strategy.get(), sharded_options, Rng(99));
    parallel.set_trace(&parallel_trace);
    for (auto& message : rig.make_messages()) {
      parallel.schedule_publish(std::move(message));
    }
    parallel.run();

    EXPECT_EQ(parallel.now(), sequential.now()) << shards;
    EXPECT_EQ(parallel.collector().earning(), sequential.collector().earning())
        << shards;
    EXPECT_EQ(parallel.collector().lost_copies(),
              sequential.collector().lost_copies())
        << shards;
    ASSERT_EQ(parallel_trace.size(), sequential_trace.size()) << shards;
    for (std::size_t i = 0; i < sequential_trace.size(); ++i) {
      const TraceEvent& want = sequential_trace.events()[i];
      const TraceEvent& got = parallel_trace.events()[i];
      ASSERT_EQ(got.time, want.time) << "event " << i << " P" << shards;
      ASSERT_EQ(got.kind, want.kind) << "event " << i << " P" << shards;
      ASSERT_EQ(got.message, want.message) << "event " << i << " P" << shards;
      ASSERT_EQ(got.broker, want.broker) << "event " << i << " P" << shards;
      ASSERT_EQ(got.neighbor, want.neighbor) << "event " << i;
      ASSERT_EQ(got.subscriber, want.subscriber) << "event " << i;
      ASSERT_EQ(got.valid, want.valid) << "event " << i;
    }
    for (std::size_t e = 0; e < rig.topo.graph.edge_count(); ++e) {
      const auto* want = sequential.estimator(static_cast<EdgeId>(e));
      const auto* got = parallel.estimator(static_cast<EdgeId>(e));
      ASSERT_EQ(want == nullptr, got == nullptr) << e;
      if (want != nullptr) {
        EXPECT_EQ(got->sample_count(), want->sample_count()) << e;
        EXPECT_EQ(got->samples().mean(), want->samples().mean()) << e;
      }
    }
  }
}

}  // namespace
}  // namespace bdps
