// Fault-plan validation, normalization, serialization and compilation.
//
// materialize_faults is the single gate every fault timeline passes
// through: it must reject references outside the graph and malformed
// windows, expand storm/flap generators deterministically, and normalize
// overlapping windows into sorted disjoint ones.  CompiledFaults turns the
// result into per-instant batches plus the two CSR doom predicates; their
// half-open boundary conventions are what the engines' loss accounting
// rests on, so they are pinned here explicitly.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/random.h"
#include "sim/faults/plan.h"
#include "sim/faults/timeline.h"
#include "topology/graph.h"

namespace bdps {
namespace {

/// Path 0-1-2-3-4 plus a chord 1-3.
Graph path_graph() {
  Graph graph(5);
  const LinkParams params{40.0, 8.0};
  for (BrokerId b = 0; b + 1 < 5; ++b) {
    graph.add_bidirectional(b, b + 1, params);
  }
  graph.add_bidirectional(1, 3, params);
  return graph;
}

TEST(FaultPlanValidation, RejectsUnknownBrokerAndLink) {
  const Graph graph = path_graph();
  Rng rng(1);
  {
    FaultPlan plan;
    plan.broker_outages.push_back(BrokerOutage{0.0, 10.0, 9});
    EXPECT_THROW(materialize_faults(plan, graph, rng), std::invalid_argument);
  }
  {
    FaultPlan plan;  // Brokers exist, link does not.
    plan.link_outages.push_back(LinkOutage{0.0, 10.0, 0, 4});
    EXPECT_THROW(materialize_faults(plan, graph, rng), std::invalid_argument);
  }
  {
    FaultPlan plan;  // Self-loop.
    plan.link_outages.push_back(LinkOutage{0.0, 10.0, 2, 2});
    EXPECT_THROW(materialize_faults(plan, graph, rng), std::invalid_argument);
  }
  {
    FaultPlan plan;
    plan.flaps.push_back(LinkFlap{0, 4, 0.0, 10.0, 1.0, 2});
    EXPECT_THROW(materialize_faults(plan, graph, rng), std::invalid_argument);
  }
  {
    FaultPlan plan;
    RegionStorm storm;
    storm.epicenter = -1;
    plan.storms.push_back(storm);
    EXPECT_THROW(materialize_faults(plan, graph, rng), std::invalid_argument);
  }
}

TEST(FaultPlanValidation, RejectsMalformedWindows) {
  const Graph graph = path_graph();
  Rng rng(1);
  {
    FaultPlan plan;  // Inverted.
    plan.link_outages.push_back(LinkOutage{20.0, 10.0, 0, 1});
    EXPECT_THROW(materialize_faults(plan, graph, rng), std::invalid_argument);
  }
  {
    FaultPlan plan;  // Empty.
    plan.broker_outages.push_back(BrokerOutage{10.0, 10.0, 2});
    EXPECT_THROW(materialize_faults(plan, graph, rng), std::invalid_argument);
  }
  {
    FaultPlan plan;  // Negative down time.
    plan.link_outages.push_back(LinkOutage{-1.0, 10.0, 0, 1});
    EXPECT_THROW(materialize_faults(plan, graph, rng), std::invalid_argument);
  }
  {
    FaultPlan plan;  // Flap with non-positive period.
    plan.flaps.push_back(LinkFlap{0, 1, 0.0, 0.0, 1.0, 2});
    EXPECT_THROW(materialize_faults(plan, graph, rng), std::invalid_argument);
  }
  {
    FaultPlan plan;  // Storm with zero recovery delay.
    RegionStorm storm;
    storm.epicenter = 1;
    storm.recovery_delay = 0.0;
    plan.storms.push_back(storm);
    EXPECT_THROW(materialize_faults(plan, graph, rng), std::invalid_argument);
  }
}

TEST(FaultPlanNormalization, MergesOverlappingAndTouchingWindows) {
  const Graph graph = path_graph();
  Rng rng(1);
  FaultPlan plan;
  // Overlap, touch, and disjoint on one link (given in shuffled order, and
  // once with the endpoints swapped — canonicalised to (min, max)).
  plan.link_outages.push_back(LinkOutage{30.0, 40.0, 0, 1});
  plan.link_outages.push_back(LinkOutage{0.0, 10.0, 1, 0});
  plan.link_outages.push_back(LinkOutage{5.0, 12.0, 0, 1});
  plan.link_outages.push_back(LinkOutage{12.0, 20.0, 0, 1});
  plan.broker_outages.push_back(BrokerOutage{50.0, kNoDeadline, 2});
  plan.broker_outages.push_back(BrokerOutage{40.0, 60.0, 2});

  const FaultPlan norm = materialize_faults(plan, graph, rng);
  ASSERT_EQ(norm.link_outages.size(), 2u);
  EXPECT_EQ(norm.link_outages[0].down_at, 0.0);
  EXPECT_EQ(norm.link_outages[0].up_at, 20.0);
  EXPECT_EQ(norm.link_outages[0].a, 0);
  EXPECT_EQ(norm.link_outages[0].b, 1);
  EXPECT_EQ(norm.link_outages[1].down_at, 30.0);
  EXPECT_EQ(norm.link_outages[1].up_at, 40.0);
  ASSERT_EQ(norm.broker_outages.size(), 1u);
  EXPECT_EQ(norm.broker_outages[0].down_at, 40.0);
  EXPECT_EQ(norm.broker_outages[0].up_at, kNoDeadline);  // Never recovers.
  EXPECT_TRUE(norm.storms.empty());
  EXPECT_TRUE(norm.flaps.empty());
}

TEST(FaultPlanGenerators, StormKillsTheBfsBall) {
  const Graph graph = path_graph();
  Rng rng(7);
  FaultPlan plan;
  RegionStorm storm;
  storm.at = 100.0;
  storm.epicenter = 2;
  storm.radius = 1;
  storm.recovery_delay = 50.0;
  storm.kill_brokers = true;
  plan.storms.push_back(storm);

  const FaultPlan norm = materialize_faults(plan, graph, rng);
  // Ball around 2 with radius 1: brokers {1, 2, 3}; links with *both*
  // endpoints inside: 1-2, 2-3 and the chord 1-3.
  ASSERT_EQ(norm.link_outages.size(), 3u);
  for (const LinkOutage& o : norm.link_outages) {
    EXPECT_EQ(o.down_at, 100.0);
    EXPECT_EQ(o.up_at, 150.0);  // No jitter requested.
  }
  EXPECT_EQ(norm.link_outages[0].a, 1);
  EXPECT_EQ(norm.link_outages[0].b, 2);
  EXPECT_EQ(norm.link_outages[1].a, 1);
  EXPECT_EQ(norm.link_outages[1].b, 3);
  EXPECT_EQ(norm.link_outages[2].a, 2);
  EXPECT_EQ(norm.link_outages[2].b, 3);
  // kill_brokers crashes brokers strictly inside (distance <= radius - 1).
  ASSERT_EQ(norm.broker_outages.size(), 1u);
  EXPECT_EQ(norm.broker_outages[0].broker, 2);
}

TEST(FaultPlanGenerators, StormJitterIsDeterministicInTheSeed) {
  const Graph graph = path_graph();
  FaultPlan plan;
  RegionStorm storm;
  storm.at = 10.0;
  storm.epicenter = 2;
  storm.radius = 2;
  storm.recovery_delay = 30.0;
  storm.recovery_jitter = 20.0;
  plan.storms.push_back(storm);

  Rng rng_a(42);
  Rng rng_b(42);
  const FaultPlan a = materialize_faults(plan, graph, rng_a);
  const FaultPlan b = materialize_faults(plan, graph, rng_b);
  ASSERT_EQ(a.link_outages.size(), b.link_outages.size());
  for (std::size_t i = 0; i < a.link_outages.size(); ++i) {
    EXPECT_EQ(a.link_outages[i].up_at, b.link_outages[i].up_at) << i;
    EXPECT_GE(a.link_outages[i].up_at, 40.0) << i;
    EXPECT_LT(a.link_outages[i].up_at, 60.0) << i;
  }
}

TEST(FaultPlanGenerators, FlapExpandsToPeriodicWindows) {
  const Graph graph = path_graph();
  Rng rng(1);
  FaultPlan plan;
  plan.flaps.push_back(LinkFlap{3, 4, 100.0, 50.0, 5.0, 3});
  const FaultPlan norm = materialize_faults(plan, graph, rng);
  ASSERT_EQ(norm.link_outages.size(), 3u);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(norm.link_outages[k].down_at, 100.0 + 50.0 * k) << k;
    EXPECT_EQ(norm.link_outages[k].up_at, 105.0 + 50.0 * k) << k;
  }
}

TEST(FaultPlanFormat, RoundTripIsBitwise) {
  FaultPlan plan;
  plan.link_outages.push_back(LinkOutage{0.125, 17.375, 0, 1});
  plan.link_outages.push_back(LinkOutage{1e-3, kNoDeadline, 2, 3});
  plan.broker_outages.push_back(BrokerOutage{3.0625, 9.25, 4});
  RegionStorm storm;
  storm.at = 12.5;
  storm.epicenter = 2;
  storm.radius = 3;
  storm.recovery_delay = 30.75;
  storm.recovery_jitter = 0.5;
  storm.kill_brokers = true;
  plan.storms.push_back(storm);
  plan.flaps.push_back(LinkFlap{1, 3, 7.125, 10.5, 0.875, 4});

  const std::string text = format_fault_plan(plan);
  const FaultPlan parsed = parse_fault_plan(text);
  // A second format of the parse must reproduce the bytes (hexfloat).
  EXPECT_EQ(format_fault_plan(parsed), text);
  ASSERT_EQ(parsed.link_outages.size(), 2u);
  EXPECT_EQ(parsed.link_outages[1].up_at, kNoDeadline);
  ASSERT_EQ(parsed.storms.size(), 1u);
  EXPECT_EQ(parsed.storms[0].recovery_delay, 30.75);
  EXPECT_TRUE(parsed.storms[0].kill_brokers);
  ASSERT_EQ(parsed.flaps.size(), 1u);
  EXPECT_EQ(parsed.flaps[0].count, 4);
}

TEST(FaultPlanFormat, ParserRejectsMalformedDirectives) {
  EXPECT_THROW(parse_fault_plan("link 0 1 0.0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("broker x 0.0 1.0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("meteor 0 1"), std::invalid_argument);
  // Comments and blank lines are fine.
  const FaultPlan plan =
      parse_fault_plan("# storm drill\n\nlink 0 1 0x1p+3 inf  # tail\n");
  ASSERT_EQ(plan.link_outages.size(), 1u);
  EXPECT_EQ(plan.link_outages[0].down_at, 8.0);
}

TEST(CompiledFaultsTest, RejectsUnmaterializedPlans) {
  const Graph graph = path_graph();
  FaultPlan plan;
  plan.storms.push_back(RegionStorm{});
  EXPECT_THROW(CompiledFaults::compile(plan, graph), std::invalid_argument);
}

TEST(CompiledFaultsTest, BatchesGroupInstantsInCanonicalOrder) {
  const Graph graph = path_graph();
  Rng rng(1);
  FaultPlan plan;
  plan.link_outages.push_back(LinkOutage{10.0, 30.0, 0, 1});
  plan.broker_outages.push_back(BrokerOutage{10.0, 30.0, 4});
  const FaultPlan norm = materialize_faults(plan, graph, rng);
  const CompiledFaults compiled = CompiledFaults::compile(norm, graph);

  // One batch at 10 (downs) and one at 30 (ups); the broker outage folds
  // into its incident directed edges (3-4 and 4-3) alongside 0-1 / 1-0.
  ASSERT_EQ(compiled.batches().size(), 2u);
  const FaultBatch& down = compiled.batches()[0];
  EXPECT_EQ(down.at, 10.0);
  EXPECT_EQ(down.brokers_down, (std::vector<BrokerId>{4}));
  EXPECT_TRUE(down.brokers_up.empty());
  ASSERT_EQ(down.edges_down.size(), 4u);
  EXPECT_TRUE(std::is_sorted(down.edges_down.begin(), down.edges_down.end()));
  const FaultBatch& up = compiled.batches()[1];
  EXPECT_EQ(up.at, 30.0);
  EXPECT_EQ(up.brokers_up, (std::vector<BrokerId>{4}));
  EXPECT_EQ(up.edges_up, down.edges_down);
}

TEST(CompiledFaultsTest, DoomPredicatesUseHalfOpenBoundaries) {
  const Graph graph = path_graph();
  Rng rng(1);
  FaultPlan plan;
  plan.link_outages.push_back(LinkOutage{10.0, 20.0, 0, 1});
  plan.broker_outages.push_back(BrokerOutage{100.0, 120.0, 2});
  const FaultPlan norm = materialize_faults(plan, graph, rng);
  const CompiledFaults compiled = CompiledFaults::compile(norm, graph);
  const EdgeId e01 = graph.edge_id(0, 1);
  const EdgeId e10 = graph.edge_id(1, 0);
  const EdgeId e12 = graph.edge_id(1, 2);

  // A send spanning the down instant is cut; the down-transition at 10 is
  // counted in (after, upto] — exclusive on the left, inclusive right.
  EXPECT_TRUE(compiled.edge_cut_between(e01, 5.0, 15.0));
  EXPECT_TRUE(compiled.edge_cut_between(e10, 5.0, 10.0));   // Ends at 10.
  EXPECT_FALSE(compiled.edge_cut_between(e01, 10.0, 15.0));  // Starts at 10.
  EXPECT_FALSE(compiled.edge_cut_between(e01, 11.0, 19.0));  // Inside: held,
  // not cut — the queue simply cannot start a send while down.
  // A flap fully inside the send still dooms it even though the link is up
  // again at completion.
  EXPECT_TRUE(compiled.edge_cut_between(e01, 5.0, 25.0));
  EXPECT_FALSE(compiled.edge_cut_between(e12, 5.0, 25.0));  // Other link.

  EXPECT_TRUE(compiled.broker_cut_between(2, 95.0, 100.0));
  EXPECT_FALSE(compiled.broker_cut_between(2, 100.0, 105.0));
  EXPECT_FALSE(compiled.broker_cut_between(3, 95.0, 105.0));
}

TEST(CompiledFaultsTest, BrokerWindowsMergeIntoIncidentEdges) {
  const Graph graph = path_graph();
  Rng rng(1);
  FaultPlan plan;
  // Link window overlapping a broker window on edge 1-2: the compiled edge
  // timeline must merge them (one down-transition, not two).
  plan.link_outages.push_back(LinkOutage{10.0, 30.0, 1, 2});
  plan.broker_outages.push_back(BrokerOutage{20.0, 50.0, 2});
  const FaultPlan norm = materialize_faults(plan, graph, rng);
  const CompiledFaults compiled = CompiledFaults::compile(norm, graph);
  const EdgeId e12 = graph.edge_id(1, 2);
  EXPECT_TRUE(compiled.edge_cut_between(e12, 5.0, 15.0));
  // No transition at 20 or 30 on the merged edge window [10, 50).
  EXPECT_FALSE(compiled.edge_cut_between(e12, 15.0, 45.0));
  // Batches: 10 (link down), 20 (broker crash + its *other* incident edges
  // down — 1-2 is already down and stays merged), 50 (everything up).
  ASSERT_EQ(compiled.batches().size(), 3u);
  EXPECT_EQ(compiled.batches()[0].at, 10.0);
  EXPECT_EQ(compiled.batches()[1].at, 20.0);
  EXPECT_EQ(compiled.batches()[1].brokers_down, (std::vector<BrokerId>{2}));
  EXPECT_EQ(compiled.batches()[2].at, 50.0);
  EXPECT_EQ(compiled.batches()[2].edges_up.size(), 4u);
}

}  // namespace
}  // namespace bdps
