// SLA grading: windowed service series over the trace stream.
#include <gtest/gtest.h>

#include "experiment/paper.h"
#include "experiment/sweep.h"
#include "stats/sla.h"

namespace bdps {
namespace {

TraceEvent event(TimeMs time, TraceEventKind kind, MessageId message,
                 BrokerId broker, BrokerId neighbor = kNoBroker,
                 bool valid = false) {
  return TraceEvent{time, kind, message, broker, neighbor, -1, valid};
}

TEST(SlaTracker, GradesHandFedWindows) {
  SlaTracker tracker(1000.0);

  // Window 0: two deliveries, one valid; a copy resident 300 ms.
  tracker.record(event(100.0, TraceEventKind::kEnqueue, 1, 0, 1));
  tracker.record(event(400.0, TraceEventKind::kSendStart, 1, 0, 1));
  tracker.record(event(500.0, TraceEventKind::kDeliver, 1, 1, kNoBroker,
                       /*valid=*/true));
  tracker.record(event(600.0, TraceEventKind::kDeliver, 1, 1, kNoBroker,
                       /*valid=*/false));
  // Window 2: a purge ending a 1700 ms residence, and a loss.
  tracker.record(event(800.0, TraceEventKind::kEnqueue, 2, 0, 1));
  tracker.record(event(2500.0, TraceEventKind::kPurge, 2, 0, 1));
  tracker.record(event(2600.0, TraceEventKind::kLoss, 3, 4, kNoBroker));

  const std::vector<SlaWindow> series = tracker.series();
  ASSERT_EQ(series.size(), 3u);

  EXPECT_EQ(series[0].deliveries, 2u);
  EXPECT_EQ(series[0].valid_deliveries, 1u);
  EXPECT_DOUBLE_EQ(series[0].hit_rate, 0.5);
  EXPECT_DOUBLE_EQ(series[0].purge_fraction, 0.0);
  EXPECT_EQ(series[0].residence_samples, 1u);
  EXPECT_DOUBLE_EQ(series[0].p99_residence_ms, 300.0);

  EXPECT_FALSE(series[1].active());
  EXPECT_DOUBLE_EQ(series[1].hit_rate, 1.0);  // Silence, not health.

  EXPECT_EQ(series[2].purged, 1u);
  EXPECT_EQ(series[2].lost, 1u);
  EXPECT_DOUBLE_EQ(series[2].purge_fraction, 0.5);
  EXPECT_DOUBLE_EQ(series[2].p99_residence_ms, 1700.0);

  // Breach span: window 0 (hit-rate 0.5) through window 2 (purge fraction
  // 0.5) — the inactive window 1 sits inside the span, not ending it.
  EXPECT_DOUBLE_EQ(SlaTracker::time_to_recover(series, 0.95, 0.05), 3000.0);
}

TEST(SlaTracker, P99PicksTheTailSample) {
  SlaTracker tracker(10000.0);
  for (int i = 1; i <= 200; ++i) {
    tracker.record(
        event(0.0, TraceEventKind::kEnqueue, i, 0, 1));
    tracker.record(
        event(static_cast<TimeMs>(i), TraceEventKind::kSendStart, i, 0, 1));
  }
  const std::vector<SlaWindow> series = tracker.series();
  ASSERT_EQ(series.size(), 1u);
  ASSERT_EQ(series[0].residence_samples, 200u);
  // ceil(0.99 * 200) = 198th order statistic of 1..200.
  EXPECT_DOUBLE_EQ(series[0].p99_residence_ms, 198.0);
}

TEST(SlaTracker, RejectsNonPositiveWindow) {
  EXPECT_THROW(SlaTracker(0.0), std::invalid_argument);
  EXPECT_THROW(SlaTracker(-5.0), std::invalid_argument);
}

TEST(SlaRunGrading, StormBreachesAndCalmRunDoesNot) {
  // Light load: the calm baseline must actually meet the SLA, so the
  // breach below is attributable to the storm and nothing else.
  SimConfig config =
      paper_base_config(ScenarioKind::kSsd, 30.0, StrategyKind::kEbpc, 31);
  config.workload.duration = seconds(40.0);
  config.topology = TopologyKind::kRing;
  config.broker_count = 12;
  // Fast links (0.1-0.2 s per 50 KB hop): end-to-end transit sits far
  // inside the 10-60 s SSD deadlines, so only the outage can breach.
  config.link_mean_lo_ms_per_kb = 2.0;
  config.link_mean_hi_ms_per_kb = 4.0;
  config.link_stddev_ms_per_kb = 1.0;

  const SlaRun calm = run_with_sla(config, seconds(2.0));
  ASSERT_FALSE(calm.windows.empty());
  EXPECT_DOUBLE_EQ(calm.time_to_recover, 0.0);

  // A long total outage on one ring link: every copy routed over it purges
  // or misses until recovery at t = 25 s.
  SimConfig storm_config = config;
  storm_config.faults.link_outages.push_back(
      LinkOutage{seconds(5.0), seconds(25.0), 3, 4});
  const SlaRun storm = run_with_sla(storm_config, seconds(2.0));

  EXPECT_GT(storm.time_to_recover, 0.0);
  EXPECT_GT(storm.time_to_recover, calm.time_to_recover);
  // The breach region must intersect the outage window itself.
  bool degraded_during_outage = false;
  for (const SlaWindow& w : storm.windows) {
    if (w.start + w.width <= seconds(5.0) || w.start >= seconds(25.0)) {
      continue;
    }
    if (w.active() && (w.hit_rate < 0.95 || w.purge_fraction > 0.05)) {
      degraded_during_outage = true;
    }
  }
  EXPECT_TRUE(degraded_during_outage);

  // Grading is a pure function of the trace stream, which is pinned
  // bitwise across shard counts — the sharded run grades identically.
  SimConfig sharded = storm_config;
  sharded.shards = 3;
  const SlaRun sharded_run = run_with_sla(sharded, seconds(2.0));
  ASSERT_EQ(sharded_run.windows.size(), storm.windows.size());
  for (std::size_t i = 0; i < storm.windows.size(); ++i) {
    EXPECT_EQ(sharded_run.windows[i].deliveries, storm.windows[i].deliveries);
    EXPECT_EQ(sharded_run.windows[i].valid_deliveries,
              storm.windows[i].valid_deliveries);
    EXPECT_EQ(sharded_run.windows[i].purged, storm.windows[i].purged);
    EXPECT_EQ(sharded_run.windows[i].lost, storm.windows[i].lost);
    EXPECT_DOUBLE_EQ(sharded_run.windows[i].p99_residence_ms,
                     storm.windows[i].p99_residence_ms);
  }
  EXPECT_DOUBLE_EQ(sharded_run.time_to_recover, storm.time_to_recover);
}

}  // namespace
}  // namespace bdps
