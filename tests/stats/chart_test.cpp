#include "stats/chart.h"

#include <gtest/gtest.h>

#include <sstream>

namespace bdps {
namespace {

std::string render(AsciiChart& chart, const std::string& title = "") {
  std::ostringstream os;
  chart.print(os, title);
  return os.str();
}

TEST(AsciiChart, EmptyChartRendersNothing) {
  AsciiChart chart;
  EXPECT_EQ(render(chart), "");
}

TEST(AsciiChart, TitleAndLegendAppear) {
  AsciiChart chart(30, 8);
  chart.add_series("EB", {{0.0, 1.0}, {1.0, 2.0}});
  const std::string out = render(chart, "my title");
  EXPECT_NE(out.find("my title"), std::string::npos);
  EXPECT_NE(out.find("* = EB"), std::string::npos);
}

TEST(AsciiChart, DistinctMarkersPerSeries) {
  AsciiChart chart(30, 8);
  chart.add_series("a", {{0.0, 0.0}});
  chart.add_series("b", {{1.0, 1.0}});
  const std::string out = render(chart);
  EXPECT_NE(out.find("* = a"), std::string::npos);
  EXPECT_NE(out.find("o = b"), std::string::npos);
}

TEST(AsciiChart, ExtremePointsLandInCorners) {
  AsciiChart chart(20, 6);
  chart.set_y_range(0.0, 10.0);
  chart.add_series("s", {{0.0, 0.0}, {10.0, 10.0}});
  const std::string out = render(chart);
  std::vector<std::string> lines;
  std::istringstream in(out);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  // First grid row (top) holds the max point at the right edge.
  EXPECT_EQ(lines[0].back(), '*');
  // Bottom grid row (height 6 -> index 5) holds the min at the left edge.
  EXPECT_EQ(lines[5][10], '*');  // 10 = label width ("%8.1f |").
}

TEST(AsciiChart, AxisLabelsShowRanges) {
  AsciiChart chart(40, 8);
  chart.add_series("s", {{2.0, 50.0}, {12.0, 150.0}});
  const std::string out = render(chart);
  EXPECT_NE(out.find("2.0"), std::string::npos);
  EXPECT_NE(out.find("12.0"), std::string::npos);
  // Y labels include (roughly) the max with margin.
  EXPECT_NE(out.find("155.0"), std::string::npos);
}

TEST(AsciiChart, SinglePointDoesNotCrash) {
  AsciiChart chart(20, 5);
  chart.add_series("s", {{5.0, 5.0}});
  const std::string out = render(chart);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiChart, PointsOutsideFixedRangeAreClipped) {
  AsciiChart chart(20, 5);
  chart.set_y_range(0.0, 1.0);
  chart.add_series("s", {{0.0, 100.0}});  // Far above the fixed range.
  const std::string out = render(chart);
  // Marker is clipped away, but the frame still renders.
  EXPECT_EQ(out.find('*'), out.find("* = s"));
}

}  // namespace
}  // namespace bdps
