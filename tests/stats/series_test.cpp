#include "stats/series.h"

#include <gtest/gtest.h>

#include <sstream>

namespace bdps {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable table({"x", "value"});
  table.add_row({"1", "10.00"});
  table.add_row({"15", "7.25"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  // Header present, rule present, both rows present.
  EXPECT_NE(out.find("x   value"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("15  7.25"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"1"});
  ASSERT_EQ(table.rows()[0].size(), 3u);
  EXPECT_EQ(table.rows()[0][2], "");
}

TEST(TextTable, AddRowValuesFormatsMixedTypes) {
  TextTable table({"a", "b", "c"});
  table.add_row_values(1, 2.5, std::string("x"));
  ASSERT_EQ(table.rows().size(), 1u);
  EXPECT_EQ(table.rows()[0][0], "1");
  EXPECT_EQ(table.rows()[0][1], "2.5");
  EXPECT_EQ(table.rows()[0][2], "x");
}

TEST(TextTable, FixedFormatsDecimals) {
  EXPECT_EQ(TextTable::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fixed(10.0, 0), "10");
  EXPECT_EQ(TextTable::fixed(-1.005, 1), "-1.0");
}

}  // namespace
}  // namespace bdps
