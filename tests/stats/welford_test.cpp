#include "stats/welford.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace bdps {
namespace {

TEST(Welford, EmptyIsZero) {
  const Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.standard_error(), 0.0);
}

TEST(Welford, SingleValue) {
  Welford w;
  w.add(5.0);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 5.0);
  EXPECT_DOUBLE_EQ(w.max(), 5.0);
}

TEST(Welford, MatchesDirectComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  Welford w;
  for (const double x : xs) w.add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.variance(), 4.0);         // Population.
  EXPECT_DOUBLE_EQ(w.sample_variance(), 32.0 / 7.0);
  EXPECT_DOUBLE_EQ(w.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(Welford, StandardError) {
  Welford w;
  for (int i = 0; i < 100; ++i) w.add(i % 2 == 0 ? 1.0 : -1.0);
  // sample stddev ~ 1.005, stderr ~ 0.1005.
  EXPECT_NEAR(w.standard_error(), w.sample_stddev() / 10.0, 1e-12);
}

TEST(Welford, MergeEquivalentToSequential) {
  Rng rng(3);
  Welford all;
  Welford left;
  Welford right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    all.add(x);
    (i % 3 == 0 ? left : right).add(x);
  }
  Welford merged = left;
  merged.merge(right);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_NEAR(merged.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), all.min());
  EXPECT_DOUBLE_EQ(merged.max(), all.max());
}

TEST(Welford, MergeWithEmptySides) {
  Welford w;
  w.add(1.0);
  w.add(3.0);
  Welford empty;
  Welford merged = w;
  merged.merge(empty);
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_DOUBLE_EQ(merged.mean(), 2.0);
  Welford from_empty;
  from_empty.merge(w);
  EXPECT_EQ(from_empty.count(), 2u);
  EXPECT_DOUBLE_EQ(from_empty.mean(), 2.0);
}

TEST(Welford, NumericallyStableForLargeOffsets) {
  // Classic catastrophic-cancellation case: tiny variance on a huge mean.
  Welford w;
  for (int i = 0; i < 1000; ++i) w.add(1e9 + (i % 2));
  EXPECT_NEAR(w.variance(), 0.25, 1e-6);
}

}  // namespace
}  // namespace bdps
