#include "stats/rate_estimator.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace bdps {
namespace {

const LinkParams kPrior{75.0, 20.0};

TEST(RateEstimator, NoSamplesReturnsPrior) {
  const RateEstimator est;
  const LinkParams p = est.estimate(kPrior);
  EXPECT_DOUBLE_EQ(p.mean_ms_per_kb, 75.0);
  EXPECT_DOUBLE_EQ(p.stddev_ms_per_kb, 20.0);
}

TEST(RateEstimator, ObservationsNormaliseBySize) {
  RateEstimator est(1);
  est.observe(50.0, 5000.0);  // 100 ms/KB.
  EXPECT_EQ(est.sample_count(), 1u);
  EXPECT_DOUBLE_EQ(est.estimate(kPrior).mean_ms_per_kb, 100.0);
}

TEST(RateEstimator, IgnoresNonPositiveSizes) {
  RateEstimator est(1);
  est.observe(0.0, 100.0);
  est.observe(-5.0, 100.0);
  EXPECT_EQ(est.sample_count(), 0u);
}

TEST(RateEstimator, BlendsTowardPriorWhileSampleIsSmall) {
  RateEstimator est(4);
  est.observe(1.0, 95.0);
  est.observe(1.0, 105.0);  // Measured mean 100, halfway to min_samples.
  const LinkParams p = est.estimate(kPrior);
  EXPECT_DOUBLE_EQ(p.mean_ms_per_kb, 0.5 * 100.0 + 0.5 * 75.0);
}

TEST(RateEstimator, ConvergesToTrueParameters) {
  Rng rng(9);
  const LinkModel truth(LinkParams{90.0, 15.0});
  RateEstimator est;
  for (int i = 0; i < 20000; ++i) {
    const double duration = truth.sample_send_time(rng, 50.0);
    est.observe(50.0, duration);
  }
  const LinkParams p = est.estimate(kPrior);
  EXPECT_NEAR(p.mean_ms_per_kb, 90.0, 0.5);
  EXPECT_NEAR(p.stddev_ms_per_kb, 15.0, 0.5);
}

TEST(RateEstimator, FullWeightAfterMinSamples) {
  RateEstimator est(2);
  est.observe(1.0, 100.0);
  est.observe(1.0, 100.0);
  est.observe(1.0, 100.0);
  EXPECT_DOUBLE_EQ(est.estimate(kPrior).mean_ms_per_kb, 100.0);
}

}  // namespace
}  // namespace bdps
