// FlatIdSet: the simulator's duplicate-arrival filter.
//
// Contract: insert returns true exactly once per id (std::set semantics),
// across growth and adversarially colliding keys.
#include <gtest/gtest.h>

#include <set>

#include "common/flat_set.h"
#include "common/random.h"

namespace bdps {
namespace {

TEST(FlatIdSet, InsertReportsNovelty) {
  FlatIdSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.insert(42));
  EXPECT_FALSE(set.insert(42));
  EXPECT_TRUE(set.insert(0));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(42));
  EXPECT_TRUE(set.contains(0));
  EXPECT_FALSE(set.contains(7));
}

TEST(FlatIdSet, SurvivesGrowthWithSequentialIds) {
  FlatIdSet set;
  for (std::int64_t id = 0; id < 10000; ++id) {
    EXPECT_TRUE(set.insert(id));
  }
  EXPECT_EQ(set.size(), 10000u);
  for (std::int64_t id = 0; id < 10000; ++id) {
    EXPECT_FALSE(set.insert(id)) << id;
  }
}

TEST(FlatIdSet, MatchesStdSetOnRandomStreams) {
  Rng rng(99);
  FlatIdSet flat;
  std::set<std::int64_t> reference;
  for (int op = 0; op < 20000; ++op) {
    // Small key range on purpose: lots of duplicates.
    const auto id = static_cast<std::int64_t>(rng.uniform_index(4096));
    EXPECT_EQ(flat.insert(id), reference.insert(id).second);
  }
  EXPECT_EQ(flat.size(), reference.size());
  flat.clear();
  EXPECT_TRUE(flat.empty());
  EXPECT_TRUE(flat.insert(1));
}

}  // namespace
}  // namespace bdps
