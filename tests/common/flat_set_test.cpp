// FlatIdSet: the simulator's duplicate-arrival filter.
//
// Contract: insert returns true exactly once per id (std::set semantics),
// across growth and adversarially colliding keys.
#include <gtest/gtest.h>

#include <set>

#include "common/flat_set.h"
#include "common/random.h"

namespace bdps {
namespace {

TEST(FlatIdSet, InsertReportsNovelty) {
  FlatIdSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.insert(42));
  EXPECT_FALSE(set.insert(42));
  EXPECT_TRUE(set.insert(0));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(42));
  EXPECT_TRUE(set.contains(0));
  EXPECT_FALSE(set.contains(7));
}

TEST(FlatIdSet, SurvivesGrowthWithSequentialIds) {
  FlatIdSet set;
  for (std::int64_t id = 0; id < 10000; ++id) {
    EXPECT_TRUE(set.insert(id));
  }
  EXPECT_EQ(set.size(), 10000u);
  for (std::int64_t id = 0; id < 10000; ++id) {
    EXPECT_FALSE(set.insert(id)) << id;
  }
}

TEST(FlatIdSet, MatchesStdSetOnRandomStreams) {
  Rng rng(99);
  FlatIdSet flat;
  std::set<std::int64_t> reference;
  for (int op = 0; op < 20000; ++op) {
    // Small key range on purpose: lots of duplicates.
    const auto id = static_cast<std::int64_t>(rng.uniform_index(4096));
    EXPECT_EQ(flat.insert(id), reference.insert(id).second);
  }
  EXPECT_EQ(flat.size(), reference.size());
  flat.clear();
  EXPECT_TRUE(flat.empty());
  EXPECT_TRUE(flat.insert(1));
}

TEST(FlatIdSet, EraseReportsPresenceAndShrinks) {
  FlatIdSet set;
  EXPECT_FALSE(set.erase(7));  // Empty table.
  set.insert(7);
  set.insert(8);
  EXPECT_TRUE(set.erase(7));
  EXPECT_FALSE(set.erase(7));
  EXPECT_FALSE(set.contains(7));
  EXPECT_TRUE(set.contains(8));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.insert(7));  // Slot is reusable after erase.
}

TEST(FlatIdSet, MatchesStdSetUnderInsertEraseChurn) {
  Rng rng(1234);
  FlatIdSet flat;
  std::set<std::int64_t> reference;
  for (int op = 0; op < 50000; ++op) {
    // Key range narrow enough that probe clusters form and backward-shift
    // deletion has to re-slot neighbours across wrap-around.
    const auto id = static_cast<std::int64_t>(rng.uniform_index(512));
    if (rng.uniform_index(3) == 0) {
      EXPECT_EQ(flat.erase(id), reference.erase(id) > 0) << "op " << op;
    } else {
      EXPECT_EQ(flat.insert(id), reference.insert(id).second) << "op " << op;
    }
    ASSERT_EQ(flat.size(), reference.size()) << "op " << op;
  }
  for (std::int64_t id = 0; id < 512; ++id) {
    EXPECT_EQ(flat.contains(id), reference.count(id) > 0) << id;
  }
}

}  // namespace
}  // namespace bdps
