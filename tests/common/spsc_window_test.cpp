// SpscQueue + WindowBarrier: the primitives under the sharded engine.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/spsc_queue.h"
#include "common/window_barrier.h"

namespace bdps {
namespace {

TEST(SpscQueue, FifoSingleThread) {
  SpscQueue<int> queue;
  EXPECT_TRUE(queue.empty());
  for (int i = 0; i < 100; ++i) queue.push(i);
  EXPECT_FALSE(queue.empty());
  int value = -1;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(queue.pop(value));
    EXPECT_EQ(value, i);
  }
  EXPECT_FALSE(queue.pop(value));
  EXPECT_TRUE(queue.empty());
}

TEST(SpscQueue, MoveOnlyPayloadAndDrain) {
  SpscQueue<std::unique_ptr<int>> queue;
  for (int i = 0; i < 10; ++i) queue.push(std::make_unique<int>(i));
  std::vector<std::unique_ptr<int>> out;
  queue.drain(out);
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(*out[i], i);
}

TEST(SpscQueue, ProducerConsumerThreads) {
  SpscQueue<std::uint64_t> queue;
  constexpr std::uint64_t kCount = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) queue.push(i);
  });
  std::uint64_t expected = 0;
  std::uint64_t value = 0;
  while (expected < kCount) {
    if (queue.pop(value)) {
      ASSERT_EQ(value, expected);  // FIFO, nothing lost or reordered.
      ++expected;
    }
  }
  producer.join();
  EXPECT_FALSE(queue.pop(value));
}

TEST(WindowBarrier, LockstepRounds) {
  constexpr std::size_t kThreads = 4;
  constexpr int kRounds = 500;
  WindowBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::vector<int> observed(kThreads, 0);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        // Between the two barriers every increment of this round is
        // visible and none of the next round's.
        observed[t] = counter.load();
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(observed[t], static_cast<int>(kThreads) * kRounds);
  }
}

}  // namespace
}  // namespace bdps
