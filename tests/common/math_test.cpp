#include "common/math.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace bdps {
namespace {

TEST(NormalCdf, StandardValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145705, 1e-10);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(-3.0), 0.0013498980316300933, 1e-10);
}

TEST(NormalCdf, Symmetry) {
  for (double z = 0.0; z <= 6.0; z += 0.25) {
    EXPECT_NEAR(normal_cdf(z) + normal_cdf(-z), 1.0, 1e-12) << "z=" << z;
  }
}

TEST(NormalCdf, ParameterizedFormMatchesStandardised) {
  EXPECT_NEAR(normal_cdf(80.0, 75.0, 20.0), normal_cdf(0.25), 1e-12);
  EXPECT_NEAR(normal_cdf(0.0, 75.0, 20.0), normal_cdf(-3.75), 1e-12);
}

TEST(NormalCdf, DegenerateDistributionIsStep) {
  EXPECT_EQ(normal_cdf(1.0, 2.0, 0.0), 0.0);
  EXPECT_EQ(normal_cdf(2.0, 2.0, 0.0), 1.0);
  EXPECT_EQ(normal_cdf(3.0, 2.0, 0.0), 1.0);
}

TEST(NormalCdf, MonotoneNondecreasing) {
  double previous = 0.0;
  for (double z = -8.0; z <= 8.0; z += 0.01) {
    const double value = normal_cdf(z);
    ASSERT_GE(value, previous);
    previous = value;
  }
}

TEST(NormalPdf, PeakAndSymmetry) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
  for (double z = 0.0; z <= 5.0; z += 0.5) {
    EXPECT_NEAR(normal_pdf(z), normal_pdf(-z), 1e-15);
  }
}

class QuantileRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(QuantileRoundTrip, CdfOfQuantileIsIdentity) {
  const double p = GetParam();
  EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-8) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(SweepP, QuantileRoundTrip,
                         ::testing::Values(1e-6, 1e-4, 0.01, 0.0005, 0.025,
                                           0.1, 0.25, 0.5, 0.75, 0.9, 0.975,
                                           0.99, 0.9999, 1.0 - 1e-6));

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-7);
  EXPECT_NEAR(normal_quantile(0.0013498980316300933), -3.0, 1e-7);
}

TEST(NormalQuantile, ExtremesAreInfinite) {
  EXPECT_EQ(normal_quantile(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(normal_quantile(1.0), std::numeric_limits<double>::infinity());
}

TEST(AlmostEqual, RelativeAndAbsolute) {
  EXPECT_TRUE(almost_equal(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(almost_equal(0.0, 1e-13));
  EXPECT_FALSE(almost_equal(1.0, 1.001));
  EXPECT_TRUE(almost_equal(1e12, 1e12 + 1.0));
  EXPECT_FALSE(almost_equal(1.0, -1.0));
}

}  // namespace
}  // namespace bdps
