#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace bdps {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitStreamsAreIndependentOfParentUsage) {
  // A child stream must not change if the parent draws more numbers later.
  Rng parent1(7);
  Rng child1 = parent1.split();
  Rng parent2(7);
  Rng child2 = parent2.split();
  (void)parent2.next_u64();  // Extra parent draw after the split.
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child1.next_u64(), child2.next_u64());
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(50.0, 100.0);
    ASSERT_GE(u, 50.0);
    ASSERT_LT(u, 100.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(0.0, 10.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, UniformIndexCoversAllValuesWithoutBias) {
  Rng rng(6);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) {
    const auto idx = rng.uniform_index(7);
    ASSERT_LT(idx, 7u);
    ++counts[idx];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 7, 400);  // ~4 sigma for a binomial(n, 1/7).
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(8);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(75.0, 20.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 75.0, 0.2);
  EXPECT_NEAR(var, 400.0, 6.0);
}

TEST(Rng, TruncatedNormalNeverBelowFloor) {
  Rng rng(9);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_GE(rng.truncated_normal(10.0, 20.0, 0.0), 0.0);
  }
}

TEST(Rng, TruncatedNormalFarTailStillSamples) {
  // Truncation 5 sigma above the mean: rejection alone would nearly always
  // fail; the analytic fallback must still return valid draws.
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.truncated_normal(0.0, 1.0, 5.0);
    ASSERT_GE(x, 5.0);
    ASSERT_LT(x, 9.0);  // Values this far out are astronomically unlikely.
  }
}

TEST(Rng, TruncatedNormalMatchesNormalWhenTruncationIrrelevant) {
  // With the floor 10 sigma below the mean the sampler should behave like a
  // plain normal.
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.truncated_normal(75.0, 2.0, 0.0);
  EXPECT_NEAR(sum / n, 75.0, 0.05);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(12);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(6000.0);
  EXPECT_NEAR(sum / n, 6000.0, 60.0);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(13);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) ASSERT_EQ(sorted[i], i);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng rng(14);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  int fixed = 0;
  for (int i = 0; i < 100; ++i) fixed += (v[i] == i);
  EXPECT_LT(fixed, 15);
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  // Reference values from the public-domain splitmix64 implementation.
  std::uint64_t check = 0;
  EXPECT_EQ(splitmix64(check), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace bdps
