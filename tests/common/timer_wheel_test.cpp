#include "common/timer_wheel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/random.h"

namespace bdps {
namespace {

using Wheel = TimerWheel<int>;
using Tick = Wheel::Tick;

struct Fired {
  Tick deadline = 0;
  int payload = 0;
};

/// Drives advance() and records every firing.
std::vector<Fired> advance_to(Wheel& wheel, Tick to) {
  std::vector<Fired> fired;
  wheel.advance(to, [&](Tick deadline, int payload) {
    fired.push_back(Fired{deadline, payload});
  });
  return fired;
}

TEST(TimerWheel, FiresAcrossLevelBoundariesAtExactTicks) {
  Wheel wheel;
  // One timer on each side of every wheel-level boundary.
  const std::vector<Tick> deadlines = {1,    63,   64,   65,     4095,
                                       4096, 4097, 262143, 262144, 262145};
  for (std::size_t i = 0; i < deadlines.size(); ++i) {
    wheel.schedule(deadlines[i], static_cast<int>(i));
  }
  EXPECT_EQ(wheel.pending(), deadlines.size());
  for (std::size_t i = 0; i < deadlines.size(); ++i) {
    // Nothing may fire before the deadline...
    EXPECT_TRUE(advance_to(wheel, deadlines[i] - 1).empty())
        << "early fire before tick " << deadlines[i];
    // ...and the timer fires exactly on it, reporting its true deadline.
    const auto fired = advance_to(wheel, deadlines[i]);
    ASSERT_EQ(fired.size(), 1u) << "at tick " << deadlines[i];
    EXPECT_EQ(fired[0].deadline, deadlines[i]);
    EXPECT_EQ(fired[0].payload, static_cast<int>(i));
  }
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, PastDeadlinesFireOnNextAdvanceWithoutProgress) {
  Wheel wheel;
  advance_to(wheel, 100);
  wheel.schedule(5, 1);    // Long past.
  wheel.schedule(100, 2);  // Exactly now.
  ASSERT_EQ(wheel.next_due(), std::optional<Tick>(100));
  const auto fired = advance_to(wheel, 100);  // No tick progress at all.
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].deadline, 5u);
  EXPECT_EQ(fired[1].deadline, 100u);
  EXPECT_EQ(wheel.current(), 100u);
}

TEST(TimerWheel, FarFutureBeyondSpanFiresExactlyOnce) {
  Wheel wheel;
  const Tick far = (Tick(1) << 40) + 7;  // Past the 2^36-tick span.
  wheel.schedule(far, 42);
  EXPECT_TRUE(advance_to(wheel, far - 1).empty());
  const auto fired = advance_to(wheel, far);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].deadline, far);
  EXPECT_EQ(fired[0].payload, 42);
  EXPECT_TRUE(advance_to(wheel, far + (Tick(1) << 41)).empty());
}

TEST(TimerWheel, WrapAroundAtFullSpanBoundary) {
  // Start just below the point where every wheel wraps simultaneously.
  Wheel wheel(Wheel::kSpan - 10);
  wheel.schedule(Wheel::kSpan - 2, 1);
  wheel.schedule(Wheel::kSpan, 2);      // The all-levels cascade tick.
  wheel.schedule(Wheel::kSpan + 5, 3);
  auto fired = advance_to(wheel, Wheel::kSpan + 5);
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0].payload, 1);
  EXPECT_EQ(fired[1].payload, 2);
  EXPECT_EQ(fired[2].payload, 3);
}

TEST(TimerWheel, CancelEveryLevelAndStaleIds) {
  Wheel wheel;
  const auto due = wheel.schedule(0, 0);       // Due list (deadline <= now).
  const auto l0 = wheel.schedule(10, 1);       // Level 0.
  const auto l1 = wheel.schedule(1000, 2);     // Level 1.
  const auto l3 = wheel.schedule(1 << 20, 3);  // Level 3.
  const auto keep = wheel.schedule(20, 4);
  EXPECT_TRUE(wheel.cancel(due));
  EXPECT_TRUE(wheel.cancel(l0));
  EXPECT_TRUE(wheel.cancel(l1));
  EXPECT_TRUE(wheel.cancel(l3));
  EXPECT_FALSE(wheel.cancel(l0)) << "double cancel must fail";
  EXPECT_EQ(wheel.pending(), 1u);

  const auto fired = advance_to(wheel, 1 << 21);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].payload, 4);
  EXPECT_FALSE(wheel.cancel(keep)) << "cancel after fire must fail";

  // Node reuse must not resurrect stale ids: the new timer likely reuses
  // keep's pool slot, but its generation differs.
  const auto fresh = wheel.schedule((1 << 21) + 5, 5);
  EXPECT_FALSE(wheel.cancel(keep));
  EXPECT_EQ(wheel.pending(), 1u);
  EXPECT_TRUE(wheel.cancel(fresh));
}

TEST(TimerWheel, NextDueIsAConservativeConvergingBound) {
  Wheel wheel;
  EXPECT_FALSE(wheel.next_due().has_value());
  const Tick deadline = 3'000'000'000ull;  // Deep in the upper wheels.
  wheel.schedule(deadline, 7);
  // Following next_due() must never pass the true deadline and must reach
  // it within one hop per level (each hop only cascades closer).
  int hops = 0;
  std::vector<Fired> fired;
  while (fired.empty()) {
    const auto bound = wheel.next_due();
    ASSERT_TRUE(bound.has_value());
    ASSERT_LE(*bound, deadline);
    ASSERT_GT(*bound, wheel.current());
    fired = advance_to(wheel, *bound);
    ASSERT_LE(++hops, Wheel::kLevels + 1);
  }
  EXPECT_EQ(fired[0].deadline, deadline);
}

TEST(TimerWheel, CallbacksMayScheduleAndCancelReentrantly) {
  Wheel wheel;
  std::vector<Tick> fired;
  // A chain: each firing schedules the next, 1 tick later, five times.
  struct Chain {
    Wheel* wheel;
    std::vector<Tick>* fired;
    void fire(Tick deadline, int remaining) {
      fired->push_back(deadline);
      if (remaining > 0) {
        wheel->schedule(deadline + 1, remaining - 1);
      }
    }
  } chain{&wheel, &fired};
  wheel.schedule(10, 4);
  wheel.advance(100, [&](Tick d, int p) { chain.fire(d, p); });
  EXPECT_EQ(fired, (std::vector<Tick>{10, 11, 12, 13, 14}));
  EXPECT_EQ(wheel.pending(), 0u);
}

// ---- Model-based fuzz -------------------------------------------------------
//
// The reference model is a sorted multimap keyed by each timer's *effective*
// tick — max(deadline, tick at schedule time) — which is exactly when the
// wheel guarantees the firing.  Both sides run an identical random op
// stream; after every advance the fired sets must match per effective tick
// (order within one tick is unspecified) and fire order must be
// nondecreasing in effective tick.

struct ModelTimer {
  int payload = 0;
  Tick deadline = 0;  // As scheduled (reported by fire).
  Tick key = 0;       // Effective tick.
};

TEST(TimerWheel, FuzzAgainstSortedMultimapModel) {
  for (std::uint64_t seed : {11ull, 222ull, 3333ull}) {
    Rng rng(seed);
    Wheel wheel;
    std::map<int, Wheel::TimerId> live_ids;   // payload -> id
    std::map<int, ModelTimer> model;          // payload -> timer
    int next_payload = 0;

    for (int op = 0; op < 4000; ++op) {
      const std::uint64_t choice = rng.uniform_index(10);
      if (choice < 5) {
        // Schedule with a delta spanning every level, past deadlines and
        // beyond-span futures included.
        static constexpr Tick kDeltas[] = {0,    1,     63,     64,
                                           65,   4'095, 4'096,  100'000,
                                           (Tick(1) << 37), (Tick(1) << 41)};
        const Tick base = kDeltas[rng.uniform_index(10)];
        const Tick jitter = rng.uniform_index(50);
        Tick at = wheel.current() + base + jitter;
        if (rng.uniform_index(8) == 0) {
          // Past or exactly-now deadline.
          const Tick back = rng.uniform_index(200);
          at = wheel.current() > back ? wheel.current() - back : 0;
        }
        const int payload = next_payload++;
        live_ids[payload] = wheel.schedule(at, payload);
        model[payload] =
            ModelTimer{payload, at, std::max(at, wheel.current())};
      } else if (choice < 7) {
        if (live_ids.empty()) continue;
        // Cancel a random live timer.
        auto it = live_ids.begin();
        std::advance(it,
                     static_cast<long>(rng.uniform_index(live_ids.size())));
        EXPECT_TRUE(wheel.cancel(it->second));
        EXPECT_FALSE(wheel.cancel(it->second));
        model.erase(it->first);
        live_ids.erase(it);
      } else {
        // Advance by a delta that exercises slot walks, level crossings
        // and big skips.
        static constexpr Tick kJumps[] = {0, 1, 7, 64, 1000, 4096, 300'000,
                                          (Tick(1) << 36), 3, 17};
        const Tick to = wheel.current() + kJumps[rng.uniform_index(10)] +
                        rng.uniform_index(100);
        const auto fired = advance_to(wheel, to);

        // Expected: everything whose effective key is <= to.
        std::map<Tick, std::multiset<int>> expected;
        for (const auto& [payload, timer] : model) {
          if (timer.key <= to) expected[timer.key].insert(payload);
        }
        std::map<Tick, std::multiset<int>> got;
        Tick last_key = 0;
        for (const Fired& f : fired) {
          auto it = model.find(f.payload);
          ASSERT_NE(it, model.end()) << "fired unknown/cancelled timer";
          EXPECT_EQ(f.deadline, it->second.deadline);
          EXPECT_GE(it->second.key, last_key)
              << "fire order must be nondecreasing in effective tick";
          last_key = it->second.key;
          got[it->second.key].insert(f.payload);
          live_ids.erase(f.payload);
          model.erase(it);
        }
        EXPECT_EQ(got, expected) << "advance to " << to;
        EXPECT_EQ(wheel.current(), to);
        EXPECT_EQ(wheel.pending(), model.size());
      }
    }
    // Drain everything left and check it all comes out.
    const auto fired = advance_to(wheel, ~Tick(0));
    EXPECT_EQ(fired.size(), model.size());
    EXPECT_EQ(wheel.pending(), 0u);
  }
}

// Mass-cancel during advance: the live runtime's link-down teardown fires
// one timer (the down notification) and, from inside the callback, cancels
// a batch of still-pending tx timers while the wheel is mid-cascade.  Only
// timers strictly beyond the advance target are torn down, so the expected
// fire set is unambiguous: exactly the pre-advance population with
// effective tick <= to, regardless of when the cancels land.
TEST(TimerWheel, FuzzMassCancelDuringAdvance) {
  for (std::uint64_t seed : {7ull, 77ull, 777ull}) {
    Rng rng(seed);
    Wheel wheel;
    std::map<int, Wheel::TimerId> live;  // payload -> id
    std::map<int, ModelTimer> model;     // payload -> timer
    int next_payload = 0;
    const auto schedule_at = [&](Tick at) {
      const int payload = next_payload++;
      live[payload] = wheel.schedule(at, payload);
      model[payload] = ModelTimer{payload, at, std::max(at, wheel.current())};
    };
    // Dense population spread across every wheel level.
    for (int i = 0; i < 1500; ++i) {
      schedule_at(rng.uniform_index(Tick(1) << 22));
    }

    for (int round = 0; round < 40 && !model.empty(); ++round) {
      const Tick to = wheel.current() + 1 + rng.uniform_index(Tick(1) << 17);
      std::map<Tick, std::multiset<int>> expected;
      for (const auto& [payload, timer] : model) {
        if (timer.key <= to) expected[timer.key].insert(payload);
      }

      std::vector<Fired> fired;
      wheel.advance(to, [&](Tick deadline, int payload) {
        fired.push_back(Fired{deadline, payload});
        if (rng.uniform_index(4) == 0) {
          // Tear down up to 64 timers that are all due after `to`.
          int cancelled = 0;
          for (auto it = live.begin(); it != live.end() && cancelled < 64;) {
            const auto m = model.find(it->first);
            if (m != model.end() && m->second.key > to) {
              EXPECT_TRUE(wheel.cancel(it->second));
              model.erase(m);
              it = live.erase(it);
              ++cancelled;
            } else {
              ++it;
            }
          }
        }
        if (rng.uniform_index(8) == 0) {
          // Re-arm replacements past the advance target (link back up).
          schedule_at(to + 1 + rng.uniform_index(100'000));
        }
      });

      std::map<Tick, std::multiset<int>> got;
      Tick last_key = 0;
      for (const Fired& f : fired) {
        const auto it = model.find(f.payload);
        ASSERT_NE(it, model.end()) << "fired unknown/cancelled timer";
        EXPECT_EQ(f.deadline, it->second.deadline);
        EXPECT_GE(it->second.key, last_key);
        last_key = it->second.key;
        got[it->second.key].insert(f.payload);
        live.erase(f.payload);
        model.erase(it);
      }
      EXPECT_EQ(got, expected) << "advance to " << to;
      EXPECT_EQ(wheel.pending(), model.size());
    }

    // Whatever survived the churn still drains exactly once.
    const auto rest = advance_to(wheel, ~Tick(0));
    EXPECT_EQ(rest.size(), model.size());
    EXPECT_EQ(wheel.pending(), 0u);
  }
}

}  // namespace
}  // namespace bdps
