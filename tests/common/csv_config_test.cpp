#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/config.h"
#include "common/csv.h"

namespace bdps {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "bdps_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvWriterTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"a", "b"});
    ASSERT_TRUE(csv.ok());
    csv.row({"1", "2"});
    csv.row_values(3.5, "x");
  }
  EXPECT_EQ(read_file(path_), "a,b\n1,2\n3.5,x\n");
}

TEST_F(CsvWriterTest, EscapesSeparatorsAndQuotes) {
  {
    CsvWriter csv(path_, {"v"});
    csv.row({"a,b"});
    csv.row({"say \"hi\""});
    csv.row({"line\nbreak"});
  }
  EXPECT_EQ(read_file(path_),
            "v\n\"a,b\"\n\"say \"\"hi\"\"\"\n\"line\nbreak\"\n");
}

TEST(KeyValueConfig, ParsesArgs) {
  const char* argv[] = {"prog", "rate=12.5", "out=x.csv", "positional",
                        "flag=true"};
  const auto config = KeyValueConfig::from_args(5, argv);
  EXPECT_DOUBLE_EQ(config.get_double("rate", 0.0), 12.5);
  EXPECT_EQ(config.get_string("out", ""), "x.csv");
  EXPECT_TRUE(config.get_bool("flag", false));
  ASSERT_EQ(config.positional().size(), 1u);
  EXPECT_EQ(config.positional()[0], "positional");
}

TEST(KeyValueConfig, FallbacksWhenMissingOrMalformed) {
  const char* argv[] = {"prog", "n=abc"};
  const auto config = KeyValueConfig::from_args(2, argv);
  EXPECT_EQ(config.get_int("n", 7), 7);
  EXPECT_EQ(config.get_int("missing", 9), 9);
  EXPECT_DOUBLE_EQ(config.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(config.has("missing"));
  EXPECT_TRUE(config.has("n"));
}

TEST(KeyValueConfig, BoolSpellings) {
  const char* argv[] = {"prog", "a=1", "b=off", "c=yes", "d=maybe"};
  const auto config = KeyValueConfig::from_args(5, argv);
  EXPECT_TRUE(config.get_bool("a", false));
  EXPECT_FALSE(config.get_bool("b", true));
  EXPECT_TRUE(config.get_bool("c", false));
  EXPECT_TRUE(config.get_bool("d", true));  // Unparseable -> fallback.
}

TEST(KeyValueConfig, DoubleLists) {
  const char* argv[] = {"prog", "rates=1,3.5,15"};
  const auto config = KeyValueConfig::from_args(2, argv);
  const auto rates = config.get_double_list("rates", {});
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_DOUBLE_EQ(rates[0], 1.0);
  EXPECT_DOUBLE_EQ(rates[1], 3.5);
  EXPECT_DOUBLE_EQ(rates[2], 15.0);
  const auto fallback = config.get_double_list("missing", {2.0});
  ASSERT_EQ(fallback.size(), 1u);
}

TEST(KeyValueConfig, FromTextWithComments) {
  const auto config = KeyValueConfig::from_text(
      "# comment line\nrate = 10 # trailing\n\nname = hello\n");
  EXPECT_DOUBLE_EQ(config.get_double("rate", 0.0), 10.0);
  EXPECT_EQ(config.get_string("name", ""), "hello");
}

TEST(KeyValueConfig, SetOverrides) {
  KeyValueConfig config;
  config.set("k", "1");
  config.set("k", "2");
  EXPECT_EQ(config.get_int("k", 0), 2);
}

}  // namespace
}  // namespace bdps
