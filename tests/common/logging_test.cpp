#include "common/logging.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace bdps {
namespace {

// The logger writes to stderr; these tests exercise level gating and
// thread safety rather than capturing output.

class LoggingTest : public ::testing::Test {
 protected:
  LogLevel saved_ = Logger::instance().level();
  void TearDown() override { Logger::instance().set_level(saved_); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  Logger::instance().set_level(LogLevel::kDebug);
  EXPECT_EQ(Logger::instance().level(), LogLevel::kDebug);
  Logger::instance().set_level(LogLevel::kError);
  EXPECT_EQ(Logger::instance().level(), LogLevel::kError);
}

TEST_F(LoggingTest, MacroShortCircuitsBelowLevel) {
  Logger::instance().set_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "payload";
  };
  BDPS_DEBUG << expensive();  // Must not evaluate the argument.
  EXPECT_EQ(evaluations, 0);
  BDPS_ERROR << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::instance().set_level(LogLevel::kOff);
  int evaluations = 0;
  BDPS_ERROR << [&] {
    ++evaluations;
    return "x";
  }();
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, ConcurrentLoggingDoesNotCrash) {
  Logger::instance().set_level(LogLevel::kOff);  // Gate at write time.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 200; ++i) {
        Logger::instance().write(LogLevel::kInfo,
                                 "thread " + std::to_string(t));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  SUCCEED();
}

}  // namespace
}  // namespace bdps
