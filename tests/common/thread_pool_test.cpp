#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace bdps {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ParallelForTouchesEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(257);
  pool.parallel_for(touched.size(), [&](std::size_t i) { ++touched[i]; });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyIsNoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ExceptionsPropagateThroughParallelFor) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::logic_error("x");
                                 }),
               std::logic_error);
}

TEST(ThreadPool, ManySmallTasksAllComplete) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 499500);
}

TEST(ThreadPool, DestructionDrainsOutstandingWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&ran] { ++ran; });
    }
  }  // Destructor must run/join everything without losing tasks.
  EXPECT_EQ(ran.load(), 50);
}

}  // namespace
}  // namespace bdps
