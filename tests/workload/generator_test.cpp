#include "workload/generator.h"

#include <gtest/gtest.h>

namespace bdps {
namespace {

WorkloadConfig quick_workload(ScenarioKind scenario) {
  WorkloadConfig config;
  config.scenario = scenario;
  config.publishing_rate_per_min = 10.0;
  config.duration = minutes(30.0);
  return config;
}

TEST(GenerateMessages, CountApproximatesRate) {
  Rng rng(1);
  const auto messages =
      generate_messages(rng, quick_workload(ScenarioKind::kPsd), 4);
  // Expected 4 * 10 * 30 = 1200 (Poisson).
  EXPECT_GT(messages.size(), 1000u);
  EXPECT_LT(messages.size(), 1400u);
}

TEST(GenerateMessages, SortedAndDenselyIdentified) {
  Rng rng(2);
  const auto messages =
      generate_messages(rng, quick_workload(ScenarioKind::kPsd), 4);
  for (std::size_t i = 0; i < messages.size(); ++i) {
    EXPECT_EQ(messages[i]->id(), static_cast<MessageId>(i));
    if (i > 0) {
      EXPECT_GE(messages[i]->publish_time(), messages[i - 1]->publish_time());
    }
    EXPECT_LT(messages[i]->publish_time(), minutes(30.0));
    EXPECT_GE(messages[i]->publish_time(), 0.0);
  }
}

TEST(GenerateMessages, HeadsFollowTheConfiguredAttributeSpace) {
  Rng rng(3);
  const auto messages =
      generate_messages(rng, quick_workload(ScenarioKind::kPsd), 2);
  for (const auto& m : messages) {
    ASSERT_EQ(m->head().size(), 2u);
    EXPECT_EQ(m->head()[0].name, "A1");
    EXPECT_EQ(m->head()[1].name, "A2");
    for (const auto& attr : m->head()) {
      EXPECT_GE(attr.value.as_double(), 0.0);
      EXPECT_LT(attr.value.as_double(), 10.0);
    }
    EXPECT_DOUBLE_EQ(m->size_kb(), 50.0);
  }
}

TEST(GenerateMessages, PsdDeadlinesInConfiguredRange) {
  Rng rng(4);
  const auto messages =
      generate_messages(rng, quick_workload(ScenarioKind::kPsd), 2);
  for (const auto& m : messages) {
    ASSERT_TRUE(m->has_allowed_delay());
    EXPECT_GE(m->allowed_delay(), seconds(10.0));
    EXPECT_LT(m->allowed_delay(), seconds(30.0));
  }
}

TEST(GenerateMessages, SsdMessagesCarryNoDeadline) {
  Rng rng(5);
  const auto messages =
      generate_messages(rng, quick_workload(ScenarioKind::kSsd), 2);
  for (const auto& m : messages) {
    EXPECT_FALSE(m->has_allowed_delay());
  }
}

TEST(GenerateMessages, PublishersAllContribute) {
  Rng rng(6);
  const auto messages =
      generate_messages(rng, quick_workload(ScenarioKind::kPsd), 4);
  std::vector<int> per_publisher(4, 0);
  for (const auto& m : messages) {
    ASSERT_GE(m->publisher(), 0);
    ASSERT_LT(m->publisher(), 4);
    ++per_publisher[m->publisher()];
  }
  for (const int count : per_publisher) EXPECT_GT(count, 200);
}

TEST(GenerateMessages, DeterministicIntervalsAreExact) {
  Rng rng(7);
  WorkloadConfig config = quick_workload(ScenarioKind::kPsd);
  config.poisson_arrivals = false;
  const auto messages = generate_messages(rng, config, 1);
  EXPECT_EQ(messages.size(), 300u);  // 10/min * 30 min.
  // Gaps are exactly 6 s after the random phase.
  for (std::size_t i = 2; i < messages.size(); ++i) {
    EXPECT_NEAR(messages[i]->publish_time() - messages[i - 1]->publish_time(),
                6000.0, 1e-9);
  }
}

TEST(GenerateSubscriptions, OnePerSubscriberWithPaperFilters) {
  Rng rng(8);
  Rng topo_rng(9);
  const Topology topo = build_paper_topology(topo_rng);
  const auto subs =
      generate_subscriptions(rng, quick_workload(ScenarioKind::kSsd), topo);
  ASSERT_EQ(subs.size(), 160u);
  for (std::size_t s = 0; s < subs.size(); ++s) {
    EXPECT_EQ(subs[s].subscriber, static_cast<SubscriberId>(s));
    EXPECT_EQ(subs[s].home, topo.subscriber_homes[s]);
    ASSERT_EQ(subs[s].filter.size(), 2u);
    for (const auto& p : subs[s].filter.predicates()) {
      EXPECT_EQ(p.op, Op::kLt);
    }
  }
}

TEST(GenerateSubscriptions, SsdTiersAssignPaperPrices) {
  Rng rng(10);
  Rng topo_rng(11);
  const Topology topo = build_paper_topology(topo_rng);
  const auto subs =
      generate_subscriptions(rng, quick_workload(ScenarioKind::kSsd), topo);
  int tier_counts[3] = {0, 0, 0};
  for (const auto& sub : subs) {
    if (sub.allowed_delay == seconds(10.0)) {
      EXPECT_DOUBLE_EQ(sub.price, 3.0);
      ++tier_counts[0];
    } else if (sub.allowed_delay == seconds(30.0)) {
      EXPECT_DOUBLE_EQ(sub.price, 2.0);
      ++tier_counts[1];
    } else {
      EXPECT_DOUBLE_EQ(sub.allowed_delay, seconds(60.0));
      EXPECT_DOUBLE_EQ(sub.price, 1.0);
      ++tier_counts[2];
    }
  }
  // All three tiers occur (uniform over 160 draws).
  EXPECT_GT(tier_counts[0], 20);
  EXPECT_GT(tier_counts[1], 20);
  EXPECT_GT(tier_counts[2], 20);
}

TEST(GenerateSubscriptions, PsdSubscribersAreUnbounded) {
  Rng rng(12);
  Rng topo_rng(13);
  const Topology topo = build_paper_topology(topo_rng);
  const auto subs =
      generate_subscriptions(rng, quick_workload(ScenarioKind::kPsd), topo);
  for (const auto& sub : subs) {
    EXPECT_EQ(sub.allowed_delay, kNoDeadline);
    EXPECT_DOUBLE_EQ(sub.price, 1.0);
  }
}

TEST(GenerateSubscriptions, AverageSelectivityNearQuarter) {
  // Monte-Carlo estimate of E[match] for the paper's workload: ~25%.
  Rng rng(14);
  Rng topo_rng(15);
  const Topology topo = build_paper_topology(topo_rng);
  WorkloadConfig config = quick_workload(ScenarioKind::kPsd);
  const auto subs = generate_subscriptions(rng, config, topo);
  const auto messages = generate_messages(rng, config, 4);
  std::size_t matched = 0;
  std::size_t total = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(messages.size(), 300);
       ++i) {
    for (const auto& sub : subs) {
      matched += sub.filter.matches(*messages[i]) ? 1 : 0;
      ++total;
    }
  }
  const double selectivity = static_cast<double>(matched) / total;
  EXPECT_GT(selectivity, 0.20);
  EXPECT_LT(selectivity, 0.30);
}

}  // namespace
}  // namespace bdps
