// Subscription churn (activation windows).
#include <gtest/gtest.h>

#include "experiment/paper.h"
#include "experiment/runner.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace bdps {
namespace {

TEST(Churn, DefaultSubscriptionIsAlwaysActive) {
  const Subscription sub;
  EXPECT_TRUE(sub.active_at(0.0));
  EXPECT_TRUE(sub.active_at(hours(100.0)));
}

TEST(Churn, WindowBoundariesAreHalfOpen) {
  Subscription sub;
  sub.active_from = 1000.0;
  sub.active_to = 2000.0;
  EXPECT_FALSE(sub.active_at(999.9));
  EXPECT_TRUE(sub.active_at(1000.0));
  EXPECT_TRUE(sub.active_at(1999.9));
  EXPECT_FALSE(sub.active_at(2000.0));
}

TEST(Churn, GeneratorAssignsWindowsCoveringTheConfiguredFraction) {
  Rng rng(1);
  Rng topo_rng(2);
  const Topology topo = build_paper_topology(topo_rng);
  WorkloadConfig config;
  config.scenario = ScenarioKind::kSsd;
  config.duration = hours(1.0);
  config.churn_fraction = 0.4;
  const auto subs = generate_subscriptions(rng, config, topo);
  for (const auto& sub : subs) {
    EXPECT_GE(sub.active_from, 0.0);
    EXPECT_LE(sub.active_to, config.duration + 1e-6);
    EXPECT_NEAR(sub.active_to - sub.active_from, 0.6 * config.duration,
                1e-6);
  }
}

TEST(Churn, ZeroChurnLeavesSubscriptionsUnbounded) {
  Rng rng(3);
  Rng topo_rng(4);
  const Topology topo = build_paper_topology(topo_rng);
  WorkloadConfig config;
  const auto subs = generate_subscriptions(rng, config, topo);
  for (const auto& sub : subs) {
    EXPECT_EQ(sub.active_from, -kNoDeadline);
    EXPECT_EQ(sub.active_to, kNoDeadline);
  }
}

TEST(Churn, InactiveSubscriberReceivesNothing) {
  // Line 0 - 1; one subscriber active only in [10 s, 20 s).
  Topology topo;
  topo.graph.resize(2);
  topo.graph.add_bidirectional(0, 1, LinkParams{10.0, 0.0});
  topo.publisher_edges = {0};
  topo.subscriber_homes = {1};
  Subscription sub;
  sub.subscriber = 0;
  sub.home = 1;
  sub.allowed_delay = seconds(60.0);
  sub.active_from = seconds(10.0);
  sub.active_to = seconds(20.0);
  const RoutingFabric fabric(topo, {sub});
  const auto scheduler = make_strategy(StrategyKind::kEb);
  Simulator sim(&topo, &topo.graph, &fabric, scheduler.get(),
                SimulatorOptions{}, Rng(1));
  // Publish before, inside and after the window.
  for (const double t : {0.0, 15000.0, 25000.0}) {
    sim.schedule_publish(std::make_shared<Message>(
        static_cast<MessageId>(t), 0, t, 50.0, std::vector<Attribute>{}));
  }
  sim.run();
  const Collector& c = sim.collector();
  EXPECT_EQ(c.total_interested(), 1u);
  EXPECT_EQ(c.deliveries(), 1u);
  // Only the injection receptions for inactive messages: no forwarding.
  EXPECT_EQ(c.receptions(), 3u + 1u);  // 3 injections + 1 forwarded copy.
}

TEST(Churn, ReducesOfferedLoadProportionally) {
  SimConfig steady = paper_base_config(ScenarioKind::kSsd, 8.0,
                                       StrategyKind::kEb, 19);
  steady.workload.duration = minutes(10.0);
  SimConfig churny = steady;
  churny.workload.churn_fraction = 0.5;
  const SimResult a = run_simulation(steady);
  const SimResult b = run_simulation(churny);
  // Half the subscription-time is gone: offered pairs drop to ~50%.
  const double ratio = static_cast<double>(b.total_interested) /
                       static_cast<double>(a.total_interested);
  EXPECT_GT(ratio, 0.35);
  EXPECT_LT(ratio, 0.65);
  // And so does traffic, since brokers stop forwarding to inactive subs.
  EXPECT_LT(b.receptions, a.receptions);
}

}  // namespace
}  // namespace bdps
