// Whole-run determinism, witnessed at full event granularity: two
// simulations from the same config must produce byte-identical traces, and
// different strategies genuinely different ones.
#include <gtest/gtest.h>

#include "experiment/paper.h"
#include "routing/fabric.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "workload/generator.h"

namespace bdps {
namespace {

MemoryTrace traced_run(StrategyKind strategy, std::uint64_t seed) {
  SimConfig config = paper_base_config(ScenarioKind::kSsd, 9.0, strategy,
                                       seed);
  config.workload.duration = minutes(6.0);

  Rng root(config.seed);
  Rng topo_rng = root.split();
  Rng workload_rng = root.split();
  Rng link_rng = root.split();

  const Topology topo = build_topology(topo_rng, config);
  const RoutingFabric fabric(
      topo, generate_subscriptions(workload_rng, config.workload, topo));
  const auto scheduler = make_strategy(strategy);
  SimulatorOptions options;
  options.purge = config.purge;

  Simulator sim(&topo, &topo.graph, &fabric, scheduler.get(), options,
                link_rng);
  MemoryTrace trace;
  sim.set_trace(&trace);
  for (auto& m : generate_messages(workload_rng, config.workload,
                                   topo.publisher_count())) {
    sim.schedule_publish(std::move(m));
  }
  sim.run();
  return trace;
}

bool traces_equal(const MemoryTrace& a, const MemoryTrace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const TraceEvent& x = a.events()[i];
    const TraceEvent& y = b.events()[i];
    if (x.time != y.time || x.kind != y.kind || x.message != y.message ||
        x.broker != y.broker || x.neighbor != y.neighbor ||
        x.subscriber != y.subscriber || x.valid != y.valid) {
      return false;
    }
  }
  return true;
}

TEST(TraceDeterminism, IdenticalConfigsProduceIdenticalEventStreams) {
  const MemoryTrace a = traced_run(StrategyKind::kEb, 5);
  const MemoryTrace b = traced_run(StrategyKind::kEb, 5);
  ASSERT_GT(a.size(), 1000u);
  EXPECT_TRUE(traces_equal(a, b));
}

TEST(TraceDeterminism, DifferentSeedsDiverge) {
  const MemoryTrace a = traced_run(StrategyKind::kEb, 5);
  const MemoryTrace b = traced_run(StrategyKind::kEb, 6);
  EXPECT_FALSE(traces_equal(a, b));
}

TEST(TraceDeterminism, DifferentStrategiesDiverge) {
  const MemoryTrace a = traced_run(StrategyKind::kEb, 5);
  const MemoryTrace b = traced_run(StrategyKind::kFifo, 5);
  // Same workload (same seed) -> identical publish prefix, but scheduling
  // decisions must differ somewhere under load.
  EXPECT_FALSE(traces_equal(a, b));
}

}  // namespace
}  // namespace bdps
