// Event tracing and the per-hop delay decomposition.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/simulator.h"
#include "trace/analysis.h"

namespace bdps {
namespace {

/// Same deterministic line rig as simulator_test (0 -100ms/KB- 1 - 2).
struct TraceRig {
  Topology topo;
  std::unique_ptr<RoutingFabric> fabric;
  std::unique_ptr<const Strategy> scheduler;
  SimulatorOptions options;

  explicit TraceRig(TimeMs deadline = seconds(60.0)) {
    topo.graph.resize(3);
    topo.graph.add_bidirectional(0, 1, LinkParams{100.0, 0.0});
    topo.graph.add_bidirectional(1, 2, LinkParams{100.0, 0.0});
    topo.publisher_edges = {0};
    topo.subscriber_homes = {2};
    Subscription sub;
    sub.subscriber = 0;
    sub.home = 2;
    sub.allowed_delay = deadline;
    fabric = std::make_unique<RoutingFabric>(topo,
                                             std::vector<Subscription>{sub});
    scheduler = make_strategy(StrategyKind::kFifo);
    options.processing_delay = 2.0;
  }

  Simulator make() {
    return Simulator(&topo, &topo.graph, fabric.get(), scheduler.get(),
                     options, Rng(1));
  }

  static std::shared_ptr<const Message> message(MessageId id, TimeMs when) {
    return std::make_shared<Message>(id, 0, when, 50.0,
                                     std::vector<Attribute>{});
  }
};

std::size_t count_kind(const MemoryTrace& trace, TraceEventKind kind) {
  std::size_t n = 0;
  for (const auto& e : trace.events()) n += (e.kind == kind) ? 1 : 0;
  return n;
}

TEST(Trace, RecordsEveryLifecycleStage) {
  TraceRig rig;
  MemoryTrace trace;
  Simulator sim = rig.make();
  sim.set_trace(&trace);
  sim.schedule_publish(TraceRig::message(0, 0.0));
  sim.run();

  EXPECT_EQ(count_kind(trace, TraceEventKind::kPublish), 1u);
  EXPECT_EQ(count_kind(trace, TraceEventKind::kArrival), 3u);
  EXPECT_EQ(count_kind(trace, TraceEventKind::kProcessed), 3u);
  EXPECT_EQ(count_kind(trace, TraceEventKind::kEnqueue), 2u);
  EXPECT_EQ(count_kind(trace, TraceEventKind::kSendStart), 2u);
  EXPECT_EQ(count_kind(trace, TraceEventKind::kSendEnd), 2u);
  EXPECT_EQ(count_kind(trace, TraceEventKind::kDeliver), 1u);
  EXPECT_EQ(count_kind(trace, TraceEventKind::kPurge), 0u);
}

TEST(Trace, EventsAreTimeOrdered) {
  TraceRig rig;
  MemoryTrace trace;
  Simulator sim = rig.make();
  sim.set_trace(&trace);
  for (MessageId i = 0; i < 5; ++i) {
    sim.schedule_publish(TraceRig::message(i, i * 1000.0));
  }
  sim.run();
  for (std::size_t i = 1; i < trace.size(); ++i) {
    ASSERT_GE(trace.events()[i].time, trace.events()[i - 1].time);
  }
}

TEST(TraceAnalysis, DecomposesQueueingAndTransmission) {
  TraceRig rig;
  MemoryTrace trace;
  Simulator sim = rig.make();
  sim.set_trace(&trace);
  // Two simultaneous messages: the second queues exactly one transmission
  // time (5000 ms) at broker 0.
  sim.schedule_publish(TraceRig::message(0, 0.0));
  sim.schedule_publish(TraceRig::message(1, 0.0));
  sim.run();

  const TraceAnalysis analysis = analyze_trace(trace);
  ASSERT_EQ(analysis.hops.size(), 4u);  // 2 messages x 2 hops.
  // All transmissions are exactly 5000 ms on the zero-variance links.
  EXPECT_DOUBLE_EQ(analysis.transmission.mean(), 5000.0);
  EXPECT_DOUBLE_EQ(analysis.transmission.min(), 5000.0);
  EXPECT_DOUBLE_EQ(analysis.transmission.max(), 5000.0);
  // Queueing: 0 for three hops, 5000 ms for message 1's first hop.
  EXPECT_DOUBLE_EQ(analysis.queueing.max(), 5000.0);
  EXPECT_DOUBLE_EQ(analysis.queueing.mean(), 1250.0);
  EXPECT_EQ(analysis.valid_deliveries, 2u);
  EXPECT_DOUBLE_EQ(analysis.valid_latency.min(), 10006.0);
  EXPECT_DOUBLE_EQ(analysis.valid_latency.max(), 15006.0);
  EXPECT_GT(analysis.queueing_share(), 0.15);
  EXPECT_LT(analysis.queueing_share(), 0.25);  // 5000 / 25000.
}

TEST(TraceAnalysis, CountsPurgedCopies) {
  TraceRig rig(/*deadline=*/5000.0);  // Unreachable: needs ~10 s.
  MemoryTrace trace;
  Simulator sim = rig.make();
  sim.set_trace(&trace);
  sim.schedule_publish(TraceRig::message(0, 0.0));
  sim.run();
  const TraceAnalysis analysis = analyze_trace(trace);
  EXPECT_EQ(analysis.purged_copies, 1u);
  EXPECT_EQ(analysis.deliveries, 0u);
}

TEST(TraceAnalysis, CountsLossesFromFailures) {
  TraceRig rig;
  rig.options.failures = {LinkFailure{3000.0, 0, 1}};
  MemoryTrace trace;
  Simulator sim = rig.make();
  sim.set_trace(&trace);
  sim.schedule_publish(TraceRig::message(0, 0.0));
  sim.run();
  const TraceAnalysis analysis = analyze_trace(trace);
  EXPECT_EQ(analysis.lost_copies, 1u);
  EXPECT_EQ(analysis.deliveries, 0u);
}

TEST(TraceAnalysis, LateDeliveriesLandInLateLatency) {
  TraceRig rig(/*deadline=*/10005.0);  // 1 ms short of achievable.
  rig.options.purge.epsilon = 0.0;
  rig.options.purge.drop_expired = false;
  MemoryTrace trace;
  Simulator sim = rig.make();
  sim.set_trace(&trace);
  sim.schedule_publish(TraceRig::message(0, 0.0));
  sim.run();
  const TraceAnalysis analysis = analyze_trace(trace);
  EXPECT_EQ(analysis.deliveries, 1u);
  EXPECT_EQ(analysis.valid_deliveries, 0u);
  EXPECT_EQ(analysis.late_latency.count(), 1u);
  EXPECT_DOUBLE_EQ(analysis.late_latency.mean(), 10006.0);
}

TEST(CsvTraceSink, WritesOneRowPerEvent) {
  const std::string path = ::testing::TempDir() + "bdps_trace_test.csv";
  {
    TraceRig rig;
    CsvTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    Simulator sim = rig.make();
    sim.set_trace(&sink);
    sim.schedule_publish(TraceRig::message(0, 0.0));
    sim.run();
  }
  std::ifstream in(path);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  // Header + 1 publish + 3 arrivals + 3 processed + 2 enqueue + 2 start +
  // 2 end + 1 deliver = 15.
  EXPECT_EQ(rows, 15u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bdps
