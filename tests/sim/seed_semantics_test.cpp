// Seed-semantics golden suite: the EdgeId-indexed simulator against the
// exact results of the map-keyed seed engine.
//
// Each case in golden_matrix.h is one full run — SSD/PSD, failure
// injection, multi-path dedup, serialize_processing, online estimation —
// and goldens.inc pins every SimResult field the seed produced for it,
// doubles in hexfloat.  Equality here is exact, not approximate: the link
// addressing redesign (flat per-edge state, slot-based dispatch, flat
// dedup sets) must not move a single bit of collector output.  Regenerate
// goldens.inc with tools/golden_gen only when simulation semantics change
// on purpose.
#include <gtest/gtest.h>

#include "golden_matrix.h"

namespace bdps {
namespace {

struct Golden {
  const char* name;
  std::size_t published;
  std::size_t receptions;
  std::size_t deliveries;
  std::size_t valid_deliveries;
  std::size_t total_interested;
  double delivery_rate;
  double earning;
  double potential_earning;
  std::size_t purged_expired;
  std::size_t purged_hopeless;
  std::size_t lost_copies;
  std::size_t max_input_queue;
  double mean_valid_delay_ms;
  double end_time;
};

constexpr Golden kGoldens[] = {
#include "goldens.inc"
};

TEST(SeedSemantics, EveryGoldenCaseIsBitwiseIdentical) {
  const auto cases = bdps_golden::golden_cases();
  ASSERT_EQ(cases.size(), std::size(kGoldens))
      << "golden_matrix.h and goldens.inc disagree; rerun tools/golden_gen";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Golden& want = kGoldens[i];
    ASSERT_EQ(cases[i].name, want.name);
    const SimResult got = run_simulation(cases[i].config);
    EXPECT_EQ(got.published, want.published) << want.name;
    EXPECT_EQ(got.receptions, want.receptions) << want.name;
    EXPECT_EQ(got.deliveries, want.deliveries) << want.name;
    EXPECT_EQ(got.valid_deliveries, want.valid_deliveries) << want.name;
    EXPECT_EQ(got.total_interested, want.total_interested) << want.name;
    // Exact double equality on purpose: same seed, same event order, same
    // arithmetic — "close" would hide a changed decision somewhere.
    EXPECT_EQ(got.delivery_rate, want.delivery_rate) << want.name;
    EXPECT_EQ(got.earning, want.earning) << want.name;
    EXPECT_EQ(got.potential_earning, want.potential_earning) << want.name;
    EXPECT_EQ(got.purged_expired, want.purged_expired) << want.name;
    EXPECT_EQ(got.purged_hopeless, want.purged_hopeless) << want.name;
    EXPECT_EQ(got.lost_copies, want.lost_copies) << want.name;
    EXPECT_EQ(got.max_input_queue, want.max_input_queue) << want.name;
    EXPECT_EQ(got.mean_valid_delay_ms, want.mean_valid_delay_ms) << want.name;
    EXPECT_EQ(got.end_time, want.end_time) << want.name;
  }
}

}  // namespace
}  // namespace bdps
