// Shared config matrix for the seed-semantics golden suite.
//
// Each entry describes one full simulation run; goldens.inc pins the exact
// SimResult every configuration produced under the seed (map-keyed)
// simulator.  The EdgeId-indexed engine must reproduce them bit for bit —
// regenerate with tools/golden_gen only when semantics change on purpose.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "experiment/paper.h"
#include "experiment/runner.h"

namespace bdps_golden {

struct GoldenCase {
  std::string name;
  bdps::SimConfig config;
};

inline std::vector<GoldenCase> golden_cases() {
  using namespace bdps;
  std::vector<GoldenCase> cases;
  const auto add = [&cases](std::string name, SimConfig config) {
    cases.push_back(GoldenCase{std::move(name), std::move(config)});
  };

  // Paper topology, both scenarios, the strategy family's extremes.
  for (const std::uint64_t seed : {1ull, 7ull}) {
    SimConfig ssd = paper_base_config(ScenarioKind::kSsd, 10.0,
                                      StrategyKind::kEbpc, seed);
    ssd.workload.duration = minutes(2.0);
    add("paper_ssd_ebpc_s" + std::to_string(seed), ssd);

    SimConfig psd = paper_base_config(ScenarioKind::kPsd, 10.0,
                                      StrategyKind::kFifo, seed);
    psd.workload.duration = minutes(2.0);
    add("paper_psd_fifo_s" + std::to_string(seed), psd);
  }

  // Failure injection: random link kills mid-run (dead-link bit tests).
  {
    SimConfig config = paper_base_config(ScenarioKind::kSsd, 10.0,
                                         StrategyKind::kEb, 3);
    config.workload.duration = minutes(2.0);
    config.random_link_failures = 6;
    add("paper_ssd_eb_failures", config);
  }

  // Multi-path + dedup_arrivals (per-broker seen-set) on a cyclic mesh.
  {
    SimConfig config = paper_base_config(ScenarioKind::kSsd, 10.0,
                                         StrategyKind::kEbpc, 5);
    config.workload.duration = minutes(2.0);
    config.topology = TopologyKind::kRandomMesh;
    config.broker_count = 24;
    config.extra_edges = 16;
    config.multipath = true;
    add("mesh_multipath_dedup", config);
  }

  // Serialized processing (input queues) on a ring.
  {
    SimConfig config = paper_base_config(ScenarioKind::kPsd, 10.0,
                                         StrategyKind::kRemainingLifetime, 2);
    config.workload.duration = minutes(2.0);
    config.topology = TopologyKind::kRing;
    config.broker_count = 16;
    config.serialize_processing = true;
    add("ring_psd_serialized", config);
  }

  // Online estimation + wrong initial beliefs (estimator / initial-belief
  // state per link) on a dense scale-free overlay.
  {
    SimConfig config = paper_base_config(ScenarioKind::kSsd, 10.0,
                                         StrategyKind::kEbpc, 4);
    config.workload.duration = minutes(2.0);
    config.topology = TopologyKind::kScaleFree;
    config.broker_count = 48;
    config.scale_free_edges_per_node = 3;
    config.online_estimation = true;
    config.belief_noise_frac = 0.4;
    add("scalefree_estimation", config);
  }

  // Everything at once: failures + multipath + estimation + serialization.
  {
    SimConfig config = paper_base_config(ScenarioKind::kBoth, 12.0,
                                         StrategyKind::kEbpc, 9);
    config.workload.duration = minutes(2.0);
    config.topology = TopologyKind::kRandomMesh;
    config.broker_count = 32;
    config.extra_edges = 24;
    config.multipath = true;
    config.online_estimation = true;
    config.belief_noise_frac = 0.25;
    config.serialize_processing = true;
    config.random_link_failures = 4;
    add("mesh_kitchen_sink", config);
  }

  // Fault storm without repair: a killer region storm, a flap and a broker
  // crash window over a mesh — down links hold copies, crashes drop queues
  // (sim/faults/).  Pins hold/kick ordering and the batch seq reservation.
  {
    SimConfig config = paper_base_config(ScenarioKind::kSsd, 12.0,
                                         StrategyKind::kEbpc, 13);
    config.workload.duration = minutes(2.0);
    config.topology = TopologyKind::kRandomMesh;
    config.broker_count = 24;
    config.extra_edges = 18;
    RegionStorm storm;
    storm.at = seconds(20.0);
    storm.epicenter = 5;
    storm.radius = 2;
    storm.recovery_delay = seconds(25.0);
    storm.recovery_jitter = seconds(5.0);
    storm.kill_brokers = true;
    config.faults.storms.push_back(storm);
    config.faults.flaps.push_back(
        LinkFlap{0, 1, seconds(40.0), seconds(15.0), seconds(2.0), 3});
    config.faults.broker_outages.push_back(
        BrokerOutage{seconds(70.0), seconds(90.0), 10});
    config.workload.bursts.push_back(
        WorkloadConfig::PublishBurst{seconds(25.0), seconds(10.0), 3.0});
    add("mesh_fault_storm", config);
  }

  // The same storm shape with incremental routing repair: fault batches
  // patch the fabric (affected-subtree SPT recompute, row surgery) in both
  // engines.
  {
    SimConfig config = paper_base_config(ScenarioKind::kBoth, 12.0,
                                         StrategyKind::kEbpc, 13);
    config.workload.duration = minutes(2.0);
    config.topology = TopologyKind::kRandomMesh;
    config.broker_count = 24;
    config.extra_edges = 18;
    config.repair_routing = true;
    config.serialize_processing = true;
    RegionStorm storm;
    storm.at = seconds(30.0);
    storm.epicenter = 8;
    storm.radius = 2;
    storm.recovery_delay = seconds(30.0);
    storm.recovery_jitter = seconds(4.0);
    config.faults.storms.push_back(storm);
    config.faults.link_outages.push_back(
        LinkOutage{seconds(60.0), seconds(80.0), 0, 1});
    add("mesh_storm_repair", config);
  }

  return cases;
}

}  // namespace bdps_golden
