#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace bdps {
namespace {

Event at(TimeMs time, BrokerId broker = 0) {
  Event e;
  e.time = time;
  e.broker = broker;
  return e;
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(at(30.0));
  q.push(at(10.0));
  q.push(at(20.0));
  EXPECT_DOUBLE_EQ(q.pop().time, 10.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 20.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 30.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SimultaneousEventsPopInInsertionOrder) {
  EventQueue q;
  for (BrokerId b = 0; b < 10; ++b) q.push(at(5.0, b));
  for (BrokerId b = 0; b < 10; ++b) {
    EXPECT_EQ(q.pop().broker, b);
  }
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  q.push(at(10.0));
  q.push(at(5.0));
  EXPECT_DOUBLE_EQ(q.pop().time, 5.0);
  q.push(at(1.0));
  q.push(at(7.0));
  EXPECT_DOUBLE_EQ(q.pop().time, 1.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 7.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 10.0);
}

TEST(EventQueue, TopPeeksWithoutRemoving) {
  EventQueue q;
  q.push(at(3.0));
  q.push(at(1.0));
  EXPECT_DOUBLE_EQ(q.top().time, 1.0);
  EXPECT_EQ(q.size(), 2u);
}

TEST(EventQueue, RandomisedAgainstSortReference) {
  Rng rng(42);
  EventQueue q;
  std::vector<double> reference;
  for (int i = 0; i < 5000; ++i) {
    const double t = rng.uniform(0.0, 1000.0);
    reference.push_back(t);
    q.push(at(t));
  }
  std::sort(reference.begin(), reference.end());
  for (const double expected : reference) {
    ASSERT_DOUBLE_EQ(q.pop().time, expected);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CarriesMessagePayload) {
  EventQueue q;
  Event e = at(1.0);
  e.type = EventType::kSendComplete;
  e.neighbor = 7;
  e.message = std::make_shared<Message>(99, 0, 0.0, 50.0,
                                        std::vector<Attribute>{});
  q.push(std::move(e));
  const Event popped = q.pop();
  EXPECT_EQ(popped.type, EventType::kSendComplete);
  EXPECT_EQ(popped.neighbor, 7);
  ASSERT_NE(popped.message, nullptr);
  EXPECT_EQ(popped.message->id(), 99);
}

}  // namespace
}  // namespace bdps
