// Same-instant FIFO ordering fuzz for EventQueue.
//
// The (time, sequence) heap order is a correctness invariant, not a nicety:
// same-instant events must pop in push order or whole runs stop being
// reproducible, and the sharded engine's cross-lane merge
// (sim/parallel/parallel_simulator.cpp) reconstructs exactly this order —
// its lanes and barrier records inherit the contract from here.  The fuzz
// drives random interleavings of pushes and pops, with times drawn from a
// tiny set so same-instant collisions are the norm, against a
// stable-sort reference model.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "sim/event_queue.h"

namespace bdps {
namespace {

struct ModelEvent {
  TimeMs time = 0.0;
  std::uint64_t push_index = 0;  // Identity: ties must pop in push order.
};

TEST(EventQueueFifoFuzz, MatchesStableSortReference) {
  Rng rng(2026);
  for (int round = 0; round < 200; ++round) {
    EventQueue queue;
    std::vector<ModelEvent> model;  // Not-yet-popped, unordered.
    std::vector<ModelEvent> popped;
    std::uint64_t next_push = 0;
    // Few distinct instants -> ties everywhere; include negative times and
    // repeated extremes.
    const double instants[] = {-1.0, 0.0, 0.0, 1.5, 1.5, 1.5, 2.0, 8.25};
    const std::size_t ops = 40 + rng.uniform_index(160);
    for (std::size_t op = 0; op < ops; ++op) {
      const bool push = model.empty() || rng.uniform() < 0.6;
      if (push) {
        const TimeMs t = instants[rng.uniform_index(std::size(instants))];
        Event event;
        event.time = t;
        // Smuggle the push identity through the broker field.
        event.broker = static_cast<BrokerId>(next_push);
        queue.push(std::move(event));
        model.push_back(ModelEvent{t, next_push++});
      } else {
        const Event event = queue.pop();
        // Reference: earliest time, FIFO within the time (stable order).
        const auto it = std::min_element(
            model.begin(), model.end(), [](const auto& a, const auto& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.push_index < b.push_index;
            });
        EXPECT_EQ(event.time, it->time);
        EXPECT_EQ(static_cast<std::uint64_t>(event.broker), it->push_index);
        popped.push_back(*it);
        model.erase(it);
      }
    }
    // Drain; the full pop sequence must equal the stable sort of all
    // pushed events by (time, push order).
    while (!queue.empty()) {
      const Event event = queue.pop();
      const auto it = std::min_element(
          model.begin(), model.end(), [](const auto& a, const auto& b) {
            if (a.time != b.time) return a.time < b.time;
            return a.push_index < b.push_index;
          });
      ASSERT_NE(it, model.end());
      EXPECT_EQ(event.time, it->time);
      EXPECT_EQ(static_cast<std::uint64_t>(event.broker), it->push_index);
      popped.push_back(*it);
      model.erase(it);
    }
    EXPECT_TRUE(model.empty());
    // Cross-check the whole history against one stable_sort of the pushes:
    // interleaved pops never disturb FIFO-within-instant.
    std::vector<ModelEvent> reference = popped;
    std::stable_sort(reference.begin(), reference.end(),
                     [](const auto& a, const auto& b) {
                       return a.push_index < b.push_index;
                     });
    std::stable_sort(reference.begin(), reference.end(),
                     [](const auto& a, const auto& b) {
                       return a.time < b.time;
                     });
    // Same multiset popped; per-instant order must match push order.  (The
    // interleaving means the *global* popped order can differ from the
    // fully-sorted order, but within each instant, among events popped by
    // one drain phase, FIFO holds — verified by the min_element checks
    // above.  Here we additionally verify nothing was lost or duplicated.)
    EXPECT_EQ(reference.size(), popped.size());
  }
}

}  // namespace
}  // namespace bdps
