#include "sim/simulator.h"

#include <gtest/gtest.h>

namespace bdps {
namespace {

/// Deterministic rig: zero-variance links make every send take exactly
/// size * mean ms, so delivery instants can be asserted to the millisecond.
struct LineRig {
  Topology topo;
  std::unique_ptr<RoutingFabric> fabric;
  std::unique_ptr<const Strategy> scheduler;
  SimulatorOptions options;

  /// Line 0 -(100ms/KB)- 1 -(100ms/KB)- 2; publisher at 0, subscriber(s) at 2.
  explicit LineRig(TimeMs subscriber_deadline,
                   StrategyKind strategy = StrategyKind::kFifo,
                   std::size_t subscriber_count = 1) {
    topo.graph.resize(3);
    topo.graph.add_bidirectional(0, 1, LinkParams{100.0, 0.0});
    topo.graph.add_bidirectional(1, 2, LinkParams{100.0, 0.0});
    topo.publisher_edges = {0};
    std::vector<Subscription> subs;
    for (std::size_t s = 0; s < subscriber_count; ++s) {
      topo.subscriber_homes.push_back(2);
      Subscription sub;
      sub.subscriber = static_cast<SubscriberId>(s);
      sub.home = 2;
      sub.allowed_delay = subscriber_deadline;
      sub.price = 1.0;
      subs.push_back(sub);
    }
    fabric = std::make_unique<RoutingFabric>(topo, std::move(subs));
    scheduler = make_strategy(strategy);
    options.processing_delay = 2.0;
  }

  Simulator make_simulator() {
    return Simulator(&topo, &topo.graph, fabric.get(), scheduler.get(),
                     options, Rng(1));
  }

  static std::shared_ptr<const Message> message(MessageId id, TimeMs when,
                                                TimeMs deadline = kNoDeadline) {
    return std::make_shared<Message>(id, 0, when, 50.0,
                                     std::vector<Attribute>{}, deadline);
  }
};

// Expected timeline for one 50 KB message on the line (PD = 2 ms,
// 100 ms/KB links): publish 0 -> processed@B0 2 -> send 2..5002 ->
// processed@B1 5004 -> send 5004..10004 -> delivered@B2 at 10006 ms.
constexpr TimeMs kLineDelay = 10006.0;

TEST(Simulator, ExactDeliveryTimingOnALine) {
  LineRig rig(seconds(30.0));
  Simulator sim = rig.make_simulator();
  sim.schedule_publish(LineRig::message(0, 0.0));
  sim.run();

  const Collector& c = sim.collector();
  EXPECT_EQ(c.published(), 1u);
  EXPECT_EQ(c.receptions(), 3u);  // B0, B1, B2.
  EXPECT_EQ(c.deliveries(), 1u);
  EXPECT_EQ(c.valid_deliveries(), 1u);
  EXPECT_DOUBLE_EQ(c.valid_delay().mean(), kLineDelay);
  EXPECT_DOUBLE_EQ(sim.now(), kLineDelay);
}

TEST(Simulator, DeadlineBoundaryExactlyAtDeliveryIsValid) {
  LineRig rig(kLineDelay);  // Deadline == achieved delay.
  Simulator sim = rig.make_simulator();
  sim.schedule_publish(LineRig::message(0, 0.0));
  sim.run();
  EXPECT_EQ(sim.collector().valid_deliveries(), 1u);
}

TEST(Simulator, LateDeliveryCountsAsInvalidWhenPurgeIsOff) {
  LineRig rig(kLineDelay - 1.0);
  rig.options.purge.epsilon = 0.0;
  rig.options.purge.drop_expired = false;
  Simulator sim = rig.make_simulator();
  sim.schedule_publish(LineRig::message(0, 0.0));
  sim.run();
  const Collector& c = sim.collector();
  EXPECT_EQ(c.deliveries(), 1u);
  EXPECT_EQ(c.valid_deliveries(), 0u);
  EXPECT_DOUBLE_EQ(c.delivery_rate(), 0.0);
}

TEST(Simulator, PurgeDropsDoomedMessageAtFirstBroker) {
  // With a zero-variance path the eq. 11 check is exact: a deadline 1 ms
  // below the achievable delay is detected as hopeless at the *injection*
  // broker, so the message never consumes any link bandwidth.
  LineRig rig(kLineDelay - 1.0);
  Simulator sim = rig.make_simulator();
  sim.schedule_publish(LineRig::message(0, 0.0));
  sim.run();
  const Collector& c = sim.collector();
  EXPECT_EQ(c.receptions(), 1u);  // B0 only.
  EXPECT_EQ(c.deliveries(), 0u);
  EXPECT_EQ(c.purges().hopeless, 1u);
  EXPECT_EQ(c.purges().expired, 0u);
}

TEST(Simulator, PublisherDeadlineGovernsPsd) {
  LineRig rig(kNoDeadline);  // Subscribers give no bound.
  rig.options.purge.epsilon = 0.0;
  rig.options.purge.drop_expired = false;
  Simulator sim = rig.make_simulator();
  sim.schedule_publish(LineRig::message(0, 0.0, kLineDelay + 1.0));
  sim.schedule_publish(LineRig::message(1, seconds(60.0), kLineDelay - 1.0));
  sim.run();
  const Collector& c = sim.collector();
  EXPECT_EQ(c.deliveries(), 2u);
  EXPECT_EQ(c.valid_deliveries(), 1u);  // Only the generous deadline.
}

TEST(Simulator, MulticastSendsOneCopyPerSharedLink) {
  // 4 subscribers behind the same edge broker: one copy crosses each link,
  // then fans out locally into 4 deliveries.
  LineRig rig(seconds(30.0), StrategyKind::kFifo, 4);
  Simulator sim = rig.make_simulator();
  sim.schedule_publish(LineRig::message(0, 0.0));
  sim.run();
  const Collector& c = sim.collector();
  EXPECT_EQ(c.receptions(), 3u);  // Copies, not per-subscriber traffic.
  EXPECT_EQ(c.deliveries(), 4u);
  EXPECT_EQ(c.valid_deliveries(), 4u);
  EXPECT_EQ(c.total_interested(), 4u);
  EXPECT_DOUBLE_EQ(c.delivery_rate(), 1.0);
}

TEST(Simulator, BackToBackMessagesQueueOnTheBusyLink) {
  // Two messages published together: the second send starts only when the
  // first completes, so its delivery lags by one transmission (5000 ms).
  LineRig rig(seconds(60.0));
  Simulator sim = rig.make_simulator();
  sim.schedule_publish(LineRig::message(0, 0.0));
  sim.schedule_publish(LineRig::message(1, 0.0));
  sim.run();
  const Collector& c = sim.collector();
  EXPECT_EQ(c.valid_deliveries(), 2u);
  // Delays: 10006 and 15006 (one 5000 ms wait at B0; B1's link is free by
  // the time the second copy arrives there).
  EXPECT_DOUBLE_EQ(c.valid_delay().min(), kLineDelay);
  EXPECT_DOUBLE_EQ(c.valid_delay().max(), kLineDelay + 5000.0);
}

// Three messages A, B, C published at 0/100/200 ms.  A's send occupies B0's
// link until 5002 ms, so B and C are *both* waiting when it frees — the
// first real scheduling choice.  FIFO ships B then C (C delivered at
// 20006 ms); RL ships the tight-deadline C first (delivered at 15006 ms +
// the 200 ms publish offset accounted in its delay: 14806 ms elapsed).
std::size_t valid_with_strategy(StrategyKind strategy) {
  LineRig rig(kNoDeadline, strategy);
  rig.options.purge.epsilon = 0.0;
  rig.options.purge.drop_expired = false;
  Simulator sim = rig.make_simulator();
  sim.schedule_publish(LineRig::message(0, 0.0, seconds(60.0)));
  sim.schedule_publish(LineRig::message(1, 100.0, seconds(60.0)));
  sim.schedule_publish(LineRig::message(2, 200.0, seconds(16.0)));
  sim.run();
  return sim.collector().valid_deliveries();
}

TEST(Simulator, RlSavesTheUrgentMessageFifoMisses) {
  EXPECT_EQ(valid_with_strategy(StrategyKind::kFifo), 2u);
  EXPECT_EQ(valid_with_strategy(StrategyKind::kRemainingLifetime), 3u);
  // On a zero-variance path success probabilities are step functions, so at
  // the decision instant both messages still score success = 1 and EB
  // degenerates to FIFO (ties break by position).  The probabilistic
  // discrimination that makes EB win in the paper needs sigma > 0 — covered
  // by the integration tests.
  EXPECT_EQ(valid_with_strategy(StrategyKind::kEb), 2u);
}

TEST(Simulator, HorizonStopsLongRuns) {
  LineRig rig(seconds(30.0));
  rig.options.horizon = 4000.0;  // Before the first hop completes.
  Simulator sim = rig.make_simulator();
  sim.schedule_publish(LineRig::message(0, 0.0));
  sim.run();
  EXPECT_EQ(sim.collector().deliveries(), 0u);
  EXPECT_LE(sim.now(), 4000.0);
}

TEST(Simulator, UnmatchedMessageTravelsNowhere) {
  // A subscriber whose filter rejects the message: nothing is forwarded
  // beyond the injection broker.
  Topology topo;
  topo.graph.resize(2);
  topo.graph.add_bidirectional(0, 1, LinkParams{100.0, 0.0});
  topo.publisher_edges = {0};
  topo.subscriber_homes = {1};
  Subscription sub;
  sub.subscriber = 0;
  sub.home = 1;
  sub.allowed_delay = seconds(30.0);
  Filter f;
  f.where("A1", Op::kLt, Value(1.0));
  sub.filter = f;
  RoutingFabric fabric(topo, {sub});
  const auto scheduler = make_strategy(StrategyKind::kFifo);
  Simulator sim(&topo, &topo.graph, &fabric, scheduler.get(),
                SimulatorOptions{}, Rng(1));
  sim.schedule_publish(std::make_shared<Message>(
      0, 0, 0.0, 50.0, std::vector<Attribute>{{"A1", Value(5.0)}}));
  sim.run();
  const Collector& c = sim.collector();
  EXPECT_EQ(c.receptions(), 1u);  // Injection only.
  EXPECT_EQ(c.total_interested(), 0u);
  EXPECT_EQ(c.deliveries(), 0u);
}

}  // namespace
}  // namespace bdps
