#include "sim/collector.h"

#include <gtest/gtest.h>

namespace bdps {
namespace {

TEST(Collector, StartsEmpty) {
  const Collector c;
  EXPECT_EQ(c.published(), 0u);
  EXPECT_EQ(c.receptions(), 0u);
  EXPECT_EQ(c.deliveries(), 0u);
  EXPECT_DOUBLE_EQ(c.delivery_rate(), 0.0);
  EXPECT_DOUBLE_EQ(c.earning(), 0.0);
  EXPECT_TRUE(c.tiers().empty());
}

TEST(Collector, DeliveryRateIsEq1) {
  Collector c;
  // Two messages: ts = 3 and ts = 1.
  c.on_publish(3, 3.0);
  c.on_publish(1, 1.0);
  // Three deliveries arrive in time, one late.
  c.on_delivery(100.0, 200.0, 1.0);
  c.on_delivery(100.0, 200.0, 1.0);
  c.on_delivery(100.0, 200.0, 1.0);
  c.on_delivery(300.0, 200.0, 1.0);
  EXPECT_EQ(c.total_interested(), 4u);
  EXPECT_EQ(c.deliveries(), 4u);
  EXPECT_EQ(c.valid_deliveries(), 3u);
  EXPECT_DOUBLE_EQ(c.delivery_rate(), 0.75);
}

TEST(Collector, EarningIsEq2) {
  Collector c;
  c.on_publish(2, 5.0);
  c.on_delivery(10.0, 100.0, 3.0);
  c.on_delivery(10.0, 100.0, 2.0);
  c.on_delivery(500.0, 100.0, 3.0);  // Late: no earning.
  EXPECT_DOUBLE_EQ(c.earning(), 5.0);
  EXPECT_DOUBLE_EQ(c.potential_earning(), 5.0);
}

TEST(Collector, BoundaryDeliveryCounts) {
  Collector c;
  c.on_publish(1, 1.0);
  c.on_delivery(200.0, 200.0, 1.0);  // Exactly at the deadline: valid.
  EXPECT_EQ(c.valid_deliveries(), 1u);
}

TEST(Collector, TierBreakdownSeparatesPrices) {
  Collector c;
  c.on_publish(4, 8.0);
  c.on_delivery(10.0, 100.0, 3.0);
  c.on_delivery(10.0, 100.0, 3.0);
  c.on_delivery(10.0, 100.0, 1.0);
  c.on_delivery(999.0, 100.0, 1.0);  // Late economy delivery.
  ASSERT_EQ(c.tiers().size(), 2u);
  const auto& premium = c.tiers().at(3.0);
  EXPECT_EQ(premium.deliveries, 2u);
  EXPECT_EQ(premium.valid, 2u);
  EXPECT_DOUBLE_EQ(premium.earning, 6.0);
  const auto& economy = c.tiers().at(1.0);
  EXPECT_EQ(economy.deliveries, 2u);
  EXPECT_EQ(economy.valid, 1u);
  EXPECT_DOUBLE_EQ(economy.earning, 1.0);
}

TEST(Collector, ValidDelayTracksOnlyValidDeliveries) {
  Collector c;
  c.on_publish(2, 2.0);
  c.on_delivery(100.0, 200.0, 1.0);
  c.on_delivery(5000.0, 200.0, 1.0);  // Late: excluded from the delay stats.
  EXPECT_EQ(c.valid_delay().count(), 1u);
  EXPECT_DOUBLE_EQ(c.valid_delay().mean(), 100.0);
}

TEST(Collector, PurgeAndLossCountersAccumulate) {
  Collector c;
  c.on_purge(PurgeStats{2, 3});
  c.on_purge(PurgeStats{1, 0});
  c.on_loss(4);
  EXPECT_EQ(c.purges().expired, 3u);
  EXPECT_EQ(c.purges().hopeless, 3u);
  EXPECT_EQ(c.lost_copies(), 4u);
}

TEST(Collector, ReceptionsCountEveryCall) {
  Collector c;
  for (int i = 0; i < 7; ++i) c.on_reception();
  EXPECT_EQ(c.receptions(), 7u);
}

}  // namespace
}  // namespace bdps
