// ShardPlan: partition validity and cut bookkeeping on assorted shapes.
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "sim/parallel/shard_plan.h"

namespace bdps {
namespace {

Graph ring(std::size_t brokers) {
  Graph graph(brokers);
  for (std::size_t b = 0; b < brokers; ++b) {
    graph.add_bidirectional(static_cast<BrokerId>(b),
                            static_cast<BrokerId>((b + 1) % brokers),
                            LinkParams{50.0, 10.0});
  }
  return graph;
}

Graph random_mesh(std::size_t brokers, std::size_t extra, std::uint64_t seed) {
  Graph graph = ring(brokers);
  Rng rng(seed);
  for (std::size_t i = 0; i < extra; ++i) {
    const auto a = static_cast<BrokerId>(rng.uniform_index(brokers));
    const auto b = static_cast<BrokerId>(rng.uniform_index(brokers));
    if (a == b || graph.edge_id(a, b) != kNoEdge) continue;
    graph.add_bidirectional(a, b, LinkParams{60.0, 15.0});
  }
  return graph;
}

void check_valid(const Graph& graph, const ShardPlan& plan,
                 std::size_t requested) {
  EXPECT_LE(plan.shard_count(), requested);
  EXPECT_GE(plan.shard_count(), std::min<std::size_t>(
                                    requested, graph.broker_count()));
  std::set<BrokerId> seen;
  for (std::size_t s = 0; s < plan.shard_count(); ++s) {
    EXPECT_FALSE(plan.members(s).empty()) << "empty shard " << s;
    BrokerId previous = -1;
    for (const BrokerId b : plan.members(s)) {
      EXPECT_GT(b, previous);  // Ascending.
      previous = b;
      EXPECT_EQ(plan.shard_of(b), s);
      EXPECT_TRUE(seen.insert(b).second) << "broker in two shards";
    }
  }
  EXPECT_EQ(seen.size(), graph.broker_count());
  // Cut edges are exactly the cross-shard directed edges, ascending.
  std::vector<EdgeId> expected;
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(static_cast<EdgeId>(e));
    if (plan.shard_of(edge.from) != plan.shard_of(edge.to)) {
      expected.push_back(static_cast<EdgeId>(e));
    }
  }
  EXPECT_EQ(plan.cut_edges(), expected);
}

TEST(ShardPlan, ContiguousCoversEveryShape) {
  for (const std::size_t brokers : {1u, 2u, 5u, 16u, 33u}) {
    const Graph graph = ring(std::max<std::size_t>(brokers, 3));
    for (const std::size_t shards : {1u, 2u, 3u, 7u}) {
      const ShardPlan plan = ShardPlan::contiguous(graph, shards);
      check_valid(graph, plan, shards);
      // Contiguity: members of shard s are one id range.
      for (std::size_t s = 0; s < plan.shard_count(); ++s) {
        const auto& members = plan.members(s);
        EXPECT_EQ(members.back() - members.front() + 1,
                  static_cast<BrokerId>(members.size()));
      }
    }
  }
}

TEST(ShardPlan, GreedyCoversEveryShape) {
  for (const std::uint64_t seed : {1ull, 5ull, 9ull}) {
    const Graph graph = random_mesh(40, 60, seed);
    for (const std::size_t shards : {1u, 2u, 4u, 7u, 40u, 64u}) {
      check_valid(graph, ShardPlan::greedy_edge_cut(graph, shards), shards);
    }
  }
}

TEST(ShardPlan, GreedyCutsNoMoreThanContiguousOnClusteredMesh) {
  // Two dense clusters joined by one bridge, ids interleaved so contiguous
  // ranges split both clusters while greedy growth keeps them whole.
  const std::size_t half = 12;
  Graph graph(2 * half);
  for (std::size_t i = 0; i < half; ++i) {
    for (std::size_t j = i + 1; j < half; ++j) {
      graph.add_bidirectional(static_cast<BrokerId>(2 * i),
                              static_cast<BrokerId>(2 * j),
                              LinkParams{50.0, 10.0});
      graph.add_bidirectional(static_cast<BrokerId>(2 * i + 1),
                              static_cast<BrokerId>(2 * j + 1),
                              LinkParams{50.0, 10.0});
    }
  }
  graph.add_bidirectional(0, 1, LinkParams{50.0, 10.0});  // The bridge.
  const ShardPlan greedy = ShardPlan::greedy_edge_cut(graph, 2);
  const ShardPlan contiguous = ShardPlan::contiguous(graph, 2);
  check_valid(graph, greedy, 2);
  check_valid(graph, contiguous, 2);
  EXPECT_LT(greedy.cut_edges().size(), contiguous.cut_edges().size());
  EXPECT_LE(greedy.cut_edges().size(), 2u);  // Only the bridge crosses.
}

TEST(ShardPlan, ClampsToBrokerCount) {
  const Graph graph = ring(3);
  EXPECT_EQ(ShardPlan::greedy_edge_cut(graph, 64).shard_count(), 3u);
  EXPECT_EQ(ShardPlan::contiguous(graph, 64).shard_count(), 3u);
  EXPECT_THROW(ShardPlan::contiguous(graph, 0), std::invalid_argument);
}

}  // namespace
}  // namespace bdps
