// The seed-semantics golden suite, replayed through the sharded engine.
//
// Every configuration of golden_matrix.h runs through ParallelSimulator at
// P in {1, 2, 4, 7} and must reproduce the exact SimResult bytes pinned in
// goldens.inc — the same bytes the sequential engine produces.  This is the
// engine's core contract: domain decomposition, conservative windows,
// deposit-at-send-start and the barrier merge may change *when* work
// happens, never *what* the run computes.
#include <gtest/gtest.h>

#include "../golden_matrix.h"

namespace bdps {
namespace {

struct Golden {
  const char* name;
  std::size_t published;
  std::size_t receptions;
  std::size_t deliveries;
  std::size_t valid_deliveries;
  std::size_t total_interested;
  double delivery_rate;
  double earning;
  double potential_earning;
  std::size_t purged_expired;
  std::size_t purged_hopeless;
  std::size_t lost_copies;
  std::size_t max_input_queue;
  double mean_valid_delay_ms;
  double end_time;
};

constexpr Golden kGoldens[] = {
#include "../goldens.inc"
};

class ParallelGolden : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelGolden, EveryGoldenCaseIsBitwiseIdentical) {
  const std::size_t shards = GetParam();
  const auto cases = bdps_golden::golden_cases();
  ASSERT_EQ(cases.size(), std::size(kGoldens));
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Golden& want = kGoldens[i];
    ASSERT_EQ(cases[i].name, want.name);
    SimConfig config = cases[i].config;
    config.shards = shards;
    const SimResult got = run_simulation(config);
    EXPECT_EQ(got.published, want.published) << want.name;
    EXPECT_EQ(got.receptions, want.receptions) << want.name;
    EXPECT_EQ(got.deliveries, want.deliveries) << want.name;
    EXPECT_EQ(got.valid_deliveries, want.valid_deliveries) << want.name;
    EXPECT_EQ(got.total_interested, want.total_interested) << want.name;
    // Exact double equality on purpose (see seed_semantics_test.cpp): the
    // parallel engine must replay every order-sensitive accumulation in
    // the sequential order, so "close" is a bug.
    EXPECT_EQ(got.delivery_rate, want.delivery_rate) << want.name;
    EXPECT_EQ(got.earning, want.earning) << want.name;
    EXPECT_EQ(got.potential_earning, want.potential_earning) << want.name;
    EXPECT_EQ(got.purged_expired, want.purged_expired) << want.name;
    EXPECT_EQ(got.purged_hopeless, want.purged_hopeless) << want.name;
    EXPECT_EQ(got.lost_copies, want.lost_copies) << want.name;
    EXPECT_EQ(got.max_input_queue, want.max_input_queue) << want.name;
    EXPECT_EQ(got.mean_valid_delay_ms, want.mean_valid_delay_ms) << want.name;
    EXPECT_EQ(got.end_time, want.end_time) << want.name;
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ParallelGolden,
                         ::testing::Values(1u, 2u, 4u, 7u),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace bdps
