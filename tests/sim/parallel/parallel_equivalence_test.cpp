// Sequential-vs-parallel equivalence beyond the golden matrix.
//
// Two layers:
//   * SimResult equality across a randomized grid of configurations
//     (topologies x strategies x feature toggles x shard counts) — every
//     field compared exactly against the sequential engine's result.
//   * Trace-stream equality on a hand-built overlay: the parallel engine
//     replays trace records at window barriers, and the replayed stream
//     must equal the sequential stream event for event, field for field —
//     the strongest observable of the merge order.
#include <gtest/gtest.h>

#include "experiment/paper.h"
#include "experiment/runner.h"
#include "routing/fabric.h"
#include "sim/parallel/parallel_simulator.h"
#include "sim/simulator.h"

namespace bdps {
namespace {

void expect_same_result(const SimResult& sequential, const SimResult& sharded,
                        const std::string& label) {
  EXPECT_EQ(sequential.published, sharded.published) << label;
  EXPECT_EQ(sequential.receptions, sharded.receptions) << label;
  EXPECT_EQ(sequential.deliveries, sharded.deliveries) << label;
  EXPECT_EQ(sequential.valid_deliveries, sharded.valid_deliveries) << label;
  EXPECT_EQ(sequential.total_interested, sharded.total_interested) << label;
  EXPECT_EQ(sequential.delivery_rate, sharded.delivery_rate) << label;
  EXPECT_EQ(sequential.earning, sharded.earning) << label;
  EXPECT_EQ(sequential.potential_earning, sharded.potential_earning) << label;
  EXPECT_EQ(sequential.purged_expired, sharded.purged_expired) << label;
  EXPECT_EQ(sequential.purged_hopeless, sharded.purged_hopeless) << label;
  EXPECT_EQ(sequential.lost_copies, sharded.lost_copies) << label;
  EXPECT_EQ(sequential.max_input_queue, sharded.max_input_queue) << label;
  EXPECT_EQ(sequential.mean_valid_delay_ms, sharded.mean_valid_delay_ms)
      << label;
  EXPECT_EQ(sequential.end_time, sharded.end_time) << label;
}

TEST(ParallelEquivalence, RandomizedConfigGrid) {
  std::vector<SimConfig> configs;
  std::uint64_t seed = 11;
  for (const TopologyKind topology :
       {TopologyKind::kRing, TopologyKind::kRandomMesh,
        TopologyKind::kScaleFree}) {
    for (const StrategyKind strategy :
         {StrategyKind::kFifo, StrategyKind::kEbpc}) {
      SimConfig config = paper_base_config(ScenarioKind::kSsd, 10.0,
                                           strategy, seed++);
      config.workload.duration = seconds(30.0);
      config.topology = topology;
      config.broker_count = 20;
      config.extra_edges = 12;
      config.scale_free_edges_per_node = 2;
      configs.push_back(config);
    }
  }
  // Feature toggles on a mesh: failures, multipath dedup, serialization,
  // estimation — the states the windows must not smear.
  {
    SimConfig config = paper_base_config(ScenarioKind::kBoth, 12.0,
                                         StrategyKind::kEbpc, 23);
    config.workload.duration = seconds(30.0);
    config.topology = TopologyKind::kRandomMesh;
    config.broker_count = 18;
    config.extra_edges = 14;
    config.multipath = true;
    config.online_estimation = true;
    config.belief_noise_frac = 0.3;
    config.serialize_processing = true;
    config.random_link_failures = 3;
    configs.push_back(config);
  }

  for (const SimConfig& base : configs) {
    SimConfig sequential_config = base;
    sequential_config.shards = 0;
    const SimResult sequential = run_simulation(sequential_config);
    for (const std::size_t shards : {1u, 3u, 5u}) {
      SimConfig sharded_config = base;
      sharded_config.shards = shards;
      const SimResult sharded = run_simulation(sharded_config);
      expect_same_result(
          sequential, sharded,
          topology_name(base.topology) + "/" +
              strategy_name(base.strategy) + "/P" + std::to_string(shards));
    }
  }
}

/// Ring overlay driven directly (not through the runner) so both engines
/// can carry a MemoryTrace.
struct RingRig {
  Topology topo;
  std::unique_ptr<RoutingFabric> fabric;
  std::unique_ptr<const Strategy> strategy = make_strategy(StrategyKind::kEbpc);

  explicit RingRig(std::size_t brokers = 8) {
    topo.graph.resize(brokers);
    for (std::size_t b = 0; b < brokers; ++b) {
      const auto from = static_cast<BrokerId>(b);
      const auto to = static_cast<BrokerId>((b + 1) % brokers);
      topo.graph.add_bidirectional(from, to,
                                   LinkParams{40.0 + 5.0 * (b % 3), 8.0});
    }
    topo.publisher_edges = {0, static_cast<BrokerId>(brokers / 2)};
    std::vector<Subscription> subs;
    for (std::size_t b = 0; b < brokers; ++b) {
      topo.subscriber_homes.push_back(static_cast<BrokerId>(b));
      Subscription sub;
      sub.subscriber = static_cast<SubscriberId>(b);
      sub.home = static_cast<BrokerId>(b);
      sub.allowed_delay = minutes(2.0);
      sub.price = 1.0 + static_cast<double>(b % 4);
      subs.push_back(sub);  // Wildcard filter: every message matches.
    }
    fabric = std::make_unique<RoutingFabric>(topo, std::move(subs));
  }

  std::vector<std::shared_ptr<const Message>> make_messages() const {
    std::vector<std::shared_ptr<const Message>> messages;
    for (MessageId i = 0; i < 40; ++i) {
      messages.push_back(std::make_shared<Message>(
          i, static_cast<PublisherId>(i % 2), 250.0 * static_cast<double>(i),
          30.0 + static_cast<double>(i % 5), std::vector<Attribute>{}));
    }
    return messages;
  }
};

TEST(ParallelEquivalence, TraceStreamsMatchExactly) {
  const RingRig rig;
  SimulatorOptions options;
  options.online_estimation = true;
  options.failures.push_back(LinkFailure{seconds(20.0), 2, 3});

  MemoryTrace sequential_trace;
  Simulator sequential(&rig.topo, &rig.topo.graph, rig.fabric.get(),
                       rig.strategy.get(), options, Rng(99));
  sequential.set_trace(&sequential_trace);
  for (auto& message : rig.make_messages()) {
    sequential.schedule_publish(std::move(message));
  }
  sequential.run();

  for (const std::size_t shards : {2u, 3u, 7u}) {
    SimulatorOptions sharded_options = options;
    sharded_options.shards = shards;
    MemoryTrace parallel_trace;
    ParallelSimulator parallel(&rig.topo, &rig.topo.graph, rig.fabric.get(),
                               rig.strategy.get(), sharded_options, Rng(99));
    parallel.set_trace(&parallel_trace);
    for (auto& message : rig.make_messages()) {
      parallel.schedule_publish(std::move(message));
    }
    parallel.run();

    EXPECT_EQ(parallel.now(), sequential.now()) << shards;
    EXPECT_EQ(parallel.collector().earning(), sequential.collector().earning())
        << shards;
    EXPECT_EQ(parallel.collector().lost_copies(),
              sequential.collector().lost_copies())
        << shards;
    ASSERT_EQ(parallel_trace.size(), sequential_trace.size()) << shards;
    for (std::size_t i = 0; i < sequential_trace.size(); ++i) {
      const TraceEvent& want = sequential_trace.events()[i];
      const TraceEvent& got = parallel_trace.events()[i];
      ASSERT_EQ(got.time, want.time) << "event " << i << " P" << shards;
      ASSERT_EQ(got.kind, want.kind) << "event " << i << " P" << shards;
      ASSERT_EQ(got.message, want.message) << "event " << i << " P" << shards;
      ASSERT_EQ(got.broker, want.broker) << "event " << i << " P" << shards;
      ASSERT_EQ(got.neighbor, want.neighbor) << "event " << i;
      ASSERT_EQ(got.subscriber, want.subscriber) << "event " << i;
      ASSERT_EQ(got.valid, want.valid) << "event " << i;
    }
    // The online estimators end in the same state on every true edge.
    for (std::size_t e = 0; e < rig.topo.graph.edge_count(); ++e) {
      const auto* want = sequential.estimator(static_cast<EdgeId>(e));
      const auto* got = parallel.estimator(static_cast<EdgeId>(e));
      ASSERT_EQ(want == nullptr, got == nullptr) << e;
      if (want != nullptr) {
        EXPECT_EQ(got->sample_count(), want->sample_count()) << e;
        EXPECT_EQ(got->samples().mean(), want->samples().mean()) << e;
      }
    }
  }
}

TEST(ParallelEquivalence, RejectsNonPositiveMessageSizes) {
  const RingRig rig;
  SimulatorOptions options;
  options.shards = 2;
  ParallelSimulator parallel(&rig.topo, &rig.topo.graph, rig.fabric.get(),
                             rig.strategy.get(), options, Rng(1));
  parallel.schedule_publish(std::make_shared<Message>(
      1, 0, 0.0, 0.0, std::vector<Attribute>{}));
  EXPECT_THROW(parallel.run(), std::invalid_argument);
}

}  // namespace
}  // namespace bdps
