// Serialized processing and the paper's footnote-2 claim ("the size of the
// input queue is greater than 0 only when the message arrival rate is
// greater than the processing rate of messages, which rarely happens").
#include <gtest/gtest.h>

#include "experiment/paper.h"
#include "experiment/runner.h"
#include "sim/simulator.h"

namespace bdps {
namespace {

TEST(SerializedProcessing, BackToBackArrivalsQueueAtTheProcessor) {
  // Star: two publishers injecting into the same broker at the same time;
  // with a serialized processor, one message waits PD in the input queue.
  Topology topo;
  topo.graph.resize(2);
  topo.graph.add_bidirectional(0, 1, LinkParams{100.0, 0.0});
  topo.publisher_edges = {0, 0};
  topo.subscriber_homes = {1};
  Subscription sub;
  sub.subscriber = 0;
  sub.home = 1;
  sub.allowed_delay = seconds(60.0);
  const RoutingFabric fabric(topo, {sub});
  const auto scheduler = make_strategy(StrategyKind::kFifo);

  SimulatorOptions options;
  options.processing_delay = 2.0;
  options.serialize_processing = true;
  Simulator sim(&topo, &topo.graph, &fabric, scheduler.get(), options,
                Rng(1));
  for (MessageId i = 0; i < 3; ++i) {
    sim.schedule_publish(std::make_shared<Message>(
        i, static_cast<PublisherId>(i % 2), 0.0, 50.0,
        std::vector<Attribute>{}));
  }
  sim.run();
  const Collector& c = sim.collector();
  EXPECT_EQ(c.valid_deliveries(), 3u);
  EXPECT_GE(c.max_input_queue(), 1u);  // Simultaneous arrivals had to wait.
}

TEST(SerializedProcessing, PipelinedModelIsUnaffectedByTheFlag) {
  // With arrivals spaced > PD apart the serialized model must reproduce the
  // pipelined model exactly.
  SimConfig pipelined = paper_base_config(ScenarioKind::kPsd, 4.0,
                                          StrategyKind::kEb, 11);
  pipelined.workload.duration = minutes(8.0);
  SimConfig serialized = pipelined;
  serialized.serialize_processing = true;

  const SimResult a = run_simulation(pipelined);
  const SimResult b = run_simulation(serialized);
  // Not bit-identical in general (queueing can reorder), but the headline
  // metrics must be essentially unchanged at paper parameters...
  EXPECT_NEAR(a.delivery_rate, b.delivery_rate, 0.02);
  EXPECT_EQ(a.published, b.published);
}

TEST(SerializedProcessing, Footnote2HoldsAtPaperParameters) {
  // PD = 2 ms vs ~3.75 s per transmission: the input queue should stay
  // tiny even at the paper's highest load.
  SimConfig config = paper_base_config(ScenarioKind::kPsd, 15.0,
                                       StrategyKind::kEb, 13);
  config.workload.duration = minutes(15.0);
  config.serialize_processing = true;
  const SimResult r = run_simulation(config);
  // "Rarely happens": depth stays single-digit while thousands of messages
  // flow.
  EXPECT_LE(r.max_input_queue, 8u);
  EXPECT_GT(r.receptions, 1000u);
}

TEST(SerializedProcessing, SlowProcessorDoesBacklog) {
  // Crank PD up to transmission scale and the input queue must blow up —
  // the converse of footnote 2.
  SimConfig config = paper_base_config(ScenarioKind::kPsd, 15.0,
                                       StrategyKind::kEb, 13);
  config.workload.duration = minutes(10.0);
  config.serialize_processing = true;
  config.processing_delay = 2000.0;  // 2 s per message.
  const SimResult r = run_simulation(config);
  EXPECT_GT(r.max_input_queue, 8u);
}

TEST(SerializedProcessing, OffByDefault) {
  const SimConfig config = paper_base_config(ScenarioKind::kPsd, 10.0,
                                             StrategyKind::kEb, 1);
  EXPECT_FALSE(config.serialize_processing);
  SimConfig quick = config;
  quick.workload.duration = minutes(5.0);
  EXPECT_EQ(run_simulation(quick).max_input_queue, 0u);
}

}  // namespace
}  // namespace bdps
