// Failure-injection semantics: dead links lose in-flight and queued
// copies, single-path routing cannot recover, multi-path redundancy can.
#include <gtest/gtest.h>

#include "experiment/paper.h"
#include "experiment/runner.h"
#include "sim/simulator.h"

namespace bdps {
namespace {

/// Line 0 - 1 - 2 (zero variance), one subscriber at 2, like
/// simulator_test's rig but with a failure plan.
struct FailLineRig {
  Topology topo;
  std::unique_ptr<RoutingFabric> fabric;
  std::unique_ptr<const Strategy> scheduler;
  SimulatorOptions options;

  FailLineRig() {
    topo.graph.resize(3);
    topo.graph.add_bidirectional(0, 1, LinkParams{100.0, 0.0});
    topo.graph.add_bidirectional(1, 2, LinkParams{100.0, 0.0});
    topo.publisher_edges = {0};
    topo.subscriber_homes = {2};
    Subscription sub;
    sub.subscriber = 0;
    sub.home = 2;
    sub.allowed_delay = seconds(60.0);
    fabric = std::make_unique<RoutingFabric>(topo,
                                             std::vector<Subscription>{sub});
    scheduler = make_strategy(StrategyKind::kFifo);
    options.processing_delay = 2.0;
  }

  Simulator make(std::vector<LinkFailure> failures) {
    options.failures = std::move(failures);
    return Simulator(&topo, &topo.graph, fabric.get(), scheduler.get(),
                     options, Rng(1));
  }

  static std::shared_ptr<const Message> message(MessageId id, TimeMs when) {
    return std::make_shared<Message>(id, 0, when, 50.0,
                                     std::vector<Attribute>{});
  }
};

TEST(FailureInjection, InFlightSendIsLost) {
  FailLineRig rig;
  // The 0->1 send runs 2..5002 ms; kill the link at 3000 ms.
  Simulator sim = rig.make({LinkFailure{3000.0, 0, 1}});
  sim.schedule_publish(FailLineRig::message(0, 0.0));
  sim.run();
  const Collector& c = sim.collector();
  EXPECT_EQ(c.deliveries(), 0u);
  EXPECT_EQ(c.receptions(), 1u);  // Injection only; B1 never receives.
  EXPECT_EQ(c.lost_copies(), 1u);
}

TEST(FailureInjection, QueuedCopiesAreLostToo) {
  FailLineRig rig;
  // Three back-to-back messages: one in flight, two queued when the link
  // dies.
  Simulator sim = rig.make({LinkFailure{3000.0, 0, 1}});
  for (MessageId i = 0; i < 3; ++i) {
    sim.schedule_publish(FailLineRig::message(i, 0.0));
  }
  sim.run();
  EXPECT_EQ(sim.collector().deliveries(), 0u);
  EXPECT_EQ(sim.collector().lost_copies(), 3u);
}

TEST(FailureInjection, MessagesBeforeTheFailureSurvive) {
  FailLineRig rig;
  // First message fully crosses 0->1 by 5002 ms; the failure at 6000 ms
  // only kills that first hop — the copy is already past it.
  Simulator sim = rig.make({LinkFailure{6000.0, 0, 1}});
  sim.schedule_publish(FailLineRig::message(0, 0.0));
  sim.schedule_publish(FailLineRig::message(1, 5500.0));
  sim.run();
  const Collector& c = sim.collector();
  EXPECT_EQ(c.valid_deliveries(), 1u);  // Message 0 delivered.
  EXPECT_EQ(c.lost_copies(), 1u);       // Message 1 died at broker 0.
}

TEST(FailureInjection, FailuresAfterTheRunChangeNothing) {
  FailLineRig rig;
  Simulator sim = rig.make({LinkFailure{seconds(3600.0), 0, 1}});
  sim.schedule_publish(FailLineRig::message(0, 0.0));
  sim.run();
  EXPECT_EQ(sim.collector().valid_deliveries(), 1u);
  EXPECT_EQ(sim.collector().lost_copies(), 0u);
}

TEST(FailureInjection, MultipathSurvivesSingleBranchFailure) {
  // Diamond 0 -> {1, 2} -> 3: kill the primary branch before publishing.
  Topology topo;
  topo.graph.resize(4);
  topo.graph.add_bidirectional(0, 1, LinkParams{50.0, 0.0});
  topo.graph.add_bidirectional(0, 2, LinkParams{60.0, 0.0});
  topo.graph.add_bidirectional(1, 3, LinkParams{50.0, 0.0});
  topo.graph.add_bidirectional(2, 3, LinkParams{60.0, 0.0});
  topo.publisher_edges = {0};
  topo.subscriber_homes = {3};
  Subscription sub;
  sub.subscriber = 0;
  sub.home = 3;
  sub.allowed_delay = seconds(60.0);

  for (const bool multipath : {false, true}) {
    FabricOptions fabric_options;
    fabric_options.multipath = multipath;
    RoutingFabric fabric(topo, {sub}, fabric_options);
    const auto scheduler = make_strategy(StrategyKind::kEb);
    SimulatorOptions options;
    options.processing_delay = 2.0;
    options.dedup_arrivals = multipath;
    options.failures = {LinkFailure{1.0, 0, 1}};  // Primary branch dies.
    Simulator sim(&topo, &topo.graph, &fabric, scheduler.get(), options,
                  Rng(1));
    sim.schedule_publish(std::make_shared<Message>(
        0, 0, 100.0, 50.0, std::vector<Attribute>{}));
    sim.run();
    if (multipath) {
      EXPECT_EQ(sim.collector().valid_deliveries(), 1u)
          << "redundant branch must deliver";
    } else {
      EXPECT_EQ(sim.collector().valid_deliveries(), 0u)
          << "single path has no recovery";
      EXPECT_EQ(sim.collector().lost_copies(), 1u);
    }
  }
}

TEST(FailureInjection, RandomFailuresThroughRunnerAreDeterministic) {
  SimConfig config = paper_base_config(ScenarioKind::kPsd, 6.0,
                                       StrategyKind::kEb, 17);
  config.workload.duration = minutes(8.0);
  config.random_link_failures = 4;
  const SimResult a = run_simulation(config);
  const SimResult b = run_simulation(config);
  EXPECT_EQ(a.lost_copies, b.lost_copies);
  EXPECT_EQ(a.valid_deliveries, b.valid_deliveries);
}

TEST(FailureInjection, FailuresReduceDeliveryRate) {
  SimConfig healthy = paper_base_config(ScenarioKind::kPsd, 6.0,
                                        StrategyKind::kEb, 21);
  healthy.workload.duration = minutes(10.0);
  SimConfig broken = healthy;
  broken.random_link_failures = 8;
  const SimResult a = run_simulation(healthy);
  const SimResult b = run_simulation(broken);
  EXPECT_EQ(a.lost_copies, 0u);
  EXPECT_GT(b.lost_copies, 0u);
  EXPECT_LT(b.delivery_rate, a.delivery_rate);
}

TEST(FailureInjection, MultipathCushionsRandomFailures) {
  // With failures, redundancy should recover some deliveries relative to
  // single-path under the *same* failure plan.
  SimConfig single = paper_base_config(ScenarioKind::kPsd, 4.0,
                                       StrategyKind::kEb, 33);
  single.workload.duration = minutes(10.0);
  single.random_link_failures = 6;
  SimConfig multi = single;
  multi.multipath = true;
  const SimResult s = run_simulation(single);
  const SimResult m = run_simulation(multi);
  EXPECT_GT(m.delivery_rate, s.delivery_rate);
}

}  // namespace
}  // namespace bdps
