// Incremental SPT repair (routing/spt.h: repair_tree_toward) and the
// repairable fabric's row surgery (RoutingFabric::apply_link_state).
//
// The repair contract is equivalence with a fresh Dijkstra over the
// filtered graph: path *costs*, remaining-path stats and reachability must
// match exactly after any down/up churn sequence (next hops may resolve
// equal-cost ties differently — the suffix-consistency invariant is
// checked directly instead).  The fabric layer must retire stale rows in
// place (row ids are load-bearing: queued copies and matching-index filter
// ids point at them) and route matches over the repaired tree.
#include "routing/spt.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "routing/fabric.h"
#include "topology/builders.h"
#include "topology/edge_map.h"

namespace bdps {
namespace {

std::vector<std::vector<EdgeId>> reverse_adjacency(const Graph& graph) {
  std::vector<std::vector<EdgeId>> incoming(graph.broker_count());
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    incoming[graph.edge(static_cast<EdgeId>(e)).to].push_back(
        static_cast<EdgeId>(e));
  }
  return incoming;
}

/// Copy of `graph` without the down edges (fresh-compute oracle).
Graph filtered_graph(const Graph& graph, const EdgeFlags& down) {
  Graph filtered(graph.broker_count());
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    if (down.test(static_cast<EdgeId>(e))) continue;
    const Edge& edge = graph.edge(static_cast<EdgeId>(e));
    filtered.add_edge(edge.from, edge.to, edge.link.params());
  }
  return filtered;
}

void expect_tree_equivalent(const ShortestPathTree& repaired,
                            const ShortestPathTree& fresh,
                            const Graph& graph, const EdgeFlags& down,
                            const std::string& label) {
  ASSERT_EQ(repaired.next_hop.size(), fresh.next_hop.size()) << label;
  for (std::size_t b = 0; b < fresh.next_hop.size(); ++b) {
    ASSERT_EQ(repaired.reachable[b], fresh.reachable[b])
        << label << " broker " << b;
    if (!fresh.reachable[b]) continue;
    ASSERT_DOUBLE_EQ(repaired.stats[b].mean_ms_per_kb,
                     fresh.stats[b].mean_ms_per_kb)
        << label << " broker " << b;
    ASSERT_DOUBLE_EQ(repaired.stats[b].variance, fresh.stats[b].variance)
        << label << " broker " << b;
    ASSERT_EQ(repaired.stats[b].hop_brokers, fresh.stats[b].hop_brokers)
        << label << " broker " << b;
    // Suffix consistency over *up* links: the chosen next hop must be a
    // live edge and the stats must telescope along it.
    const BrokerId hop = repaired.next_hop[b];
    if (static_cast<BrokerId>(b) == repaired.destination) {
      ASSERT_EQ(hop, kNoBroker) << label;
      continue;
    }
    ASSERT_NE(hop, kNoBroker) << label << " broker " << b;
    const EdgeId via = graph.edge_id(static_cast<BrokerId>(b), hop);
    ASSERT_NE(via, kNoEdge) << label << " broker " << b;
    ASSERT_FALSE(down.test(via)) << label << " broker " << b;
    const PathStats want =
        repaired.stats[hop].then_link(graph.edge(via).link.params());
    ASSERT_DOUBLE_EQ(repaired.stats[b].mean_ms_per_kb, want.mean_ms_per_kb)
        << label << " broker " << b;
  }
}

/// Line: 0 -(50)- 1 -(60)- 2; plus shortcut 0 -(200)- 2.
Graph line_with_shortcut() {
  Graph g(3);
  g.add_bidirectional(0, 1, LinkParams{50.0, 10.0});
  g.add_bidirectional(1, 2, LinkParams{60.0, 20.0});
  g.add_bidirectional(0, 2, LinkParams{200.0, 5.0});
  return g;
}

/// Marks both directions of the undirected link (a, b) and records the
/// directed ids in `batch`.
void toggle_link(const Graph& graph, BrokerId a, BrokerId b, bool make_down,
                 EdgeFlags& down, std::vector<EdgeId>& batch) {
  for (const EdgeId e : {graph.edge_id(a, b), graph.edge_id(b, a)}) {
    ASSERT_NE(e, kNoEdge);
    if (make_down) {
      down.set(e);
    } else {
      down.reset(e);
    }
    batch.push_back(e);
  }
}

TEST(SptRepair, SeverRerouteAndReattach) {
  const Graph g = line_with_shortcut();
  const auto incoming = reverse_adjacency(g);
  EdgeFlags down(g.edge_count());

  ShortestPathTree tree = compute_tree_toward(g, 2);
  ASSERT_EQ(tree.next_hop[0], 1);

  // Down 1-2: broker 1's path crossed the severed link, broker 0's ran
  // through 1 — both must reroute onto the 200-cost shortcut.
  std::vector<EdgeId> newly_down;
  toggle_link(g, 1, 2, true, down, newly_down);
  const auto changed =
      repair_tree_toward(g, incoming, down, newly_down, {}, tree);
  expect_tree_equivalent(tree, compute_tree_toward(filtered_graph(g, down), 2),
                         g, down, "down 1-2");
  EXPECT_EQ(tree.next_hop[0], 2);
  EXPECT_EQ(tree.next_hop[1], 0);
  EXPECT_DOUBLE_EQ(tree.stats[1].mean_ms_per_kb, 250.0);
  EXPECT_EQ(changed, (std::vector<BrokerId>{0, 1}));

  // Up again: the strictly-improving cascade restores the original tree.
  std::vector<EdgeId> newly_up;
  toggle_link(g, 1, 2, false, down, newly_up);
  repair_tree_toward(g, incoming, down, {}, newly_up, tree);
  expect_tree_equivalent(tree, compute_tree_toward(g, 2), g, down, "up 1-2");
  EXPECT_EQ(tree.next_hop[0], 1);
  EXPECT_DOUBLE_EQ(tree.stats[0].mean_ms_per_kb, 110.0);
}

TEST(SptRepair, DisconnectionAndRecovery) {
  const Graph g = line_with_shortcut();
  const auto incoming = reverse_adjacency(g);
  EdgeFlags down(g.edge_count());
  ShortestPathTree tree = compute_tree_toward(g, 2);

  // Sever every link touching the destination: all other brokers drop to
  // unreachable.
  std::vector<EdgeId> newly_down;
  toggle_link(g, 1, 2, true, down, newly_down);
  toggle_link(g, 0, 2, true, down, newly_down);
  repair_tree_toward(g, incoming, down, newly_down, {}, tree);
  EXPECT_TRUE(tree.reachable[2]);
  EXPECT_FALSE(tree.reachable[0]);
  EXPECT_FALSE(tree.reachable[1]);

  // Restore only the shortcut: both reconnect through it.
  std::vector<EdgeId> newly_up;
  toggle_link(g, 0, 2, false, down, newly_up);
  repair_tree_toward(g, incoming, down, {}, newly_up, tree);
  expect_tree_equivalent(tree, compute_tree_toward(filtered_graph(g, down), 2),
                         g, down, "shortcut only");
  EXPECT_EQ(tree.next_hop[1], 0);
  EXPECT_DOUBLE_EQ(tree.stats[1].mean_ms_per_kb, 250.0);
}

/// Randomized churn: repeated down/up batches on a mesh, each repair
/// checked against a fresh Dijkstra over the filtered graph, plus
/// exactness of the changed-broker list (untouched brokers keep their
/// exact next hop and stats).
class SptRepairChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SptRepairChurn, MatchesFreshComputeAcrossBatches) {
  Rng rng(GetParam());
  const Topology topo =
      build_random_mesh(rng, 24, 20, 3, 6, 50.0, 100.0, 20.0);
  const Graph& g = topo.graph;
  const auto incoming = reverse_adjacency(g);

  // Canonical (min -> max) edge ids name the undirected links.
  std::vector<std::pair<BrokerId, BrokerId>> links;
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    const Edge& edge = g.edge(static_cast<EdgeId>(e));
    if (edge.from < edge.to) links.emplace_back(edge.from, edge.to);
  }
  ASSERT_FALSE(links.empty());

  for (const BrokerId dest : {BrokerId{0}, BrokerId{5}, BrokerId{11}}) {
    EdgeFlags down(g.edge_count());
    EdgeFlags link_down(g.edge_count());  // Canonical-direction view.
    ShortestPathTree tree = compute_tree_toward(g, dest);

    for (int round = 0; round < 12; ++round) {
      std::vector<EdgeId> newly_down;
      std::vector<EdgeId> newly_up;
      EdgeFlags toggled(g.edge_count());
      const std::size_t toggles = 1 + rng.uniform_index(4);
      for (std::size_t t = 0; t < toggles; ++t) {
        const auto& [a, b] = links[rng.uniform_index(links.size())];
        const EdgeId canonical = g.edge_id(a, b);
        // One transition per link per batch — a link cannot appear in both
        // the down and the up list of the same instant.
        if (toggled.test(canonical)) continue;
        toggled.set(canonical);
        const bool make_down = !link_down.test(canonical);
        if (make_down) {
          link_down.set(canonical);
        } else {
          link_down.reset(canonical);
        }
        toggle_link(g, a, b, make_down, down,
                    make_down ? newly_down : newly_up);
      }

      const ShortestPathTree before = tree;
      const auto changed =
          repair_tree_toward(g, incoming, down, newly_down, newly_up, tree);
      ASSERT_TRUE(std::is_sorted(changed.begin(), changed.end()));
      ASSERT_TRUE(std::adjacent_find(changed.begin(), changed.end()) ==
                  changed.end());

      const std::string label = "dest " + std::to_string(dest) + " round " +
                                std::to_string(round);
      expect_tree_equivalent(
          tree, compute_tree_toward(filtered_graph(g, down), dest), g, down,
          label);

      // Brokers outside the changed list are untouched — same hop, stats
      // and reachability bit.
      for (std::size_t b = 0; b < g.broker_count(); ++b) {
        if (std::binary_search(changed.begin(), changed.end(),
                               static_cast<BrokerId>(b))) {
          continue;
        }
        ASSERT_EQ(tree.next_hop[b], before.next_hop[b]) << label;
        ASSERT_EQ(tree.reachable[b], before.reachable[b]) << label;
        if (tree.reachable[b]) {
          ASSERT_DOUBLE_EQ(tree.stats[b].mean_ms_per_kb,
                           before.stats[b].mean_ms_per_kb)
              << label;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SptRepairChurn,
                         ::testing::Values(1u, 7u, 23u, 61u, 97u));

// ---- Repairable fabric: row surgery and match routing ----

Topology diamond_topology() {
  Topology topo;
  topo.graph.resize(4);
  topo.graph.add_bidirectional(0, 1, LinkParams{10.0, 0.0});
  topo.graph.add_bidirectional(1, 3, LinkParams{10.0, 0.0});
  topo.graph.add_bidirectional(0, 2, LinkParams{50.0, 0.0});
  topo.graph.add_bidirectional(2, 3, LinkParams{50.0, 0.0});
  topo.publisher_edges = {0};
  topo.subscriber_homes = {3};
  return topo;
}

std::vector<Subscription> one_wildcard_sub_at(BrokerId home) {
  Subscription sub;
  sub.subscriber = 0;
  sub.home = home;
  sub.allowed_delay = minutes(2.0);
  sub.price = 2.0;
  return {sub};
}

/// match_at deliberately returns retired rows too (queued copies keep
/// following them); the fan-out grouper is the layer that skips
/// `disabled`.  Tests assert on the enabled view.
std::vector<const SubscriptionEntry*> enabled_rows(const RoutingFabric& fabric,
                                                   BrokerId broker,
                                                   const Message& message) {
  std::vector<const SubscriptionEntry*> rows = fabric.match_at(broker, message);
  std::erase_if(rows,
                [](const SubscriptionEntry* entry) { return entry->disabled; });
  return rows;
}

TEST(FabricRepair, ApplyLinkStateRetiresRowsInPlace) {
  const Topology topo = diamond_topology();
  FabricOptions options;
  options.repairable = true;
  RoutingFabric fabric(topo, one_wildcard_sub_at(3), options);

  const Message probe(0, 0, 0.0, 10.0, {});
  // Before: broker 0 forwards toward 1 (the cheap path).
  {
    const auto rows = enabled_rows(fabric, 0, probe);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0]->next_hop, 1);
    EXPECT_EQ(rows[0]->next_hop_edge, topo.graph.edge_id(0, 1));
  }
  const std::size_t rows_before = fabric.table(0).size();

  // Down 1-3: the install set moves to 0-2-3.
  const std::vector<EdgeId> down = {topo.graph.edge_id(1, 3),
                                    topo.graph.edge_id(3, 1)};
  const std::size_t rewritten = fabric.apply_link_state(down, {});
  EXPECT_GT(rewritten, 0u);

  {
    const auto rows = enabled_rows(fabric, 0, probe);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0]->next_hop, 2);
    EXPECT_EQ(rows[0]->next_hop_edge, topo.graph.edge_id(0, 2));
    EXPECT_FALSE(rows[0]->disabled);
  }
  // Broker 2 now carries the subscription; broker 1 no longer matches.
  EXPECT_EQ(enabled_rows(fabric, 2, probe).size(), 1u);
  EXPECT_TRUE(enabled_rows(fabric, 1, probe).empty());
  // Stale rows were disabled in place, not erased: the table only grows,
  // and the retired row is still addressable (queued copies point at it).
  EXPECT_GE(fabric.table(0).size(), rows_before);
  bool found_disabled = false;
  for (const SubscriptionEntry& entry : fabric.table(0).entries()) {
    if (entry.disabled) found_disabled = true;
  }
  EXPECT_TRUE(found_disabled);

  // Up again: routing returns to the cheap path.
  fabric.apply_link_state({}, down);
  {
    const auto rows = enabled_rows(fabric, 0, probe);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0]->next_hop, 1);
  }
  EXPECT_EQ(enabled_rows(fabric, 1, probe).size(), 1u);
}

TEST(FabricRepair, LocalRowsSurviveChurn) {
  const Topology topo = diamond_topology();
  FabricOptions options;
  options.repairable = true;
  RoutingFabric fabric(topo, one_wildcard_sub_at(3), options);
  const Message probe(0, 0, 0.0, 10.0, {});

  const std::vector<EdgeId> down = {topo.graph.edge_id(1, 3),
                                    topo.graph.edge_id(3, 1)};
  fabric.apply_link_state(down, {});
  // The home broker's local-delivery row is unaffected by the reroute.
  const auto rows = enabled_rows(fabric, 3, probe);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0]->is_local());
  EXPECT_FALSE(rows[0]->disabled);
}

}  // namespace
}  // namespace bdps
