#include "routing/spt.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "topology/builders.h"

namespace bdps {
namespace {

/// Line: 0 -(50)- 1 -(60)- 2; plus shortcut 0 -(200)- 2.
Graph line_with_shortcut() {
  Graph g(3);
  g.add_bidirectional(0, 1, LinkParams{50.0, 10.0});
  g.add_bidirectional(1, 2, LinkParams{60.0, 20.0});
  g.add_bidirectional(0, 2, LinkParams{200.0, 5.0});
  return g;
}

TEST(ShortestPathTree, PrefersSmallerMeanOverFewerHops) {
  const Graph g = line_with_shortcut();
  const ShortestPathTree tree = compute_tree_toward(g, 2);
  // From 0: via 1 costs 110, direct costs 200 -> choose via 1.
  EXPECT_EQ(tree.next_hop[0], 1);
  EXPECT_EQ(tree.next_hop[1], 2);
  EXPECT_EQ(tree.next_hop[2], kNoBroker);
}

TEST(ShortestPathTree, StatsAccumulateAlongChosenPath) {
  const Graph g = line_with_shortcut();
  const ShortestPathTree tree = compute_tree_toward(g, 2);
  // Path 0 -> 1 -> 2: two links, two downstream brokers.
  EXPECT_EQ(tree.stats[0].hop_brokers, 2);
  EXPECT_DOUBLE_EQ(tree.stats[0].mean_ms_per_kb, 110.0);
  EXPECT_DOUBLE_EQ(tree.stats[0].variance, 100.0 + 400.0);
  EXPECT_EQ(tree.stats[1].hop_brokers, 1);
  EXPECT_DOUBLE_EQ(tree.stats[1].mean_ms_per_kb, 60.0);
  // Destination: empty path.
  EXPECT_EQ(tree.stats[2].hop_brokers, 0);
  EXPECT_DOUBLE_EQ(tree.stats[2].mean_ms_per_kb, 0.0);
}

TEST(ShortestPathTree, PathFromMaterialisesSequence) {
  const Graph g = line_with_shortcut();
  const ShortestPathTree tree = compute_tree_toward(g, 2);
  const std::vector<BrokerId> expected = {0, 1, 2};
  EXPECT_EQ(tree.path_from(0), expected);
  EXPECT_EQ(tree.path_from(2), std::vector<BrokerId>{2});
}

TEST(ShortestPathTree, UnreachableNodesFlagged) {
  Graph g(4);
  g.add_bidirectional(0, 1, LinkParams{50.0, 10.0});
  // Brokers 2, 3 are isolated from 0, 1.
  g.add_bidirectional(2, 3, LinkParams{50.0, 10.0});
  const ShortestPathTree tree = compute_tree_toward(g, 0);
  EXPECT_TRUE(tree.reachable[0]);
  EXPECT_TRUE(tree.reachable[1]);
  EXPECT_FALSE(tree.reachable[2]);
  EXPECT_FALSE(tree.reachable[3]);
  EXPECT_TRUE(tree.path_from(2).empty());
}

TEST(ShortestPathTree, AsymmetricLinksUseDirectedCosts) {
  Graph g(2);
  g.add_edge(0, 1, LinkParams{50.0, 10.0});   // Cheap toward 1.
  g.add_edge(1, 0, LinkParams{500.0, 10.0});  // Expensive back.
  const ShortestPathTree toward1 = compute_tree_toward(g, 1);
  EXPECT_DOUBLE_EQ(toward1.stats[0].mean_ms_per_kb, 50.0);
  const ShortestPathTree toward0 = compute_tree_toward(g, 0);
  EXPECT_DOUBLE_EQ(toward0.stats[1].mean_ms_per_kb, 500.0);
}

/// Suffix consistency: for any broker b on the chosen path from a to dest,
/// the chosen path from b is exactly the suffix starting at b.  This is the
/// property that makes one subscription-table row per subscriber valid for
/// every publisher (§4.2).
class SptSuffixProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SptSuffixProperty, EverySuffixOfAChosenPathIsChosen) {
  Rng rng(GetParam());
  const Topology topo =
      build_random_mesh(rng, 24, 20, 3, 6, 50.0, 100.0, 20.0);
  for (BrokerId dest = 0; dest < 6; ++dest) {
    const ShortestPathTree tree = compute_tree_toward(topo.graph, dest);
    for (std::size_t a = 0; a < topo.graph.broker_count(); ++a) {
      if (!tree.reachable[a]) continue;
      const auto path = tree.path_from(static_cast<BrokerId>(a));
      for (std::size_t i = 0; i < path.size(); ++i) {
        const auto suffix =
            std::vector<BrokerId>(path.begin() + static_cast<std::ptrdiff_t>(i),
                                  path.end());
        ASSERT_EQ(tree.path_from(path[i]), suffix);
      }
    }
  }
}

TEST_P(SptSuffixProperty, StatsMatchManualPathSum) {
  Rng rng(GetParam() + 1000);
  const Topology topo =
      build_random_mesh(rng, 16, 10, 2, 4, 50.0, 100.0, 20.0);
  const ShortestPathTree tree = compute_tree_toward(topo.graph, 0);
  for (std::size_t a = 1; a < topo.graph.broker_count(); ++a) {
    if (!tree.reachable[a]) continue;
    const auto path = tree.path_from(static_cast<BrokerId>(a));
    PathStats manual;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const EdgeId e = topo.graph.find_edge(path[i], path[i + 1]);
      ASSERT_NE(e, kNoEdge);
      manual = manual.then_link(topo.graph.edge(e).link.params());
    }
    ASSERT_EQ(tree.stats[a].hop_brokers, manual.hop_brokers);
    ASSERT_DOUBLE_EQ(tree.stats[a].mean_ms_per_kb, manual.mean_ms_per_kb);
    ASSERT_DOUBLE_EQ(tree.stats[a].variance, manual.variance);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SptSuffixProperty,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

TEST(PathStats, AlgebraIsComponentWise) {
  const PathStats a{2, 100.0, 400.0};
  const PathStats b{1, 60.0, 100.0};
  const PathStats sum = a + b;
  EXPECT_EQ(sum.hop_brokers, 3);
  EXPECT_DOUBLE_EQ(sum.mean_ms_per_kb, 160.0);
  EXPECT_DOUBLE_EQ(sum.variance, 500.0);
  EXPECT_DOUBLE_EQ(kLocalPath.mean_ms_per_kb, 0.0);
  EXPECT_EQ((kLocalPath + a), a);
}

TEST(PathStats, ThenLinkAddsOneBrokerAndOneLink) {
  const PathStats p = kLocalPath.then_link(LinkParams{75.0, 20.0});
  EXPECT_EQ(p.hop_brokers, 1);
  EXPECT_DOUBLE_EQ(p.mean_ms_per_kb, 75.0);
  EXPECT_DOUBLE_EQ(p.variance, 400.0);
  EXPECT_DOUBLE_EQ(p.stddev(), 20.0);
}

}  // namespace
}  // namespace bdps
