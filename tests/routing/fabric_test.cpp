#include "routing/fabric.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace bdps {
namespace {

/// Line topology 0 - 1 - 2 with a publisher at 0 and a subscriber at 2.
Topology line_topology() {
  Topology topo;
  topo.graph.resize(3);
  topo.graph.add_bidirectional(0, 1, LinkParams{50.0, 10.0});
  topo.graph.add_bidirectional(1, 2, LinkParams{60.0, 20.0});
  topo.publisher_edges = {0};
  topo.subscriber_homes = {2};
  return topo;
}

Subscription any_subscription(BrokerId home, SubscriberId id = 0) {
  Subscription sub;
  sub.subscriber = id;
  sub.home = home;
  sub.allowed_delay = seconds(10.0);
  sub.price = 2.0;
  return sub;  // Empty filter: matches everything.
}

Message make_message(PublisherId publisher = 0) {
  return Message(1, publisher, 0.0, 50.0, {{"A1", Value(1.0)}});
}

TEST(RoutingFabric, InstallsEntriesAlongPath) {
  const Topology topo = line_topology();
  const RoutingFabric fabric(topo, {any_subscription(2)});
  EXPECT_EQ(fabric.table(0).size(), 1u);
  EXPECT_EQ(fabric.table(1).size(), 1u);
  EXPECT_EQ(fabric.table(2).size(), 1u);

  const SubscriptionEntry& at0 = fabric.table(0).entries()[0];
  EXPECT_EQ(at0.next_hop, 1);
  EXPECT_EQ(at0.path.hop_brokers, 2);
  EXPECT_DOUBLE_EQ(at0.path.mean_ms_per_kb, 110.0);

  const SubscriptionEntry& at1 = fabric.table(1).entries()[0];
  EXPECT_EQ(at1.next_hop, 2);
  EXPECT_DOUBLE_EQ(at1.path.mean_ms_per_kb, 60.0);

  const SubscriptionEntry& at2 = fabric.table(2).entries()[0];
  EXPECT_TRUE(at2.is_local());
  EXPECT_EQ(at2.path.hop_brokers, 0);
}

TEST(RoutingFabric, OffPathBrokersGetNoEntries) {
  Topology topo = line_topology();
  // Add a dead-end broker 3 hanging off broker 1.
  topo.graph.resize(4);
  topo.graph.add_bidirectional(1, 3, LinkParams{55.0, 10.0});
  const RoutingFabric fabric(topo, {any_subscription(2)});
  EXPECT_EQ(fabric.table(3).size(), 0u);
}

TEST(RoutingFabric, MatchAtFiltersByContent) {
  const Topology topo = line_topology();
  Subscription narrow = any_subscription(2);
  Filter f;
  f.where("A1", Op::kLt, Value(0.5));
  narrow.filter = f;
  const RoutingFabric fabric(topo, {narrow});
  EXPECT_TRUE(fabric.match_at(0, make_message()).empty());  // A1=1 >= 0.5.
  Message hit(2, 0, 0.0, 50.0, {{"A1", Value(0.1)}});
  EXPECT_EQ(fabric.match_at(0, hit).size(), 1u);
}

TEST(RoutingFabric, MatchAllCountsInterestedSubscribers) {
  const Topology topo = line_topology();
  Subscription s0 = any_subscription(2, 0);
  Subscription s1 = any_subscription(2, 1);
  Filter f;
  f.where("A1", Op::kGt, Value(5.0));
  s1.filter = f;
  const RoutingFabric fabric(topo, {s0, s1});
  EXPECT_EQ(fabric.match_all(make_message()).size(), 1u);  // Only wildcard.
}

TEST(RoutingFabric, PublisherMaskRestrictsForwarding) {
  // Diamond: publishers at 0 and 3; subscriber at 2.
  //   0 -(50)- 1 -(50)- 2 ;  3 -(50)- 2 directly.
  Topology topo;
  topo.graph.resize(4);
  topo.graph.add_bidirectional(0, 1, LinkParams{50.0, 10.0});
  topo.graph.add_bidirectional(1, 2, LinkParams{50.0, 10.0});
  topo.graph.add_bidirectional(3, 2, LinkParams{50.0, 10.0});
  topo.publisher_edges = {0, 3};
  topo.subscriber_homes = {2};
  const RoutingFabric fabric(topo, {any_subscription(2)});

  // Broker 1 lies only on publisher 0's path.
  const auto at1 = fabric.match_at(1, make_message(0));
  ASSERT_EQ(at1.size(), 1u);
  EXPECT_TRUE(at1[0]->serves_publisher(0));
  EXPECT_FALSE(at1[0]->serves_publisher(1));

  // Broker 3's own table: it is publisher 1's edge broker.
  const auto at3 = fabric.match_at(3, make_message(1));
  ASSERT_EQ(at3.size(), 1u);
  EXPECT_TRUE(at3[0]->serves_publisher(1));
  EXPECT_FALSE(at3[0]->serves_publisher(0));

  // Home broker serves every publisher.
  const auto at2 = fabric.match_at(2, make_message(0));
  ASSERT_EQ(at2.size(), 1u);
  EXPECT_TRUE(at2[0]->serves_publisher(0));
  EXPECT_TRUE(at2[0]->serves_publisher(1));
  EXPECT_TRUE(at2[0]->is_local());
}

TEST(RoutingFabric, PaperTopologyTablesAreConsistent) {
  Rng rng(5);
  const Topology topo = build_paper_topology(rng);
  std::vector<Subscription> subs;
  for (std::size_t s = 0; s < topo.subscriber_count(); ++s) {
    subs.push_back(any_subscription(topo.subscriber_homes[s],
                                    static_cast<SubscriberId>(s)));
  }
  const RoutingFabric fabric(topo, std::move(subs));

  // Every layer-4 broker carries local rows for its 10 subscribers.
  for (BrokerId b = 16; b < 32; ++b) {
    std::size_t local = 0;
    for (const auto& entry : fabric.table(b).entries()) {
      if (entry.is_local()) ++local;
    }
    EXPECT_EQ(local, 10u) << "broker " << b;
  }

  // Every publisher edge broker can reach all 160 subscribers.
  for (BrokerId b = 0; b < 4; ++b) {
    std::size_t served = 0;
    for (const auto& entry : fabric.table(b).entries()) {
      if (entry.serves_publisher(b)) ++served;
    }
    EXPECT_EQ(served, 160u) << "publisher edge " << b;
  }

  // Remaining-path stats must shrink toward the subscriber: any entry's
  // mean at the publisher edge exceeds the same subscription's mean at the
  // next hop (strictly, by that link's mean).
  const SubscriptionEntry& first = fabric.table(0).entries()[0];
  const ShortestPathTree& tree =
      fabric.tree_toward(first.subscription->home);
  EXPECT_GT(first.path.mean_ms_per_kb,
            tree.stats[first.next_hop].mean_ms_per_kb);
}

TEST(RoutingFabric, SubscriptionOutsideGraphRejected) {
  const Topology topo = line_topology();
  EXPECT_THROW(RoutingFabric(topo, {any_subscription(99)}),
               std::invalid_argument);
}

TEST(RoutingFabric, TooManyPublishersRejected) {
  Topology topo = line_topology();
  topo.publisher_edges.assign(65, 0);
  EXPECT_THROW(RoutingFabric(topo, {any_subscription(2)}),
               std::invalid_argument);
}

TEST(SubscriptionEntry, EffectiveDeadlinePrefersTighterBound) {
  Subscription sub = any_subscription(0);
  sub.allowed_delay = seconds(30.0);
  SubscriptionEntry entry;
  entry.subscription = &sub;

  const Message psd(1, 0, 0.0, 50.0, {}, seconds(10.0));
  EXPECT_DOUBLE_EQ(entry.effective_deadline(psd), seconds(10.0));

  const Message unbounded(1, 0, 0.0, 50.0, {});
  EXPECT_DOUBLE_EQ(entry.effective_deadline(unbounded), seconds(30.0));

  sub.allowed_delay = kNoDeadline;
  EXPECT_DOUBLE_EQ(entry.effective_deadline(psd), seconds(10.0));
  EXPECT_EQ(entry.effective_deadline(unbounded), kNoDeadline);
}

TEST(SubscriptionTable, ToStringMentionsEveryRow) {
  const Topology topo = line_topology();
  const RoutingFabric fabric(topo, {any_subscription(2, 7)});
  const std::string rendered = fabric.table(0).to_string();
  EXPECT_NE(rendered.find("s7"), std::string::npos);
  EXPECT_NE(rendered.find("nb=B1"), std::string::npos);
}

}  // namespace
}  // namespace bdps
