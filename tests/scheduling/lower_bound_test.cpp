// The LB (guaranteed-bandwidth) comparator strategy.
#include <gtest/gtest.h>

#include "experiment/paper.h"
#include "experiment/runner.h"
#include "scheduling/scheduler.h"

namespace bdps {
namespace {

class LowerBoundRig : public ::testing::Test {
 protected:
  std::vector<std::unique_ptr<Subscription>> subs_;
  std::vector<std::unique_ptr<SubscriptionEntry>> entries_;
  SchedulingContext context_{0.0, 2.0, 3750.0};

  const SubscriptionEntry* add_subscription(TimeMs deadline, double price,
                                            PathStats path) {
    auto sub = std::make_unique<Subscription>();
    sub->allowed_delay = deadline;
    sub->price = price;
    auto entry = std::make_unique<SubscriptionEntry>();
    entry->subscription = sub.get();
    entry->path = path;
    subs_.push_back(std::move(sub));
    entries_.push_back(std::move(entry));
    return entries_.back().get();
  }

  QueuedMessage queued(std::vector<const SubscriptionEntry*> targets) {
    return QueuedMessage{
        std::make_shared<Message>(0, 0, 0.0, 50.0, std::vector<Attribute>{}),
        0.0, std::move(targets)};
  }
};

TEST_F(LowerBoundRig, IndicatorUsesPessimisticRate) {
  // Path: 1 broker, mu = 100 ms/KB, sigma = 20: pessimistic rate 140.
  // 50 KB * 140 = 7000 ms + PD.  Deadline 7001 + PD -> feasible at the
  // lower bound; deadline 6999 -> not, even though the *expected* delay
  // (5000 ms) fits comfortably.
  const auto* tight =
      add_subscription(7000.0, 1.0, PathStats{1, 100.0, 400.0});
  const auto* generous =
      add_subscription(7004.0, 1.0, PathStats{1, 100.0, 400.0});
  const Message m(0, 0, 0.0, 50.0, {});
  EXPECT_DOUBLE_EQ(lower_bound_success(*tight, m, 0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(lower_bound_success(*generous, m, 0.0, 2.0), 1.0);
  // The distribution-aware probability sees both as near-certain.
  EXPECT_GT(success_probability(*tight, m, 0.0, 2.0), 0.95);
}

TEST_F(LowerBoundRig, BenefitSumsPricesOfGuaranteedTargets) {
  const auto* sure =
      add_subscription(seconds(60.0), 3.0, PathStats{1, 100.0, 400.0});
  const auto* doomed =
      add_subscription(1000.0, 2.0, PathStats{1, 100.0, 400.0});
  const QueuedMessage q = queued({sure, doomed});
  EXPECT_DOUBLE_EQ(lower_bound_benefit(q, context_), 3.0);
}

TEST_F(LowerBoundRig, CannotRankTwoGuaranteedMessages) {
  // Both messages are guaranteed; EB ranks them by probability mass, LB
  // ties and falls back to queue position.
  const auto* near_deadline =
      add_subscription(9000.0, 1.0, PathStats{1, 100.0, 400.0});
  const auto* far_deadline =
      add_subscription(seconds(60.0), 1.0, PathStats{1, 100.0, 400.0});
  std::vector<QueuedMessage> queue;
  queue.push_back(queued({near_deadline}));
  queue.push_back(queued({far_deadline}));
  const auto lb = make_strategy(StrategyKind::kLowerBound);
  EXPECT_EQ(lb->reference_pick(queue, context_), 0u);  // Tie -> first.
  EXPECT_DOUBLE_EQ(lower_bound_benefit(queue[0], context_), 1.0);
  EXPECT_DOUBLE_EQ(lower_bound_benefit(queue[1], context_), 1.0);
}

TEST(LowerBoundStrategy, FactoryAndParsing) {
  EXPECT_EQ(parse_strategy("LB"), StrategyKind::kLowerBound);
  EXPECT_EQ(strategy_name(StrategyKind::kLowerBound), "LB");
  EXPECT_EQ(make_strategy(StrategyKind::kLowerBound)->name(), "LB");
}

TEST(LowerBoundStrategy, EbOutEarnsLbUnderCongestion) {
  // The §2 claim end-to-end: using the full distribution beats planning
  // against the guaranteed rate.
  double eb_total = 0.0;
  double lb_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    SimConfig eb = paper_base_config(ScenarioKind::kSsd, 12.0,
                                     StrategyKind::kEb, seed);
    eb.workload.duration = minutes(15.0);
    SimConfig lb = eb;
    lb.strategy = StrategyKind::kLowerBound;
    eb_total += run_simulation(eb).earning;
    lb_total += run_simulation(lb).earning;
  }
  EXPECT_GT(eb_total, lb_total);
}

TEST(LowerBoundStrategy, LbStillBeatsFifo) {
  // LB is crude but deadline-aware: it should still clearly beat FIFO.
  SimConfig lb = paper_base_config(ScenarioKind::kSsd, 12.0,
                                   StrategyKind::kLowerBound, 4);
  lb.workload.duration = minutes(15.0);
  SimConfig fifo = lb;
  fifo.strategy = StrategyKind::kFifo;
  EXPECT_GT(run_simulation(lb).earning, run_simulation(fifo).earning);
}

}  // namespace
}  // namespace bdps
