#include "scheduling/success.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math.h"

namespace bdps {
namespace {

// Fixture providing a subscription entry with a controlled remaining path
// and messages with controlled elapsed delay.
class SuccessMath : public ::testing::Test {
 protected:
  Subscription sub_;
  SubscriptionEntry entry_;

  void SetUp() override {
    sub_.subscriber = 0;
    sub_.allowed_delay = seconds(20.0);  // adl = 20 000 ms.
    sub_.price = 2.0;
    entry_.subscription = &sub_;
    entry_.next_hop = 1;
    // Remaining path: 2 downstream brokers, mu = 150 ms/KB, var = 800.
    entry_.path = PathStats{2, 150.0, 800.0};
  }

  // Messages publish at t = 0, so hdl equals the `now` passed to the
  // success functions.
  static Message make_message(double size_kb = 50.0) {
    return Message(1, 0, 0.0, size_kb, {});
  }
};

TEST_F(SuccessMath, ExpectedForwardDelayIsEq4) {
  const Message m = make_message();
  // fdl mean = NN*PD + size*mu = 2*2 + 50*150 = 7504 ms.
  EXPECT_DOUBLE_EQ(expected_forward_delay(entry_, m, 2.0), 7504.0);
}

TEST_F(SuccessMath, SuccessProbabilityIsEq5) {
  const Message m = make_message();
  const TimeMs now = 5000.0;  // hdl = 5000 ms.
  // budget = 20000 - 5000 - 2*2 = 14996; propagation ~ N(7500, (50*sqrt(800))^2).
  const double stddev = 50.0 * std::sqrt(800.0);
  const double expected = normal_cdf((14996.0 - 7500.0) / stddev);
  EXPECT_NEAR(success_probability(entry_, m, now, 2.0), expected, 1e-12);
}

TEST_F(SuccessMath, ExtraDelayShiftsBudget) {
  const Message m = make_message();
  const TimeMs now = 5000.0;
  const double ft = 3750.0;
  const double stddev = 50.0 * std::sqrt(800.0);
  const double expected = normal_cdf((14996.0 - ft - 7500.0) / stddev);
  EXPECT_NEAR(success_probability(entry_, m, now, 2.0, ft), expected, 1e-12);
}

TEST_F(SuccessMath, SuccessDecreasesWithElapsedTime) {
  const Message m = make_message();
  double previous = 1.0;
  for (TimeMs now = 0.0; now <= 30000.0; now += 1000.0) {
    const double p = success_probability(entry_, m, now, 2.0);
    ASSERT_LE(p, previous);
    previous = p;
  }
}

TEST_F(SuccessMath, SuccessIncreasesWithDeadline) {
  const Message m = make_message();
  double previous = 0.0;
  for (double dl = 1.0; dl <= 60.0; dl += 1.0) {
    sub_.allowed_delay = seconds(dl);
    const double p = success_probability(entry_, m, 10000.0, 2.0);
    ASSERT_GE(p, previous);
    previous = p;
  }
}

TEST_F(SuccessMath, LargerMessagesAreLessLikelyToMakeIt) {
  // Non-increasing across the whole sweep (Phi saturates to exactly 1.0
  // for small sizes, so only weak monotonicity holds pointwise) ...
  double previous = 1.0;
  for (double size = 10.0; size <= 200.0; size += 10.0) {
    const Message m = make_message(size);
    const double p = success_probability(entry_, m, 0.0, 2.0);
    ASSERT_LE(p, previous);
    previous = p;
  }
  // ... and strictly smaller once the deadline actually binds.
  const double small = success_probability(entry_, make_message(10.0), 0.0, 2.0);
  const double large =
      success_probability(entry_, make_message(200.0), 0.0, 2.0);
  EXPECT_LT(large, small);
  EXPECT_LT(large, 0.1);
}

TEST_F(SuccessMath, ZeroVariancePathIsDeterministic) {
  entry_.path = PathStats{1, 100.0, 0.0};
  // fdl = 1*2 + 50*100 = 5002 ms exactly.
  const Message m = make_message();
  // At hdl = 14 997: 14997 + 5002 = 19999 <= 20000 -> certain success.
  EXPECT_DOUBLE_EQ(success_probability(entry_, m, 14997.0, 2.0), 1.0);
  // At hdl = 14 999: 20001 > 20000 -> certain failure.
  EXPECT_DOUBLE_EQ(success_probability(entry_, m, 14999.0, 2.0), 0.0);
}

TEST_F(SuccessMath, LocalPathSucceedsUntilDeadline) {
  entry_.path = kLocalPath;
  entry_.next_hop = kNoBroker;
  const Message m = make_message();
  EXPECT_DOUBLE_EQ(success_probability(entry_, m, 19999.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(success_probability(entry_, m, 20001.0, 2.0), 0.0);
}

TEST_F(SuccessMath, UnboundedDeliveryAlwaysSucceeds) {
  sub_.allowed_delay = kNoDeadline;
  const Message m = make_message();  // No message deadline either.
  EXPECT_DOUBLE_EQ(success_probability(entry_, m, 1e9, 2.0), 1.0);
}

TEST_F(SuccessMath, MessageDeadlineGovernsUnderPsd) {
  sub_.allowed_delay = kNoDeadline;
  const Message m(1, 0, 0.0, 50.0, {}, seconds(20.0));
  const double with_sub_bound = [&] {
    sub_.allowed_delay = seconds(20.0);
    const Message unbounded(1, 0, 0.0, 50.0, {});
    return success_probability(entry_, unbounded, 5000.0, 2.0);
  }();
  sub_.allowed_delay = kNoDeadline;
  EXPECT_DOUBLE_EQ(success_probability(entry_, m, 5000.0, 2.0),
                   with_sub_bound);
}

TEST_F(SuccessMath, BenefitTermMultipliesByPrice) {
  const Message m = make_message();
  const double p = success_probability(entry_, m, 5000.0, 2.0);
  EXPECT_DOUBLE_EQ(expected_benefit_term(entry_, m, 5000.0, 2.0), 2.0 * p);
}

TEST_F(SuccessMath, RemainingLifetime) {
  const Message m = make_message();
  EXPECT_DOUBLE_EQ(remaining_lifetime(entry_, m, 5000.0), 15000.0);
  EXPECT_DOUBLE_EQ(remaining_lifetime(entry_, m, 25000.0), -5000.0);
  sub_.allowed_delay = kNoDeadline;
  EXPECT_EQ(remaining_lifetime(entry_, m, 5000.0), kNoDeadline);
}

/// Property sweep: success is a proper probability for a grid of states.
class SuccessBounds
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(SuccessBounds, AlwaysInUnitInterval) {
  const auto [elapsed_s, mu, var] = GetParam();
  Subscription sub;
  sub.allowed_delay = seconds(20.0);
  SubscriptionEntry entry;
  entry.subscription = &sub;
  entry.path = PathStats{3, mu, var};
  const Message m(1, 0, 0.0, 50.0, {});
  const double p =
      success_probability(entry, m, seconds(elapsed_s), 2.0);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SuccessBounds,
    ::testing::Combine(::testing::Values(0.0, 5.0, 19.0, 25.0, 1000.0),
                       ::testing::Values(10.0, 150.0, 400.0),
                       ::testing::Values(0.0, 400.0, 3200.0)));

}  // namespace
}  // namespace bdps
