#include "scheduling/purge.h"

#include <gtest/gtest.h>

namespace bdps {
namespace {

class PurgeRig : public ::testing::Test {
 protected:
  std::vector<std::unique_ptr<Subscription>> subs_;
  std::vector<std::unique_ptr<SubscriptionEntry>> entries_;
  std::vector<QueuedMessage> queue_;
  SchedulingContext context_{/*now=*/0.0, /*processing_delay=*/2.0,
                             /*head_of_line_estimate=*/3750.0};
  PurgePolicy policy_;  // Paper defaults: eps = 0.05%, drop expired.

  const SubscriptionEntry* add_subscription(TimeMs deadline,
                                            PathStats path = {2, 150.0,
                                                              800.0}) {
    auto sub = std::make_unique<Subscription>();
    sub->allowed_delay = deadline;
    sub->price = 1.0;
    auto entry = std::make_unique<SubscriptionEntry>();
    entry->subscription = sub.get();
    entry->path = path;
    subs_.push_back(std::move(sub));
    entries_.push_back(std::move(entry));
    return entries_.back().get();
  }

  void enqueue(TimeMs age, std::vector<const SubscriptionEntry*> targets) {
    auto message = std::make_shared<Message>(
        static_cast<MessageId>(queue_.size()), 0, context_.now - age, 50.0,
        std::vector<Attribute>{});
    queue_.push_back(
        QueuedMessage{std::move(message), context_.now, std::move(targets)});
  }
};

TEST_F(PurgeRig, ExpiredMessageIsDropped) {
  const auto* s = add_subscription(seconds(10.0));
  enqueue(seconds(11.0), {s});
  const PurgeStats stats = purge_queue(queue_, context_, policy_);
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.hopeless, 0u);
  EXPECT_TRUE(queue_.empty());
}

TEST_F(PurgeRig, FreshMessageSurvives) {
  const auto* s = add_subscription(seconds(30.0));
  enqueue(seconds(1.0), {s});
  const PurgeStats stats = purge_queue(queue_, context_, policy_);
  EXPECT_EQ(stats.expired + stats.hopeless, 0u);
  EXPECT_EQ(queue_.size(), 1u);
}

TEST_F(PurgeRig, HopelessButNotExpiredIsDroppedByEq11) {
  // Deadline 10 s, but the remaining path needs ~7.5 s +/- 1.4 s and 9.5 s
  // have already elapsed: not expired, yet success is ~Phi(-5) << 0.05%.
  const auto* s = add_subscription(seconds(10.0));
  enqueue(seconds(9.5), {s});
  const PurgeStats stats = purge_queue(queue_, context_, policy_);
  EXPECT_EQ(stats.expired, 0u);
  EXPECT_EQ(stats.hopeless, 1u);
  EXPECT_TRUE(queue_.empty());
}

TEST_F(PurgeRig, EpsilonZeroDisablesProbabilisticPurge) {
  const auto* s = add_subscription(seconds(10.0));
  enqueue(seconds(9.5), {s});
  policy_.epsilon = 0.0;
  const PurgeStats stats = purge_queue(queue_, context_, policy_);
  EXPECT_EQ(stats.hopeless, 0u);
  EXPECT_EQ(queue_.size(), 1u);  // Still not expired, so it stays.
}

TEST_F(PurgeRig, DropExpiredFlagControlsExpiredRule) {
  const auto* s = add_subscription(seconds(10.0));
  enqueue(seconds(11.0), {s});
  policy_.drop_expired = false;
  policy_.epsilon = 0.0;
  EXPECT_EQ(purge_queue(queue_, context_, policy_).expired, 0u);
  EXPECT_EQ(queue_.size(), 1u);
}

TEST_F(PurgeRig, OneLiveTargetKeepsTheMessage) {
  // Eq. 11 requires *all* subscriptions hopeless before deletion.
  const auto* dead = add_subscription(seconds(10.0));
  const auto* alive = add_subscription(seconds(60.0));
  enqueue(seconds(11.0), {dead, alive});
  const PurgeStats stats = purge_queue(queue_, context_, policy_);
  EXPECT_EQ(stats.expired + stats.hopeless, 0u);
  EXPECT_EQ(queue_.size(), 1u);
}

TEST_F(PurgeRig, StableOrderOfSurvivors) {
  const auto* s = add_subscription(seconds(60.0));
  const auto* dead = add_subscription(seconds(5.0));
  enqueue(seconds(1.0), {s});
  enqueue(seconds(6.0), {dead});
  enqueue(seconds(2.0), {s});
  purge_queue(queue_, context_, policy_);
  ASSERT_EQ(queue_.size(), 2u);
  EXPECT_EQ(queue_[0].message->id(), 0);
  EXPECT_EQ(queue_[1].message->id(), 2);
}

TEST_F(PurgeRig, ShouldPurgeAgreesWithPurgeQueue) {
  const auto* s = add_subscription(seconds(10.0));
  enqueue(seconds(11.0), {s});
  enqueue(seconds(1.0), {s});
  EXPECT_TRUE(should_purge(queue_[0], context_, policy_));
  EXPECT_FALSE(should_purge(queue_[1], context_, policy_));
}

TEST_F(PurgeRig, UnboundedTargetIsNeverPurged) {
  const auto* s = add_subscription(kNoDeadline);
  enqueue(seconds(3600.0), {s});
  const PurgeStats stats = purge_queue(queue_, context_, policy_);
  EXPECT_EQ(stats.expired + stats.hopeless, 0u);
  EXPECT_EQ(queue_.size(), 1u);
}

TEST_F(PurgeRig, EmptyTargetListIsNotPurged) {
  // A copy with no targets should not arise, but the purge must not crash
  // or treat vacuous quantification as "all hopeless".
  enqueue(seconds(1.0), {});
  const PurgeStats stats = purge_queue(queue_, context_, policy_);
  EXPECT_EQ(stats.expired + stats.hopeless, 0u);
  EXPECT_EQ(queue_.size(), 1u);
}

TEST_F(PurgeRig, StatsAccumulateAcrossCalls) {
  const auto* s = add_subscription(seconds(10.0));
  enqueue(seconds(11.0), {s});
  PurgeStats total;
  total += purge_queue(queue_, context_, policy_);
  enqueue(seconds(12.0), {s});
  total += purge_queue(queue_, context_, policy_);
  EXPECT_EQ(total.expired, 2u);
}

/// Epsilon sweep: larger thresholds purge strictly more aggressively.
class EpsilonMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonMonotonicity, SurvivorCountDecreasesWithEpsilon) {
  Subscription sub;
  sub.allowed_delay = seconds(10.0);
  sub.price = 1.0;
  SubscriptionEntry entry;
  entry.subscription = &sub;
  entry.path = PathStats{2, 150.0, 800.0};

  auto survivors_at = [&](double epsilon) {
    std::vector<QueuedMessage> queue;
    for (int age_s = 0; age_s <= 10; ++age_s) {
      auto message = std::make_shared<Message>(
          age_s, 0, -seconds(age_s), 50.0, std::vector<Attribute>{});
      queue.push_back(QueuedMessage{std::move(message), 0.0, {&entry}});
    }
    PurgePolicy policy;
    policy.epsilon = epsilon;
    const SchedulingContext context{0.0, 2.0, 3750.0};
    purge_queue(queue, context, policy);
    return queue.size();
  };

  const double epsilon = GetParam();
  EXPECT_LE(survivors_at(epsilon * 10.0), survivors_at(epsilon));
}

INSTANTIATE_TEST_SUITE_P(Sweep, EpsilonMonotonicity,
                         ::testing::Values(1e-5, 5e-4, 1e-2, 5e-2));

}  // namespace
}  // namespace bdps
