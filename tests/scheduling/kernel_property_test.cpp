// Property test for the precomputed scoring kernel (scheduling/kernel.h).
//
// The kernel folds the time-invariant parts of eq. 4–7 into flat
// ScoredTarget rows at enqueue time; this suite re-implements eq. 3–10
// directly (independent of both the kernel AND scheduling/success.cpp) and
// asserts, over randomized queues spanning all six strategies, queue
// depths, and SSD/PSD/both target shapes, that
//
//   * every kernel-backed metric agrees with the reference formula to
//     1e-12 (relative, with an absolute floor), and
//   * every strategy's pick is reference-optimal: the reference score of
//     the kernel's choice equals the reference maximum to the same
//     tolerance (exact ties may legitimately resolve to either index).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "common/random.h"
#include "scheduling/purge.h"
#include "scheduling/scheduler.h"

namespace bdps {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---- Reference implementations, straight from the paper's equations ----

double ref_phi(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

TimeMs ref_deadline(const SubscriptionEntry& e, const Message& m) {
  return std::min(e.subscription->allowed_delay, m.allowed_delay());
}

// success(s, m) of eq. (5) / (7).
double ref_success(const SubscriptionEntry& e, const Message& m, TimeMs now,
                   TimeMs pd, TimeMs extra) {
  const TimeMs deadline = ref_deadline(e, m);
  if (deadline == kInf) return 1.0;
  const TimeMs budget =
      deadline - (now - m.publish_time()) - extra - e.path.hop_brokers * pd;
  const double mean = m.size_kb() * e.path.mean_ms_per_kb;
  const double sd = m.size_kb() * std::sqrt(e.path.variance);
  if (sd <= 0.0) return budget >= mean ? 1.0 : 0.0;
  return ref_phi((budget - mean) / sd);
}

double ref_eb(const QueuedMessage& q, const SchedulingContext& c,
              TimeMs extra = 0.0) {
  double total = 0.0;
  for (const SubscriptionEntry* e : q.targets) {
    total += e->subscription->price *
             ref_success(*e, *q.message, c.now, c.processing_delay, extra);
  }
  return total;
}

double ref_pc(const QueuedMessage& q, const SchedulingContext& c) {
  return ref_eb(q, c) - ref_eb(q, c, c.head_of_line_estimate);
}

double ref_ebpc(const QueuedMessage& q, const SchedulingContext& c,
                double r) {
  return r * ref_eb(q, c) + (1.0 - r) * ref_pc(q, c);
}

double ref_lb(const QueuedMessage& q, const SchedulingContext& c) {
  double total = 0.0;
  for (const SubscriptionEntry* e : q.targets) {
    const TimeMs deadline = ref_deadline(*e, *q.message);
    if (deadline == kInf) {
      total += e->subscription->price;
      continue;
    }
    const TimeMs budget = deadline - (c.now - q.message->publish_time()) -
                          e->path.hop_brokers * c.processing_delay;
    const double pessimistic =
        e->path.mean_ms_per_kb + 2.0 * std::sqrt(e->path.variance);
    if (q.message->size_kb() * pessimistic <= budget) {
      total += e->subscription->price;
    }
  }
  return total;
}

TimeMs ref_rl(const QueuedMessage& q, TimeMs now) {
  double total = 0.0;
  std::size_t bounded = 0;
  for (const SubscriptionEntry* e : q.targets) {
    const TimeMs deadline = ref_deadline(*e, *q.message);
    if (deadline == kInf) continue;
    total += deadline - (now - q.message->publish_time());
    ++bounded;
  }
  if (bounded == 0) return kInf;
  return total / static_cast<double>(bounded);
}

// ---- Randomized rig over SSD / PSD / both target shapes ----

enum class Shape { kSsd, kPsd, kBoth };

struct RandomRig {
  std::vector<std::unique_ptr<Subscription>> subs;
  std::vector<std::unique_ptr<SubscriptionEntry>> entries;
  std::vector<QueuedMessage> queue;
  SchedulingContext context;

  RandomRig(std::uint64_t seed, Shape shape, std::size_t depth) {
    Rng rng(seed);
    context.now = 500000.0 + rng.uniform(0.0, 100000.0);
    context.processing_delay = rng.uniform(0.0, 5.0);
    context.head_of_line_estimate = rng.uniform(0.0, 8000.0);

    for (std::size_t m = 0; m < depth; ++m) {
      // PSD stamps the deadline on the message; occasional no-deadline
      // messages exercise the unbounded path.
      TimeMs message_deadline = kNoDeadline;
      if (shape != Shape::kSsd && rng.uniform_index(8) != 0) {
        message_deadline = seconds(5.0 + rng.uniform(0.0, 55.0));
      }
      auto message = std::make_shared<Message>(
          static_cast<MessageId>(m), 0,
          context.now - rng.uniform(0.0, 40000.0),
          1.0 + rng.uniform(0.0, 100.0), std::vector<Attribute>{},
          message_deadline);
      QueuedMessage queued{message, context.now - rng.uniform(0.0, 1000.0),
                           {}};
      const std::size_t targets = 1 + rng.uniform_index(12);
      for (std::size_t t = 0; t < targets; ++t) {
        auto sub = std::make_unique<Subscription>();
        if (shape != Shape::kPsd && rng.uniform_index(8) != 0) {
          sub->allowed_delay = seconds(5.0 + rng.uniform(0.0, 55.0));
        }
        sub->price =
            shape == Shape::kPsd ? 1.0 : 1.0 + rng.uniform_index(4);
        auto entry = std::make_unique<SubscriptionEntry>();
        entry->subscription = sub.get();
        // Occasional zero-variance (deterministic) remaining paths.
        const double variance =
            rng.uniform_index(10) == 0 ? 0.0 : rng.uniform(100.0, 3000.0);
        entry->path = PathStats{static_cast<int>(rng.uniform_index(5)),
                                rng.uniform(50.0, 300.0), variance};
        queued.targets.push_back(entry.get());
        subs.push_back(std::move(sub));
        entries.push_back(std::move(entry));
      }
      queue.push_back(std::move(queued));
    }
  }
};

double tolerance(double reference) {
  return 1e-12 * std::max(1.0, std::abs(reference));
}

/// Kernel pick must be reference-optimal (ties may pick either index).
void expect_reference_optimal(const Strategy& scheduler,
                              const RandomRig& rig,
                              double (*ref_score)(const QueuedMessage&,
                                                  const SchedulingContext&)) {
  const std::size_t pick = scheduler.reference_pick(rig.queue, rig.context);
  ASSERT_LT(pick, rig.queue.size());
  double best = -kInf;
  for (const QueuedMessage& q : rig.queue) {
    best = std::max(best, ref_score(q, rig.context));
  }
  const double picked = ref_score(rig.queue[pick], rig.context);
  if (picked == best) return;  // Exact agreement (covers the all -inf case).
  EXPECT_NEAR(picked, best, tolerance(best)) << scheduler.name();
}

class KernelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelProperty, MetricsMatchReferenceFormulas) {
  for (const Shape shape : {Shape::kSsd, Shape::kPsd, Shape::kBoth}) {
    for (const std::size_t depth : {1u, 7u, 33u, 96u}) {
      const RandomRig rig(GetParam() * 1000 + depth, shape, depth);
      for (const QueuedMessage& q : rig.queue) {
        const double eb_ref = ref_eb(q, rig.context);
        EXPECT_NEAR(expected_benefit(q, rig.context), eb_ref,
                    tolerance(eb_ref));

        const double ebp_ref =
            ref_eb(q, rig.context, rig.context.head_of_line_estimate);
        EXPECT_NEAR(postponed_benefit(q, rig.context), ebp_ref,
                    tolerance(ebp_ref));

        const double pc_ref = ref_pc(q, rig.context);
        EXPECT_NEAR(postponing_cost(q, rig.context), pc_ref,
                    tolerance(pc_ref));

        for (const double r : {0.0, 0.3, 0.5, 1.0}) {
          const double ebpc_ref = ref_ebpc(q, rig.context, r);
          EXPECT_NEAR(ebpc_metric(q, rig.context, r), ebpc_ref,
                      tolerance(ebpc_ref));
        }

        const double lb_ref = ref_lb(q, rig.context);
        EXPECT_NEAR(lower_bound_benefit(q, rig.context), lb_ref,
                    tolerance(lb_ref));

        const TimeMs rl_ref = ref_rl(q, rig.context.now);
        const TimeMs rl = mean_remaining_lifetime(q, rig.context.now);
        if (rl_ref == kInf) {
          EXPECT_EQ(rl, kNoDeadline);
        } else {
          EXPECT_NEAR(rl, rl_ref, 1e-9 * std::max(1.0, std::abs(rl_ref)));
        }
      }
    }
  }
}

TEST_P(KernelProperty, PicksAreReferenceOptimalForAllSixStrategies) {
  for (const Shape shape : {Shape::kSsd, Shape::kPsd, Shape::kBoth}) {
    for (const std::size_t depth : {1u, 7u, 33u, 96u}) {
      const RandomRig rig(GetParam() * 7777 + depth, shape, depth);

      expect_reference_optimal(
          *make_strategy(StrategyKind::kEb), rig,
          +[](const QueuedMessage& q, const SchedulingContext& c) {
            return ref_eb(q, c);
          });
      expect_reference_optimal(
          *make_strategy(StrategyKind::kPc), rig,
          +[](const QueuedMessage& q, const SchedulingContext& c) {
            return ref_pc(q, c);
          });
      expect_reference_optimal(
          *make_strategy(StrategyKind::kEbpc, 0.5), rig,
          +[](const QueuedMessage& q, const SchedulingContext& c) {
            return ref_ebpc(q, c, 0.5);
          });
      expect_reference_optimal(
          *make_strategy(StrategyKind::kLowerBound), rig,
          +[](const QueuedMessage& q, const SchedulingContext& c) {
            return ref_lb(q, c);
          });
      expect_reference_optimal(
          *make_strategy(StrategyKind::kRemainingLifetime), rig,
          +[](const QueuedMessage& q, const SchedulingContext& c) {
            const TimeMs rl = ref_rl(q, c.now);
            return rl == kInf ? -kInf : -rl;
          });
      expect_reference_optimal(
          *make_strategy(StrategyKind::kFifo), rig,
          +[](const QueuedMessage& q, const SchedulingContext&) {
            return -q.enqueue_time;
          });
    }
  }
}

TEST_P(KernelProperty, PurgeDecisionsMatchReferenceRule) {
  const RandomRig rig(GetParam() * 31, Shape::kBoth, 64);
  const PurgePolicy policy;  // Paper defaults: eps = 0.05%, drop expired.
  for (const QueuedMessage& q : rig.queue) {
    bool all_expired = !q.targets.empty();
    bool all_hopeless = !q.targets.empty();
    for (const SubscriptionEntry* e : q.targets) {
      const TimeMs deadline = ref_deadline(*e, *q.message);
      const TimeMs lifetime =
          deadline == kInf ? kInf
                           : deadline - (rig.context.now -
                                         q.message->publish_time());
      if (lifetime == kInf || lifetime > 0.0) all_expired = false;
      if (ref_success(*e, *q.message, rig.context.now,
                      rig.context.processing_delay, 0.0) >= policy.epsilon) {
        all_hopeless = false;
      }
    }
    EXPECT_EQ(should_purge(q, rig.context, policy),
              all_expired || all_hopeless);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- Targeted edge cases the random rig is unlikely to hit exactly ----

TEST(KernelEdgeCases, DeterministicPathAtExactBoundaryCountsAsSuccess) {
  // Zero-variance path whose budget lands exactly on the mean transfer
  // time: the eq. (5) step function says "delivered" (budget >= mean); the
  // kernel's 0 * inf NaN must resolve the same way.
  Subscription sub;
  sub.allowed_delay = 5000.0 + 2.0 * 2.0;  // size*mu + NN*PD, exactly.
  sub.price = 3.0;
  SubscriptionEntry entry;
  entry.subscription = &sub;
  entry.path = PathStats{2, 100.0, 0.0};
  auto message = std::make_shared<Message>(
      0, 0, 0.0, 50.0, std::vector<Attribute>{});
  const QueuedMessage q{message, 0.0, {&entry}};
  const SchedulingContext context{0.0, 2.0, 0.0};
  EXPECT_DOUBLE_EQ(expected_benefit(q, context), 3.0);
  // One ULP past the deadline the step function drops to zero.
  const SchedulingContext late{std::nextafter(0.0, 1.0) + 1e-9, 2.0, 0.0};
  EXPECT_DOUBLE_EQ(expected_benefit(q, late), 0.0);
}

TEST(KernelEdgeCases, RescoringAfterProcessingDelayChange) {
  // Kernel rows fold NN*PD into slack_const; a context with a different PD
  // must transparently re-fold instead of reusing stale constants.
  Subscription sub;
  sub.allowed_delay = seconds(10.0);  // Keeps Phi off its saturation ends.
  SubscriptionEntry entry;
  entry.subscription = &sub;
  entry.path = PathStats{3, 150.0, 800.0};
  auto message = std::make_shared<Message>(
      0, 0, 0.0, 50.0, std::vector<Attribute>{});
  const QueuedMessage q{message, 0.0, {&entry}};
  const SchedulingContext pd2{1000.0, 2.0, 500.0};
  const SchedulingContext pd50{1000.0, 50.0, 500.0};
  const double with_pd2 = expected_benefit(q, pd2);
  const double with_pd50 = expected_benefit(q, pd50);
  EXPECT_NEAR(with_pd2, ref_eb(q, pd2), tolerance(ref_eb(q, pd2)));
  EXPECT_NEAR(with_pd50, ref_eb(q, pd50), tolerance(ref_eb(q, pd50)));
  EXPECT_GT(with_pd2, with_pd50);  // More PD per hop can only hurt.
}

}  // namespace
}  // namespace bdps
