// Equivalence suite for the stateful Strategy / SchedulerState API.
//
// Contract under test: every SchedulerState pick is identical to the
// stateless reference argmax (Strategy::reference_pick) no matter how the
// queue got into its current shape — across randomized interleavings of
// enqueue, arbitrary removal, purge and tick at advancing (and
// occasionally regressing) clocks, over SSD and PSD target shapes and
// depths 1..4096.  Also pins the parallel per-neighbour Broker::take_next
// to its serial twin: fanning queue dispatch across a thread pool must not
// change a single choice.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "broker/broker.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "scheduling/purge.h"
#include "scheduling/scheduler.h"

namespace bdps {
namespace {

constexpr StrategyKind kAllKinds[] = {
    StrategyKind::kFifo, StrategyKind::kRemainingLifetime, StrategyKind::kEb,
    StrategyKind::kPc,   StrategyKind::kEbpc,              StrategyKind::kLowerBound,
};

enum class Shape { kSsd, kPsd };

/// Pool of rows for the interleaving driver.  Generates messages with
/// SSD-style per-subscription deadlines/prices or PSD-style
/// message-stamped deadlines with unit prices; occasionally no deadline at
/// all, deterministic paths, empty target lists and duplicated payloads
/// (distinct ids, identical scores) to force exact ties.
struct RowFactory {
  std::vector<std::unique_ptr<Subscription>> subs;
  std::vector<std::unique_ptr<SubscriptionEntry>> entries;
  Rng rng;
  Shape shape;
  MessageId next_id = 0;

  RowFactory(std::uint64_t seed, Shape shape_in) : rng(seed), shape(shape_in) {}

  QueuedMessage make_row(TimeMs now) {
    TimeMs message_deadline = kNoDeadline;
    if (shape == Shape::kPsd && rng.uniform_index(8) != 0) {
      message_deadline = seconds(5.0 + rng.uniform(0.0, 55.0));
    }
    auto message = std::make_shared<Message>(
        next_id++, 0, now - rng.uniform(0.0, 40000.0),
        1.0 + rng.uniform(0.0, 100.0), std::vector<Attribute>{},
        message_deadline);
    QueuedMessage queued{std::move(message), now - rng.uniform(0.0, 1000.0),
                         {}};
    const std::size_t targets = rng.uniform_index(6);  // 0..5; 0 = no targets.
    for (std::size_t t = 0; t < targets; ++t) {
      auto sub = std::make_unique<Subscription>();
      if (shape == Shape::kSsd && rng.uniform_index(8) != 0) {
        sub->allowed_delay = seconds(5.0 + rng.uniform(0.0, 55.0));
      }
      sub->price = shape == Shape::kPsd ? 1.0 : 1.0 + rng.uniform_index(4);
      auto entry = std::make_unique<SubscriptionEntry>();
      entry->subscription = sub.get();
      const double variance =
          rng.uniform_index(10) == 0 ? 0.0 : rng.uniform(100.0, 3000.0);
      entry->path = PathStats{static_cast<int>(rng.uniform_index(5)),
                              rng.uniform(50.0, 300.0), variance};
      queued.targets.push_back(entry.get());
      subs.push_back(std::move(sub));
      entries.push_back(std::move(entry));
    }
    return queued;
  }

  /// Same targets and timing as `other`, new id: scores tie exactly, so the
  /// (enqueue_time, id) tie-break decides.
  QueuedMessage duplicate_row(const QueuedMessage& other) {
    const Message& m = *other.message;
    auto message = std::make_shared<Message>(
        next_id++, m.publisher(), m.publish_time(), m.size_kb(),
        std::vector<Attribute>{}, m.allowed_delay());
    QueuedMessage queued{std::move(message), other.enqueue_time,
                         other.targets};
    return queued;
  }
};

/// Drives one (strategy, shape) pair through a randomized op stream,
/// checking the stateful pick against the reference argmax after every
/// mutation batch.
void run_interleaving(StrategyKind kind, double weight, Shape shape,
                      std::uint64_t seed, std::size_t max_depth,
                      std::size_t ops) {
  const Strategy strategy(kind, weight);
  RowFactory factory(seed, shape);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);

  std::vector<QueuedMessage> queue;
  const std::unique_ptr<SchedulerState> state = strategy.make_state(&queue);
  PurgePolicy policy;  // Paper defaults: eps = 0.05%, drop expired.

  TimeMs now = 500000.0;
  for (std::size_t op = 0; op < ops; ++op) {
    now += rng.uniform(0.0, 2000.0);
    if (rng.uniform_index(16) == 0) now -= rng.uniform(0.0, 5000.0);
    const SchedulingContext context{now, rng.uniform(0.0, 5.0),
                                    rng.uniform(0.0, 8000.0)};
    state->on_tick(context);

    switch (rng.uniform_index(4)) {
      case 0:
      case 1: {  // Enqueue (occasionally an exact-tie duplicate).
        if (queue.size() >= max_depth) break;
        QueuedMessage row = !queue.empty() && rng.uniform_index(6) == 0
                                ? factory.duplicate_row(
                                      queue[rng.uniform_index(queue.size())])
                                : factory.make_row(now);
        queue.push_back(std::move(row));
        state->on_enqueue(queue.size() - 1);
        break;
      }
      case 2: {  // Arbitrary removal (losses, dedup, external drops).
        if (queue.empty()) break;
        const std::size_t victim = rng.uniform_index(queue.size());
        state->on_remove(victim);
        take_at(queue, victim);
        break;
      }
      default: {  // The OutputQueue purge scan, hook for hook.
        for (std::size_t i = 0; i < queue.size();) {
          if (classify_purge(queue[i], context, policy) ==
              PurgeVerdict::kKeep) {
            ++i;
            continue;
          }
          state->on_remove(i);
          take_at(queue, i);
        }
        break;
      }
    }

    if (queue.empty()) continue;
    const std::size_t got = state->pick(context);
    const std::size_t want = strategy.reference_pick(queue, context);
    ASSERT_EQ(got, want)
        << strategy.name() << " depth=" << queue.size() << " op=" << op
        << " now=" << now;
  }
}

class SchedulerStateEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerStateEquivalence, MatchesReferenceAcrossInterleavings) {
  for (const StrategyKind kind : kAllKinds) {
    for (const Shape shape : {Shape::kSsd, Shape::kPsd}) {
      run_interleaving(kind, 0.5, shape, GetParam() * 31 + 7, 64, 300);
    }
  }
}

TEST_P(SchedulerStateEquivalence, EbpcWeightsCoverTheEndpoints) {
  for (const double weight : {0.0, 0.3, 1.0}) {
    run_interleaving(StrategyKind::kEbpc, weight, Shape::kSsd,
                     GetParam() * 131 + 11, 48, 200);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerStateEquivalence,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(SchedulerStateEquivalence, PdChangeInvalidatesCachedBounds) {
  // Regression: EB depends on PD through slack_const = adl + publish_time -
  // NN_p*PD - size*mu_p, so *lowering* PD raises a multi-hop row's score
  // and a bound cached under the old PD is no longer an upper bound.  Row B
  // (4 remaining hops, slightly looser deadline) loses to row A at PD = 5
  // but must win once PD drops to 0; a state that only invalidates on
  // clock regression returns the stale pick here.
  const Strategy strategy(StrategyKind::kEb);
  std::vector<std::unique_ptr<Subscription>> subs;
  std::vector<std::unique_ptr<SubscriptionEntry>> entries;
  std::vector<QueuedMessage> queue;
  const auto state = strategy.make_state(&queue);

  const auto add_row = [&](MessageId id, TimeMs deadline, int hops) {
    auto sub = std::make_unique<Subscription>();
    sub->allowed_delay = deadline;
    sub->price = 1.0;
    auto entry = std::make_unique<SubscriptionEntry>();
    entry->subscription = sub.get();
    entry->path = PathStats{hops, 150.0, 800.0};
    auto message = std::make_shared<Message>(id, 0, 0.0, 50.0,
                                             std::vector<Attribute>{});
    queue.push_back(QueuedMessage{std::move(message), 0.0, {entry.get()}});
    subs.push_back(std::move(sub));
    entries.push_back(std::move(entry));
    state->on_enqueue(queue.size() - 1);
  };
  add_row(0, seconds(30.0), 0);
  add_row(1, seconds(30.01), 4);

  const SchedulingContext before{23000.0, 5.0, 0.0};
  state->on_tick(before);
  EXPECT_EQ(state->pick(before), strategy.reference_pick(queue, before));

  const SchedulingContext after{23001.0, 0.0, 0.0};
  state->on_tick(after);
  EXPECT_EQ(state->pick(after), strategy.reference_pick(queue, after));
  EXPECT_EQ(strategy.reference_pick(queue, after), 1u);
}

TEST(SchedulerStateEquivalence, DeepQueuesMatchReference) {
  // Depth sweep 1..4096: build up in bulk, then spot-check picks while
  // draining a slice.  The reference rescan is O(depth · targets), so deep
  // depths compare a handful of picks rather than a full drain.
  for (const StrategyKind kind :
       {StrategyKind::kEbpc, StrategyKind::kRemainingLifetime}) {
    for (const std::size_t depth : {1u, 33u, 512u, 4096u}) {
      const Strategy strategy(kind, 0.5);
      RowFactory factory(depth * 17 + 3, Shape::kSsd);
      std::vector<QueuedMessage> queue;
      const auto state = strategy.make_state(&queue);
      TimeMs now = 500000.0;
      queue.reserve(depth);
      for (std::size_t i = 0; i < depth; ++i) {
        queue.push_back(factory.make_row(now));
        state->on_enqueue(queue.size() - 1);
      }
      for (int round = 0; round < 6 && !queue.empty(); ++round) {
        now += 500.0;
        const SchedulingContext context{now, 2.0, 3750.0};
        const std::size_t got = state->pick(context);
        ASSERT_EQ(got, strategy.reference_pick(queue, context))
            << strategy.name() << " depth=" << depth << " round=" << round;
        state->on_remove(got);
        take_at(queue, got);
      }
    }
  }
}

// ---- Parallel per-neighbour dispatch determinism ---------------------------

/// Star around broker 0 with `arms` downstream neighbours, one subscriber
/// behind each, deadlines tight enough that purges fire mid-run.
struct WideStarRig {
  Topology topo;
  std::vector<Subscription> subs;
  std::unique_ptr<RoutingFabric> fabric;
  Strategy strategy;

  WideStarRig(std::size_t arms, StrategyKind kind)
      : strategy(kind, 0.5) {
    topo.graph.resize(arms + 1);
    for (std::size_t a = 1; a <= arms; ++a) {
      topo.graph.add_bidirectional(0, static_cast<BrokerId>(a),
                                   LinkParams{50.0 + 5.0 * a, 10.0});
    }
    topo.publisher_edges = {0};
    for (std::size_t a = 1; a <= arms; ++a) {
      topo.subscriber_homes.push_back(static_cast<BrokerId>(a));
      Subscription sub;
      sub.subscriber = static_cast<SubscriberId>(a - 1);
      sub.home = static_cast<BrokerId>(a);
      sub.allowed_delay = seconds(5.0 + 3.0 * a);
      sub.price = 1.0 + (a % 3);
      subs.push_back(sub);
    }
    fabric = std::make_unique<RoutingFabric>(topo, subs);
  }

  /// Feeds the same message stream into a fresh broker.
  Broker make_loaded_broker(std::size_t messages) const {
    Broker broker(0, fabric.get(), &topo.graph, &strategy, 2.0);
    Rng rng(42);
    for (std::size_t m = 0; m < messages; ++m) {
      const TimeMs published = 100.0 * static_cast<double>(m);
      broker.process(
          std::make_shared<Message>(static_cast<MessageId>(m), 0, published,
                                    20.0 + rng.uniform(0.0, 60.0),
                                    std::vector<Attribute>{}),
          published + 2.0);
    }
    return broker;
  }
};

TEST(ParallelDispatch, MatchesSerialTakeNextChoiceForChoice) {
  constexpr std::size_t kArms = 8;
  for (const StrategyKind kind : kAllKinds) {
    const WideStarRig rig(kArms, kind);
    Broker serial = rig.make_loaded_broker(40);
    Broker parallel = rig.make_loaded_broker(40);
    ThreadPool pool(4);

    // take_next works in queue-slot space: arm a = neighbour a = slot a-1.
    std::vector<Broker::QueueSlot> slots;
    for (std::size_t a = 0; a < kArms; ++a) {
      slots.push_back(static_cast<Broker::QueueSlot>(a));
    }
    ASSERT_GE(slots.size(), Broker::kParallelDispatchThreshold);

    std::vector<Broker::Dispatch> serial_out;
    std::vector<Broker::Dispatch> parallel_out;
    PurgePolicy policy;
    // Drain both brokers in lockstep instants; every instant's choices,
    // purge counts and purge id sets must agree.
    for (int round = 0; round < 50; ++round) {
      const TimeMs now = 4000.0 + 400.0 * round;
      serial.take_next(slots, now, policy, serial_out, nullptr, true);
      parallel.take_next(slots, now, policy, parallel_out, &pool, true);
      ASSERT_EQ(serial_out.size(), parallel_out.size());
      for (std::size_t i = 0; i < serial_out.size(); ++i) {
        const Broker::Dispatch& s = serial_out[i];
        const Broker::Dispatch& p = parallel_out[i];
        EXPECT_EQ(s.neighbor, p.neighbor);
        EXPECT_EQ(s.purge.expired, p.purge.expired) << strategy_name(kind);
        EXPECT_EQ(s.purge.hopeless, p.purge.hopeless) << strategy_name(kind);
        EXPECT_EQ(s.purged_ids, p.purged_ids) << strategy_name(kind);
        ASSERT_EQ(s.chosen.has_value(), p.chosen.has_value())
            << strategy_name(kind) << " round=" << round << " arm=" << i;
        if (s.chosen.has_value()) {
          EXPECT_EQ(s.chosen->message->id(), p.chosen->message->id())
              << strategy_name(kind) << " round=" << round << " arm=" << i;
        }
      }
    }
    EXPECT_TRUE(std::all_of(slots.begin(), slots.end(),
                            [&](Broker::QueueSlot slot) {
                              return serial.queue_at(slot).size() ==
                                     parallel.queue_at(slot).size();
                            }));
  }
}

TEST(ParallelDispatch, BelowThresholdBatchesStaySerialAndCorrect) {
  const WideStarRig rig(2, StrategyKind::kEb);
  Broker broker = rig.make_loaded_broker(10);
  ThreadPool pool(2);
  const std::vector<Broker::QueueSlot> slots{0, 1};  // Neighbours 1 and 2.
  std::vector<Broker::Dispatch> out;
  broker.take_next(slots, 500.0, PurgePolicy{}, out, &pool, false);
  ASSERT_EQ(out.size(), 2u);
  for (const Broker::Dispatch& d : out) {
    ASSERT_TRUE(d.chosen.has_value());
  }
}

}  // namespace
}  // namespace bdps
