#include "scheduling/scheduler.h"

#include <gtest/gtest.h>

namespace bdps {
namespace {

/// Test rig: subscriptions with distinct deadlines/prices over a common
/// remaining path, and a queue of messages published at different times.
class StrategyRig : public ::testing::Test {
 protected:
  std::vector<std::unique_ptr<Subscription>> subs_;
  std::vector<std::unique_ptr<SubscriptionEntry>> entries_;
  std::vector<QueuedMessage> queue_;
  SchedulingContext context_{/*now=*/0.0, /*processing_delay=*/2.0,
                             /*head_of_line_estimate=*/3750.0};

  const SubscriptionEntry* add_subscription(TimeMs deadline, double price,
                                            PathStats path = {2, 150.0,
                                                              800.0}) {
    auto sub = std::make_unique<Subscription>();
    sub->subscriber = static_cast<SubscriberId>(subs_.size());
    sub->allowed_delay = deadline;
    sub->price = price;
    auto entry = std::make_unique<SubscriptionEntry>();
    entry->subscription = sub.get();
    entry->next_hop = 1;
    entry->path = path;
    subs_.push_back(std::move(sub));
    entries_.push_back(std::move(entry));
    return entries_.back().get();
  }

  /// Queues a message published `age` ms ago targeting `targets`.
  void enqueue(TimeMs age, std::vector<const SubscriptionEntry*> targets,
               double size_kb = 50.0) {
    auto message = std::make_shared<Message>(
        static_cast<MessageId>(queue_.size()), 0, context_.now - age, size_kb,
        std::vector<Attribute>{});
    queue_.push_back(QueuedMessage{std::move(message), context_.now,
                                   std::move(targets)});
  }
};

TEST_F(StrategyRig, FifoPicksOldestEnqueue) {
  const auto* s = add_subscription(seconds(20.0), 1.0);
  enqueue(0.0, {s});
  enqueue(0.0, {s});
  queue_[0].enqueue_time = 100.0;
  queue_[1].enqueue_time = 50.0;
  const auto fifo = make_strategy(StrategyKind::kFifo);
  EXPECT_EQ(fifo->reference_pick(queue_, context_), 1u);
}

TEST_F(StrategyRig, FifoBreaksTiesByPosition) {
  const auto* s = add_subscription(seconds(20.0), 1.0);
  enqueue(0.0, {s});
  enqueue(0.0, {s});
  const auto fifo = make_strategy(StrategyKind::kFifo);
  EXPECT_EQ(fifo->reference_pick(queue_, context_), 0u);
}

TEST_F(StrategyRig, RlPicksSmallestRemainingLifetime) {
  const auto* tight = add_subscription(seconds(10.0), 1.0);
  const auto* loose = add_subscription(seconds(60.0), 1.0);
  enqueue(0.0, {loose});
  enqueue(0.0, {tight});
  const auto rl = make_strategy(StrategyKind::kRemainingLifetime);
  EXPECT_EQ(rl->reference_pick(queue_, context_), 1u);
}

TEST_F(StrategyRig, RlUsesMeanLifetimeAcrossTargets) {
  const auto* t10 = add_subscription(seconds(10.0), 1.0);
  const auto* t60 = add_subscription(seconds(60.0), 1.0);
  const auto* t30 = add_subscription(seconds(30.0), 1.0);
  enqueue(0.0, {t10, t60});  // Mean lifetime 35 s.
  enqueue(0.0, {t30});       // Mean lifetime 30 s -> more urgent.
  const auto rl = make_strategy(StrategyKind::kRemainingLifetime);
  EXPECT_EQ(rl->reference_pick(queue_, context_), 1u);
  EXPECT_DOUBLE_EQ(mean_remaining_lifetime(queue_[0], context_.now),
                   seconds(35.0));
}

TEST_F(StrategyRig, RlOlderMessageIsMoreUrgent) {
  const auto* s = add_subscription(seconds(30.0), 1.0);
  enqueue(seconds(5.0), {s});
  enqueue(seconds(15.0), {s});  // 15 s already elapsed -> lifetime 15 s.
  const auto rl = make_strategy(StrategyKind::kRemainingLifetime);
  EXPECT_EQ(rl->reference_pick(queue_, context_), 1u);
}

TEST_F(StrategyRig, EbPrefersHigherPrice) {
  const auto* cheap = add_subscription(seconds(30.0), 1.0);
  const auto* pricey = add_subscription(seconds(30.0), 3.0);
  enqueue(0.0, {cheap});
  enqueue(0.0, {pricey});
  const auto eb = make_strategy(StrategyKind::kEb);
  EXPECT_EQ(eb->reference_pick(queue_, context_), 1u);
}

TEST_F(StrategyRig, EbPrefersMoreSubscriptions) {
  const auto* a = add_subscription(seconds(30.0), 1.0);
  const auto* b = add_subscription(seconds(30.0), 1.0);
  const auto* c = add_subscription(seconds(30.0), 1.0);
  enqueue(0.0, {a});
  enqueue(0.0, {b, c});
  const auto eb = make_strategy(StrategyKind::kEb);
  EXPECT_EQ(eb->reference_pick(queue_, context_), 1u);
}

TEST_F(StrategyRig, EbPrefersHigherSuccessProbability) {
  const auto* s = add_subscription(seconds(20.0), 1.0);
  enqueue(seconds(12.0), {s});  // Old message: little budget left.
  enqueue(seconds(1.0), {s});   // Fresh message: likely to make it.
  const auto eb = make_strategy(StrategyKind::kEb);
  EXPECT_EQ(eb->reference_pick(queue_, context_), 1u);
}

TEST_F(StrategyRig, EbIgnoresDoomedMessages) {
  const auto* s = add_subscription(seconds(20.0), 5.0);
  const auto* s2 = add_subscription(seconds(20.0), 1.0);
  enqueue(seconds(19.9), {s});  // Virtually dead despite high price.
  enqueue(seconds(1.0), {s2});
  const auto eb = make_strategy(StrategyKind::kEb);
  EXPECT_EQ(eb->reference_pick(queue_, context_), 1u);
}

TEST_F(StrategyRig, PcPrefersBorderlineOverComfortable) {
  // The comfortable message succeeds with or without postponement (PC ~ 0);
  // the borderline one loses real probability if postponed.
  const auto* comfy = add_subscription(seconds(60.0), 1.0);
  const auto* edge = add_subscription(seconds(12.0), 1.0);
  enqueue(0.0, {comfy});
  enqueue(0.0, {edge});
  const auto pc = make_strategy(StrategyKind::kPc);
  EXPECT_EQ(pc->reference_pick(queue_, context_), 1u);
  EXPECT_GT(postponing_cost(queue_[1], context_),
            postponing_cost(queue_[0], context_));
}

TEST_F(StrategyRig, PcIsEbMinusPostponedEb) {
  const auto* s = add_subscription(seconds(15.0), 2.0);
  enqueue(seconds(2.0), {s});
  const double eb = expected_benefit(queue_[0], context_);
  const double eb_postponed = postponed_benefit(queue_[0], context_);
  EXPECT_DOUBLE_EQ(postponing_cost(queue_[0], context_), eb - eb_postponed);
  EXPECT_GT(eb, eb_postponed);  // FT > 0 can only hurt.
}

TEST_F(StrategyRig, EbpcEndpointsMatchEbAndPc) {
  const auto* a = add_subscription(seconds(12.0), 1.0);
  const auto* b = add_subscription(seconds(60.0), 3.0);
  enqueue(seconds(2.0), {a});
  enqueue(0.0, {b});
  for (const auto& q : queue_) {
    EXPECT_DOUBLE_EQ(ebpc_metric(q, context_, 1.0),
                     expected_benefit(q, context_));
    EXPECT_DOUBLE_EQ(ebpc_metric(q, context_, 0.0),
                     postponing_cost(q, context_));
  }
  const auto ebpc1 = make_strategy(StrategyKind::kEbpc, 1.0);
  const auto eb = make_strategy(StrategyKind::kEb);
  EXPECT_EQ(ebpc1->reference_pick(queue_, context_), eb->reference_pick(queue_, context_));
  const auto ebpc0 = make_strategy(StrategyKind::kEbpc, 0.0);
  const auto pc = make_strategy(StrategyKind::kPc);
  EXPECT_EQ(ebpc0->reference_pick(queue_, context_), pc->reference_pick(queue_, context_));
}

TEST_F(StrategyRig, EbpcWeightOutsideRangeRejected) {
  EXPECT_THROW(make_strategy(StrategyKind::kEbpc, -0.1),
               std::invalid_argument);
  EXPECT_THROW(make_strategy(StrategyKind::kEbpc, 1.5),
               std::invalid_argument);
}

TEST_F(StrategyRig, EmptyTargetsScoreZeroBenefit) {
  enqueue(0.0, {});
  EXPECT_DOUBLE_EQ(expected_benefit(queue_[0], context_), 0.0);
  EXPECT_DOUBLE_EQ(postponing_cost(queue_[0], context_), 0.0);
  EXPECT_EQ(mean_remaining_lifetime(queue_[0], context_.now), kNoDeadline);
}

TEST(StrategyFactory, ParseAndNameRoundTrip) {
  for (const auto kind :
       {StrategyKind::kFifo, StrategyKind::kRemainingLifetime,
        StrategyKind::kEb, StrategyKind::kPc, StrategyKind::kEbpc}) {
    EXPECT_EQ(parse_strategy(strategy_name(kind)), kind);
  }
  EXPECT_EQ(parse_strategy("fifo"), StrategyKind::kFifo);
  EXPECT_THROW(parse_strategy("bogus"), std::invalid_argument);
}

TEST(StrategyFactory, SchedulerNamesAreDistinctive) {
  EXPECT_EQ(make_strategy(StrategyKind::kEb)->name(), "EB");
  EXPECT_EQ(make_strategy(StrategyKind::kFifo)->name(), "FIFO");
  EXPECT_NE(make_strategy(StrategyKind::kEbpc, 0.3)->name().find("0.3"),
            std::string::npos);
}

}  // namespace
}  // namespace bdps
