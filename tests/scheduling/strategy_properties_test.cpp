// Property tests on the scheduling metrics: invariances and continuity
// that must hold for any queue state.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "scheduling/scheduler.h"

namespace bdps {
namespace {

/// Randomised queue generator shared by the property suites.
struct RandomQueue {
  std::vector<std::unique_ptr<Subscription>> subs;
  std::vector<std::unique_ptr<SubscriptionEntry>> entries;
  std::vector<QueuedMessage> queue;
  SchedulingContext context{0.0, 2.0, 3750.0};

  explicit RandomQueue(std::uint64_t seed, double price_scale = 1.0) {
    Rng rng(seed);
    const std::size_t depth = 2 + rng.uniform_index(10);
    for (std::size_t m = 0; m < depth; ++m) {
      auto message = std::make_shared<Message>(
          static_cast<MessageId>(m), 0, -rng.uniform(0.0, 25000.0), 50.0,
          std::vector<Attribute>{});
      QueuedMessage queued{std::move(message), 0.0, {}};
      const std::size_t targets = 1 + rng.uniform_index(5);
      for (std::size_t t = 0; t < targets; ++t) {
        auto sub = std::make_unique<Subscription>();
        sub->allowed_delay = seconds(5.0 + rng.uniform(0.0, 55.0));
        sub->price = (1.0 + rng.uniform_index(3)) * price_scale;
        auto entry = std::make_unique<SubscriptionEntry>();
        entry->subscription = sub.get();
        entry->path =
            PathStats{1 + static_cast<int>(rng.uniform_index(4)),
                      rng.uniform(50.0, 300.0), rng.uniform(100.0, 3000.0)};
        queued.targets.push_back(entry.get());
        subs.push_back(std::move(sub));
        entries.push_back(std::move(entry));
      }
      queue.push_back(std::move(queued));
    }
  }
};

class StrategyProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StrategyProperties, EbPickInvariantUnderPriceScaling) {
  // Scaling every price by the same factor cannot change the argmax.
  const RandomQueue base(GetParam(), 1.0);
  const RandomQueue scaled(GetParam(), 7.5);
  const auto eb = make_strategy(StrategyKind::kEb);
  EXPECT_EQ(eb->reference_pick(base.queue, base.context),
            eb->reference_pick(scaled.queue, scaled.context));
  const auto pc = make_strategy(StrategyKind::kPc);
  EXPECT_EQ(pc->reference_pick(base.queue, base.context),
            pc->reference_pick(scaled.queue, scaled.context));
}

TEST_P(StrategyProperties, MetricsAreFiniteAndBounded) {
  const RandomQueue rig(GetParam());
  double total_price_bound = 0.0;
  for (const auto& q : rig.queue) {
    const double eb = expected_benefit(q, rig.context);
    const double eb_postponed = postponed_benefit(q, rig.context);
    const double pc = postponing_cost(q, rig.context);
    double price_sum = 0.0;
    for (const auto* t : q.targets) price_sum += t->subscription->price;
    total_price_bound += price_sum;

    EXPECT_GE(eb, 0.0);
    EXPECT_LE(eb, price_sum + 1e-9);
    EXPECT_GE(eb_postponed, 0.0);
    EXPECT_LE(eb_postponed, eb + 1e-9)
        << "postponing can never increase the expected benefit";
    EXPECT_GE(pc, -1e-9);
    EXPECT_LE(pc, price_sum + 1e-9);
  }
  EXPECT_GT(total_price_bound, 0.0);
}

TEST_P(StrategyProperties, EbpcInterpolatesItsEndpoints) {
  const RandomQueue rig(GetParam());
  for (const auto& q : rig.queue) {
    const double eb = expected_benefit(q, rig.context);
    const double pc = postponing_cost(q, rig.context);
    for (double r = 0.0; r <= 1.0; r += 0.1) {
      const double ebpc = ebpc_metric(q, rig.context, r);
      EXPECT_NEAR(ebpc, r * eb + (1.0 - r) * pc, 1e-9);
      EXPECT_GE(ebpc, std::min(eb, pc) - 1e-9);
      EXPECT_LE(ebpc, std::max(eb, pc) + 1e-9);
    }
  }
}

TEST_P(StrategyProperties, PickedIndexIsAlwaysValid) {
  const RandomQueue rig(GetParam());
  for (const StrategyKind kind :
       {StrategyKind::kFifo, StrategyKind::kRemainingLifetime,
        StrategyKind::kEb, StrategyKind::kPc, StrategyKind::kEbpc,
        StrategyKind::kLowerBound}) {
    const auto scheduler = make_strategy(kind, 0.5);
    const std::size_t pick = scheduler->reference_pick(rig.queue, rig.context);
    EXPECT_LT(pick, rig.queue.size()) << strategy_name(kind);
  }
}

TEST_P(StrategyProperties, EbChoiceMaximisesTheMetric) {
  const RandomQueue rig(GetParam());
  const auto eb = make_strategy(StrategyKind::kEb);
  const std::size_t pick = eb->reference_pick(rig.queue, rig.context);
  const double best = expected_benefit(rig.queue[pick], rig.context);
  for (const auto& q : rig.queue) {
    EXPECT_LE(expected_benefit(q, rig.context), best + 1e-12);
  }
}

TEST_P(StrategyProperties, FifoIgnoresTheContextEntirely) {
  const RandomQueue rig(GetParam());
  const auto fifo = make_strategy(StrategyKind::kFifo);
  const SchedulingContext shifted{rig.context.now + 1e6, 50.0, 99999.0};
  EXPECT_EQ(fifo->reference_pick(rig.queue, rig.context),
            fifo->reference_pick(rig.queue, shifted));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyProperties,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace bdps
