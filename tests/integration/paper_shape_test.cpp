// Integration tests: the headline qualitative claims of §6.2 must hold on
// shortened (but still congested) versions of the paper's experiments.
// These run the full stack — topology builder, workload, routing fabric,
// simulator, strategies — end to end.
#include <gtest/gtest.h>

#include "experiment/paper.h"
#include "experiment/sweep.h"

namespace bdps {
namespace {

SimResult run_paper(ScenarioKind scenario, StrategyKind strategy, double rate,
                    double window_minutes = 30.0, std::uint64_t seed = 1,
                    double ebpc_weight = 0.5) {
  SimConfig config = paper_base_config(scenario, rate, strategy, seed);
  config.workload.duration = minutes(window_minutes);
  config.ebpc_weight = ebpc_weight;
  return run_simulation(config);
}

TEST(PaperShape, SsdEarningOrderingUnderCongestion) {
  // Paper fig. 5(a) at high rate: EB > PC > {FIFO, RL}.
  const double eb = run_paper(ScenarioKind::kSsd, StrategyKind::kEb, 12).earning;
  const double pc = run_paper(ScenarioKind::kSsd, StrategyKind::kPc, 12).earning;
  const double fifo =
      run_paper(ScenarioKind::kSsd, StrategyKind::kFifo, 12).earning;
  const double rl =
      run_paper(ScenarioKind::kSsd, StrategyKind::kRemainingLifetime, 12)
          .earning;
  EXPECT_GT(eb, pc);
  EXPECT_GT(pc, fifo * 1.5);
  EXPECT_GT(pc, rl * 1.5);
  EXPECT_GT(eb, 2.0 * fifo);  // Paper reports ~5x at rate 15.
}

TEST(PaperShape, PsdDeliveryRateOrderingUnderCongestion) {
  // Paper fig. 6(a) at rate 15: EB ~40%, FIFO ~22%, RL ~12%.
  const double eb =
      run_paper(ScenarioKind::kPsd, StrategyKind::kEb, 15).delivery_rate;
  const double fifo =
      run_paper(ScenarioKind::kPsd, StrategyKind::kFifo, 15).delivery_rate;
  const double rl =
      run_paper(ScenarioKind::kPsd, StrategyKind::kRemainingLifetime, 15)
          .delivery_rate;
  EXPECT_GT(eb, fifo);
  EXPECT_GT(fifo, rl);
  EXPECT_GT(eb, 1.5 * fifo);
  EXPECT_GT(fifo, 1.5 * rl);
}

TEST(PaperShape, TrafficOverheadIsModest) {
  // Paper fig. 6(b): EB carries more traffic than FIFO/RL, but bounded
  // (17% over FIFO, 60% over RL at rate 15).
  const auto eb = run_paper(ScenarioKind::kPsd, StrategyKind::kEb, 15);
  const auto fifo = run_paper(ScenarioKind::kPsd, StrategyKind::kFifo, 15);
  const auto rl =
      run_paper(ScenarioKind::kPsd, StrategyKind::kRemainingLifetime, 15);
  EXPECT_GT(eb.receptions, fifo.receptions);
  EXPECT_LT(eb.receptions, fifo.receptions * 17 / 10);  // < +70%.
  EXPECT_GT(eb.receptions, rl.receptions);
  EXPECT_LT(eb.receptions, rl.receptions * 2);
}

TEST(PaperShape, FifoAndRlCollapseWithLoadWhileEbKeepsEarning) {
  // Paper fig. 5(a): FIFO/RL earnings peak then fall; EB keeps growing.
  const double fifo_mid =
      run_paper(ScenarioKind::kSsd, StrategyKind::kFifo, 4).earning;
  const double fifo_high =
      run_paper(ScenarioKind::kSsd, StrategyKind::kFifo, 15).earning;
  EXPECT_LT(fifo_high, fifo_mid);

  const double eb_mid =
      run_paper(ScenarioKind::kSsd, StrategyKind::kEb, 4).earning;
  const double eb_high =
      run_paper(ScenarioKind::kSsd, StrategyKind::kEb, 15).earning;
  EXPECT_GT(eb_high, eb_mid);
}

TEST(PaperShape, StrategiesMatchAtLowLoad) {
  // Fig. 5(a)/6(a) near rate 1: every strategy performs about the same
  // (queues are empty, so scheduling rarely matters).
  const double eb =
      run_paper(ScenarioKind::kPsd, StrategyKind::kEb, 1).delivery_rate;
  const double fifo =
      run_paper(ScenarioKind::kPsd, StrategyKind::kFifo, 1).delivery_rate;
  EXPECT_NEAR(eb, fifo, 0.05);
}

TEST(PaperShape, EbpcMidWeightsAtLeastMatchPc) {
  // Fig. 4: EBPC(r) dominates PC for moderate-to-high r and approaches EB
  // at r = 1.
  const double pc =
      run_paper(ScenarioKind::kSsd, StrategyKind::kPc, 10).earning;
  const double ebpc_60 = run_paper(ScenarioKind::kSsd, StrategyKind::kEbpc,
                                   10, 30.0, 1, 0.6)
                             .earning;
  EXPECT_GT(ebpc_60, pc);
}

TEST(PaperShape, PurgeIsLoadBearingForEb) {
  // Switching eq. 11 off must not improve EB under congestion (it wastes
  // bandwidth on doomed messages).
  SimConfig with = paper_base_config(ScenarioKind::kPsd, 15.0,
                                     StrategyKind::kEb, 3);
  with.workload.duration = minutes(30.0);
  SimConfig without = with;
  without.purge.epsilon = 0.0;
  without.purge.drop_expired = false;
  const SimResult a = run_simulation(with);
  const SimResult b = run_simulation(without);
  EXPECT_GE(a.delivery_rate, b.delivery_rate * 0.98);
  // And it must actually fire under load.
  EXPECT_GT(a.purged_expired + a.purged_hopeless, 0u);
  EXPECT_EQ(b.purged_expired + b.purged_hopeless, 0u);
}

TEST(PaperShape, ResultsAreSeedRobust) {
  // The EB > FIFO separation is not a fluke of one seed.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const double eb =
        run_paper(ScenarioKind::kSsd, StrategyKind::kEb, 12, 20.0, seed)
            .earning;
    const double fifo =
        run_paper(ScenarioKind::kSsd, StrategyKind::kFifo, 12, 20.0, seed)
            .earning;
    EXPECT_GT(eb, 1.5 * fifo) << "seed " << seed;
  }
}

}  // namespace
}  // namespace bdps
