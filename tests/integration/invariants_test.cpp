// Property suite: invariants that must hold for *any* configuration.
// Sweeps randomised configs (scenario x strategy x topology x extensions)
// and checks conservation laws and metric bounds end to end.
#include <gtest/gtest.h>

#include "experiment/paper.h"
#include "experiment/runner.h"

namespace bdps {
namespace {

/// Derives a pseudo-random but deterministic configuration from a seed.
SimConfig random_config(std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);

  const ScenarioKind scenarios[] = {ScenarioKind::kPsd, ScenarioKind::kSsd,
                                    ScenarioKind::kBoth};
  const StrategyKind strategies[] = {
      StrategyKind::kEb,   StrategyKind::kPc,
      StrategyKind::kEbpc, StrategyKind::kFifo,
      StrategyKind::kRemainingLifetime, StrategyKind::kLowerBound};
  const TopologyKind topologies[] = {
      TopologyKind::kPaper,    TopologyKind::kAcyclic,
      TopologyKind::kRandomMesh, TopologyKind::kRing,
      TopologyKind::kGrid,     TopologyKind::kScaleFree};

  SimConfig config = paper_base_config(
      scenarios[rng.uniform_index(3)], 1.0 + rng.uniform(0.0, 14.0),
      strategies[rng.uniform_index(6)], seed);
  config.ebpc_weight = rng.uniform(0.0, 1.0);
  config.topology = topologies[rng.uniform_index(6)];
  config.broker_count = 8 + rng.uniform_index(24);
  config.publisher_count = 1 + rng.uniform_index(4);
  config.subscriber_count = 8 + rng.uniform_index(60);
  config.grid_rows = 2 + rng.uniform_index(4);
  config.grid_cols = 2 + rng.uniform_index(5);
  config.workload.duration = minutes(2.0 + rng.uniform(0.0, 6.0));
  config.workload.poisson_arrivals = rng.uniform() < 0.5;
  config.multipath = rng.uniform() < 0.3;
  config.online_estimation = rng.uniform() < 0.3;
  config.belief_noise_frac = rng.uniform() < 0.3 ? rng.uniform(0.0, 0.5) : 0.0;
  config.random_link_failures = rng.uniform() < 0.25 ? rng.uniform_index(4) : 0;
  if (rng.uniform() < 0.3) {
    config.true_rate_shape = rng.uniform() < 0.5 ? RateShape::kShiftedGamma
                                                 : RateShape::kLognormal;
  }
  if (rng.uniform() < 0.2) config.purge.epsilon = 0.0;
  return config;
}

class SimulatorInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorInvariants, HoldForRandomisedConfigurations) {
  const SimConfig config = random_config(GetParam());
  const SimResult r = run_simulation(config);

  // Conservation and bounds.
  EXPECT_LE(r.valid_deliveries, r.deliveries);
  EXPECT_LE(r.deliveries, r.total_interested)
      << "duplicate deliveries leaked through";
  EXPECT_GE(r.receptions, r.published)
      << "every published message is received at least by its edge broker";
  EXPECT_GE(r.delivery_rate, 0.0);
  EXPECT_LE(r.delivery_rate, 1.0);
  EXPECT_GE(r.earning, 0.0);
  EXPECT_LE(r.earning, r.potential_earning + 1e-9);
  EXPECT_GE(r.mean_valid_delay_ms, 0.0);

  // Scenario-specific bounds.
  if (config.workload.scenario == ScenarioKind::kPsd) {
    EXPECT_DOUBLE_EQ(r.earning, static_cast<double>(r.valid_deliveries));
  } else {
    EXPECT_GE(r.earning + 1e-9, static_cast<double>(r.valid_deliveries));
    EXPECT_LE(r.earning, 3.0 * static_cast<double>(r.valid_deliveries) + 1e-9);
  }

  // Losses only with failures injected.
  if (config.random_link_failures == 0 && config.link_failures.empty()) {
    EXPECT_EQ(r.lost_copies, 0u);
  }

  // The run drained (or hit the generous horizon).
  EXPECT_LE(r.end_time,
            config.workload.duration + config.drain_grace + 1e-6);

  // Determinism spot check.
  const SimResult again = run_simulation(config);
  EXPECT_EQ(again.receptions, r.receptions);
  EXPECT_DOUBLE_EQ(again.earning, r.earning);
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, SimulatorInvariants,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace bdps
