#include "experiment/runner.h"

#include <gtest/gtest.h>

#include "experiment/paper.h"

namespace bdps {
namespace {

SimConfig quick_config(ScenarioKind scenario, StrategyKind strategy,
                       double rate = 10.0) {
  SimConfig config = paper_base_config(scenario, rate, strategy, 7);
  config.workload.duration = minutes(10.0);  // Keep unit tests quick.
  return config;
}

TEST(Runner, DeterministicForSameSeed) {
  const SimConfig config =
      quick_config(ScenarioKind::kSsd, StrategyKind::kEb);
  const SimResult a = run_simulation(config);
  const SimResult b = run_simulation(config);
  EXPECT_EQ(a.published, b.published);
  EXPECT_EQ(a.receptions, b.receptions);
  EXPECT_EQ(a.valid_deliveries, b.valid_deliveries);
  EXPECT_DOUBLE_EQ(a.earning, b.earning);
  EXPECT_DOUBLE_EQ(a.mean_valid_delay_ms, b.mean_valid_delay_ms);
}

TEST(Runner, DifferentSeedsProduceDifferentRuns) {
  SimConfig config = quick_config(ScenarioKind::kSsd, StrategyKind::kEb);
  const SimResult a = run_simulation(config);
  config.seed = 8;
  const SimResult b = run_simulation(config);
  EXPECT_NE(a.earning, b.earning);
}

TEST(Runner, PublishCountMatchesRateRoughly) {
  const SimConfig config =
      quick_config(ScenarioKind::kPsd, StrategyKind::kFifo, 12.0);
  const SimResult r = run_simulation(config);
  // 4 publishers * 12 msg/min * 10 min = 480 expected (Poisson).
  EXPECT_GT(r.published, 380u);
  EXPECT_LT(r.published, 580u);
}

TEST(Runner, SelectivityNearTwentyFivePercent) {
  const SimConfig config =
      quick_config(ScenarioKind::kPsd, StrategyKind::kFifo);
  const SimResult r = run_simulation(config);
  const double per_message =
      static_cast<double>(r.total_interested) /
      static_cast<double>(r.published) / 160.0;
  EXPECT_GT(per_message, 0.18);
  EXPECT_LT(per_message, 0.32);
}

TEST(Runner, PsdEarningEqualsValidDeliveries) {
  // Under PSD every price is 1, so eq. (2) degenerates to a delivery count.
  const SimConfig config =
      quick_config(ScenarioKind::kPsd, StrategyKind::kEb);
  const SimResult r = run_simulation(config);
  EXPECT_DOUBLE_EQ(r.earning, static_cast<double>(r.valid_deliveries));
}

TEST(Runner, SsdEarningBoundedByPotential) {
  const SimConfig config =
      quick_config(ScenarioKind::kSsd, StrategyKind::kEb);
  const SimResult r = run_simulation(config);
  EXPECT_GT(r.earning, 0.0);
  EXPECT_LE(r.earning, r.potential_earning);
  // Prices are in {1,2,3}: earning must be at least valid_deliveries and at
  // most 3x.
  EXPECT_GE(r.earning, static_cast<double>(r.valid_deliveries));
  EXPECT_LE(r.earning, 3.0 * static_cast<double>(r.valid_deliveries));
}

TEST(Runner, ZeroRatePublishesNothing) {
  SimConfig config = quick_config(ScenarioKind::kPsd, StrategyKind::kEb, 0.0);
  config.workload.poisson_arrivals = false;
  const SimResult r = run_simulation(config);
  EXPECT_EQ(r.published, 0u);
  EXPECT_EQ(r.receptions, 0u);
  EXPECT_DOUBLE_EQ(r.delivery_rate, 0.0);
}

TEST(Runner, DeterministicArrivalsMatchRateExactly) {
  SimConfig config = quick_config(ScenarioKind::kPsd, StrategyKind::kEb, 6.0);
  config.workload.poisson_arrivals = false;
  const SimResult r = run_simulation(config);
  EXPECT_EQ(r.published, 4u * 6u * 10u);  // publishers * rate * minutes.
}

TEST(Runner, BeliefNoiseDegradesEb) {
  SimConfig exact = quick_config(ScenarioKind::kSsd, StrategyKind::kEb, 15.0);
  SimConfig noisy = exact;
  noisy.belief_noise_frac = 0.9;  // Grossly wrong link beliefs.
  const SimResult a = run_simulation(exact);
  const SimResult b = run_simulation(noisy);
  // Wildly wrong beliefs mis-route and mis-score; earning should not
  // improve.  (Equality is possible in principle, so allow a small slack.)
  EXPECT_LE(b.earning, a.earning * 1.05);
}

TEST(Runner, AllTopologiesRunToCompletion) {
  for (const TopologyKind kind :
       {TopologyKind::kPaper, TopologyKind::kAcyclic,
        TopologyKind::kRandomMesh, TopologyKind::kDumbbell,
        TopologyKind::kRing, TopologyKind::kGrid,
        TopologyKind::kScaleFree}) {
    SimConfig config = quick_config(ScenarioKind::kSsd, StrategyKind::kEb, 3.0);
    config.topology = kind;
    config.broker_count = 16;
    config.subscriber_count = 24;
    config.publisher_count = 2;
    config.workload.duration = minutes(5.0);
    const SimResult r = run_simulation(config);
    EXPECT_GT(r.published, 0u) << topology_name(kind);
    EXPECT_GT(r.receptions, 0u) << topology_name(kind);
  }
}

TEST(Runner, StricterEpsilonPurgesMore) {
  SimConfig base = quick_config(ScenarioKind::kPsd, StrategyKind::kFifo, 15.0);
  SimConfig aggressive = base;
  aggressive.purge.epsilon = 0.05;  // 5% vs the default 0.05%.
  const SimResult a = run_simulation(base);
  const SimResult b = run_simulation(aggressive);
  EXPECT_GE(b.purged_hopeless, a.purged_hopeless);
}

TEST(Runner, HigherLoadLowersDeliveryRate) {
  const SimResult light = run_simulation(
      quick_config(ScenarioKind::kPsd, StrategyKind::kFifo, 2.0));
  const SimResult heavy = run_simulation(
      quick_config(ScenarioKind::kPsd, StrategyKind::kFifo, 15.0));
  EXPECT_GT(light.delivery_rate, heavy.delivery_rate);
}

}  // namespace
}  // namespace bdps
