// Tests for the extension features: the combined PSD+SSD scenario,
// online link estimation and multi-path routing.
#include <gtest/gtest.h>

#include "experiment/paper.h"
#include "experiment/runner.h"
#include "workload/generator.h"

namespace bdps {
namespace {

SimConfig quick(ScenarioKind scenario, StrategyKind strategy, double rate,
                std::uint64_t seed = 5) {
  SimConfig config = paper_base_config(scenario, rate, strategy, seed);
  config.workload.duration = minutes(10.0);
  return config;
}

TEST(BothScenario, MessagesAndSubscriptionsBothCarryBounds) {
  Rng rng(1);
  WorkloadConfig config;
  config.scenario = ScenarioKind::kBoth;
  config.duration = minutes(10.0);
  const auto messages = generate_messages(rng, config, 2);
  ASSERT_FALSE(messages.empty());
  for (const auto& m : messages) {
    EXPECT_TRUE(m->has_allowed_delay());
  }
  Rng topo_rng(2);
  const Topology topo = build_paper_topology(topo_rng);
  const auto subs = generate_subscriptions(rng, config, topo);
  for (const auto& sub : subs) {
    EXPECT_NE(sub.allowed_delay, kNoDeadline);
    EXPECT_GE(sub.price, 1.0);
  }
}

TEST(BothScenario, TighterBoundGovernsEndToEnd) {
  // BOTH must earn no more than SSD alone under identical conditions: every
  // (message, subscriber) deadline is min(psd, ssd) <= ssd.
  const SimResult both =
      run_simulation(quick(ScenarioKind::kBoth, StrategyKind::kEb, 8.0));
  const SimResult ssd =
      run_simulation(quick(ScenarioKind::kSsd, StrategyKind::kEb, 8.0));
  EXPECT_GT(both.earning, 0.0);
  EXPECT_LE(both.earning, ssd.earning * 1.02);  // Small slack: different RNG draws.
}

TEST(BothScenario, ParsesAndNames) {
  EXPECT_EQ(parse_scenario("BOTH"), ScenarioKind::kBoth);
  EXPECT_EQ(scenario_name(ScenarioKind::kBoth), "BOTH");
}

TEST(OnlineEstimation, RecoversFromWrongBeliefs) {
  // Grossly wrong initial beliefs + online estimation should do at least as
  // well as wrong beliefs alone (usually strictly better).
  SimConfig wrong = quick(ScenarioKind::kSsd, StrategyKind::kEb, 12.0);
  wrong.belief_noise_frac = 0.9;
  SimConfig corrected = wrong;
  corrected.online_estimation = true;
  const SimResult stuck = run_simulation(wrong);
  const SimResult learned = run_simulation(corrected);
  EXPECT_GE(learned.earning, stuck.earning * 0.95);
}

TEST(OnlineEstimation, EstimatorsConvergeInsideTheSimulator) {
  // Drive a tiny deterministic overlay and inspect the per-link estimator.
  Topology topo;
  topo.graph.resize(2);
  topo.graph.add_bidirectional(0, 1, LinkParams{100.0, 0.0});
  topo.publisher_edges = {0};
  topo.subscriber_homes = {1};
  Subscription sub;
  sub.subscriber = 0;
  sub.home = 1;
  sub.allowed_delay = seconds(60.0);
  const RoutingFabric fabric(topo, {sub});
  const auto scheduler = make_strategy(StrategyKind::kEb);
  SimulatorOptions options;
  options.online_estimation = true;
  options.estimator_min_samples = 2;
  Simulator sim(&topo, &topo.graph, &fabric, scheduler.get(), options,
                Rng(1));
  for (MessageId i = 0; i < 10; ++i) {
    sim.schedule_publish(std::make_shared<Message>(
        i, 0, i * 10000.0, 50.0, std::vector<Attribute>{}));
  }
  sim.run();
  const RateEstimator* est = sim.estimator(topo.graph.edge_id(0, 1));
  ASSERT_NE(est, nullptr);
  EXPECT_EQ(est->sample_count(), 10u);
  // Zero-variance link: every observation is exactly 100 ms/KB.
  EXPECT_NEAR(est->samples().mean(), 100.0, 1e-9);
  // Never carried a send.
  EXPECT_EQ(sim.estimator(topo.graph.edge_id(1, 0)), nullptr);
}

TEST(Multipath, TablesGainAlternateEntries) {
  // Diamond: 0 -> {1, 2} -> 3.  Single-path uses one branch; multi-path
  // must install both at broker 0.
  Topology topo;
  topo.graph.resize(4);
  topo.graph.add_bidirectional(0, 1, LinkParams{50.0, 10.0});
  topo.graph.add_bidirectional(0, 2, LinkParams{60.0, 10.0});
  topo.graph.add_bidirectional(1, 3, LinkParams{50.0, 10.0});
  topo.graph.add_bidirectional(2, 3, LinkParams{60.0, 10.0});
  topo.publisher_edges = {0};
  topo.subscriber_homes = {3};
  Subscription sub;
  sub.subscriber = 0;
  sub.home = 3;
  sub.allowed_delay = seconds(60.0);

  const RoutingFabric single(topo, {sub});
  EXPECT_EQ(single.table(0).size(), 1u);

  FabricOptions options;
  options.multipath = true;
  const RoutingFabric multi(topo, {sub}, options);
  ASSERT_EQ(multi.table(0).size(), 2u);
  const auto& entries = multi.table(0).entries();
  EXPECT_NE(entries[0].next_hop, entries[1].next_hop);
  // Primary is the cheaper branch (via 1: 100 total), alternate via 2 (120).
  EXPECT_EQ(entries[0].next_hop, 1);
  EXPECT_EQ(entries[1].next_hop, 2);
  EXPECT_DOUBLE_EQ(entries[0].path.mean_ms_per_kb, 100.0);
  EXPECT_DOUBLE_EQ(entries[1].path.mean_ms_per_kb, 120.0);
}

TEST(Multipath, DuplicateSuppressionDeliversOncePerSubscriber) {
  SimConfig config = quick(ScenarioKind::kPsd, StrategyKind::kEb, 4.0);
  config.multipath = true;
  const SimResult multi = run_simulation(config);
  // Deliveries never exceed offered pairs: duplicates were suppressed.
  EXPECT_LE(multi.deliveries, multi.total_interested);

  SimConfig single_config = config;
  single_config.multipath = false;
  const SimResult single = run_simulation(single_config);
  // The redundant copies show up as extra receptions.
  EXPECT_GT(multi.receptions, single.receptions);
  // At light load the delivery rates stay comparable.
  EXPECT_NEAR(multi.delivery_rate, single.delivery_rate, 0.12);
}

TEST(Multipath, CongestionMakesRedundancyExpensive) {
  SimConfig config = quick(ScenarioKind::kPsd, StrategyKind::kEb, 15.0);
  SimConfig multi_config = config;
  multi_config.multipath = true;
  const SimResult single = run_simulation(config);
  const SimResult multi = run_simulation(multi_config);
  EXPECT_GT(multi.receptions, single.receptions);
  // Duplicates compete with first copies for bandwidth; multi-path must not
  // beat single-path by any meaningful margin under congestion.
  EXPECT_LT(multi.delivery_rate, single.delivery_rate + 0.05);
}

}  // namespace
}  // namespace bdps
