#include "experiment/sweep.h"

#include <gtest/gtest.h>

#include "experiment/paper.h"

namespace bdps {
namespace {

SimConfig tiny_config(std::uint64_t seed) {
  SimConfig config =
      paper_base_config(ScenarioKind::kSsd, 6.0, StrategyKind::kEb, seed);
  config.workload.duration = minutes(4.0);
  return config;
}

TEST(Sweep, BatchMatchesIndividualRuns) {
  std::vector<SimConfig> configs = {tiny_config(1), tiny_config(2),
                                    tiny_config(3)};
  const auto batch = run_batch(configs);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const SimResult solo = run_simulation(configs[i]);
    EXPECT_EQ(batch[i].receptions, solo.receptions);
    EXPECT_DOUBLE_EQ(batch[i].earning, solo.earning);
  }
}

TEST(Sweep, BatchWithThreadPoolMatchesSerial) {
  std::vector<SimConfig> configs;
  for (std::uint64_t s = 1; s <= 6; ++s) configs.push_back(tiny_config(s));
  ThreadPool pool(3);
  const auto parallel = run_batch(configs, &pool);
  const auto serial = run_batch(configs);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel[i].earning, serial[i].earning);
    EXPECT_EQ(parallel[i].valid_deliveries, serial[i].valid_deliveries);
  }
}

TEST(Sweep, ReplicatedUsesConsecutiveSeeds) {
  const ReplicatedResult summary = run_replicated(tiny_config(10), 3);
  EXPECT_EQ(summary.replications, 3u);
  EXPECT_EQ(summary.earning.count(), 3u);

  // Reconstruct by hand.
  Welford manual;
  for (std::uint64_t s = 10; s < 13; ++s) {
    manual.add(run_simulation(tiny_config(s)).earning);
  }
  EXPECT_DOUBLE_EQ(summary.earning.mean(), manual.mean());
  EXPECT_DOUBLE_EQ(summary.earning.sample_stddev(), manual.sample_stddev());
}

TEST(Sweep, ReplicationVarianceIsFinite) {
  const ReplicatedResult summary = run_replicated(tiny_config(20), 4);
  EXPECT_GT(summary.earning.mean(), 0.0);
  EXPECT_GE(summary.earning.sample_stddev(), 0.0);
  EXPECT_GT(summary.receptions.mean(), 0.0);
  EXPECT_GT(summary.delivery_rate.mean(), 0.0);
  EXPECT_LE(summary.delivery_rate.max(), 1.0);
}

TEST(PaperDefaults, MatchSection61) {
  const SimConfig config =
      paper_base_config(ScenarioKind::kSsd, 10.0, StrategyKind::kEb);
  EXPECT_DOUBLE_EQ(config.processing_delay, 2.0);
  EXPECT_DOUBLE_EQ(config.purge.epsilon, 0.0005);
  EXPECT_DOUBLE_EQ(config.workload.message_size_kb, 50.0);
  EXPECT_DOUBLE_EQ(config.workload.duration, hours(2.0));
  EXPECT_EQ(config.topology, TopologyKind::kPaper);
  EXPECT_EQ(config.paper_topology.layer4, 16u);
  ASSERT_EQ(config.workload.ssd_tiers.size(), 3u);
  EXPECT_DOUBLE_EQ(config.workload.ssd_tiers[0].allowed_delay, seconds(10.0));
  EXPECT_DOUBLE_EQ(config.workload.ssd_tiers[0].price, 3.0);
}

TEST(PaperDefaults, SweepAxes) {
  EXPECT_EQ(paper_publishing_rates().size(), 6u);
  EXPECT_EQ(paper_ebpc_weights().size(), 11u);
  EXPECT_DOUBLE_EQ(paper_ebpc_weights().front(), 0.0);
  EXPECT_DOUBLE_EQ(paper_ebpc_weights().back(), 1.0);
  EXPECT_EQ(paper_comparison_strategies().size(), 4u);
}

}  // namespace
}  // namespace bdps
