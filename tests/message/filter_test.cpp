#include "message/filter.h"

#include <gtest/gtest.h>

namespace bdps {
namespace {

Message make_message(std::vector<Attribute> head) {
  return Message(1, 0, 0.0, 50.0, std::move(head));
}

TEST(Predicate, AllNumericOperators) {
  const Message m = make_message({{"A1", Value(5.0)}});
  auto check = [&](Op op, double operand, bool expected) {
    const Predicate p{"A1", op, Value(operand), Value()};
    EXPECT_EQ(p.matches(m), expected)
        << op_name(op) << " " << operand;
  };
  check(Op::kLt, 6.0, true);
  check(Op::kLt, 5.0, false);
  check(Op::kLe, 5.0, true);
  check(Op::kLe, 4.9, false);
  check(Op::kGt, 4.0, true);
  check(Op::kGt, 5.0, false);
  check(Op::kGe, 5.0, true);
  check(Op::kGe, 5.1, false);
  check(Op::kEq, 5.0, true);
  check(Op::kEq, 5.1, false);
  check(Op::kNe, 5.1, true);
  check(Op::kNe, 5.0, false);
}

TEST(Predicate, RangeOperator) {
  const Message m = make_message({{"A1", Value(5.0)}});
  const Predicate inside{"A1", Op::kInRange, Value(4.0), Value(6.0)};
  const Predicate boundary_lo{"A1", Op::kInRange, Value(5.0), Value(6.0)};
  const Predicate boundary_hi{"A1", Op::kInRange, Value(4.0), Value(5.0)};
  const Predicate outside{"A1", Op::kInRange, Value(5.5), Value(6.0)};
  EXPECT_TRUE(inside.matches(m));
  EXPECT_TRUE(boundary_lo.matches(m));
  EXPECT_TRUE(boundary_hi.matches(m));
  EXPECT_FALSE(outside.matches(m));
}

TEST(Predicate, MissingAttributeNeverMatches) {
  const Message m = make_message({{"A1", Value(5.0)}});
  const Predicate p{"A2", Op::kLt, Value(100.0), Value()};
  EXPECT_FALSE(p.matches(m));
}

TEST(Predicate, MixedTypeComparisonNeverMatches) {
  const Message m = make_message({{"A1", Value("text")}});
  const Predicate lt{"A1", Op::kLt, Value(5.0), Value()};
  const Predicate ne{"A1", Op::kNe, Value(5.0), Value()};
  EXPECT_FALSE(lt.matches(m));
  EXPECT_FALSE(ne.matches(m));  // Incomparable stays conservative.
}

TEST(Predicate, StringEquality) {
  const Message m = make_message({{"sym", Value("HK.0005")}});
  const Predicate eq{"sym", Op::kEq, Value("HK.0005"), Value()};
  const Predicate ne{"sym", Op::kEq, Value("HK.0006"), Value()};
  EXPECT_TRUE(eq.matches(m));
  EXPECT_FALSE(ne.matches(m));
}

TEST(Filter, ConjunctionRequiresAllPredicates) {
  Filter f;
  f.where("A1", Op::kLt, Value(5.0)).where("A2", Op::kLt, Value(5.0));
  EXPECT_TRUE(f.matches(make_message({{"A1", Value(1.0)}, {"A2", Value(2.0)}})));
  EXPECT_FALSE(
      f.matches(make_message({{"A1", Value(1.0)}, {"A2", Value(7.0)}})));
  EXPECT_FALSE(
      f.matches(make_message({{"A1", Value(9.0)}, {"A2", Value(2.0)}})));
}

TEST(Filter, EmptyFilterIsWildcard) {
  const Filter f;
  EXPECT_TRUE(f.matches(make_message({{"A1", Value(1.0)}})));
  EXPECT_TRUE(f.matches(make_message({})));
  EXPECT_TRUE(f.empty());
}

TEST(Filter, PaperWorkloadShape) {
  // "A1 < x1 && A2 < x2" with x = 5 has 25% selectivity over U(0,10)^2;
  // check the four quadrants.
  Filter f;
  f.where("A1", Op::kLt, Value(5.0)).where("A2", Op::kLt, Value(5.0));
  EXPECT_TRUE(f.matches(make_message({{"A1", Value(2.0)}, {"A2", Value(2.0)}})));
  EXPECT_FALSE(
      f.matches(make_message({{"A1", Value(7.0)}, {"A2", Value(2.0)}})));
  EXPECT_FALSE(
      f.matches(make_message({{"A1", Value(2.0)}, {"A2", Value(7.0)}})));
  EXPECT_FALSE(
      f.matches(make_message({{"A1", Value(7.0)}, {"A2", Value(7.0)}})));
}

TEST(Filter, ToStringReadable) {
  Filter f;
  f.where("A1", Op::kLt, Value(5.0)).where("sym", Op::kEq, Value("X"));
  EXPECT_EQ(f.to_string(), "A1 < 5 && sym == \"X\"");
  EXPECT_EQ(Filter{}.to_string(), "<any>");
}

TEST(Message, FindAndElapsed) {
  const Message m(9, 2, 1000.0, 50.0, {{"A1", Value(3.0)}}, seconds(10));
  ASSERT_NE(m.find("A1"), nullptr);
  EXPECT_EQ(m.find("nope"), nullptr);
  EXPECT_DOUBLE_EQ(m.elapsed(4000.0), 3000.0);
  EXPECT_TRUE(m.has_allowed_delay());
  EXPECT_DOUBLE_EQ(m.allowed_delay(), 10000.0);
}

TEST(Message, NoDeadlineByDefault) {
  const Message m(1, 0, 0.0, 50.0, {});
  EXPECT_FALSE(m.has_allowed_delay());
  EXPECT_EQ(m.allowed_delay(), kNoDeadline);
}

}  // namespace
}  // namespace bdps
