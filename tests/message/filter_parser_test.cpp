#include "message/filter_parser.h"

#include <gtest/gtest.h>

namespace bdps {
namespace {

Message make_message(std::vector<Attribute> head) {
  return Message(1, 0, 0.0, 50.0, std::move(head));
}

TEST(FilterParser, SinglePredicate) {
  const Filter f = parse_filter("A1 < 5");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f.predicates()[0].attribute, "A1");
  EXPECT_EQ(f.predicates()[0].op, Op::kLt);
  EXPECT_TRUE(f.matches(make_message({{"A1", Value(4.0)}})));
  EXPECT_FALSE(f.matches(make_message({{"A1", Value(6.0)}})));
}

TEST(FilterParser, Conjunction) {
  const Filter f = parse_filter("A1<5 && A2 >= 2.5");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_TRUE(
      f.matches(make_message({{"A1", Value(1.0)}, {"A2", Value(2.5)}})));
  EXPECT_FALSE(
      f.matches(make_message({{"A1", Value(1.0)}, {"A2", Value(2.0)}})));
}

TEST(FilterParser, StringLiteral) {
  const Filter f = parse_filter("sym == \"HK.0005\"");
  EXPECT_TRUE(f.matches(make_message({{"sym", Value("HK.0005")}})));
  EXPECT_FALSE(f.matches(make_message({{"sym", Value("HK.0006")}})));
}

TEST(FilterParser, RangeSyntax) {
  const Filter f = parse_filter("A1 in [2, 4]");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f.predicates()[0].op, Op::kInRange);
  EXPECT_TRUE(f.matches(make_message({{"A1", Value(3.0)}})));
  EXPECT_TRUE(f.matches(make_message({{"A1", Value(2.0)}})));
  EXPECT_FALSE(f.matches(make_message({{"A1", Value(5.0)}})));
}

TEST(FilterParser, EmptyTextIsWildcard) {
  EXPECT_TRUE(parse_filter("").empty());
  EXPECT_TRUE(parse_filter("   ").empty());
}

TEST(FilterParser, IntegerVsDoubleLiterals) {
  const Filter fi = parse_filter("n == 3");
  EXPECT_TRUE(fi.matches(make_message({{"n", Value(3)}})));
  const Filter fd = parse_filter("x == 3.5");
  EXPECT_TRUE(fd.matches(make_message({{"x", Value(3.5)}})));
}

TEST(FilterParser, AttributeNamedInPrefixIsNotKeyword) {
  // "inx" starts with the keyword "in" but is an ordinary identifier.
  const Filter f = parse_filter("inx < 5");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f.predicates()[0].attribute, "inx");
}

class FilterParserErrors : public ::testing::TestWithParam<const char*> {};

TEST_P(FilterParserErrors, MalformedInputThrows) {
  EXPECT_THROW(parse_filter(GetParam()), FilterParseError);
}

INSTANTIATE_TEST_SUITE_P(Cases, FilterParserErrors,
                         ::testing::Values("A1 <", "A1", "< 5", "A1 ~ 5",
                                           "A1 < 5 &&", "A1 < 5 A2 < 3",
                                           "A1 in [1, 2", "A1 in 1, 2]",
                                           "A1 == \"unterminated",
                                           "A1 < abc"));

TEST(FilterParser, ErrorCarriesPosition) {
  try {
    parse_filter("A1 < 5 && A2 ~ 3");
    FAIL() << "expected FilterParseError";
  } catch (const FilterParseError& e) {
    EXPECT_GE(e.position(), 13u);
  }
}

class FilterParserRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(FilterParserRoundTrip, ParseOfToStringMatchesSameMessages) {
  const Filter original = parse_filter(GetParam());
  // to_string uses "in [a, b]" and "==" spellings the parser accepts, so a
  // reparse must behave identically.
  const Filter reparsed = parse_filter(original.to_string());
  for (double a1 = 0.0; a1 <= 10.0; a1 += 0.5) {
    for (double a2 = 0.0; a2 <= 10.0; a2 += 0.5) {
      const Message m =
          make_message({{"A1", Value(a1)}, {"A2", Value(a2)}});
      ASSERT_EQ(original.matches(m), reparsed.matches(m))
          << GetParam() << " at (" << a1 << "," << a2 << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, FilterParserRoundTrip,
                         ::testing::Values("A1 < 5", "A1 <= 5 && A2 > 2",
                                           "A1 in [2, 8] && A2 != 4",
                                           "A1 >= 9.5 && A2 < 0.5"));

}  // namespace
}  // namespace bdps
