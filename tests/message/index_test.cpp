#include "message/index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace bdps {
namespace {

Message make_message(std::vector<Attribute> head) {
  return Message(1, 0, 0.0, 50.0, std::move(head));
}

/// match() reports each id once in unspecified order; compare as sets.
std::vector<SubscriptionIndex::EntryId> sorted_match(
    const SubscriptionIndex& index, const Message& m) {
  std::vector<SubscriptionIndex::EntryId> ids = index.match(m);
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Brute-force reference: evaluate every registered filter directly.
std::vector<SubscriptionIndex::EntryId> brute_force(
    const std::vector<Filter>& filters, const Message& m) {
  std::vector<SubscriptionIndex::EntryId> out;
  for (std::size_t i = 0; i < filters.size(); ++i) {
    if (filters[i].matches(m)) out.push_back(i);
  }
  return out;
}

TEST(SubscriptionIndex, BasicLessThan) {
  SubscriptionIndex index;
  Filter f;
  f.where("A1", Op::kLt, Value(5.0));
  index.add(f);
  EXPECT_EQ(index.match(make_message({{"A1", Value(4.0)}})).size(), 1u);
  EXPECT_TRUE(index.match(make_message({{"A1", Value(5.0)}})).empty());
  EXPECT_TRUE(index.match(make_message({{"A1", Value(6.0)}})).empty());
}

TEST(SubscriptionIndex, InclusiveBoundaries) {
  SubscriptionIndex index;
  Filter le;
  le.where("A1", Op::kLe, Value(5.0));
  Filter ge;
  ge.where("A1", Op::kGe, Value(5.0));
  index.add(le);
  index.add(ge);
  const auto at_boundary = index.match(make_message({{"A1", Value(5.0)}}));
  EXPECT_EQ(at_boundary.size(), 2u);  // Both <=5 and >=5 match exactly 5.
}

TEST(SubscriptionIndex, WildcardMatchesEverything) {
  SubscriptionIndex index;
  index.add(Filter{});
  EXPECT_EQ(index.match(make_message({})).size(), 1u);
  EXPECT_EQ(index.match(make_message({{"A9", Value(1.0)}})).size(), 1u);
}

TEST(SubscriptionIndex, StringEquality) {
  SubscriptionIndex index;
  Filter f;
  f.where("sym", Op::kEq, Value("GOOG"));
  index.add(f);
  EXPECT_EQ(index.match(make_message({{"sym", Value("GOOG")}})).size(), 1u);
  EXPECT_TRUE(index.match(make_message({{"sym", Value("MSFT")}})).empty());
  EXPECT_TRUE(index.match(make_message({{"sym", Value(1.0)}})).empty());
}

TEST(SubscriptionIndex, NonIndexableOpsFallBackCorrectly) {
  SubscriptionIndex index;
  Filter ne;
  ne.where("A1", Op::kNe, Value(3.0));
  Filter range;
  range.where("A1", Op::kInRange, Value(2.0), Value(4.0));
  index.add(ne);
  index.add(range);
  const auto at2 = index.match(make_message({{"A1", Value(2.0)}}));
  ASSERT_EQ(at2.size(), 2u);  // ne(3) and in[2,4] both match 2.
  const auto at3 = index.match(make_message({{"A1", Value(3.0)}}));
  ASSERT_EQ(at3.size(), 1u);  // Only the range.
  EXPECT_EQ(at3[0], 1u);
}

TEST(SubscriptionIndex, MixedIndexableAndDirectPredicates) {
  SubscriptionIndex index;
  Filter f;
  f.where("A1", Op::kLt, Value(5.0)).where("A2", Op::kNe, Value(1.0));
  index.add(f);
  EXPECT_EQ(
      index.match(make_message({{"A1", Value(2.0)}, {"A2", Value(3.0)}}))
          .size(),
      1u);
  EXPECT_TRUE(
      index.match(make_message({{"A1", Value(2.0)}, {"A2", Value(1.0)}}))
          .empty());
  EXPECT_TRUE(
      index.match(make_message({{"A1", Value(7.0)}, {"A2", Value(3.0)}}))
          .empty());
}

TEST(SubscriptionIndex, MatchesEntryEvaluatesOneFilter) {
  SubscriptionIndex index;
  Filter f;
  f.where("A1", Op::kGt, Value(5.0));
  const auto id = index.add(f);
  EXPECT_TRUE(index.matches_entry(id, make_message({{"A1", Value(6.0)}})));
  EXPECT_FALSE(index.matches_entry(id, make_message({{"A1", Value(4.0)}})));
}

TEST(SubscriptionIndex, IncrementalAddsKeepMatching) {
  SubscriptionIndex index;
  std::vector<Filter> filters;
  Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    Filter f;
    f.where("A1", Op::kLt, Value(rng.uniform(0.0, 10.0)));
    filters.push_back(f);
    index.add(f);
    // After each add the whole index must agree with brute force.
    const Message probe = make_message({{"A1", Value(rng.uniform(0.0, 10.0))}});
    ASSERT_EQ(sorted_match(index, probe), brute_force(filters, probe));
  }
}

/// Property test: the index is exactly equivalent to brute force on random
/// workloads mixing every operator.
class IndexEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexEquivalence, MatchesBruteForceOnRandomWorkload) {
  Rng rng(GetParam());
  SubscriptionIndex index;
  std::vector<Filter> filters;

  const Op ops[] = {Op::kLt, Op::kLe, Op::kGt, Op::kGe,
                    Op::kEq, Op::kNe, Op::kInRange};
  const char* attrs[] = {"A1", "A2", "A3"};

  for (int i = 0; i < 120; ++i) {
    Filter f;
    const int predicates = 1 + static_cast<int>(rng.uniform_index(3));
    for (int p = 0; p < predicates; ++p) {
      const Op op = ops[rng.uniform_index(7)];
      const char* attr = attrs[rng.uniform_index(3)];
      // Coarse grid so equality predicates actually hit sometimes.
      const double a = std::floor(rng.uniform(0.0, 10.0));
      if (op == Op::kInRange) {
        f.where(attr, op, Value(a), Value(a + 1.0 + rng.uniform_index(3)));
      } else {
        f.where(attr, op, Value(a));
      }
    }
    filters.push_back(f);
    index.add(f);
  }
  // A few wildcards too.
  for (int i = 0; i < 3; ++i) {
    filters.push_back(Filter{});
    index.add(Filter{});
  }

  for (int probe = 0; probe < 300; ++probe) {
    const Message m = make_message(
        {{"A1", Value(std::floor(rng.uniform(0.0, 10.0)))},
         {"A2", Value(std::floor(rng.uniform(0.0, 10.0)))},
         {"A3", Value(std::floor(rng.uniform(0.0, 10.0)))}});
    ASSERT_EQ(sorted_match(index, m), brute_force(filters, m))
        << "probe " << probe;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 99u, 1234u,
                                           0xdeadbeefu));

}  // namespace
}  // namespace bdps
