#include "message/value.h"

#include <gtest/gtest.h>

namespace bdps {
namespace {

TEST(Value, NumericComparison) {
  EXPECT_EQ(Value(1.0).compare(Value(2.0)), -1);
  EXPECT_EQ(Value(2.0).compare(Value(1.0)), 1);
  EXPECT_EQ(Value(2.0).compare(Value(2.0)), 0);
}

TEST(Value, IntAndDoubleCompareNumerically) {
  EXPECT_EQ(Value(2).compare(Value(2.0)), 0);
  EXPECT_EQ(Value(1).compare(Value(1.5)), -1);
  EXPECT_EQ(Value(3).compare(Value(2.5)), 1);
}

TEST(Value, StringComparison) {
  EXPECT_EQ(Value("abc").compare(Value("abd")), -1);
  EXPECT_EQ(Value("b").compare(Value("a")), 1);
  EXPECT_EQ(Value("x").compare(Value("x")), 0);
}

TEST(Value, MixedTypesAreIncomparable) {
  EXPECT_EQ(Value("1").compare(Value(1.0)), Value::kIncomparable);
  EXPECT_EQ(Value(1.0).compare(Value("1")), Value::kIncomparable);
}

TEST(Value, TypePredicates) {
  EXPECT_TRUE(Value(1.5).is_number());
  EXPECT_TRUE(Value(3).is_number());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_FALSE(Value("s").is_number());
}

TEST(Value, AsDoubleConversions) {
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Value(7).as_double(), 7.0);
  EXPECT_DOUBLE_EQ(Value("text").as_double(), 0.0);  // Defined fallback.
}

TEST(Value, AsStringOnlyForStrings) {
  EXPECT_EQ(Value("hello").as_string(), "hello");
  EXPECT_EQ(Value(1.0).as_string(), "");
}

TEST(Value, EqualityOperator) {
  EXPECT_TRUE(Value(3.0) == Value(3));
  EXPECT_FALSE(Value(3.0) == Value(4.0));
  EXPECT_FALSE(Value("3") == Value(3.0));
}

TEST(Value, ToStringRendering) {
  EXPECT_EQ(Value(5).to_string(), "5");
  EXPECT_EQ(Value("hi").to_string(), "\"hi\"");
  EXPECT_EQ(Value(2.5).to_string(), "2.5");
}

TEST(Value, DefaultIsNumericZero) {
  const Value v;
  EXPECT_TRUE(v.is_number());
  EXPECT_DOUBLE_EQ(v.as_double(), 0.0);
}

}  // namespace
}  // namespace bdps
