// OR-query support: the disjunction parser, the index's add_disjunct and
// end-to-end delivery of OR subscriptions.
#include <gtest/gtest.h>

#include "message/filter_parser.h"
#include "message/index.h"
#include "sim/simulator.h"

namespace bdps {
namespace {

Message probe(double a1, double a2 = 0.0) {
  return Message(1, 0, 0.0, 50.0, {{"A1", Value(a1)}, {"A2", Value(a2)}});
}

TEST(ParseDisjunction, SingleConjunctBehavesLikeParseFilter) {
  const auto filters = parse_disjunction("A1 < 5 && A2 < 5");
  ASSERT_EQ(filters.size(), 1u);
  EXPECT_TRUE(filters[0].matches(probe(1.0, 1.0)));
  EXPECT_FALSE(filters[0].matches(probe(6.0, 1.0)));
}

TEST(ParseDisjunction, SplitsOnTopLevelOr) {
  const auto filters = parse_disjunction("A1 < 2 && A2 < 2 || A1 > 8");
  ASSERT_EQ(filters.size(), 2u);
  EXPECT_EQ(filters[0].size(), 2u);
  EXPECT_EQ(filters[1].size(), 1u);
}

TEST(ParseDisjunction, QuoteAwareSplitting) {
  const auto filters = parse_disjunction("sym == \"a||b\" || A1 > 5");
  ASSERT_EQ(filters.size(), 2u);
  Message m(1, 0, 0.0, 50.0, {{"sym", Value("a||b")}});
  EXPECT_TRUE(filters[0].matches(m));
}

TEST(ParseDisjunction, MalformedDisjunctThrows) {
  EXPECT_THROW(parse_disjunction("A1 < 2 || "), FilterParseError);
  EXPECT_THROW(parse_disjunction("|| A1 < 2"), FilterParseError);
  EXPECT_THROW(parse_disjunction("A1 < || A2 < 2"), FilterParseError);
  // The entirely-empty query remains the explicit wildcard spelling.
  EXPECT_EQ(parse_disjunction("").size(), 1u);
  EXPECT_TRUE(parse_disjunction("")[0].empty());
}

TEST(IndexDisjuncts, IdMatchesWhenAnyDisjunctFires) {
  SubscriptionIndex index;
  Filter low;
  low.where("A1", Op::kLt, Value(2.0));
  Filter high;
  high.where("A1", Op::kGt, Value(8.0));
  const auto id = index.add(low);
  index.add_disjunct(id, high);
  EXPECT_EQ(index.size(), 1u);

  EXPECT_EQ(index.match(probe(1.0)).size(), 1u);
  EXPECT_EQ(index.match(probe(9.0)).size(), 1u);
  EXPECT_TRUE(index.match(probe(5.0)).empty());
}

TEST(IndexDisjuncts, OverlappingDisjunctsReportIdOnce) {
  SubscriptionIndex index;
  Filter a;
  a.where("A1", Op::kLt, Value(6.0));
  Filter b;
  b.where("A1", Op::kLt, Value(8.0));
  const auto id = index.add(a);
  index.add_disjunct(id, b);
  const auto hits = index.match(probe(5.0));  // Both disjuncts fire.
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], id);
}

TEST(IndexDisjuncts, InterleavedIdsStayDistinct) {
  SubscriptionIndex index;
  Filter f0;
  f0.where("A1", Op::kLt, Value(2.0));
  Filter f1;
  f1.where("A1", Op::kGt, Value(8.0));
  const auto id0 = index.add(f0);
  const auto id1 = index.add(f1);
  Filter f0b;
  f0b.where("A1", Op::kInRange, Value(4.0), Value(5.0));
  index.add_disjunct(id0, f0b);

  EXPECT_EQ(index.match(probe(4.5)), std::vector<std::size_t>{id0});
  EXPECT_EQ(index.match(probe(9.0)), std::vector<std::size_t>{id1});
  EXPECT_TRUE(index.matches_entry(id0, probe(1.0)));
  EXPECT_TRUE(index.matches_entry(id0, probe(4.5)));
  EXPECT_FALSE(index.matches_entry(id0, probe(7.0)));
}

TEST(OrSubscription, MatchesAcrossDisjuncts) {
  Subscription sub;
  Filter f;
  f.where("A1", Op::kLt, Value(2.0));
  sub.filter = f;
  Filter g;
  g.where("A1", Op::kGt, Value(8.0));
  sub.or_filters.push_back(g);
  EXPECT_TRUE(sub.matches(probe(1.0)));
  EXPECT_TRUE(sub.matches(probe(9.0)));
  EXPECT_FALSE(sub.matches(probe(5.0)));
}

TEST(OrSubscription, DeliversThroughTheFullStack) {
  // Line 0 - 1 - 2 with an OR subscriber at 2: both "cold" (< 2) and
  // "hot" (> 8) messages must be delivered exactly once, middle ones not
  // at all.
  Topology topo;
  topo.graph.resize(3);
  topo.graph.add_bidirectional(0, 1, LinkParams{100.0, 0.0});
  topo.graph.add_bidirectional(1, 2, LinkParams{100.0, 0.0});
  topo.publisher_edges = {0};
  topo.subscriber_homes = {2};

  Subscription sub;
  sub.subscriber = 0;
  sub.home = 2;
  sub.allowed_delay = seconds(60.0);
  const auto disjuncts = parse_disjunction("A1 < 2 || A1 > 8");
  sub.filter = disjuncts[0];
  sub.or_filters.assign(disjuncts.begin() + 1, disjuncts.end());

  const RoutingFabric fabric(topo, {sub});
  const auto scheduler = make_strategy(StrategyKind::kEb);
  Simulator sim(&topo, &topo.graph, &fabric, scheduler.get(),
                SimulatorOptions{}, Rng(1));

  const double values[] = {1.0, 5.0, 9.0};
  for (MessageId i = 0; i < 3; ++i) {
    sim.schedule_publish(std::make_shared<Message>(
        i, 0, i * 20000.0, 50.0,
        std::vector<Attribute>{{"A1", Value(values[i])}}));
  }
  sim.run();
  const Collector& c = sim.collector();
  EXPECT_EQ(c.total_interested(), 2u);  // Cold + hot.
  EXPECT_EQ(c.deliveries(), 2u);
  EXPECT_EQ(c.valid_deliveries(), 2u);
}

}  // namespace
}  // namespace bdps
