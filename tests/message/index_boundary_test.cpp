// Pins the matching engines' equivalence *boundary*: heads with repeated
// attribute names.  Filter::matches resolves an attribute to its first
// occurrence (Message::find), while the counting index bumps a predicate
// counter for every occurrence — so on a duplicate-name head the two can
// legitimately disagree.  Unique names per head is therefore a documented
// contract (message/message.h): the workload generators assert it on every
// construction path that feeds the index, and this test pins the exact
// divergence so a future "fix" on either side trips loudly instead of
// silently moving the boundary.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "matching/sharded_index.h"
#include "message/index.h"

namespace bdps {
namespace {

/// NOTE: deliberately violates the unique-names contract; never feed such
/// heads through Message paths that assert head_has_unique_attribute_names.
Message duplicate_head_message() {
  return Message(1, 0, 0.0, 1.0, {{"A", Value(1.0)}, {"A", Value(5.0)}});
}

TEST(HeadContract, DetectorFlagsDuplicates) {
  EXPECT_TRUE(head_has_unique_attribute_names({}));
  EXPECT_TRUE(head_has_unique_attribute_names({{"A", Value(1.0)}}));
  EXPECT_TRUE(head_has_unique_attribute_names(
      {{"A", Value(1.0)}, {"B", Value(1.0)}}));
  EXPECT_FALSE(head_has_unique_attribute_names(
      {{"A", Value(1.0)}, {"B", Value(2.0)}, {"A", Value(5.0)}}));
}

TEST(HeadContract, IndexAndBruteForceDivergeOnDuplicateNames) {
  const Message dup = duplicate_head_message();

  // Divergence 1: a predicate satisfied by the *second* occurrence.  The
  // index counts every occurrence, so A > 2 fires on the 5.0; direct
  // evaluation resolves A to the first occurrence (1.0) and fails.
  {
    Filter f;
    f.where("A", Op::kGt, Value(2.0));
    SubscriptionIndex index;
    index.add(f);
    EXPECT_EQ(index.match(dup).size(), 1u);  // Counting pass: matches.
    EXPECT_FALSE(f.matches(dup));            // First occurrence: fails.
  }

  // Divergence 2 (the sharper one): a filter contradictory under
  // first-occurrence semantics — A < 2 && A > 2 — is satisfied by the
  // counting pass with each conjunct served by a *different* occurrence.
  {
    Filter f;
    f.where("A", Op::kLt, Value(2.0)).where("A", Op::kGt, Value(2.0));
    SubscriptionIndex index;
    index.add(f);
    EXPECT_EQ(index.match(dup).size(), 1u);
    EXPECT_FALSE(f.matches(dup));
  }

  // On a unique-name head the engines agree, including at the boundary
  // value — the contract is only about duplicates.
  {
    const Message ok(1, 0, 0.0, 1.0, {{"A", Value(5.0)}});
    Filter f;
    f.where("A", Op::kGe, Value(5.0));
    SubscriptionIndex index;
    index.add(f);
    EXPECT_EQ(index.match(ok).size(), 1u);
    EXPECT_TRUE(f.matches(ok));
  }
}

TEST(HeadContract, ShardedFabricInheritsTheSameBoundary) {
  // The sharded fabric evaluates covered members and fallback rows with
  // Filter::matches but roots with the counting index; on duplicate-name
  // heads those can differ, which is exactly why the contract bars such
  // heads rather than asking engines to reconcile them.  On unique-name
  // heads both paths agree (the fuzz suite); here we only pin that the
  // fabric's root path shows the same every-occurrence semantics as the
  // raw index.
  matching::MatchFabricOptions options;
  options.covering = false;
  options.rebuild_min = 1;  // Second add folds the shard into a core.
  matching::MatchFabric fabric(options);
  matching::MatchScratch scratch;
  Filter f;
  f.where("A", Op::kGt, Value(2.0));
  fabric.add(f);
  fabric.add(f);

  const Message dup = duplicate_head_message();
  const auto& got = fabric.match(dup, scratch);
  EXPECT_EQ(got, (std::vector<matching::RowId>{0, 1}));  // Counting semantics.
  EXPECT_FALSE(f.matches(dup));
}

}  // namespace
}  // namespace bdps
