// Ablation: sensitivity to link-rate variance.
//
// The paper fixes sigma = 20 ms/KB on every link.  This sweep scales sigma
// from 0 (deterministic links) to 40 ms/KB and reports SSD earning for EB
// and FIFO at rate 12.  Two effects compete: more variance blurs the
// success estimate (hurting EB's discrimination) and makes real delays
// heavier-tailed (hurting everyone).
#include "bench_util.h"

using namespace bdps;

int main(int argc, char** argv) {
  const auto opt = bdps_bench::BenchOptions::parse(argc, argv);
  bdps_bench::banner("Ablation: link stddev sweep (SSD, rate 12)", opt);
  ThreadPool pool(opt.threads);

  TextTable table({"sigma(ms/KB)", "EB earn(k)", "PC earn(k)",
                   "FIFO earn(k)"});
  for (const double sigma : {0.0, 5.0, 10.0, 20.0, 30.0, 40.0}) {
    std::vector<std::string> row = {TextTable::fixed(sigma, 0)};
    for (const StrategyKind strategy :
         {StrategyKind::kEb, StrategyKind::kPc, StrategyKind::kFifo}) {
      SimConfig config =
          paper_base_config(ScenarioKind::kSsd, 12.0, strategy, opt.seed);
      opt.apply(config);
      config.paper_topology.link_stddev_ms_per_kb = sigma;
      const ReplicatedResult r =
          run_replicated(config, opt.replications, &pool);
      row.push_back(TextTable::fixed(r.earning.mean() / 1000.0, 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  bdps_bench::maybe_write_csv(
      table, {"sigma", "eb_earning_k", "pc_earning_k", "fifo_earning_k"},
      opt.csv_path);
  return 0;
}
