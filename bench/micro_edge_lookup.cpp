// Microbenchmark: per-link state addressing, map-keyed vs EdgeId-indexed.
//
// One iteration = one touch of per-link state for a random existing
// directed link — the shape of every hot per-link access in the simulator
// (send start bookkeeping, estimator update, dead-link test).  Compares the
// retired representation, std::map keyed on the (from, to) pair, against
// the PR-3 one: Graph::edge_id into a flat EdgeMap / EdgeFlags.  Broker
// counts 64 / 512 / 4096 over ~4 links per broker mirror the dense-graph
// regime where the O(log n) tree walks became measurable.
#include <benchmark/benchmark.h>

#include <map>
#include <utility>

#include "common/random.h"
#include "topology/builders.h"
#include "topology/edge_map.h"

namespace {

using namespace bdps;

struct Rig {
  Topology topo;
  /// Query stream of existing directed links, pre-drawn so iterations
  /// measure the lookup, not the RNG.
  std::vector<std::pair<BrokerId, BrokerId>> queries;

  explicit Rig(std::size_t brokers) {
    Rng rng(7);
    topo = build_random_mesh(rng, brokers, brokers * 3, 4,
                             brokers, 50.0, 100.0, 20.0);
    queries.reserve(1024);
    for (std::size_t q = 0; q < 1024; ++q) {
      const Edge& edge = topo.graph.edge(
          static_cast<EdgeId>(rng.uniform_index(topo.graph.edge_count())));
      queries.emplace_back(edge.from, edge.to);
    }
  }
};

/// The seed representation: one red-black tree walk per state touch.
void BM_MapLinkState(benchmark::State& state) {
  const Rig rig(static_cast<std::size_t>(state.range(0)));
  std::map<std::pair<BrokerId, BrokerId>, TimeMs> started;
  for (const auto& q : rig.queries) started[q] = 0.0;  // Warm, like a run.
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& q = rig.queries[i++ & 1023];
    auto& slot = started[q];
    slot += 1.0;
    benchmark::DoNotOptimize(slot);
  }
  state.SetItemsProcessed(state.iterations());
}

/// The PR-3 representation: sorted-adjacency edge_id + flat indexed load.
void BM_EdgeIdLinkState(benchmark::State& state) {
  const Rig rig(static_cast<std::size_t>(state.range(0)));
  EdgeMap<TimeMs> started(rig.topo.graph, 0.0);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& q = rig.queries[i++ & 1023];
    auto& slot = started[rig.topo.graph.edge_id(q.first, q.second)];
    slot += 1.0;
    benchmark::DoNotOptimize(slot);
  }
  state.SetItemsProcessed(state.iterations());
}

/// Dead-link membership, map era: set-of-pairs lookup.
void BM_MapDeadLinkTest(benchmark::State& state) {
  const Rig rig(static_cast<std::size_t>(state.range(0)));
  std::map<std::pair<BrokerId, BrokerId>, bool> dead;
  for (std::size_t q = 0; q < 1024; q += 16) dead[rig.queries[q]] = true;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& q = rig.queries[i++ & 1023];
    benchmark::DoNotOptimize(dead.count(q));
  }
  state.SetItemsProcessed(state.iterations());
}

/// Dead-link membership, EdgeId era: one bit test.
void BM_EdgeFlagsDeadLinkTest(benchmark::State& state) {
  const Rig rig(static_cast<std::size_t>(state.range(0)));
  EdgeFlags dead(rig.topo.graph.edge_count());
  for (std::size_t q = 0; q < 1024; q += 16) {
    dead.set(rig.topo.graph.edge_id(rig.queries[q].first,
                                    rig.queries[q].second));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& q = rig.queries[i++ & 1023];
    benchmark::DoNotOptimize(
        !dead.none() &&
        dead.test(rig.topo.graph.edge_id(q.first, q.second)));
  }
  state.SetItemsProcessed(state.iterations());
}

#define LOOKUP_ARGS ->Arg(64)->Arg(512)->Arg(4096)
BENCHMARK(BM_MapLinkState) LOOKUP_ARGS;
BENCHMARK(BM_EdgeIdLinkState) LOOKUP_ARGS;
BENCHMARK(BM_MapDeadLinkTest) LOOKUP_ARGS;
BENCHMARK(BM_EdgeFlagsDeadLinkTest) LOOKUP_ARGS;

}  // namespace

BENCHMARK_MAIN();
