// Ablation: the input queue the paper ignores (footnote 2).
//
// §3.2 drops input-queue waiting time from the delay model, arguing the
// processing rate outruns the network.  With the processing stage
// serialized (one message per PD), this sweep cranks PD from the paper's
// 2 ms toward transmission scale and reports the deepest input queue seen
// and the delivery rate — quantifying exactly when footnote 2 stops
// holding.
#include "bench_util.h"

using namespace bdps;

int main(int argc, char** argv) {
  const auto opt = bdps_bench::BenchOptions::parse(argc, argv);
  bdps_bench::banner(
      "Ablation: processing delay vs input-queue depth (PSD, rate 15, EB)",
      opt);
  ThreadPool pool(opt.threads);

  TextTable table({"PD (ms)", "max input queue", "delivery rate(%)",
                   "mean valid delay (s)"});
  for (const double pd : {2.0, 20.0, 200.0, 1000.0, 2000.0, 4000.0}) {
    Welford depth;
    Welford rate;
    Welford delay;
    for (std::size_t r = 0; r < opt.replications; ++r) {
      SimConfig config = paper_base_config(ScenarioKind::kPsd, 15.0,
                                           StrategyKind::kEb, opt.seed + r);
      opt.apply(config);
      config.seed = opt.seed + r;
      config.processing_delay = pd;
      config.serialize_processing = true;
      const SimResult result = run_simulation(config);
      depth.add(static_cast<double>(result.max_input_queue));
      rate.add(result.delivery_rate);
      delay.add(result.mean_valid_delay_ms);
    }
    table.add_row({TextTable::fixed(pd, 0), TextTable::fixed(depth.mean(), 1),
                   TextTable::fixed(100.0 * rate.mean(), 2),
                   TextTable::fixed(delay.mean() / 1000.0, 2)});
  }
  table.print(std::cout);
  std::printf(
      "\nAt the paper's PD = 2 ms the input queue never builds up —\n"
      "footnote 2 holds.  Once PD approaches the per-hop transmission time\n"
      "(~3.75 s) the processor becomes the bottleneck.\n");
  bdps_bench::maybe_write_csv(
      table, {"pd_ms", "max_input_queue", "delivery_rate", "mean_delay_s"},
      opt.csv_path);
  (void)pool;
  return 0;
}
