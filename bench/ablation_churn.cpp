// Ablation: subscription churn.
//
// Real dashboards and mobile clients come and go; this sweep varies the
// inactive fraction of every subscription's lifetime and reports SSD
// earning and traffic for EB vs FIFO.  The EB advantage should track the
// *active* population: churn scales the offered load down but does not
// change who wins.
#include "bench_util.h"

using namespace bdps;

int main(int argc, char** argv) {
  const auto opt = bdps_bench::BenchOptions::parse(argc, argv);
  bdps_bench::banner("Ablation: subscription churn (SSD, rate 12)", opt);
  ThreadPool pool(opt.threads);

  TextTable table({"inactive frac", "EB earn(k)", "FIFO earn(k)", "EB msgs(k)",
                   "FIFO msgs(k)"});
  for (const double churn : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    double earning[2];
    double traffic[2];
    int i = 0;
    for (const StrategyKind strategy :
         {StrategyKind::kEb, StrategyKind::kFifo}) {
      SimConfig config =
          paper_base_config(ScenarioKind::kSsd, 12.0, strategy, opt.seed);
      opt.apply(config);
      config.workload.churn_fraction = churn;
      const ReplicatedResult r =
          run_replicated(config, opt.replications, &pool);
      earning[i] = r.earning.mean() / 1000.0;
      traffic[i] = r.receptions.mean() / 1000.0;
      ++i;
    }
    table.add_row({TextTable::fixed(100.0 * churn, 0) + "%",
                   TextTable::fixed(earning[0], 2),
                   TextTable::fixed(earning[1], 2),
                   TextTable::fixed(traffic[0], 2),
                   TextTable::fixed(traffic[1], 2)});
  }
  table.print(std::cout);
  bdps_bench::maybe_write_csv(table,
                              {"churn", "eb_earning_k", "fifo_earning_k",
                               "eb_msgs_k", "fifo_msgs_k"},
                              opt.csv_path);
  return 0;
}
