// Figure 4: performance of EB, PC and EBPC as the EB weight r varies.
//
//   4(a) SSD total earning vs r   (publishing rate 10)
//   4(b) PSD delivery rate vs r   (publishing rate 10)
//
// Paper shape: in SSD, PC < EB and EBPC edges out EB for r in roughly
// (23%, 100%); in PSD, EB ~= PC and EBPC is consistently slightly better.
#include "bench_util.h"
#include "stats/chart.h"

using namespace bdps;

namespace {

void run_scenario(ScenarioKind scenario, const bdps_bench::BenchOptions& opt,
                  ThreadPool& pool) {
  const bool ssd = scenario == ScenarioKind::kSsd;
  std::printf("--- fig 4(%c): %s, metric = %s ---\n", ssd ? 'a' : 'b',
              scenario_name(scenario).c_str(),
              ssd ? "total earning (k)" : "delivery rate (%)");

  auto run_point = [&](StrategyKind strategy, double weight) {
    SimConfig config = paper_base_config(scenario, 10.0, strategy, opt.seed);
    config.ebpc_weight = weight;
    opt.apply(config);
    const ReplicatedResult r =
        run_replicated(config, opt.replications, &pool);
    return ssd ? r.earning.mean() / 1000.0
               : 100.0 * r.delivery_rate.mean();
  };

  // EB and PC are the r = 1 / r = 0 end points of EBPC but are scheduled
  // via their own strategy objects, as in the paper's plots.
  const double eb_line = run_point(StrategyKind::kEb, 1.0);
  const double pc_line = run_point(StrategyKind::kPc, 0.0);

  TextTable table({"r(%)", "EBPC", "EB", "PC"});
  std::vector<std::string> csv_header = {"r_percent", "ebpc", "eb", "pc"};
  std::vector<std::pair<double, double>> ebpc_series;
  std::vector<std::pair<double, double>> eb_series;
  std::vector<std::pair<double, double>> pc_series;
  for (const double weight : paper_ebpc_weights()) {
    const double ebpc = run_point(StrategyKind::kEbpc, weight);
    table.add_row({TextTable::fixed(100.0 * weight, 0),
                   TextTable::fixed(ebpc, 2), TextTable::fixed(eb_line, 2),
                   TextTable::fixed(pc_line, 2)});
    ebpc_series.emplace_back(100.0 * weight, ebpc);
    eb_series.emplace_back(100.0 * weight, eb_line);
    pc_series.emplace_back(100.0 * weight, pc_line);
  }
  table.print(std::cout);
  AsciiChart chart;
  chart.add_series("EBPC", ebpc_series);
  chart.add_series("EB", eb_series);
  chart.add_series("PC", pc_series);
  chart.print(std::cout, ssd ? "\nearning (k) vs weight of EB (%)"
                             : "\ndelivery rate (%) vs weight of EB (%)");
  const std::string suffix = ssd ? ".ssd.csv" : ".psd.csv";
  bdps_bench::maybe_write_csv(
      table, csv_header,
      opt.csv_path.empty() ? "" : opt.csv_path + suffix);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bdps_bench::BenchOptions::parse(argc, argv);
  bdps_bench::banner("Figure 4: EBPC weight sweep (publishing rate 10)", opt);
  ThreadPool pool(opt.threads);
  run_scenario(ScenarioKind::kSsd, opt, pool);
  run_scenario(ScenarioKind::kPsd, opt, pool);
  return 0;
}
