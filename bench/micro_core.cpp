// Microbenchmarks for the remaining hot paths: the event heap, the Gaussian
// math and the RNG (every send samples a truncated normal).
#include <benchmark/benchmark.h>

#include "common/math.h"
#include "common/random.h"
#include "sim/event_queue.h"

namespace {

using namespace bdps;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  for (auto _ : state) {
    EventQueue q;
    for (const double t : times) {
      Event e;
      e.time = t;
      q.push(std::move(e));
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(65536);

void BM_NormalCdf(benchmark::State& state) {
  double z = -6.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(normal_cdf(z));
    z += 0.001;
    if (z > 6.0) z = -6.0;
  }
}
BENCHMARK(BM_NormalCdf);

void BM_NormalQuantile(benchmark::State& state) {
  double p = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(normal_quantile(p));
    p += 0.0001;
    if (p >= 0.999) p = 0.001;
  }
}
BENCHMARK(BM_NormalQuantile);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform());
}
BENCHMARK(BM_RngUniform);

void BM_RngNormal(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.normal(75.0, 20.0));
}
BENCHMARK(BM_RngNormal);

void BM_RngTruncatedNormal(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.truncated_normal(75.0, 20.0, 0.0));
  }
}
BENCHMARK(BM_RngTruncatedNormal);

}  // namespace

BENCHMARK_MAIN();
