// Ablation: how much does the §5.4 invalid-message purge contribute?
//
// Sweeps the eq. 11 threshold eps over {off, paper 0.05%, 1%, 5%} in the
// congested PSD setting and reports delivery rate + traffic for EB and
// FIFO.  Expectation: purging removes doomed traffic (message number
// drops) without hurting — and usually helping — the delivery rate;
// overly aggressive eps eventually kills deliverable messages.
#include "bench_util.h"

using namespace bdps;

int main(int argc, char** argv) {
  const auto opt = bdps_bench::BenchOptions::parse(argc, argv);
  bdps_bench::banner("Ablation: purge threshold eps (PSD, rate 15)", opt);
  ThreadPool pool(opt.threads);

  struct Point {
    const char* label;
    double epsilon;
    bool drop_expired;
  };
  const Point points[] = {
      {"purge off", 0.0, false},
      {"expired only", 0.0, true},
      {"eps=0.05% (paper)", 0.0005, true},
      {"eps=1%", 0.01, true},
      {"eps=5%", 0.05, true},
  };

  TextTable table({"policy", "EB rate(%)", "EB msgs(k)", "FIFO rate(%)",
                   "FIFO msgs(k)"});
  for (const Point& p : points) {
    std::vector<std::string> row = {p.label};
    for (const StrategyKind strategy :
         {StrategyKind::kEb, StrategyKind::kFifo}) {
      SimConfig config =
          paper_base_config(ScenarioKind::kPsd, 15.0, strategy, opt.seed);
      opt.apply(config);
      config.purge.epsilon = p.epsilon;
      config.purge.drop_expired = p.drop_expired;
      const ReplicatedResult r =
          run_replicated(config, opt.replications, &pool);
      row.push_back(TextTable::fixed(100.0 * r.delivery_rate.mean(), 2));
      row.push_back(TextTable::fixed(r.receptions.mean() / 1000.0, 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  bdps_bench::maybe_write_csv(
      table, {"policy", "eb_rate", "eb_msgs_k", "fifo_rate", "fifo_msgs_k"},
      opt.csv_path);
  return 0;
}
