// Ablation: single-path vs multi-path routing (§3.3).
//
// The paper chooses single-path routing "to decrease the network traffic"
// and cites DCP's multi-path as the alternative.  This bench quantifies the
// trade-off on the paper's own topology: duplicate copies cost receptions
// (and queue capacity) for a modest freshness benefit, turning negative
// under congestion.
#include "bench_util.h"

using namespace bdps;

int main(int argc, char** argv) {
  const auto opt = bdps_bench::BenchOptions::parse(argc, argv);
  bdps_bench::banner("Ablation: single-path vs multi-path (PSD, EB)", opt);
  ThreadPool pool(opt.threads);

  TextTable table({"rate", "1-path rate(%)", "1-path msgs(k)",
                   "2-path rate(%)", "2-path msgs(k)"});
  for (const double rate : {3.0, 9.0, 15.0}) {
    std::vector<std::string> row = {TextTable::fixed(rate, 0)};
    for (const bool multipath : {false, true}) {
      SimConfig config = paper_base_config(ScenarioKind::kPsd, rate,
                                           StrategyKind::kEb, opt.seed);
      opt.apply(config);
      config.multipath = multipath;
      const ReplicatedResult r =
          run_replicated(config, opt.replications, &pool);
      row.push_back(TextTable::fixed(100.0 * r.delivery_rate.mean(), 2));
      row.push_back(TextTable::fixed(r.receptions.mean() / 1000.0, 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  bdps_bench::maybe_write_csv(table,
                              {"rate", "single_rate", "single_msgs_k",
                               "multi_rate", "multi_msgs_k"},
                              opt.csv_path);
  return 0;
}
