// Ablation: distribution-aware vs lower-bound scheduling (§2).
//
// The paper positions itself against OverQoS-style systems that plan
// around a *guaranteed* bandwidth (a high-probability lower bound) rather
// than the full distribution: "our work performs message scheduling based
// on the parameters of the probability distribution of the available
// bandwidth, which can make use of available bandwidths more efficiently".
// The LB strategy scores messages with a 0/1 indicator at the pessimistic
// mu + 2 sigma rate; this sweep quantifies the claimed efficiency gap.
#include "bench_util.h"

using namespace bdps;

int main(int argc, char** argv) {
  const auto opt = bdps_bench::BenchOptions::parse(argc, argv);
  bdps_bench::banner(
      "Ablation: EB (full distribution) vs LB (guaranteed bandwidth), SSD",
      opt);
  ThreadPool pool(opt.threads);

  TextTable table({"rate", "EB earn(k)", "LB earn(k)", "FIFO earn(k)",
                   "EB/LB"});
  for (const double rate : {6.0, 9.0, 12.0, 15.0}) {
    double earnings[3];
    int i = 0;
    for (const StrategyKind strategy :
         {StrategyKind::kEb, StrategyKind::kLowerBound,
          StrategyKind::kFifo}) {
      SimConfig config =
          paper_base_config(ScenarioKind::kSsd, rate, strategy, opt.seed);
      opt.apply(config);
      earnings[i++] =
          run_replicated(config, opt.replications, &pool).earning.mean() /
          1000.0;
    }
    table.add_row({TextTable::fixed(rate, 0), TextTable::fixed(earnings[0], 2),
                   TextTable::fixed(earnings[1], 2),
                   TextTable::fixed(earnings[2], 2),
                   TextTable::fixed(earnings[0] / std::max(earnings[1], 1e-9),
                                    2)});
  }
  table.print(std::cout);
  std::printf(
      "\nLB's 0/1 indicator cannot rank two still-feasible messages (ties\n"
      "fall back to queue order) and writes off borderline-but-likely ones.\n"
      "Measured: EB holds a consistent but small (~1-2%%) edge — most of the\n"
      "benefit at paper parameters comes from deadline awareness plus the\n"
      "purge, which LB shares; the full distribution adds the final margin.\n");
  bdps_bench::maybe_write_csv(
      table,
      {"rate", "eb_earning_k", "lb_earning_k", "fifo_earning_k", "ratio"},
      opt.csv_path);
  return 0;
}
