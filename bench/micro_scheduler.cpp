// Microbenchmark: cost of one scheduling decision per strategy.
//
// `pick` runs every time a link frees up; EB/PC/EBPC evaluate a normal CDF
// per (message, target) pair, so their cost scales with queue depth x
// fan-out while FIFO/RL stay cheap.
#include <benchmark/benchmark.h>

#include "scheduling/purge.h"
#include "scheduling/scheduler.h"

namespace {

using namespace bdps;

struct Rig {
  std::vector<std::unique_ptr<Subscription>> subs;
  std::vector<std::unique_ptr<SubscriptionEntry>> entries;
  std::vector<QueuedMessage> queue;
  SchedulingContext context{600000.0, 2.0, 3750.0};

  Rig(std::size_t queue_depth, std::size_t targets_per_message) {
    Rng rng(1);
    for (std::size_t m = 0; m < queue_depth; ++m) {
      const TimeMs age = rng.uniform(0.0, 30000.0);
      auto message = std::make_shared<Message>(
          static_cast<MessageId>(m), 0, context.now - age, 50.0,
          std::vector<Attribute>{});
      // Enqueued when published: distinct enqueue instants, as in a real
      // queue (identical ones would make every pick a pure tie scan).
      QueuedMessage queued{std::move(message), context.now - age, {}};
      for (std::size_t t = 0; t < targets_per_message; ++t) {
        auto sub = std::make_unique<Subscription>();
        sub->allowed_delay = seconds(10.0 + 10.0 * rng.uniform_index(5));
        sub->price = 1.0 + rng.uniform_index(3);
        auto entry = std::make_unique<SubscriptionEntry>();
        entry->subscription = sub.get();
        entry->path = PathStats{2, rng.uniform(100.0, 300.0), 800.0};
        queued.targets.push_back(entry.get());
        subs.push_back(std::move(sub));
        entries.push_back(std::move(entry));
      }
      // Fold the scoring kernel as Broker::process does at enqueue time, so
      // the timed loops measure the steady-state pick/purge path.
      precompute_scores(queued, context.processing_delay);
      queue.push_back(std::move(queued));
    }
  }
};

void run_pick(benchmark::State& state, StrategyKind kind) {
  const Rig rig(static_cast<std::size_t>(state.range(0)),
                static_cast<std::size_t>(state.range(1)));
  const auto scheduler = make_strategy(kind, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler->reference_pick(rig.queue, rig.context));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_PickFifo(benchmark::State& s) { run_pick(s, StrategyKind::kFifo); }
void BM_PickRl(benchmark::State& s) {
  run_pick(s, StrategyKind::kRemainingLifetime);
}
void BM_PickEb(benchmark::State& s) { run_pick(s, StrategyKind::kEb); }
void BM_PickPc(benchmark::State& s) { run_pick(s, StrategyKind::kPc); }
void BM_PickEbpc(benchmark::State& s) { run_pick(s, StrategyKind::kEbpc); }

#define QUEUE_ARGS ->Args({8, 10})->Args({64, 10})->Args({512, 10})->Args({64, 40})
BENCHMARK(BM_PickFifo) QUEUE_ARGS;
BENCHMARK(BM_PickRl) QUEUE_ARGS;
BENCHMARK(BM_PickEb) QUEUE_ARGS;
BENCHMARK(BM_PickPc) QUEUE_ARGS;
BENCHMARK(BM_PickEbpc) QUEUE_ARGS;

void BM_PurgeScan(benchmark::State& state) {
  const auto scheduler = make_strategy(StrategyKind::kEb);
  (void)scheduler;
  PurgePolicy policy;
  for (auto _ : state) {
    state.PauseTiming();
    Rig rig(static_cast<std::size_t>(state.range(0)), 10);
    state.ResumeTiming();
    benchmark::DoNotOptimize(purge_queue(rig.queue, rig.context, policy));
  }
}
BENCHMARK(BM_PurgeScan)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
