// Figure 6: PSD scenario across publishing rates, EB vs PC vs FIFO vs RL.
//
//   6(a) delivery rate (%) vs publishing rate
//   6(b) message number (k receptions) vs publishing rate
//
// Paper shape: delivery rate decreases with load for every strategy;
// EB ~= PC on top (paper: 40.1% at rate 15), FIFO in the middle (22.5%),
// RL at the bottom (11.6%).  EB carries only ~17% more traffic than FIFO
// and ~60% more than RL at rate 15.
#include <map>

#include "bench_util.h"
#include "stats/chart.h"

using namespace bdps;

int main(int argc, char** argv) {
  const auto opt = bdps_bench::BenchOptions::parse(argc, argv);
  bdps_bench::banner("Figure 6: PSD delivery rate & traffic vs publishing rate",
                     opt);
  ThreadPool pool(opt.threads);

  const auto strategies = paper_comparison_strategies();
  TextTable delivery({"rate", "EB", "PC", "FIFO", "RL"});
  TextTable traffic({"rate", "EB", "PC", "FIFO", "RL"});
  std::map<StrategyKind, std::vector<std::pair<double, double>>>
      delivery_series;
  std::map<StrategyKind, std::vector<std::pair<double, double>>>
      traffic_series;

  for (const double rate : paper_publishing_rates()) {
    std::vector<std::string> delivery_row = {TextTable::fixed(rate, 0)};
    std::vector<std::string> traffic_row = {TextTable::fixed(rate, 0)};
    for (const StrategyKind strategy : strategies) {
      SimConfig config =
          paper_base_config(ScenarioKind::kPsd, rate, strategy, opt.seed);
      opt.apply(config);
      const ReplicatedResult r =
          run_replicated(config, opt.replications, &pool);
      delivery_row.push_back(
          TextTable::fixed(100.0 * r.delivery_rate.mean(), 2));
      traffic_row.push_back(
          TextTable::fixed(r.receptions.mean() / 1000.0, 2));
      delivery_series[strategy].emplace_back(
          rate, 100.0 * r.delivery_rate.mean());
      traffic_series[strategy].emplace_back(rate,
                                            r.receptions.mean() / 1000.0);
    }
    delivery.add_row(std::move(delivery_row));
    traffic.add_row(std::move(traffic_row));
  }

  std::printf("--- fig 6(a): delivery rate (%%) ---\n");
  delivery.print(std::cout);
  AsciiChart delivery_chart;
  for (const StrategyKind s : strategies) {
    delivery_chart.add_series(strategy_name(s), delivery_series[s]);
  }
  delivery_chart.print(std::cout, "\ndelivery rate (%) vs publishing rate");
  std::printf("\n--- fig 6(b): message number (k receptions) ---\n");
  traffic.print(std::cout);
  AsciiChart traffic_chart;
  for (const StrategyKind s : strategies) {
    traffic_chart.add_series(strategy_name(s), traffic_series[s]);
  }
  traffic_chart.print(std::cout, "\nmessage number (k) vs publishing rate");

  const std::vector<std::string> header = {"rate", "eb", "pc", "fifo", "rl"};
  if (!opt.csv_path.empty()) {
    bdps_bench::maybe_write_csv(delivery, header,
                                opt.csv_path + ".delivery.csv");
    bdps_bench::maybe_write_csv(traffic, header, opt.csv_path + ".traffic.csv");
  }
  return 0;
}
