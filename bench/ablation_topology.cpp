// Ablation: does the EB advantage survive other overlay shapes?
//
// Runs the SSD comparison at rate 12 on the paper's layered mesh, an
// acyclic tree (fig. 1(a) style), a random mesh and a dumbbell bottleneck.
#include "bench_util.h"

using namespace bdps;

int main(int argc, char** argv) {
  const auto opt = bdps_bench::BenchOptions::parse(argc, argv);
  bdps_bench::banner("Ablation: topology sweep (SSD, rate 12)", opt);
  ThreadPool pool(opt.threads);

  const TopologyKind kinds[] = {TopologyKind::kPaper, TopologyKind::kAcyclic,
                                TopologyKind::kRandomMesh,
                                TopologyKind::kDumbbell};

  TextTable table({"topology", "EB earn(k)", "FIFO earn(k)", "RL earn(k)",
                   "EB/FIFO"});
  for (const TopologyKind kind : kinds) {
    double earnings[3] = {0.0, 0.0, 0.0};
    int i = 0;
    for (const StrategyKind strategy :
         {StrategyKind::kEb, StrategyKind::kFifo,
          StrategyKind::kRemainingLifetime}) {
      SimConfig config =
          paper_base_config(ScenarioKind::kSsd, 12.0, strategy, opt.seed);
      opt.apply(config);
      config.topology = kind;
      // Generic builders: 32 brokers, 4 publishers, 160 subscribers to stay
      // comparable with the paper's scale.
      config.broker_count = 32;
      config.publisher_count = 4;
      config.subscriber_count = 160;
      config.extra_edges = 16;
      earnings[i++] =
          run_replicated(config, opt.replications, &pool).earning.mean() /
          1000.0;
    }
    table.add_row({topology_name(kind), TextTable::fixed(earnings[0], 2),
                   TextTable::fixed(earnings[1], 2),
                   TextTable::fixed(earnings[2], 2),
                   TextTable::fixed(earnings[0] / std::max(earnings[1], 1e-9),
                                    2)});
  }
  table.print(std::cout);
  bdps_bench::maybe_write_csv(
      table,
      {"topology", "eb_earning_k", "fifo_earning_k", "rl_earning_k",
       "eb_over_fifo"},
      opt.csv_path);
  return 0;
}
