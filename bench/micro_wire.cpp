// Wire-format hot-path costs: encode/parse of the data-plane frames every
// trunk copy pays (kForward with a realistic message head, kAck), and
// FrameAssembler reassembly at socket-read chunk sizes.  items/s is
// frames; bytes/s shows the framing overhead against payload size.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "net/wire.h"

namespace {

using namespace bdps;

Message bench_message(std::size_t attributes) {
  std::vector<Attribute> attrs;
  for (std::size_t i = 0; i < attributes; ++i) {
    attrs.push_back(Attribute{"A" + std::to_string(i + 1),
                              Value(0.1 * static_cast<double>(i + 1))});
  }
  return Message(/*id=*/123456, /*publisher=*/7, /*publish_time=*/98765.4375,
                 /*size_kb=*/50.0, std::move(attrs), /*deadline=*/123000.5);
}

void BM_WireEncodeForward(benchmark::State& state) {
  const Frame frame{
      ForwardFrame{42, 19, bench_message(static_cast<std::size_t>(
                               state.range(0)))}};
  std::vector<std::uint8_t> out;
  std::size_t bytes = 0;
  for (auto _ : state) {
    out.clear();
    encode_frame(frame, out);
    benchmark::DoNotOptimize(out.data());
    bytes = out.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_WireEncodeForward)->ArgName("attrs")->Arg(2)->Arg(8)->Arg(32);

void BM_WireParseForward(benchmark::State& state) {
  const Frame frame{
      ForwardFrame{42, 19, bench_message(static_cast<std::size_t>(
                               state.range(0)))}};
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  for (auto _ : state) {
    Frame parsed = parse_frame(bytes.data(), bytes.size());
    benchmark::DoNotOptimize(&parsed);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_WireParseForward)->ArgName("attrs")->Arg(2)->Arg(8)->Arg(32);

void BM_WireAckRoundTrip(benchmark::State& state) {
  // The smallest frame on the trunk: header + 8 bytes.  This bounds the
  // per-frame fixed cost.
  const Frame frame{AckFrame{0x123456789abcull}};
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    out.clear();
    encode_frame(frame, out);
    Frame parsed = parse_frame(out.data(), out.size());
    benchmark::DoNotOptimize(&parsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireAckRoundTrip);

void BM_WireAssemblerChunked(benchmark::State& state) {
  // A batch of forward frames fed at a fixed chunk size, as a socket read
  // loop would: measures the buffering + reparse overhead per frame.
  constexpr int kFrames = 64;
  const Frame frame{ForwardFrame{42, 19, bench_message(4)}};
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < kFrames; ++i) encode_frame(frame, stream);
  const auto chunk = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    FrameAssembler assembler;
    std::size_t offset = 0;
    int got = 0;
    while (offset < stream.size()) {
      const std::size_t take = std::min(chunk, stream.size() - offset);
      assembler.feed(stream.data() + offset, take);
      offset += take;
      while (auto f = assembler.next()) {
        benchmark::DoNotOptimize(&*f);
        ++got;
      }
    }
    if (got != kFrames) state.SkipWithError("lost frames");
  }
  state.SetItemsProcessed(state.iterations() * kFrames);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_WireAssemblerChunked)
    ->ArgName("chunk")
    ->Arg(16)
    ->Arg(512)
    ->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
