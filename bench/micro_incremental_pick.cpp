// Microbenchmark: steady-state dispatch cycle, incremental vs rescan.
//
// One iteration = what a busy output queue does at every link-free instant:
// enqueue one fresh copy, advance the clock, pick (and remove) the best
// message.  Two engines run the identical op stream:
//
//   * Incremental* — the stateful SchedulerState path (PR-2): FIFO/RL keep
//     an indexed heap on time-invariant keys; EB/PC/EBPC/LB skip rows whose
//     cached score bound cannot beat the running best.
//   * Rescan*      — the stateless Strategy::reference_pick argmax over the
//     precomputed kernel (the PR-1 baseline contract).
//
// Compare the same (strategy, depth, fan-out) pair across the two engines;
// items_processed counts queue rows per pick, as micro_scheduler does.
#include <benchmark/benchmark.h>

#include "scheduling/scheduler.h"

namespace {

using namespace bdps;

/// Pre-built subscription entries reused by every generated row; only the
/// Message and its targets/scored vectors are allocated per enqueue (the
/// same work Broker::process does, and identical across both engines).
struct Rig {
  std::vector<std::unique_ptr<Subscription>> subs;
  std::vector<std::unique_ptr<SubscriptionEntry>> entries;
  Rng rng{1};
  std::size_t targets_per_message;
  MessageId next_id = 0;

  explicit Rig(std::size_t targets_in) : targets_per_message(targets_in) {
    for (std::size_t t = 0; t < 64; ++t) {
      auto sub = std::make_unique<Subscription>();
      sub->allowed_delay = seconds(10.0 + 10.0 * rng.uniform_index(5));
      sub->price = 1.0 + rng.uniform_index(3);
      auto entry = std::make_unique<SubscriptionEntry>();
      entry->subscription = sub.get();
      entry->path = PathStats{2, rng.uniform(100.0, 300.0), 800.0};
      subs.push_back(std::move(sub));
      entries.push_back(std::move(entry));
    }
  }

  QueuedMessage make_row(TimeMs now) {
    const TimeMs age = rng.uniform(0.0, 30000.0);
    auto message = std::make_shared<Message>(
        next_id++, 0, now - age, 50.0, std::vector<Attribute>{});
    QueuedMessage queued{std::move(message), now, {}};
    for (std::size_t t = 0; t < targets_per_message; ++t) {
      queued.targets.push_back(
          entries[rng.uniform_index(entries.size())].get());
    }
    precompute_scores(queued, 2.0);
    return queued;
  }
};

void run_cycle(benchmark::State& state, StrategyKind kind, bool incremental) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  Rig rig(static_cast<std::size_t>(state.range(1)));
  const Strategy strategy(kind, 0.5);

  std::vector<QueuedMessage> queue;
  queue.reserve(depth + 1);
  const auto scheduler = strategy.make_state(&queue);
  TimeMs now = 600000.0;
  for (std::size_t i = 0; i < depth; ++i) {
    queue.push_back(rig.make_row(now));
    if (incremental) scheduler->on_enqueue(queue.size() - 1);
  }

  for (auto _ : state) {
    now += 25.0;
    const SchedulingContext context{now, 2.0, 3750.0};
    queue.push_back(rig.make_row(now));
    if (incremental) scheduler->on_enqueue(queue.size() - 1);
    const std::size_t pick = incremental
                                 ? scheduler->pick(context)
                                 : strategy.reference_pick(queue, context);
    if (incremental) scheduler->on_remove(pick);
    benchmark::DoNotOptimize(take_at(queue, pick));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_IncrementalFifo(benchmark::State& s) {
  run_cycle(s, StrategyKind::kFifo, true);
}
void BM_RescanFifo(benchmark::State& s) {
  run_cycle(s, StrategyKind::kFifo, false);
}
void BM_IncrementalRl(benchmark::State& s) {
  run_cycle(s, StrategyKind::kRemainingLifetime, true);
}
void BM_RescanRl(benchmark::State& s) {
  run_cycle(s, StrategyKind::kRemainingLifetime, false);
}
void BM_IncrementalEb(benchmark::State& s) {
  run_cycle(s, StrategyKind::kEb, true);
}
void BM_RescanEb(benchmark::State& s) { run_cycle(s, StrategyKind::kEb, false); }
void BM_IncrementalEbpc(benchmark::State& s) {
  run_cycle(s, StrategyKind::kEbpc, true);
}
void BM_RescanEbpc(benchmark::State& s) {
  run_cycle(s, StrategyKind::kEbpc, false);
}

#define CYCLE_ARGS \
  ->Args({64, 10})->Args({512, 10})->Args({4096, 10})->Args({512, 40})
BENCHMARK(BM_IncrementalFifo) CYCLE_ARGS;
BENCHMARK(BM_RescanFifo) CYCLE_ARGS;
BENCHMARK(BM_IncrementalRl) CYCLE_ARGS;
BENCHMARK(BM_RescanRl) CYCLE_ARGS;
BENCHMARK(BM_IncrementalEb) CYCLE_ARGS;
BENCHMARK(BM_RescanEb) CYCLE_ARGS;
BENCHMARK(BM_IncrementalEbpc) CYCLE_ARGS;
BENCHMARK(BM_RescanEbpc) CYCLE_ARGS;

}  // namespace

BENCHMARK_MAIN();
