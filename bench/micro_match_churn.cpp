// Microbenchmark: the sharded matching fabric under churn.
//
// Three costs matter at million-subscription scale: match latency against
// a populated fabric, add/remove throughput (covering probes + snapshot
// publication), and match latency *while* a writer churns.  Rows use the
// Zipf churn workload (workload/generator.h) so covering actually engages;
// the reference counting index runs the same corpus for the baseline.
// The full 1M-subscription sweep lives in tools/match_scaling (this bench
// keeps rows small enough for smoke registration).
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <vector>

#include "matching/program/simd.h"
#include "matching/sharded_index.h"
#include "message/index.h"
#include "workload/generator.h"

namespace {

using bdps::Message;
using bdps::SubscriptionIndex;
using bdps::ChurnWorkload;
using bdps::ChurnWorkloadConfig;
using bdps::matching::MatchFabric;
using bdps::matching::MatchFabricOptions;
using bdps::matching::MatchScratch;

ChurnWorkload make_workload() {
  ChurnWorkloadConfig config;
  config.seed = 7;
  return ChurnWorkload(config);
}

void BM_FabricMatch(benchmark::State& state) {
  ChurnWorkload workload = make_workload();
  MatchFabricOptions options;
  options.covering = state.range(1) != 0;
  options.compile_hot_hits = static_cast<std::size_t>(state.range(2));
  MatchFabric fabric(options);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    fabric.add(workload.next_filter());
  }
  std::vector<Message> probes;
  for (int i = 0; i < 64; ++i) probes.push_back(workload.next_message());
  MatchScratch scratch;
  // Warm the compile tier: hot roots cross compile_hot_hits and get their
  // programs built before the timed loop (no-op with hits=0).
  for (std::size_t w = 0; w < probes.size(); ++w) {
    benchmark::DoNotOptimize(fabric.match(probes[w], scratch));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fabric.match(probes[i++ % probes.size()],
                                          scratch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  // The label names the SIMD kernel the batch evaluator dispatched (the
  // same compiled tier runs with hits=0, it just never engages).
  state.SetLabel(bdps::matching::program::simd::active_kernel_name());
  const MatchFabric::Stats stats = fabric.stats();
  state.counters["compression"] = stats.compression();
  state.counters["compiled_roots"] =
      static_cast<double>(stats.compiled_roots);
  state.counters["vm_evals"] = static_cast<double>(stats.vm_member_evals);
  state.counters["vm_batch_evals"] =
      static_cast<double>(stats.vm_batch_evals);
  state.counters["shared_programs"] =
      static_cast<double>(stats.shared_programs);
}
BENCHMARK(BM_FabricMatch)
    ->ArgsProduct({{1000, 10000, 100000}, {0, 1}, {0, 4}})
    ->ArgNames({"subs", "cover", "hits"});

void BM_ReferenceIndexMatch(benchmark::State& state) {
  ChurnWorkload workload = make_workload();
  SubscriptionIndex index;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    index.add(workload.next_filter());
  }
  index.finalize();
  std::vector<Message> probes;
  for (int i = 0; i < 64; ++i) probes.push_back(workload.next_message());
  SubscriptionIndex::Scratch scratch;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.match(probes[i++ % probes.size()],
                                         scratch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReferenceIndexMatch)
    ->Arg(1000)->Arg(10000)->Arg(100000)
    ->ArgNames({"subs"});

void BM_FabricChurn(benchmark::State& state) {
  // Steady-state add/remove throughput at a held population: every
  // iteration is one remove + one add (tombstone, cover probe, snapshot
  // publication, amortised rebuild).
  ChurnWorkload workload = make_workload();
  MatchFabric fabric;
  std::vector<bdps::matching::RowId> live;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    live.push_back(fabric.add(workload.next_filter()));
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    fabric.remove(live[cursor]);
    live[cursor] = fabric.add(workload.next_filter());
    cursor = (cursor + 1) % live.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FabricChurn)->Arg(10000)->Arg(100000)->ArgNames({"subs"});

void BM_FabricMatchUnderChurn(benchmark::State& state) {
  // Reader latency with a concurrent writer replacing ~rows continuously —
  // the live broker's situation.  The writer thread runs free; the timed
  // loop is the reader.
  ChurnWorkload workload = make_workload();
  MatchFabric fabric;
  std::vector<bdps::matching::RowId> live;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    live.push_back(fabric.add(workload.next_filter()));
  }
  std::vector<Message> probes;
  for (int i = 0; i < 64; ++i) probes.push_back(workload.next_message());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    ChurnWorkloadConfig config;
    config.seed = 1234;
    ChurnWorkload churn(config);
    std::size_t cursor = 0;
    while (!stop.load(std::memory_order_acquire)) {
      fabric.remove(live[cursor]);
      live[cursor] = fabric.add(churn.next_filter());
      cursor = (cursor + 1) % live.size();
    }
  });
  MatchScratch scratch;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fabric.match(probes[i++ % probes.size()],
                                          scratch));
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  state.SetItemsProcessed(state.iterations() * state.range(0));
  // Default options compile hot roots mid-churn; surface how many programs
  // were (re)built while the reader was being timed, how often the batch
  // evaluator ran, what the program cache shared across rebuilds, and
  // which SIMD kernel dispatched.
  state.SetLabel(bdps::matching::program::simd::active_kernel_name());
  const MatchFabric::Stats stats = fabric.stats();
  state.counters["compiled_roots"] =
      static_cast<double>(stats.compiled_roots);
  state.counters["compiles"] = static_cast<double>(stats.compiles);
  state.counters["vm_batch_evals"] =
      static_cast<double>(stats.vm_batch_evals);
  state.counters["shared_programs"] =
      static_cast<double>(stats.shared_programs);
}
BENCHMARK(BM_FabricMatchUnderChurn)
    ->Arg(10000)->Arg(100000)
    ->ArgNames({"subs"})
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
