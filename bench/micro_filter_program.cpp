// Microbenchmark: compiled predicate programs vs the interpreter.
//
// The compile tier's bet (matching/program/) is that one flat pass over a
// root's member disjuncts beats per-member Filter::matches walks once the
// member list is long enough.  This bench measures both sides of that
// crossover on the Zipf churn corpus:
//
//   * BM_InterpretMembers — one message against N member filters through
//     Filter::matches, the cold tier's cost.
//   * BM_ProgramEvaluate  — the same N members through one compiled
//     PredicateProgram::evaluate batch pass (slots resolved once,
//     SoA interval compares, interned string equality).
//   * BM_ProgramCompile   — the one-time lowering cost, which the fabric
//     amortises over every post-compile root hit (the tiering threshold
//     MatchFabricOptions::compile_hot_hits exists because of this row).
//
// items_processed counts member evaluations, so items/s is directly
// comparable between the interpret and evaluate rows; the crossover
// member count is where their per-item costs meet (PERF.md).
//
// BM_ProgramEvaluate runs a members x kernel grid: kernel=0 forces the
// portable scalar kernel, kernel=1 lets the runtime dispatcher pick the
// widest ISA this host supports (the row label names the kernel that
// actually ran, so the JSON is self-describing on any machine).  The
// scalar/simd delta at each width is the SIMD tier's contribution to the
// crossover.
#include <benchmark/benchmark.h>

#include <vector>

#include "matching/program/program.h"
#include "matching/program/simd.h"
#include "message/filter.h"
#include "workload/generator.h"

namespace {

using bdps::ChurnWorkload;
using bdps::ChurnWorkloadConfig;
using bdps::Filter;
using bdps::Message;
using bdps::matching::program::PredicateProgram;
using bdps::matching::program::ProgramEval;
namespace simd = bdps::matching::program::simd;

ChurnWorkload make_workload() {
  ChurnWorkloadConfig config;
  config.seed = 41;
  return ChurnWorkload(config);
}

/// N member filters and a probe-message ring from one deterministic
/// corpus; members are kept alive by the caller (fallbacks point into
/// them).
struct Corpus {
  std::vector<Filter> members;
  std::vector<const Filter*> pointers;
  std::vector<Message> probes;
};

Corpus make_corpus(std::int64_t member_count) {
  Corpus corpus;
  ChurnWorkload workload = make_workload();
  corpus.members.reserve(static_cast<std::size_t>(member_count));
  for (std::int64_t i = 0; i < member_count; ++i) {
    corpus.members.push_back(workload.next_filter());
  }
  for (const Filter& f : corpus.members) corpus.pointers.push_back(&f);
  for (int i = 0; i < 64; ++i) corpus.probes.push_back(workload.next_message());
  return corpus;
}

void BM_InterpretMembers(benchmark::State& state) {
  const Corpus corpus = make_corpus(state.range(0));
  std::size_t i = 0;
  for (auto _ : state) {
    const Message& m = corpus.probes[i++ % corpus.probes.size()];
    std::size_t matched = 0;
    for (const Filter& f : corpus.members) {
      matched += f.matches(m) ? 1 : 0;
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InterpretMembers)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(256)
    ->ArgNames({"members"});

void BM_ProgramEvaluate(benchmark::State& state) {
  // kernel=0: forced portable scalar; kernel=1: runtime-dispatched SIMD.
  // The label records the kernel that actually evaluated the batch.
  if (state.range(1) == 0) {
    simd::force_kernel("portable");
  } else {
    simd::force_kernel(nullptr);  // Auto: widest ISA this host dispatches.
  }
  state.SetLabel(simd::active_kernel_name());
  const Corpus corpus = make_corpus(state.range(0));
  const PredicateProgram program = PredicateProgram::compile(corpus.pointers);
  ProgramEval eval;
  std::size_t i = 0;
  for (auto _ : state) {
    const Message& m = corpus.probes[i++ % corpus.probes.size()];
    program.evaluate(m, eval);
    std::size_t matched = 0;
    for (const std::uint8_t v : eval.matched) matched += v;
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["slots"] = static_cast<double>(program.slot_count());
  state.counters["iv_tests"] =
      static_cast<double>(program.interval_test_count());
  state.counters["fallbacks"] =
      static_cast<double>(program.fallback_count());
  simd::force_kernel(nullptr);
}
BENCHMARK(BM_ProgramEvaluate)
    ->ArgsProduct({{2, 4, 8, 16, 32, 64, 256}, {0, 1}})
    ->ArgNames({"members", "kernel"});

void BM_ProgramCompile(benchmark::State& state) {
  const Corpus corpus = make_corpus(state.range(0));
  for (auto _ : state) {
    PredicateProgram program = PredicateProgram::compile(corpus.pointers);
    benchmark::DoNotOptimize(program);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProgramCompile)
    ->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->ArgNames({"members"});

}  // namespace

BENCHMARK_MAIN();
