// Live-runtime throughput vs. link count, reactor vs. socket shards.
//
// The workload is the star-of-chains broom (topology/builders.h): every
// message floods every chain, so one published message costs exactly
// `links` completed transmissions — items/s below is link-transmissions
// per wall second.  The clock runs at 20000x with sub-millisecond link
// times, so wall time measures runtime overhead (wakeups, locking, timer
// dispatch — and for socket rows, the loopback trunk round trip), not
// sleeping.
//
// Reactor rows run the whole overlay in one process.  Socket rows split
// the same overlay into a 2-shard in-process cluster: the brooms' cut
// edges cross loopback TCP trunks (net/endpoint.h frame + cumulative-ack
// protocol), so the reactor/socket gap at each size is the wire cost the
// distributed daemon (tools/brokerd) pays per transmission.  The curve is
// recorded in BENCH_pr7.json (see tools/live_scaling for the ceiling
// probe with failure handling).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <vector>

#include "experiment/live.h"
#include "routing/fabric.h"
#include "topology/builders.h"

namespace {

using namespace bdps;

constexpr int kMessages = 4;

struct Rig {
  Topology topo;
  std::unique_ptr<RoutingFabric> fabric;
  std::unique_ptr<const Strategy> strategy;
  std::vector<std::uint32_t> broker_shard;  // 2-way split for socket rows.
};

/// links = chains * depth with a square-ish broom; fabrics are expensive
/// to build, so cache one rig per link count across iterations.
const Rig& rig_for(std::size_t links) {
  static std::map<std::size_t, std::unique_ptr<Rig>> cache;
  auto& slot = cache[links];
  if (!slot) {
    std::size_t chains = 1;
    while (chains * chains < links) chains *= 2;
    const std::size_t depth = links / chains;
    auto rig = std::make_unique<Rig>();
    rig->topo = build_star_of_chains(chains, depth, LinkParams{0.2, 0.02});
    rig->fabric = std::make_unique<RoutingFabric>(
        rig->topo, flood_subscriptions(rig->topo));
    rig->strategy = make_strategy(StrategyKind::kEb);
    rig->broker_shard = live_broker_shards(rig->topo.graph, 2);
    slot = std::move(rig);
  }
  return *slot;
}

LiveOptions base_options() {
  LiveOptions opt;
  opt.processing_delay = 0.1;
  opt.speedup = 20000.0;
  return opt;
}

void check_deliveries(benchmark::State& state, const Rig& rig,
                      std::size_t delivered) {
  if (delivered !=
      static_cast<std::size_t>(kMessages) * rig.topo.subscriber_count()) {
    state.SkipWithError("lost deliveries");
  }
}

void run_once_reactor(benchmark::State& state, const Rig& rig) {
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.strategy.get(),
                  base_options());
  net.start();
  const Message tick(0, 0, 0.0, 1.0, {{"A1", Value(1.0)}}, kNoDeadline);
  for (int i = 0; i < kMessages; ++i) net.publish(0, tick);
  net.drain();
  net.stop();
  check_deliveries(state, rig, net.stats().deliveries().size());
}

void run_once_socket(benchmark::State& state, const Rig& rig) {
  std::vector<std::unique_ptr<LiveNetwork>> nets;
  std::vector<LiveNetwork*> raw;
  for (int shard = 0; shard < 2; ++shard) {
    LiveOptions opt = base_options();
    opt.mode = LiveMode::kSocket;
    opt.net.shard = shard;
    opt.net.shard_count = 2;
    opt.net.broker_shard = rig.broker_shard;
    nets.push_back(std::make_unique<LiveNetwork>(
        &rig.topo, rig.fabric.get(), rig.strategy.get(), opt));
    raw.push_back(nets.back().get());
  }
  const std::vector<std::uint16_t> ports = {nets[0]->trunk_port(),
                                            nets[1]->trunk_port()};
  for (const auto& net : nets) net->connect_trunks(ports);
  for (const auto& net : nets) net->start();
  for (const auto& net : nets) {
    if (!net->wait_trunks(std::chrono::milliseconds(5000))) {
      state.SkipWithError("trunks never came up");
      return;
    }
  }
  const Message tick(0, 0, 0.0, 1.0, {{"A1", Value(1.0)}}, kNoDeadline);
  LiveNetwork* hub_home = nets[0]->serves(0) ? raw[0] : raw[1];
  for (int i = 0; i < kMessages; ++i) hub_home->publish(0, tick);
  drain_live_cluster(raw);
  std::size_t delivered = 0;
  for (const auto& net : nets) {
    net->stop();
    delivered += net->stats().deliveries().size();
  }
  check_deliveries(state, rig, delivered);
}

void BM_LiveRuntime(benchmark::State& state, LiveMode mode) {
  const auto links = static_cast<std::size_t>(state.range(0));
  const Rig& rig = rig_for(links);
  for (auto _ : state) {
    if (mode == LiveMode::kReactor) {
      run_once_reactor(state, rig);
    } else {
      run_once_socket(state, rig);
    }
  }
  // One message = `links` completed transmissions (the flood covers every
  // chain hop).
  state.SetItemsProcessed(state.iterations() * kMessages *
                          static_cast<std::int64_t>(links));
}

}  // namespace

// UseRealTime: the runtime spends most of its life parked in waits, so
// CPU-time rates would flatter both modes — items/s must be wall-based.
BENCHMARK_CAPTURE(BM_LiveRuntime, reactor, LiveMode::kReactor)
    ->ArgName("links")
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(BM_LiveRuntime, socket_x2, LiveMode::kSocket)
    ->ArgName("links")
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
