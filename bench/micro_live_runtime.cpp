// Live-runtime throughput vs. link count, reactor vs. thread-per-link.
//
// The workload is the star-of-chains broom (topology/builders.h): every
// message floods every chain, so one published message costs exactly
// `links` completed transmissions — items/s below is link-transmissions
// per wall second.  The clock runs at 20000x with sub-millisecond link
// times, so wall time measures runtime overhead (thread spawn, wakeups,
// locking, timer dispatch), not sleeping.
//
// Reactor rows stay flat into the tens of thousands of links on a
// hardware-sized pool; thread-per-link rows pay ~2 threads per link and
// fall over well before that — the curve recorded in BENCH_pr5.json (see
// tools/live_scaling for the ceiling probe with failure handling).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "experiment/live.h"
#include "routing/fabric.h"
#include "topology/builders.h"

namespace {

using namespace bdps;

constexpr int kMessages = 4;

struct Rig {
  Topology topo;
  std::unique_ptr<RoutingFabric> fabric;
  std::unique_ptr<const Strategy> strategy;
};

/// links = chains * depth with a square-ish broom; fabrics are expensive
/// to build, so cache one rig per link count across iterations.
const Rig& rig_for(std::size_t links) {
  static std::map<std::size_t, std::unique_ptr<Rig>> cache;
  auto& slot = cache[links];
  if (!slot) {
    std::size_t chains = 1;
    while (chains * chains < links) chains *= 2;
    const std::size_t depth = links / chains;
    auto rig = std::make_unique<Rig>();
    rig->topo = build_star_of_chains(chains, depth, LinkParams{0.2, 0.02});
    rig->fabric = std::make_unique<RoutingFabric>(
        rig->topo, flood_subscriptions(rig->topo));
    rig->strategy = make_strategy(StrategyKind::kEb);
    slot = std::move(rig);
  }
  return *slot;
}

void run_once(benchmark::State& state, const Rig& rig, LiveMode mode) {
  LiveOptions opt;
  opt.processing_delay = 0.1;
  opt.speedup = 20000.0;
  opt.mode = mode;
  LiveNetwork net(&rig.topo, rig.fabric.get(), rig.strategy.get(), opt);
  net.start();
  const Message tick(0, 0, 0.0, 1.0, {{"A1", Value(1.0)}}, kNoDeadline);
  for (int i = 0; i < kMessages; ++i) net.publish(0, tick);
  net.drain();
  net.stop();
  if (net.stats().deliveries().size() !=
      static_cast<std::size_t>(kMessages) * rig.topo.subscriber_count()) {
    state.SkipWithError("lost deliveries");
  }
}

void BM_LiveRuntime(benchmark::State& state, LiveMode mode) {
  const auto links = static_cast<std::size_t>(state.range(0));
  const Rig& rig = rig_for(links);
  for (auto _ : state) {
    run_once(state, rig, mode);
  }
  // One message = `links` completed transmissions (the flood covers every
  // chain hop).
  state.SetItemsProcessed(state.iterations() * kMessages *
                          static_cast<std::int64_t>(links));
}

}  // namespace

// UseRealTime: the runtime spends most of its life parked in waits, so
// CPU-time rates would flatter both modes — items/s must be wall-based.
BENCHMARK_CAPTURE(BM_LiveRuntime, reactor, LiveMode::kReactor)
    ->ArgName("links")
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(BM_LiveRuntime, thread_per_link, LiveMode::kThreadPerLink)
    ->ArgName("links")
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
