// Shared helpers for the figure-reproduction benches.
//
// Every bench accepts `key=value` overrides:
//   reps=N        replications (seeds seed..seed+N-1) per point
//   seed=S        base seed
//   minutes=M     publish-window length (default: the paper's 120)
//   out=FILE.csv  also dump the series as CSV
//   threads=T     worker threads for the sweep (default: hardware)
#pragma once

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "common/config.h"
#include "common/csv.h"
#include "common/thread_pool.h"
#include "experiment/paper.h"
#include "experiment/sweep.h"
#include "stats/series.h"

namespace bdps_bench {

struct BenchOptions {
  std::size_t replications = 3;
  std::uint64_t seed = 1;
  double minutes = 120.0;
  std::string csv_path;
  std::size_t threads = 0;

  static BenchOptions parse(int argc, char** argv) {
    const bdps::KeyValueConfig args =
        bdps::KeyValueConfig::from_args(argc, argv);
    BenchOptions options;
    options.replications =
        static_cast<std::size_t>(args.get_int("reps", 3));
    options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    options.minutes = args.get_double("minutes", 120.0);
    options.csv_path = args.get_string("out", "");
    options.threads = static_cast<std::size_t>(args.get_int("threads", 0));
    return options;
  }

  void apply(bdps::SimConfig& config) const {
    config.seed = seed;
    config.workload.duration = bdps::minutes(minutes);
  }
};

/// Prints the standard bench banner.
inline void banner(const std::string& title, const BenchOptions& options) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("window %.0f min, %zu replication(s), base seed %llu\n\n",
              options.minutes, options.replications,
              static_cast<unsigned long long>(options.seed));
}

/// Writes a TextTable to CSV when the user asked for one.
inline void maybe_write_csv(const bdps::TextTable& table,
                            const std::vector<std::string>& header,
                            const std::string& path) {
  if (path.empty()) return;
  bdps::CsvWriter csv(path, header);
  for (const auto& row : table.rows()) csv.row(row);
  std::printf("\nseries written to %s\n", path.c_str());
}

}  // namespace bdps_bench
