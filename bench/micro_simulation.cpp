// Microbenchmark: end-to-end simulator throughput.
//
// One iteration = one complete paper-config simulation (5-minute publish
// window).  Useful for tracking simulator regressions; the figure benches
// depend on this staying fast enough for multi-seed sweeps.
#include <benchmark/benchmark.h>

#include "experiment/paper.h"
#include "experiment/runner.h"

namespace {

using namespace bdps;

void run_sim(benchmark::State& state, ScenarioKind scenario,
             StrategyKind strategy) {
  SimConfig config = paper_base_config(scenario, 10.0, strategy, 1);
  config.workload.duration = minutes(5.0);
  std::size_t receptions = 0;
  for (auto _ : state) {
    const SimResult r = run_simulation(config);
    receptions += r.receptions;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(receptions));
  state.SetLabel("receptions/iter=" +
                 std::to_string(receptions / std::max<std::size_t>(
                                                 1, state.iterations())));
}

void BM_SimulatePsdEb(benchmark::State& s) {
  run_sim(s, ScenarioKind::kPsd, StrategyKind::kEb);
}
void BM_SimulatePsdFifo(benchmark::State& s) {
  run_sim(s, ScenarioKind::kPsd, StrategyKind::kFifo);
}
void BM_SimulateSsdEb(benchmark::State& s) {
  run_sim(s, ScenarioKind::kSsd, StrategyKind::kEb);
}
void BM_SimulateSsdEbpc(benchmark::State& s) {
  run_sim(s, ScenarioKind::kSsd, StrategyKind::kEbpc);
}

BENCHMARK(BM_SimulatePsdEb)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulatePsdFifo)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateSsdEb)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateSsdEbpc)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
