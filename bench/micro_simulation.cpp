// Microbenchmark: end-to-end simulator throughput.
//
// One iteration = one complete paper-config simulation (5-minute publish
// window).  Useful for tracking simulator regressions; the figure benches
// depend on this staying fast enough for multi-seed sweeps.
#include <benchmark/benchmark.h>

#include "experiment/paper.h"
#include "experiment/runner.h"

namespace {

using namespace bdps;

void run_sim(benchmark::State& state, ScenarioKind scenario,
             StrategyKind strategy) {
  SimConfig config = paper_base_config(scenario, 10.0, strategy, 1);
  config.workload.duration = minutes(5.0);
  std::size_t receptions = 0;
  for (auto _ : state) {
    const SimResult r = run_simulation(config);
    receptions += r.receptions;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(receptions));
  state.SetLabel("receptions/iter=" +
                 std::to_string(receptions / std::max<std::size_t>(
                                                 1, state.iterations())));
}

// Dense-graph variant: a scale-free overlay whose hubs multiply per-link
// state (output queues, online estimators, dead-link checks).  This is the
// loop where link addressing dominates: the paper's 32-broker mesh keeps
// per-broker degree tiny, but at hundreds of brokers every send start,
// completion and failure check pays the link-state lookup.
void run_dense(benchmark::State& state) {
  const auto brokers = static_cast<std::size_t>(state.range(0));
  SimConfig config =
      paper_base_config(ScenarioKind::kSsd, 10.0, StrategyKind::kEbpc, 1);
  config.topology = TopologyKind::kScaleFree;
  config.broker_count = brokers;
  config.scale_free_edges_per_node = 4;
  config.publisher_count = 8;
  config.subscriber_count = brokers * 4;
  config.online_estimation = true;
  config.random_link_failures = brokers / 16;
  config.workload.duration = minutes(1.0);
  std::size_t receptions = 0;
  for (auto _ : state) {
    const SimResult r = run_simulation(config);
    receptions += r.receptions;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(receptions));
}

void BM_SimulateDenseScaleFree(benchmark::State& s) { run_dense(s); }

void BM_SimulatePsdEb(benchmark::State& s) {
  run_sim(s, ScenarioKind::kPsd, StrategyKind::kEb);
}
void BM_SimulatePsdFifo(benchmark::State& s) {
  run_sim(s, ScenarioKind::kPsd, StrategyKind::kFifo);
}
void BM_SimulateSsdEb(benchmark::State& s) {
  run_sim(s, ScenarioKind::kSsd, StrategyKind::kEb);
}
void BM_SimulateSsdEbpc(benchmark::State& s) {
  run_sim(s, ScenarioKind::kSsd, StrategyKind::kEbpc);
}

BENCHMARK(BM_SimulateDenseScaleFree)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulatePsdEb)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulatePsdFifo)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateSsdEb)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulateSsdEbpc)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
