// Ablation: model mismatch — normal scheduling math over skewed reality.
//
// The paper's schedulers assume TR ~ N(mu, sigma^2); §3.2 itself cites
// *shifted gamma* measurements of Internet delays.  Here the true per-send
// rates follow normal / shifted-gamma / lognormal distributions (matched
// mean and stddev) while every scheduler keeps its Gaussian beliefs.  If
// EB's advantage needs the exact distribution, it will collapse here; if
// it only needs the first two moments, it will not.
#include "bench_util.h"

using namespace bdps;

namespace {
const char* shape_name(RateShape shape) {
  switch (shape) {
    case RateShape::kNormal:
      return "normal (paper)";
    case RateShape::kShiftedGamma:
      return "shifted gamma";
    case RateShape::kLognormal:
      return "lognormal";
  }
  return "?";
}
}  // namespace

int main(int argc, char** argv) {
  const auto opt = bdps_bench::BenchOptions::parse(argc, argv);
  bdps_bench::banner(
      "Ablation: true rate distribution vs Gaussian beliefs (SSD, rate 12)",
      opt);
  ThreadPool pool(opt.threads);

  TextTable table({"true distribution", "EB earn(k)", "FIFO earn(k)",
                   "EB/FIFO"});
  for (const RateShape shape :
       {RateShape::kNormal, RateShape::kShiftedGamma,
        RateShape::kLognormal}) {
    double earnings[2] = {0.0, 0.0};
    int i = 0;
    for (const StrategyKind strategy :
         {StrategyKind::kEb, StrategyKind::kFifo}) {
      SimConfig config =
          paper_base_config(ScenarioKind::kSsd, 12.0, strategy, opt.seed);
      opt.apply(config);
      config.true_rate_shape = shape;
      earnings[i++] =
          run_replicated(config, opt.replications, &pool).earning.mean() /
          1000.0;
    }
    table.add_row({shape_name(shape), TextTable::fixed(earnings[0], 2),
                   TextTable::fixed(earnings[1], 2),
                   TextTable::fixed(earnings[0] / std::max(earnings[1], 1e-9),
                                    2)});
  }
  table.print(std::cout);
  bdps_bench::maybe_write_csv(
      table, {"distribution", "eb_earning_k", "fifo_earning_k", "ratio"},
      opt.csv_path);
  return 0;
}
