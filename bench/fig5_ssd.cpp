// Figure 5: SSD scenario across publishing rates, EB vs PC vs FIFO vs RL.
//
//   5(a) total earning (k) vs publishing rate
//   5(b) message number (k receptions) vs publishing rate
//
// Paper shape: EB and PC earnings grow monotonically (EB > PC); FIFO and RL
// peak and then collapse under congestion (RL worst).  At rate 15 the EB
// strategy carries ~23% more traffic than FIFO and ~64% more than RL while
// earning ~5x and ~10x as much respectively.
#include <map>

#include "bench_util.h"
#include "stats/chart.h"

using namespace bdps;

int main(int argc, char** argv) {
  const auto opt = bdps_bench::BenchOptions::parse(argc, argv);
  bdps_bench::banner("Figure 5: SSD earning & traffic vs publishing rate",
                     opt);
  ThreadPool pool(opt.threads);

  const auto strategies = paper_comparison_strategies();
  TextTable earning({"rate", "EB", "PC", "FIFO", "RL"});
  TextTable traffic({"rate", "EB", "PC", "FIFO", "RL"});
  std::map<StrategyKind, std::vector<std::pair<double, double>>>
      earning_series;
  std::map<StrategyKind, std::vector<std::pair<double, double>>>
      traffic_series;

  for (const double rate : paper_publishing_rates()) {
    std::vector<std::string> earning_row = {TextTable::fixed(rate, 0)};
    std::vector<std::string> traffic_row = {TextTable::fixed(rate, 0)};
    for (const StrategyKind strategy : strategies) {
      SimConfig config =
          paper_base_config(ScenarioKind::kSsd, rate, strategy, opt.seed);
      opt.apply(config);
      const ReplicatedResult r =
          run_replicated(config, opt.replications, &pool);
      earning_row.push_back(TextTable::fixed(r.earning.mean() / 1000.0, 2));
      traffic_row.push_back(
          TextTable::fixed(r.receptions.mean() / 1000.0, 2));
      earning_series[strategy].emplace_back(rate, r.earning.mean() / 1000.0);
      traffic_series[strategy].emplace_back(rate,
                                            r.receptions.mean() / 1000.0);
    }
    earning.add_row(std::move(earning_row));
    traffic.add_row(std::move(traffic_row));
  }

  std::printf("--- fig 5(a): total earning (k) ---\n");
  earning.print(std::cout);
  AsciiChart earning_chart;
  for (const StrategyKind s : strategies) {
    earning_chart.add_series(strategy_name(s), earning_series[s]);
  }
  earning_chart.print(std::cout, "\nearning (k) vs publishing rate");
  std::printf("\n--- fig 5(b): message number (k receptions) ---\n");
  traffic.print(std::cout);
  AsciiChart traffic_chart;
  for (const StrategyKind s : strategies) {
    traffic_chart.add_series(strategy_name(s), traffic_series[s]);
  }
  traffic_chart.print(std::cout, "\nmessage number (k) vs publishing rate");

  const std::vector<std::string> header = {"rate", "eb", "pc", "fifo", "rl"};
  if (!opt.csv_path.empty()) {
    bdps_bench::maybe_write_csv(earning, header, opt.csv_path + ".earning.csv");
    bdps_bench::maybe_write_csv(traffic, header, opt.csv_path + ".traffic.csv");
  }
  return 0;
}
