// Ablation: link failures — what redundancy buys when the overlay breaks.
//
// Kills k random links (at random instants) during a PSD run and compares
// single-path vs multi-path forwarding under the *same* failure plan.
// Failure injection is where multi-path finally earns its traffic premium:
// single-path strands every subscriber behind a dead link.
#include "bench_util.h"

using namespace bdps;

int main(int argc, char** argv) {
  const auto opt = bdps_bench::BenchOptions::parse(argc, argv);
  bdps_bench::banner("Ablation: random link failures (PSD, rate 6, EB)", opt);
  ThreadPool pool(opt.threads);

  TextTable table({"failed links", "1-path rate(%)", "1-path lost",
                   "2-path rate(%)", "2-path lost"});
  for (const int failures : {0, 2, 4, 8, 12}) {
    std::vector<std::string> row = {TextTable::fixed(failures, 0)};
    for (const bool multipath : {false, true}) {
      SimConfig config = paper_base_config(ScenarioKind::kPsd, 6.0,
                                           StrategyKind::kEb, opt.seed);
      opt.apply(config);
      config.random_link_failures = static_cast<std::size_t>(failures);
      config.multipath = multipath;

      Welford rate;
      Welford lost;
      for (std::size_t r = 0; r < opt.replications; ++r) {
        SimConfig replica = config;
        replica.seed = opt.seed + r;
        const SimResult result = run_simulation(replica);
        rate.add(result.delivery_rate);
        lost.add(static_cast<double>(result.lost_copies));
      }
      row.push_back(TextTable::fixed(100.0 * rate.mean(), 2));
      row.push_back(TextTable::fixed(lost.mean(), 0));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  bdps_bench::maybe_write_csv(table,
                              {"failed_links", "single_rate", "single_lost",
                               "multi_rate", "multi_lost"},
                              opt.csv_path);
  (void)pool;
  return 0;
}
