// Microbenchmark: incremental SPT repair vs full per-destination rebuild.
//
// One iteration = reacting to one localised link transition (a single
// link going down, then back up — the fault timeline's unit of work) for
// one destination's in-tree.  The seed-era answer is compute_tree_toward
// from scratch; the PR-6 answer is repair_tree_toward, which invalidates
// only the severed child closure and re-attaches it through a boundary-
// seeded Dijkstra.  Mesh sizes mirror the dense-graph regime of the other
// micro benches; the gap is the reason RoutingFabric::apply_link_state can
// afford to run inside every fault batch of a storm.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "routing/spt.h"
#include "topology/builders.h"

namespace {

using namespace bdps;

struct Rig {
  Topology topo;
  ShortestPathTree base;
  std::vector<std::vector<EdgeId>> incoming;
  /// Cut stream: links whose loss actually severs part of the tree (their
  /// forward direction lies on it), pre-drawn so iterations measure the
  /// repair, not the search for an interesting link.
  std::vector<std::pair<EdgeId, EdgeId>> cuts;  // (forward, reverse)

  explicit Rig(std::size_t brokers) {
    Rng rng(7);
    topo = build_random_mesh(rng, brokers, brokers * 3, 4, brokers, 50.0,
                             100.0, 20.0);
    const Graph& graph = topo.graph;
    base = compute_tree_toward(graph, 0);
    incoming.resize(graph.broker_count());
    for (std::size_t e = 0; e < graph.edge_count(); ++e) {
      incoming[graph.edge(static_cast<EdgeId>(e)).to].push_back(
          static_cast<EdgeId>(e));
    }
    while (cuts.size() < 256) {
      const EdgeId forward =
          static_cast<EdgeId>(rng.uniform_index(graph.edge_count()));
      const Edge& edge = graph.edge(forward);
      if (base.next_hop[edge.from] != edge.to) continue;  // Not on the tree.
      cuts.emplace_back(forward, graph.edge_id(edge.to, edge.from));
    }
  }
};

/// Seed answer: recompute the whole in-tree after every transition.
void BM_FullRebuildAfterCut(benchmark::State& state) {
  const Rig rig(static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_tree_toward(rig.topo.graph, 0));
    i++;
  }
  state.SetItemsProcessed(state.iterations());
}

/// PR-6 answer: repair the severed region (down), then the restoration
/// cascade (up) — one full down->up churn cycle per iteration, leaving the
/// tree back in its base state for the next one.
void BM_IncrementalRepairCycle(benchmark::State& state) {
  Rig rig(static_cast<std::size_t>(state.range(0)));
  EdgeFlags down(rig.topo.graph.edge_count());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto [forward, reverse] = rig.cuts[i++ & 255];
    const std::vector<EdgeId> batch = {forward, reverse};
    down.set(forward);
    down.set(reverse);
    benchmark::DoNotOptimize(repair_tree_toward(
        rig.topo.graph, rig.incoming, down, batch, {}, rig.base));
    down.reset(forward);
    down.reset(reverse);
    benchmark::DoNotOptimize(repair_tree_toward(
        rig.topo.graph, rig.incoming, down, {}, batch, rig.base));
  }
  state.SetItemsProcessed(state.iterations());
}

#define REPAIR_ARGS ->Arg(64)->Arg(512)->Arg(4096)
BENCHMARK(BM_FullRebuildAfterCut) REPAIR_ARGS;
BENCHMARK(BM_IncrementalRepairCycle) REPAIR_ARGS;

}  // namespace

BENCHMARK_MAIN();
