// Microbenchmark: counting-index matching vs brute-force filter scans.
//
// The broker matches every processed message against its subscription
// table; this is the per-message hot path the SubscriptionIndex exists for.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "message/index.h"

namespace {

using bdps::Filter;
using bdps::Message;
using bdps::Op;
using bdps::Rng;
using bdps::SubscriptionIndex;
using bdps::Value;

std::vector<Filter> make_filters(std::size_t count, Rng& rng) {
  std::vector<Filter> filters;
  filters.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Filter f;
    f.where("A1", Op::kLt, Value(rng.uniform(0.0, 10.0)));
    f.where("A2", Op::kLt, Value(rng.uniform(0.0, 10.0)));
    filters.push_back(std::move(f));
  }
  return filters;
}

Message make_probe(Rng& rng) {
  return Message(1, 0, 0.0, 50.0,
                 {{"A1", Value(rng.uniform(0.0, 10.0))},
                  {"A2", Value(rng.uniform(0.0, 10.0))}});
}

void BM_IndexMatch(benchmark::State& state) {
  Rng rng(1);
  const auto filters = make_filters(static_cast<std::size_t>(state.range(0)),
                                    rng);
  SubscriptionIndex index;
  for (const Filter& f : filters) index.add(f);
  const Message probe = make_probe(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.match(probe));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IndexMatch)->Arg(16)->Arg(160)->Arg(1600)->Arg(16000);

void BM_BruteForceMatch(benchmark::State& state) {
  Rng rng(1);
  const auto filters = make_filters(static_cast<std::size_t>(state.range(0)),
                                    rng);
  const Message probe = make_probe(rng);
  for (auto _ : state) {
    std::vector<std::size_t> matched;
    for (std::size_t i = 0; i < filters.size(); ++i) {
      if (filters[i].matches(probe)) matched.push_back(i);
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BruteForceMatch)->Arg(16)->Arg(160)->Arg(1600)->Arg(16000);

void BM_IndexAdd(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    const auto filters =
        make_filters(static_cast<std::size_t>(state.range(0)), rng);
    SubscriptionIndex index;
    state.ResumeTiming();
    for (const Filter& f : filters) index.add(f);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_IndexAdd)->Arg(160)->Arg(1600);

}  // namespace

BENCHMARK_MAIN();
