// Ablation: imperfect knowledge of link parameters.
//
// The paper assumes brokers know each link's (mu, sigma) exactly (measured
// offline).  Here each broker's *believed* mean is perturbed by a
// multiplicative U(-f, f) error while actual sends keep sampling the true
// links — modelling estimation error from a finite measurement window.
// EB should degrade gracefully: even 30-50% error keeps it well above FIFO.
#include "bench_util.h"

using namespace bdps;

int main(int argc, char** argv) {
  const auto opt = bdps_bench::BenchOptions::parse(argc, argv);
  bdps_bench::banner(
      "Ablation: believed-link error sweep (SSD, rate 12, EB)", opt);
  ThreadPool pool(opt.threads);

  // FIFO ignores beliefs entirely: a flat baseline for context.
  SimConfig fifo_config =
      paper_base_config(ScenarioKind::kSsd, 12.0, StrategyKind::kFifo,
                        opt.seed);
  opt.apply(fifo_config);
  const double fifo_earning =
      run_replicated(fifo_config, opt.replications, &pool).earning.mean() /
      1000.0;

  TextTable table({"belief error", "EB earn(k)", "FIFO earn(k)"});
  for (const double noise : {0.0, 0.1, 0.2, 0.3, 0.5, 0.9}) {
    SimConfig config = paper_base_config(ScenarioKind::kSsd, 12.0,
                                         StrategyKind::kEb, opt.seed);
    opt.apply(config);
    config.belief_noise_frac = noise;
    const ReplicatedResult r =
        run_replicated(config, opt.replications, &pool);
    table.add_row({"+/-" + TextTable::fixed(100.0 * noise, 0) + "%",
                   TextTable::fixed(r.earning.mean() / 1000.0, 2),
                   TextTable::fixed(fifo_earning, 2)});
  }
  table.print(std::cout);
  bdps_bench::maybe_write_csv(
      table, {"belief_error", "eb_earning_k", "fifo_earning_k"},
      opt.csv_path);
  return 0;
}
