// Microbenchmark: sharded engine (sim/parallel/) vs the sequential engine.
//
// One iteration = one complete dense scale-free simulation (the workload
// where one run is too big for one thread): 512 or 4096 brokers,
// 4 links/broker, online estimation on, EBPC scheduling, at 60 msgs/min
// per publisher — sustained heavy traffic, so queues stay deep and the
// per-event scheduling/matching work dominates engine bookkeeping.  The
// argument pair is (brokers, shards); shards = 0 is the sequential
// Simulator baseline the speedups in BENCH_pr4.json are measured against.
// Collector output is bitwise identical across every row of this sweep
// (golden-pinned), so the ratio is pure engine overhead vs parallelism.
// tools/parallel_speedup runs the same configuration with the engine's
// critical-path accounting (the honest number on busy or few-core hosts).
#include <benchmark/benchmark.h>

#include "experiment/paper.h"
#include "experiment/runner.h"

namespace {

using namespace bdps;

SimConfig dense_config(std::size_t brokers, std::size_t shards) {
  SimConfig config =
      paper_base_config(ScenarioKind::kSsd, 60.0, StrategyKind::kEbpc, 1);
  config.topology = TopologyKind::kScaleFree;
  config.broker_count = brokers;
  config.scale_free_edges_per_node = 4;
  config.publisher_count = 8;
  config.subscriber_count = brokers * 4;
  config.online_estimation = true;
  config.workload.duration = minutes(1.0);
  config.shards = shards;
  return config;
}

void BM_ParallelDenseScaleFree(benchmark::State& state) {
  const auto brokers = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  const SimConfig config = dense_config(brokers, shards);
  std::size_t receptions = 0;
  for (auto _ : state) {
    const SimResult r = run_simulation(config);
    receptions += r.receptions;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(receptions));
  state.SetLabel(shards == 0 ? "sequential"
                             : "P=" + std::to_string(shards));
}

BENCHMARK(BM_ParallelDenseScaleFree)
    ->ArgNames({"brokers", "shards"})
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4})
    ->Args({512, 8})
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({4096, 2})
    ->Args({4096, 4})
    ->Args({4096, 8})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
