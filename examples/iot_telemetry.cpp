// IoT telemetry hub: every extension at once.
//
// Sensors publish environment readings with freshness bounds (PSD side of
// the BOTH scenario); dashboards subscribe with OR-queries ("temperature
// out of range OR battery low") and their own tiered deadlines (SSD side),
// come and go during the day (churn), links die occasionally (failure
// injection) and brokers learn link quality online.  One binary shows the
// whole library surface working together.
#include <cstdio>

#include "experiment/paper.h"
#include "experiment/runner.h"
#include "message/filter_parser.h"

using namespace bdps;

int main() {
  std::printf("IoT telemetry hub: BOTH scenario + OR-queries + churn +\n"
              "failures + online estimation (grid overlay)\n\n");

  SimConfig config = paper_base_config(ScenarioKind::kBoth, 10.0,
                                       StrategyKind::kEbpc, 7);
  config.ebpc_weight = 0.6;
  config.topology = TopologyKind::kGrid;
  config.grid_rows = 4;
  config.grid_cols = 6;
  config.publisher_count = 4;
  config.subscriber_count = 72;
  config.workload.duration = minutes(30.0);
  config.workload.churn_fraction = 0.25;  // Dashboards connect for 75%.
  config.random_link_failures = 2;
  config.online_estimation = true;

  std::printf("overlay      : %zux%zu grid, %zu sensors, %zu dashboards\n",
              config.grid_rows, config.grid_cols, config.publisher_count,
              config.subscriber_count);
  std::printf("workload     : %.0f msg/min/sensor for %.0f min, 25%% churn\n",
              config.workload.publishing_rate_per_min,
              config.workload.duration / 60000.0);
  std::printf("disruptions  : %zu random link failures, beliefs learned "
              "online\n\n",
              config.random_link_failures);

  // Demonstrate the OR-query text syntax the dashboards would use.
  const auto alert_query =
      parse_disjunction("A1 > 8.5 || A1 < 1.5 || A2 > 9");
  std::printf("example dashboard query (%zu disjuncts): "
              "\"A1 > 8.5 || A1 < 1.5 || A2 > 9\"\n\n",
              alert_query.size());

  for (const StrategyKind strategy :
       {StrategyKind::kEbpc, StrategyKind::kFifo}) {
    SimConfig run = config;
    run.strategy = strategy;
    const SimResult r = run_simulation(run);
    std::printf("%-5s: delivery rate %5.1f%%  earning %6.0f/%6.0f  "
                "traffic %6zu  purged %4zu  lost %3zu\n",
                strategy_name(strategy).c_str(), 100.0 * r.delivery_rate,
                r.earning, r.potential_earning, r.receptions,
                r.purged_expired + r.purged_hopeless, r.lost_copies);
  }
  std::printf("\nEvery number regenerates from seed %llu.\n",
              static_cast<unsigned long long>(config.seed));
  return 0;
}
