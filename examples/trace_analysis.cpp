// Delay-budget forensics: where do milliseconds go under load?
//
// Attaches a trace to two paper-config runs (EB vs FIFO, rate 12) and
// prints the per-hop decomposition of §3.2's delay model — queueing
// (scheduling delay), transmission (propagation) — plus delivery-latency
// distributions.  Shows *why* EB wins: it does not shrink queueing overall,
// it spends the queueing on messages that no longer matter.
//
//   ./examples/trace_analysis [rate=12] [strategy=EB] [csv=trace.csv]
#include <cstdio>

#include "common/config.h"
#include "experiment/paper.h"
#include "routing/fabric.h"
#include "sim/simulator.h"
#include "trace/analysis.h"
#include "workload/generator.h"

using namespace bdps;

namespace {

TraceAnalysis run_traced(StrategyKind strategy, double rate,
                         const std::string& csv_path) {
  SimConfig config = paper_base_config(ScenarioKind::kPsd, rate, strategy, 3);
  config.workload.duration = minutes(15.0);

  Rng root(config.seed);
  Rng topo_rng = root.split();
  Rng workload_rng = root.split();
  Rng link_rng = root.split();

  const Topology topo = build_topology(topo_rng, config);
  const RoutingFabric fabric(
      topo, generate_subscriptions(workload_rng, config.workload, topo));
  const auto policy = make_strategy(strategy);

  SimulatorOptions options;
  options.processing_delay = config.processing_delay;
  options.purge = config.purge;

  Simulator sim(&topo, &topo.graph, &fabric, policy.get(), options,
                link_rng);
  MemoryTrace trace;
  sim.set_trace(&trace);

  std::unique_ptr<CsvTraceSink> csv;
  if (!csv_path.empty()) {
    // Trace both to memory (analysis) and CSV (external tooling) by
    // chaining: run again is wasteful, so just write memory out at the end.
  }
  for (auto& m : generate_messages(workload_rng, config.workload,
                                   topo.publisher_count())) {
    sim.schedule_publish(std::move(m));
  }
  sim.run();

  if (!csv_path.empty()) {
    CsvTraceSink sink(csv_path);
    for (const TraceEvent& event : trace.events()) sink.record(event);
    std::printf("(full event trace written to %s)\n\n", csv_path.c_str());
  }
  return analyze_trace(trace);
}

void print_analysis(const char* label, const TraceAnalysis& a) {
  std::printf("--- %s ---\n", label);
  std::printf("hops completed      %8zu\n", a.hops.size());
  std::printf("queueing   mean %8.0f ms   max %8.0f ms\n", a.queueing.mean(),
              a.queueing.max());
  std::printf("transmission mean %6.0f ms   max %8.0f ms\n",
              a.transmission.mean(), a.transmission.max());
  std::printf("queueing share of hop delay: %.1f%%\n",
              100.0 * a.queueing_share());
  std::printf("deliveries %zu (%zu fresh); latency fresh mean %.0f ms",
              a.deliveries, a.valid_deliveries, a.valid_latency.mean());
  if (a.late_latency.count() > 0) {
    std::printf(", late mean %.0f ms", a.late_latency.mean());
  }
  std::printf("\ncopies purged in transit: %zu\n\n", a.purged_copies);
}

}  // namespace

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const double rate = args.get_double("rate", 12.0);
  const std::string csv = args.get_string("csv", "");

  std::printf("per-hop delay decomposition (PSD, rate %.0f, 15 min)\n\n",
              rate);
  print_analysis("EB", run_traced(StrategyKind::kEb, rate, csv));
  print_analysis("FIFO", run_traced(StrategyKind::kFifo, rate, ""));
  std::printf(
      "Reading: both strategies queue heavily at this load; EB's queueing\n"
      "lands on messages whose deadlines already passed (and are purged),\n"
      "while FIFO queues everything equally and delivers late.\n");
  return 0;
}
