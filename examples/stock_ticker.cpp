// Tiered stock-quote distribution (the paper's SSD pricing story).
//
// A quote feed publishes ticks for a handful of symbols.  Subscribers buy
// service tiers: "premium" clients pay 3 per fresh quote but demand 10 s
// freshness; "standard" pay 2 for 30 s; "economy" pay 1 for 60 s.  The
// operator's revenue is eq. (2)'s total earning — exactly what the EB
// scheduler maximises.
//
// Demonstrates: string-equality filters, SSD deadlines/prices per
// subscription, run_replicated for error bars.
#include <cstdio>

#include "experiment/sweep.h"
#include "routing/fabric.h"

using namespace bdps;

namespace {

const char* kSymbols[] = {"HK.0005", "HK.0941", "HK.0700", "HK.1299",
                          "HK.2318", "HK.3690", "HK.9988", "HK.0388"};

struct Tier {
  const char* name;
  TimeMs deadline;
  double price;
};
const Tier kTiers[] = {{"premium", seconds(10.0), 3.0},
                       {"standard", seconds(30.0), 2.0},
                       {"economy", seconds(60.0), 1.0}};

std::vector<Subscription> brokerage_clients(const Topology& topo, Rng& rng) {
  std::vector<Subscription> subs;
  for (std::size_t s = 0; s < topo.subscriber_count(); ++s) {
    Subscription sub;
    sub.subscriber = static_cast<SubscriberId>(s);
    sub.home = topo.subscriber_homes[s];
    // Each client watches one symbol.
    Filter f;
    f.where("sym", Op::kEq, Value(kSymbols[rng.uniform_index(8)]));
    sub.filter = std::move(f);
    const Tier& tier = kTiers[rng.uniform_index(3)];
    sub.allowed_delay = tier.deadline;
    sub.price = tier.price;
    subs.push_back(std::move(sub));
  }
  return subs;
}

std::vector<std::shared_ptr<const Message>> quote_feed(Rng& rng,
                                                       std::size_t publishers,
                                                       TimeMs duration,
                                                       double per_min) {
  std::vector<std::shared_ptr<const Message>> feed;
  MessageId next = 0;
  const double gap = 60000.0 / per_min;
  for (std::size_t p = 0; p < publishers; ++p) {
    TimeMs t = rng.exponential(gap);
    while (t < duration) {
      feed.push_back(std::make_shared<Message>(
          next++, static_cast<PublisherId>(p), t, 50.0,
          std::vector<Attribute>{
              {"sym", Value(kSymbols[rng.uniform_index(8)])},
              {"last", Value(rng.uniform(10.0, 500.0))}}));
      t += rng.exponential(gap);
    }
  }
  return feed;
}

double revenue(StrategyKind strategy, std::uint64_t seed, double rate) {
  Rng root(seed);
  Rng topo_rng = root.split();
  Rng workload_rng = root.split();
  Rng link_rng = root.split();

  const Topology topo = build_paper_topology(topo_rng);
  const RoutingFabric fabric(topo, brokerage_clients(topo, workload_rng));
  const auto policy = make_strategy(strategy, 0.6);

  SimulatorOptions options;
  options.processing_delay = 2.0;
  options.purge.epsilon = 0.0005;

  Simulator sim(&topo, &topo.graph, &fabric, policy.get(), options,
                link_rng);
  for (auto& tick :
       quote_feed(workload_rng, topo.publisher_count(), minutes(20.0),
                  rate)) {
    sim.schedule_publish(std::move(tick));
  }
  sim.run();
  return sim.collector().earning();
}

}  // namespace

int main() {
  std::printf("tiered stock-quote distribution (SSD scenario)\n");
  std::printf("tiers: premium 10s/$3, standard 30s/$2, economy 60s/$1\n\n");
  std::printf("%-8s", "rate");
  for (const StrategyKind s : {StrategyKind::kEb, StrategyKind::kEbpc,
                               StrategyKind::kFifo,
                               StrategyKind::kRemainingLifetime}) {
    std::printf("%12s", strategy_name(s).c_str());
  }
  std::printf("\n");
  for (const double rate : {6.0, 12.0, 18.0}) {
    std::printf("%-8.0f", rate);
    for (const StrategyKind s : {StrategyKind::kEb, StrategyKind::kEbpc,
                                 StrategyKind::kFifo,
                                 StrategyKind::kRemainingLifetime}) {
      // Average over three market days (seeds).
      Welford w;
      for (std::uint64_t seed = 11; seed <= 13; ++seed) {
        w.add(revenue(s, seed, rate));
      }
      std::printf("%12.0f", w.mean());
    }
    std::printf("\n");
  }
  std::printf("\nRevenue per strategy: deadline-aware scheduling converts\n"
              "the same bandwidth into more billable quote deliveries.\n");
  return 0;
}
