// Config-driven simulation runner: every knob of SimConfig on the command
// line, one result block on stdout.  The Swiss-army knife for exploring the
// system beyond the canned figures.
//
//   ./examples/sim_cli scenario=SSD strategy=EBPC r=0.6 rate=12 minutes=60 \
//       topology=mesh brokers=48 eps=0.001 multipath=1 online_est=1 seed=9
//
// Run with `help` for the full knob list.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/config.h"
#include "experiment/paper.h"
#include "experiment/runner.h"
#include "topology/dot.h"

using namespace bdps;

namespace {

void print_help() {
  std::printf(
      "sim_cli key=value ...\n"
      "  scenario=PSD|SSD|BOTH      delay model of Sec. 4.1 (default SSD)\n"
      "  strategy=EB|PC|EBPC|FIFO|RL  output-queue scheduler (default EB)\n"
      "  r=0..1                     EBPC weight (default 0.5)\n"
      "  rate=N                     msgs/min/publisher (default 10)\n"
      "  minutes=N                  publish window (default 120)\n"
      "  seed=N                     RNG seed (default 1)\n"
      "  topology=paper|acyclic|mesh|dumbbell|ring|grid|torus|scalefree\n"
      "  brokers=N pubs=N subs=N    generic topology sizes\n"
      "  rows=N cols=N              grid/torus dimensions\n"
      "  config=FILE                read key=value lines from FILE first\n"
      "  dot=FILE                   write the overlay as Graphviz DOT\n"
      "  failures=N                 kill N random links mid-run\n"
      "  shape=normal|gamma|lognormal  true link-rate distribution\n"
      "  size_kb=N                  message size (default 50)\n"
      "  pd=N                       per-broker processing delay ms\n"
      "  eps=F                      purge threshold (default 0.0005; 0=off)\n"
      "  belief_noise=F             broker link-belief error fraction\n"
      "  online_est=0|1             online link estimation\n"
      "  churn=F                    subscriptions inactive for fraction F\n"
      "  serialize_pd=0|1           serialize the processing stage\n"
      "  multipath=0|1              two-path forwarding\n");
}

TopologyKind parse_topology(const std::string& name) {
  if (name == "paper") return TopologyKind::kPaper;
  if (name == "acyclic" || name == "tree") return TopologyKind::kAcyclic;
  if (name == "mesh") return TopologyKind::kRandomMesh;
  if (name == "dumbbell") return TopologyKind::kDumbbell;
  if (name == "ring") return TopologyKind::kRing;
  if (name == "grid" || name == "torus") return TopologyKind::kGrid;
  if (name == "scalefree" || name == "ba") return TopologyKind::kScaleFree;
  throw std::invalid_argument("unknown topology: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  for (const auto& pos : args.positional()) {
    if (pos == "help" || pos == "--help" || pos == "-h") {
      print_help();
      return 0;
    }
  }
  // A config file provides defaults; command-line keys override it.
  if (args.has("config")) {
    std::ifstream in(args.get_string("config", ""));
    if (!in) {
      std::fprintf(stderr, "cannot open config file\n");
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    KeyValueConfig merged = KeyValueConfig::from_text(text.str());
    // Re-apply command-line values on top.
    const KeyValueConfig cli = KeyValueConfig::from_args(argc, argv);
    for (const char* key :
         {"scenario", "strategy", "r", "rate", "minutes", "seed", "topology",
          "brokers", "pubs", "subs", "rows", "cols", "size_kb", "pd", "eps",
          "belief_noise", "online_est", "multipath", "failures", "shape",
          "dot", "churn", "serialize_pd"}) {
      if (cli.has(key)) merged.set(key, cli.get_string(key, ""));
    }
    args = merged;
  }

  SimConfig config = paper_base_config(
      parse_scenario(args.get_string("scenario", "SSD")),
      args.get_double("rate", 10.0),
      parse_strategy(args.get_string("strategy", "EB")),
      static_cast<std::uint64_t>(args.get_int("seed", 1)));
  config.ebpc_weight = args.get_double("r", 0.5);
  config.workload.duration = minutes(args.get_double("minutes", 120.0));
  config.workload.message_size_kb = args.get_double("size_kb", 50.0);
  config.processing_delay = args.get_double("pd", 2.0);
  config.purge.epsilon = args.get_double("eps", 0.0005);
  config.purge.drop_expired = config.purge.epsilon >= 0.0;
  config.belief_noise_frac = args.get_double("belief_noise", 0.0);
  config.online_estimation = args.get_bool("online_est", false);
  config.multipath = args.get_bool("multipath", false);
  config.topology = parse_topology(args.get_string("topology", "paper"));
  config.broker_count =
      static_cast<std::size_t>(args.get_int("brokers", 32));
  config.publisher_count = static_cast<std::size_t>(args.get_int("pubs", 4));
  config.subscriber_count =
      static_cast<std::size_t>(args.get_int("subs", 160));
  config.grid_rows = static_cast<std::size_t>(args.get_int("rows", 4));
  config.grid_cols = static_cast<std::size_t>(args.get_int("cols", 8));
  config.grid_torus = args.get_string("topology", "paper") == "torus";
  config.random_link_failures =
      static_cast<std::size_t>(args.get_int("failures", 0));
  config.workload.churn_fraction = args.get_double("churn", 0.0);
  config.serialize_processing = args.get_bool("serialize_pd", false);
  const std::string shape = args.get_string("shape", "normal");
  if (shape == "gamma") {
    config.true_rate_shape = RateShape::kShiftedGamma;
  } else if (shape == "lognormal") {
    config.true_rate_shape = RateShape::kLognormal;
  }

  const std::string dot_path = args.get_string("dot", "");
  if (!dot_path.empty()) {
    Rng preview_rng(config.seed);
    Rng topo_rng = preview_rng.split();
    const Topology preview = build_topology(topo_rng, config);
    std::ofstream out(dot_path);
    out << to_dot(preview);
    std::printf("overlay written to %s (render with: dot -Tpng %s)\n",
                dot_path.c_str(), dot_path.c_str());
  }

  const SimResult r = run_simulation(config);

  std::printf("config   : %s %s rate=%.1f window=%.0fmin seed=%llu %s%s\n",
              scenario_name(config.workload.scenario).c_str(),
              strategy_name(config.strategy).c_str(),
              config.workload.publishing_rate_per_min,
              config.workload.duration / 60000.0,
              static_cast<unsigned long long>(config.seed),
              config.multipath ? "multipath " : "",
              config.online_estimation ? "online-est " : "");
  std::printf("topology : %s\n", topology_name(config.topology).c_str());
  std::printf("published          %10zu\n", r.published);
  std::printf("receptions         %10zu   (message number)\n", r.receptions);
  std::printf("offered pairs      %10zu\n", r.total_interested);
  std::printf("deliveries         %10zu\n", r.deliveries);
  std::printf("valid deliveries   %10zu\n", r.valid_deliveries);
  std::printf("delivery rate      %10.2f %%\n", 100.0 * r.delivery_rate);
  std::printf("earning            %10.0f   (potential %.0f)\n", r.earning,
              r.potential_earning);
  std::printf("purged             %10zu   (%zu expired, %zu hopeless)\n",
              r.purged_expired + r.purged_hopeless, r.purged_expired,
              r.purged_hopeless);
  if (r.lost_copies > 0) {
    std::printf("lost to failures   %10zu\n", r.lost_copies);
  }
  std::printf("mean valid delay   %10.0f ms\n", r.mean_valid_delay_ms);
  std::printf("drained at         %10.1f s\n", r.end_time / 1000.0);
  return 0;
}
