// Live threaded broker overlay.
//
// Runs the same OutputQueue + SchedulerState engine as the simulator, but
// inside real threads: one receiver thread per broker, one sender thread
// per overlay link, channels for inboxes and a 300x scaled clock so the
// paper's multi-second transfers finish in a terminal-friendly demo.
//
// Demonstrates: LiveNetwork/LiveClock, graceful drain + shutdown, and that
// scheduling behaviour carries over from the discrete-event model to a
// concurrent implementation.
#include <cstdio>

#include "routing/fabric.h"
#include "runtime/live_network.h"

using namespace bdps;

namespace {

struct DemoResult {
  std::size_t valid = 0;
  std::size_t total = 0;
  std::size_t purged = 0;
  double earning = 0.0;
};

DemoResult run_live(StrategyKind strategy) {
  Rng root(42);
  Rng topo_rng = root.split();
  Rng workload_rng = root.split();

  // A small mesh so the demo completes quickly: 12 brokers, 2 publishers,
  // 24 subscribers.
  const Topology topo =
      build_random_mesh(topo_rng, 12, 8, 2, 24, 40.0, 80.0, 15.0);

  std::vector<Subscription> subs;
  for (std::size_t s = 0; s < topo.subscriber_count(); ++s) {
    Subscription sub;
    sub.subscriber = static_cast<SubscriberId>(s);
    sub.home = topo.subscriber_homes[s];
    Filter f;
    f.where("A1", Op::kLt, Value(workload_rng.uniform(0.0, 10.0)));
    sub.filter = std::move(f);
    sub.allowed_delay = seconds(4.0 + 4.0 * workload_rng.uniform_index(3));
    sub.price = 1.0 + workload_rng.uniform_index(3);
    subs.push_back(std::move(sub));
  }
  const RoutingFabric fabric(topo, std::move(subs));
  const auto policy = make_strategy(strategy, 0.6);

  LiveOptions options;
  options.processing_delay = 2.0;
  options.speedup = 300.0;  // 300 simulated ms per real ms.
  options.purge.epsilon = 0.0005;

  LiveNetwork net(&topo, &fabric, policy.get(), options);
  net.start();

  // Publish 60 messages, in bursts, from alternating publishers.
  Rng publish_rng = root.split();
  for (int burst = 0; burst < 6; ++burst) {
    for (int i = 0; i < 10; ++i) {
      const Message tick(0, 0, 0.0, 50.0,
                         {{"A1", Value(publish_rng.uniform(0.0, 10.0))}});
      net.publish(static_cast<PublisherId>(i % 2), tick);
    }
    // Let roughly two transmission times pass between bursts.
    net.clock().sleep_for(6000.0);
  }

  net.drain();
  net.stop();

  DemoResult result;
  result.total = net.stats().deliveries().size();
  result.valid = net.stats().valid_deliveries();
  result.purged = net.stats().purged();
  result.earning = net.stats().earning();
  return result;
}

}  // namespace

int main() {
  std::printf("live threaded broker overlay (300x scaled clock)\n");
  std::printf("12 brokers / 2 publishers / 24 subscribers, 60 messages\n\n");
  for (const StrategyKind strategy :
       {StrategyKind::kEb, StrategyKind::kFifo}) {
    const DemoResult r = run_live(strategy);
    std::printf(
        "%-5s: %zu deliveries (%zu fresh), %zu copies purged, earning %.0f\n",
        strategy_name(strategy).c_str(), r.total, r.valid, r.purged,
        r.earning);
  }
  std::printf("\nEvery broker ran as a thread; senders used the same\n"
              "OutputQueue + SchedulerState engine the simulator drives.\n");
  return 0;
}
