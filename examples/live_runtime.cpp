// Live broker overlay — reactor worker pool vs. thread-per-link oracle.
//
// Runs the same OutputQueue + SchedulerState engine as the simulator under
// real concurrency, in both execution modes: the event-driven reactor
// (N workers + hierarchical timer wheel, the default) and the legacy
// thread-per-link runtime it retires.  The experiment/live.h harness
// builds a SimConfig-shaped mesh workload, paces publishes to their
// generated instants on a scaled clock, and reports totals.
//
// Demonstrates: LiveRunConfig/run_live, the `mode` and `workers` knobs,
// and that a hardware-sized pool delivers the same workload totals as a
// topology-sized thread herd.
#include <cstdio>

#include "experiment/live.h"

using namespace bdps;

namespace {

LiveRunConfig demo_config(StrategyKind strategy, LiveMode mode,
                          std::size_t workers) {
  LiveRunConfig config;
  config.sim.seed = 42;
  config.sim.topology = TopologyKind::kRandomMesh;
  config.sim.broker_count = 12;
  config.sim.extra_edges = 8;
  config.sim.publisher_count = 2;
  config.sim.subscriber_count = 24;
  config.sim.strategy = strategy;
  config.sim.purge.epsilon = 0.0005;
  config.sim.workload.scenario = ScenarioKind::kSsd;
  config.sim.workload.duration = seconds(60.0);
  config.sim.workload.publishing_rate_per_min = 30.0;
  config.mode = mode;
  config.workers = workers;
  config.speedup = 300.0;  // 300 simulated ms per real ms.
  return config;
}

}  // namespace

int main() {
  std::printf("live broker overlay (300x scaled clock)\n");
  std::printf("12 brokers / 2 publishers / 24 subscribers, SSD workload\n\n");
  std::printf("%-5s %-14s %8s %8s %11s %8s %8s\n", "strat", "mode", "links",
              "workers", "deliveries", "purged", "wall ms");
  for (const StrategyKind strategy :
       {StrategyKind::kEb, StrategyKind::kFifo}) {
    for (const LiveMode mode :
         {LiveMode::kReactor, LiveMode::kThreadPerLink}) {
      const LiveRunResult r =
          run_live(demo_config(strategy, mode, /*workers=*/0));
      std::printf("%-5s %-14s %8zu %8zu %5zu/%-5zu %8zu %8.1f\n",
                  strategy_name(strategy).c_str(),
                  mode == LiveMode::kReactor ? "reactor" : "thread/link",
                  r.links, r.workers, r.valid_deliveries, r.deliveries,
                  r.purged, r.wall_ms);
    }
  }
  std::printf(
      "\nreactor: brokers ride N hardware-sized workers; every PD and\n"
      "transmission is a timer-wheel deadline, links pop OutputQueue picks\n"
      "inline on expiry.  thread/link: the retired oracle — one thread per\n"
      "broker plus one per subscribed link, sleeping through every delay.\n");
  return 0;
}
