// Live broker overlay — in-process reactor vs. socket-backed shards.
//
// Runs the same OutputQueue + SchedulerState engine as the simulator under
// real concurrency, in both execution modes: the event-driven reactor
// (N workers + hierarchical timer wheel) with the whole overlay in one
// process, and the distributed socket runtime — here as a 2-shard
// in-process cluster whose cut edges ride loopback TCP trunks
// (net/endpoint.h), exactly what tools/brokerd runs one-shard-per-process.
// The experiment/live.h harness builds a SimConfig-shaped mesh workload,
// paces publishes to their generated instants on a scaled clock, and
// reports merged totals.
//
// Demonstrates: LiveRunConfig/run_live, the `mode`, `workers` and `shards`
// knobs, and that the sharded overlay delivers the same workload totals as
// the single-process pool.
#include <cstdio>

#include "experiment/live.h"

using namespace bdps;

namespace {

LiveRunConfig demo_config(StrategyKind strategy, LiveMode mode,
                          std::size_t workers) {
  LiveRunConfig config;
  config.sim.seed = 42;
  config.sim.topology = TopologyKind::kRandomMesh;
  config.sim.broker_count = 12;
  config.sim.extra_edges = 8;
  config.sim.publisher_count = 2;
  config.sim.subscriber_count = 24;
  config.sim.strategy = strategy;
  config.sim.purge.epsilon = 0.0005;
  config.sim.workload.scenario = ScenarioKind::kSsd;
  config.sim.workload.duration = seconds(60.0);
  config.sim.workload.publishing_rate_per_min = 30.0;
  config.mode = mode;
  config.workers = workers;
  config.speedup = 300.0;  // 300 simulated ms per real ms.
  if (mode == LiveMode::kSocket) config.shards = 2;
  return config;
}

}  // namespace

int main() {
  std::printf("live broker overlay (300x scaled clock)\n");
  std::printf("12 brokers / 2 publishers / 24 subscribers, SSD workload\n\n");
  std::printf("%-5s %-14s %8s %8s %8s %11s %8s %8s\n", "strat", "mode",
              "links", "workers", "trunked", "deliveries", "purged",
              "wall ms");
  for (const StrategyKind strategy :
       {StrategyKind::kEb, StrategyKind::kFifo}) {
    for (const LiveMode mode : {LiveMode::kReactor, LiveMode::kSocket}) {
      const LiveRunResult r =
          run_live(demo_config(strategy, mode, /*workers=*/0));
      std::printf("%-5s %-14s %8zu %8zu %8llu %5zu/%-5zu %8zu %8.1f\n",
                  strategy_name(strategy).c_str(),
                  mode == LiveMode::kReactor ? "reactor" : "socket x2",
                  r.links, r.workers,
                  static_cast<unsigned long long>(r.trunk_forwards),
                  r.valid_deliveries, r.deliveries, r.purged, r.wall_ms);
    }
  }
  std::printf(
      "\nreactor: brokers ride N hardware-sized workers; every PD and\n"
      "transmission is a timer-wheel deadline, links pop OutputQueue picks\n"
      "inline on expiry.  socket x2: the same engine split across two\n"
      "shards — a transmission completing toward a remote broker crosses a\n"
      "loopback TCP trunk (cumulative-ack reliability, `trunked` counts\n"
      "those copies) instead of a worker mailbox.\n");
  return 0;
}
