// Traffic-information dissemination (the paper's motivating PSD example).
//
// Publishers are roadside sensors announcing congestion levels for city
// zones; each alert is stamped with an allowed delay — stale traffic news
// is worthless.  Subscribers near an incident need the news fast, so the
// publisher gives severe alerts a tighter bound.
//
// Demonstrates: custom filters via the text parser, per-message deadlines
// (PSD), and how the EB scheduler spends bandwidth on alerts that can
// still arrive in time.
#include <cstdio>

#include "experiment/runner.h"
#include "message/filter_parser.h"
#include "routing/fabric.h"
#include "workload/generator.h"

using namespace bdps;

namespace {

/// Builds a metropolitan overlay: the paper's layered mesh, but we name the
/// roles: layer-1 brokers ingest sensor feeds, layer-4 brokers serve
/// commuter apps.
Topology build_city(Rng& rng) { return build_paper_topology(rng); }

/// Commuter subscriptions: zone of interest + minimum severity, written in
/// the filter language.
std::vector<Subscription> commuter_subscriptions(const Topology& topo,
                                                 Rng& rng) {
  std::vector<Subscription> subs;
  for (std::size_t s = 0; s < topo.subscriber_count(); ++s) {
    Subscription sub;
    sub.subscriber = static_cast<SubscriberId>(s);
    sub.home = topo.subscriber_homes[s];
    const int zone = static_cast<int>(rng.uniform_index(8));
    const int min_severity = 1 + static_cast<int>(rng.uniform_index(3));
    sub.filter = parse_filter("zone == " + std::to_string(zone) +
                              " && severity >= " +
                              std::to_string(min_severity));
    // PSD: the message's own deadline governs.
    sub.allowed_delay = kNoDeadline;
    sub.price = 1.0;
    subs.push_back(std::move(sub));
  }
  return subs;
}

/// Sensor feed: alerts with zone/severity attributes; severe incidents get
/// tight deadlines (they page emergency crews), mild ones can lag.
std::vector<std::shared_ptr<const Message>> sensor_feed(
    Rng& rng, std::size_t publisher_count, TimeMs duration, double per_min) {
  std::vector<std::shared_ptr<const Message>> feed;
  MessageId next_id = 0;
  const double gap = 60000.0 / per_min;
  for (std::size_t p = 0; p < publisher_count; ++p) {
    TimeMs t = rng.exponential(gap);
    while (t < duration) {
      const auto severity = static_cast<std::int64_t>(1 + rng.uniform_index(3));
      const auto zone = static_cast<std::int64_t>(rng.uniform_index(8));
      const TimeMs deadline =
          severity == 3 ? seconds(12.0)
                        : (severity == 2 ? seconds(20.0) : seconds(30.0));
      feed.push_back(std::make_shared<Message>(
          next_id++, static_cast<PublisherId>(p), t, 50.0,
          std::vector<Attribute>{{"zone", Value(zone)},
                                 {"severity", Value(severity)}},
          deadline));
      t += rng.exponential(gap);
    }
  }
  return feed;
}

struct Outcome {
  std::size_t offered = 0;
  std::size_t valid = 0;
  std::size_t receptions = 0;
};

Outcome run_city(StrategyKind strategy, std::uint64_t seed) {
  Rng root(seed);
  Rng topo_rng = root.split();
  Rng workload_rng = root.split();
  Rng link_rng = root.split();

  const Topology topo = build_city(topo_rng);
  const RoutingFabric fabric(topo,
                             commuter_subscriptions(topo, workload_rng));
  const auto policy = make_strategy(strategy);

  SimulatorOptions options;
  options.processing_delay = 2.0;
  options.purge.epsilon = 0.0005;

  Simulator sim(&topo, &topo.graph, &fabric, policy.get(), options,
                link_rng);
  for (auto& alert :
       sensor_feed(workload_rng, topo.publisher_count(), minutes(20.0),
                   12.0)) {
    sim.schedule_publish(std::move(alert));
  }
  sim.run();
  return Outcome{sim.collector().total_interested(),
                 sim.collector().valid_deliveries(),
                 sim.collector().receptions()};
}

}  // namespace

int main() {
  std::printf("traffic-alert dissemination (PSD scenario)\n");
  std::printf("zone/severity filters, severity-dependent deadlines\n\n");
  for (const StrategyKind strategy :
       {StrategyKind::kEb, StrategyKind::kEbpc, StrategyKind::kFifo,
        StrategyKind::kRemainingLifetime}) {
    const Outcome o = run_city(strategy, 2026);
    std::printf("%-5s: %5zu/%5zu alerts fresh on arrival (%.1f%%), traffic %zu msgs\n",
                strategy_name(strategy).c_str(), o.valid, o.offered,
                o.offered ? 100.0 * o.valid / o.offered : 0.0, o.receptions);
  }
  std::printf("\nSevere alerts carry 12 s bounds; EB-family strategies drop\n"
              "alerts that can no longer arrive fresh instead of clogging\n"
              "links with them.\n");
  return 0;
}
