// Quickstart: build the paper's overlay, publish for a simulated period and
// compare two scheduling strategies.
//
//   ./examples/quickstart [rate=10] [scenario=SSD] [seed=1]
//
// Walks through the whole public API: topology builders, workload
// generation, routing fabric, scheduler selection and the simulation
// runner.
#include <cstdio>

#include "common/config.h"
#include "experiment/paper.h"
#include "experiment/runner.h"

int main(int argc, char** argv) {
  const bdps::KeyValueConfig args = bdps::KeyValueConfig::from_args(argc, argv);
  const double rate = args.get_double("rate", 10.0);
  const bdps::ScenarioKind scenario =
      bdps::parse_scenario(args.get_string("scenario", "SSD"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::printf("bounded-delay pub/sub quickstart\n");
  std::printf("scenario=%s  publishing rate=%.0f msg/min/publisher  seed=%llu\n\n",
              bdps::scenario_name(scenario).c_str(), rate,
              static_cast<unsigned long long>(seed));

  for (const bdps::StrategyKind strategy :
       {bdps::StrategyKind::kEb, bdps::StrategyKind::kFifo}) {
    // paper_base_config reproduces §6.1: fig. 3 topology (32 brokers,
    // 4 publishers, 160 subscribers), 50 KB messages, PD = 2 ms,
    // eps = 0.05%, 2 h publish window.
    bdps::SimConfig config =
        bdps::paper_base_config(scenario, rate, strategy, seed);
    // Keep the demo fast: a 20-minute window is plenty to see the gap.
    config.workload.duration = bdps::minutes(20.0);

    const bdps::SimResult result = bdps::run_simulation(config);

    std::printf("strategy %-4s : published %5zu, receptions %6zu\n",
                bdps::strategy_name(strategy).c_str(), result.published,
                result.receptions);
    std::printf("    valid deliveries %6zu / %6zu offered  (delivery rate %5.1f%%)\n",
                result.valid_deliveries, result.total_interested,
                100.0 * result.delivery_rate);
    if (scenario == bdps::ScenarioKind::kSsd) {
      std::printf("    earning %.0f of potential %.0f\n", result.earning,
                  result.potential_earning);
    }
    std::printf("    purged: %zu expired, %zu hopeless;  mean valid delay %.0f ms\n\n",
                result.purged_expired, result.purged_hopeless,
                result.mean_valid_delay_ms);
  }
  std::printf("Run the bench/ binaries to regenerate the paper's figures.\n");
  return 0;
}
