// Per-neighbour fan-out grouping shared by the simulator broker and the
// live runtime's receiver loop.
//
// Matching a message yields a flat list of subscription-table rows; the
// dispatch step needs them split into local deliveries plus one group per
// downstream neighbour (each group becomes one queued copy).  The grouping
// slots are a reused member sorted by neighbour id and binary searched —
// broker degree is small and fixed — so a fan-out allocates nothing beyond
// the targets vector each queued copy must own anyway.  The publisher-mask
// and activation-window (churn) filters live here so both runtimes apply
// the same admission rules.
#pragma once

#include <utility>
#include <vector>

#include "routing/subscription.h"

namespace bdps {

class FanOutGrouper {
 public:
  /// One reusable slot per downstream neighbour; `neighbors` must be
  /// sorted ascending and fixed for the grouper's lifetime.
  void bind(std::vector<BrokerId> neighbors);

  /// Splits `matched` into local() and groups(), dropping rows whose entry
  /// does not serve `message`'s publisher or whose subscription was
  /// inactive at its publish instant.
  void group(const std::vector<const SubscriptionEntry*>& matched,
             const Message& message);

  const std::vector<const SubscriptionEntry*>& local() const { return local_; }

  /// Slots in ascending neighbour order; empty groups stay in place.
  /// Callers may move a slot's vector out, leaving it empty for reuse.
  std::vector<std::pair<BrokerId, std::vector<const SubscriptionEntry*>>>&
  groups() {
    return groups_;
  }

 private:
  std::vector<const SubscriptionEntry*> local_;
  std::vector<std::pair<BrokerId, std::vector<const SubscriptionEntry*>>>
      groups_;
};

}  // namespace bdps
