// Per-neighbour fan-out grouping shared by the simulator broker and the
// live runtime's receiver loop.
//
// Matching a message yields a flat list of subscription-table rows; the
// dispatch step needs them split into local deliveries plus one group per
// downstream neighbour (each group becomes one queued copy).  The grouping
// slots are a reused member sorted by neighbour id and binary searched —
// broker degree is small and fixed — so a fan-out allocates nothing beyond
// the targets vector each queued copy must own anyway.  Each slot carries
// the link's EdgeId alongside the neighbour id: slot order is the broker's
// queue-slot order and the edge indexes flat per-link state, so consumers
// never re-resolve a link.  The publisher-mask and activation-window
// (churn) filters live here so both runtimes apply the same admission
// rules.
#pragma once

#include <vector>

#include "routing/subscription.h"

namespace bdps {

/// One reusable per-neighbour grouping slot.
struct FanOutGroup {
  BrokerId neighbor = kNoBroker;
  EdgeId edge = kNoEdge;
  std::vector<const SubscriptionEntry*> targets;
};

class FanOutGrouper {
 public:
  /// One reusable slot per downstream link; `links` must be sorted
  /// ascending by neighbour and fixed for the grouper's lifetime.  Slot i
  /// of groups() keeps links[i]'s neighbour/edge forever, so callers can
  /// align external per-link arrays (e.g. Broker's queue slots) by index.
  void bind(std::vector<LinkRef> links);

  /// Splits `matched` into local() and groups(), dropping rows whose entry
  /// does not serve `message`'s publisher or whose subscription was
  /// inactive at its publish instant.
  void group(const std::vector<const SubscriptionEntry*>& matched,
             const Message& message);

  const std::vector<const SubscriptionEntry*>& local() const { return local_; }

  /// Slots in ascending neighbour order; empty groups stay in place.
  /// Callers may move a slot's targets vector out, leaving it empty for
  /// reuse.
  std::vector<FanOutGroup>& groups() { return groups_; }

 private:
  std::vector<const SubscriptionEntry*> local_;
  std::vector<FanOutGroup> groups_;
};

}  // namespace bdps
