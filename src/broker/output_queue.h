// Per-neighbour output queue (§3.2, fig. 2).
//
// One instance exists per (broker, downstream neighbour) pair.  It owns the
// waiting messages, the link-busy flag (a send is in flight) and the
// believed parameters of its link, from which the head-of-line estimate FT
// of eq. (6) is derived.
#pragma once

#include <optional>
#include <vector>

#include "scheduling/purge.h"
#include "scheduling/scheduler.h"
#include "topology/graph.h"

namespace bdps {

class OutputQueue {
 public:
  OutputQueue(BrokerId neighbor, EdgeId edge, LinkParams believed_link)
      : neighbor_(neighbor), edge_(edge), believed_link_(believed_link) {}

  BrokerId neighbor() const { return neighbor_; }
  EdgeId edge() const { return edge_; }
  const LinkParams& believed_link() const { return believed_link_; }
  void set_believed_link(LinkParams params) { believed_link_ = params; }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }
  const std::vector<QueuedMessage>& messages() const { return queue_; }

  bool link_busy() const { return link_busy_; }
  void set_link_busy(bool busy) { link_busy_ = busy; }

  void enqueue(QueuedMessage queued) { queue_.push_back(std::move(queued)); }

  /// Drops every queued message (link failure); returns how many.
  std::size_t clear() {
    const std::size_t dropped = queue_.size();
    queue_.clear();
    return dropped;
  }

  /// FT of eq. (6): estimated head-of-line transmission time given the
  /// running average message size.
  TimeMs head_of_line_estimate(double average_message_size_kb) const {
    return average_message_size_kb * believed_link_.mean_ms_per_kb;
  }

  /// Purges invalid messages (eq. 11), then removes and returns the
  /// scheduler's choice; nullopt when the purge emptied the queue.  The
  /// caller is responsible for the busy flag (it knows when the send ends).
  /// `purged_ids` (optional) receives the ids of purged messages.
  std::optional<QueuedMessage> take_next(
      const Scheduler& scheduler, const SchedulingContext& context,
      const PurgePolicy& policy, PurgeStats* purge_stats,
      std::vector<MessageId>* purged_ids = nullptr);

 private:
  BrokerId neighbor_;
  EdgeId edge_;
  LinkParams believed_link_;
  std::vector<QueuedMessage> queue_;
  bool link_busy_ = false;
};

}  // namespace bdps
