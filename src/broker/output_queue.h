// Per-neighbour output queue (§3.2, fig. 2).
//
// One instance exists per (broker, downstream neighbour) pair.  It owns the
// waiting messages, the link-busy flag (a send is in flight), the believed
// parameters of its link — from which the head-of-line estimate FT of
// eq. (6) is derived — and the per-queue SchedulerState minted from the
// run's shared Strategy.  Every queue mutation is forwarded to the state's
// lifecycle hooks, so picks are incremental instead of full rescans.  The
// discrete-event simulator and the threaded live runtime drive the same
// class; one queue is driven by one thread at a time (the live runtime
// locks per link).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "scheduling/purge.h"
#include "scheduling/scheduler.h"
#include "topology/graph.h"

namespace bdps {

class OutputQueue {
 public:
  /// `strategy` must outlive the queue (it is shared across the run).
  OutputQueue(BrokerId neighbor, EdgeId edge, LinkParams believed_link,
              const Strategy* strategy)
      : neighbor_(neighbor),
        edge_(edge),
        believed_link_(believed_link),
        strategy_(strategy) {}

  /// Moving re-homes the message vector, so the bound SchedulerState is
  /// dropped and lazily re-minted (and replayed) at the new address.  Only
  /// container shuffling during broker construction moves queues; by then
  /// they are empty, so the replay is free.
  OutputQueue(OutputQueue&& other) noexcept
      : neighbor_(other.neighbor_),
        edge_(other.edge_),
        believed_link_(other.believed_link_),
        strategy_(other.strategy_),
        queue_(std::move(other.queue_)),
        link_busy_(other.link_busy_) {}
  OutputQueue& operator=(OutputQueue&&) = delete;
  OutputQueue(const OutputQueue&) = delete;
  OutputQueue& operator=(const OutputQueue&) = delete;

  BrokerId neighbor() const { return neighbor_; }
  EdgeId edge() const { return edge_; }
  const LinkParams& believed_link() const { return believed_link_; }
  /// Rate-estimate update (§3.2 measurement loop).  Affects only the FT the
  /// caller derives into future contexts; scheduler-state score bounds are
  /// FT-independent, so no invalidation is needed.
  void set_believed_link(LinkParams params) { believed_link_ = params; }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }
  const std::vector<QueuedMessage>& messages() const { return queue_; }

  bool link_busy() const { return link_busy_; }
  void set_link_busy(bool busy) { link_busy_ = busy; }

  void enqueue(QueuedMessage queued) {
    // Mint (and replay) the state before growing the queue, so the new row
    // is announced exactly once.
    SchedulerState& scheduler = state();
    queue_.push_back(std::move(queued));
    scheduler.on_enqueue(queue_.size() - 1);
  }

  /// Drops every queued message (link failure); returns how many.
  std::size_t clear() {
    const std::size_t dropped = queue_.size();
    queue_.clear();
    state_.reset();  // Cheaper to re-mint empty than to unwind row by row.
    return dropped;
  }

  /// FT of eq. (6): estimated head-of-line transmission time given the
  /// running average message size.
  TimeMs head_of_line_estimate(double average_message_size_kb) const {
    return average_message_size_kb * believed_link_.mean_ms_per_kb;
  }

  /// Purges invalid messages (eq. 11), then removes and returns the
  /// scheduler state's choice; nullopt when the purge emptied the queue.
  /// The caller is responsible for the busy flag (it knows when the send
  /// ends).  `purged_ids` (optional) receives the ids of purged messages.
  std::optional<QueuedMessage> take_next(
      const SchedulingContext& context, const PurgePolicy& policy,
      PurgeStats* purge_stats, std::vector<MessageId>* purged_ids = nullptr);

  /// The bound per-queue scheduler state (minted on first use).
  SchedulerState& state();

 private:
  BrokerId neighbor_;
  EdgeId edge_;
  LinkParams believed_link_;
  const Strategy* strategy_;
  std::vector<QueuedMessage> queue_;
  std::unique_ptr<SchedulerState> state_;
  bool link_busy_ = false;
};

}  // namespace bdps
