#include "broker/fanout.h"

#include <algorithm>
#include <cassert>

#include "message/message.h"

namespace bdps {

void FanOutGrouper::bind(std::vector<LinkRef> links) {
  assert(std::is_sorted(links.begin(), links.end(),
                        [](const LinkRef& a, const LinkRef& b) {
                          return a.neighbor < b.neighbor;
                        }));
  groups_.clear();
  groups_.reserve(links.size());
  for (const LinkRef& link : links) {
    groups_.push_back(FanOutGroup{link.neighbor, link.edge, {}});
  }
}

void FanOutGrouper::group(
    const std::vector<const SubscriptionEntry*>& matched,
    const Message& message) {
  local_.clear();
  for (FanOutGroup& group : groups_) {
    group.targets.clear();
  }
  for (const SubscriptionEntry* entry : matched) {
    if (entry->disabled) continue;  // Retired by routing repair.
    if (!entry->serves_publisher(message.publisher())) continue;
    if (!entry->subscription->active_at(message.publish_time())) continue;
    if (entry->is_local()) {
      local_.push_back(entry);
    } else {
      const auto slot = std::lower_bound(
          groups_.begin(), groups_.end(), entry->next_hop,
          [](const FanOutGroup& group, BrokerId id) {
            return group.neighbor < id;
          });
      assert(slot != groups_.end() && slot->neighbor == entry->next_hop);
      slot->targets.push_back(entry);
    }
  }
}

}  // namespace bdps
