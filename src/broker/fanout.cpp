#include "broker/fanout.h"

#include <algorithm>
#include <cassert>

#include "message/message.h"

namespace bdps {

void FanOutGrouper::bind(std::vector<BrokerId> neighbors) {
  assert(std::is_sorted(neighbors.begin(), neighbors.end()));
  groups_.clear();
  groups_.reserve(neighbors.size());
  for (const BrokerId neighbor : neighbors) {
    groups_.emplace_back(neighbor,
                         std::vector<const SubscriptionEntry*>{});
  }
}

void FanOutGrouper::group(
    const std::vector<const SubscriptionEntry*>& matched,
    const Message& message) {
  local_.clear();
  for (auto& [neighbor, targets] : groups_) {
    (void)neighbor;
    targets.clear();
  }
  for (const SubscriptionEntry* entry : matched) {
    if (!entry->serves_publisher(message.publisher())) continue;
    if (!entry->subscription->active_at(message.publish_time())) continue;
    if (entry->is_local()) {
      local_.push_back(entry);
    } else {
      const auto slot = std::lower_bound(
          groups_.begin(), groups_.end(), entry->next_hop,
          [](const auto& group, BrokerId id) { return group.first < id; });
      assert(slot != groups_.end() && slot->first == entry->next_hop);
      slot->second.push_back(entry);
    }
  }
}

}  // namespace bdps
