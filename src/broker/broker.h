// Message broker node (fig. 2 of the paper).
//
// A Broker owns its output queues (one per downstream neighbour present in
// its subscription table) and implements the message-processing step:
// match the message against the subscription table, deliver locally, and
// fan one copy out per downstream neighbour that still has interested
// subscribers for this message's publisher.  Timing (processing delay,
// send durations, link events) is driven from outside — the discrete-event
// simulator and the threaded live runtime share this class.
//
// Queue storage is a flat slot vector in ascending neighbour order; the
// QueueSlot index is the broker-local link address every caller works in
// (FanOut, Dispatch, take_next).  Each queue also names its EdgeId for
// global flat per-edge state.  There is no BrokerId-keyed access anymore:
// resolve a neighbour once with `slot_of` and stay in slot space (the PR 3
// wrapper shims `queue(id)` / `has_queue(id)` / `context(id, …)` are gone).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "broker/fanout.h"
#include "broker/output_queue.h"
#include "routing/fabric.h"

namespace bdps {

class ThreadPool;

class Broker {
 public:
  /// Index of an output queue within this broker's slot vector; dense in
  /// [0, queue_count()), ascending neighbour order.
  using QueueSlot = std::int32_t;
  static constexpr QueueSlot kNoSlot = -1;

  /// `believed_links` provides the link parameters this broker uses for its
  /// scheduling math (FT); they may deviate from the true simulation links
  /// in the estimation ablation.  `strategy` is the run's shared scheduling
  /// policy; each queue mints its own SchedulerState from it.
  /// `processing_delay` (PD) is folded into the precomputed scoring kernel
  /// of every enqueued copy.  `queues_for_all_links` binds a queue slot for
  /// every believed out-link instead of only the neighbours present in the
  /// initial subscription table — required when routing repair can re-point
  /// entries at neighbours that carried no subscription at construction
  /// time (fan-out asserts the target slot exists).
  Broker(BrokerId id, const RoutingFabric* fabric, const Graph* believed_links,
         const Strategy* strategy, TimeMs processing_delay = 0.0,
         bool queues_for_all_links = false);

  BrokerId id() const { return id_; }

  /// Result of processing one message at this broker.
  struct FanOut {
    /// Local subscription rows matched by the message.
    std::vector<const SubscriptionEntry*> local;
    /// Slots whose queue received a copy *and* whose link is idle — the
    /// caller should start a send on each.
    std::vector<QueueSlot> sendable;
    /// Every slot that received a copy (sendable or not); trace support.
    std::vector<QueueSlot> enqueued;
  };

  /// Matches `message` against the subscription table and enqueues copies
  /// toward each relevant downstream neighbour (entries are filtered to the
  /// message's publisher and its activation window).  Also folds the
  /// message size into the broker's running average (the basis of eq. 6's
  /// FT).
  FanOut process(const std::shared_ptr<const Message>& message, TimeMs now);

  /// One per-queue purge + pick outcome of take_next.
  struct Dispatch {
    QueueSlot slot = kNoSlot;
    /// The slot's downstream neighbour (= queue_at(slot).neighbor());
    /// carried so trace/accounting consumers need no lookup.
    BrokerId neighbor = kNoBroker;
    std::optional<QueuedMessage> chosen;
    PurgeStats purge;
    /// Ids of purged messages; filled only when requested.
    std::vector<MessageId> purged_ids;
  };

  /// Queues with at least this many link-free neighbours fan their
  /// purge + pick work across the thread pool (when one is provided).
  static constexpr std::size_t kParallelDispatchThreshold = 4;

  /// Purges then picks on each named queue slot at instant `now`, writing
  /// results into `out` in `slots` order (resized to match; inner buffers
  /// are reused across calls).  Queue states are independent — the paper's
  /// link-free instants decouple per-neighbour decisions — so when `pool`
  /// is non-null and the batch reaches kParallelDispatchThreshold the
  /// per-queue work runs across the pool; results are bitwise identical
  /// either way.  The caller remains responsible for busy flags and
  /// anything involving shared RNG streams or event queues.
  void take_next(std::span<const QueueSlot> slots, TimeMs now,
                 const PurgePolicy& policy, std::vector<Dispatch>& out,
                 ThreadPool* pool = nullptr, bool collect_purged_ids = false);

  std::size_t queue_count() const { return queues_.size(); }

  /// Output queues in ascending neighbour order; position == QueueSlot.
  const std::vector<OutputQueue>& queues() const { return queues_; }

  OutputQueue& queue_at(QueueSlot slot) { return queues_[slot]; }
  const OutputQueue& queue_at(QueueSlot slot) const { return queues_[slot]; }

  /// Slot of the queue toward `neighbor`; kNoSlot when absent (binary
  /// search over the sorted neighbour keys).
  QueueSlot slot_of(BrokerId neighbor) const;

  /// Running average size of the messages this broker has processed; the
  /// paper's FT estimates head-of-line transmission time from it.
  double average_message_size_kb() const;

  /// Builds the SchedulingContext for a pick/purge on a slot's queue.
  SchedulingContext context_at(QueueSlot slot, TimeMs now,
                               TimeMs processing_delay) const;

 private:
  BrokerId id_;
  const RoutingFabric* fabric_;
  TimeMs processing_delay_;
  /// Flat queue storage; slot i's neighbour is mirrored in neighbors_[i]
  /// (the contiguous binary-search key array behind slot_of).
  std::vector<OutputQueue> queues_;
  std::vector<BrokerId> neighbors_;
  double total_size_kb_ = 0.0;
  std::size_t processed_count_ = 0;
  // Scratch buffers reused across process() calls (no per-message allocation
  // for the match result or the per-neighbour grouping).
  std::vector<const SubscriptionEntry*> match_scratch_;
  FanOutGrouper grouper_;
};

}  // namespace bdps
