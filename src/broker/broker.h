// Message broker node (fig. 2 of the paper).
//
// A Broker owns its output queues (one per downstream neighbour present in
// its subscription table) and implements the message-processing step:
// match the message against the subscription table, deliver locally, and
// fan one copy out per downstream neighbour that still has interested
// subscribers for this message's publisher.  Timing (processing delay,
// send durations, link events) is driven from outside — the discrete-event
// simulator and the threaded live runtime share this class.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "broker/fanout.h"
#include "broker/output_queue.h"
#include "routing/fabric.h"

namespace bdps {

class ThreadPool;

class Broker {
 public:
  /// `believed_links` provides the link parameters this broker uses for its
  /// scheduling math (FT); they may deviate from the true simulation links
  /// in the estimation ablation.  `strategy` is the run's shared scheduling
  /// policy; each queue mints its own SchedulerState from it.
  /// `processing_delay` (PD) is folded into the precomputed scoring kernel
  /// of every enqueued copy.
  Broker(BrokerId id, const RoutingFabric* fabric, const Graph* believed_links,
         const Strategy* strategy, TimeMs processing_delay = 0.0);

  BrokerId id() const { return id_; }

  /// Result of processing one message at this broker.
  struct FanOut {
    /// Local subscription rows matched by the message.
    std::vector<const SubscriptionEntry*> local;
    /// Neighbours whose queue received a copy *and* whose link is idle —
    /// the caller should start a send on each.
    std::vector<BrokerId> sendable;
    /// Every neighbour that received a copy (sendable or not); trace
    /// support.
    std::vector<BrokerId> enqueued;
  };

  /// Matches `message` against the subscription table and enqueues copies
  /// toward each relevant downstream neighbour (entries are filtered to the
  /// message's publisher and its activation window).  Also folds the
  /// message size into the broker's running average (the basis of eq. 6's
  /// FT).
  FanOut process(const std::shared_ptr<const Message>& message, TimeMs now);

  /// One per-queue purge + pick outcome of take_next.
  struct Dispatch {
    BrokerId neighbor = kNoBroker;
    std::optional<QueuedMessage> chosen;
    PurgeStats purge;
    /// Ids of purged messages; filled only when requested.
    std::vector<MessageId> purged_ids;
  };

  /// Queues with at least this many link-free neighbours fan their
  /// purge + pick work across the thread pool (when one is provided).
  static constexpr std::size_t kParallelDispatchThreshold = 4;

  /// Purges then picks on each named neighbour queue at instant `now`,
  /// writing results into `out` in `neighbors` order (resized to match;
  /// inner buffers are reused across calls).  Queue states are independent
  /// — the paper's link-free instants decouple per-neighbour decisions —
  /// so when `pool` is non-null and the batch reaches
  /// kParallelDispatchThreshold the per-queue work runs across the pool;
  /// results are bitwise identical either way.  The caller remains
  /// responsible for busy flags and anything involving shared RNG streams
  /// or event queues.
  void take_next(std::span<const BrokerId> neighbors, TimeMs now,
                 const PurgePolicy& policy, std::vector<Dispatch>& out,
                 ThreadPool* pool = nullptr, bool collect_purged_ids = false);

  /// The output queue toward `neighbor`; must exist.
  OutputQueue& queue(BrokerId neighbor);
  const OutputQueue& queue(BrokerId neighbor) const;
  bool has_queue(BrokerId neighbor) const;
  const std::map<BrokerId, OutputQueue>& queues() const { return queues_; }

  /// Running average size of the messages this broker has processed; the
  /// paper's FT estimates head-of-line transmission time from it.
  double average_message_size_kb() const;

  /// Builds the SchedulingContext for a pick/purge on `neighbor`'s queue.
  SchedulingContext context(BrokerId neighbor, TimeMs now,
                            TimeMs processing_delay) const;

 private:
  BrokerId id_;
  const RoutingFabric* fabric_;
  TimeMs processing_delay_;
  std::map<BrokerId, OutputQueue> queues_;
  double total_size_kb_ = 0.0;
  std::size_t processed_count_ = 0;
  // Scratch buffers reused across process() calls (no per-message allocation
  // for the match result or the per-neighbour grouping).
  std::vector<const SubscriptionEntry*> match_scratch_;
  FanOutGrouper grouper_;
};

}  // namespace bdps
