#include "broker/output_queue.h"

namespace bdps {

std::optional<QueuedMessage> OutputQueue::take_next(
    const Scheduler& scheduler, const SchedulingContext& context,
    const PurgePolicy& policy, PurgeStats* purge_stats,
    std::vector<MessageId>* purged_ids) {
  const PurgeStats stats = purge_queue(queue_, context, policy, purged_ids);
  if (purge_stats != nullptr) *purge_stats += stats;
  if (queue_.empty()) return std::nullopt;

  const std::size_t index = scheduler.pick(queue_, context);
  QueuedMessage chosen = std::move(queue_[index]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  return chosen;
}

}  // namespace bdps
