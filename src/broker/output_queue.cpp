#include "broker/output_queue.h"

namespace bdps {

std::optional<QueuedMessage> OutputQueue::take_next(
    const Scheduler& scheduler, const SchedulingContext& context,
    const PurgePolicy& policy, PurgeStats* purge_stats,
    std::vector<MessageId>* purged_ids) {
  const PurgeStats stats = purge_queue(queue_, context, policy, purged_ids);
  if (purge_stats != nullptr) *purge_stats += stats;
  if (queue_.empty()) return std::nullopt;

  return take_at(queue_, scheduler.pick(queue_, context));
}

}  // namespace bdps
