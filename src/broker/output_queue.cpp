#include "broker/output_queue.h"

namespace bdps {

SchedulerState& OutputQueue::state() {
  if (!state_) {
    state_ = strategy_->make_state(&queue_);
    // Replay rows enqueued before the state existed (or present when a
    // move dropped the previous state).
    for (std::size_t i = 0; i < queue_.size(); ++i) state_->on_enqueue(i);
  }
  return *state_;
}

std::optional<QueuedMessage> OutputQueue::take_next(
    const SchedulingContext& context, const PurgePolicy& policy,
    PurgeStats* purge_stats, std::vector<MessageId>* purged_ids) {
  SchedulerState& scheduler = state();
  scheduler.on_tick(context);

  // Pre-send purge (§5.4), hook-aware: removal swaps the back row in, so
  // the swapped row is re-examined at the same index.  Every row is
  // classified exactly once per call, as in the stateless purge_queue scan.
  PurgeStats stats;
  for (std::size_t i = 0; i < queue_.size();) {
    switch (classify_purge(queue_[i], context, policy)) {
      case PurgeVerdict::kKeep:
        ++i;
        continue;
      case PurgeVerdict::kExpired:
        ++stats.expired;
        break;
      case PurgeVerdict::kHopeless:
        ++stats.hopeless;
        break;
    }
    if (purged_ids != nullptr) purged_ids->push_back(queue_[i].message->id());
    scheduler.on_remove(i);
    take_at(queue_, i);  // Dropped.
  }
  if (purge_stats != nullptr) *purge_stats += stats;
  if (queue_.empty()) return std::nullopt;

  const std::size_t choice = scheduler.pick(context);
  scheduler.on_remove(choice);
  return take_at(queue_, choice);
}

}  // namespace bdps
