#include "broker/broker.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bdps {

Broker::Broker(BrokerId id, const RoutingFabric* fabric,
               const Graph* believed_links, TimeMs processing_delay)
    : id_(id), fabric_(fabric), processing_delay_(processing_delay) {
  // One queue per downstream neighbour appearing in the subscription table.
  for (const SubscriptionEntry& entry : fabric->table(id).entries()) {
    if (entry.is_local() || queues_.count(entry.next_hop)) continue;
    const EdgeId edge = believed_links->find_edge(id, entry.next_hop);
    if (edge == kNoEdge) {
      throw std::invalid_argument(
          "subscription table references a neighbour without a link");
    }
    queues_.emplace(entry.next_hop,
                    OutputQueue(entry.next_hop, edge,
                                believed_links->edge(edge).link.params()));
  }
  // One reusable grouping slot per neighbour, in ascending BrokerId order
  // (the degree is fixed for the broker's lifetime).
  group_scratch_.reserve(queues_.size());
  for (const auto& [neighbor, queue] : queues_) {
    (void)queue;
    group_scratch_.emplace_back(neighbor,
                                std::vector<const SubscriptionEntry*>{});
  }
}

Broker::FanOut Broker::process(const std::shared_ptr<const Message>& message,
                               TimeMs now) {
  total_size_kb_ += message->size_kb();
  ++processed_count_;

  FanOut result;
  // Group the matched rows by downstream neighbour; each group becomes one
  // queued copy carrying exactly the subscriptions it still serves.  The
  // grouping slots are a reused member (sorted by neighbour id, binary
  // searched — broker degree is small), so the fan-out allocates nothing
  // beyond the targets vector each queued copy must own anyway.
  for (auto& [neighbor, targets] : group_scratch_) {
    (void)neighbor;
    targets.clear();
  }
  fabric_->match_at(id_, *message, match_scratch_);
  for (const SubscriptionEntry* entry : match_scratch_) {
    if (!entry->serves_publisher(message->publisher())) continue;
    if (!entry->subscription->active_at(message->publish_time())) continue;
    if (entry->is_local()) {
      result.local.push_back(entry);
    } else {
      const auto slot = std::lower_bound(
          group_scratch_.begin(), group_scratch_.end(), entry->next_hop,
          [](const auto& group, BrokerId id) { return group.first < id; });
      assert(slot != group_scratch_.end() && slot->first == entry->next_hop);
      slot->second.push_back(entry);
    }
  }

  for (auto& [neighbor, targets] : group_scratch_) {
    if (targets.empty()) continue;
    OutputQueue& out = queues_.at(neighbor);
    const bool was_startable = !out.link_busy();
    QueuedMessage queued{message, now, std::move(targets)};
    targets = {};  // Moved-from: reset to a clean empty slot.
    // Fold the time-invariant scoring constants now, while the rows are
    // cache-hot, so picks and purges never touch the subscription table.
    precompute_scores(queued, processing_delay_);
    out.enqueue(std::move(queued));
    result.enqueued.push_back(neighbor);
    if (was_startable) result.sendable.push_back(neighbor);
  }
  return result;
}

OutputQueue& Broker::queue(BrokerId neighbor) { return queues_.at(neighbor); }

const OutputQueue& Broker::queue(BrokerId neighbor) const {
  return queues_.at(neighbor);
}

bool Broker::has_queue(BrokerId neighbor) const {
  return queues_.count(neighbor) != 0;
}

double Broker::average_message_size_kb() const {
  if (processed_count_ == 0) return 0.0;
  return total_size_kb_ / static_cast<double>(processed_count_);
}

SchedulingContext Broker::context(BrokerId neighbor, TimeMs now,
                                  TimeMs processing_delay) const {
  const OutputQueue& out = queues_.at(neighbor);
  return SchedulingContext{
      now, processing_delay,
      out.head_of_line_estimate(average_message_size_kb())};
}

}  // namespace bdps
