#include "broker/broker.h"

#include <stdexcept>
#include <utility>

#include "common/thread_pool.h"

namespace bdps {

Broker::Broker(BrokerId id, const RoutingFabric* fabric,
               const Graph* believed_links, const Strategy* strategy,
               TimeMs processing_delay)
    : id_(id), fabric_(fabric), processing_delay_(processing_delay) {
  // One queue per downstream neighbour appearing in the subscription table.
  for (const SubscriptionEntry& entry : fabric->table(id).entries()) {
    if (entry.is_local() || queues_.count(entry.next_hop)) continue;
    const EdgeId edge = believed_links->find_edge(id, entry.next_hop);
    if (edge == kNoEdge) {
      throw std::invalid_argument(
          "subscription table references a neighbour without a link");
    }
    queues_.emplace(entry.next_hop,
                    OutputQueue(entry.next_hop, edge,
                                believed_links->edge(edge).link.params(),
                                strategy));
  }
  // One reusable grouping slot per neighbour, in ascending BrokerId order
  // (the degree is fixed for the broker's lifetime).
  std::vector<BrokerId> neighbors;
  neighbors.reserve(queues_.size());
  for (const auto& [neighbor, queue] : queues_) {
    (void)queue;
    neighbors.push_back(neighbor);
  }
  grouper_.bind(std::move(neighbors));
}

Broker::FanOut Broker::process(const std::shared_ptr<const Message>& message,
                               TimeMs now) {
  total_size_kb_ += message->size_kb();
  ++processed_count_;

  FanOut result;
  // Group the matched rows by downstream neighbour; each group becomes one
  // queued copy carrying exactly the subscriptions it still serves.
  fabric_->match_at(id_, *message, match_scratch_);
  grouper_.group(match_scratch_, *message);
  result.local = grouper_.local();

  for (auto& [neighbor, targets] : grouper_.groups()) {
    if (targets.empty()) continue;
    OutputQueue& out = queues_.at(neighbor);
    const bool was_startable = !out.link_busy();
    QueuedMessage queued{message, now, std::move(targets)};
    targets = {};  // Moved-from: reset to a clean empty slot.
    // Fold the time-invariant scoring constants now, while the rows are
    // cache-hot, so picks and purges never touch the subscription table.
    precompute_scores(queued, processing_delay_);
    out.enqueue(std::move(queued));
    result.enqueued.push_back(neighbor);
    if (was_startable) result.sendable.push_back(neighbor);
  }
  return result;
}

void Broker::take_next(std::span<const BrokerId> neighbors, TimeMs now,
                       const PurgePolicy& policy, std::vector<Dispatch>& out,
                       ThreadPool* pool, bool collect_purged_ids) {
  out.resize(neighbors.size());
  const auto run_one = [&](std::size_t i) {
    Dispatch& dispatch = out[i];
    dispatch.neighbor = neighbors[i];
    dispatch.purge = PurgeStats{};
    dispatch.purged_ids.clear();
    OutputQueue& queue = queues_.at(neighbors[i]);
    const SchedulingContext ctx = context(neighbors[i], now, processing_delay_);
    dispatch.chosen = queue.take_next(
        ctx, policy, &dispatch.purge,
        collect_purged_ids ? &dispatch.purged_ids : nullptr);
  };
  if (pool != nullptr && neighbors.size() >= kParallelDispatchThreshold) {
    pool->parallel_for(neighbors.size(), run_one);
  } else {
    for (std::size_t i = 0; i < neighbors.size(); ++i) run_one(i);
  }
}

OutputQueue& Broker::queue(BrokerId neighbor) { return queues_.at(neighbor); }

const OutputQueue& Broker::queue(BrokerId neighbor) const {
  return queues_.at(neighbor);
}

bool Broker::has_queue(BrokerId neighbor) const {
  return queues_.count(neighbor) != 0;
}

double Broker::average_message_size_kb() const {
  if (processed_count_ == 0) return 0.0;
  return total_size_kb_ / static_cast<double>(processed_count_);
}

SchedulingContext Broker::context(BrokerId neighbor, TimeMs now,
                                  TimeMs processing_delay) const {
  const OutputQueue& out = queues_.at(neighbor);
  return SchedulingContext{
      now, processing_delay,
      out.head_of_line_estimate(average_message_size_kb())};
}

}  // namespace bdps
