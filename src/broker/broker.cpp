#include "broker/broker.h"

#include <stdexcept>

namespace bdps {

Broker::Broker(BrokerId id, const RoutingFabric* fabric,
               const Graph* believed_links)
    : id_(id), fabric_(fabric) {
  // One queue per downstream neighbour appearing in the subscription table.
  for (const SubscriptionEntry& entry : fabric->table(id).entries()) {
    if (entry.is_local() || queues_.count(entry.next_hop)) continue;
    const EdgeId edge = believed_links->find_edge(id, entry.next_hop);
    if (edge == kNoEdge) {
      throw std::invalid_argument(
          "subscription table references a neighbour without a link");
    }
    queues_.emplace(entry.next_hop,
                    OutputQueue(entry.next_hop, edge,
                                believed_links->edge(edge).link.params()));
  }
}

Broker::FanOut Broker::process(const std::shared_ptr<const Message>& message,
                               TimeMs now) {
  total_size_kb_ += message->size_kb();
  ++processed_count_;

  FanOut result;
  // Group the matched rows by downstream neighbour; each group becomes one
  // queued copy carrying exactly the subscriptions it still serves.
  std::map<BrokerId, std::vector<const SubscriptionEntry*>> groups;
  for (const SubscriptionEntry* entry : fabric_->match_at(id_, *message)) {
    if (!entry->serves_publisher(message->publisher())) continue;
    if (!entry->subscription->active_at(message->publish_time())) continue;
    if (entry->is_local()) {
      result.local.push_back(entry);
    } else {
      groups[entry->next_hop].push_back(entry);
    }
  }

  for (auto& [neighbor, targets] : groups) {
    OutputQueue& out = queues_.at(neighbor);
    const bool was_startable = !out.link_busy();
    out.enqueue(QueuedMessage{message, now, std::move(targets)});
    result.enqueued.push_back(neighbor);
    if (was_startable) result.sendable.push_back(neighbor);
  }
  return result;
}

OutputQueue& Broker::queue(BrokerId neighbor) { return queues_.at(neighbor); }

const OutputQueue& Broker::queue(BrokerId neighbor) const {
  return queues_.at(neighbor);
}

bool Broker::has_queue(BrokerId neighbor) const {
  return queues_.count(neighbor) != 0;
}

double Broker::average_message_size_kb() const {
  if (processed_count_ == 0) return 0.0;
  return total_size_kb_ / static_cast<double>(processed_count_);
}

SchedulingContext Broker::context(BrokerId neighbor, TimeMs now,
                                  TimeMs processing_delay) const {
  const OutputQueue& out = queues_.at(neighbor);
  return SchedulingContext{
      now, processing_delay,
      out.head_of_line_estimate(average_message_size_kb())};
}

}  // namespace bdps
