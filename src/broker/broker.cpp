#include "broker/broker.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.h"

namespace bdps {

Broker::Broker(BrokerId id, const RoutingFabric* fabric,
               const Graph* believed_links, const Strategy* strategy,
               TimeMs processing_delay, bool queues_for_all_links)
    : id_(id), fabric_(fabric), processing_delay_(processing_delay) {
  // One queue per downstream neighbour appearing in the subscription table,
  // in ascending neighbour order (slot == rank).
  std::vector<LinkRef> links;
  for (const SubscriptionEntry& entry : fabric->table(id).entries()) {
    if (entry.is_local()) continue;
    // The table's edge id names the link in the fabric's graph; the queue
    // needs it in `believed_links`, which may be a (same-shaped) copy — fall
    // back to a lookup when the ids don't line up.
    EdgeId edge = entry.next_hop_edge;
    if (edge < 0 || static_cast<std::size_t>(edge) >=
                        believed_links->edge_count() ||
        believed_links->edge(edge).from != id ||
        believed_links->edge(edge).to != entry.next_hop) {
      edge = believed_links->edge_id(id, entry.next_hop);
    }
    if (edge == kNoEdge) {
      throw std::invalid_argument(
          "subscription table references a neighbour without a link");
    }
    links.push_back(LinkRef{entry.next_hop, edge});
  }
  if (queues_for_all_links) {
    // Routing repair can later re-point entries at any believed neighbour;
    // bind the full out-link set so every future next hop has a slot.
    for (const EdgeId e : believed_links->out_edges(id)) {
      links.push_back(LinkRef{believed_links->edge(e).to, e});
    }
  }
  std::sort(links.begin(), links.end(),
            [](const LinkRef& a, const LinkRef& b) {
              return a.neighbor != b.neighbor ? a.neighbor < b.neighbor
                                              : a.edge < b.edge;
            });
  links.erase(std::unique(links.begin(), links.end(),
                          [](const LinkRef& a, const LinkRef& b) {
                            return a.neighbor == b.neighbor;
                          }),
              links.end());

  queues_.reserve(links.size());
  neighbors_.reserve(links.size());
  for (const LinkRef& link : links) {
    queues_.emplace_back(link.neighbor, link.edge,
                         believed_links->edge(link.edge).link.params(),
                         strategy);
    neighbors_.push_back(link.neighbor);
  }
  // One reusable grouping slot per link; grouper slot i == queue slot i.
  grouper_.bind(std::move(links));
}

Broker::FanOut Broker::process(const std::shared_ptr<const Message>& message,
                               TimeMs now) {
  total_size_kb_ += message->size_kb();
  ++processed_count_;

  FanOut result;
  // Group the matched rows by downstream neighbour; each group becomes one
  // queued copy carrying exactly the subscriptions it still serves.  Group
  // slots and queue slots share the same order, so the grouping *is* the
  // queue addressing.
  fabric_->match_at(id_, *message, match_scratch_);
  grouper_.group(match_scratch_, *message);
  result.local = grouper_.local();

  std::vector<FanOutGroup>& groups = grouper_.groups();
  for (QueueSlot slot = 0; slot < static_cast<QueueSlot>(groups.size());
       ++slot) {
    FanOutGroup& group = groups[slot];
    if (group.targets.empty()) continue;
    OutputQueue& out = queues_[slot];
    const bool was_startable = !out.link_busy();
    QueuedMessage queued{message, now, std::move(group.targets)};
    group.targets = {};  // Moved-from: reset to a clean empty slot.
    // Fold the time-invariant scoring constants now, while the rows are
    // cache-hot, so picks and purges never touch the subscription table.
    precompute_scores(queued, processing_delay_);
    out.enqueue(std::move(queued));
    result.enqueued.push_back(slot);
    if (was_startable) result.sendable.push_back(slot);
  }
  return result;
}

void Broker::take_next(std::span<const QueueSlot> slots, TimeMs now,
                       const PurgePolicy& policy, std::vector<Dispatch>& out,
                       ThreadPool* pool, bool collect_purged_ids) {
  out.resize(slots.size());
  // All queues in one batch share the same instant, so the context's only
  // broker-wide ingredient — the running average message size — is computed
  // once here instead of per slot (a divide per link-free instant adds up
  // when a storm frees many links at once).
  const double average_kb = average_message_size_kb();
  const auto run_one = [&](std::size_t i) {
    Dispatch& dispatch = out[i];
    OutputQueue& queue = queues_[slots[i]];
    dispatch.slot = slots[i];
    dispatch.neighbor = queue.neighbor();
    dispatch.purge = PurgeStats{};
    dispatch.purged_ids.clear();
    const SchedulingContext ctx{now, processing_delay_,
                                queue.head_of_line_estimate(average_kb)};
    dispatch.chosen = queue.take_next(
        ctx, policy, &dispatch.purge,
        collect_purged_ids ? &dispatch.purged_ids : nullptr);
  };
  if (pool != nullptr && slots.size() >= kParallelDispatchThreshold) {
    pool->parallel_for(slots.size(), run_one);
  } else {
    for (std::size_t i = 0; i < slots.size(); ++i) run_one(i);
  }
}

Broker::QueueSlot Broker::slot_of(BrokerId neighbor) const {
  const auto it =
      std::lower_bound(neighbors_.begin(), neighbors_.end(), neighbor);
  if (it == neighbors_.end() || *it != neighbor) return kNoSlot;
  return static_cast<QueueSlot>(it - neighbors_.begin());
}

double Broker::average_message_size_kb() const {
  if (processed_count_ == 0) return 0.0;
  return total_size_kb_ / static_cast<double>(processed_count_);
}

SchedulingContext Broker::context_at(QueueSlot slot, TimeMs now,
                                     TimeMs processing_delay) const {
  const OutputQueue& out = queues_[slot];
  return SchedulingContext{
      now, processing_delay,
      out.head_of_line_estimate(average_message_size_kb())};
}

}  // namespace bdps
