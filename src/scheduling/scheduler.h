// Output-queue scheduling interface: Strategy + per-queue SchedulerState.
//
// §3.2: each broker keeps one output queue per downstream neighbour; when
// the link becomes free the broker must decide which queued message to send
// next (eq. 3–10).
//
// The API has two levels:
//
//  * `Strategy` — an immutable description of the policy (kind + params,
//    e.g. the EBPC weight r).  One instance is shared by every broker of a
//    run; it carries no mutable state and is safe to use from any thread.
//
//  * `SchedulerState` — minted by `Strategy::make_state` and owned by one
//    `OutputQueue`.  It observes the queue through lifecycle hooks and
//    answers `pick` incrementally instead of rescanning every row:
//
//      on_enqueue(i)  — a row was just appended at index `i`.
//      on_remove(i)   — row `i` is about to be removed; the back row will
//                       be swapped into its slot (see take_at below).
//      on_tick(ctx)   — a new scheduling instant begins (rate-estimate or
//                       clock updates); called by OutputQueue::take_next
//                       before the purge scan.
//      pick(ctx)      — index of the message to send next (queue
//                       non-empty).
//
//    FIFO and RL order by time-invariant keys, so their state is an
//    indexed min-heap: O(log n) per enqueue/remove and O(1) per pick.
//    EB/PC/EBPC/LB keep the kernel-row argmax but remember, per row, an
//    upper bound on its score that can only decay as time advances; rows
//    whose stale bound cannot beat the running best are skipped without
//    touching their kernel rows.  Bounds are invalidated only by enqueues,
//    removals, clock regressions and PD changes (the kernel refolds
//    slack_const with the new PD) — never by FT / rate-estimate drift,
//    which the bounds are independent of.
//
// Every state is pick-identical to the stateless rescan: the reference
// argmax survives as `Strategy::reference_pick`, and
// tests/scheduling/scheduler_state_test.cpp proves equivalence across
// randomized enqueue/remove/purge/tick interleavings.
//
// Migration notes (old `Scheduler` API → this one):
//   * `make_scheduler(kind, r)` → `make_strategy(kind, r)`; the result is
//     `unique_ptr<const Strategy>` — strategies are immutable and shared.
//   * `scheduler->pick(queue, ctx)` one-shot calls → either
//     `strategy->reference_pick(queue, ctx)` (tests, offline tooling) or a
//     bound `SchedulerState` when the queue lives long enough to amortise
//     (the engine path: `OutputQueue` owns the state and forwards hooks).
//   * `OutputQueue::take_next(scheduler, ctx, ...)` no longer takes the
//     policy per call: the queue is constructed with the Strategy and owns
//     its state for life.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "scheduling/kernel.h"
#include "scheduling/success.h"

namespace bdps {

/// The five strategies evaluated in the paper, plus the lower-bound
/// comparator from its related-work discussion (kLowerBound: schedule by
/// expected benefit computed against the *guaranteed* bandwidth
/// mu + 2 sigma instead of the full distribution — the OverQoS-style
/// planning the paper argues is less efficient).
enum class StrategyKind {
  kFifo,
  kRemainingLifetime,
  kEb,
  kPc,
  kEbpc,
  kLowerBound,
};

/// Parses "FIFO" / "RL" / "EB" / "PC" / "EBPC" / "LB"; throws
/// std::invalid_argument on unknown names.
StrategyKind parse_strategy(const std::string& name);
std::string strategy_name(StrategyKind kind);

/// Deterministic tie order shared by every strategy: exactly tied scores
/// break on (enqueue_time, message id) — oldest first — so service order is
/// independent of queue positions (take_at permutes indices, never these
/// keys).
inline bool tie_break_before(const QueuedMessage& a, const QueuedMessage& b) {
  return a.enqueue_time < b.enqueue_time ||
         (a.enqueue_time == b.enqueue_time && a.message->id() < b.message->id());
}

/// Per-output-queue scheduling state.  Bound to one queue vector at
/// construction; the owner must call the hooks in lockstep with the queue:
/// `on_enqueue(i)` after appending at `i`, `on_remove(i)` *before*
/// `take_at(queue, i)` runs, `on_tick(ctx)` when a new scheduling instant
/// begins.  One queue is driven by one thread at a time (same contract as
/// the scoring kernel).
class SchedulerState {
 public:
  virtual ~SchedulerState() = default;

  virtual void on_enqueue(std::size_t index) = 0;
  virtual void on_remove(std::size_t index) = 0;
  virtual void on_tick(const SchedulingContext& context) { (void)context; }

  /// Index of the message to send next; the bound queue is non-empty.
  virtual std::size_t pick(const SchedulingContext& context) = 0;

 protected:
  explicit SchedulerState(const std::vector<QueuedMessage>* queue)
      : queue_(queue) {}

  const std::vector<QueuedMessage>& queue() const { return *queue_; }

 private:
  const std::vector<QueuedMessage>* queue_;
};

/// Immutable scheduling policy: kind + parameters.  Shared across queues
/// and threads; all per-queue mutability lives in the SchedulerState
/// objects it mints.
class Strategy {
 public:
  /// `ebpc_weight` is the EB weight r of eq. (10); only used by kEbpc.
  /// Throws std::invalid_argument when r is outside [0, 1].
  explicit Strategy(StrategyKind kind, double ebpc_weight = 0.5);

  StrategyKind kind() const { return kind_; }
  double ebpc_weight() const { return ebpc_weight_; }

  /// Human-readable name ("EB", "FIFO", "EBPC(r=...)", ...).
  std::string name() const;

  /// Mints the incremental per-queue state for `queue` (non-owning; the
  /// vector must outlive the state and stay at the same address).
  std::unique_ptr<SchedulerState> make_state(
      const std::vector<QueuedMessage>* queue) const;

  /// Stateless reference argmax: a full O(rows · targets) rescan through
  /// the scoring kernel.  This is the semantic contract every
  /// SchedulerState must match pick-for-pick; kept for tests, one-shot
  /// tooling and the equivalence suite.
  std::size_t reference_pick(std::span<const QueuedMessage> queue,
                             const SchedulingContext& context) const;

 private:
  StrategyKind kind_;
  double ebpc_weight_;
};

/// Factory.  Strategies are immutable, so the result is freely shared.
std::unique_ptr<const Strategy> make_strategy(StrategyKind kind,
                                              double ebpc_weight = 0.5);

// ---- Metric helpers (exposed for tests, benches and custom strategies) ----
//
// All helpers evaluate through the precomputed kernel (scheduling/kernel.h):
// the first call on a bare QueuedMessage folds its targets into ScoredTarget
// rows, subsequent calls are allocation-free and O(1) per score term.

/// EB_m of eq. (3) for a queued message (sum over its queue-local targets).
double expected_benefit(const QueuedMessage& queued,
                        const SchedulingContext& context);

/// EB'_m of eq. (8): expected benefit when this broker sends the message in
/// the second place (the head-of-line estimate FT is added to every fdl).
double postponed_benefit(const QueuedMessage& queued,
                         const SchedulingContext& context);

/// PC_m = EB_m - EB'_m (eq. 9).
double postponing_cost(const QueuedMessage& queued,
                       const SchedulingContext& context);

/// EBPC_m = r*EB_m + (1-r)*PC_m (eq. 10).
double ebpc_metric(const QueuedMessage& queued,
                   const SchedulingContext& context, double weight);

/// Mean remaining lifetime across the message's targets (the paper's SSD
/// adaptation of the RL baseline; equals the single remaining lifetime
/// under PSD).
TimeMs mean_remaining_lifetime(const QueuedMessage& queued, TimeMs now);

/// Lower-bound benefit: sum of price over targets whose deadline holds at
/// the pessimistic (mu + 2 sigma) path rate — the kLowerBound score.
double lower_bound_benefit(const QueuedMessage& queued,
                           const SchedulingContext& context);

}  // namespace bdps
