// Output-queue scheduling interface.
//
// §3.2: each broker keeps one output queue per downstream neighbour; when
// the link becomes free the broker must decide which queued message to send
// next.  A Scheduler encapsulates that policy.  The simulator (and the
// threaded live runtime) call `pick` with the current queue contents and a
// SchedulingContext snapshot; strategies are stateless and shared.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "scheduling/kernel.h"
#include "scheduling/success.h"

namespace bdps {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Human-readable strategy name ("EB", "FIFO", ...).
  virtual std::string name() const = 0;

  /// Index of the message to send next; `queue` is non-empty.
  virtual std::size_t pick(std::span<const QueuedMessage> queue,
                           const SchedulingContext& context) const = 0;
};

/// The five strategies evaluated in the paper, plus the lower-bound
/// comparator from its related-work discussion (kLowerBound: schedule by
/// expected benefit computed against the *guaranteed* bandwidth
/// mu + 2 sigma instead of the full distribution — the OverQoS-style
/// planning the paper argues is less efficient).
enum class StrategyKind {
  kFifo,
  kRemainingLifetime,
  kEb,
  kPc,
  kEbpc,
  kLowerBound,
};

/// Parses "FIFO" / "RL" / "EB" / "PC" / "EBPC" / "LB"; throws
/// std::invalid_argument on unknown names.
StrategyKind parse_strategy(const std::string& name);
std::string strategy_name(StrategyKind kind);

/// Factory.  `ebpc_weight` is the EB weight r of eq. (10); only used by
/// kEbpc.
std::unique_ptr<Scheduler> make_scheduler(StrategyKind kind,
                                          double ebpc_weight = 0.5);

// ---- Metric helpers (exposed for tests, benches and custom strategies) ----
//
// All helpers evaluate through the precomputed kernel (scheduling/kernel.h):
// the first call on a bare QueuedMessage folds its targets into ScoredTarget
// rows, subsequent calls are allocation-free and O(1) per score term.

/// EB_m of eq. (3) for a queued message (sum over its queue-local targets).
double expected_benefit(const QueuedMessage& queued,
                        const SchedulingContext& context);

/// EB'_m of eq. (8): expected benefit when this broker sends the message in
/// the second place (the head-of-line estimate FT is added to every fdl).
double postponed_benefit(const QueuedMessage& queued,
                         const SchedulingContext& context);

/// PC_m = EB_m - EB'_m (eq. 9).
double postponing_cost(const QueuedMessage& queued,
                       const SchedulingContext& context);

/// EBPC_m = r*EB_m + (1-r)*PC_m (eq. 10).
double ebpc_metric(const QueuedMessage& queued,
                   const SchedulingContext& context, double weight);

/// Mean remaining lifetime across the message's targets (the paper's SSD
/// adaptation of the RL baseline; equals the single remaining lifetime
/// under PSD).
TimeMs mean_remaining_lifetime(const QueuedMessage& queued, TimeMs now);

/// Lower-bound benefit: sum of price over targets whose deadline holds at
/// the pessimistic (mu + 2 sigma) path rate — the kLowerBound score.
double lower_bound_benefit(const QueuedMessage& queued,
                           const SchedulingContext& context);

}  // namespace bdps
