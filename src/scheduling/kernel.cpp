#include "scheduling/kernel.h"

namespace bdps {

ScoredTarget make_scored_target(const SubscriptionEntry& entry,
                                const Message& message,
                                TimeMs processing_delay,
                                double lb_confidence_z) {
  const TimeMs deadline = entry.effective_deadline(message);
  const double size = message.size_kb();
  const double size_sigma = size * entry.path.stddev();

  ScoredTarget st;
  st.expiry = deadline + message.publish_time();
  st.slack_const = st.expiry - entry.path.hop_brokers * processing_delay -
                   size * entry.path.mean_ms_per_kb;
  st.inv_size_sigma = size_sigma > 0.0
                          ? 1.0 / size_sigma
                          : std::numeric_limits<double>::infinity();
  st.price = entry.subscription->price;
  st.lb_indicator_const = st.slack_const - lb_confidence_z * size_sigma;
  return st;
}

void precompute_scores(const QueuedMessage& queued, TimeMs processing_delay) {
  queued.scored.clear();
  queued.scored.reserve(queued.targets.size());
  queued.expiry_sum = 0.0;
  queued.bounded_targets = 0;
  for (const SubscriptionEntry* entry : queued.targets) {
    queued.scored.push_back(
        make_scored_target(*entry, *queued.message, processing_delay));
    const double expiry = queued.scored.back().expiry;
    if (expiry != kNoDeadline) {
      queued.expiry_sum += expiry;
      ++queued.bounded_targets;
    }
  }
  queued.scored_pd = processing_delay;
}

}  // namespace bdps
