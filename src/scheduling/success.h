// Delivery-success probability math (the heart of §5).
//
// For a message m queued at a broker and a subscription-table entry with
// remaining path p = (NN_p, mu_p, sigma_p^2):
//
//   fdl(s, m)      = NN_p * PD + size(m) * TR_p                     (eq. 4)
//   success(s, m)  = P( hdl(m) + fdl(s, m) <= adl(s) )              (eq. 5)
//                  = Phi( (adl - hdl - NN_p*PD - size*mu_p)
//                         / (size * sigma_p) )
//
// and the "send second" variant adds the head-of-line transmission estimate
// FT to fdl (eq. 6-7).  These functions are the readable reference form of
// the math; the pick/purge hot paths evaluate the same formulas through the
// precomputed kernel (scheduling/kernel.h), which folds the time-invariant
// parts per (message, target) pair at enqueue time.  The two are held
// together by tests/scheduling/kernel_property_test.cpp.
#pragma once

#include "common/math.h"
#include "common/types.h"
#include "message/message.h"
#include "routing/subscription.h"

namespace bdps {

/// Broker-local constants needed to evaluate the §5 formulas for one
/// output queue at one instant.
struct SchedulingContext {
  /// Current simulation time (defines hdl(m) = now - publish_time).
  TimeMs now = 0.0;
  /// Per-broker processing delay PD.
  TimeMs processing_delay = 0.0;
  /// FT (eq. 6): estimated time to send the head-of-line message on this
  /// queue's link = running average message size * link mean rate.
  TimeMs head_of_line_estimate = 0.0;
};

/// Mean of fdl(s, m): NN_p * PD + size(m) * mu_p.
TimeMs expected_forward_delay(const SubscriptionEntry& entry,
                              const Message& message, TimeMs processing_delay);

/// success(s, m) of eq. (5); `extra_delay` realises eq. (7)'s FT shift
/// (0 for the plain eq. 5 form).
double success_probability(const SubscriptionEntry& entry,
                           const Message& message, TimeMs now,
                           TimeMs processing_delay, TimeMs extra_delay = 0.0);

/// EB contribution of a single (message, entry) pair:
/// success(s, m) * price(s).
double expected_benefit_term(const SubscriptionEntry& entry,
                             const Message& message, TimeMs now,
                             TimeMs processing_delay, TimeMs extra_delay = 0.0);

/// Remaining lifetime adl(s) - hdl(m) of one pair (may be negative once the
/// deadline has passed); used by the RL baseline and the purge rule.
TimeMs remaining_lifetime(const SubscriptionEntry& entry,
                          const Message& message, TimeMs now);

/// Lower-bound delivery indicator: 1 when the deadline holds even if the
/// path only sustains its pessimistic "guaranteed" rate
/// mu_p + confidence_z * sigma_p, else 0.  This is the §2 comparison point:
/// OverQoS-style systems plan against a bandwidth value that holds with
/// high probability instead of using the full distribution; the LB
/// strategy is built from this indicator.
double lower_bound_success(const SubscriptionEntry& entry,
                           const Message& message, TimeMs now,
                           TimeMs processing_delay,
                           double confidence_z = 2.0);

}  // namespace bdps
