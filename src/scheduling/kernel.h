// Precomputed scoring kernel for the §5 scheduling math.
//
// At every link-free instant a broker scores every queued message against
// every remaining target (eq. 3–10), so draining an n-deep queue costs
// O(n² · targets) success-probability evaluations.  Evaluating eq. (5)
// from scratch chases entry->subscription / entry->path pointers and
// re-derives the same size/path constants on every call.  Instead, the
// time-invariant part of each (message, target) pair is folded once — at
// enqueue time — into a flat ScoredTarget stored inline in the
// QueuedMessage, so one pick-time success term is
//
//   price * Phi((slack_const - now - extra) * inv_size_sigma)
//
// a subtract, a multiply and one Phi (with a saturation fast path that
// skips erfc entirely when |z| > 8).  The purge rule (eq. 11), the RL
// baseline and the LB comparator read the same precomputed row, so the
// whole pick/purge path is allocation-free and never touches the
// subscription table.
//
// scheduling/success.h remains the readable single-source-of-truth for the
// formulas; tests/scheduling/kernel_property_test.cpp proves the kernel
// agrees with it to ~1e-12 across strategies and scenario shapes.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "scheduling/success.h"

namespace bdps {

/// Time-invariant scoring constants of one (message, target) pair.
struct ScoredTarget {
  /// adl + publish_time - NN_p·PD - size·mu_p: the absolute instant at
  /// which the success probability of eq. (5) crosses 1/2.  +inf when the
  /// pair has no deadline.
  double slack_const = 0.0;
  /// 1 / (size · sigma_p); +inf when the remaining path is deterministic
  /// (eq. 5's degenerate step-function case).
  double inv_size_sigma = 0.0;
  /// price(s) — 1 under PSD.
  double price = 1.0;
  /// slack_const - z·size·sigma_p: the guaranteed-rate (LB) indicator of
  /// §2 holds while now <= lb_indicator_const.
  double lb_indicator_const = 0.0;
  /// adl + publish_time: remaining lifetime = expiry - now (RL + purge).
  double expiry = 0.0;
};

/// Folds one subscription-table row into its ScoredTarget.
/// `lb_confidence_z` is the z of the pessimistic mu + z·sigma rate used by
/// the LB indicator (the paper's comparison point uses 2).
ScoredTarget make_scored_target(const SubscriptionEntry& entry,
                                const Message& message,
                                TimeMs processing_delay,
                                double lb_confidence_z = 2.0);

/// A message waiting in one broker's output queue toward one neighbour,
/// together with the subscription-table rows it still has to serve through
/// that neighbour and their precomputed scoring constants.
struct QueuedMessage {
  QueuedMessage() = default;
  QueuedMessage(std::shared_ptr<const Message> message_in,
                TimeMs enqueue_time_in,
                std::vector<const SubscriptionEntry*> targets_in)
      : message(std::move(message_in)),
        enqueue_time(enqueue_time_in),
        targets(std::move(targets_in)) {}

  std::shared_ptr<const Message> message;
  TimeMs enqueue_time = 0.0;
  std::vector<const SubscriptionEntry*> targets;

  // Precomputed kernel state, parallel to `targets`.  Built eagerly at
  // enqueue (Broker::process / the live receiver loop) and lazily healed by
  // ensure_scored() when absent or folded with a different PD, so queues
  // assembled by hand (tests, benches) keep working unchanged.  Mutable
  // because pick() takes the queue const; the same thread-safety contract
  // as the matching index applies: one queue is scored by one thread at a
  // time (the simulator is single-threaded, the live runtime scores under
  // the owning sender's lock).
  mutable std::vector<ScoredTarget> scored;
  mutable TimeMs scored_pd = std::numeric_limits<double>::quiet_NaN();
  /// Sum of finite expiries and their count (O(1) mean remaining lifetime).
  mutable double expiry_sum = 0.0;
  mutable std::uint32_t bounded_targets = 0;
};

/// Removes and returns queue[index] in O(1) by swapping the back element
/// into its slot.  Safe for any Scheduler built on pick_max: picks score
/// message state and break exact ties on (enqueue_time, message id), never
/// on queue position, so compaction cannot change service order.  Shared by
/// OutputQueue::take_next and the live runtime's sender loop so the
/// invariant lives in one place.
inline QueuedMessage take_at(std::vector<QueuedMessage>& queue,
                             std::size_t index) {
  QueuedMessage chosen = std::move(queue[index]);
  if (index + 1 != queue.size()) queue[index] = std::move(queue.back());
  queue.pop_back();
  return chosen;
}

/// (Re)builds `queued.scored` from `queued.targets` with the given PD.
void precompute_scores(const QueuedMessage& queued, TimeMs processing_delay);

/// Ensures the kernel rows exist and were folded with `processing_delay`.
inline void ensure_scored(const QueuedMessage& queued,
                          TimeMs processing_delay) {
  if (queued.scored_pd == processing_delay &&
      queued.scored.size() == queued.targets.size()) {
    return;
  }
  precompute_scores(queued, processing_delay);
}

/// Phi with a saturation fast path: |z| > 8 pins the result to 0/1
/// (Phi(±8) differs from the limit by < 7e-16, far below the purge epsilon
/// and the score tolerances).  The inverted `!(z < 8)` test also routes the
/// NaN of a deterministic path hitting its boundary exactly (0 · inf) to 1,
/// matching the reference step function's `budget >= mean` convention.
inline double phi_saturated(double z) {
  if (!(z < 8.0)) return 1.0;
  if (z <= -8.0) return 0.0;
  return 0.5 * std::erfc(-z * 0.7071067811865476);
}

/// success(s, m) of eq. (5)/(7) at evaluation instant `t` = now + extra.
inline double scored_success(const ScoredTarget& st, double t) {
  return phi_saturated((st.slack_const - t) * st.inv_size_sigma);
}

/// EB_m of eq. (3) from the kernel rows.
inline double kernel_expected_benefit(const QueuedMessage& queued,
                                      const SchedulingContext& context) {
  ensure_scored(queued, context.processing_delay);
  double total = 0.0;
  for (const ScoredTarget& st : queued.scored) {
    total += st.price * scored_success(st, context.now);
  }
  return total;
}

/// EB_m and EB'_m (eq. 3 + 8) in a single pass over the kernel rows, so
/// PC/EBPC evaluate each target once instead of three times.
struct BenefitPair {
  double immediate = 0.0;  // EB_m
  double postponed = 0.0;  // EB'_m
};

inline BenefitPair kernel_benefit_pair(const QueuedMessage& queued,
                                       const SchedulingContext& context) {
  ensure_scored(queued, context.processing_delay);
  BenefitPair out;
  const double t_now = context.now;
  const double t_post = context.now + context.head_of_line_estimate;
  for (const ScoredTarget& st : queued.scored) {
    out.immediate += st.price * scored_success(st, t_now);
    out.postponed += st.price * scored_success(st, t_post);
  }
  return out;
}

/// Lower-bound benefit from the precomputed indicator constants.
inline double kernel_lower_bound_benefit(const QueuedMessage& queued,
                                         const SchedulingContext& context) {
  ensure_scored(queued, context.processing_delay);
  double total = 0.0;
  for (const ScoredTarget& st : queued.scored) {
    if (context.now <= st.lb_indicator_const) total += st.price;
  }
  return total;
}

/// Mean remaining lifetime across deadline-bounded targets, O(1) from the
/// expiry aggregates.  Expiries are PD-independent, so any existing kernel
/// rows serve; bare queues are folded with PD 0 on first use.
inline TimeMs kernel_mean_remaining_lifetime(const QueuedMessage& queued,
                                             TimeMs now) {
  if (queued.targets.empty()) return kNoDeadline;
  if (queued.scored.size() != queued.targets.size()) {
    precompute_scores(queued, 0.0);
  }
  if (queued.bounded_targets == 0) return kNoDeadline;
  return queued.expiry_sum / static_cast<double>(queued.bounded_targets) - now;
}

}  // namespace bdps
