#include "scheduling/success.h"

namespace bdps {

TimeMs expected_forward_delay(const SubscriptionEntry& entry,
                              const Message& message,
                              TimeMs processing_delay) {
  return entry.path.hop_brokers * processing_delay +
         message.size_kb() * entry.path.mean_ms_per_kb;
}

double success_probability(const SubscriptionEntry& entry,
                           const Message& message, TimeMs now,
                           TimeMs processing_delay, TimeMs extra_delay) {
  const TimeMs deadline = entry.effective_deadline(message);
  if (deadline == kNoDeadline) return 1.0;  // Unbounded delivery always "succeeds".

  const TimeMs budget = deadline - message.elapsed(now) - extra_delay -
                        entry.path.hop_brokers * processing_delay;
  // Remaining random part: size * TR_p with TR_p ~ N(mu_p, sigma_p^2), so
  // the propagation delay is N(size*mu_p, (size*sigma_p)^2).
  const double mean = message.size_kb() * entry.path.mean_ms_per_kb;
  const double stddev = message.size_kb() * entry.path.stddev();
  return normal_cdf(budget, mean, stddev);
}

double expected_benefit_term(const SubscriptionEntry& entry,
                             const Message& message, TimeMs now,
                             TimeMs processing_delay, TimeMs extra_delay) {
  return success_probability(entry, message, now, processing_delay,
                             extra_delay) *
         entry.subscription->price;
}

TimeMs remaining_lifetime(const SubscriptionEntry& entry,
                          const Message& message, TimeMs now) {
  const TimeMs deadline = entry.effective_deadline(message);
  if (deadline == kNoDeadline) return kNoDeadline;
  return deadline - message.elapsed(now);
}

double lower_bound_success(const SubscriptionEntry& entry,
                           const Message& message, TimeMs now,
                           TimeMs processing_delay, double confidence_z) {
  const TimeMs deadline = entry.effective_deadline(message);
  if (deadline == kNoDeadline) return 1.0;
  const TimeMs budget = deadline - message.elapsed(now) -
                        entry.path.hop_brokers * processing_delay;
  const double pessimistic_rate =
      entry.path.mean_ms_per_kb + confidence_z * entry.path.stddev();
  return message.size_kb() * pessimistic_rate <= budget ? 1.0 : 0.0;
}

}  // namespace bdps
