// Invalid-message detection (§5.4).
//
// Before each send, a broker removes from the output queue:
//   * messages whose deadline has already passed for every target, and
//   * messages for which success(s_i, m) < epsilon for every target
//     (eq. 11; the paper uses epsilon = 0.05%).
// The first rule is the epsilon -> 0 limit of the second; it is kept
// separate so the "purge hopeless messages" optimisation can be ablated
// while still discarding outright-expired traffic.
#pragma once

#include <cstddef>
#include <vector>

#include "scheduling/scheduler.h"

namespace bdps {

struct PurgePolicy {
  /// epsilon of eq. (11); 0 disables the probabilistic purge.
  double epsilon = 0.0005;
  /// Whether to drop messages that are already past every target deadline.
  bool drop_expired = true;
};

struct PurgeStats {
  std::size_t expired = 0;   // Dropped because all deadlines passed.
  std::size_t hopeless = 0;  // Dropped by the eq. (11) threshold.

  PurgeStats& operator+=(const PurgeStats& other) {
    expired += other.expired;
    hopeless += other.hopeless;
    return *this;
  }
};

/// Why (or whether) one queued message should be deleted right now.
enum class PurgeVerdict { kKeep, kExpired, kHopeless };

/// Applies both §5.4 rules to one message (ensuring its kernel rows first).
PurgeVerdict classify_purge(const QueuedMessage& queued,
                            const SchedulingContext& context,
                            const PurgePolicy& policy);

/// True when eq. (11) says the queued message should be deleted.
bool should_purge(const QueuedMessage& queued, const SchedulingContext& context,
                  const PurgePolicy& policy);

/// Removes purgeable messages in place (stable order) and reports counts.
/// When `purged_ids` is non-null the ids of deleted messages are appended
/// (trace support).
PurgeStats purge_queue(std::vector<QueuedMessage>& queue,
                       const SchedulingContext& context,
                       const PurgePolicy& policy,
                       std::vector<MessageId>* purged_ids = nullptr);

}  // namespace bdps
