#include "scheduling/purge.h"

#include <algorithm>

namespace bdps {

namespace {

// Both rules read the precomputed kernel rows: expiry alone decides
// expiration, and the eq. (11) threshold is one saturated Phi per target —
// no subscription-table pointer chasing in the pre-send scan.

bool all_expired(const QueuedMessage& queued, TimeMs now) {
  for (const ScoredTarget& st : queued.scored) {
    if (!(st.expiry <= now)) return false;  // Unexpired or no deadline (inf).
  }
  return !queued.scored.empty();
}

bool all_hopeless(const QueuedMessage& queued, TimeMs now, double epsilon) {
  for (const ScoredTarget& st : queued.scored) {
    if (scored_success(st, now) >= epsilon) return false;
  }
  return !queued.scored.empty();
}

}  // namespace

PurgeVerdict classify_purge(const QueuedMessage& queued,
                            const SchedulingContext& context,
                            const PurgePolicy& policy) {
  ensure_scored(queued, context.processing_delay);
  if (policy.drop_expired && all_expired(queued, context.now)) {
    return PurgeVerdict::kExpired;
  }
  if (policy.epsilon > 0.0 &&
      all_hopeless(queued, context.now, policy.epsilon)) {
    return PurgeVerdict::kHopeless;
  }
  return PurgeVerdict::kKeep;
}

bool should_purge(const QueuedMessage& queued,
                  const SchedulingContext& context,
                  const PurgePolicy& policy) {
  return classify_purge(queued, context, policy) != PurgeVerdict::kKeep;
}

PurgeStats purge_queue(std::vector<QueuedMessage>& queue,
                       const SchedulingContext& context,
                       const PurgePolicy& policy,
                       std::vector<MessageId>* purged_ids) {
  PurgeStats stats;
  const auto keep_end = std::remove_if(
      queue.begin(), queue.end(), [&](const QueuedMessage& queued) {
        switch (classify_purge(queued, context, policy)) {
          case PurgeVerdict::kKeep:
            return false;
          case PurgeVerdict::kExpired:
            ++stats.expired;
            break;
          case PurgeVerdict::kHopeless:
            ++stats.hopeless;
            break;
        }
        if (purged_ids != nullptr) {
          purged_ids->push_back(queued.message->id());
        }
        return true;
      });
  queue.erase(keep_end, queue.end());
  return stats;
}

}  // namespace bdps
