#include "scheduling/purge.h"

#include <algorithm>

namespace bdps {

namespace {

bool all_expired(const QueuedMessage& queued, TimeMs now) {
  for (const SubscriptionEntry* entry : queued.targets) {
    const TimeMs lifetime = remaining_lifetime(*entry, *queued.message, now);
    if (lifetime == kNoDeadline || lifetime > 0.0) return false;
  }
  return !queued.targets.empty();
}

bool all_hopeless(const QueuedMessage& queued,
                  const SchedulingContext& context, double epsilon) {
  for (const SubscriptionEntry* entry : queued.targets) {
    if (success_probability(*entry, *queued.message, context.now,
                            context.processing_delay) >= epsilon) {
      return false;
    }
  }
  return !queued.targets.empty();
}

}  // namespace

bool should_purge(const QueuedMessage& queued,
                  const SchedulingContext& context,
                  const PurgePolicy& policy) {
  if (policy.drop_expired && all_expired(queued, context.now)) return true;
  if (policy.epsilon > 0.0 && all_hopeless(queued, context, policy.epsilon)) {
    return true;
  }
  return false;
}

PurgeStats purge_queue(std::vector<QueuedMessage>& queue,
                       const SchedulingContext& context,
                       const PurgePolicy& policy,
                       std::vector<MessageId>* purged_ids) {
  PurgeStats stats;
  const auto keep_end = std::remove_if(
      queue.begin(), queue.end(), [&](const QueuedMessage& queued) {
        if (policy.drop_expired && all_expired(queued, context.now)) {
          ++stats.expired;
          if (purged_ids != nullptr) {
            purged_ids->push_back(queued.message->id());
          }
          return true;
        }
        if (policy.epsilon > 0.0 &&
            all_hopeless(queued, context, policy.epsilon)) {
          ++stats.hopeless;
          if (purged_ids != nullptr) {
            purged_ids->push_back(queued.message->id());
          }
          return true;
        }
        return false;
      });
  queue.erase(keep_end, queue.end());
  return stats;
}

}  // namespace bdps
