#include "scheduling/scheduler.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>

namespace bdps {

double expected_benefit(const QueuedMessage& queued,
                        const SchedulingContext& context) {
  return kernel_expected_benefit(queued, context);
}

double postponed_benefit(const QueuedMessage& queued,
                         const SchedulingContext& context) {
  ensure_scored(queued, context.processing_delay);
  const double t = context.now + context.head_of_line_estimate;
  double total = 0.0;
  for (const ScoredTarget& st : queued.scored) {
    total += st.price * scored_success(st, t);
  }
  return total;
}

double postponing_cost(const QueuedMessage& queued,
                       const SchedulingContext& context) {
  const BenefitPair pair = kernel_benefit_pair(queued, context);
  return pair.immediate - pair.postponed;
}

double ebpc_metric(const QueuedMessage& queued,
                   const SchedulingContext& context, double weight) {
  const BenefitPair pair = kernel_benefit_pair(queued, context);
  return weight * pair.immediate +
         (1.0 - weight) * (pair.immediate - pair.postponed);
}

double lower_bound_benefit(const QueuedMessage& queued,
                           const SchedulingContext& context) {
  return kernel_lower_bound_benefit(queued, context);
}

TimeMs mean_remaining_lifetime(const QueuedMessage& queued, TimeMs now) {
  return kernel_mean_remaining_lifetime(queued, now);
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Reference argmax scan (see Strategy::reference_pick).  Exactly tied
/// scores break through tie_break_before.
template <typename ScoreFn>
std::size_t pick_max(std::span<const QueuedMessage> queue, ScoreFn score) {
  std::size_t best = 0;
  double best_score = -kInf;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const double s = score(queue[i]);
    if (s > best_score) {
      best_score = s;
      best = i;
    } else if (s == best_score && tie_break_before(queue[i], queue[best])) {
      best = i;
    }
  }
  return best;
}

double rl_score(const QueuedMessage& queued, TimeMs now) {
  const TimeMs lifetime = kernel_mean_remaining_lifetime(queued, now);
  return lifetime == kNoDeadline ? -kInf : -lifetime;
}

// ---- FIFO / RL: indexed min-heap on time-invariant keys --------------------
//
// Both policies order rows by keys fixed at enqueue time (FIFO: enqueue
// instant; RL: mean expiry across deadline-bounded targets, because
// mean-lifetime = mean-expiry - now shifts every row equally).  The state is
// a binary min-heap of queue indices plus a position map, both mirrored
// against the queue's swap-with-back removal, so enqueue/remove cost
// O(log n) and pick reads the root.

struct HeapKey {
  double primary = 0.0;  // FIFO: 0; RL: mean expiry (+inf when unbounded).
  TimeMs enqueue_time = 0.0;
  MessageId id = 0;

  bool before(const HeapKey& other) const {
    if (primary != other.primary) return primary < other.primary;
    if (enqueue_time != other.enqueue_time) {
      return enqueue_time < other.enqueue_time;
    }
    return id < other.id;
  }
};

class HeapState final : public SchedulerState {
 public:
  HeapState(const std::vector<QueuedMessage>* queue, StrategyKind kind)
      : SchedulerState(queue), kind_(kind) {}

  void on_enqueue(std::size_t index) override {
    keys_.push_back(make_key(queue()[index]));
    pos_.push_back(heap_.size());
    heap_.push_back(index);
    sift_up(heap_.size() - 1);
  }

  void on_remove(std::size_t index) override {
    detach(pos_[index]);
    const std::size_t last = keys_.size() - 1;
    if (index != last) {
      // take_at will swap the back row into slot `index`: rename it.
      keys_[index] = keys_[last];
      const std::size_t slot = pos_[last];
      heap_[slot] = index;
      pos_[index] = slot;
    }
    keys_.pop_back();
    pos_.pop_back();
  }

  std::size_t pick(const SchedulingContext&) override { return heap_.front(); }

 private:
  HeapKey make_key(const QueuedMessage& queued) const {
    HeapKey key{0.0, queued.enqueue_time, queued.message->id()};
    if (kind_ == StrategyKind::kRemainingLifetime) {
      // Mean expiry needs the kernel aggregates; expiries are
      // PD-independent, so rows already folded by the enqueue path are
      // reused and bare rows (hand-built queues) fold with PD 0, exactly
      // as kernel_mean_remaining_lifetime does.
      if (queued.scored.size() != queued.targets.size()) {
        precompute_scores(queued, 0.0);
      }
      key.primary = queued.bounded_targets == 0
                        ? kInf
                        : queued.expiry_sum /
                              static_cast<double>(queued.bounded_targets);
    }
    return key;
  }

  bool slot_before(std::size_t a, std::size_t b) const {
    return keys_[heap_[a]].before(keys_[heap_[b]]);
  }

  void sift_up(std::size_t slot) {
    while (slot > 0) {
      const std::size_t parent = (slot - 1) / 2;
      if (!slot_before(slot, parent)) break;
      std::swap(heap_[slot], heap_[parent]);
      pos_[heap_[slot]] = slot;
      pos_[heap_[parent]] = parent;
      slot = parent;
    }
  }

  void sift_down(std::size_t slot) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t left = 2 * slot + 1;
      const std::size_t right = left + 1;
      std::size_t smallest = slot;
      if (left < n && slot_before(left, smallest)) smallest = left;
      if (right < n && slot_before(right, smallest)) smallest = right;
      if (smallest == slot) return;
      std::swap(heap_[slot], heap_[smallest]);
      pos_[heap_[slot]] = slot;
      pos_[heap_[smallest]] = smallest;
      slot = smallest;
    }
  }

  /// Removes the entry at heap slot `slot` (filling the hole with the last
  /// heap entry and re-sifting).  pos_ for the removed queue index becomes
  /// stale; on_remove repairs or pops it.
  void detach(std::size_t slot) {
    const std::size_t back = heap_.size() - 1;
    if (slot != back) {
      heap_[slot] = heap_[back];
      pos_[heap_[slot]] = slot;
    }
    heap_.pop_back();
    if (slot < heap_.size()) {
      sift_down(slot);
      sift_up(slot);
    }
  }

  StrategyKind kind_;
  std::vector<std::size_t> heap_;  // Heap of queue indices.
  std::vector<std::size_t> pos_;   // pos_[queue index] = heap slot.
  std::vector<HeapKey> keys_;      // keys_[queue index], mirrors the queue.
};

// ---- PC / EBPC: linear bound scan over the kernel rows ---------------------
//
// For the postponing-cost family the decay bound is EB_m while the score is
// PC/EBPC — systematically *below* the bound — so the contender set (rows
// whose bound clears the running best) stays large and a heap walk pays
// pop/push churn on every contender every pick.  The flat scan touches each
// bound once, skips losers with one compare, and measured ~2x faster than
// the heap variant at depth 4096 (584us vs 1148us per dispatch cycle, see
// BENCH_pr4.json); the heap below is reserved for the strategies whose
// bound is the score itself.
class BoundedScanState final : public SchedulerState {
 public:
  BoundedScanState(const std::vector<QueuedMessage>* queue,
                     StrategyKind kind, double weight)
      : SchedulerState(queue), kind_(kind), weight_(weight) {}

  void on_enqueue(std::size_t) override { bounds_.push_back(kInf); }

  void on_remove(std::size_t index) override {
    bounds_[index] = bounds_.back();
    bounds_.pop_back();
  }

  void on_tick(const SchedulingContext& context) override {
    // Bounds assume time moves forward and a fixed PD: a clock regression
    // voids them, and so does a PD change — the kernel refolds slack_const
    // with the new PD (ensure_scored), which can move scores either way.
    // The `!=` also catches the initial NaN sentinel.
    if (context.now < last_now_ ||
        context.processing_delay != last_pd_) {
      bounds_.assign(bounds_.size(), kInf);
    }
  }

  std::size_t pick(const SchedulingContext& context) override {
    on_tick(context);
    last_now_ = context.now;
    last_pd_ = context.processing_delay;
    const std::vector<QueuedMessage>& q = queue();
    std::size_t best = 0;
    double best_score = rescore(0, context);
    for (std::size_t i = 1; i < q.size(); ++i) {
      // A stale bound below the running best can never win; equal to it, it
      // can at most tie — which only matters if this row wins the tie.
      if (bounds_[i] < best_score) continue;
      if (bounds_[i] == best_score && !tie_break_before(q[i], q[best])) {
        continue;
      }
      const double s = rescore(i, context);
      if (s > best_score ||
          (s == best_score && tie_break_before(q[i], q[best]))) {
        best_score = s;
        best = i;
      }
    }
    return best;
  }

 private:
  /// Exact score of row `i` now; refreshes its decay bound as a side
  /// effect (EB for the EB-dominated scores, the score itself otherwise).
  double rescore(std::size_t i, const SchedulingContext& context) {
    const QueuedMessage& queued = queue()[i];
    switch (kind_) {
      case StrategyKind::kEb: {
        const double eb = kernel_expected_benefit(queued, context);
        bounds_[i] = eb;
        return eb;
      }
      case StrategyKind::kLowerBound: {
        const double lb = kernel_lower_bound_benefit(queued, context);
        bounds_[i] = lb;
        return lb;
      }
      case StrategyKind::kPc: {
        const BenefitPair pair = kernel_benefit_pair(queued, context);
        bounds_[i] = pair.immediate;
        return pair.immediate - pair.postponed;
      }
      case StrategyKind::kEbpc: {
        const BenefitPair pair = kernel_benefit_pair(queued, context);
        bounds_[i] = pair.immediate;
        return weight_ * pair.immediate +
               (1.0 - weight_) * (pair.immediate - pair.postponed);
      }
      default:
        break;
    }
    throw std::logic_error("BoundedScanState: unexpected strategy kind");
  }

  StrategyKind kind_;
  double weight_;
  TimeMs last_now_ = -kInf;
  TimeMs last_pd_ = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> bounds_;  // bounds_[queue index], mirrors the queue.
};


// ---- EB / LB: lazy bound-heap argmax over the kernel rows ------------------
//
// These scores are time-dependent, but every one of them is dominated by
// EB_m, and EB_m (like LB_m) can only decay as `now` advances: each target
// term is price · Phi((slack_const - now) / (size · sigma)), monotone
// non-increasing in now.  So the exact score computed at an earlier instant
// is an upper bound forever after (until the row set changes), and FT /
// rate-estimate drift cannot raise it (EB is FT-independent).
//
// pick walks a lazy *max-heap over the bounds* instead of rescanning them
// linearly: entries surface in decreasing-bound order, so the walk stops at
// the first live bound that cannot beat (or, on an exact bound tie, cannot
// out-tie) the running best — O(contenders · log n) heap traffic per pick
// where the rescan paid an O(n) sweep every time.  Laziness means nothing
// is ever updated in place: rescoring a row pushes a fresh entry, and a
// superseded entry is discarded when it surfaces (its bound no longer
// matches the row's current bound, or its generation is stale).
//
// Rows are tracked by *serial*, not queue index — take_at's swap-with-back
// renames indices on every removal, and a heap keyed by index would have to
// be rebuilt each time.  A serial is allocated per enqueue, freed (with a
// generation bump that invalidates surviving entries) on removal, and the
// serial <-> index maps are patched in O(1) per rename.  Heap order for
// equal bounds is the shared tie order (tie_break_before), so among
// tied-bound rows the tie winner surfaces first and the walk can stop as
// soon as the top loses a tie to the running best; tie-order transitivity
// makes discarding tied losers safe.
//
// A just-rescored row's fresh entry can resurface while still matching
// best_score (exact EB/LB ties), where re-rescoring would loop; a per-pick
// epoch marks rescored rows, whose (still current) entries are parked
// aside mid-walk and re-pushed afterwards instead of being rescored again.
class BoundedArgmaxState final : public SchedulerState {
 public:
  BoundedArgmaxState(const std::vector<QueuedMessage>* queue,
                     StrategyKind kind)
      : SchedulerState(queue), kind_(kind) {}

  void on_enqueue(std::size_t index) override {
    std::uint32_t serial;
    if (!free_serials_.empty()) {
      serial = free_serials_.back();
      free_serials_.pop_back();
    } else {
      serial = static_cast<std::uint32_t>(bound_by_serial_.size());
      bound_by_serial_.push_back(kInf);
      generation_.push_back(0);
      index_by_serial_.push_back(-1);
      visited_epoch_.push_back(0);
    }
    bound_by_serial_[serial] = kInf;
    index_by_serial_[serial] = static_cast<std::int64_t>(index);
    serial_by_index_.push_back(serial);
    push_entry(serial, kInf, queue()[index]);
  }

  void on_remove(std::size_t index) override {
    const std::uint32_t serial = serial_by_index_[index];
    ++generation_[serial];  // Kills this row's surviving heap entries.
    index_by_serial_[serial] = -1;
    free_serials_.push_back(serial);
    // take_at will swap the back row into slot `index`: rename it.
    const std::uint32_t moved = serial_by_index_.back();
    if (index != serial_by_index_.size() - 1) {
      serial_by_index_[index] = moved;
      index_by_serial_[moved] = static_cast<std::int64_t>(index);
    }
    serial_by_index_.pop_back();
  }

  void on_tick(const SchedulingContext& context) override {
    // Bounds assume time moves forward and a fixed PD: a clock regression
    // voids them, and so does a PD change — the kernel refolds slack_const
    // with the new PD (ensure_scored), which can move scores either way.
    // The `!=` also catches the initial NaN sentinel.
    if (context.now < last_now_ ||
        context.processing_delay != last_pd_) {
      heap_.clear();
      const std::vector<QueuedMessage>& q = queue();
      for (std::size_t i = 0; i < q.size(); ++i) {
        const std::uint32_t serial = serial_by_index_[i];
        bound_by_serial_[serial] = kInf;
        heap_.push_back(Entry{kInf, q[i].enqueue_time, q[i].message->id(),
                              serial, generation_[serial]});
      }
      std::make_heap(heap_.begin(), heap_.end(), entry_less);
    }
  }

  std::size_t pick(const SchedulingContext& context) override {
    on_tick(context);
    last_now_ = context.now;
    last_pd_ = context.processing_delay;
    ++epoch_;
    const std::vector<QueuedMessage>& q = queue();
    constexpr std::size_t kNone = ~std::size_t{0};
    std::size_t best = kNone;
    double best_score = -kInf;
    while (!heap_.empty()) {
      const Entry top = heap_.front();
      const bool live = generation_[top.serial] == top.generation &&
                        top.bound == bound_by_serial_[top.serial];
      if (!live) {
        pop_entry();  // Superseded or removed row; discard.
        continue;
      }
      const auto index =
          static_cast<std::size_t>(index_by_serial_[top.serial]);
      if (visited_epoch_[top.serial] == epoch_) {
        // Already rescored this pick (and did not win); keep the entry for
        // future picks but get it out of this walk.
        revisit_.push_back(top);
        pop_entry();
        continue;
      }
      if (best != kNone) {
        if (top.bound < best_score) break;
        if (top.bound == best_score &&
            !tie_break_before(q[index], q[best])) {
          break;  // Every deeper equal-bound entry loses the tie too.
        }
      }
      pop_entry();
      visited_epoch_[top.serial] = epoch_;
      const double score = rescore(index, context);
      if (best == kNone || score > best_score ||
          (score == best_score && tie_break_before(q[index], q[best]))) {
        best_score = score;
        best = index;
      }
    }
    for (const Entry& entry : revisit_) {
      heap_.push_back(entry);
      std::push_heap(heap_.begin(), heap_.end(), entry_less);
    }
    revisit_.clear();
    return best;
  }

 private:
  struct Entry {
    double bound = kInf;
    TimeMs enqueue_time = 0.0;
    MessageId id = 0;
    std::uint32_t serial = 0;
    std::uint32_t generation = 0;
  };

  /// Max-heap "less": smaller bound is worse; among equal bounds the
  /// tie-break winner (older enqueue, then smaller id) ranks higher.
  static bool entry_less(const Entry& a, const Entry& b) {
    if (a.bound != b.bound) return a.bound < b.bound;
    if (a.enqueue_time != b.enqueue_time) {
      return a.enqueue_time > b.enqueue_time;
    }
    return a.id > b.id;
  }

  void push_entry(std::uint32_t serial, double bound,
                  const QueuedMessage& queued) {
    heap_.push_back(Entry{bound, queued.enqueue_time, queued.message->id(),
                          serial, generation_[serial]});
    std::push_heap(heap_.begin(), heap_.end(), entry_less);
  }

  void pop_entry() {
    std::pop_heap(heap_.begin(), heap_.end(), entry_less);
    heap_.pop_back();
  }

  /// Exact score of row `index` now; refreshes its decay bound (EB for the
  /// EB-dominated scores, the score itself otherwise) and pushes the
  /// refreshed heap entry.
  double rescore(std::size_t index, const SchedulingContext& context) {
    const QueuedMessage& queued = queue()[index];
    double score;
    switch (kind_) {
      case StrategyKind::kEb:
        score = kernel_expected_benefit(queued, context);
        break;
      case StrategyKind::kLowerBound:
        score = kernel_lower_bound_benefit(queued, context);
        break;
      default:
        throw std::logic_error(
            "BoundedArgmaxState: unexpected strategy kind");
    }
    const std::uint32_t serial = serial_by_index_[index];
    bound_by_serial_[serial] = score;
    push_entry(serial, score, queued);
    return score;
  }

  StrategyKind kind_;
  TimeMs last_now_ = -kInf;
  TimeMs last_pd_ = std::numeric_limits<double>::quiet_NaN();
  // Serial-keyed row state (stable across take_at's index renames).
  std::vector<double> bound_by_serial_;
  std::vector<std::uint32_t> generation_;
  std::vector<std::int64_t> index_by_serial_;  // -1 = dead.
  std::vector<std::uint64_t> visited_epoch_;
  std::vector<std::uint32_t> free_serials_;
  std::vector<std::uint32_t> serial_by_index_;  // Mirrors the queue.
  std::vector<Entry> heap_;
  std::vector<Entry> revisit_;
  std::uint64_t epoch_ = 0;
};

}  // namespace

Strategy::Strategy(StrategyKind kind, double ebpc_weight)
    : kind_(kind), ebpc_weight_(ebpc_weight) {
  if (kind == StrategyKind::kEbpc &&
      (ebpc_weight < 0.0 || ebpc_weight > 1.0)) {
    throw std::invalid_argument("EBPC weight r must be in [0, 1]");
  }
}

std::string Strategy::name() const {
  if (kind_ == StrategyKind::kEbpc) {
    return "EBPC(r=" + std::to_string(ebpc_weight_) + ")";
  }
  return strategy_name(kind_);
}

std::unique_ptr<SchedulerState> Strategy::make_state(
    const std::vector<QueuedMessage>* queue) const {
  switch (kind_) {
    case StrategyKind::kFifo:
    case StrategyKind::kRemainingLifetime:
      return std::make_unique<HeapState>(queue, kind_);
    case StrategyKind::kEb:
    case StrategyKind::kLowerBound:
      return std::make_unique<BoundedArgmaxState>(queue, kind_);
    case StrategyKind::kPc:
    case StrategyKind::kEbpc:
      return std::make_unique<BoundedScanState>(queue, kind_, ebpc_weight_);
  }
  throw std::invalid_argument("unknown strategy kind");
}

std::size_t Strategy::reference_pick(std::span<const QueuedMessage> queue,
                                     const SchedulingContext& context) const {
  switch (kind_) {
    case StrategyKind::kFifo:
      return pick_max(queue, [](const QueuedMessage& q) {
        return -q.enqueue_time;
      });
    case StrategyKind::kRemainingLifetime:
      return pick_max(queue, [&](const QueuedMessage& q) {
        return rl_score(q, context.now);
      });
    case StrategyKind::kEb:
      return pick_max(queue, [&](const QueuedMessage& q) {
        return kernel_expected_benefit(q, context);
      });
    case StrategyKind::kPc:
      return pick_max(queue, [&](const QueuedMessage& q) {
        return postponing_cost(q, context);
      });
    case StrategyKind::kEbpc:
      return pick_max(queue, [&](const QueuedMessage& q) {
        return ebpc_metric(q, context, ebpc_weight_);
      });
    case StrategyKind::kLowerBound:
      return pick_max(queue, [&](const QueuedMessage& q) {
        return kernel_lower_bound_benefit(q, context);
      });
  }
  throw std::invalid_argument("unknown strategy kind");
}

StrategyKind parse_strategy(const std::string& name) {
  if (name == "FIFO" || name == "fifo") return StrategyKind::kFifo;
  if (name == "RL" || name == "rl") return StrategyKind::kRemainingLifetime;
  if (name == "EB" || name == "eb") return StrategyKind::kEb;
  if (name == "PC" || name == "pc") return StrategyKind::kPc;
  if (name == "EBPC" || name == "ebpc") return StrategyKind::kEbpc;
  if (name == "LB" || name == "lb") return StrategyKind::kLowerBound;
  throw std::invalid_argument("unknown strategy: " + name);
}

std::string strategy_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kFifo:
      return "FIFO";
    case StrategyKind::kRemainingLifetime:
      return "RL";
    case StrategyKind::kEb:
      return "EB";
    case StrategyKind::kPc:
      return "PC";
    case StrategyKind::kEbpc:
      return "EBPC";
    case StrategyKind::kLowerBound:
      return "LB";
  }
  return "?";
}

std::unique_ptr<const Strategy> make_strategy(StrategyKind kind,
                                              double ebpc_weight) {
  return std::make_unique<const Strategy>(kind, ebpc_weight);
}

}  // namespace bdps
