#include "scheduling/scheduler.h"

#include <limits>
#include <stdexcept>

namespace bdps {

double expected_benefit(const QueuedMessage& queued,
                        const SchedulingContext& context) {
  double total = 0.0;
  for (const SubscriptionEntry* entry : queued.targets) {
    total += expected_benefit_term(*entry, *queued.message, context.now,
                                   context.processing_delay);
  }
  return total;
}

double postponed_benefit(const QueuedMessage& queued,
                         const SchedulingContext& context) {
  double total = 0.0;
  for (const SubscriptionEntry* entry : queued.targets) {
    total += expected_benefit_term(*entry, *queued.message, context.now,
                                   context.processing_delay,
                                   context.head_of_line_estimate);
  }
  return total;
}

double postponing_cost(const QueuedMessage& queued,
                       const SchedulingContext& context) {
  return expected_benefit(queued, context) -
         postponed_benefit(queued, context);
}

double ebpc_metric(const QueuedMessage& queued,
                   const SchedulingContext& context, double weight) {
  return weight * expected_benefit(queued, context) +
         (1.0 - weight) * postponing_cost(queued, context);
}

double lower_bound_benefit(const QueuedMessage& queued,
                           const SchedulingContext& context) {
  double total = 0.0;
  for (const SubscriptionEntry* entry : queued.targets) {
    total += lower_bound_success(*entry, *queued.message, context.now,
                                 context.processing_delay) *
             entry->subscription->price;
  }
  return total;
}

TimeMs mean_remaining_lifetime(const QueuedMessage& queued, TimeMs now) {
  if (queued.targets.empty()) return kNoDeadline;
  double total = 0.0;
  std::size_t bounded = 0;
  for (const SubscriptionEntry* entry : queued.targets) {
    const TimeMs lifetime = remaining_lifetime(*entry, *queued.message, now);
    if (lifetime == kNoDeadline) continue;
    total += lifetime;
    ++bounded;
  }
  if (bounded == 0) return kNoDeadline;
  return total / static_cast<double>(bounded);
}

namespace {

/// Shared argmax scan with first-wins tie-breaking (keeps strategies
/// deterministic for equal scores).
template <typename ScoreFn>
std::size_t pick_max(std::span<const QueuedMessage> queue, ScoreFn score) {
  std::size_t best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const double s = score(queue[i]);
    if (s > best_score) {
      best_score = s;
      best = i;
    }
  }
  return best;
}

class FifoScheduler final : public Scheduler {
 public:
  std::string name() const override { return "FIFO"; }
  std::size_t pick(std::span<const QueuedMessage> queue,
                   const SchedulingContext&) const override {
    // Earliest enqueue time first.
    return pick_max(queue, [](const QueuedMessage& q) {
      return -q.enqueue_time;
    });
  }
};

class RemainingLifetimeScheduler final : public Scheduler {
 public:
  std::string name() const override { return "RL"; }
  std::size_t pick(std::span<const QueuedMessage> queue,
                   const SchedulingContext& context) const override {
    // Minimum (mean) remaining lifetime first.
    return pick_max(queue, [&](const QueuedMessage& q) {
      const TimeMs lifetime = mean_remaining_lifetime(q, context.now);
      return lifetime == kNoDeadline
                 ? -std::numeric_limits<double>::infinity()
                 : -lifetime;
    });
  }
};

class ExpectedBenefitScheduler final : public Scheduler {
 public:
  std::string name() const override { return "EB"; }
  std::size_t pick(std::span<const QueuedMessage> queue,
                   const SchedulingContext& context) const override {
    return pick_max(queue, [&](const QueuedMessage& q) {
      return expected_benefit(q, context);
    });
  }
};

class PostponingCostScheduler final : public Scheduler {
 public:
  std::string name() const override { return "PC"; }
  std::size_t pick(std::span<const QueuedMessage> queue,
                   const SchedulingContext& context) const override {
    return pick_max(queue, [&](const QueuedMessage& q) {
      return postponing_cost(q, context);
    });
  }
};

class LowerBoundScheduler final : public Scheduler {
 public:
  std::string name() const override { return "LB"; }
  std::size_t pick(std::span<const QueuedMessage> queue,
                   const SchedulingContext& context) const override {
    return pick_max(queue, [&](const QueuedMessage& q) {
      return lower_bound_benefit(q, context);
    });
  }
};

class EbpcScheduler final : public Scheduler {
 public:
  explicit EbpcScheduler(double weight) : weight_(weight) {
    if (weight < 0.0 || weight > 1.0) {
      throw std::invalid_argument("EBPC weight r must be in [0, 1]");
    }
  }
  std::string name() const override {
    return "EBPC(r=" + std::to_string(weight_) + ")";
  }
  std::size_t pick(std::span<const QueuedMessage> queue,
                   const SchedulingContext& context) const override {
    return pick_max(queue, [&](const QueuedMessage& q) {
      return ebpc_metric(q, context, weight_);
    });
  }

 private:
  double weight_;
};

}  // namespace

StrategyKind parse_strategy(const std::string& name) {
  if (name == "FIFO" || name == "fifo") return StrategyKind::kFifo;
  if (name == "RL" || name == "rl") return StrategyKind::kRemainingLifetime;
  if (name == "EB" || name == "eb") return StrategyKind::kEb;
  if (name == "PC" || name == "pc") return StrategyKind::kPc;
  if (name == "EBPC" || name == "ebpc") return StrategyKind::kEbpc;
  if (name == "LB" || name == "lb") return StrategyKind::kLowerBound;
  throw std::invalid_argument("unknown strategy: " + name);
}

std::string strategy_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kFifo:
      return "FIFO";
    case StrategyKind::kRemainingLifetime:
      return "RL";
    case StrategyKind::kEb:
      return "EB";
    case StrategyKind::kPc:
      return "PC";
    case StrategyKind::kEbpc:
      return "EBPC";
    case StrategyKind::kLowerBound:
      return "LB";
  }
  return "?";
}

std::unique_ptr<Scheduler> make_scheduler(StrategyKind kind,
                                          double ebpc_weight) {
  switch (kind) {
    case StrategyKind::kFifo:
      return std::make_unique<FifoScheduler>();
    case StrategyKind::kRemainingLifetime:
      return std::make_unique<RemainingLifetimeScheduler>();
    case StrategyKind::kEb:
      return std::make_unique<ExpectedBenefitScheduler>();
    case StrategyKind::kPc:
      return std::make_unique<PostponingCostScheduler>();
    case StrategyKind::kEbpc:
      return std::make_unique<EbpcScheduler>(ebpc_weight);
    case StrategyKind::kLowerBound:
      return std::make_unique<LowerBoundScheduler>();
  }
  throw std::invalid_argument("unknown strategy kind");
}

}  // namespace bdps
