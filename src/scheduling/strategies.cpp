#include "scheduling/scheduler.h"

#include <limits>
#include <stdexcept>

namespace bdps {

double expected_benefit(const QueuedMessage& queued,
                        const SchedulingContext& context) {
  return kernel_expected_benefit(queued, context);
}

double postponed_benefit(const QueuedMessage& queued,
                         const SchedulingContext& context) {
  ensure_scored(queued, context.processing_delay);
  const double t = context.now + context.head_of_line_estimate;
  double total = 0.0;
  for (const ScoredTarget& st : queued.scored) {
    total += st.price * scored_success(st, t);
  }
  return total;
}

double postponing_cost(const QueuedMessage& queued,
                       const SchedulingContext& context) {
  const BenefitPair pair = kernel_benefit_pair(queued, context);
  return pair.immediate - pair.postponed;
}

double ebpc_metric(const QueuedMessage& queued,
                   const SchedulingContext& context, double weight) {
  const BenefitPair pair = kernel_benefit_pair(queued, context);
  return weight * pair.immediate +
         (1.0 - weight) * (pair.immediate - pair.postponed);
}

double lower_bound_benefit(const QueuedMessage& queued,
                           const SchedulingContext& context) {
  return kernel_lower_bound_benefit(queued, context);
}

TimeMs mean_remaining_lifetime(const QueuedMessage& queued, TimeMs now) {
  return kernel_mean_remaining_lifetime(queued, now);
}

namespace {

/// Shared argmax scan.  Exactly tied scores break on (enqueue_time,
/// message id) — oldest first — so every strategy's service order is
/// deterministic AND independent of queue positions: take_next compacts
/// the queue by swapping with the back, which permutes indices but never
/// the tie-break keys.
template <typename ScoreFn>
std::size_t pick_max(std::span<const QueuedMessage> queue, ScoreFn score) {
  std::size_t best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const double s = score(queue[i]);
    if (s > best_score) {
      best_score = s;
      best = i;
    } else if (s == best_score) {
      const QueuedMessage& q = queue[i];
      const QueuedMessage& b = queue[best];
      if (q.enqueue_time < b.enqueue_time ||
          (q.enqueue_time == b.enqueue_time &&
           q.message->id() < b.message->id())) {
        best = i;
      }
    }
  }
  return best;
}

class FifoScheduler final : public Scheduler {
 public:
  std::string name() const override { return "FIFO"; }
  std::size_t pick(std::span<const QueuedMessage> queue,
                   const SchedulingContext&) const override {
    // Earliest enqueue time first (same-instant ties fall to the shared
    // message-id tie-break).
    return pick_max(queue, [](const QueuedMessage& q) {
      return -q.enqueue_time;
    });
  }
};

class RemainingLifetimeScheduler final : public Scheduler {
 public:
  std::string name() const override { return "RL"; }
  std::size_t pick(std::span<const QueuedMessage> queue,
                   const SchedulingContext& context) const override {
    // Minimum (mean) remaining lifetime first.
    return pick_max(queue, [&](const QueuedMessage& q) {
      const TimeMs lifetime = mean_remaining_lifetime(q, context.now);
      return lifetime == kNoDeadline
                 ? -std::numeric_limits<double>::infinity()
                 : -lifetime;
    });
  }
};

class ExpectedBenefitScheduler final : public Scheduler {
 public:
  std::string name() const override { return "EB"; }
  std::size_t pick(std::span<const QueuedMessage> queue,
                   const SchedulingContext& context) const override {
    return pick_max(queue, [&](const QueuedMessage& q) {
      return expected_benefit(q, context);
    });
  }
};

class PostponingCostScheduler final : public Scheduler {
 public:
  std::string name() const override { return "PC"; }
  std::size_t pick(std::span<const QueuedMessage> queue,
                   const SchedulingContext& context) const override {
    return pick_max(queue, [&](const QueuedMessage& q) {
      return postponing_cost(q, context);
    });
  }
};

class LowerBoundScheduler final : public Scheduler {
 public:
  std::string name() const override { return "LB"; }
  std::size_t pick(std::span<const QueuedMessage> queue,
                   const SchedulingContext& context) const override {
    return pick_max(queue, [&](const QueuedMessage& q) {
      return lower_bound_benefit(q, context);
    });
  }
};

class EbpcScheduler final : public Scheduler {
 public:
  explicit EbpcScheduler(double weight) : weight_(weight) {
    if (weight < 0.0 || weight > 1.0) {
      throw std::invalid_argument("EBPC weight r must be in [0, 1]");
    }
  }
  std::string name() const override {
    return "EBPC(r=" + std::to_string(weight_) + ")";
  }
  std::size_t pick(std::span<const QueuedMessage> queue,
                   const SchedulingContext& context) const override {
    return pick_max(queue, [&](const QueuedMessage& q) {
      return ebpc_metric(q, context, weight_);
    });
  }

 private:
  double weight_;
};

}  // namespace

StrategyKind parse_strategy(const std::string& name) {
  if (name == "FIFO" || name == "fifo") return StrategyKind::kFifo;
  if (name == "RL" || name == "rl") return StrategyKind::kRemainingLifetime;
  if (name == "EB" || name == "eb") return StrategyKind::kEb;
  if (name == "PC" || name == "pc") return StrategyKind::kPc;
  if (name == "EBPC" || name == "ebpc") return StrategyKind::kEbpc;
  if (name == "LB" || name == "lb") return StrategyKind::kLowerBound;
  throw std::invalid_argument("unknown strategy: " + name);
}

std::string strategy_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kFifo:
      return "FIFO";
    case StrategyKind::kRemainingLifetime:
      return "RL";
    case StrategyKind::kEb:
      return "EB";
    case StrategyKind::kPc:
      return "PC";
    case StrategyKind::kEbpc:
      return "EBPC";
    case StrategyKind::kLowerBound:
      return "LB";
  }
  return "?";
}

std::unique_ptr<Scheduler> make_scheduler(StrategyKind kind,
                                          double ebpc_weight) {
  switch (kind) {
    case StrategyKind::kFifo:
      return std::make_unique<FifoScheduler>();
    case StrategyKind::kRemainingLifetime:
      return std::make_unique<RemainingLifetimeScheduler>();
    case StrategyKind::kEb:
      return std::make_unique<ExpectedBenefitScheduler>();
    case StrategyKind::kPc:
      return std::make_unique<PostponingCostScheduler>();
    case StrategyKind::kEbpc:
      return std::make_unique<EbpcScheduler>(ebpc_weight);
    case StrategyKind::kLowerBound:
      return std::make_unique<LowerBoundScheduler>();
  }
  throw std::invalid_argument("unknown strategy kind");
}

}  // namespace bdps
