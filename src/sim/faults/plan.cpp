#include "sim/faults/plan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace bdps {
namespace {

void check_broker(const Graph& graph, BrokerId broker, const char* what) {
  if (broker < 0 || static_cast<std::size_t>(broker) >= graph.broker_count()) {
    throw std::invalid_argument(std::string("fault plan: ") + what +
                                " references unknown broker " +
                                std::to_string(broker));
  }
}

void check_link(const Graph& graph, BrokerId a, BrokerId b, const char* what) {
  check_broker(graph, a, what);
  check_broker(graph, b, what);
  if (a == b) {
    throw std::invalid_argument(std::string("fault plan: ") + what +
                                " names a self-loop at broker " +
                                std::to_string(a));
  }
  if (graph.edge_id(a, b) == kNoEdge || graph.edge_id(b, a) == kNoEdge) {
    throw std::invalid_argument(std::string("fault plan: ") + what +
                                " references nonexistent link " +
                                std::to_string(a) + "-" + std::to_string(b));
  }
}

void check_window(TimeMs down_at, TimeMs up_at, const char* what) {
  if (!(down_at >= 0.0) || !std::isfinite(down_at)) {
    throw std::invalid_argument(std::string("fault plan: ") + what +
                                " has a negative or non-finite down time");
  }
  // up_at == kNoDeadline (inf) means "never recovers" and is allowed.
  if (!(up_at > down_at)) {
    throw std::invalid_argument(std::string("fault plan: ") + what +
                                " window is empty or inverted");
  }
}

/// Merges [down, up) windows per key; touching windows ([1,2) + [2,3))
/// coalesce so no batch carries an up and a down of the same element at
/// the same instant.
template <typename Key, typename Out>
void merge_windows(std::map<Key, std::vector<std::pair<TimeMs, TimeMs>>>& by_key,
                   Out&& emit) {
  for (auto& [key, windows] : by_key) {
    std::sort(windows.begin(), windows.end());
    TimeMs down = 0.0;
    TimeMs up = 0.0;
    bool open = false;
    for (const auto& [d, u] : windows) {
      if (!open) {
        down = d;
        up = u;
        open = true;
      } else if (d <= up) {
        up = std::max(up, u);
      } else {
        emit(key, down, up);
        down = d;
        up = u;
      }
    }
    if (open) emit(key, down, up);
  }
}

/// Hop distances from `origin` (undirected BFS); -1 = unreachable.
std::vector<int> hop_distances(const Graph& graph, BrokerId origin) {
  std::vector<int> dist(graph.broker_count(), -1);
  std::deque<BrokerId> frontier;
  dist[origin] = 0;
  frontier.push_back(origin);
  while (!frontier.empty()) {
    const BrokerId u = frontier.front();
    frontier.pop_front();
    for (const EdgeId e : graph.out_edges(u)) {
      const BrokerId v = graph.edge(e).to;
      if (dist[v] >= 0) continue;
      dist[v] = dist[u] + 1;
      frontier.push_back(v);
    }
  }
  return dist;
}

}  // namespace

FaultPlan materialize_faults(const FaultPlan& plan, const Graph& graph,
                             Rng& rng) {
  // key = canonical (min, max) endpoint pair / broker id.
  std::map<std::pair<BrokerId, BrokerId>,
           std::vector<std::pair<TimeMs, TimeMs>>>
      link_windows;
  std::map<BrokerId, std::vector<std::pair<TimeMs, TimeMs>>> broker_windows;

  const auto add_link = [&](BrokerId a, BrokerId b, TimeMs down, TimeMs up) {
    link_windows[{std::min(a, b), std::max(a, b)}].emplace_back(down, up);
  };

  for (const LinkOutage& o : plan.link_outages) {
    check_link(graph, o.a, o.b, "link outage");
    check_window(o.down_at, o.up_at, "link outage");
    add_link(o.a, o.b, o.down_at, o.up_at);
  }
  for (const BrokerOutage& o : plan.broker_outages) {
    check_broker(graph, o.broker, "broker outage");
    check_window(o.down_at, o.up_at, "broker outage");
    broker_windows[o.broker].emplace_back(o.down_at, o.up_at);
  }
  for (const LinkFlap& f : plan.flaps) {
    check_link(graph, f.a, f.b, "link flap");
    if (f.count <= 0 || !(f.period > 0.0) || !(f.down_for > 0.0)) {
      throw std::invalid_argument(
          "fault plan: link flap needs count > 0, period > 0, down_for > 0");
    }
    for (int k = 0; k < f.count; ++k) {
      const TimeMs down = f.first_down_at + static_cast<double>(k) * f.period;
      check_window(down, down + f.down_for, "link flap window");
      add_link(f.a, f.b, down, down + f.down_for);
    }
  }
  for (const RegionStorm& s : plan.storms) {
    check_broker(graph, s.epicenter, "region storm");
    if (s.radius < 0) {
      throw std::invalid_argument("fault plan: region storm radius < 0");
    }
    if (!(s.at >= 0.0) || !(s.recovery_delay > 0.0) ||
        !(s.recovery_jitter >= 0.0)) {
      throw std::invalid_argument(
          "fault plan: region storm needs at >= 0, recovery_delay > 0, "
          "recovery_jitter >= 0");
    }
    const std::vector<int> dist = hop_distances(graph, s.epicenter);
    // Ball links in canonical order so the jitter stream is deterministic.
    std::vector<std::pair<BrokerId, BrokerId>> ball_links;
    for (EdgeId e = 0; e < static_cast<EdgeId>(graph.edge_count()); ++e) {
      const Edge& edge = graph.edge(e);
      if (edge.from >= edge.to) continue;  // One canonical side per link.
      if (dist[edge.from] < 0 || dist[edge.from] > s.radius) continue;
      if (dist[edge.to] < 0 || dist[edge.to] > s.radius) continue;
      ball_links.emplace_back(edge.from, edge.to);
    }
    std::sort(ball_links.begin(), ball_links.end());
    for (const auto& [a, b] : ball_links) {
      TimeMs up = s.at + s.recovery_delay;
      if (s.recovery_jitter > 0.0) up += rng.uniform(0.0, s.recovery_jitter);
      add_link(a, b, s.at, up);
    }
    if (s.kill_brokers) {
      for (BrokerId broker = 0;
           broker < static_cast<BrokerId>(graph.broker_count()); ++broker) {
        if (dist[broker] < 0 || dist[broker] > s.radius - 1) continue;
        TimeMs up = s.at + s.recovery_delay;
        if (s.recovery_jitter > 0.0) up += rng.uniform(0.0, s.recovery_jitter);
        broker_windows[broker].emplace_back(s.at, up);
      }
    }
  }

  FaultPlan out;
  merge_windows(link_windows, [&](const std::pair<BrokerId, BrokerId>& key,
                                  TimeMs down, TimeMs up) {
    out.link_outages.push_back(LinkOutage{down, up, key.first, key.second});
  });
  merge_windows(broker_windows, [&](BrokerId broker, TimeMs down, TimeMs up) {
    out.broker_outages.push_back(BrokerOutage{down, up, broker});
  });
  return out;
}

std::string format_fault_plan(const FaultPlan& plan) {
  std::string out;
  char line[256];
  const auto append_time = [&](TimeMs t) {
    if (t == kNoDeadline) {
      out += " inf";
    } else {
      std::snprintf(line, sizeof(line), " %a", t);
      out += line;
    }
  };
  for (const LinkOutage& o : plan.link_outages) {
    std::snprintf(line, sizeof(line), "link %d %d", o.a, o.b);
    out += line;
    append_time(o.down_at);
    append_time(o.up_at);
    out += '\n';
  }
  for (const BrokerOutage& o : plan.broker_outages) {
    std::snprintf(line, sizeof(line), "broker %d", o.broker);
    out += line;
    append_time(o.down_at);
    append_time(o.up_at);
    out += '\n';
  }
  for (const RegionStorm& s : plan.storms) {
    std::snprintf(line, sizeof(line), "storm %a %d %d %a %a %d", s.at,
                  s.epicenter, s.radius, s.recovery_delay, s.recovery_jitter,
                  s.kill_brokers ? 1 : 0);
    out += line;
    out += '\n';
  }
  for (const LinkFlap& f : plan.flaps) {
    std::snprintf(line, sizeof(line), "flap %d %d %a %a %a %d", f.a, f.b,
                  f.first_down_at, f.period, f.down_for, f.count);
    out += line;
    out += '\n';
  }
  return out;
}

namespace {

TimeMs parse_time(const std::string& token, const std::string& line) {
  if (token == "inf") return kNoDeadline;
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("fault plan: bad time token '" + token +
                                "' in: " + line);
  }
}

long parse_long(const std::string& token, const std::string& line) {
  try {
    std::size_t used = 0;
    const long value = std::stol(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("fault plan: bad integer token '" + token +
                                "' in: " + line);
  }
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& text) {
  FaultPlan plan;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream words(line);
    std::vector<std::string> tokens;
    std::string token;
    while (words >> token) tokens.push_back(token);
    if (tokens.empty()) continue;
    const auto want = [&](std::size_t n) {
      if (tokens.size() != n + 1) {
        throw std::invalid_argument("fault plan: '" + tokens[0] + "' expects " +
                                    std::to_string(n) +
                                    " operands in: " + line);
      }
    };
    if (tokens[0] == "link") {
      want(4);
      LinkOutage o;
      o.a = static_cast<BrokerId>(parse_long(tokens[1], line));
      o.b = static_cast<BrokerId>(parse_long(tokens[2], line));
      o.down_at = parse_time(tokens[3], line);
      o.up_at = parse_time(tokens[4], line);
      plan.link_outages.push_back(o);
    } else if (tokens[0] == "broker") {
      want(3);
      BrokerOutage o;
      o.broker = static_cast<BrokerId>(parse_long(tokens[1], line));
      o.down_at = parse_time(tokens[2], line);
      o.up_at = parse_time(tokens[3], line);
      plan.broker_outages.push_back(o);
    } else if (tokens[0] == "storm") {
      want(6);
      RegionStorm s;
      s.at = parse_time(tokens[1], line);
      s.epicenter = static_cast<BrokerId>(parse_long(tokens[2], line));
      s.radius = static_cast<int>(parse_long(tokens[3], line));
      s.recovery_delay = parse_time(tokens[4], line);
      s.recovery_jitter = parse_time(tokens[5], line);
      s.kill_brokers = parse_long(tokens[6], line) != 0;
      plan.storms.push_back(s);
    } else if (tokens[0] == "flap") {
      want(6);
      LinkFlap f;
      f.a = static_cast<BrokerId>(parse_long(tokens[1], line));
      f.b = static_cast<BrokerId>(parse_long(tokens[2], line));
      f.first_down_at = parse_time(tokens[3], line);
      f.period = parse_time(tokens[4], line);
      f.down_for = parse_time(tokens[5], line);
      f.count = static_cast<int>(parse_long(tokens[6], line));
      plan.flaps.push_back(f);
    } else {
      throw std::invalid_argument("fault plan: unknown directive in: " + line);
    }
  }
  return plan;
}

}  // namespace bdps
