#include "sim/faults/timeline.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

namespace bdps {
namespace {

using Window = std::pair<TimeMs, TimeMs>;

/// Sorts and merges possibly-overlapping [down, up) windows in place.
void merge_in_place(std::vector<Window>& windows) {
  std::sort(windows.begin(), windows.end());
  std::size_t out = 0;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if (out > 0 && windows[i].first <= windows[out - 1].second) {
      windows[out - 1].second =
          std::max(windows[out - 1].second, windows[i].second);
    } else {
      windows[out++] = windows[i];
    }
  }
  windows.resize(out);
}

}  // namespace

CompiledFaults CompiledFaults::compile(const FaultPlan& plan,
                                       const Graph& graph) {
  if (!plan.storms.empty() || !plan.flaps.empty()) {
    throw std::invalid_argument(
        "CompiledFaults::compile expects a materialized plan "
        "(call materialize_faults first)");
  }
  CompiledFaults out;

  // ---- Per directed edge: link windows ∪ both endpoints' broker windows.
  std::vector<std::vector<Window>> edge_windows(graph.edge_count());
  std::vector<std::vector<Window>> broker_windows(graph.broker_count());
  for (const BrokerOutage& o : plan.broker_outages) {
    broker_windows[o.broker].emplace_back(o.down_at, o.up_at);
  }
  for (auto& windows : broker_windows) merge_in_place(windows);

  for (const LinkOutage& o : plan.link_outages) {
    for (const auto [from, to] :
         {std::pair{o.a, o.b}, std::pair{o.b, o.a}}) {
      const EdgeId e = graph.edge_id(from, to);
      if (e == kNoEdge) {
        throw std::invalid_argument(
            "CompiledFaults::compile: plan references nonexistent link");
      }
      edge_windows[e].emplace_back(o.down_at, o.up_at);
    }
  }
  for (EdgeId e = 0; e < static_cast<EdgeId>(graph.edge_count()); ++e) {
    const Edge& edge = graph.edge(e);
    for (const BrokerId endpoint : {edge.from, edge.to}) {
      for (const Window& w : broker_windows[endpoint]) {
        edge_windows[e].push_back(w);
      }
    }
    merge_in_place(edge_windows[e]);
  }

  // ---- Batches: group every transition instant.
  std::map<TimeMs, FaultBatch> batches;
  const auto batch_at = [&](TimeMs at) -> FaultBatch& {
    FaultBatch& batch = batches[at];
    batch.at = at;
    return batch;
  };
  for (BrokerId b = 0; b < static_cast<BrokerId>(graph.broker_count()); ++b) {
    for (const Window& w : broker_windows[b]) {
      batch_at(w.first).brokers_down.push_back(b);
      if (w.second != kNoDeadline) batch_at(w.second).brokers_up.push_back(b);
    }
  }
  for (EdgeId e = 0; e < static_cast<EdgeId>(graph.edge_count()); ++e) {
    for (const Window& w : edge_windows[e]) {
      batch_at(w.first).edges_down.push_back(e);
      if (w.second != kNoDeadline) batch_at(w.second).edges_up.push_back(e);
    }
  }
  out.batches_.reserve(batches.size());
  for (auto& [at, batch] : batches) {
    // Ids are appended in ascending order above; keep the invariant
    // explicit for future editors.
    std::sort(batch.brokers_down.begin(), batch.brokers_down.end());
    std::sort(batch.brokers_up.begin(), batch.brokers_up.end());
    std::sort(batch.edges_down.begin(), batch.edges_down.end());
    std::sort(batch.edges_up.begin(), batch.edges_up.end());
    out.batches_.push_back(std::move(batch));
  }

  // ---- CSR doom tables.
  out.edge_offsets_.assign(graph.edge_count() + 1, 0);
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    out.edge_offsets_[e + 1] =
        out.edge_offsets_[e] +
        static_cast<std::uint32_t>(edge_windows[e].size());
  }
  out.edge_down_times_.reserve(out.edge_offsets_.back());
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    for (const Window& w : edge_windows[e]) {
      out.edge_down_times_.push_back(w.first);
    }
  }
  out.broker_offsets_.assign(graph.broker_count() + 1, 0);
  for (std::size_t b = 0; b < graph.broker_count(); ++b) {
    out.broker_offsets_[b + 1] =
        out.broker_offsets_[b] +
        static_cast<std::uint32_t>(broker_windows[b].size());
  }
  out.broker_down_times_.reserve(out.broker_offsets_.back());
  for (std::size_t b = 0; b < graph.broker_count(); ++b) {
    for (const Window& w : broker_windows[b]) {
      out.broker_down_times_.push_back(w.first);
    }
  }
  return out;
}

bool CompiledFaults::cut_between(const std::vector<std::uint32_t>& offsets,
                                 const std::vector<TimeMs>& times,
                                 std::size_t key, TimeMs after, TimeMs upto) {
  if (key + 1 >= offsets.size()) return false;
  const auto begin = times.begin() + offsets[key];
  const auto end = times.begin() + offsets[key + 1];
  const auto it = std::upper_bound(begin, end, after);
  return it != end && *it <= upto;
}

}  // namespace bdps
