// Fault-injection plans: link/broker churn as down→up timelines.
//
// SimulatorOptions::failures kills a link once and forever; a production
// overlay instead sees *windows* of unavailability — a backhoe cuts a
// region for minutes, a flaky transceiver flaps, a broker crashes and
// restarts with empty queues.  A FaultPlan describes such a timeline either
// explicitly (LinkOutage / BrokerOutage windows) or through generators
// (RegionStorm: a seeded BFS-ball kill with recovery delays; LinkFlap: a
// periodic square wave).  `materialize_faults` expands the generators,
// validates every reference against the overlay graph and normalizes
// overlapping windows into disjoint ones; the result feeds
// sim/faults/timeline.h, which compiles it into the per-instant batches
// both simulation engines replay bitwise.
#pragma once

#include <string>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "topology/graph.h"

namespace bdps {

/// One down→up window on an undirected link (both directed edges).
struct LinkOutage {
  TimeMs down_at = 0.0;
  TimeMs up_at = kNoDeadline;  // kNoDeadline: the link never recovers.
  BrokerId a = kNoBroker;
  BrokerId b = kNoBroker;
};

/// One crash→restart window on a broker.  While down the broker's queues
/// are dropped, arrivals are lost and every incident link is unusable;
/// restart brings it back with empty queues (routing state is static
/// configuration and survives).
struct BrokerOutage {
  TimeMs down_at = 0.0;
  TimeMs up_at = kNoDeadline;
  BrokerId broker = kNoBroker;
};

/// Correlated region storm: every link whose *both* endpoints lie within
/// `radius` hops of the epicenter goes down at `at` and recovers after
/// `recovery_delay` plus a per-link uniform jitter in [0, recovery_jitter).
/// With `kill_brokers`, brokers strictly inside the ball (distance
/// <= radius - 1) additionally crash for the same window (own jitter).
struct RegionStorm {
  TimeMs at = 0.0;
  BrokerId epicenter = 0;
  int radius = 1;
  TimeMs recovery_delay = seconds(30.0);
  TimeMs recovery_jitter = 0.0;
  bool kill_brokers = false;
};

/// Periodic link flap: `count` windows of `down_for`, starting `period`
/// apart from `first_down_at`.
struct LinkFlap {
  BrokerId a = kNoBroker;
  BrokerId b = kNoBroker;
  TimeMs first_down_at = 0.0;
  TimeMs period = seconds(10.0);
  TimeMs down_for = seconds(1.0);
  int count = 1;
};

struct FaultPlan {
  std::vector<LinkOutage> link_outages;
  std::vector<BrokerOutage> broker_outages;
  std::vector<RegionStorm> storms;
  std::vector<LinkFlap> flaps;

  bool empty() const {
    return link_outages.empty() && broker_outages.empty() && storms.empty() &&
           flaps.empty();
  }
};

/// Expands every generator into explicit windows (storm jitter consumes
/// `rng` in a fixed order: ball links by canonical (min, max) endpoint
/// pair, then ball brokers ascending), validates all references against
/// `graph` (nonexistent links/brokers, inverted or negative windows throw
/// std::invalid_argument) and merges overlapping windows per link/broker.
/// The result holds only sorted, disjoint link_outages (a < b) and
/// broker_outages.
FaultPlan materialize_faults(const FaultPlan& plan, const Graph& graph,
                             Rng& rng);

/// Serializes a plan as newline-separated directives:
///   link <a> <b> <down_at> <up_at|inf>
///   broker <id> <down_at> <up_at|inf>
///   storm <at> <epicenter> <radius> <recovery_delay> <jitter> <kill:0|1>
///   flap <a> <b> <first_down_at> <period> <down_for> <count>
/// Doubles are written in hexfloat so a round trip is bitwise.
std::string format_fault_plan(const FaultPlan& plan);

/// Parses the format_fault_plan text form ('#' starts a comment, blank
/// lines ignored).  Malformed directives throw std::invalid_argument.
FaultPlan parse_fault_plan(const std::string& text);

}  // namespace bdps
