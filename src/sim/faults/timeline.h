// Compiled fault timeline: the engine-facing form of a FaultPlan.
//
// Both simulation engines consume faults as *batches* — every transition
// sharing one instant, applied atomically in a canonical order (brokers
// down, edges down, brokers up, edges up; ids ascending) — so a storm
// replays bitwise at any shard count.  Compilation folds broker outages
// into their incident directed edges (a crashed broker cuts every adjacent
// link both ways), merges the resulting per-edge windows, and builds CSR
// tables of down-transition instants that answer the two doom queries the
// engines need:
//
//  * a send started at s completing at c is lost iff the edge has a
//    down-transition in (s, c] — the transfer was cut mid-flight even if
//    the link already recovered by c (a flap);
//  * a processing step finishing at f is lost iff its broker has a
//    down-transition in (f - PD, f] — the crash wiped the in-progress
//    message even if the broker already restarted.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "sim/faults/plan.h"
#include "topology/graph.h"

namespace bdps {

/// Every fault transition at one instant.
struct FaultBatch {
  TimeMs at = 0.0;
  std::vector<BrokerId> brokers_down;
  std::vector<BrokerId> brokers_up;
  std::vector<EdgeId> edges_down;  // Directed edge ids, ascending.
  std::vector<EdgeId> edges_up;
};

class CompiledFaults {
 public:
  CompiledFaults() = default;

  /// Compiles a *materialized* plan (see materialize_faults; generators
  /// still present throw std::invalid_argument) against the overlay graph.
  static CompiledFaults compile(const FaultPlan& plan, const Graph& graph);

  bool empty() const { return batches_.empty(); }
  const std::vector<FaultBatch>& batches() const { return batches_; }

  /// True when directed edge `e` has a down-transition in (after, upto].
  bool edge_cut_between(EdgeId e, TimeMs after, TimeMs upto) const {
    return cut_between(edge_offsets_, edge_down_times_,
                       static_cast<std::size_t>(e), after, upto);
  }

  /// True when broker `b` has a down-transition in (after, upto].
  bool broker_cut_between(BrokerId b, TimeMs after, TimeMs upto) const {
    return cut_between(broker_offsets_, broker_down_times_,
                       static_cast<std::size_t>(b), after, upto);
  }

 private:
  static bool cut_between(const std::vector<std::uint32_t>& offsets,
                          const std::vector<TimeMs>& times, std::size_t key,
                          TimeMs after, TimeMs upto);

  std::vector<FaultBatch> batches_;  // Ascending in `at`.
  // CSR of down-transition instants, sorted ascending per key.
  std::vector<std::uint32_t> edge_offsets_;
  std::vector<TimeMs> edge_down_times_;
  std::vector<std::uint32_t> broker_offsets_;
  std::vector<TimeMs> broker_down_times_;
};

}  // namespace bdps
