#include "sim/event_queue.h"

#include <utility>

namespace bdps {

void EventQueue::push(Event event) {
  heap_.push_back(Item{std::move(event), next_sequence_++});
  sift_up(heap_.size() - 1);
}

Event EventQueue::pop() {
  Event result = std::move(heap_.front().event);
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return result;
}

void EventQueue::sift_up(std::size_t index) {
  while (index > 0) {
    const std::size_t parent = (index - 1) / 2;
    if (!later(heap_[parent], heap_[index])) break;
    std::swap(heap_[parent], heap_[index]);
    index = parent;
  }
}

void EventQueue::sift_down(std::size_t index) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t left = 2 * index + 1;
    const std::size_t right = left + 1;
    std::size_t smallest = index;
    if (left < n && later(heap_[smallest], heap_[left])) smallest = left;
    if (right < n && later(heap_[smallest], heap_[right])) smallest = right;
    if (smallest == index) return;
    std::swap(heap_[index], heap_[smallest]);
    index = smallest;
  }
}

}  // namespace bdps
