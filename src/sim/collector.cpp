#include "sim/collector.h"

namespace bdps {

void Collector::on_publish(std::size_t interested, double potential_earning) {
  ++published_;
  total_interested_ += interested;
  potential_earning_ += potential_earning;
}

void Collector::on_delivery(TimeMs delay, TimeMs effective_deadline,
                            double price) {
  ++deliveries_;
  TierStats& tier = tiers_[price];
  ++tier.deliveries;
  if (delay <= effective_deadline) {
    ++valid_deliveries_;
    earning_ += price;
    valid_delay_.add(delay);
    ++tier.valid;
    tier.earning += price;
  }
}

double Collector::delivery_rate() const {
  if (total_interested_ == 0) return 0.0;
  return static_cast<double>(valid_deliveries_) /
         static_cast<double>(total_interested_);
}

}  // namespace bdps
