// Deterministic discrete-event queue.
//
// A binary min-heap ordered by (time, sequence number): two events at the
// same instant pop in insertion order, which makes whole simulations
// reproducible from the seed alone.  The payload is a small tagged struct
// rather than std::function to keep the hot loop allocation-free.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "message/message.h"

namespace bdps {

enum class EventType : std::uint8_t {
  kPublish,       // A publisher injects a message into its edge broker.
  kArrival,       // A message reaches `broker` (reception; counts traffic).
  kProcessed,     // The processing stage (PD) completed at `broker`.
  kSendComplete,  // The in-flight send `broker` -> `neighbor` finished.
  kLinkFailure,   // The `broker` <-> `neighbor` link dies (both directions).
  kFault,         // A compiled fault batch fires (`broker` = batch index).
};

struct Event {
  TimeMs time = 0.0;
  EventType type = EventType::kPublish;
  BrokerId broker = kNoBroker;
  BrokerId neighbor = kNoBroker;
  std::shared_ptr<const Message> message;
};

class EventQueue {
 public:
  void push(Event event);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Smallest (time, sequence) event; undefined when empty.
  const Event& top() const { return heap_.front().event; }

  Event pop();

 private:
  struct Item {
    Event event;
    std::uint64_t sequence;
  };
  static bool later(const Item& a, const Item& b) {
    if (a.event.time != b.event.time) return a.event.time > b.event.time;
    return a.sequence > b.sequence;
  }

  void sift_up(std::size_t index);
  void sift_down(std::size_t index);

  std::vector<Item> heap_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace bdps
