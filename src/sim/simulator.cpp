#include "sim/simulator.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace bdps {

Simulator::Simulator(const Topology* topology, const Graph* believed,
                     const RoutingFabric* fabric, const Strategy* strategy,
                     SimulatorOptions options, Rng link_rng)
    : topology_(topology),
      believed_(believed),
      fabric_(fabric),
      options_(options) {
  const std::size_t broker_count = topology->graph.broker_count();
  // One independent stream per true directed edge (see the header); the
  // derivation order is the edge-id order, so the mapping is a pure
  // function of the seed and the topology.
  link_rngs_.reserve(topology->graph.edge_count());
  for (std::size_t e = 0; e < topology->graph.edge_count(); ++e) {
    link_rngs_.push_back(link_rng.split());
  }
  brokers_.reserve(broker_count);
  for (std::size_t b = 0; b < broker_count; ++b) {
    brokers_.emplace_back(static_cast<BrokerId>(b), fabric, believed,
                          strategy, options_.processing_delay,
                          /*queues_for_all_links=*/options_.repair_fabric !=
                              nullptr);
  }
  // Resolve each queue slot to its true directed link once; every per-link
  // access afterwards is a flat indexed load.
  const std::size_t edge_count = topology->graph.edge_count();
  true_edge_by_slot_.resize(broker_count);
  for (std::size_t b = 0; b < broker_count; ++b) {
    const Broker& broker = brokers_[b];
    auto& edges = true_edge_by_slot_[b];
    edges.reserve(broker.queue_count());
    for (const OutputQueue& queue : broker.queues()) {
      const EdgeId true_edge = topology->graph.edge_id(
          static_cast<BrokerId>(b), queue.neighbor());
      if (true_edge == kNoEdge) {
        throw std::logic_error(
            "believed link has no counterpart in the true topology");
      }
      edges.push_back(true_edge);
    }
  }
  dead_.assign(edge_count);
  if (options_.online_estimation) {
    send_started_.assign(edge_count, 0.0);
    estimators_.assign(edge_count,
                       RateEstimator(options_.estimator_min_samples));
    estimator_live_.assign(edge_count);
  }
  if (options_.dedup_arrivals) {
    seen_.resize(broker_count);
  }
  if (options_.serialize_processing) {
    input_queues_.resize(broker_count);
    processing_busy_.assign(broker_count, false);
  }
  // Fault batches are pushed before anything else so they take the lowest
  // sequence numbers: at an equal instant a batch fires ahead of arrivals
  // and completions pushed at construction.  An absent/empty plan pushes
  // nothing, leaving the no-fault event numbering (and the golden matrix)
  // untouched.
  if (options_.faults != nullptr && !options_.faults->empty()) {
    has_faults_ = true;
    down_.assign(edge_count);
    broker_down_.assign(broker_count, 0);
    send_begin_.assign(edge_count, 0.0);
    const auto& batches = options_.faults->batches();
    for (std::size_t i = 0; i < batches.size(); ++i) {
      Event event;
      event.time = batches[i].at;
      event.type = EventType::kFault;
      event.broker = static_cast<BrokerId>(i);  // Batch index.
      events_.push(std::move(event));
    }
  }
  for (const LinkFailure& failure : options_.failures) {
    const auto n = static_cast<BrokerId>(broker_count);
    if (failure.a < 0 || failure.a >= n || failure.b < 0 || failure.b >= n) {
      throw std::invalid_argument(
          "link failure references a broker outside the topology");
    }
    Event event;
    event.time = failure.at;
    event.type = EventType::kLinkFailure;
    event.broker = failure.a;
    event.neighbor = failure.b;
    events_.push(std::move(event));
  }
}

void Simulator::schedule_publish(std::shared_ptr<const Message> message) {
  Event event;
  event.time = message->publish_time();
  event.type = EventType::kPublish;
  event.broker =
      topology_->publisher_edges.at(static_cast<std::size_t>(message->publisher()));
  event.message = std::move(message);
  events_.push(std::move(event));
}

void Simulator::run() {
  while (!events_.empty()) {
    if (events_.top().time > options_.horizon) break;
    // The pop moves the event (and its message ref) out of the heap;
    // handlers move the payload onward, so routing a message through an
    // event costs no shared_ptr refcount churn.
    Event event = events_.pop();
    now_ = event.time;
    switch (event.type) {
      case EventType::kPublish:
        handle_publish(event);
        break;
      case EventType::kArrival:
        handle_arrival(event);
        break;
      case EventType::kProcessed:
        handle_processed(event);
        break;
      case EventType::kSendComplete:
        handle_send_complete(event);
        break;
      case EventType::kLinkFailure:
        handle_link_failure(event);
        break;
      case EventType::kFault:
        handle_fault(event);
        break;
    }
  }
}

void Simulator::trace(TraceEventKind kind, const Message& message,
                      BrokerId broker, BrokerId neighbor,
                      SubscriberId subscriber, bool valid) {
  if (trace_ == nullptr) return;
  trace_->record(
      TraceEvent{now_, kind, message.id(), broker, neighbor, subscriber,
                 valid});
}

void Simulator::trace_id(TraceEventKind kind, MessageId message,
                         BrokerId broker, BrokerId neighbor) {
  if (trace_ == nullptr) return;
  trace_->record(TraceEvent{now_, kind, message, broker, neighbor, -1, false});
}

void Simulator::drain_dead_queue(BrokerId broker_id, BrokerId neighbor) {
  const Broker::QueueSlot slot = brokers_[broker_id].slot_of(neighbor);
  if (slot == Broker::kNoSlot) return;
  drain_dead_slot(broker_id, slot);
}

void Simulator::drain_dead_slot(BrokerId broker_id, Broker::QueueSlot slot) {
  OutputQueue& out = brokers_[broker_id].queue_at(slot);
  if (trace_ != nullptr) {
    for (const QueuedMessage& queued : out.messages()) {
      trace_id(TraceEventKind::kLoss, queued.message->id(), broker_id,
               out.neighbor());
    }
  }
  const std::size_t dropped = out.clear();
  if (dropped > 0) collector_.on_loss(dropped);
}

void Simulator::handle_link_failure(const Event& event) {
  // Broker ids were range-checked at construction; the pair may still name
  // a non-adjacent pair, which kills nothing.
  const BrokerId a = event.broker;
  const BrokerId b = event.neighbor;
  const EdgeId forward = topology_->graph.edge_id(a, b);
  if (forward != kNoEdge) dead_.set(forward);
  const EdgeId backward = topology_->graph.edge_id(b, a);
  if (backward != kNoEdge) dead_.set(backward);
  // Queued copies in both directions are dropped immediately; an in-flight
  // send is handled (and lost) when its completion event fires.
  drain_dead_queue(a, b);
  drain_dead_queue(b, a);
}

void Simulator::handle_fault(const Event& event) {
  // NOTE: the sharded engine replays this batch coordinator-side
  // (ParallelSimulator::apply_fault_batch) with the identical canonical
  // order; any change here must be mirrored there to keep runs bitwise.
  const FaultBatch& batch =
      options_.faults->batches()[static_cast<std::size_t>(event.broker)];
  // 1. Broker crashes: the input queue, the in-progress message (doomed at
  //    its kProcessed via the (f - PD, f] cut test) and every output queue
  //    die with the process.  Incident edges go down via edges_down below
  //    (compilation folded broker windows into them).
  for (const BrokerId b : batch.brokers_down) {
    broker_down_[b] = 1;
    if (options_.serialize_processing) {
      auto& pending = input_queues_[b];
      if (trace_ != nullptr) {
        for (const auto& message : pending) {
          trace_id(TraceEventKind::kLoss, message->id(), b, kNoBroker);
        }
      }
      if (!pending.empty()) collector_.on_loss(pending.size());
      pending.clear();
      processing_busy_[b] = false;
    }
    Broker& broker = brokers_[b];
    const auto queue_count = static_cast<Broker::QueueSlot>(broker.queue_count());
    for (Broker::QueueSlot slot = 0; slot < queue_count; ++slot) {
      drain_dead_slot(b, slot);
    }
  }
  // 2. Edge downs: hold semantics — queued copies wait for recovery (the
  //    purge policy applies deadline pressure at the next pick); an
  //    in-flight send is doomed by the (s, c] cut test at its completion.
  for (const EdgeId e : batch.edges_down) down_.set(e);
  // 3. Recoveries: brokers restart (empty queues), edges clear.
  for (const BrokerId b : batch.brokers_up) broker_down_[b] = 0;
  for (const EdgeId e : batch.edges_up) down_.reset(e);
  // 3b. Incremental routing repair: re-point subscription rows around the
  //     new link state.  Edge ids are translated into the fabric's believed
  //     graph (identity unless the ids diverge); copies already queued keep
  //     following their original rows.
  if (options_.repair_fabric != nullptr &&
      (!batch.edges_down.empty() || !batch.edges_up.empty())) {
    const Graph& believed = options_.repair_fabric->graph();
    const auto translate = [&](const std::vector<EdgeId>& in) {
      std::vector<EdgeId> out;
      out.reserve(in.size());
      for (const EdgeId e : in) {
        const Edge& edge = topology_->graph.edge(e);
        const EdgeId fe = believed.edge_id(edge.from, edge.to);
        if (fe != kNoEdge) out.push_back(fe);
      }
      return out;
    };
    options_.repair_fabric->apply_link_state(translate(batch.edges_down),
                                             translate(batch.edges_up));
  }
  // 4. Each recovered edge whose queue held copies through the outage (and
  //    whose link is idle) starts sending again, in edge-id order.
  for (const EdgeId e : batch.edges_up) {
    const Edge& edge = topology_->graph.edge(e);
    Broker& broker = brokers_[edge.from];
    const Broker::QueueSlot slot = broker.slot_of(edge.to);
    if (slot == Broker::kNoSlot) continue;
    const OutputQueue& out = broker.queue_at(slot);
    if (out.empty() || out.link_busy()) continue;
    const Broker::QueueSlot kick[1] = {slot};
    start_sends(edge.from, kick);
  }
}

void Simulator::handle_publish(Event& event) {
  // ts_i of eq. (1): subscribers interested system-wide (and currently
  // active), and the matching earning ceiling for eq. (2).
  std::size_t interested = 0;
  double potential = 0.0;
  for (const std::size_t index : fabric_->match_all(*event.message)) {
    const Subscription& sub = fabric_->subscription(index);
    if (!sub.active_at(event.message->publish_time())) continue;
    ++interested;
    potential += sub.price;
  }
  collector_.on_publish(interested, potential);
  trace(TraceEventKind::kPublish, *event.message, event.broker);

  // Injection into the edge broker is itself a reception: arrival now.
  Event arrival = std::move(event);
  arrival.type = EventType::kArrival;
  events_.push(std::move(arrival));
}

void Simulator::handle_arrival(Event& event) {
  collector_.on_reception();
  trace(TraceEventKind::kArrival, *event.message, event.broker);
  if (has_faults_ && broker_down_[event.broker] != 0) {
    // The copy reached a crashed broker: nothing is listening.
    collector_.on_loss(1);
    trace(TraceEventKind::kLoss, *event.message, event.broker);
    return;
  }
  if (options_.dedup_arrivals &&
      !seen_[event.broker].insert(event.message->id())) {
    return;  // Duplicate copy over a redundant path; count it, drop it.
  }
  if (options_.serialize_processing) {
    if (processing_busy_[event.broker]) {
      // Fig. 2's input queue: wait for the processing unit.
      input_queues_[event.broker].push_back(std::move(event.message));
      collector_.on_input_queue_depth(input_queues_[event.broker].size());
      return;
    }
    processing_busy_[event.broker] = true;
  }
  Event processed = std::move(event);
  processed.type = EventType::kProcessed;
  processed.time = now_ + options_.processing_delay;
  events_.push(std::move(processed));
}

void Simulator::handle_processed(Event& event) {
  if (has_faults_ &&
      options_.faults->broker_cut_between(
          event.broker, now_ - options_.processing_delay, now_)) {
    // The broker crashed while this message was in its processing stage —
    // the in-progress work is gone even if the broker already restarted.
    // The crash also cleared the busy flag and the input queue, so the
    // serialize chain (if any) restarts with the next arrival.
    collector_.on_loss(1);
    trace(TraceEventKind::kLoss, *event.message, event.broker);
    return;
  }
  Broker& broker = brokers_[event.broker];
  trace(TraceEventKind::kProcessed, *event.message, event.broker);
  const Broker::FanOut fanout = broker.process(event.message, now_);

  for (const SubscriptionEntry* entry : fanout.local) {
    const TimeMs delay = event.message->elapsed(now_);
    const TimeMs deadline = entry->effective_deadline(*event.message);
    collector_.on_delivery(delay, deadline, entry->subscription->price);
    trace(TraceEventKind::kDeliver, *event.message, event.broker, kNoBroker,
          entry->subscription->subscriber, delay <= deadline);
  }
  if (trace_ != nullptr) {
    for (const Broker::QueueSlot slot : fanout.enqueued) {
      trace(TraceEventKind::kEnqueue, *event.message, event.broker,
            broker.queue_at(slot).neighbor());
    }
  }
  start_sends(event.broker, fanout.sendable);

  if (options_.serialize_processing) {
    auto& pending = input_queues_[event.broker];
    if (pending.empty()) {
      processing_busy_[event.broker] = false;
    } else {
      Event next;
      next.time = now_ + options_.processing_delay;
      next.type = EventType::kProcessed;
      next.broker = event.broker;
      next.message = std::move(pending.front());
      pending.pop_front();
      events_.push(std::move(next));
    }
  }
}

void Simulator::start_sends(BrokerId broker_id,
                            std::span<const Broker::QueueSlot> slots) {
  const std::vector<EdgeId>& true_edges = true_edge_by_slot_[broker_id];
  live_slots_.clear();
  if (dead_.none() && (!has_faults_ || down_.none())) {
    live_slots_.assign(slots.begin(), slots.end());
  } else {
    for (const Broker::QueueSlot slot : slots) {
      const EdgeId true_edge = true_edges[slot];
      if (!dead_.none() && dead_.test(true_edge)) {
        drain_dead_slot(broker_id, slot);
      } else if (has_faults_ && down_.test(true_edge)) {
        // Fault-timeline outage: hold the copies; the recovery batch (or a
        // post-flap completion) kicks this queue again.
      } else {
        live_slots_.push_back(slot);
      }
    }
  }
  if (live_slots_.empty()) return;
  Broker& broker = brokers_[broker_id];

  // Phase 1 — per-queue purge + pick.  Queue states are independent, so
  // Broker::take_next may fan this across the dispatch pool; the results
  // come back in slot order either way.
  broker.take_next(live_slots_, now_, options_.purge, dispatch_,
                   options_.dispatch_pool, trace_ != nullptr);

  // Phase 2 — serial accounting, RNG sampling and event pushes in slot
  // order, keeping runs reproducible from the seed alone.
  for (Broker::Dispatch& dispatch : dispatch_) {
    collector_.on_purge(dispatch.purge);
    for (const MessageId id : dispatch.purged_ids) {
      trace_id(TraceEventKind::kPurge, id, broker_id, dispatch.neighbor);
    }
    if (!dispatch.chosen.has_value()) continue;  // Purge emptied the queue.
    trace(TraceEventKind::kSendStart, *dispatch.chosen->message, broker_id,
          dispatch.neighbor);

    const EdgeId true_edge = true_edges[dispatch.slot];
    const TimeMs duration =
        topology_->graph.edge(true_edge).link.sample_send_time(
            link_rngs_[true_edge], dispatch.chosen->message->size_kb());

    broker.queue_at(dispatch.slot).set_link_busy(true);
    if (options_.online_estimation) {
      send_started_[true_edge] = now_;
    }
    if (has_faults_) {
      send_begin_[true_edge] = now_;
    }
    Event complete;
    complete.time = now_ + duration;
    complete.type = EventType::kSendComplete;
    complete.broker = broker_id;
    complete.neighbor = dispatch.neighbor;
    complete.message = std::move(dispatch.chosen->message);
    events_.push(std::move(complete));
  }
}

void Simulator::handle_send_complete(Event& event) {
  Broker& broker = brokers_[event.broker];
  const Broker::QueueSlot slot = broker.slot_of(event.neighbor);
  OutputQueue& out = broker.queue_at(slot);
  out.set_link_busy(false);

  const EdgeId true_edge = true_edge_by_slot_[event.broker][slot];
  if (!dead_.none() && dead_.test(true_edge)) {
    // The transfer was cut mid-flight: the copy is lost, and anything that
    // queued up since the failure is unreachable too.
    collector_.on_loss(1);
    trace(TraceEventKind::kLoss, *event.message, event.broker,
          event.neighbor);
    drain_dead_slot(event.broker, slot);
    return;
  }
  if (has_faults_ && options_.faults->edge_cut_between(
                         true_edge, send_begin_[true_edge], now_)) {
    // The link went down mid-transfer (possibly flapping back up before
    // the completion): the copy is lost, but the queue holds the rest.
    collector_.on_loss(1);
    trace(TraceEventKind::kLoss, *event.message, event.broker,
          event.neighbor);
    if (!down_.test(true_edge) && !out.empty()) {
      const Broker::QueueSlot resend[1] = {slot};
      start_sends(event.broker, resend);
    }
    return;
  }
  trace(TraceEventKind::kSendEnd, *event.message, event.broker,
        event.neighbor);

  if (options_.online_estimation) {
    RateEstimator& estimator = estimators_[true_edge];
    estimator_live_.set(true_edge);
    estimator.observe(event.message->size_kb(),
                      now_ - send_started_[true_edge]);
    // The prior is the queue's construction-time belief, read straight off
    // the believed graph (the queue's edge id names it).
    out.set_believed_link(
        estimator.estimate(believed_->edge(out.edge()).link.params()));
  }

  Event arrival;
  arrival.time = now_;
  arrival.type = EventType::kArrival;
  arrival.broker = event.neighbor;
  arrival.message = std::move(event.message);
  events_.push(std::move(arrival));

  if (!out.empty()) {
    const Broker::QueueSlot resend[1] = {slot};
    start_sends(event.broker, resend);
  }
}

const RateEstimator* Simulator::estimator(EdgeId edge) const {
  if (estimator_live_.none()) return nullptr;
  if (edge < 0 ||
      static_cast<std::size_t>(edge) >= topology_->graph.edge_count()) {
    return nullptr;
  }
  if (!estimator_live_.test(edge)) return nullptr;
  return &estimators_[edge];
}

}  // namespace bdps
