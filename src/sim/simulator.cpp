#include "sim/simulator.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace bdps {

Simulator::Simulator(const Topology* topology, const Graph* believed,
                     const RoutingFabric* fabric, const Strategy* strategy,
                     SimulatorOptions options, Rng link_rng)
    : topology_(topology),
      fabric_(fabric),
      options_(options),
      link_rng_(link_rng) {
  brokers_.reserve(topology->graph.broker_count());
  for (std::size_t b = 0; b < topology->graph.broker_count(); ++b) {
    brokers_.emplace_back(static_cast<BrokerId>(b), fabric, believed,
                          strategy, options_.processing_delay);
  }
  if (options_.dedup_arrivals) {
    seen_.resize(topology->graph.broker_count());
  }
  if (options_.serialize_processing) {
    input_queues_.resize(topology->graph.broker_count());
    processing_busy_.assign(topology->graph.broker_count(), false);
  }
  for (const LinkFailure& failure : options_.failures) {
    Event event;
    event.time = failure.at;
    event.type = EventType::kLinkFailure;
    event.broker = failure.a;
    event.neighbor = failure.b;
    events_.push(std::move(event));
  }
}

void Simulator::schedule_publish(std::shared_ptr<const Message> message) {
  Event event;
  event.time = message->publish_time();
  event.type = EventType::kPublish;
  event.broker =
      topology_->publisher_edges.at(static_cast<std::size_t>(message->publisher()));
  event.message = std::move(message);
  events_.push(std::move(event));
}

void Simulator::run() {
  while (!events_.empty()) {
    if (events_.top().time > options_.horizon) break;
    // The pop moves the event (and its message ref) out of the heap;
    // handlers move the payload onward, so routing a message through an
    // event costs no shared_ptr refcount churn.
    Event event = events_.pop();
    now_ = event.time;
    switch (event.type) {
      case EventType::kPublish:
        handle_publish(event);
        break;
      case EventType::kArrival:
        handle_arrival(event);
        break;
      case EventType::kProcessed:
        handle_processed(event);
        break;
      case EventType::kSendComplete:
        handle_send_complete(event);
        break;
      case EventType::kLinkFailure:
        handle_link_failure(event);
        break;
    }
  }
}

void Simulator::trace(TraceEventKind kind, const Message& message,
                      BrokerId broker, BrokerId neighbor,
                      SubscriberId subscriber, bool valid) {
  if (trace_ == nullptr) return;
  trace_->record(
      TraceEvent{now_, kind, message.id(), broker, neighbor, subscriber,
                 valid});
}

void Simulator::trace_id(TraceEventKind kind, MessageId message,
                         BrokerId broker, BrokerId neighbor) {
  if (trace_ == nullptr) return;
  trace_->record(TraceEvent{now_, kind, message, broker, neighbor, -1, false});
}

bool Simulator::link_dead(BrokerId a, BrokerId b) const {
  if (dead_links_.empty()) return false;
  return dead_links_.count({std::min(a, b), std::max(a, b)}) != 0;
}

void Simulator::drain_dead_queue(BrokerId broker_id, BrokerId neighbor) {
  Broker& broker = brokers_[broker_id];
  if (!broker.has_queue(neighbor)) return;
  OutputQueue& out = broker.queue(neighbor);
  if (trace_ != nullptr) {
    for (const QueuedMessage& queued : out.messages()) {
      trace_id(TraceEventKind::kLoss, queued.message->id(), broker_id,
               neighbor);
    }
  }
  const std::size_t dropped = out.clear();
  if (dropped > 0) collector_.on_loss(dropped);
}

void Simulator::handle_link_failure(const Event& event) {
  const BrokerId a = event.broker;
  const BrokerId b = event.neighbor;
  dead_links_.insert({std::min(a, b), std::max(a, b)});
  // Queued copies in both directions are dropped immediately; an in-flight
  // send is handled (and lost) when its completion event fires.
  drain_dead_queue(a, b);
  drain_dead_queue(b, a);
}

void Simulator::handle_publish(Event& event) {
  // ts_i of eq. (1): subscribers interested system-wide (and currently
  // active), and the matching earning ceiling for eq. (2).
  std::size_t interested = 0;
  double potential = 0.0;
  for (const std::size_t index : fabric_->match_all(*event.message)) {
    const Subscription& sub = fabric_->subscription(index);
    if (!sub.active_at(event.message->publish_time())) continue;
    ++interested;
    potential += sub.price;
  }
  collector_.on_publish(interested, potential);
  trace(TraceEventKind::kPublish, *event.message, event.broker);

  // Injection into the edge broker is itself a reception: arrival now.
  Event arrival = std::move(event);
  arrival.type = EventType::kArrival;
  events_.push(std::move(arrival));
}

void Simulator::handle_arrival(Event& event) {
  collector_.on_reception();
  trace(TraceEventKind::kArrival, *event.message, event.broker);
  if (options_.dedup_arrivals &&
      !seen_[event.broker].insert(event.message->id()).second) {
    return;  // Duplicate copy over a redundant path; count it, drop it.
  }
  if (options_.serialize_processing) {
    if (processing_busy_[event.broker]) {
      // Fig. 2's input queue: wait for the processing unit.
      input_queues_[event.broker].push_back(std::move(event.message));
      collector_.on_input_queue_depth(input_queues_[event.broker].size());
      return;
    }
    processing_busy_[event.broker] = true;
  }
  Event processed = std::move(event);
  processed.type = EventType::kProcessed;
  processed.time = now_ + options_.processing_delay;
  events_.push(std::move(processed));
}

void Simulator::handle_processed(Event& event) {
  Broker& broker = brokers_[event.broker];
  trace(TraceEventKind::kProcessed, *event.message, event.broker);
  const Broker::FanOut fanout = broker.process(event.message, now_);

  for (const SubscriptionEntry* entry : fanout.local) {
    const TimeMs delay = event.message->elapsed(now_);
    const TimeMs deadline = entry->effective_deadline(*event.message);
    collector_.on_delivery(delay, deadline, entry->subscription->price);
    trace(TraceEventKind::kDeliver, *event.message, event.broker, kNoBroker,
          entry->subscription->subscriber, delay <= deadline);
  }
  for (const BrokerId neighbor : fanout.enqueued) {
    trace(TraceEventKind::kEnqueue, *event.message, event.broker, neighbor);
  }
  start_sends(event.broker, fanout.sendable);

  if (options_.serialize_processing) {
    auto& pending = input_queues_[event.broker];
    if (pending.empty()) {
      processing_busy_[event.broker] = false;
    } else {
      Event next;
      next.time = now_ + options_.processing_delay;
      next.type = EventType::kProcessed;
      next.broker = event.broker;
      next.message = std::move(pending.front());
      pending.pop_front();
      events_.push(std::move(next));
    }
  }
}

void Simulator::start_sends(BrokerId broker_id,
                            std::span<const BrokerId> neighbors) {
  live_neighbors_.clear();
  for (const BrokerId neighbor : neighbors) {
    if (link_dead(broker_id, neighbor)) {
      drain_dead_queue(broker_id, neighbor);
    } else {
      live_neighbors_.push_back(neighbor);
    }
  }
  if (live_neighbors_.empty()) return;
  Broker& broker = brokers_[broker_id];

  // Phase 1 — per-queue purge + pick.  Queue states are independent, so
  // Broker::take_next may fan this across the dispatch pool; the results
  // come back in neighbour order either way.
  broker.take_next(live_neighbors_, now_, options_.purge, dispatch_,
                   options_.dispatch_pool, trace_ != nullptr);

  // Phase 2 — serial accounting, RNG sampling and event pushes in
  // neighbour order, keeping runs reproducible from the seed alone.
  for (Broker::Dispatch& dispatch : dispatch_) {
    const BrokerId neighbor = dispatch.neighbor;
    collector_.on_purge(dispatch.purge);
    for (const MessageId id : dispatch.purged_ids) {
      trace_id(TraceEventKind::kPurge, id, broker_id, neighbor);
    }
    if (!dispatch.chosen.has_value()) continue;  // Purge emptied the queue.
    trace(TraceEventKind::kSendStart, *dispatch.chosen->message, broker_id,
          neighbor);

    const EdgeId true_edge = topology_->graph.find_edge(broker_id, neighbor);
    if (true_edge == kNoEdge) {
      throw std::logic_error("send scheduled on a non-existent link");
    }
    const TimeMs duration =
        topology_->graph.edge(true_edge).link.sample_send_time(
            link_rng_, dispatch.chosen->message->size_kb());

    broker.queue(neighbor).set_link_busy(true);
    if (options_.online_estimation) {
      send_started_[{broker_id, neighbor}] = now_;
      initial_beliefs_.try_emplace({broker_id, neighbor},
                                   broker.queue(neighbor).believed_link());
    }
    Event complete;
    complete.time = now_ + duration;
    complete.type = EventType::kSendComplete;
    complete.broker = broker_id;
    complete.neighbor = neighbor;
    complete.message = std::move(dispatch.chosen->message);
    events_.push(std::move(complete));
  }
}

void Simulator::handle_send_complete(Event& event) {
  Broker& broker = brokers_[event.broker];
  OutputQueue& out = broker.queue(event.neighbor);
  out.set_link_busy(false);

  if (link_dead(event.broker, event.neighbor)) {
    // The transfer was cut mid-flight: the copy is lost, and anything that
    // queued up since the failure is unreachable too.
    collector_.on_loss(1);
    trace(TraceEventKind::kLoss, *event.message, event.broker,
          event.neighbor);
    drain_dead_queue(event.broker, event.neighbor);
    return;
  }
  trace(TraceEventKind::kSendEnd, *event.message, event.broker,
        event.neighbor);

  if (options_.online_estimation) {
    const std::pair<BrokerId, BrokerId> key{event.broker, event.neighbor};
    auto [it, inserted] = estimators_.try_emplace(
        key, RateEstimator(options_.estimator_min_samples));
    (void)inserted;
    it->second.observe(event.message->size_kb(),
                       now_ - send_started_.at(key));
    out.set_believed_link(it->second.estimate(initial_beliefs_.at(key)));
  }

  Event arrival;
  arrival.time = now_;
  arrival.type = EventType::kArrival;
  arrival.broker = event.neighbor;
  arrival.message = std::move(event.message);
  events_.push(std::move(arrival));

  if (!out.empty()) {
    const BrokerId neighbor[1] = {event.neighbor};
    start_sends(event.broker, neighbor);
  }
}

const RateEstimator* Simulator::estimator(BrokerId broker,
                                          BrokerId neighbor) const {
  const auto it = estimators_.find({broker, neighbor});
  return it == estimators_.end() ? nullptr : &it->second;
}

}  // namespace bdps
