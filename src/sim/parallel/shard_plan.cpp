#include "sim/parallel/shard_plan.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace bdps {

namespace {

std::vector<std::size_t> degree_weights(const Graph& graph) {
  // Superlinear in degree: event load concentrates on hubs faster than
  // degree (high-degree brokers sit on disproportionately many routing
  // paths), so balancing plain degree leaves the hub shard measurably
  // hotter than the rest on scale-free overlays, while a full quadratic
  // overshoots and starves it.  Degree^1.5 is the balance point observed
  // on the dense scale-free workload's per-shard lane CPU; on low-variance
  // shapes (rings/grids) it degenerates to a constant per broker either
  // way.
  std::vector<std::size_t> weights(graph.broker_count());
  for (std::size_t b = 0; b < graph.broker_count(); ++b) {
    const auto degree = static_cast<double>(
        graph.out_edges(static_cast<BrokerId>(b)).size());
    weights[b] = 1 + static_cast<std::size_t>(degree * std::sqrt(degree));
  }
  return weights;
}

std::size_t clamp_shards(const Graph& graph, std::size_t shards) {
  if (shards == 0) {
    throw std::invalid_argument("ShardPlan: shard count must be >= 1");
  }
  return std::min(shards, std::max<std::size_t>(1, graph.broker_count()));
}

}  // namespace

ShardPlan::ShardPlan(const Graph& graph, std::vector<std::uint32_t> shard_of,
                     std::size_t shards)
    : shard_of_(std::move(shard_of)), members_(shards) {
  for (std::size_t b = 0; b < shard_of_.size(); ++b) {
    members_[shard_of_[b]].push_back(static_cast<BrokerId>(b));
  }
  for (std::size_t e = 0; e < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(static_cast<EdgeId>(e));
    if (shard_of_[static_cast<std::size_t>(edge.from)] !=
        shard_of_[static_cast<std::size_t>(edge.to)]) {
      cut_edges_.push_back(static_cast<EdgeId>(e));
    }
  }
}

ShardPlan ShardPlan::contiguous(const Graph& graph, std::size_t shards) {
  const std::size_t n = graph.broker_count();
  shards = clamp_shards(graph, shards);
  const std::vector<std::size_t> weights = degree_weights(graph);
  std::size_t total = 0;
  for (const std::size_t w : weights) total += w;

  std::vector<std::uint32_t> shard_of(n, 0);
  // Walk brokers in id order, advancing to the next shard whenever the
  // running weight crosses the ideal boundary — every shard stays a
  // contiguous id range and within one broker of weight balance.
  std::size_t shard = 0;
  std::size_t carried = 0;
  for (std::size_t b = 0; b < n; ++b) {
    const std::size_t remaining_shards = shards - shard;
    // Leave at least one broker per remaining shard.
    if (shard + 1 < shards &&
        (n - b) > (remaining_shards - 1) &&
        carried >= (total * (shard + 1) + shards - 1) / shards) {
      ++shard;
    }
    shard_of[b] = static_cast<std::uint32_t>(shard);
    carried += weights[b];
  }
  // If trailing brokers were too light to ever cross a boundary, force the
  // last shards to be non-empty by reassigning the tail.
  for (std::size_t s = shards; s-- > 0;) {
    bool present = false;
    for (const std::uint32_t owner : shard_of) present |= owner == s;
    if (!present) {
      shard_of[n - (shards - s)] = static_cast<std::uint32_t>(s);
    }
  }
  return ShardPlan(graph, std::move(shard_of), shards);
}

ShardPlan ShardPlan::greedy_edge_cut(const Graph& graph, std::size_t shards) {
  const std::size_t n = graph.broker_count();
  shards = clamp_shards(graph, shards);
  const std::vector<std::size_t> weights = degree_weights(graph);
  std::size_t total = 0;
  for (const std::size_t w : weights) total += w;
  const std::size_t target = (total + shards - 1) / shards;

  constexpr std::uint32_t kUnassigned = ~0u;
  std::vector<std::uint32_t> shard_of(n, kUnassigned);
  // Brokers by descending degree: seed order and the fallback order when a
  // shard's frontier runs dry (disconnected graphs).
  std::vector<BrokerId> by_degree(n);
  for (std::size_t b = 0; b < n; ++b) by_degree[b] = static_cast<BrokerId>(b);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](BrokerId a, BrokerId b) {
                     return weights[static_cast<std::size_t>(a)] >
                            weights[static_cast<std::size_t>(b)];
                   });

  // gain[b] = neighbours of b already inside the shard currently growing.
  std::vector<std::size_t> gain(n, 0);
  std::vector<std::size_t> shard_weight(shards, 0);

  std::size_t seed_cursor = 0;
  const auto next_unassigned = [&]() -> BrokerId {
    while (seed_cursor < n &&
           shard_of[static_cast<std::size_t>(by_degree[seed_cursor])] !=
               kUnassigned) {
      ++seed_cursor;
    }
    return seed_cursor < n ? by_degree[seed_cursor] : kNoBroker;
  };

  for (std::size_t s = 0; s < shards; ++s) {
    // Max-heap of (gain, -degree-rank proxy via broker id) frontier
    // candidates; stale entries are skipped on pop.
    using Candidate = std::pair<std::size_t, BrokerId>;
    std::priority_queue<Candidate> frontier;
    std::fill(gain.begin(), gain.end(), 0);

    const auto assign = [&](BrokerId broker) {
      shard_of[static_cast<std::size_t>(broker)] =
          static_cast<std::uint32_t>(s);
      shard_weight[s] += weights[static_cast<std::size_t>(broker)];
      for (const EdgeId e : graph.out_edges(broker)) {
        const BrokerId to = graph.edge(e).to;
        if (shard_of[static_cast<std::size_t>(to)] != kUnassigned) continue;
        ++gain[static_cast<std::size_t>(to)];
        frontier.push({gain[static_cast<std::size_t>(to)], to});
      }
    };

    const BrokerId seed = next_unassigned();
    if (seed == kNoBroker) break;
    assign(seed);
    // Stop growing once the shard reached its weight target, unless later
    // shards would be left without brokers.
    std::size_t assigned_total = 0;
    for (const std::uint32_t owner : shard_of) {
      assigned_total += owner != kUnassigned;
    }
    while (shard_weight[s] < target &&
           (n - assigned_total) > (shards - s - 1)) {
      BrokerId pick = kNoBroker;
      while (!frontier.empty()) {
        const auto [g, candidate] = frontier.top();
        frontier.pop();
        if (shard_of[static_cast<std::size_t>(candidate)] != kUnassigned) {
          continue;  // Already taken.
        }
        if (g != gain[static_cast<std::size_t>(candidate)]) {
          continue;  // Stale gain; a fresher entry exists.
        }
        pick = candidate;
        break;
      }
      if (pick == kNoBroker) {
        pick = next_unassigned();  // Disconnected component.
        if (pick == kNoBroker) break;
      }
      assign(pick);
      ++assigned_total;
    }
  }
  // Leftovers (possible when the last shards hit their targets early): give
  // each to the lightest shard, preferring shards holding a neighbour.
  for (std::size_t b = 0; b < n; ++b) {
    if (shard_of[b] != kUnassigned) continue;
    std::vector<bool> adjacent(shards, false);
    bool any_adjacent = false;
    for (const EdgeId e : graph.out_edges(static_cast<BrokerId>(b))) {
      const std::size_t to = static_cast<std::size_t>(graph.edge(e).to);
      if (shard_of[to] != kUnassigned) {
        adjacent[shard_of[to]] = true;
        any_adjacent = true;
      }
    }
    std::size_t best = shards;
    for (std::size_t s = 0; s < shards; ++s) {
      if (any_adjacent && !adjacent[s]) continue;
      if (best == shards || shard_weight[s] < shard_weight[best]) best = s;
    }
    shard_of[b] = static_cast<std::uint32_t>(best);
    shard_weight[best] += weights[b];
  }
  return ShardPlan(graph, std::move(shard_of), shards);
}

}  // namespace bdps
