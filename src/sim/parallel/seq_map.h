// Flat event-id -> sequence-number map for the barrier merge.
//
// Sequence resolution touches the map once or twice per simulation event
// (insert when the parent record merges, lookup when the child's own record
// surfaces); a std::unordered_map pays a node allocation per insert, which
// at hundreds of thousands of events per run becomes the dominant serial
// cost of the merge.  Event ids are unique and never zero (the coordinator
// band starts at 1, shard bands carry the shard index in the top bits), so
// a linear-probing table with 0 as the empty key does the same job
// allocation-free.  Entries are never individually erased — the table is
// sized for the run's whole child population and reset wholesale.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bdps {

/// Flat hash map from non-zero 64-bit event ids to sequence numbers.
class FlatSeqMap {
 public:
  /// Inserts a new id (must not be present — every event's sequence is
  /// assigned exactly once).
  void insert(std::uint64_t id, std::uint64_t seq) {
    assert(id != 0);
    if (slots_.empty() || size_ * 2 >= slots_.size()) grow();
    std::size_t probe = mix(id) & mask_;
    while (slots_[probe].id != 0) {
      assert(slots_[probe].id != id);
      probe = (probe + 1) & mask_;
    }
    slots_[probe] = Slot{id, seq};
    ++size_;
  }

  /// True (and fills `seq`) when `id` has been assigned a sequence.
  bool find(std::uint64_t id, std::uint64_t& seq) const {
    if (slots_.empty()) return false;
    std::size_t probe = mix(id) & mask_;
    while (slots_[probe].id != 0) {
      if (slots_[probe].id == id) {
        seq = slots_[probe].seq;
        return true;
      }
      probe = (probe + 1) & mask_;
    }
    return false;
  }

 private:
  struct Slot {
    std::uint64_t id = 0;
    std::uint64_t seq = 0;
  };

  /// splitmix64 finalizer (shard-banded ids differ in high bits).
  static std::size_t mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    const std::size_t capacity = old.empty() ? 4096 : old.size() * 2;
    slots_.assign(capacity, Slot{});
    mask_ = capacity - 1;
    for (const Slot& slot : old) {
      if (slot.id == 0) continue;
      std::size_t probe = mix(slot.id) & mask_;
      while (slots_[probe].id != 0) probe = (probe + 1) & mask_;
      slots_[probe] = slot;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace bdps
