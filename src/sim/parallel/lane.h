// Per-shard event lane of the parallel discrete-event engine.
//
// Each shard of ParallelSimulator owns one LaneQueue ordered by
// (time, insertion key) — the per-lane analogue of the global EventQueue's
// (time, sequence) order.  A LaneEvent additionally carries
//
//   * `id`   — a run-unique identity, used at window barriers to resolve
//     the event's *global* sequence number once its parent event has been
//     merged (children created mid-round cannot know their final sequence
//     yet; see parallel_simulator.h),
//   * `seq`  — the global sequence number the sequential engine would have
//     assigned at push time, or kUnresolvedSeq until the barrier merge
//     derives it,
//   * `half` — tie rank for link-failure events split across two shards
//     (both halves share one sequence number; the a-side half replays its
//     side effects first, like the sequential handler),
//   * publish-precompute and deposited-arrival bookkeeping fields.
//
// Storage is two-level: one min-heap per broker plus an indexed min-heap
// over the brokers' head events.  Global (time, insertion key) order is
// preserved exactly — pop() always returns the lane-wide minimum — and the
// conservative-window computation gets what a single flat heap cannot
// offer: O(1) access to every *pending broker* and its next event time,
// which is what lets idle regions of the graph stop narrowing the safe
// horizon (see ParallelSimulator::compute_safe_horizons).
//
// The insertion-key order within one lane reproduces the sequential
// engine's (time, sequence) order restricted to this shard: events are
// inserted in ascending final-sequence order at barriers, and mid-round
// children are pushed in exactly the order the sequential engine would
// have pushed them.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "message/message.h"
#include "sim/event_queue.h"

namespace bdps {

/// Sequence number of an event whose parent has not been merged yet.
inline constexpr std::uint64_t kUnresolvedSeq = ~std::uint64_t{0};

struct LaneEvent {
  TimeMs time = 0.0;
  EventType type = EventType::kPublish;
  BrokerId broker = kNoBroker;
  BrokerId neighbor = kNoBroker;
  std::shared_ptr<const Message> message;
  /// Run-unique identity (shard-banded counter; 0 is reserved).
  std::uint64_t id = 0;
  /// Global sequence (the sequential engine's push order) once known.
  std::uint64_t seq = kUnresolvedSeq;
  /// Link-failure tie rank: 0 = a-side half (replays first), 1 = b-side.
  std::uint32_t half = 0;
  /// kSendComplete on a cut edge: id of the arrival event that was shipped
  /// to the destination shard when the send started (0 = none, i.e. the
  /// link is scheduled to die mid-flight).  The completion's barrier record
  /// claims this id as its first child, which is where the arrival's
  /// sequence number comes from.
  std::uint64_t deposited_child = 0;
  /// kPublish only: precomputed eq. (1)/(2) inputs (the global matching
  /// index is not thread-safe, so these are resolved before the rounds).
  std::uint32_t interested = 0;
  double potential = 0.0;
};

/// Two-level min-heap of LaneEvents: (time, insertion key) order globally,
/// per-broker heads exposed for the safe-horizon pass.
class LaneQueue {
 public:
  /// Sizes the per-broker tables; brokers outside the owning shard are
  /// never pushed.  Must be called (once) before the first push.
  void bind(std::size_t broker_count) {
    events_.resize(broker_count);
    heap_pos_.assign(broker_count, kNoPos);
  }

  void push(LaneEvent event) {
    const auto broker = static_cast<std::size_t>(event.broker);
    assert(broker < events_.size());
    auto& lane = events_[broker];
    lane.push_back(Item{std::move(event), next_key_++});
    ++size_;
    // Sift within the broker heap; re-key the broker in the index heap if
    // its head changed.
    std::size_t at = lane.size() - 1;
    while (at > 0) {
      const std::size_t parent = (at - 1) / 2;
      if (!item_later(lane[parent], lane[at])) break;
      std::swap(lane[parent], lane[at]);
      at = parent;
    }
    if (heap_pos_[broker] == kNoPos) {
      heap_pos_[broker] = heap_.size();
      heap_.push_back(static_cast<BrokerId>(broker));
      index_sift_up(heap_.size() - 1);
    } else if (at == 0) {
      index_sift_up(heap_pos_[broker]);
    }
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Lane-wide minimum by (time, insertion key); undefined when empty.
  const LaneEvent& top() const {
    return events_[static_cast<std::size_t>(heap_.front())].front().event;
  }

  LaneEvent pop() {
    const auto broker = static_cast<std::size_t>(heap_.front());
    auto& lane = events_[broker];
    LaneEvent result = std::move(lane.front().event);
    lane.front() = std::move(lane.back());
    lane.pop_back();
    --size_;
    if (!lane.empty()) {
      broker_sift_down(lane);
      index_sift_down(0);
    } else {
      // Remove the broker from the index heap.
      const std::size_t hole = 0;
      heap_pos_[broker] = kNoPos;
      const BrokerId moved = heap_.back();
      heap_.pop_back();
      if (!heap_.empty()) {
        heap_[hole] = moved;
        heap_pos_[static_cast<std::size_t>(moved)] = hole;
        index_sift_down(hole);
      }
    }
    return result;
  }

  /// Visits every broker that has at least one pending event, with that
  /// broker's earliest event — the active frontier the safe-horizon pass
  /// walks.  Order is unspecified (heap layout).
  template <typename Fn>
  void for_each_pending_broker(Fn&& fn) const {
    for (const BrokerId broker : heap_) {
      fn(broker, events_[static_cast<std::size_t>(broker)].front().event);
    }
  }

  /// Pruned frontier walk: visits pending brokers in heap order, skipping
  /// a broker's whole index-heap subtree when `fn` returns false for it —
  /// sound whenever the predicate is monotone in the head's time, since
  /// every descendant's head is no earlier.  The safe-horizon pass prunes
  /// on its running bound this way, touching only the active frontier.
  template <typename Fn>
  void visit_pending_brokers_pruned(Fn&& fn) const {
    if (heap_.empty()) return;
    scratch_.clear();
    scratch_.push_back(0);
    while (!scratch_.empty()) {
      const std::size_t slot = scratch_.back();
      scratch_.pop_back();
      const BrokerId broker = heap_[slot];
      if (!fn(broker, events_[static_cast<std::size_t>(broker)].front()
                          .event)) {
        continue;  // Subtree heads are all at least as late.
      }
      const std::size_t left = 2 * slot + 1;
      const std::size_t right = left + 1;
      if (left < heap_.size()) scratch_.push_back(left);
      if (right < heap_.size()) scratch_.push_back(right);
    }
  }

 private:
  struct Item {
    LaneEvent event;
    std::uint64_t key;
  };
  static constexpr std::size_t kNoPos = ~std::size_t{0};

  static bool item_later(const Item& a, const Item& b) {
    if (a.event.time != b.event.time) return a.event.time > b.event.time;
    return a.key > b.key;
  }

  void broker_sift_down(std::vector<Item>& lane) {
    const std::size_t n = lane.size();
    std::size_t at = 0;
    for (;;) {
      const std::size_t left = 2 * at + 1;
      const std::size_t right = left + 1;
      std::size_t smallest = at;
      if (left < n && item_later(lane[smallest], lane[left])) smallest = left;
      if (right < n && item_later(lane[smallest], lane[right])) {
        smallest = right;
      }
      if (smallest == at) return;
      std::swap(lane[at], lane[smallest]);
      at = smallest;
    }
  }

  const Item& head_of(std::size_t slot) const {
    return events_[static_cast<std::size_t>(heap_[slot])].front();
  }
  bool slot_later(std::size_t a, std::size_t b) const {
    return item_later(head_of(a), head_of(b));
  }

  void index_sift_up(std::size_t slot) {
    while (slot > 0) {
      const std::size_t parent = (slot - 1) / 2;
      if (!slot_later(parent, slot)) break;
      std::swap(heap_[slot], heap_[parent]);
      heap_pos_[static_cast<std::size_t>(heap_[slot])] = slot;
      heap_pos_[static_cast<std::size_t>(heap_[parent])] = parent;
      slot = parent;
    }
  }

  void index_sift_down(std::size_t slot) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t left = 2 * slot + 1;
      const std::size_t right = left + 1;
      std::size_t smallest = slot;
      if (left < n && slot_later(smallest, left)) smallest = left;
      if (right < n && slot_later(smallest, right)) smallest = right;
      if (smallest == slot) return;
      std::swap(heap_[slot], heap_[smallest]);
      heap_pos_[static_cast<std::size_t>(heap_[slot])] = slot;
      heap_pos_[static_cast<std::size_t>(heap_[smallest])] = smallest;
      slot = smallest;
    }
  }

  /// events_[broker] is that broker's min-heap of pending events.
  std::vector<std::vector<Item>> events_;
  /// Index min-heap over brokers with pending events, keyed by their head.
  std::vector<BrokerId> heap_;
  std::vector<std::size_t> heap_pos_;
  std::uint64_t next_key_ = 0;
  std::size_t size_ = 0;
  /// DFS stack reused by visit_pending_brokers_pruned.
  mutable std::vector<std::size_t> scratch_;
};

}  // namespace bdps
