// Domain decomposition for the sharded discrete-event engine.
//
// A ShardPlan partitions the brokers of a Graph into P shards.  Each shard
// becomes one event lane of ParallelSimulator; every directed edge whose
// endpoints land in different shards is a *cut* edge, and the conservative
// window synchronisation pays one lookahead term per cut edge — fewer and
// slower cut links mean wider safe windows, so the partition quality
// directly bounds the achievable parallelism.
//
// Two planners are provided:
//   * contiguous() — brokers [0, n) split into P consecutive ranges,
//     balanced by degree weight.  Trivial, and already good for
//     generators that lay correlated brokers next to each other (rings,
//     grids, the paper topology).
//   * greedy_edge_cut() — METIS-lite: seed each shard with the
//     highest-degree unassigned broker, then grow shards one broker at a
//     time, always extending the lightest shard with the frontier broker
//     that has the most neighbours already inside it.  No external
//     dependency, deterministic, and substantially fewer cut edges than
//     contiguous ranges on scale-free meshes.
//
// The plan carries no engine state; it is a pure function of the graph and
// P, so the same plan can be rebuilt for replay/debugging.  Which plan is
// used never changes simulation *results* — the engine's output is bitwise
// identical for every partition — only its speed.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/graph.h"

namespace bdps {

class ShardPlan {
 public:
  /// Brokers [0, n) in P consecutive ranges balanced by (1 + degree).
  static ShardPlan contiguous(const Graph& graph, std::size_t shards);

  /// Greedy growth from high-degree seeds, minimising the edge cut.
  static ShardPlan greedy_edge_cut(const Graph& graph, std::size_t shards);

  std::size_t shard_count() const { return members_.size(); }
  std::size_t broker_count() const { return shard_of_.size(); }

  std::uint32_t shard_of(BrokerId broker) const {
    return shard_of_[static_cast<std::size_t>(broker)];
  }

  /// Brokers of one shard, ascending.
  const std::vector<BrokerId>& members(std::size_t shard) const {
    return members_[shard];
  }

  /// Directed edges whose source and destination live in different shards,
  /// ascending by edge id.
  const std::vector<EdgeId>& cut_edges() const { return cut_edges_; }

 private:
  ShardPlan(const Graph& graph, std::vector<std::uint32_t> shard_of,
            std::size_t shards);

  std::vector<std::uint32_t> shard_of_;
  std::vector<std::vector<BrokerId>> members_;
  std::vector<EdgeId> cut_edges_;
};

}  // namespace bdps
