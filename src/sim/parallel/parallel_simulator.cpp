#include "sim/parallel/parallel_simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ctime>
#include <stdexcept>
#include <thread>
#include <utility>

namespace bdps {

namespace {

std::size_t effective_shards(const SimulatorOptions& options,
                             const Topology& topology) {
  const std::size_t requested = options.shards == 0 ? 1 : options.shards;
  return std::min(requested,
                  std::max<std::size_t>(1, topology.graph.broker_count()));
}

/// CPU time of the calling thread in milliseconds — robust against
/// preemption, which is what makes the engine's critical-path accounting
/// meaningful on oversubscribed hosts.
double thread_cpu_ms() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) * 1e-6;
}

}  // namespace

ParallelSimulator::ParallelSimulator(const Topology* topology,
                                     const Graph* believed,
                                     const RoutingFabric* fabric,
                                     const Strategy* strategy,
                                     SimulatorOptions options, Rng link_rng)
    : topology_(topology),
      believed_(believed),
      fabric_(fabric),
      options_(options),
      plan_(ShardPlan::greedy_edge_cut(topology->graph,
                                       effective_shards(options, *topology))) {
  const std::size_t broker_count = topology->graph.broker_count();
  const std::size_t edge_count = topology->graph.edge_count();

  brokers_.reserve(broker_count);
  for (std::size_t b = 0; b < broker_count; ++b) {
    brokers_.emplace_back(static_cast<BrokerId>(b), fabric, believed,
                          strategy, options_.processing_delay,
                          /*queues_for_all_links=*/options_.repair_fabric !=
                              nullptr);
  }
  // Identical slot -> true-edge resolution (and validation) as Simulator.
  true_edge_by_slot_.resize(broker_count);
  for (std::size_t b = 0; b < broker_count; ++b) {
    const Broker& broker = brokers_[b];
    auto& edges = true_edge_by_slot_[b];
    edges.reserve(broker.queue_count());
    for (const OutputQueue& queue : broker.queues()) {
      const EdgeId true_edge = topology->graph.edge_id(
          static_cast<BrokerId>(b), queue.neighbor());
      if (true_edge == kNoEdge) {
        throw std::logic_error(
            "believed link has no counterpart in the true topology");
      }
      edges.push_back(true_edge);
    }
  }
  // Identical per-edge stream derivation as Simulator: stream e is the e-th
  // split of the constructor's generator.
  link_rngs_.resize(edge_count);
  for (std::size_t e = 0; e < edge_count; ++e) {
    link_rngs_[e].rng = link_rng.split();
  }
  if (options_.online_estimation) {
    send_started_.assign(edge_count, 0.0);
    estimators_.assign(edge_count,
                       RateEstimator(options_.estimator_min_samples));
    estimator_live_.assign(edge_count, 0);
  }
  if (options_.dedup_arrivals) {
    seen_.resize(broker_count);
  }
  if (options_.serialize_processing) {
    input_queues_.resize(broker_count);
    processing_busy_.assign(broker_count, 0);
  }
  death_time_.assign(edge_count, kNoDeadline);
  for (const LinkFailure& failure : options_.failures) {
    const auto n = static_cast<BrokerId>(broker_count);
    if (failure.a < 0 || failure.a >= n || failure.b < 0 || failure.b >= n) {
      throw std::invalid_argument(
          "link failure references a broker outside the topology");
    }
    const EdgeId forward = topology->graph.edge_id(failure.a, failure.b);
    if (forward != kNoEdge) {
      death_time_[forward] = std::min(death_time_[forward], failure.at);
    }
    const EdgeId backward = topology->graph.edge_id(failure.b, failure.a);
    if (backward != kNoEdge) {
      death_time_[backward] = std::min(death_time_[backward], failure.at);
    }
  }
  if (options_.faults != nullptr && !options_.faults->empty()) {
    has_faults_ = true;
    down_.assign(edge_count);
    broker_down_.assign(broker_count, 0);
    send_begin_.assign(edge_count, 0.0);
  }

  const std::size_t shard_count = plan_.shard_count();
  is_cut_.assign(edge_count);
  for (const EdgeId e : plan_.cut_edges()) is_cut_.set(e);
  next_rate_.assign(edge_count, 0.0);
  broker_rate_heap_.resize(broker_count);
  pair_rate_heap_.resize(shard_count * shard_count);
  if (shard_count > 1) {
    // Pre-draw every edge's next send rate: sample k of stream e is
    // consumed by send k whether it is drawn lazily (the sequential
    // engine) or one send ahead — only the draw *instant* moves, never the
    // value.  The pre-drawn rates are what make the safe horizon *exact*:
    // the next transmission on any edge is known, not estimated.
    for (std::size_t e = 0; e < edge_count; ++e) {
      const auto edge = static_cast<EdgeId>(e);
      next_rate_[edge] =
          topology->graph.edge(edge).link.sample_rate(link_rngs_[e].rng);
      push_rate(edge, next_rate_[edge]);
    }
  }

  // Per-broker cut-edge CSR (+ pre-resolved destination shards): the
  // horizon pass walks only the cut edges of event-pending brokers.
  cut_out_offset_.assign(broker_count + 1, 0);
  for (const EdgeId e : plan_.cut_edges()) {
    ++cut_out_offset_[static_cast<std::size_t>(
        topology->graph.edge(e).from) + 1];
  }
  for (std::size_t b = 0; b < broker_count; ++b) {
    cut_out_offset_[b + 1] += cut_out_offset_[b];
  }
  cut_out_edges_.resize(plan_.cut_edges().size());
  cut_out_dst_shard_.resize(plan_.cut_edges().size());
  {
    std::vector<std::uint32_t> fill(cut_out_offset_.begin(),
                                    cut_out_offset_.end() - 1);
    for (const EdgeId e : plan_.cut_edges()) {
      const std::uint32_t at = fill[static_cast<std::size_t>(
          topology->graph.edge(e).from)]++;
      cut_out_edges_[at] = e;
      cut_out_dst_shard_[at] = plan_.shard_of(topology->graph.edge(e).to);
    }
  }

  shards_.resize(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_[s].index = s;
    shards_[s].id_band = (static_cast<std::uint64_t>(s) + 1) << 48;
    shards_[s].dead.assign(edge_count);
    shards_[s].lane.bind(broker_count);
  }
  mailboxes_.resize(shard_count * shard_count);
}

void ParallelSimulator::schedule_publish(
    std::shared_ptr<const Message> message) {
  pending_publishes_.push_back(std::move(message));
}

const RateEstimator* ParallelSimulator::estimator(EdgeId edge) const {
  if (estimators_.empty()) return nullptr;
  if (edge < 0 ||
      static_cast<std::size_t>(edge) >= topology_->graph.edge_count()) {
    return nullptr;
  }
  if (estimator_live_[edge] == 0) return nullptr;
  return &estimators_[edge];
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

void ParallelSimulator::build_initial_lanes() {
  // Initial sequence order mirrors the sequential engine's push order:
  // fault batches (constructor) first, then failures, then publishes in
  // schedule order.  Batches never enter a lane — they are applied
  // coordinator-side between rounds — but their sequence numbers are
  // reserved here so every later sequence lines up bit for bit.
  if (has_faults_) next_seq_ += options_.faults->batches().size();
  for (const LinkFailure& failure : options_.failures) {
    const std::uint64_t seq = next_seq_++;
    const std::uint32_t shard_a = plan_.shard_of(failure.a);
    const std::uint32_t shard_b = plan_.shard_of(failure.b);
    LaneEvent event;
    event.time = failure.at;
    event.type = EventType::kLinkFailure;
    event.broker = failure.a;
    event.neighbor = failure.b;
    event.seq = seq;
    event.half = 0;
    event.id = next_initial_id_++;
    shards_[shard_a].lane.push(event);
    if (shard_b != shard_a) {
      // The b-side half shares the failure's sequence number and replays
      // second (half = 1), reproducing the sequential drain order.  It is
      // anchored on *its own* broker — a lane must never hold a foreign
      // broker's event, or the other shard's bound pass would race with
      // this shard's lane walk over that broker's rate heap.
      event.half = 1;
      event.id = next_initial_id_++;
      event.broker = failure.b;
      event.neighbor = failure.a;
      shards_[shard_b].lane.push(std::move(event));
    }
  }
  min_size_kb_ = kNoDeadline;
  for (auto& message : pending_publishes_) {
    if (plan_.shard_count() > 1 && message->size_kb() <= 0.0) {
      throw std::invalid_argument(
          "ParallelSimulator requires positive message sizes (zero "
          "transmission-time lookahead); use shards = 0");
    }
    min_size_kb_ = std::min(min_size_kb_, message->size_kb());
    // Eq. (1)/(2) inputs come from the fabric's *global* index, whose
    // match scratch is not thread-safe; resolve them up front.
    std::size_t interested = 0;
    double potential = 0.0;
    for (const std::size_t index : fabric_->match_all(*message)) {
      const Subscription& sub = fabric_->subscription(index);
      if (!sub.active_at(message->publish_time())) continue;
      ++interested;
      potential += sub.price;
    }
    LaneEvent event;
    event.time = message->publish_time();
    event.type = EventType::kPublish;
    event.broker = topology_->publisher_edges.at(
        static_cast<std::size_t>(message->publisher()));
    event.seq = next_seq_++;
    event.id = next_initial_id_++;
    event.interested = static_cast<std::uint32_t>(interested);
    event.potential = potential;
    event.message = std::move(message);
    shards_[plan_.shard_of(event.broker)].lane.push(std::move(event));
  }
  pending_publishes_.clear();
}

bool ParallelSimulator::any_runnable() const {
  for (const Shard& shard : shards_) {
    if (!shard.lane.empty() &&
        shard.lane.top().time <= options_.horizon) {
      return true;
    }
  }
  return false;
}

TimeMs ParallelSimulator::next_batch_time() const {
  if (!has_faults_) return kNoDeadline;
  const auto& batches = options_.faults->batches();
  if (batch_cursor_ >= batches.size()) return kNoDeadline;
  const TimeMs at = batches[batch_cursor_].at;
  // The sequential engine stops at the first event past its horizon; a
  // batch beyond it never applies.
  return at <= options_.horizon ? at : kNoDeadline;
}

bool ParallelSimulator::batch_due(TimeMs at) const {
  for (const Shard& shard : shards_) {
    if (!shard.lane.empty() && shard.lane.top().time < at) return false;
  }
  return true;
}

void ParallelSimulator::push_rate(EdgeId edge, double rate) {
  const Edge& e = topology_->graph.edge(edge);
  std::vector<RateEntry>& heap =
      is_cut_.test(edge)
          ? pair_rate_heap_[plan_.shard_of(e.from) * plan_.shard_count() +
                            plan_.shard_of(e.to)]
          : broker_rate_heap_[static_cast<std::size_t>(e.from)];
  heap.push_back(RateEntry{rate, edge});
  std::push_heap(heap.begin(), heap.end(), [](const RateEntry& a,
                                              const RateEntry& b) {
    return a.rate > b.rate;
  });
}

double ParallelSimulator::lazy_min_rate(std::vector<RateEntry>& heap) const {
  const auto greater = [](const RateEntry& a, const RateEntry& b) {
    return a.rate > b.rate;
  };
  while (!heap.empty() &&
         next_rate_[heap.front().edge] != heap.front().rate) {
    std::pop_heap(heap.begin(), heap.end(), greater);
    heap.pop_back();  // Superseded by a later redraw.
  }
  return heap.empty() ? kNoDeadline : heap.front().rate;
}

void ParallelSimulator::compute_shard_bound(Shard& shard) {
  // A send on a cut edge e = (b -> d) during a round starts no earlier than
  //
  //     min( next event time at b,                        [own trigger]
  //          min over event-pending brokers x of
  //              next event time at x
  //              + (x's cheapest internal next-send) + PD )  [chain trigger]
  //
  // — every in-round causal chain roots in an event already in the lane
  // (arrivals of sends started in earlier rounds are deposited at send
  // start, so they *are* lane events), and a chain that reaches b from
  // another broker must cross at least one internal transmission, whose
  // pre-drawn rate is exact, plus one processing stage.  Chains through
  // other shards cannot re-enter mid-round (deposits defer to the
  // barrier).  Adding e's own pre-drawn transmission time bounds the
  // earliest cross-cut arrival.
  //
  // Walking *pending brokers only* is the load-bearing refinement: a
  // shard's whole cut is thousands of edges whose rate minimum sits deep in
  // the distribution's tail, while the active frontier is a few hundred
  // brokers whose own edges and event times gate far wider windows.  The
  // running-minimum prune skips most of even those with one comparison.
  const std::size_t shard_count = plan_.shard_count();
  TimeMs bound = kNoDeadline;
  TimeMs chain = kNoDeadline;
  shard.lane.visit_pending_brokers_pruned([&](BrokerId broker,
                                              const LaneEvent& head) {
    const TimeMs base = head.time;
    if (base >= bound && base >= chain) return false;  // Prune subtree.
    const auto b = static_cast<std::size_t>(broker);
    for (std::uint32_t i = cut_out_offset_[b]; i < cut_out_offset_[b + 1];
         ++i) {
      const EdgeId e = cut_out_edges_[i];
      if (death_time_[e] <= base) continue;  // Dead before any send.
      // A held (down) edge cannot start a send before the next fault batch,
      // and rounds never span a batch instant.
      if (has_faults_ && down_.test(e)) continue;
      const TimeMs candidate = base + next_rate_[e] * min_size_kb_;
      if (candidate < bound) bound = candidate;
    }
    const double internal_rate = lazy_min_rate(broker_rate_heap_[b]);
    if (internal_rate != kNoDeadline) {
      chain = std::min(chain, base + internal_rate * min_size_kb_);
    }
    return true;
  });
  if (chain != kNoDeadline) {
    chain += options_.processing_delay;
    for (std::size_t d = 0; d < shard_count; ++d) {
      if (d == shard.index) continue;
      const double cut_rate =
          lazy_min_rate(pair_rate_heap_[shard.index * shard_count + d]);
      if (cut_rate == kNoDeadline) continue;  // No cut edges this way.
      bound = std::min(bound, chain + cut_rate * min_size_kb_);
    }
  }
  shard.next_bound = bound;
}

void ParallelSimulator::fold_horizon(TimeMs batch_at) {
  TimeMs horizon = deposit_bound_;
  for (const Shard& shard : shards_) {
    horizon = std::min(horizon, shard.next_bound);
  }
  // A pending fault batch is a hard wall: its transitions must apply (in
  // global order, coordinator-side) before any event at or past its
  // instant processes.
  if (horizon > batch_at) horizon = batch_at;
  // Guarantee progress: floating-point rounding can collapse a bound onto
  // the global minimum event time when a lookahead is below half an ulp;
  // nudging one ulp past the minimum lets those events process.  (Any
  // deposit they create still lands at or after that minimum, so nothing
  // is lost; at worst an exact same-instant tie replays in deposit order.)
  TimeMs min_top = kNoDeadline;
  for (const Shard& shard : shards_) {
    if (!shard.lane.empty()) {
      min_top = std::min(min_top, shard.lane.top().time);
    }
  }
  // (The nudge cannot step past a pending batch: when the batch is not yet
  // due, some lane top is strictly earlier, so nextafter(min_top) never
  // exceeds batch_at.)
  if (horizon <= min_top) horizon = std::nextafter(min_top, kNoDeadline);
  round_horizon_ = horizon;
}

void ParallelSimulator::merge_and_route() {
  const std::size_t shard_count = plan_.shard_count();
  merge_cursor_.assign(shard_count, 0);
  for (;;) {
    std::size_t best = shard_count;
    for (std::size_t s = 0; s < shard_count; ++s) {
      std::vector<Record>& records = shards_[s].records;
      if (merge_cursor_[s] >= records.size()) continue;
      Record& record = records[merge_cursor_[s]];
      if (record.seq == kUnresolvedSeq) {
        std::uint64_t seq;
        if (resolved_.find(record.event_id, seq)) record.seq = seq;
      }
      if (record.seq == kUnresolvedSeq) {
        // An unresolved head cannot be the merge minimum: its parent is
        // unconsumed at a strictly smaller (time, seq) key in some log.
        continue;
      }
      if (best == shard_count) {
        best = s;
        continue;
      }
      const Record& champion = shards_[best].records[merge_cursor_[best]];
      if (record.time < champion.time ||
          (record.time == champion.time &&
           (record.seq < champion.seq ||
            (record.seq == champion.seq && record.half < champion.half)))) {
        best = s;
      }
    }
    if (best == shard_count) {
      for (std::size_t s = 0; s < shard_count; ++s) {
        if (merge_cursor_[s] < shards_[s].records.size()) {
          throw std::logic_error(
              "parallel merge stalled on an unresolved record");
        }
      }
      break;
    }
    Shard& shard = shards_[best];
    const Record& record = shard.records[merge_cursor_[best]++];
    now_ = record.time;
    // Children take their global sequence numbers here, in push order —
    // exactly when the sequential heap would have assigned them.
    for (std::uint32_t c = record.children_begin; c < record.children_end;
         ++c) {
      resolved_.insert(shard.children[c], next_seq_++);
    }
    for (std::uint32_t o = record.ops_begin; o < record.ops_end; ++o) {
      replay(shard, shard.ops[o]);
    }
  }
  // Events still waiting in lanes keep kUnresolvedSeq; their records
  // resolve from the persistent map when they eventually merge, so no lane
  // sweep is needed here.
  for (Shard& shard : shards_) {
    shard.records.clear();
    shard.ops.clear();
    shard.children.clear();
    shard.traces.clear();
  }
  // Route this round's cross-shard deposits (deterministic order: source
  // shards ascending, FIFO within each mailbox), folding each deposit's
  // horizon contribution — destination lanes change *after* the workers
  // computed their bounds, so the sends a deposit can trigger are bounded
  // here instead.
  deposit_bound_ = kNoDeadline;
  for (std::size_t from = 0; from < shard_count; ++from) {
    for (std::size_t to = 0; to < shard_count; ++to) {
      if (from == to) continue;
      SpscQueue<LaneEvent>& box = mailbox(from, to);
      LaneEvent event;
      while (box.pop(event)) {
        const auto b = static_cast<std::size_t>(event.broker);
        const TimeMs base = event.time;
        for (std::uint32_t i = cut_out_offset_[b];
             i < cut_out_offset_[b + 1]; ++i) {
          const EdgeId e = cut_out_edges_[i];
          if (death_time_[e] <= base) continue;
          if (has_faults_ && down_.test(e)) continue;  // Held until a batch.
          deposit_bound_ = std::min(
              deposit_bound_, base + next_rate_[e] * min_size_kb_);
        }
        const double internal_rate = lazy_min_rate(broker_rate_heap_[b]);
        if (internal_rate != kNoDeadline) {
          const TimeMs chain =
              base + internal_rate * min_size_kb_ + options_.processing_delay;
          for (std::size_t d = 0; d < shard_count; ++d) {
            if (d == to) continue;
            const double cut_rate =
                lazy_min_rate(pair_rate_heap_[to * shard_count + d]);
            if (cut_rate == kNoDeadline) continue;
            deposit_bound_ =
                std::min(deposit_bound_, chain + cut_rate * min_size_kb_);
          }
        }
        shards_[to].lane.push(std::move(event));
      }
    }
  }
}

void ParallelSimulator::replay(const Shard& shard, const LoggedOp& op) {
  switch (op.kind) {
    case LoggedOp::Kind::kPublish:
      collector_.on_publish(op.n, op.a);
      break;
    case LoggedOp::Kind::kReception:
      collector_.on_reception();
      break;
    case LoggedOp::Kind::kDelivery:
      collector_.on_delivery(op.a, op.b, op.c);
      break;
    case LoggedOp::Kind::kPurge: {
      PurgeStats stats;
      stats.expired = op.n;
      stats.hopeless = op.n2;
      collector_.on_purge(stats);
      break;
    }
    case LoggedOp::Kind::kLoss:
      collector_.on_loss(op.n);
      break;
    case LoggedOp::Kind::kInputDepth:
      collector_.on_input_queue_depth(op.n);
      break;
    case LoggedOp::Kind::kTrace:
      if (trace_ != nullptr) trace_->record(shard.traces[op.n]);
      break;
  }
}

void ParallelSimulator::coordinator_drain_slot(BrokerId broker_id,
                                               Broker::QueueSlot slot) {
  OutputQueue& out = brokers_[broker_id].queue_at(slot);
  if (trace_ != nullptr) {
    for (const QueuedMessage& queued : out.messages()) {
      trace_->record(TraceEvent{now_, TraceEventKind::kLoss,
                                queued.message->id(), broker_id,
                                out.neighbor(), -1, false});
    }
  }
  const std::size_t dropped = out.clear();
  if (dropped > 0) collector_.on_loss(dropped);
}

void ParallelSimulator::coordinator_start_sends(BrokerId broker_id,
                                                Broker::QueueSlot slot) {
  // The recovery kick's single-slot start_sends, run at a barrier: side
  // effects are applied directly (the kick sits at the global-order point —
  // everything earlier has merged), the completion event takes its sequence
  // number inline, and its id comes from the coordinator's band 0.
  Shard& owner = shards_[plan_.shard_of(broker_id)];
  const EdgeId true_edge = true_edge_by_slot_[broker_id][slot];
  if (!owner.dead.none() && owner.dead.test(true_edge)) {
    coordinator_drain_slot(broker_id, slot);
    return;
  }
  if (down_.test(true_edge)) return;  // Still held by another outage.
  Broker& broker = brokers_[broker_id];
  coord_slots_.assign(1, slot);
  broker.take_next(coord_slots_, now_, options_.purge, coord_dispatch_,
                   nullptr, trace_ != nullptr);
  for (Broker::Dispatch& dispatch : coord_dispatch_) {
    collector_.on_purge(dispatch.purge);
    if (trace_ != nullptr) {
      for (const MessageId id : dispatch.purged_ids) {
        trace_->record(TraceEvent{now_, TraceEventKind::kPurge, id, broker_id,
                                  dispatch.neighbor, -1, false});
      }
    }
    if (!dispatch.chosen.has_value()) continue;  // Purge emptied the queue.
    if (trace_ != nullptr) {
      trace_->record(TraceEvent{now_, TraceEventKind::kSendStart,
                                dispatch.chosen->message->id(), broker_id,
                                dispatch.neighbor, -1, false});
    }
    const LinkModel& link = topology_->graph.edge(true_edge).link;
    double rate;
    if (plan_.shard_count() > 1) {
      rate = next_rate_[true_edge];
      next_rate_[true_edge] = link.sample_rate(link_rngs_[true_edge].rng);
      push_rate(true_edge, next_rate_[true_edge]);
    } else {
      rate = link.sample_rate(link_rngs_[true_edge].rng);
    }
    const TimeMs duration = dispatch.chosen->message->size_kb() * rate;

    broker.queue_at(slot).set_link_busy(true);
    if (options_.online_estimation) send_started_[true_edge] = now_;
    send_begin_[true_edge] = now_;
    LaneEvent complete;
    complete.time = now_ + duration;
    complete.type = EventType::kSendComplete;
    complete.broker = broker_id;
    complete.neighbor = dispatch.neighbor;
    complete.seq = next_seq_++;
    complete.id = next_initial_id_++;
    complete.message = std::move(dispatch.chosen->message);
    if (plan_.shard_count() > 1 && complete.time < death_time_[true_edge] &&
        !options_.faults->edge_cut_between(true_edge, now_, complete.time)) {
      // Deposit at send start, straight into the destination lane (the
      // mailboxes are idle at a barrier).  Completion first: at the shared
      // instant it must take the smaller lane key so it pops — and assigns
      // the arrival's sequence via deposited_child — first.
      LaneEvent arrival;
      arrival.time = complete.time;
      arrival.type = EventType::kArrival;
      arrival.broker = dispatch.neighbor;
      arrival.message = complete.message;
      arrival.id = next_initial_id_++;
      complete.deposited_child = arrival.id;
      owner.lane.push(std::move(complete));
      shards_[plan_.shard_of(dispatch.neighbor)].lane.push(
          std::move(arrival));
      continue;
    }
    owner.lane.push(std::move(complete));
  }
}

void ParallelSimulator::apply_fault_batch() {
  // Coordinator-side mirror of Simulator::handle_fault — identical
  // canonical order; see the NOTE there.  At this point every event before
  // the batch instant has merged, so next_seq_ equals the sequential
  // engine's push counter at its kFault pop and side effects apply
  // directly.
  const FaultBatch& batch = options_.faults->batches()[batch_cursor_++];
  now_ = batch.at;
  // 1. Broker crashes: input queue, in-progress message (doomed at its
  //    kProcessed) and every output queue die with the process.
  for (const BrokerId b : batch.brokers_down) {
    broker_down_[b] = 1;
    if (options_.serialize_processing) {
      auto& pending = input_queues_[b];
      if (trace_ != nullptr) {
        for (const auto& message : pending) {
          trace_->record(TraceEvent{now_, TraceEventKind::kLoss,
                                    message->id(), b, kNoBroker, -1, false});
        }
      }
      if (!pending.empty()) collector_.on_loss(pending.size());
      pending.clear();
      processing_busy_[b] = 0;
    }
    const auto queue_count =
        static_cast<Broker::QueueSlot>(brokers_[b].queue_count());
    for (Broker::QueueSlot slot = 0; slot < queue_count; ++slot) {
      coordinator_drain_slot(b, slot);
    }
  }
  // 2. Edge downs: hold semantics (copies wait for recovery).
  for (const EdgeId e : batch.edges_down) down_.set(e);
  // 3. Recoveries.
  for (const BrokerId b : batch.brokers_up) broker_down_[b] = 0;
  for (const EdgeId e : batch.edges_up) down_.reset(e);
  // 3b. Incremental routing repair (see Simulator::handle_fault).
  if (options_.repair_fabric != nullptr &&
      (!batch.edges_down.empty() || !batch.edges_up.empty())) {
    const Graph& believed = options_.repair_fabric->graph();
    const auto translate = [&](const std::vector<EdgeId>& in) {
      std::vector<EdgeId> out;
      out.reserve(in.size());
      for (const EdgeId e : in) {
        const Edge& edge = topology_->graph.edge(e);
        const EdgeId fe = believed.edge_id(edge.from, edge.to);
        if (fe != kNoEdge) out.push_back(fe);
      }
      return out;
    };
    options_.repair_fabric->apply_link_state(translate(batch.edges_down),
                                             translate(batch.edges_up));
  }
  // 4. Recovery kicks, in edge-id order.
  for (const EdgeId e : batch.edges_up) {
    const Edge& edge = topology_->graph.edge(e);
    const Broker::QueueSlot slot = brokers_[edge.from].slot_of(edge.to);
    if (slot == Broker::kNoSlot) continue;
    const OutputQueue& out = brokers_[edge.from].queue_at(slot);
    if (out.empty() || out.link_busy()) continue;
    coordinator_start_sends(edge.from, slot);
  }
}

void ParallelSimulator::run() {
  build_initial_lanes();
  const std::size_t shard_count = plan_.shard_count();
  if (shard_count == 1) {
    // One lane: the window is unbounded (up to the next fault batch) and
    // every "round" is the full remaining stretch — the merge still
    // replays through the same machinery.
    stats_.shard_cpu_ms.assign(1, 0.0);
    for (;;) {
      const TimeMs batch_at = next_batch_time();
      if (batch_at != kNoDeadline && batch_due(batch_at)) {
        apply_fault_batch();
        continue;
      }
      if (!any_runnable()) break;
      const double lane_start = thread_cpu_ms();
      process_shard(0, batch_at);
      const double lane_ms = thread_cpu_ms() - lane_start;
      stats_.rounds += 1;
      stats_.critical_path_ms += lane_ms;
      stats_.worker_cpu_ms += lane_ms;
      stats_.shard_cpu_ms[0] += lane_ms;
      const double merge_start = thread_cpu_ms();
      merge_and_route();
      stats_.merge_ms += thread_cpu_ms() - merge_start;
    }
    return;
  }

  stats_.shard_cpu_ms.assign(shard_count, 0.0);
  round_start_ = std::make_unique<WindowBarrier>(shard_count);
  round_end_ = std::make_unique<WindowBarrier>(shard_count);
  stop_workers_ = false;
  worker_error_ = nullptr;

  std::vector<std::thread> workers;
  workers.reserve(shard_count - 1);
  for (std::size_t s = 1; s < shard_count; ++s) {
    workers.emplace_back([this, s] {
      for (;;) {
        round_start_->arrive_and_wait();
        if (stop_workers_) return;
        const double lane_start = thread_cpu_ms();
        try {
          process_shard(s, round_horizon_);
          const double bound_start = thread_cpu_ms();
          compute_shard_bound(shards_[s]);
          shards_[s].bound_cpu_ms += thread_cpu_ms() - bound_start;
        } catch (...) {
          const std::lock_guard<std::mutex> lock(worker_error_mutex_);
          if (!worker_error_) worker_error_ = std::current_exception();
        }
        shards_[s].round_cpu_ms = thread_cpu_ms() - lane_start;
        round_end_->arrive_and_wait();
      }
    });
  }

  // Initial per-shard bounds (the workers keep them fresh from here on).
  {
    const double horizon_start = thread_cpu_ms();
    for (Shard& shard : shards_) compute_shard_bound(shard);
    stats_.horizon_ms += thread_cpu_ms() - horizon_start;
  }
  for (;;) {
    const TimeMs batch_at = next_batch_time();
    if (batch_at != kNoDeadline && batch_due(batch_at)) {
      apply_fault_batch();
      // The batch changed queue and lane state (drains, recovery kicks);
      // refresh every shard's bound before the next fold.  Serial, but
      // batches are rare relative to rounds.
      const double refresh_start = thread_cpu_ms();
      for (Shard& shard : shards_) compute_shard_bound(shard);
      stats_.horizon_ms += thread_cpu_ms() - refresh_start;
      continue;
    }
    if (!any_runnable()) break;
    const double horizon_start = thread_cpu_ms();
    fold_horizon(batch_at);
    stats_.horizon_ms += thread_cpu_ms() - horizon_start;
    round_start_->arrive_and_wait();
    const double lane_start = thread_cpu_ms();
    try {
      process_shard(0, round_horizon_);
      const double bound_start = thread_cpu_ms();
      compute_shard_bound(shards_[0]);
      shards_[0].bound_cpu_ms += thread_cpu_ms() - bound_start;
    } catch (...) {
      const std::lock_guard<std::mutex> lock(worker_error_mutex_);
      if (!worker_error_) worker_error_ = std::current_exception();
    }
    shards_[0].round_cpu_ms = thread_cpu_ms() - lane_start;
    round_end_->arrive_and_wait();
    if (worker_error_) break;
    stats_.rounds += 1;
    double slowest = 0.0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      stats_.worker_cpu_ms += shards_[s].round_cpu_ms;
      stats_.shard_cpu_ms[s] += shards_[s].round_cpu_ms;
      slowest = std::max(slowest, shards_[s].round_cpu_ms);
    }
    stats_.critical_path_ms += slowest;
    const double merge_start = thread_cpu_ms();
    try {
      merge_and_route();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(worker_error_mutex_);
      if (!worker_error_) worker_error_ = std::current_exception();
      break;
    }
    stats_.merge_ms += thread_cpu_ms() - merge_start;
  }

  stop_workers_ = true;
  round_start_->arrive_and_wait();
  for (std::thread& worker : workers) worker.join();
  for (const Shard& shard : shards_) stats_.bound_ms += shard.bound_cpu_ms;
  if (worker_error_) std::rethrow_exception(worker_error_);
}

// ---------------------------------------------------------------------------
// Worker side (shard-local)
// ---------------------------------------------------------------------------

std::uint64_t ParallelSimulator::mint_id(Shard& shard) {
  return shard.id_band | ++shard.next_id;
}

std::uint64_t ParallelSimulator::push_local_child(Shard& shard,
                                                  LaneEvent event) {
  event.id = mint_id(shard);
  event.seq = kUnresolvedSeq;
  const std::uint64_t id = event.id;
  shard.children.push_back(id);
  shard.lane.push(std::move(event));
  return id;
}

void ParallelSimulator::log_trace(Shard& shard, TimeMs now,
                                  TraceEventKind kind, MessageId message,
                                  BrokerId broker, BrokerId neighbor,
                                  SubscriberId subscriber, bool valid) {
  if (trace_ == nullptr) return;
  LoggedOp op;
  op.kind = LoggedOp::Kind::kTrace;
  op.n = shard.traces.size();
  shard.traces.push_back(
      TraceEvent{now, kind, message, broker, neighbor, subscriber, valid});
  shard.ops.push_back(op);
}

void ParallelSimulator::process_shard(std::size_t shard_index,
                                      TimeMs horizon) {
  Shard& shard = shards_[shard_index];
  LaneQueue& lane = shard.lane;
  while (!lane.empty() && lane.top().time < horizon &&
         lane.top().time <= options_.horizon) {
    LaneEvent event = lane.pop();
    Record record;
    record.time = event.time;
    record.event_id = event.id;
    record.seq = event.seq;
    record.half = event.half;
    record.ops_begin = static_cast<std::uint32_t>(shard.ops.size());
    record.children_begin =
        static_cast<std::uint32_t>(shard.children.size());
    switch (event.type) {
      case EventType::kPublish:
        handle_publish(shard, event);
        break;
      case EventType::kArrival:
        handle_arrival(shard, event);
        break;
      case EventType::kProcessed:
        handle_processed(shard, event);
        break;
      case EventType::kSendComplete:
        handle_send_complete(shard, event);
        break;
      case EventType::kLinkFailure:
        handle_link_failure(shard, event);
        break;
    }
    record.ops_end = static_cast<std::uint32_t>(shard.ops.size());
    record.children_end = static_cast<std::uint32_t>(shard.children.size());
    shard.records.push_back(record);
  }
}

void ParallelSimulator::handle_publish(Shard& shard, LaneEvent& event) {
  LoggedOp op;
  op.kind = LoggedOp::Kind::kPublish;
  op.n = event.interested;
  op.a = event.potential;
  shard.ops.push_back(op);
  log_trace(shard, event.time, TraceEventKind::kPublish, event.message->id(),
            event.broker);

  LaneEvent arrival;
  arrival.time = event.time;
  arrival.type = EventType::kArrival;
  arrival.broker = event.broker;
  arrival.message = std::move(event.message);
  push_local_child(shard, std::move(arrival));
}

void ParallelSimulator::handle_arrival(Shard& shard, LaneEvent& event) {
  LoggedOp op;
  op.kind = LoggedOp::Kind::kReception;
  shard.ops.push_back(op);
  log_trace(shard, event.time, TraceEventKind::kArrival, event.message->id(),
            event.broker);
  if (has_faults_ && broker_down_[event.broker] != 0) {
    // The copy reached a crashed broker: nothing is listening.
    LoggedOp loss;
    loss.kind = LoggedOp::Kind::kLoss;
    loss.n = 1;
    shard.ops.push_back(loss);
    log_trace(shard, event.time, TraceEventKind::kLoss, event.message->id(),
              event.broker);
    return;
  }
  if (options_.dedup_arrivals &&
      !seen_[event.broker].insert(event.message->id())) {
    return;  // Duplicate copy over a redundant path; count it, drop it.
  }
  if (options_.serialize_processing) {
    if (processing_busy_[event.broker] != 0) {
      auto& pending = input_queues_[event.broker];
      pending.push_back(std::move(event.message));
      LoggedOp depth;
      depth.kind = LoggedOp::Kind::kInputDepth;
      depth.n = pending.size();
      shard.ops.push_back(depth);
      return;
    }
    processing_busy_[event.broker] = 1;
  }
  LaneEvent processed;
  processed.time = event.time + options_.processing_delay;
  processed.type = EventType::kProcessed;
  processed.broker = event.broker;
  processed.message = std::move(event.message);
  push_local_child(shard, std::move(processed));
}

void ParallelSimulator::handle_processed(Shard& shard, LaneEvent& event) {
  if (has_faults_ &&
      options_.faults->broker_cut_between(
          event.broker, event.time - options_.processing_delay, event.time)) {
    // The broker crashed while this message was in its processing stage —
    // the in-progress work is gone even if the broker already restarted.
    LoggedOp loss;
    loss.kind = LoggedOp::Kind::kLoss;
    loss.n = 1;
    shard.ops.push_back(loss);
    log_trace(shard, event.time, TraceEventKind::kLoss, event.message->id(),
              event.broker);
    return;
  }
  Broker& broker = brokers_[event.broker];
  log_trace(shard, event.time, TraceEventKind::kProcessed,
            event.message->id(), event.broker);
  const Broker::FanOut fanout = broker.process(event.message, event.time);

  for (const SubscriptionEntry* entry : fanout.local) {
    const TimeMs delay = event.message->elapsed(event.time);
    const TimeMs deadline = entry->effective_deadline(*event.message);
    LoggedOp op;
    op.kind = LoggedOp::Kind::kDelivery;
    op.a = delay;
    op.b = deadline;
    op.c = entry->subscription->price;
    shard.ops.push_back(op);
    log_trace(shard, event.time, TraceEventKind::kDeliver,
              event.message->id(), event.broker, kNoBroker,
              entry->subscription->subscriber, delay <= deadline);
  }
  if (trace_ != nullptr) {
    for (const Broker::QueueSlot slot : fanout.enqueued) {
      log_trace(shard, event.time, TraceEventKind::kEnqueue,
                event.message->id(), event.broker,
                broker.queue_at(slot).neighbor());
    }
  }
  start_sends(shard, event.broker, fanout.sendable, event.time);

  if (options_.serialize_processing) {
    auto& pending = input_queues_[event.broker];
    if (pending.empty()) {
      processing_busy_[event.broker] = 0;
    } else {
      LaneEvent next;
      next.time = event.time + options_.processing_delay;
      next.type = EventType::kProcessed;
      next.broker = event.broker;
      next.message = std::move(pending.front());
      pending.pop_front();
      push_local_child(shard, std::move(next));
    }
  }
}

void ParallelSimulator::start_sends(Shard& shard, BrokerId broker_id,
                                    std::span<const Broker::QueueSlot> slots,
                                    TimeMs now) {
  const std::vector<EdgeId>& true_edges = true_edge_by_slot_[broker_id];
  shard.live_slots.clear();
  if (shard.dead.none() && (!has_faults_ || down_.none())) {
    shard.live_slots.assign(slots.begin(), slots.end());
  } else {
    for (const Broker::QueueSlot slot : slots) {
      const EdgeId true_edge = true_edges[slot];
      if (!shard.dead.none() && shard.dead.test(true_edge)) {
        drain_dead_slot(shard, broker_id, slot, now);
      } else if (has_faults_ && down_.test(true_edge)) {
        // Fault-timeline outage: hold the copies; the recovery batch (or a
        // post-flap completion) kicks this queue again.
      } else {
        shard.live_slots.push_back(slot);
      }
    }
  }
  if (shard.live_slots.empty()) return;
  Broker& broker = brokers_[broker_id];

  // The dispatch pool is the sequential engine's intra-run parallelism; the
  // sharded engine brings its own and keeps per-queue work on this thread.
  broker.take_next(shard.live_slots, now, options_.purge, shard.dispatch,
                   nullptr, trace_ != nullptr);

  for (Broker::Dispatch& dispatch : shard.dispatch) {
    if (dispatch.purge.expired != 0 || dispatch.purge.hopeless != 0) {
      LoggedOp op;
      op.kind = LoggedOp::Kind::kPurge;
      op.n = dispatch.purge.expired;
      op.n2 = dispatch.purge.hopeless;
      shard.ops.push_back(op);
    }
    for (const MessageId id : dispatch.purged_ids) {
      log_trace(shard, now, TraceEventKind::kPurge, id, broker_id,
                dispatch.neighbor);
    }
    if (!dispatch.chosen.has_value()) continue;  // Purge emptied the queue.
    log_trace(shard, now, TraceEventKind::kSendStart,
              dispatch.chosen->message->id(), broker_id, dispatch.neighbor);

    const EdgeId true_edge = true_edges[dispatch.slot];
    const LinkModel& link = topology_->graph.edge(true_edge).link;
    const bool cut = is_cut_.test(true_edge);
    double rate;
    if (plan_.shard_count() > 1) {
      // Consume the pre-drawn rate and replenish it (stream position k for
      // send k, exactly like the sequential engine's lazy draw); the fresh
      // rate feeds the lazy lookahead heaps.
      rate = next_rate_[true_edge];
      next_rate_[true_edge] = link.sample_rate(link_rngs_[true_edge].rng);
      push_rate(true_edge, next_rate_[true_edge]);
    } else {
      rate = link.sample_rate(link_rngs_[true_edge].rng);
    }
    // Same expression as LinkModel::sample_send_time — bit-identical
    // durations to the sequential engine's lazy draw.
    const TimeMs duration = dispatch.chosen->message->size_kb() * rate;

    broker.queue_at(dispatch.slot).set_link_busy(true);
    if (options_.online_estimation) {
      send_started_[true_edge] = now;
    }
    if (has_faults_) {
      send_begin_[true_edge] = now;
    }
    LaneEvent complete;
    complete.time = now + duration;
    complete.type = EventType::kSendComplete;
    complete.broker = broker_id;
    complete.neighbor = dispatch.neighbor;
    complete.message = std::move(dispatch.chosen->message);
    if (plan_.shard_count() > 1 && complete.time < death_time_[true_edge] &&
        !(has_faults_ && options_.faults->edge_cut_between(
                             true_edge, now, complete.time))) {
      // The arrival instant is already known: deposit the arrival at send
      // start — into the destination shard's mailbox for cut edges, into
      // this very lane for internal ones.  Either way the destination
      // broker's future arrival becomes a *visible pending event*, which
      // is what lets the safe horizon reason per broker instead of
      // charging whole-shard worst cases; its sequence number is claimed
      // later by the completion's record (deposited_child), exactly where
      // the sequential engine pushes the arrival.
      LaneEvent arrival;
      arrival.time = complete.time;
      arrival.type = EventType::kArrival;
      arrival.broker = dispatch.neighbor;
      arrival.message = complete.message;
      arrival.id = mint_id(shard);
      complete.deposited_child = arrival.id;
      // Push order matters at the shared completion instant: the
      // completion must take the smaller lane key so it pops (and assigns
      // the arrival's sequence) first.
      push_local_child(shard, std::move(complete));
      if (cut) {
        mailbox(shard.index, plan_.shard_of(dispatch.neighbor))
            .push(std::move(arrival));
      } else {
        shard.lane.push(std::move(arrival));
      }
      continue;
    }
    push_local_child(shard, std::move(complete));
  }
}

void ParallelSimulator::handle_send_complete(Shard& shard, LaneEvent& event) {
  Broker& broker = brokers_[event.broker];
  const Broker::QueueSlot slot = broker.slot_of(event.neighbor);
  OutputQueue& out = broker.queue_at(slot);
  out.set_link_busy(false);

  const EdgeId true_edge = true_edge_by_slot_[event.broker][slot];

  if (!shard.dead.none() && shard.dead.test(true_edge)) {
    // Cut mid-flight: the copy is lost (nothing was deposited — the death
    // instant was known at send start), and the queue is unreachable.
    LoggedOp op;
    op.kind = LoggedOp::Kind::kLoss;
    op.n = 1;
    shard.ops.push_back(op);
    log_trace(shard, event.time, TraceEventKind::kLoss, event.message->id(),
              event.broker, event.neighbor);
    drain_dead_slot(shard, event.broker, slot, event.time);
    return;
  }
  if (has_faults_ && options_.faults->edge_cut_between(
                         true_edge, send_begin_[true_edge], event.time)) {
    // The link went down mid-transfer (possibly flapping back up before
    // the completion): the copy is lost but the queue holds the rest.
    // Nothing was deposited — the deposit guard consults the same static
    // timeline at send start.
    LoggedOp op;
    op.kind = LoggedOp::Kind::kLoss;
    op.n = 1;
    shard.ops.push_back(op);
    log_trace(shard, event.time, TraceEventKind::kLoss, event.message->id(),
              event.broker, event.neighbor);
    if (!down_.test(true_edge) && !out.empty()) {
      const Broker::QueueSlot resend[1] = {slot};
      start_sends(shard, event.broker, resend, event.time);
    }
    return;
  }
  log_trace(shard, event.time, TraceEventKind::kSendEnd, event.message->id(),
            event.broker, event.neighbor);

  if (options_.online_estimation) {
    RateEstimator& estimator = estimators_[true_edge];
    estimator_live_[true_edge] = 1;
    estimator.observe(event.message->size_kb(),
                      event.time - send_started_[true_edge]);
    out.set_believed_link(
        estimator.estimate(believed_->edge(out.edge()).link.params()));
  }

  if (plan_.shard_count() > 1) {
    // The arrival was deposited at send start (mailbox or own lane); claim
    // its sequence slot here, in the position the sequential engine pushes
    // it.
    assert(event.deposited_child != 0);
    shard.children.push_back(event.deposited_child);
  } else {
    LaneEvent arrival;
    arrival.time = event.time;
    arrival.type = EventType::kArrival;
    arrival.broker = event.neighbor;
    arrival.message = std::move(event.message);
    push_local_child(shard, std::move(arrival));
  }

  if (!out.empty()) {
    const Broker::QueueSlot resend[1] = {slot};
    start_sends(shard, event.broker, resend, event.time);
  }
}

void ParallelSimulator::drain_dead_queue(Shard& shard, BrokerId broker_id,
                                         BrokerId neighbor, TimeMs now) {
  const Broker::QueueSlot slot = brokers_[broker_id].slot_of(neighbor);
  if (slot == Broker::kNoSlot) return;
  drain_dead_slot(shard, broker_id, slot, now);
}

void ParallelSimulator::drain_dead_slot(Shard& shard, BrokerId broker_id,
                                        Broker::QueueSlot slot, TimeMs now) {
  OutputQueue& out = brokers_[broker_id].queue_at(slot);
  if (trace_ != nullptr) {
    for (const QueuedMessage& queued : out.messages()) {
      log_trace(shard, now, TraceEventKind::kLoss, queued.message->id(),
                broker_id, out.neighbor());
    }
  }
  const std::size_t dropped = out.clear();
  if (dropped > 0) {
    LoggedOp op;
    op.kind = LoggedOp::Kind::kLoss;
    op.n = dropped;
    shard.ops.push_back(op);
  }
}

void ParallelSimulator::handle_link_failure(Shard& shard,
                                            const LaneEvent& event) {
  // event.broker is always the *local* broker of this half (the a-side on
  // shard(a), the b-side on shard(b)); a same-shard failure is one event
  // handling both sides, like the sequential engine.
  const BrokerId local = event.broker;
  const BrokerId remote = event.neighbor;
  // Both halves mark both directions in their private flag copy; a shard
  // only ever *tests* edges its own brokers send on.
  const EdgeId forward = topology_->graph.edge_id(local, remote);
  if (forward != kNoEdge) shard.dead.set(forward);
  const EdgeId backward = topology_->graph.edge_id(remote, local);
  if (backward != kNoEdge) shard.dead.set(backward);

  drain_dead_queue(shard, local, remote, event.time);
  if (plan_.shard_of(local) == plan_.shard_of(remote)) {
    drain_dead_queue(shard, remote, local, event.time);
  }
}

}  // namespace bdps
