// Sharded parallel discrete-event engine, bitwise-identical to Simulator.
//
// ParallelSimulator partitions the brokers into P shards (ShardPlan), gives
// each shard its own event lane (LaneQueue) plus one SPSC mailbox per
// destination shard, and advances all lanes in lock-step *conservative
// windows*:
//
//   round:   every shard, on its own thread, pops and handles its lane's
//            events with time < H.  The safe horizon H bounds the earliest
//            instant any cross-cut arrival could still carry: a cut-edge
//            send at broker b starts no earlier than b's next pending
//            event, or — reached through the shard interior — the
//            cheapest (event-pending broker -> internal transmission ->
//            processing stage) chain; adding the cut edge's own pre-drawn
//            transmission time gives its bound, and H is the minimum over
//            cut edges.  Per-broker granularity is what makes windows wide
//            on large graphs: idle brokers (the vast majority) do not
//            constrain H at all, which is why arrivals are deposited into
//            lanes at *send start* — a future arrival is a visible pending
//            event at its destination broker.  Each shard computes its own
//            bound contribution at the end of its round (pruned walk of
//            the lane's broker index), so the horizon pass parallelises
//            with the lanes.
//   barrier: a coordinator merges the shards' per-round logs back into the
//            exact global (time, sequence) order of the sequential engine,
//            replays the order-sensitive side effects (collector, trace)
//            in that order, and routes mailbox deposits into their
//            destination lanes (folding the deposits' own horizon
//            contributions, since they land after the workers' bound pass).
//
// Bitwise identity with Simulator rests on three mechanisms:
//
//   1.  Per-edge RNG streams (shared with Simulator since the same PR): the
//       k-th send on an edge consumes the k-th sample of that edge's
//       stream, so draw *values* are independent of cross-edge
//       interleaving.  The parallel engine pre-draws every edge's next
//       rate — the same stream position the sequential engine would
//       consume lazily — which is what makes the lookahead *exact* rather
//       than a distribution floor.
//   2.  Deposit-at-send-start: when a send starts, its completion instant
//       is already known, so the arrival event is shipped immediately —
//       through the SPSC mailbox for cut edges, into the own lane for
//       internal ones (unless the failure plan kills the link mid-flight).
//       The safe horizon guarantees cross-shard deposits land beyond every
//       destination's current window; the sender-side kSendComplete event
//       keeps only the local bookkeeping (busy flag, estimator, loss
//       handling, resend) plus the claim on the arrival's sequence slot.
//   3.  Sequence reconstruction: every handled event produces a barrier
//       record carrying its (time, seq, failure-half) key and the ids of the
//       events it pushed, in push order.  The merge consumes the per-shard
//       record logs (each already in local pop order) by ascending key,
//       assigning fresh sequence numbers to children exactly as the
//       sequential heap would have — records whose own seq is still pending
//       resolve it from their parent mid-merge (provably available before
//       they can become the merge minimum).
//
// Determinism: nothing observable depends on thread timing — mailboxes are
// drained only at barriers, per-round worker processing is a pure function
// of the round's inputs, and the merge order is a pure function of the
// logs.  The collector/trace output is the sequential engine's, bit for
// bit, for every shard count and every shard plan; the golden suite pins
// this at P in {1, 2, 4, 7} (tests/sim/parallel/).
//
// Known edge of the contract: deposit-at-send-start assigns an arrival's
// lane position when the send *starts*, so an event whose timestamp
// collides bit-for-bit with a deposited arrival's completion instant —
// cross-shard (two deposits in one destination lane) or same-shard (an
// internal deposit vs a child pushed between the send's start and its
// completion) — tie-breaks by deposit/push order instead of the sequential
// push order.  Such collisions require independently-derived time sums to
// agree to the last bit; none of the pinned workloads exhibits one.
//
// The engine requires every scheduled message to have a positive size
// (lookahead would otherwise be zero and windows could not advance);
// construction with shards > 1 rejects non-positive sizes at run().
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "broker/broker.h"
#include "common/flat_set.h"
#include "common/spsc_queue.h"
#include "common/window_barrier.h"
#include "sim/collector.h"
#include "sim/parallel/lane.h"
#include "sim/parallel/seq_map.h"
#include "sim/parallel/shard_plan.h"
#include "sim/simulator.h"
#include "stats/rate_estimator.h"
#include "topology/edge_map.h"
#include "trace/trace.h"

#include <deque>
#include <exception>
#include <mutex>
#include <span>

namespace bdps {

class ParallelSimulator {
 public:
  /// Same contract as Simulator's constructor; `options.shards` selects the
  /// lane count (0 and 1 both mean one lane; the value is clamped to the
  /// broker count).  The shard plan is ShardPlan::greedy_edge_cut.
  ParallelSimulator(const Topology* topology, const Graph* believed,
                    const RoutingFabric* fabric, const Strategy* strategy,
                    SimulatorOptions options, Rng link_rng);

  /// Schedules a publication; call before run() (like Simulator).
  void schedule_publish(std::shared_ptr<const Message> message);

  /// Attaches an event trace (optional).  Replayed at window barriers in
  /// exact sequential order, so sinks need no thread safety.
  void set_trace(TraceSink* sink) { trace_ = sink; }

  /// Runs to completion (all lanes drained or horizon reached).
  void run();

  TimeMs now() const { return now_; }
  const Collector& collector() const { return collector_; }
  const Broker& broker(BrokerId id) const { return brokers_[id]; }
  const ShardPlan& plan() const { return plan_; }

  /// Per-run engine accounting, collected with per-thread CPU clocks so the
  /// numbers stay meaningful on an oversubscribed (or single-core) host:
  /// `critical_path_ms + merge_ms` models the wall time of a perfectly
  /// scheduled P-core execution, `worker_cpu_ms` is the total work done in
  /// lanes (the sequential engine's share of it is the speedup numerator).
  struct EngineStats {
    std::size_t rounds = 0;
    /// Sum over rounds of the slowest lane's CPU time (ms).
    double critical_path_ms = 0.0;
    /// Total lane CPU across all shards and rounds (ms).
    double worker_cpu_ms = 0.0;
    /// Coordinator CPU in merge + routing (serial section, ms).
    double merge_ms = 0.0;
    /// Coordinator CPU computing safe horizons (serial section, ms).
    double horizon_ms = 0.0;
    /// Worker CPU spent in per-shard bound passes (parallel section, ms).
    double bound_ms = 0.0;
    /// Total lane CPU per shard (load-balance diagnostic).
    std::vector<double> shard_cpu_ms;
  };
  const EngineStats& stats() const { return stats_; }

  /// Online estimator for a true-graph directed link; nullptr when
  /// online_estimation is off or the link never carried a send.
  const RateEstimator* estimator(EdgeId edge) const;

 private:
  /// One order-sensitive side effect of a handled event, replayed by the
  /// coordinator in exact sequential order at the window barrier.
  struct LoggedOp {
    enum class Kind : std::uint8_t {
      kPublish,     // a = interested, b = potential earning.
      kReception,   //
      kDelivery,    // a = delay, b = effective deadline, c = price.
      kPurge,       // n = expired, n2 = hopeless.
      kLoss,        // n = destroyed copies.
      kInputDepth,  // n = input-queue depth observed.
      kTrace,       // n = index into the shard's trace arena.
    };
    Kind kind = Kind::kReception;
    double a = 0.0;
    double b = 0.0;
    double c = 0.0;
    std::size_t n = 0;
    std::size_t n2 = 0;
  };

  /// Barrier record of one handled event: its global order key plus spans
  /// into the shard's op/child arenas.
  struct Record {
    TimeMs time = 0.0;
    std::uint64_t event_id = 0;
    std::uint64_t seq = kUnresolvedSeq;
    std::uint32_t half = 0;
    std::uint32_t ops_begin = 0;
    std::uint32_t ops_end = 0;
    std::uint32_t children_begin = 0;
    std::uint32_t children_end = 0;
  };

  /// Lazy min-heap entry: the pre-drawn rate of an edge's next send at the
  /// time the entry was pushed; stale once next_rate_ moved on.
  struct RateEntry {
    double rate = 0.0;
    EdgeId edge = kNoEdge;
  };

  /// Rng padded to its own cache line: per-edge streams of neighbouring
  /// edge ids are written by different shards.
  struct alignas(64) PaddedRng {
    Rng rng{0};
  };

  struct Shard {
    std::size_t index = 0;
    LaneQueue lane;
    /// Private dead-link flags: every failure half sets both directions in
    /// its own copy, and a shard only ever tests edges its brokers send on.
    EdgeFlags dead;
    /// Round log arenas (cleared, not freed, each round).  Trace rows live
    /// in their own arena so untraced runs pay nothing for them.
    std::vector<Record> records;
    std::vector<LoggedOp> ops;
    std::vector<std::uint64_t> children;
    std::vector<TraceEvent> traces;
    /// Shard-banded event-id allocation (band 0 is the coordinator's).
    std::uint64_t id_band = 0;
    std::uint64_t next_id = 0;
    /// Dispatch scratch (mirrors Simulator's live_slots_/dispatch_).
    std::vector<Broker::QueueSlot> live_slots;
    std::vector<Broker::Dispatch> dispatch;
    /// Cumulative CPU spent in compute_shard_bound (diagnostic).
    double bound_cpu_ms = 0.0;
    /// This shard's contribution to the next round's safe horizon,
    /// computed by the worker at the end of its round (post-round lane
    /// state) so the horizon pass runs in parallel instead of serially.
    TimeMs next_bound = kNoDeadline;
    /// This round's lane CPU time (worker-written, coordinator-read at the
    /// barrier; thread CPU clock, so preemption does not inflate it).
    double round_cpu_ms = 0.0;
  };

  // ---- Worker-side (shard-local) machinery ----
  void process_shard(std::size_t shard_index, TimeMs horizon);
  void handle_publish(Shard& shard, LaneEvent& event);
  void handle_arrival(Shard& shard, LaneEvent& event);
  void handle_processed(Shard& shard, LaneEvent& event);
  void handle_send_complete(Shard& shard, LaneEvent& event);
  void handle_link_failure(Shard& shard, const LaneEvent& event);
  void start_sends(Shard& shard, BrokerId broker,
                   std::span<const Broker::QueueSlot> slots, TimeMs now);
  void drain_dead_queue(Shard& shard, BrokerId broker, BrokerId neighbor,
                        TimeMs now);
  void drain_dead_slot(Shard& shard, BrokerId broker, Broker::QueueSlot slot,
                       TimeMs now);
  std::uint64_t push_local_child(Shard& shard, LaneEvent event);
  std::uint64_t mint_id(Shard& shard);

  void log_trace(Shard& shard, TimeMs now, TraceEventKind kind,
                 MessageId message, BrokerId broker,
                 BrokerId neighbor = kNoBroker, SubscriberId subscriber = -1,
                 bool valid = false);

  // ---- Coordinator-side machinery ----
  void build_initial_lanes();
  /// Folds the workers' per-shard bounds + the routed-deposit corrections
  /// into the round's global horizon, capped at the next fault batch's
  /// instant (kNoDeadline when no batch pends) — rounds never span a batch.
  void fold_horizon(TimeMs batch_at);
  /// Instant of the next unapplied fault batch; kNoDeadline when none is
  /// left (or the next one lies beyond options_.horizon).
  TimeMs next_batch_time() const;
  /// True when no lane holds an event strictly before `at` — the batch's
  /// reserved sequence number precedes every ordinary event's, so at its
  /// own instant it is the global minimum.
  bool batch_due(TimeMs at) const;
  /// Applies the next fault batch between rounds: the coordinator-side
  /// mirror of Simulator::handle_fault (identical canonical order), with
  /// collector/trace side effects applied directly — every earlier event
  /// has already merged — and child sequence numbers assigned inline.
  void apply_fault_batch();
  /// Coordinator-side mirrors of drain_dead_slot / the recovery kick's
  /// single-slot start_sends (direct side effects, band-0 event ids).
  void coordinator_drain_slot(BrokerId broker, Broker::QueueSlot slot);
  void coordinator_start_sends(BrokerId broker, Broker::QueueSlot slot);
  /// Worker-side: this shard's minimum cut-edge bound over its pending
  /// brokers (direct terms) and intra-shard chains.
  void compute_shard_bound(Shard& shard);
  bool any_runnable() const;
  void merge_and_route();
  void replay(const Shard& shard, const LoggedOp& op);

  /// Lazy min-rate heap helpers (see the .cpp's horizon notes).
  void push_rate(EdgeId edge, double rate);
  double lazy_min_rate(std::vector<RateEntry>& heap) const;

  SpscQueue<LaneEvent>& mailbox(std::size_t from, std::size_t to) {
    return mailboxes_[from * plan_.shard_count() + to];
  }

  const Topology* topology_;
  const Graph* believed_;
  const RoutingFabric* fabric_;
  SimulatorOptions options_;
  ShardPlan plan_;

  std::vector<Broker> brokers_;
  Collector collector_;
  TimeMs now_ = 0.0;
  TraceSink* trace_ = nullptr;
  EngineStats stats_;

  /// Same per-edge stream derivation as Simulator (see simulator.h).
  std::vector<PaddedRng> link_rngs_;
  std::vector<std::vector<EdgeId>> true_edge_by_slot_;
  EdgeMap<TimeMs> send_started_;
  EdgeMap<RateEstimator> estimators_;
  /// Byte- (not bit-) per-edge liveness: bit flags would race across shards.
  EdgeMap<std::uint8_t> estimator_live_;
  std::vector<FlatIdSet> seen_;
  std::vector<std::deque<std::shared_ptr<const Message>>> input_queues_;
  /// uint8, not vector<bool>: neighbouring brokers may live on different
  /// shards and vector<bool> packs 64 brokers into one racing word.
  std::vector<std::uint8_t> processing_busy_;

  /// Cut-edge membership (read-only after construction) and per-cut-edge
  /// lookahead state.
  EdgeFlags is_cut_;
  EdgeMap<double> next_rate_;
  /// Earliest failure instant covering each directed edge (+inf if none);
  /// decides at send start whether a cut-edge arrival may be deposited.
  EdgeMap<TimeMs> death_time_;

  /// Fault-timeline state (mirrors Simulator's; populated only when a
  /// non-empty CompiledFaults plan is attached).  down_/broker_down_ are
  /// mutated exclusively by the coordinator between rounds — fold_horizon
  /// caps every round at the next batch instant, so a round never observes
  /// a transition — and read racelessly by workers mid-round; send_begin_
  /// is written only by the owning edge's source-shard worker (or the
  /// coordinator, at a barrier).
  bool has_faults_ = false;
  EdgeFlags down_;
  std::vector<std::uint8_t> broker_down_;
  EdgeMap<TimeMs> send_begin_;
  /// Next unapplied batch in options_.faults->batches().
  std::size_t batch_cursor_ = 0;
  /// Coordinator dispatch scratch for recovery kicks.
  std::vector<Broker::QueueSlot> coord_slots_;
  std::vector<Broker::Dispatch> coord_dispatch_;
  /// CSR of each broker's *cut* out-edges (with the destination shard
  /// pre-resolved) — the safe-horizon pass walks the cut edges of
  /// event-pending brokers only, so idle regions of the graph never narrow
  /// the window.
  std::vector<std::uint32_t> cut_out_offset_;
  std::vector<EdgeId> cut_out_edges_;
  std::vector<std::uint32_t> cut_out_dst_shard_;
  /// Lazy min-heaps over the pre-drawn next-send rates: one per broker for
  /// its *internal* out-edges (the chain lower bound), one per
  /// (source shard, destination shard) pair for the cut edges.  Redraws
  /// push fresh entries; stale entries fall out on pop.  Written by the
  /// owning shard's worker, read/pruned by the coordinator — barrier-
  /// synchronised, never concurrent.
  std::vector<std::vector<RateEntry>> broker_rate_heap_;
  std::vector<std::vector<RateEntry>> pair_rate_heap_;

  std::vector<Shard> shards_;
  std::vector<SpscQueue<LaneEvent>> mailboxes_;

  /// Pending publishes until run(); drained into the lanes with their
  /// precomputed match_all results.
  std::vector<std::shared_ptr<const Message>> pending_publishes_;
  double min_size_kb_ = 0.0;

  /// Global sequence counter (the sequential heap's push order).
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_initial_id_ = 1;
  /// Child-id -> final-seq resolution map.  Persistent across rounds (a
  /// deposit's sequence is assigned when its sender-side completion record
  /// merges, possibly several windows after the deposit shipped).
  FlatSeqMap resolved_;
  std::vector<std::size_t> merge_cursor_;

  // ---- Round synchronisation (P > 1 only) ----
  /// The current round's (global) safe horizon.
  TimeMs round_horizon_ = 0.0;
  /// Horizon correction for deposits routed at the last barrier (their
  /// destination lanes changed after the workers computed their bounds).
  TimeMs deposit_bound_ = kNoDeadline;
  bool stop_workers_ = false;
  std::unique_ptr<WindowBarrier> round_start_;
  std::unique_ptr<WindowBarrier> round_end_;
  std::exception_ptr worker_error_;
  std::mutex worker_error_mutex_;
};

}  // namespace bdps
