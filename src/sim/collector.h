// Metrics collection for one simulation run.
//
// Tracks the three evaluation metrics of §6.1 —
//   * delivery rate (eq. 1): sum(ds_i) / sum(ts_i),
//   * total earning (eq. 2): sum over valid deliveries of price(s),
//   * message number: every message reception by a broker —
// plus diagnostic counters (purges, latency moments) used by the tests and
// the EXPERIMENTS.md narrative.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"
#include "scheduling/purge.h"
#include "stats/welford.h"

namespace bdps {

class Collector {
 public:
  /// Called once per published message with ts_i (the number of interested
  /// subscribers system-wide) and the earning ceiling (sum of their prices).
  void on_publish(std::size_t interested, double potential_earning);

  /// Called on every message reception by a broker.
  void on_reception() { ++receptions_; }

  /// Called when an edge broker hands a message to a local subscriber.
  void on_delivery(TimeMs delay, TimeMs effective_deadline, double price);

  /// Per-price-tier breakdown of an SSD run (which tiers actually earn?).
  struct TierStats {
    std::size_t deliveries = 0;
    std::size_t valid = 0;
    double earning = 0.0;
  };

  void on_purge(const PurgeStats& stats) { purges_ += stats; }

  /// Copies destroyed by link/broker failures (failure injection).
  void on_loss(std::size_t copies) { lost_copies_ += copies; }

  /// Observes an input-queue depth (serialized processing only); tracks
  /// the maximum — footnote 2's "rarely happens" claim, quantified.
  void on_input_queue_depth(std::size_t depth) {
    if (depth > max_input_queue_) max_input_queue_ = depth;
  }
  std::size_t max_input_queue() const { return max_input_queue_; }

  // ---- Aggregates ----

  std::size_t published() const { return published_; }
  std::size_t receptions() const { return receptions_; }
  std::size_t deliveries() const { return deliveries_; }
  std::size_t valid_deliveries() const { return valid_deliveries_; }
  std::size_t total_interested() const { return total_interested_; }
  const PurgeStats& purges() const { return purges_; }
  std::size_t lost_copies() const { return lost_copies_; }

  /// Eq. (1); 0 when nothing was offered.
  double delivery_rate() const;

  /// Eq. (2) over valid deliveries.
  double earning() const { return earning_; }

  /// Sum of price over every (message, interested subscriber) pair — the
  /// earning an oracle with infinite bandwidth would collect.
  double potential_earning() const { return potential_earning_; }

  /// Delay statistics over *valid* deliveries.
  const Welford& valid_delay() const { return valid_delay_; }

  /// Tier breakdown keyed by price (one entry per distinct price seen).
  const std::map<double, TierStats>& tiers() const { return tiers_; }

 private:
  std::size_t published_ = 0;
  std::size_t receptions_ = 0;
  std::size_t deliveries_ = 0;
  std::size_t valid_deliveries_ = 0;
  std::size_t total_interested_ = 0;
  double earning_ = 0.0;
  double potential_earning_ = 0.0;
  PurgeStats purges_;
  std::size_t lost_copies_ = 0;
  std::size_t max_input_queue_ = 0;
  Welford valid_delay_;
  std::map<double, TierStats> tiers_;
};

}  // namespace bdps
