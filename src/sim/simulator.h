// Discrete-event simulator of the broker overlay (§6.1's evaluation rig).
//
// Wires Brokers, the RoutingFabric and a Scheduler over an EventQueue.
// Time advances through four event types (publish, arrival, processed,
// send-complete); sends occupy their link for `size * TR` where TR is
// sampled per send from the *true* link model, while every scheduling
// decision uses the brokers' *believed* parameters — the gap between the
// two is the estimation ablation.
//
// Per-link state (in-flight send start, online estimator, dead-link bit)
// lives in flat arrays indexed by the true graph's EdgeId; the broker's
// queue slots are resolved to true edge ids once at construction, so the
// hot loop's failure kills, dead-link checks and estimator updates are O(1)
// indexed loads with no map in sight.
#pragma once

#include <memory>
#include <vector>

#include <deque>
#include <utility>

#include "broker/broker.h"
#include "common/flat_set.h"
#include "common/thread_pool.h"
#include "sim/collector.h"
#include "sim/event_queue.h"
#include "sim/faults/timeline.h"
#include "stats/rate_estimator.h"
#include "topology/edge_map.h"
#include "trace/trace.h"

namespace bdps {

struct SimulatorOptions {
  /// Per-broker processing delay PD (§3.2; paper default 2 ms).
  TimeMs processing_delay = 2.0;
  /// Invalid-message purge policy (§5.4).
  PurgePolicy purge;
  /// Hard stop; events beyond this instant are not processed.  Guards
  /// against pathological configurations — normal runs drain naturally.
  TimeMs horizon = kNoDeadline;
  /// §3.2's measurement loop, made explicit: when true, every completed
  /// send feeds a per-link RateEstimator (Welford over ms/KB) and the
  /// queue's believed parameters — the basis of FT and of eq. (5) at *this*
  /// hop via the context — track the estimate instead of staying at their
  /// initial values.  Lets brokers recover from wrong initial beliefs.
  bool online_estimation = false;
  /// Samples before an estimate fully replaces the initial belief.
  std::size_t estimator_min_samples = 8;
  /// Drop duplicate arrivals of the same message at a broker (after
  /// counting the reception).  Required under multi-path routing, where a
  /// broker can legitimately receive a message over several links; harmless
  /// (and a no-op) under single-path routing.
  bool dedup_arrivals = false;
  /// Failure injection: links to kill mid-run (both directions).  A send in
  /// flight at the failure instant is lost; queued and future copies toward
  /// a dead link are dropped and counted as losses.  Routing tables are
  /// *not* recomputed — recovery, if any, comes from multi-path redundancy.
  std::vector<LinkFailure> failures;
  /// Compiled fault timeline (sim/faults/): link/broker down→up windows
  /// applied as atomic batches at their instants.  Unlike `failures`, a
  /// down link *holds* its queued copies until recovery (deadline pressure
  /// applies at the next pick); a crashed broker drops its queues and loses
  /// in-progress work, and restarts empty.  Shared by both engines so a
  /// storm replays bitwise at any shard count.  nullptr/empty = no faults.
  std::shared_ptr<const CompiledFaults> faults;
  /// When set, fault batches additionally repair this fabric's routing
  /// state incrementally (affected-subtree SPT recompute) as links go down
  /// and come back — brokers then forward along the repaired trees instead
  /// of holding copies toward dead links forever.  The fabric must be the
  /// one the brokers route with, built with repair enabled, and outlive
  /// the simulator.
  RoutingFabric* repair_fabric = nullptr;
  /// Serialize the processing stage: a broker processes one message at a
  /// time (each takes PD), arrivals wait in the fig. 2 *input queue*.  The
  /// paper ignores the input queue (footnote 2: processing outruns the
  /// network); turning this on lets that claim be checked rather than
  /// assumed — see SimResult::max_input_queue.
  bool serialize_processing = false;
  /// Optional worker pool for per-neighbour dispatch: at a link-free
  /// instant a broker's output queues are independent, so high-degree
  /// fan-outs (>= Broker::kParallelDispatchThreshold sendable neighbours)
  /// purge + pick in parallel.  RNG sampling and event pushes stay serial
  /// and ordered, so results are bitwise identical to the serial path.
  /// The pool must outlive the simulator.
  ThreadPool* dispatch_pool = nullptr;
  /// Event-lane count for the sharded engine (sim/parallel/).  0 (default)
  /// selects the sequential engine; >= 1 makes experiment/runner drive the
  /// run through ParallelSimulator with this many shards (clamped to the
  /// broker count).  Collector output is bitwise identical either way.
  std::size_t shards = 0;
};

class Simulator {
 public:
  /// `topology` provides the ground-truth links sends are sampled from;
  /// `believed` the parameters brokers schedule with (usually the same
  /// graph, and in any case one whose directed links all exist in the true
  /// graph); both must outlive the simulator, as must `fabric` and
  /// `strategy` (the shared scheduling policy every queue mints its
  /// SchedulerState from).
  Simulator(const Topology* topology, const Graph* believed,
            const RoutingFabric* fabric, const Strategy* strategy,
            SimulatorOptions options, Rng link_rng);

  /// Schedules the publication of `message` (its publish_time / publisher
  /// fields say when and where).  Call before run().
  void schedule_publish(std::shared_ptr<const Message> message);

  /// Attaches an event trace (optional; nullptr detaches).  Must outlive
  /// run().
  void set_trace(TraceSink* sink) { trace_ = sink; }

  /// Runs to completion (event queue drained or horizon reached).
  void run();

  TimeMs now() const { return now_; }
  const Collector& collector() const { return collector_; }
  const Broker& broker(BrokerId id) const { return brokers_[id]; }

  /// Online estimator for a directed link of the *true* graph, by edge id;
  /// nullptr when online_estimation is off, the id is out of range, or the
  /// link never carried a send.
  const RateEstimator* estimator(EdgeId edge) const;

 private:
  void trace(TraceEventKind kind, const Message& message, BrokerId broker,
             BrokerId neighbor = kNoBroker, SubscriberId subscriber = -1,
             bool valid = false);
  void trace_id(TraceEventKind kind, MessageId message, BrokerId broker,
                BrokerId neighbor);

  // Handlers take the popped event by mutable reference so terminal uses
  // can move the message payload onward instead of bumping its refcount.
  void handle_publish(Event& event);
  void handle_arrival(Event& event);
  void handle_processed(Event& event);
  void handle_send_complete(Event& event);
  void handle_link_failure(const Event& event);
  /// Applies one compiled fault batch: broker crashes (queues wiped), edge
  /// downs (hold semantics), recoveries (idle non-empty queues kick), and
  /// the optional incremental routing repair — in a canonical order both
  /// engines share.
  void handle_fault(const Event& event);
  /// Purges + picks each live (non-dead-link) slot queue (in parallel for
  /// high-degree fan-outs when options_.dispatch_pool is set), then
  /// serially samples send durations and pushes completion events in slot
  /// order.
  void start_sends(BrokerId broker, std::span<const Broker::QueueSlot> slots);
  /// Drops every queued copy on the (now dead) queue; counts losses.
  void drain_dead_queue(BrokerId broker, BrokerId neighbor);
  void drain_dead_slot(BrokerId broker, Broker::QueueSlot slot);

  const Topology* topology_;
  /// The graph scheduling beliefs were constructed from; also the online
  /// estimator's prior.
  const Graph* believed_;
  const RoutingFabric* fabric_;
  SimulatorOptions options_;
  /// One independent RNG stream per true directed edge, derived from the
  /// constructor's link_rng by repeated split().  The k-th send on an edge
  /// consumes the k-th sample of that edge's stream no matter how sends on
  /// *other* links interleave — the stream discipline that lets the sharded
  /// engine (sim/parallel/) reproduce this engine's output bit for bit.
  std::vector<Rng> link_rngs_;

  std::vector<Broker> brokers_;
  EventQueue events_;
  Collector collector_;
  TimeMs now_ = 0.0;

  /// true_edge_by_slot_[broker][slot]: id of the *true* directed link
  /// behind that broker's queue slot, resolved once at construction — the
  /// bridge from broker-local slots to the flat per-edge state below.
  std::vector<std::vector<EdgeId>> true_edge_by_slot_;
  /// Start time of the in-flight send per link (to compute its duration on
  /// completion without widening the Event struct); online estimation only.
  EdgeMap<TimeMs> send_started_;
  /// Per-link online estimators + which of them ever saw a send.
  EdgeMap<RateEstimator> estimators_;
  EdgeFlags estimator_live_;
  /// Links killed by failure injection (directed bits; a failure sets both
  /// directions).
  EdgeFlags dead_;
  /// Fault-timeline state (sized only when options_.faults is non-empty):
  /// currently-down directed edges (hold semantics — queues keep their
  /// copies, unlike dead_), currently-crashed brokers, and the start time
  /// of the in-flight send per edge (the (s, c] mid-flight cut test).
  bool has_faults_ = false;
  EdgeFlags down_;
  std::vector<std::uint8_t> broker_down_;
  EdgeMap<TimeMs> send_begin_;
  /// Per-broker set of already-processed message ids (dedup_arrivals).
  std::vector<FlatIdSet> seen_;
  /// Input queues (serialize_processing): pending arrivals per broker plus
  /// the busy flag of the single processing unit.
  std::vector<std::deque<std::shared_ptr<const Message>>> input_queues_;
  std::vector<bool> processing_busy_;
  TraceSink* trace_ = nullptr;
  /// Scratch reused across dispatches: the live (non-dead-link) subset of a
  /// fan-out and the per-queue take_next results.
  std::vector<Broker::QueueSlot> live_slots_;
  std::vector<Broker::Dispatch> dispatch_;
};

}  // namespace bdps
