// Text syntax for filters: `A1 < 5 && A2 >= 2.5 && sym == "HK.0005"`.
//
// Grammar (whitespace-insensitive):
//   filter     := predicate ( "&&" predicate )*
//   predicate  := ident op literal | ident "in" "[" literal "," literal "]"
//   op         := "<" | "<=" | ">" | ">=" | "==" | "!="
//   literal    := number | quoted string
//
// Used by examples and tests; the workload generator builds filters
// programmatically.
#pragma once

#include <stdexcept>
#include <string>

#include "message/filter.h"

namespace bdps {

/// Error thrown on malformed filter text; carries the offending position.
class FilterParseError : public std::runtime_error {
 public:
  FilterParseError(const std::string& what, std::size_t position)
      : std::runtime_error(what), position_(position) {}
  std::size_t position() const { return position_; }

 private:
  std::size_t position_;
};

/// Parses the syntax above; throws FilterParseError on malformed input.
Filter parse_filter(const std::string& text);

/// Parses a disjunction of conjunctive filters:
///   query := filter ( "||" filter )*
/// e.g. `A1 < 2 && A2 < 2 || A1 > 8`.  Returns one Filter per disjunct
/// (at least one); `&&` binds tighter than `||`, parentheses are not
/// supported (queries are written in disjunctive normal form).
std::vector<Filter> parse_disjunction(const std::string& text);

}  // namespace bdps
