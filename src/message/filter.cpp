#include "message/filter.h"

#include <sstream>

namespace bdps {

std::string op_name(Op op) {
  switch (op) {
    case Op::kLt:
      return "<";
    case Op::kLe:
      return "<=";
    case Op::kGt:
      return ">";
    case Op::kGe:
      return ">=";
    case Op::kEq:
      return "==";
    case Op::kNe:
      return "!=";
    case Op::kInRange:
      return "in";
  }
  return "?";
}

bool Predicate::matches_value(const Value& value) const {
  const int c = value.compare(operand);
  switch (op) {
    case Op::kLt:
      return c == -1;
    case Op::kLe:
      return c == -1 || c == 0;
    case Op::kGt:
      return c == 1;
    case Op::kGe:
      return c == 1 || c == 0;
    case Op::kEq:
      return c == 0;
    case Op::kNe:
      // A mixed-type comparison is incomparable, not "different"; stay
      // conservative and report no match.
      return c == -1 || c == 1;
    case Op::kInRange: {
      if (c == Value::kIncomparable) return false;
      const int c2 = value.compare(operand2);
      if (c2 == Value::kIncomparable) return false;
      return c >= 0 && c2 <= 0;
    }
  }
  return false;
}

bool Predicate::matches(const Message& message) const {
  const Value* value = message.find(attribute);
  return value != nullptr && matches_value(*value);
}

std::string Predicate::to_string() const {
  std::ostringstream os;
  if (op == Op::kInRange) {
    os << attribute << " in [" << operand.to_string() << ", "
       << operand2.to_string() << "]";
  } else {
    os << attribute << " " << op_name(op) << " " << operand.to_string();
  }
  return os.str();
}

Filter& Filter::where(std::string attribute, Op op, Value operand,
                      Value operand2) {
  predicates_.push_back(Predicate{std::move(attribute), op, std::move(operand),
                                  std::move(operand2)});
  return *this;
}

bool Filter::matches(const Message& message) const {
  for (const auto& predicate : predicates_) {
    if (!predicate.matches(message)) return false;
  }
  return true;
}

std::string Filter::to_string() const {
  if (predicates_.empty()) return "<any>";
  std::ostringstream os;
  for (std::size_t i = 0; i < predicates_.size(); ++i) {
    if (i > 0) os << " && ";
    os << predicates_[i].to_string();
  }
  return os.str();
}

}  // namespace bdps
