#include "message/value.h"

#include <sstream>

namespace bdps {

double Value::as_double() const {
  if (const auto* d = std::get_if<double>(&data_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&data_)) {
    return static_cast<double>(*i);
  }
  return 0.0;
}

const std::string& Value::as_string() const {
  static const std::string kEmpty;
  if (const auto* s = std::get_if<std::string>(&data_)) return *s;
  return kEmpty;
}

int Value::compare(const Value& other) const {
  if (is_string() != other.is_string()) return kIncomparable;
  if (is_string()) {
    const int c = as_string().compare(other.as_string());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  const double a = as_double();
  const double b = other.as_double();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

std::string Value::to_string() const {
  if (is_string()) return "\"" + as_string() + "\"";
  std::ostringstream os;
  if (const auto* i = std::get_if<std::int64_t>(&data_)) {
    os << *i;
  } else {
    os << as_double();
  }
  return os.str();
}

}  // namespace bdps
