// Content-based subscription filters.
//
// A filter is a conjunction of attribute predicates, e.g. the paper's
// workload subscriptions "A1 < x1 && A2 < x2".  Filters evaluate against a
// message head; a predicate on an attribute missing from the head fails
// (standard content-based semantics — a subscription only matches messages
// that actually carry the constrained attribute).
#pragma once

#include <string>
#include <vector>

#include "message/message.h"
#include "message/value.h"

namespace bdps {

enum class Op {
  kLt,       // attribute <  operand
  kLe,       // attribute <= operand
  kGt,       // attribute >  operand
  kGe,       // attribute >= operand
  kEq,       // attribute == operand
  kNe,       // attribute != operand
  kInRange,  // operand <= attribute <= operand2
};

/// Renders an operator for diagnostics ("<", "<=", ...).
std::string op_name(Op op);

struct Predicate {
  std::string attribute;
  Op op = Op::kLt;
  Value operand;
  Value operand2;  // Upper bound; only used by kInRange.

  /// Evaluates this predicate against one value.
  bool matches_value(const Value& value) const;

  /// Evaluates against a message head (missing attribute => false).
  bool matches(const Message& message) const;

  std::string to_string() const;
};

class Filter {
 public:
  Filter() = default;
  explicit Filter(std::vector<Predicate> predicates)
      : predicates_(std::move(predicates)) {}

  /// Fluent builder used by examples and tests.
  Filter& where(std::string attribute, Op op, Value operand,
                Value operand2 = Value());

  const std::vector<Predicate>& predicates() const { return predicates_; }
  bool empty() const { return predicates_.empty(); }
  std::size_t size() const { return predicates_.size(); }

  /// True when every predicate matches (an empty filter matches everything,
  /// which models a wildcard subscription).
  bool matches(const Message& message) const;

  std::string to_string() const;

 private:
  std::vector<Predicate> predicates_;
};

}  // namespace bdps
