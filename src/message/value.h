// Typed attribute values carried in message heads and filter operands.
//
// The paper's workload uses two double attributes (A1, A2); the library
// additionally supports integers and strings so the matching engine is a
// credible general-purpose content-based router.  Cross-type numeric
// comparison (int vs double) is defined; comparing a string with a number is
// simply "no match" rather than an error, matching pub/sub convention.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace bdps {

class Value {
 public:
  Value() : data_(0.0) {}
  Value(double v) : data_(v) {}                       // NOLINT(runtime/explicit)
  Value(std::int64_t v) : data_(v) {}                 // NOLINT(runtime/explicit)
  Value(int v) : data_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(std::string v) : data_(std::move(v)) {}       // NOLINT(runtime/explicit)
  Value(const char* v) : data_(std::string(v)) {}     // NOLINT(runtime/explicit)

  bool is_number() const { return !std::holds_alternative<std::string>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  /// Distinguishes the integer alternative inside is_number() — the wire
  /// format (net/wire.h) preserves the stored alternative bit-exactly
  /// instead of flattening everything to double.
  bool is_int() const { return std::holds_alternative<std::int64_t>(data_); }

  /// Integer view; only valid when is_int().
  std::int64_t as_int() const { return std::get<std::int64_t>(data_); }

  /// Numeric view; only valid when is_number().
  double as_double() const;

  /// String view; only valid when is_string().
  const std::string& as_string() const;

  /// Three-way comparison: -1, 0, +1; returns kIncomparable for mixed
  /// string/number comparisons.
  static constexpr int kIncomparable = 2;
  int compare(const Value& other) const;

  bool operator==(const Value& other) const { return compare(other) == 0; }

  /// Human-readable rendering for logs and examples.
  std::string to_string() const;

 private:
  std::variant<double, std::int64_t, std::string> data_;
};

}  // namespace bdps
