// Counting-based subscription matching index.
//
// Brokers match every processed message against their subscription table
// (§4.2); with thousands of subscriptions a linear scan of all filters is
// the broker's hottest loop.  This index implements the classic counting
// algorithm (Yan & Garcia-Molina):
//
//   * every (attribute, comparison) pair keeps its predicates sorted by
//     operand, so all satisfied less-than/greater-than predicates form a
//     contiguous run found by binary search;
//   * equality predicates hash on the operand;
//   * a per-candidate counter tracks how many of its predicates matched —
//     a filter matches when the count reaches its predicate total.
//
// Filters with non-indexable pieces (ranges over mixed types, etc.) fall
// back to direct evaluation, so the index is exactly equivalent to brute
// force (property-tested in tests/message/index_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "message/filter.h"
#include "message/message.h"

namespace bdps {

class SubscriptionIndex {
 public:
  using EntryId = std::size_t;

  SubscriptionIndex() = default;

  /// Registers a filter; returns a dense id that match() reports back.
  EntryId add(const Filter& filter);

  /// Registers an additional disjunct for an existing id: the id then
  /// matches when *any* of its registered conjunctive filters matches —
  /// OR-queries on top of the conjunctive counting index.
  void add_disjunct(EntryId id, const Filter& filter);

  /// Number of distinct ids (not internal disjuncts).
  std::size_t size() const { return external_count_; }

  /// Returns the ids of all subscriptions matching `message`, in ascending
  /// order, each at most once (even when several disjuncts fire).
  std::vector<EntryId> match(const Message& message) const;

  /// Brute-force evaluation of one registered id across its disjuncts
  /// (used by tests and fallback paths).
  bool matches_entry(EntryId id, const Message& message) const;

 private:
  struct NumericPredicateRef {
    double threshold;
    EntryId entry;
    bool inclusive;  // kLe/kGe include equality.
  };

  struct Entry {
    Filter filter;
    // Number of predicates resolved through the numeric/equality indexes;
    // the remainder (non-indexable) are re-evaluated directly.
    std::size_t indexed_predicates = 0;
    std::size_t direct_predicates = 0;
    // The user-visible id this internal (disjunct) entry belongs to.
    EntryId external = 0;
  };

  struct AttributeIndex {
    // Predicates `attr < c` / `attr <= c`, sorted ascending by threshold:
    // for value v the satisfied set is a suffix.
    std::vector<NumericPredicateRef> less_than;
    // Predicates `attr > c` / `attr >= c`, sorted ascending: satisfied set
    // is a prefix.
    std::vector<NumericPredicateRef> greater_than;
    // Equality on doubles is keyed by exact bit value — the workload draws
    // operands and attributes from the same generator when they are meant
    // to collide.
    std::map<double, std::vector<EntryId>> numeric_eq;
    std::map<std::string, std::vector<EntryId>> string_eq;
  };

  void index_predicate(const Predicate& predicate, EntryId internal_id,
                       Entry& entry);
  void add_internal(const Filter& filter, EntryId external);
  void rebuild_direct_only_cache() const;
  void ensure_sorted() const;

  std::size_t external_count_ = 0;

  std::vector<Entry> entries_;
  // Sorted lazily (ensure_sorted) so bulk adds stay O(n log n) total.
  mutable std::map<std::string, AttributeIndex> attributes_;
  mutable bool sorted_ = true;
  // Entries whose filters are empty (wildcards) match every message.
  std::vector<EntryId> wildcards_;
  // Entries with no indexable predicate; rebuilt lazily after adds.
  mutable std::vector<EntryId> direct_only_;
  mutable bool direct_only_cache_valid_ = true;
  // Scratch counters sized to entries_; mutable so match() stays const.
  mutable std::vector<std::uint32_t> counter_;
  mutable std::vector<std::uint32_t> generation_;
  mutable std::vector<EntryId> touched_;
  mutable std::uint32_t current_generation_ = 0;
};

}  // namespace bdps
