// Counting-based subscription matching index.
//
// Brokers match every processed message against their subscription table
// (§4.2); with thousands of subscriptions a linear scan of all filters is
// the broker's hottest loop.  This index implements the classic counting
// algorithm (Yan & Garcia-Molina):
//
//   * every (attribute, comparison) pair keeps its predicates sorted by
//     operand, so all satisfied less-than/greater-than predicates form a
//     contiguous run found by binary search;
//   * equality predicates hash on the operand;
//   * a per-candidate counter tracks how many of its predicates matched —
//     a filter matches when the count reaches its predicate total.
//
// Hot-path layout: attribute lookup is a hash probe (heterogeneous
// string_view keys, no per-match allocation), the satisfied runs are flat
// id arrays scanned branch-free (inclusive bounds are folded into the
// sorted keys via nextafter at insert time), the result buffer is reused
// across match() calls, and duplicate disjunct hits are suppressed by
// generation marks on external ids instead of a final sort + unique.
//
// Filters with non-indexable pieces (ranges over mixed types, non-finite
// operands, etc.) fall back to direct evaluation, so the index is exactly
// equivalent to brute force (property-tested in
// tests/message/index_test.cpp) for messages whose attribute names are
// unique — Message::find consults only the first occurrence of a repeated
// name, while the counting pass sees every occurrence, so heads with
// duplicate names are outside the equivalence contract (as before this
// layout).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "message/filter.h"
#include "message/message.h"

namespace bdps {

/// Transparent hash so unordered_map lookups accept string_view / char*
/// without materialising a std::string key.
struct StringViewHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

class SubscriptionIndex {
 public:
  using EntryId = std::size_t;

  /// Caller-owned match state, for concurrent readers over one *finalized*
  /// index (snapshot matching: many reactor workers share an immutable
  /// index, each bringing its own Scratch).  A Scratch adapts to any index
  /// it is handed — arrays grow on demand and the per-call generation bump
  /// makes stale state from another index (or a previous call) unreadable —
  /// so one Scratch can serve every shard of a sharded fabric in turn.
  struct Scratch {
    std::vector<std::uint64_t> counter_gen;
    std::vector<std::uint32_t> external_generation;
    std::vector<std::uint32_t> candidates;
    std::vector<EntryId> result;
    std::uint32_t generation = 0;
  };

  SubscriptionIndex() = default;

  /// Registers a filter; returns a dense id that match() reports back.
  EntryId add(const Filter& filter);

  /// Registers an additional disjunct for an existing id: the id then
  /// matches when *any* of its registered conjunctive filters matches —
  /// OR-queries on top of the conjunctive counting index.
  void add_disjunct(EntryId id, const Filter& filter);

  /// Number of distinct ids (not internal disjuncts).
  std::size_t size() const { return external_count_; }

  /// Sorts the numeric runs and builds every lazy cache now, so that the
  /// const match(message, scratch) overload never has to mutate the index.
  /// Call after the last add when the index is handed to concurrent
  /// readers; add()/add_disjunct() invalidate it again.
  void finalize();
  bool finalized() const {
    return sorted_ && direct_only_cache_valid_ && entry_map_valid_;
  }

  /// Returns the ids of all subscriptions matching `message`, each exactly
  /// once (even when several disjuncts fire), in ascending id order (the
  /// canonical match order every engine emits, keeping order-sensitive
  /// floating-point consumers bitwise comparable across engines).  The
  /// reference points into a scratch buffer reused by the next match()
  /// call on this index; copy it to keep it.
  const std::vector<EntryId>& match(const Message& message) const;

  /// Pure-read variant against caller-owned scratch: requires finalized().
  /// Touches no index state, so any number of threads may match the same
  /// index concurrently as long as each brings its own Scratch.  Returns a
  /// reference to scratch.result.
  const std::vector<EntryId>& match(const Message& message,
                                    Scratch& scratch) const;

  /// Direct evaluation of one registered id across its disjuncts (used by
  /// tests and fallback paths); only this id's filters are consulted.
  /// Read-only (and thus thread-safe) once finalized.
  bool matches_entry(EntryId id, const Message& message) const;

 private:
  struct Entry {
    Filter filter;
    // Number of predicates resolved through the numeric/equality indexes;
    // the remainder (non-indexable) are re-evaluated directly.
    std::size_t indexed_predicates = 0;
    std::size_t direct_predicates = 0;
    // The user-visible id this internal (disjunct) entry belongs to.
    EntryId external = 0;
  };

  /// Internal (disjunct) entry ids are stored 32-bit in the hot scan
  /// arrays to halve their cache footprint.
  using InternalId = std::uint32_t;

  struct AttributeIndex {
    // Build-side predicate lists: (adjusted key, internal id).  Inclusive
    // bounds are pre-folded into the key (kLe stores nextafter(c, +inf),
    // kGe stores nextafter(c, -inf)), so the match scan needs no
    // per-element inclusivity branch or key re-check.
    std::vector<std::pair<double, InternalId>> less_build;
    std::vector<std::pair<double, InternalId>> greater_build;
    // Match-side structure-of-arrays mirrors, rebuilt by ensure_sorted():
    // for value v the satisfied less-than set is the suffix with key > v,
    // the satisfied greater-than set is the prefix with key < v.
    std::vector<double> less_keys;
    std::vector<InternalId> less_entries;
    std::vector<double> greater_keys;
    std::vector<InternalId> greater_entries;
    // Equality on doubles is keyed by exact value — the workload draws
    // operands and attributes from the same generator when they are meant
    // to collide.
    std::unordered_map<double, std::vector<InternalId>> numeric_eq;
    std::unordered_map<std::string, std::vector<InternalId>, StringViewHash,
                       std::equal_to<>>
        string_eq;
  };

  void index_predicate(const Predicate& predicate, InternalId internal_id,
                       Entry& entry);
  void add_internal(const Filter& filter, EntryId external);
  void rebuild_direct_only_cache() const;
  void rebuild_entry_map() const;
  void ensure_sorted() const;
  const std::vector<EntryId>& match_core(const Message& message,
                                         Scratch& scratch) const;

  std::size_t external_count_ = 0;

  std::vector<Entry> entries_;
  // Internal (disjunct) entry ids per external id; lets matches_entry touch
  // only the queried id's filters.  Rebuilt lazily (matches_entry is a
  // test/fallback path) so bulk adds stay allocation-light.
  mutable std::vector<std::vector<EntryId>> internal_by_external_;
  mutable bool entry_map_valid_ = true;
  // Hot-path SoA mirrors of entries_, indexed by internal id: the counting
  // pass and the candidate pass never touch the Filter-carrying Entry
  // structs unless a direct re-evaluation is actually required.
  std::vector<std::uint32_t> required_;     // indexed_predicates
  std::vector<std::uint32_t> external_of_;  // owning external id
  std::vector<std::uint8_t> needs_direct_;  // direct_predicates > 0
  // Sorted lazily (ensure_sorted) so bulk adds stay O(n log n) total.
  mutable std::unordered_map<std::string, AttributeIndex, StringViewHash,
                             std::equal_to<>>
      attributes_;
  mutable bool sorted_ = true;
  // Entries whose filters are empty (wildcards) match every message.
  std::vector<EntryId> wildcards_;
  // Entries with no indexable predicate; rebuilt lazily after adds.
  mutable std::vector<EntryId> direct_only_;
  mutable bool direct_only_cache_valid_ = true;
  // Internal scratch backing the classic match() overload; the per-entry
  // word packs (generation << 32 | count), so a bump is a single load/store
  // with lazy reset.  Mutable so match() stays const; external-scratch
  // callers never touch it.
  mutable Scratch scratch_;
};

}  // namespace bdps
