#include "message/filter_parser.h"

#include <cctype>
#include <cstdlib>

namespace bdps {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Filter parse() {
    std::vector<Predicate> predicates;
    skip_ws();
    if (at_end()) return Filter{};  // Empty text => wildcard filter.
    predicates.push_back(parse_predicate());
    for (;;) {
      skip_ws();
      if (at_end()) break;
      expect("&&");
      predicates.push_back(parse_predicate());
    }
    return Filter(std::move(predicates));
  }

 private:
  Predicate parse_predicate() {
    skip_ws();
    std::string ident = parse_ident();
    skip_ws();
    if (try_consume_keyword("in")) {
      skip_ws();
      expect("[");
      Value lo = parse_literal();
      skip_ws();
      expect(",");
      Value hi = parse_literal();
      skip_ws();
      expect("]");
      return Predicate{std::move(ident), Op::kInRange, std::move(lo),
                       std::move(hi)};
    }
    const Op op = parse_op();
    Value operand = parse_literal();
    return Predicate{std::move(ident), op, std::move(operand), Value()};
  }

  std::string parse_ident() {
    skip_ws();
    const std::size_t start = pos_;
    while (!at_end() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected attribute name");
    return text_.substr(start, pos_ - start);
  }

  Op parse_op() {
    skip_ws();
    if (try_consume("<=")) return Op::kLe;
    if (try_consume(">=")) return Op::kGe;
    if (try_consume("==")) return Op::kEq;
    if (try_consume("!=")) return Op::kNe;
    if (try_consume("<")) return Op::kLt;
    if (try_consume(">")) return Op::kGt;
    fail("expected comparison operator");
  }

  Value parse_literal() {
    skip_ws();
    if (at_end()) fail("expected literal");
    if (text_[pos_] == '"') {
      ++pos_;
      std::string out;
      while (!at_end() && text_[pos_] != '"') out += text_[pos_++];
      if (at_end()) fail("unterminated string literal");
      ++pos_;
      return Value(std::move(out));
    }
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) fail("expected number or quoted string");
    const auto consumed = static_cast<std::size_t>(end - begin);
    const std::string token = text_.substr(pos_, consumed);
    pos_ += consumed;
    // Tokens without '.', 'e' or 'E' stay integer-typed so equality filters
    // on integer attributes behave as users expect.
    if (token.find_first_of(".eE") == std::string::npos) {
      return Value(
          static_cast<std::int64_t>(std::strtoll(token.c_str(), nullptr, 10)));
    }
    return Value(value);
  }

  bool try_consume_keyword(const std::string& word) {
    // A keyword must not be followed by an identifier character.
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    const std::size_t next = pos_ + word.size();
    if (next < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[next])) ||
         text_[next] == '_')) {
      return false;
    }
    pos_ = next;
    return true;
  }

  bool try_consume(const std::string& token) {
    if (text_.compare(pos_, token.size(), token) != 0) return false;
    pos_ += token.size();
    return true;
  }

  void expect(const std::string& token) {
    skip_ws();
    if (!try_consume(token)) fail("expected '" + token + "'");
  }

  void skip_ws() {
    while (!at_end() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool at_end() const { return pos_ >= text_.size(); }

  [[noreturn]] void fail(const std::string& what) {
    throw FilterParseError(what + " at position " + std::to_string(pos_),
                           pos_);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Filter parse_filter(const std::string& text) { return Parser(text).parse(); }

std::vector<Filter> parse_disjunction(const std::string& text) {
  // Split on top-level "||" (quote-aware: `sym == "a||b"` stays intact),
  // then parse each conjunct with the regular filter parser.
  std::vector<std::string> pieces;
  std::string current;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '"') in_string = !in_string;
    if (!in_string && text[i] == '|' && i + 1 < text.size() &&
        text[i + 1] == '|') {
      pieces.push_back(current);
      current.clear();
      ++i;
      continue;
    }
    current += text[i];
  }
  pieces.push_back(current);

  std::vector<Filter> filters;
  filters.reserve(pieces.size());
  for (const std::string& piece : pieces) {
    // An empty piece next to a "||" is almost certainly a typo; the plain
    // parser would silently turn it into match-everything, so reject it
    // unless the whole query is empty (the explicit wildcard spelling).
    if (pieces.size() > 1 &&
        piece.find_first_not_of(" \t\r\n") == std::string::npos) {
      throw FilterParseError("empty disjunct beside '||'", 0);
    }
    filters.push_back(parse_filter(piece));
  }
  return filters;
}

}  // namespace bdps
