#include "message/message.h"

// Message is header-only today; this TU anchors the header in the build so
// include hygiene is checked even when no out-of-line member exists.
