#include "message/message.h"

#include <algorithm>
#include <string_view>
#include <vector>

namespace bdps {

bool head_has_unique_attribute_names(const std::vector<Attribute>& head) {
  if (head.size() < 2) return true;
  // Heads are tiny (a handful of attributes); a sorted name-view scan beats
  // hashing and allocates only the view array.
  std::vector<std::string_view> names;
  names.reserve(head.size());
  for (const Attribute& attr : head) names.emplace_back(attr.name);
  std::sort(names.begin(), names.end());
  return std::adjacent_find(names.begin(), names.end()) == names.end();
}

}  // namespace bdps
