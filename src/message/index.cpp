#include "message/index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bdps {

SubscriptionIndex::EntryId SubscriptionIndex::add(const Filter& filter) {
  const EntryId external = external_count_++;
  external_generation_.push_back(0);
  add_internal(filter, external);
  return external;
}

void SubscriptionIndex::add_disjunct(EntryId id, const Filter& filter) {
  add_internal(filter, id);
}

void SubscriptionIndex::add_internal(const Filter& filter, EntryId external) {
  const EntryId id = entries_.size();
  entries_.push_back(Entry{filter, 0, 0, external});
  Entry& entry = entries_.back();
  entry_map_valid_ = false;

  if (filter.empty()) {
    wildcards_.push_back(id);
  } else {
    for (const auto& predicate : filter.predicates()) {
      index_predicate(predicate, static_cast<InternalId>(id), entry);
    }
    if (entry.indexed_predicates == 0) {
      // Never touched by the counting pass; must be scanned directly.
      direct_only_cache_valid_ = false;
    }
  }

  required_.push_back(static_cast<std::uint32_t>(entry.indexed_predicates));
  external_of_.push_back(static_cast<std::uint32_t>(external));
  needs_direct_.push_back(entry.direct_predicates > 0 ? 1 : 0);
  counter_gen_.push_back(0);
  // Numeric predicate lists are (re)sorted lazily on the next match();
  // sorting per add would make bulk installation quadratic.
  sorted_ = false;
}

void SubscriptionIndex::ensure_sorted() const {
  if (sorted_) return;
  auto by_key = [](const std::pair<double, InternalId>& a,
                   const std::pair<double, InternalId>& b) {
    return a.first < b.first;
  };
  auto rebuild = [&](std::vector<std::pair<double, InternalId>>& build,
                     std::vector<double>& keys,
                     std::vector<InternalId>& entries) {
    std::sort(build.begin(), build.end(), by_key);
    keys.clear();
    entries.clear();
    keys.reserve(build.size());
    entries.reserve(build.size());
    for (const auto& [key, id] : build) {
      keys.push_back(key);
      entries.push_back(id);
    }
  };
  for (auto& [name, attr_index] : attributes_) {
    (void)name;
    rebuild(attr_index.less_build, attr_index.less_keys,
            attr_index.less_entries);
    rebuild(attr_index.greater_build, attr_index.greater_keys,
            attr_index.greater_entries);
  }
  sorted_ = true;
}

void SubscriptionIndex::index_predicate(const Predicate& predicate,
                                        InternalId id, Entry& entry) {
  // String-operand orderings, ranges and non-finite operands go to the
  // direct path; finite numeric comparisons and both equality types are
  // indexable.  (Non-finite thresholds would break the nextafter key
  // folding below, and NaN never hash-matches — direct evaluation keeps
  // the index exactly equivalent to brute force.)
  const bool indexable_operand =
      predicate.operand.is_number() &&
      std::isfinite(predicate.operand.as_double());
  switch (predicate.op) {
    case Op::kLt:
    case Op::kLe:
      if (indexable_operand) {
        // Satisfied iff key > v, where kLe's closed bound becomes the
        // half-open key nextafter(c, +inf): c >= v  <=>  nextafter(c) > v.
        const double c = predicate.operand.as_double();
        const double key =
            predicate.op == Op::kLe
                ? std::nextafter(c, std::numeric_limits<double>::infinity())
                : c;
        attributes_[predicate.attribute].less_build.emplace_back(key, id);
        ++entry.indexed_predicates;
        return;
      }
      break;
    case Op::kGt:
    case Op::kGe:
      if (indexable_operand) {
        // Satisfied iff key < v; kGe stores nextafter(c, -inf).
        const double c = predicate.operand.as_double();
        const double key =
            predicate.op == Op::kGe
                ? std::nextafter(c, -std::numeric_limits<double>::infinity())
                : c;
        attributes_[predicate.attribute].greater_build.emplace_back(key, id);
        ++entry.indexed_predicates;
        return;
      }
      break;
    case Op::kEq:
      if (indexable_operand) {
        attributes_[predicate.attribute]
            .numeric_eq[predicate.operand.as_double()]
            .push_back(id);
        ++entry.indexed_predicates;
        return;
      }
      if (predicate.operand.is_string()) {
        attributes_[predicate.attribute]
            .string_eq[predicate.operand.as_string()]
            .push_back(id);
        ++entry.indexed_predicates;
        return;
      }
      break;
    case Op::kNe:
    case Op::kInRange:
      break;
  }
  ++entry.direct_predicates;
}

const std::vector<SubscriptionIndex::EntryId>& SubscriptionIndex::match(
    const Message& message) const {
  ensure_sorted();
  // Start a fresh generation; counters and external marks are reset lazily
  // on first touch.
  ++current_generation_;
  if (current_generation_ == 0) {
    // Wrapped around: hard-reset so stale generations cannot alias.
    std::fill(counter_gen_.begin(), counter_gen_.end(), std::uint64_t{0});
    std::fill(external_generation_.begin(), external_generation_.end(), 0u);
    current_generation_ = 1;
  }
  candidates_.clear();
  result_.clear();

  // One satisfied predicate for internal entry `id`.  The per-entry word
  // packs (generation << 32 | count): a stale generation resets the count
  // in-register, and the entry joins candidates_ exactly once — the moment
  // its count crosses its predicate total.
  const std::uint64_t tagged =
      static_cast<std::uint64_t>(current_generation_) << 32;
  auto bump = [&](InternalId id) {
    std::uint64_t cg = counter_gen_[id];
    if ((cg >> 32) != current_generation_) cg = tagged;
    ++cg;
    counter_gen_[id] = cg;
    if (static_cast<std::uint32_t>(cg) == required_[id]) {
      candidates_.push_back(id);
    }
  };

  // Emits an external id into the (reused) result buffer at most once per
  // match — generation marks replace the former sort + unique pass.
  auto emit = [this](EntryId external) {
    if (external_generation_[external] == current_generation_) return;
    external_generation_[external] = current_generation_;
    result_.push_back(external);
  };

  for (const auto& attribute : message.head()) {
    const auto it = attributes_.find(std::string_view(attribute.name));
    if (it == attributes_.end()) continue;
    const AttributeIndex& attr = it->second;

    if (attribute.value.is_number()) {
      const double v = attribute.value.as_double();

      // Satisfied less-than keys form the suffix with key > v.
      {
        const auto begin = std::upper_bound(attr.less_keys.begin(),
                                            attr.less_keys.end(), v);
        const std::size_t first =
            static_cast<std::size_t>(begin - attr.less_keys.begin());
        for (std::size_t i = first; i < attr.less_entries.size(); ++i) {
          bump(attr.less_entries[i]);
        }
      }

      // Satisfied greater-than keys form the prefix with key < v.
      {
        const auto end = std::lower_bound(attr.greater_keys.begin(),
                                          attr.greater_keys.end(), v);
        const std::size_t count =
            static_cast<std::size_t>(end - attr.greater_keys.begin());
        for (std::size_t i = 0; i < count; ++i) {
          bump(attr.greater_entries[i]);
        }
      }

      const auto eq = attr.numeric_eq.find(v);
      if (eq != attr.numeric_eq.end()) {
        for (const InternalId id : eq->second) bump(id);
      }
    } else {
      const auto eq =
          attr.string_eq.find(std::string_view(attribute.value.as_string()));
      if (eq != attr.string_eq.end()) {
        for (const InternalId id : eq->second) bump(id);
      }
    }
  }

  for (const EntryId id : wildcards_) {
    emit(external_of_[id]);
  }

  for (const InternalId id : candidates_) {
    if (needs_direct_[id] && !entries_[id].filter.matches(message)) {
      continue;
    }
    emit(external_of_[id]);
  }

  // Entries with no indexable predicate are never counted; scan directly.
  rebuild_direct_only_cache();
  for (const EntryId id : direct_only_) {
    if (entries_[id].filter.matches(message)) {
      emit(external_of_[id]);
    }
  }

  return result_;
}

bool SubscriptionIndex::matches_entry(EntryId id,
                                      const Message& message) const {
  if (id >= external_count_) return false;
  if (!entry_map_valid_) {
    internal_by_external_.assign(external_count_, {});
    for (EntryId internal = 0; internal < entries_.size(); ++internal) {
      internal_by_external_[entries_[internal].external].push_back(internal);
    }
    entry_map_valid_ = true;
  }
  for (const EntryId internal : internal_by_external_[id]) {
    if (entries_[internal].filter.matches(message)) return true;
  }
  return false;
}

void SubscriptionIndex::rebuild_direct_only_cache() const {
  if (direct_only_cache_valid_) return;
  direct_only_.clear();
  for (EntryId id = 0; id < entries_.size(); ++id) {
    const Entry& entry = entries_[id];
    if (!entry.filter.empty() && entry.indexed_predicates == 0) {
      direct_only_.push_back(id);
    }
  }
  direct_only_cache_valid_ = true;
}

}  // namespace bdps
