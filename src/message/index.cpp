#include "message/index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace bdps {

SubscriptionIndex::EntryId SubscriptionIndex::add(const Filter& filter) {
  const EntryId external = external_count_++;
  add_internal(filter, external);
  return external;
}

void SubscriptionIndex::add_disjunct(EntryId id, const Filter& filter) {
  add_internal(filter, id);
}

void SubscriptionIndex::add_internal(const Filter& filter, EntryId external) {
  const EntryId id = entries_.size();
  entries_.push_back(Entry{filter, 0, 0, external});
  Entry& entry = entries_.back();
  entry_map_valid_ = false;

  if (filter.empty()) {
    wildcards_.push_back(id);
  } else {
    for (const auto& predicate : filter.predicates()) {
      index_predicate(predicate, static_cast<InternalId>(id), entry);
    }
    if (entry.indexed_predicates == 0) {
      // Never touched by the counting pass; must be scanned directly.
      direct_only_cache_valid_ = false;
    }
  }

  required_.push_back(static_cast<std::uint32_t>(entry.indexed_predicates));
  external_of_.push_back(static_cast<std::uint32_t>(external));
  needs_direct_.push_back(entry.direct_predicates > 0 ? 1 : 0);
  // Numeric predicate lists are (re)sorted lazily on the next match();
  // sorting per add would make bulk installation quadratic.
  sorted_ = false;
}

void SubscriptionIndex::finalize() {
  ensure_sorted();
  rebuild_direct_only_cache();
  rebuild_entry_map();
}

void SubscriptionIndex::ensure_sorted() const {
  if (sorted_) return;
  auto by_key = [](const std::pair<double, InternalId>& a,
                   const std::pair<double, InternalId>& b) {
    return a.first < b.first;
  };
  auto rebuild = [&](std::vector<std::pair<double, InternalId>>& build,
                     std::vector<double>& keys,
                     std::vector<InternalId>& entries) {
    std::sort(build.begin(), build.end(), by_key);
    keys.clear();
    entries.clear();
    keys.reserve(build.size());
    entries.reserve(build.size());
    for (const auto& [key, id] : build) {
      keys.push_back(key);
      entries.push_back(id);
    }
  };
  for (auto& [name, attr_index] : attributes_) {
    (void)name;
    rebuild(attr_index.less_build, attr_index.less_keys,
            attr_index.less_entries);
    rebuild(attr_index.greater_build, attr_index.greater_keys,
            attr_index.greater_entries);
  }
  sorted_ = true;
}

void SubscriptionIndex::index_predicate(const Predicate& predicate,
                                        InternalId id, Entry& entry) {
  // String-operand orderings, ranges and non-finite operands go to the
  // direct path; finite numeric comparisons and both equality types are
  // indexable.  (Non-finite thresholds would break the nextafter key
  // folding below, and NaN never hash-matches — direct evaluation keeps
  // the index exactly equivalent to brute force.)
  const bool indexable_operand =
      predicate.operand.is_number() &&
      std::isfinite(predicate.operand.as_double());
  switch (predicate.op) {
    case Op::kLt:
    case Op::kLe:
      if (indexable_operand) {
        // Satisfied iff key > v, where kLe's closed bound becomes the
        // half-open key nextafter(c, +inf): c >= v  <=>  nextafter(c) > v.
        const double c = predicate.operand.as_double();
        const double key =
            predicate.op == Op::kLe
                ? std::nextafter(c, std::numeric_limits<double>::infinity())
                : c;
        attributes_[predicate.attribute].less_build.emplace_back(key, id);
        ++entry.indexed_predicates;
        return;
      }
      break;
    case Op::kGt:
    case Op::kGe:
      if (indexable_operand) {
        // Satisfied iff key < v; kGe stores nextafter(c, -inf).
        const double c = predicate.operand.as_double();
        const double key =
            predicate.op == Op::kGe
                ? std::nextafter(c, -std::numeric_limits<double>::infinity())
                : c;
        attributes_[predicate.attribute].greater_build.emplace_back(key, id);
        ++entry.indexed_predicates;
        return;
      }
      break;
    case Op::kEq:
      if (indexable_operand) {
        attributes_[predicate.attribute]
            .numeric_eq[predicate.operand.as_double()]
            .push_back(id);
        ++entry.indexed_predicates;
        return;
      }
      if (predicate.operand.is_string()) {
        attributes_[predicate.attribute]
            .string_eq[predicate.operand.as_string()]
            .push_back(id);
        ++entry.indexed_predicates;
        return;
      }
      break;
    case Op::kNe:
    case Op::kInRange:
      break;
  }
  ++entry.direct_predicates;
}

const std::vector<SubscriptionIndex::EntryId>& SubscriptionIndex::match(
    const Message& message) const {
  ensure_sorted();
  rebuild_direct_only_cache();
  return match_core(message, scratch_);
}

const std::vector<SubscriptionIndex::EntryId>& SubscriptionIndex::match(
    const Message& message, Scratch& scratch) const {
  // The const overload must never fall back to the lazy (mutating) cache
  // rebuilds — finalize() is the builder's hand-off point to readers.
  assert(finalized() &&
         "SubscriptionIndex::match(message, scratch) requires finalize()");
  return match_core(message, scratch);
}

const std::vector<SubscriptionIndex::EntryId>& SubscriptionIndex::match_core(
    const Message& message, Scratch& scratch) const {
  // Adapt the scratch to this index (grow-only; a fresh generation makes
  // any stale state unreadable) and start a new generation.  Counters and
  // external marks are reset lazily on first touch.
  if (scratch.counter_gen.size() < entries_.size()) {
    scratch.counter_gen.resize(entries_.size(), 0);
  }
  if (scratch.external_generation.size() < external_count_) {
    scratch.external_generation.resize(external_count_, 0);
  }
  ++scratch.generation;
  if (scratch.generation == 0) {
    // Wrapped around: hard-reset so stale generations cannot alias.
    std::fill(scratch.counter_gen.begin(), scratch.counter_gen.end(),
              std::uint64_t{0});
    std::fill(scratch.external_generation.begin(),
              scratch.external_generation.end(), 0u);
    scratch.generation = 1;
  }
  const std::uint32_t generation = scratch.generation;
  scratch.candidates.clear();
  scratch.result.clear();

  // One satisfied predicate for internal entry `id`.  The per-entry word
  // packs (generation << 32 | count): a stale generation resets the count
  // in-register, and the entry joins the candidates exactly once — the
  // moment its count crosses its predicate total.
  const std::uint64_t tagged = static_cast<std::uint64_t>(generation) << 32;
  auto bump = [&](InternalId id) {
    std::uint64_t cg = scratch.counter_gen[id];
    if ((cg >> 32) != generation) cg = tagged;
    ++cg;
    scratch.counter_gen[id] = cg;
    if (static_cast<std::uint32_t>(cg) == required_[id]) {
      scratch.candidates.push_back(id);
    }
  };

  // Emits an external id into the (reused) result buffer at most once per
  // match — generation marks replace the former sort + unique pass.
  auto emit = [&](EntryId external) {
    if (scratch.external_generation[external] == generation) return;
    scratch.external_generation[external] = generation;
    scratch.result.push_back(external);
  };

  for (const auto& attribute : message.head()) {
    const auto it = attributes_.find(std::string_view(attribute.name));
    if (it == attributes_.end()) continue;
    const AttributeIndex& attr = it->second;

    if (attribute.value.is_number()) {
      const double v = attribute.value.as_double();

      // Satisfied less-than keys form the suffix with key > v.
      {
        const auto begin = std::upper_bound(attr.less_keys.begin(),
                                            attr.less_keys.end(), v);
        const std::size_t first =
            static_cast<std::size_t>(begin - attr.less_keys.begin());
        for (std::size_t i = first; i < attr.less_entries.size(); ++i) {
          bump(attr.less_entries[i]);
        }
      }

      // Satisfied greater-than keys form the prefix with key < v.
      {
        const auto end = std::lower_bound(attr.greater_keys.begin(),
                                          attr.greater_keys.end(), v);
        const std::size_t count =
            static_cast<std::size_t>(end - attr.greater_keys.begin());
        for (std::size_t i = 0; i < count; ++i) {
          bump(attr.greater_entries[i]);
        }
      }

      const auto eq = attr.numeric_eq.find(v);
      if (eq != attr.numeric_eq.end()) {
        for (const InternalId id : eq->second) bump(id);
      }
    } else {
      const auto eq =
          attr.string_eq.find(std::string_view(attribute.value.as_string()));
      if (eq != attr.string_eq.end()) {
        for (const InternalId id : eq->second) bump(id);
      }
    }
  }

  for (const EntryId id : wildcards_) {
    emit(external_of_[id]);
  }

  for (const InternalId id : scratch.candidates) {
    if (needs_direct_[id] && !entries_[id].filter.matches(message)) {
      continue;
    }
    emit(external_of_[id]);
  }

  // Entries with no indexable predicate are never counted; scan directly.
  for (const EntryId id : direct_only_) {
    if (entries_[id].filter.matches(message)) {
      emit(external_of_[id]);
    }
  }

  // Canonical ascending-id order.  Matched ids feed order-sensitive
  // floating-point reductions (kernel scoring sums, the simulator's
  // matched-price totals), so every matching engine — this index, the
  // sharded fabric — must emit in one agreed order to stay bitwise
  // comparable.
  std::sort(scratch.result.begin(), scratch.result.end());

  return scratch.result;
}

bool SubscriptionIndex::matches_entry(EntryId id,
                                      const Message& message) const {
  if (id >= external_count_) return false;
  rebuild_entry_map();
  for (const EntryId internal : internal_by_external_[id]) {
    if (entries_[internal].filter.matches(message)) return true;
  }
  return false;
}

void SubscriptionIndex::rebuild_entry_map() const {
  if (entry_map_valid_) return;
  internal_by_external_.assign(external_count_, {});
  for (EntryId internal = 0; internal < entries_.size(); ++internal) {
    internal_by_external_[entries_[internal].external].push_back(internal);
  }
  entry_map_valid_ = true;
}

void SubscriptionIndex::rebuild_direct_only_cache() const {
  if (direct_only_cache_valid_) return;
  direct_only_.clear();
  for (EntryId id = 0; id < entries_.size(); ++id) {
    const Entry& entry = entries_[id];
    if (!entry.filter.empty() && entry.indexed_predicates == 0) {
      direct_only_.push_back(id);
    }
  }
  direct_only_cache_valid_ = true;
}

}  // namespace bdps
