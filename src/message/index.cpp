#include "message/index.h"

#include <algorithm>

namespace bdps {

SubscriptionIndex::EntryId SubscriptionIndex::add(const Filter& filter) {
  const EntryId external = external_count_++;
  add_internal(filter, external);
  return external;
}

void SubscriptionIndex::add_disjunct(EntryId id, const Filter& filter) {
  add_internal(filter, id);
}

void SubscriptionIndex::add_internal(const Filter& filter, EntryId external) {
  const EntryId id = entries_.size();
  entries_.push_back(Entry{filter, 0, 0, external});
  Entry& entry = entries_.back();

  if (filter.empty()) {
    wildcards_.push_back(id);
  } else {
    for (const auto& predicate : filter.predicates()) {
      index_predicate(predicate, id, entry);
    }
    if (entry.indexed_predicates == 0) {
      // Never touched by the counting pass; must be scanned directly.
      direct_only_cache_valid_ = false;
    }
  }

  counter_.push_back(0);
  generation_.push_back(0);
  // Numeric predicate lists are (re)sorted lazily on the next match();
  // sorting per add would make bulk installation quadratic.
  sorted_ = false;
}

void SubscriptionIndex::ensure_sorted() const {
  if (sorted_) return;
  auto by_threshold = [](const NumericPredicateRef& a,
                         const NumericPredicateRef& b) {
    return a.threshold < b.threshold;
  };
  for (auto& [name, attr_index] : attributes_) {
    (void)name;
    std::sort(attr_index.less_than.begin(), attr_index.less_than.end(),
              by_threshold);
    std::sort(attr_index.greater_than.begin(), attr_index.greater_than.end(),
              by_threshold);
  }
  sorted_ = true;
}

void SubscriptionIndex::index_predicate(const Predicate& predicate,
                                        EntryId id, Entry& entry) {
  // String-operand orderings and ranges go to the direct path; numeric
  // comparisons and both equality types are indexable.
  const bool numeric_operand = predicate.operand.is_number();
  AttributeIndex& attr = attributes_[predicate.attribute];
  switch (predicate.op) {
    case Op::kLt:
    case Op::kLe:
      if (numeric_operand) {
        attr.less_than.push_back(NumericPredicateRef{
            predicate.operand.as_double(), id, predicate.op == Op::kLe});
        ++entry.indexed_predicates;
        return;
      }
      break;
    case Op::kGt:
    case Op::kGe:
      if (numeric_operand) {
        attr.greater_than.push_back(NumericPredicateRef{
            predicate.operand.as_double(), id, predicate.op == Op::kGe});
        ++entry.indexed_predicates;
        return;
      }
      break;
    case Op::kEq:
      if (numeric_operand) {
        attr.numeric_eq[predicate.operand.as_double()].push_back(id);
      } else {
        attr.string_eq[predicate.operand.as_string()].push_back(id);
      }
      ++entry.indexed_predicates;
      return;
    case Op::kNe:
    case Op::kInRange:
      break;
  }
  ++entry.direct_predicates;
}

std::vector<SubscriptionIndex::EntryId> SubscriptionIndex::match(
    const Message& message) const {
  ensure_sorted();
  // Start a fresh generation; counters are reset lazily on first touch.
  ++current_generation_;
  if (current_generation_ == 0) {
    // Wrapped around: hard-reset so stale generations cannot alias.
    std::fill(generation_.begin(), generation_.end(), 0u);
    current_generation_ = 1;
  }
  touched_.clear();

  auto bump = [this](EntryId id) {
    if (generation_[id] != current_generation_) {
      generation_[id] = current_generation_;
      counter_[id] = 0;
      touched_.push_back(id);
    }
    ++counter_[id];
  };

  for (const auto& attribute : message.head()) {
    const auto it = attributes_.find(attribute.name);
    if (it == attributes_.end()) continue;
    const AttributeIndex& attr = it->second;

    if (attribute.value.is_number()) {
      const double v = attribute.value.as_double();

      // less_than is ascending; satisfied refs have threshold > v, plus
      // threshold == v for inclusive (<=) predicates.
      {
        const auto begin = std::lower_bound(
            attr.less_than.begin(), attr.less_than.end(), v,
            [](const NumericPredicateRef& ref, double value) {
              return ref.threshold < value;
            });
        for (auto ref = begin; ref != attr.less_than.end(); ++ref) {
          if (ref->threshold > v || ref->inclusive) bump(ref->entry);
        }
      }

      // greater_than is ascending; satisfied refs have threshold < v, plus
      // threshold == v for inclusive (>=) predicates.
      for (const auto& ref : attr.greater_than) {
        if (ref.threshold > v) break;
        if (ref.threshold < v || ref.inclusive) bump(ref.entry);
      }

      const auto eq = attr.numeric_eq.find(v);
      if (eq != attr.numeric_eq.end()) {
        for (const EntryId id : eq->second) bump(id);
      }
    } else {
      const auto eq = attr.string_eq.find(attribute.value.as_string());
      if (eq != attr.string_eq.end()) {
        for (const EntryId id : eq->second) bump(id);
      }
    }
  }

  std::vector<EntryId> result;
  for (const EntryId id : wildcards_) {
    result.push_back(entries_[id].external);
  }

  for (const EntryId id : touched_) {
    const Entry& entry = entries_[id];
    if (counter_[id] != entry.indexed_predicates) continue;
    if (entry.direct_predicates > 0 && !entry.filter.matches(message)) {
      continue;
    }
    result.push_back(entry.external);
  }

  // Entries with no indexable predicate are never counted; scan directly.
  rebuild_direct_only_cache();
  for (const EntryId id : direct_only_) {
    if (entries_[id].filter.matches(message)) {
      result.push_back(entries_[id].external);
    }
  }

  // Several disjuncts of the same id may have fired: report the id once.
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

bool SubscriptionIndex::matches_entry(EntryId id,
                                      const Message& message) const {
  for (const Entry& entry : entries_) {
    if (entry.external == id && entry.filter.matches(message)) return true;
  }
  return false;
}

void SubscriptionIndex::rebuild_direct_only_cache() const {
  if (direct_only_cache_valid_) return;
  direct_only_.clear();
  for (EntryId id = 0; id < entries_.size(); ++id) {
    const Entry& entry = entries_[id];
    if (!entry.filter.empty() && entry.indexed_predicates == 0) {
      direct_only_.push_back(id);
    }
  }
  direct_only_cache_valid_ = true;
}

}  // namespace bdps
