// Published messages.
//
// A message carries a head of named attributes (the content that filters
// match on), a payload size in kilobytes (the delay model charges
// size * TR per link, §3.2), and optionally a publisher-specified delivery
// deadline (the PSD scenario, §4.1).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "message/value.h"

namespace bdps {

/// One named attribute in a message head.
struct Attribute {
  std::string name;
  Value value;
};

/// True when every attribute name occurs at most once in `head`.  Heads
/// with repeated names are legal messages, but they sit outside the
/// counting index's equivalence contract (message/index.h: Message::find
/// consults only the first occurrence while the counting pass sees every
/// occurrence) — construction paths that feed the matching engine assert
/// this in debug builds, and tests/message/index_boundary_test.cpp pins
/// the documented divergence.
bool head_has_unique_attribute_names(const std::vector<Attribute>& head);

class Message {
 public:
  Message() = default;
  Message(MessageId id, PublisherId publisher, TimeMs publish_time,
          double size_kb, std::vector<Attribute> head,
          TimeMs allowed_delay = kNoDeadline)
      : id_(id),
        publisher_(publisher),
        publish_time_(publish_time),
        size_kb_(size_kb),
        allowed_delay_(allowed_delay),
        head_(std::move(head)) {}

  MessageId id() const { return id_; }
  PublisherId publisher() const { return publisher_; }
  TimeMs publish_time() const { return publish_time_; }
  double size_kb() const { return size_kb_; }
  const std::vector<Attribute>& head() const { return head_; }

  /// Publisher-specified allowed delay (PSD); kNoDeadline when unset.
  TimeMs allowed_delay() const { return allowed_delay_; }
  bool has_allowed_delay() const { return allowed_delay_ != kNoDeadline; }

  /// Looks up an attribute by name; nullptr when absent.
  const Value* find(const std::string& name) const {
    for (const auto& attr : head_) {
      if (attr.name == name) return &attr.value;
    }
    return nullptr;
  }

  /// hdl(m) from §5.1: the delay already incurred by the message.
  TimeMs elapsed(TimeMs now) const { return now - publish_time_; }

 private:
  MessageId id_ = 0;
  PublisherId publisher_ = 0;
  TimeMs publish_time_ = 0.0;
  double size_kb_ = 0.0;
  TimeMs allowed_delay_ = kNoDeadline;
  std::vector<Attribute> head_;
};

}  // namespace bdps
