#include "net/socket_link.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace bdps {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

/// IPv4 socket address for `host`:`port`.  An empty host keeps the
/// historical loopback default; otherwise the host must be a dotted-quad
/// literal ("0.0.0.0" binds all interfaces) — name resolution is the
/// deployment layer's job, configs carry addresses.
sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty()) {
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  } else if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("not an IPv4 address literal: " + host);
  }
  return addr;
}

int make_tcp_socket() {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  // Frames are small and latency-sensitive (acks, single publications);
  // Nagle coalescing only adds delay on loopback.
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

void make_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

TcpListener::TcpListener(std::uint16_t port, const std::string& bind_host) {
  fd_ = make_tcp_socket();
  const int one = 1;
  setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  try {
    addr = make_addr(bind_host, port);
  } catch (const std::exception&) {
    close(fd_);
    fd_ = -1;
    throw;
  }
  if (bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    close(fd_);
    fd_ = -1;
    errno = err;
    throw_errno("bind");
  }
  if (listen(fd_, 128) != 0) {
    const int err = errno;
    close(fd_);
    fd_ = -1;
    errno = err;
    throw_errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  make_nonblocking(fd_);
}

TcpListener::~TcpListener() { close_now(); }

int TcpListener::accept_connection() {
  const int fd = accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC | SOCK_NONBLOCK);
  if (fd < 0) return -1;  // EAGAIN or transient error: nothing pending.
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void TcpListener::close_now() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

SocketLink::SocketLink(SocketLink&& other) noexcept
    : fd_(other.fd_),
      connecting_(other.connecting_),
      buffer_(std::move(other.buffer_)),
      offset_(other.offset_) {
  other.fd_ = -1;
  other.connecting_ = false;
  other.buffer_.clear();
  other.offset_ = 0;
}

SocketLink& SocketLink::operator=(SocketLink&& other) noexcept {
  if (this != &other) {
    close_now();
    fd_ = other.fd_;
    connecting_ = other.connecting_;
    buffer_ = std::move(other.buffer_);
    offset_ = other.offset_;
    other.fd_ = -1;
    other.connecting_ = false;
    other.buffer_.clear();
    other.offset_ = 0;
  }
  return *this;
}

void SocketLink::dial(std::uint16_t port, const std::string& host) {
  close_now();
  const sockaddr_in addr = make_addr(host, port);  // Throws before any fd.
  fd_ = make_tcp_socket();
  make_nonblocking(fd_);
  const int rc =
      connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) {
    connecting_ = false;
  } else if (errno == EINPROGRESS) {
    connecting_ = true;
  } else {
    // Synchronous refusal (no listener yet): leave the link closed; the
    // endpoint's backoff schedule retries.
    close_now();
  }
}

void SocketLink::adopt(int fd) {
  close_now();
  fd_ = fd;
  connecting_ = false;
}

bool SocketLink::finish_connect() {
  if (!connecting_) return open();
  int err = 0;
  socklen_t len = sizeof(err);
  if (getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    close_now();
    return false;
  }
  connecting_ = false;
  return true;
}

void SocketLink::send(const std::uint8_t* data, std::size_t size) {
  if (closed()) return;
  buffer_.insert(buffer_.end(), data, data + size);
}

bool SocketLink::flush() {
  if (closed() || connecting_) return !closed();
  while (offset_ < buffer_.size()) {
    const ssize_t n = ::send(fd_, buffer_.data() + offset_,
                             buffer_.size() - offset_, MSG_NOSIGNAL);
    if (n > 0) {
      offset_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_now();
    return false;
  }
  if (offset_ == buffer_.size()) {
    buffer_.clear();
    offset_ = 0;
  } else if (offset_ > 65536 && offset_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
    offset_ = 0;
  }
  return true;
}

bool SocketLink::read_into(FrameAssembler& assembler) {
  if (closed() || connecting_) return !closed();
  std::uint8_t chunk[16384];
  for (;;) {
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      assembler.feed(chunk, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(chunk)) return true;
      continue;
    }
    if (n == 0) {  // Orderly EOF.
      close_now();
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    close_now();
    return false;
  }
}

void SocketLink::close_now() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  connecting_ = false;
  buffer_.clear();
  offset_ = 0;
}

BlockingConn::BlockingConn(BlockingConn&& other) noexcept
    : fd_(other.fd_),
      assembler_(std::move(other.assembler_)),
      scratch_(std::move(other.scratch_)) {
  other.fd_ = -1;
}

BlockingConn& BlockingConn::operator=(BlockingConn&& other) noexcept {
  if (this != &other) {
    close_now();
    fd_ = other.fd_;
    assembler_ = std::move(other.assembler_);
    scratch_ = std::move(other.scratch_);
    other.fd_ = -1;
  }
  return *this;
}

bool BlockingConn::dial(std::uint16_t port, const std::string& host) {
  close_now();
  sockaddr_in addr;
  int fd = -1;
  try {
    addr = make_addr(host, port);
    fd = make_tcp_socket();
  } catch (const std::exception&) {
    return false;
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

bool BlockingConn::send_frame(const Frame& frame) {
  if (fd_ < 0) return false;
  scratch_.clear();
  encode_frame(frame, scratch_);
  std::size_t sent = 0;
  while (sent < scratch_.size()) {
    const ssize_t n = ::send(fd_, scratch_.data() + sent,
                             scratch_.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    close_now();
    return false;
  }
  return true;
}

std::optional<Frame> BlockingConn::recv_frame() {
  for (;;) {
    if (auto frame = assembler_.next()) return frame;
    if (fd_ < 0) return std::nullopt;
    std::uint8_t chunk[16384];
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      assembler_.feed(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    close_now();
    return std::nullopt;
  }
}

void BlockingConn::close_now() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

}  // namespace bdps
