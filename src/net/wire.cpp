#include "net/wire.h"

#include <bit>
#include <cassert>
#include <cstring>

namespace bdps {

namespace {

// ---- Primitive encoding ----------------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

// Raw IEEE-754 bits: bit-exact across processes, infinity (kNoDeadline)
// and negative zero included.
void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_bool(std::vector<std::uint8_t>& out, bool v) {
  put_u8(out, v ? 1 : 0);
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  if (s.size() > kMaxFrameBytes) throw WireError("wire: string too long");
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked sequential reader over one frame payload.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw WireError("wire: bool out of range");
    return v == 1;
  }
  std::string string() {
    const std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }

  std::size_t remaining() const { return size_ - pos_; }
  void expect_done() const {
    if (pos_ != size_) throw WireError("wire: trailing payload bytes");
  }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) throw WireError("wire: truncated payload");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---- Value / filter / message ----------------------------------------------

enum class ValueTag : std::uint8_t { kDouble = 0, kInt = 1, kString = 2 };

void put_value(std::vector<std::uint8_t>& out, const Value& v) {
  if (v.is_string()) {
    put_u8(out, static_cast<std::uint8_t>(ValueTag::kString));
    put_string(out, v.as_string());
  } else if (v.is_int()) {
    put_u8(out, static_cast<std::uint8_t>(ValueTag::kInt));
    put_i64(out, v.as_int());
  } else {
    put_u8(out, static_cast<std::uint8_t>(ValueTag::kDouble));
    put_f64(out, v.as_double());
  }
}

Value read_value(Reader& r) {
  switch (static_cast<ValueTag>(r.u8())) {
    case ValueTag::kDouble:
      return Value(r.f64());
    case ValueTag::kInt:
      return Value(r.i64());
    case ValueTag::kString:
      return Value(r.string());
  }
  throw WireError("wire: bad value tag");
}

void put_filter(std::vector<std::uint8_t>& out, const Filter& filter) {
  if (filter.size() > kMaxPredicates) {
    throw WireError("wire: filter too large");
  }
  put_u16(out, static_cast<std::uint16_t>(filter.size()));
  for (const Predicate& p : filter.predicates()) {
    put_string(out, p.attribute);
    put_u8(out, static_cast<std::uint8_t>(p.op));
    put_value(out, p.operand);
    put_value(out, p.operand2);
  }
}

Filter read_filter(Reader& r) {
  const std::uint16_t count = r.u16();
  if (count > kMaxPredicates) throw WireError("wire: filter too large");
  std::vector<Predicate> predicates;
  predicates.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    Predicate p;
    p.attribute = r.string();
    const std::uint8_t op = r.u8();
    if (op > static_cast<std::uint8_t>(Op::kInRange)) {
      throw WireError("wire: bad predicate op");
    }
    p.op = static_cast<Op>(op);
    p.operand = read_value(r);
    p.operand2 = read_value(r);
    predicates.push_back(std::move(p));
  }
  return Filter(std::move(predicates));
}

void put_message(std::vector<std::uint8_t>& out, const Message& m) {
  if (m.head().size() > kMaxAttributes) {
    throw WireError("wire: message head too large");
  }
  put_i64(out, m.id());
  put_i32(out, m.publisher());
  put_f64(out, m.publish_time());
  put_f64(out, m.size_kb());
  put_f64(out, m.allowed_delay());
  put_u16(out, static_cast<std::uint16_t>(m.head().size()));
  for (const Attribute& attr : m.head()) {
    put_string(out, attr.name);
    put_value(out, attr.value);
  }
}

Message read_message(Reader& r) {
  const MessageId id = r.i64();
  const PublisherId publisher = r.i32();
  const TimeMs publish_time = r.f64();
  const double size_kb = r.f64();
  const TimeMs allowed_delay = r.f64();
  const std::uint16_t attrs = r.u16();
  if (attrs > kMaxAttributes) throw WireError("wire: message head too large");
  std::vector<Attribute> head;
  head.reserve(attrs);
  for (std::uint16_t i = 0; i < attrs; ++i) {
    Attribute attr;
    attr.name = r.string();
    attr.value = read_value(r);
    head.push_back(std::move(attr));
  }
  // Decoded heads feed the matching engines, whose equivalence contract
  // requires unique attribute names (message/message.h).
  assert(head_has_unique_attribute_names(head));
  return Message(id, publisher, publish_time, size_kb, std::move(head),
                 allowed_delay);
}

// ---- Bit-exact comparisons (operator== backing) ----------------------------

bool f64_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool value_equal(const Value& a, const Value& b) {
  if (a.is_string() != b.is_string() || a.is_int() != b.is_int()) {
    return false;
  }
  if (a.is_string()) return a.as_string() == b.as_string();
  if (a.is_int()) return a.as_int() == b.as_int();
  return f64_equal(a.as_double(), b.as_double());
}

bool message_equal(const Message& a, const Message& b) {
  if (a.id() != b.id() || a.publisher() != b.publisher() ||
      !f64_equal(a.publish_time(), b.publish_time()) ||
      !f64_equal(a.size_kb(), b.size_kb()) ||
      !f64_equal(a.allowed_delay(), b.allowed_delay()) ||
      a.head().size() != b.head().size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.head().size(); ++i) {
    if (a.head()[i].name != b.head()[i].name ||
        !value_equal(a.head()[i].value, b.head()[i].value)) {
      return false;
    }
  }
  return true;
}

bool filter_equal(const Filter& a, const Filter& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Predicate& pa = a.predicates()[i];
    const Predicate& pb = b.predicates()[i];
    if (pa.attribute != pb.attribute || pa.op != pb.op ||
        !value_equal(pa.operand, pb.operand) ||
        !value_equal(pa.operand2, pb.operand2)) {
      return false;
    }
  }
  return true;
}

// ---- Per-frame payload codecs ----------------------------------------------

void encode_payload(const Frame& frame, std::vector<std::uint8_t>& out) {
  std::visit(
      [&out](const auto& f) {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, HelloFrame>) {
          put_u32(out, f.shard);
          put_u32(out, f.shard_count);
          put_u8(out, static_cast<std::uint8_t>(f.role));
        } else if constexpr (std::is_same_v<T, ForwardFrame>) {
          put_u64(out, f.seq);
          put_i32(out, f.target);
          put_message(out, f.message);
        } else if constexpr (std::is_same_v<T, AckFrame>) {
          put_u64(out, f.seq);
        } else if constexpr (std::is_same_v<T, SubscribeFrame>) {
          put_i32(out, f.subscriber);
          put_i32(out, f.home);
          put_f64(out, f.allowed_delay);
          put_f64(out, f.price);
          put_filter(out, f.filter);
        } else if constexpr (std::is_same_v<T, LinkStateFrame>) {
          put_i32(out, f.edge);
          put_bool(out, f.up);
        } else if constexpr (std::is_same_v<T, BrokerStateFrame>) {
          put_i32(out, f.broker);
          put_bool(out, f.up);
        } else if constexpr (std::is_same_v<T, ConfigFrame>) {
          put_string(out, f.text);
        } else if constexpr (std::is_same_v<T, PortsFrame>) {
          if (f.ports.size() > kMaxPorts) {
            throw WireError("wire: too many ports");
          }
          put_u32(out, static_cast<std::uint32_t>(f.ports.size()));
          for (const std::uint16_t port : f.ports) put_u16(out, port);
        } else if constexpr (std::is_same_v<T, PortReplyFrame>) {
          put_u32(out, f.shard);
          put_u16(out, f.port);
        } else if constexpr (std::is_same_v<T, StatusReplyFrame>) {
          put_u32(out, f.shard);
          put_u64(out, f.outstanding);
          put_u64(out, f.forwards_sent);
          put_u64(out, f.forwards_received);
          put_u64(out, f.receptions);
          put_u64(out, f.deliveries);
          put_u64(out, f.purged);
          put_u64(out, f.lost);
          put_u64(out, f.published);
          put_bool(out, f.driver_done);
        } else if constexpr (std::is_same_v<T, DeliveryFrame>) {
          put_i32(out, f.subscriber);
          put_i64(out, f.message);
          put_f64(out, f.delay);
          put_bool(out, f.valid);
          put_f64(out, f.price);
        } else if constexpr (std::is_same_v<T, SummaryFrame>) {
          put_u32(out, f.shard);
          put_u64(out, f.delivery_count);
          put_u64(out, f.receptions);
          put_u64(out, f.purged);
          put_u64(out, f.lost);
          put_u64(out, f.published);
          put_f64(out, f.earning);
        } else if constexpr (std::is_same_v<T, ErrorFrame>) {
          put_string(out, f.what);
        } else {
          // kStart / kStatus / kDump / kShutdown: empty payloads.
          static_assert(std::is_same_v<T, StartFrame> ||
                        std::is_same_v<T, StatusFrame> ||
                        std::is_same_v<T, DumpFrame> ||
                        std::is_same_v<T, ShutdownFrame>);
        }
      },
      frame.payload);
}

FramePayload parse_payload(FrameType type, Reader& r) {
  switch (type) {
    case FrameType::kHello: {
      HelloFrame f;
      f.shard = r.u32();
      f.shard_count = r.u32();
      const std::uint8_t role = r.u8();
      if (role > static_cast<std::uint8_t>(PeerRole::kController)) {
        throw WireError("wire: bad hello role");
      }
      f.role = static_cast<PeerRole>(role);
      return f;
    }
    case FrameType::kForward: {
      ForwardFrame f;
      f.seq = r.u64();
      f.target = r.i32();
      f.message = read_message(r);
      return f;
    }
    case FrameType::kAck:
      return AckFrame{r.u64()};
    case FrameType::kSubscribe: {
      SubscribeFrame f;
      f.subscriber = r.i32();
      f.home = r.i32();
      f.allowed_delay = r.f64();
      f.price = r.f64();
      f.filter = read_filter(r);
      return f;
    }
    case FrameType::kLinkState: {
      LinkStateFrame f;
      f.edge = r.i32();
      f.up = r.boolean();
      return f;
    }
    case FrameType::kBrokerState: {
      BrokerStateFrame f;
      f.broker = r.i32();
      f.up = r.boolean();
      return f;
    }
    case FrameType::kConfig:
      return ConfigFrame{r.string()};
    case FrameType::kPorts: {
      const std::uint32_t count = r.u32();
      if (count > kMaxPorts) throw WireError("wire: too many ports");
      PortsFrame f;
      f.ports.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) f.ports.push_back(r.u16());
      return f;
    }
    case FrameType::kPortReply: {
      PortReplyFrame f;
      f.shard = r.u32();
      f.port = r.u16();
      return f;
    }
    case FrameType::kStart:
      return StartFrame{};
    case FrameType::kStatus:
      return StatusFrame{};
    case FrameType::kStatusReply: {
      StatusReplyFrame f;
      f.shard = r.u32();
      f.outstanding = r.u64();
      f.forwards_sent = r.u64();
      f.forwards_received = r.u64();
      f.receptions = r.u64();
      f.deliveries = r.u64();
      f.purged = r.u64();
      f.lost = r.u64();
      f.published = r.u64();
      f.driver_done = r.boolean();
      return f;
    }
    case FrameType::kDump:
      return DumpFrame{};
    case FrameType::kDelivery: {
      DeliveryFrame f;
      f.subscriber = r.i32();
      f.message = r.i64();
      f.delay = r.f64();
      f.valid = r.boolean();
      f.price = r.f64();
      return f;
    }
    case FrameType::kSummary: {
      SummaryFrame f;
      f.shard = r.u32();
      f.delivery_count = r.u64();
      f.receptions = r.u64();
      f.purged = r.u64();
      f.lost = r.u64();
      f.published = r.u64();
      f.earning = r.f64();
      return f;
    }
    case FrameType::kShutdown:
      return ShutdownFrame{};
    case FrameType::kError:
      return ErrorFrame{r.string()};
  }
  throw WireError("wire: unknown frame type");
}

}  // namespace

bool ForwardFrame::operator==(const ForwardFrame& other) const {
  return seq == other.seq && target == other.target &&
         message_equal(message, other.message);
}

bool SubscribeFrame::operator==(const SubscribeFrame& other) const {
  return subscriber == other.subscriber && home == other.home &&
         f64_equal(allowed_delay, other.allowed_delay) &&
         f64_equal(price, other.price) && filter_equal(filter, other.filter);
}

bool DeliveryFrame::operator==(const DeliveryFrame& other) const {
  return subscriber == other.subscriber && message == other.message &&
         f64_equal(delay, other.delay) && valid == other.valid &&
         f64_equal(price, other.price);
}

FrameType Frame::type() const {
  // FramePayload's alternative order mirrors the FrameType numbering
  // (kHello = 1 is index 0, ..., kError = 17 is index 16); the static
  // asserts pin the correspondence so a reordered variant cannot silently
  // mislabel frames.
  static_assert(std::is_same_v<std::variant_alternative_t<0, FramePayload>,
                               HelloFrame>);
  static_assert(std::is_same_v<
                std::variant_alternative_t<
                    static_cast<std::size_t>(FrameType::kError) - 1,
                    FramePayload>,
                ErrorFrame>);
  return static_cast<FrameType>(payload.index() + 1);
}

void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out) {
  const std::size_t header_at = out.size();
  out.resize(out.size() + kWireHeaderBytes);
  const std::size_t payload_at = out.size();
  encode_payload(frame, out);
  const std::size_t payload_len = out.size() - payload_at;
  if (payload_len > kMaxFrameBytes) throw WireError("wire: frame too large");
  std::uint8_t* h = out.data() + header_at;
  const std::uint32_t len = static_cast<std::uint32_t>(payload_len);
  for (int i = 0; i < 4; ++i) h[i] = static_cast<std::uint8_t>(len >> (8 * i));
  h[4] = kWireVersion;
  h[5] = static_cast<std::uint8_t>(frame.type());
  h[6] = 0;
  h[7] = 0;
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  encode_frame(frame, out);
  return out;
}

Frame parse_frame(const std::uint8_t* data, std::size_t size) {
  if (size < kWireHeaderBytes) throw WireError("wire: truncated header");
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(data[i]) << (8 * i);
  }
  if (len > kMaxFrameBytes) throw WireError("wire: frame too large");
  if (data[4] != kWireVersion) throw WireError("wire: bad version");
  if (data[6] != 0 || data[7] != 0) throw WireError("wire: bad reserved");
  const std::uint8_t type = data[5];
  if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > static_cast<std::uint8_t>(FrameType::kError)) {
    throw WireError("wire: unknown frame type");
  }
  if (size != kWireHeaderBytes + len) {
    throw WireError(size < kWireHeaderBytes + len ? "wire: truncated payload"
                                                  : "wire: trailing bytes");
  }
  Reader r(data + kWireHeaderBytes, len);
  Frame frame{parse_payload(static_cast<FrameType>(type), r)};
  r.expect_done();
  return frame;
}

void FrameAssembler::feed(const std::uint8_t* data, std::size_t size) {
  // Compact lazily: drop consumed prefix once it dominates the buffer.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<Frame> FrameAssembler::next() {
  if (poisoned_) throw WireError("wire: assembler poisoned");
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kWireHeaderBytes) return std::nullopt;
  const std::uint8_t* head = buffer_.data() + consumed_;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(head[i]) << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    poisoned_ = true;
    throw WireError("wire: frame too large");
  }
  if (avail < kWireHeaderBytes + len) return std::nullopt;
  try {
    Frame frame = parse_frame(head, kWireHeaderBytes + len);
    consumed_ += kWireHeaderBytes + len;
    return frame;
  } catch (const WireError&) {
    poisoned_ = true;
    throw;
  }
}

}  // namespace bdps
