// Thin epoll wrapper: the readiness loop behind NetEndpoint.
//
// One Poller per transport thread.  Registered fds carry a caller-chosen
// u64 key (an index into the endpoint's connection table); wait() decodes
// epoll events into (key, readable, writable, hangup) records.  WakeFd is
// the cross-thread doorbell — an eventfd registered like any other fd, so
// commands queued by reactor workers interrupt an idle epoll_wait without
// a pipe pair or signal games.
#pragma once

#include <cstdint>
#include <vector>

namespace bdps {

class Poller {
 public:
  Poller();
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  void add(int fd, std::uint64_t key, bool want_read, bool want_write);
  void modify(int fd, std::uint64_t key, bool want_read, bool want_write);
  void remove(int fd);

  struct Event {
    std::uint64_t key = 0;
    bool readable = false;
    bool writable = false;
    bool hangup = false;
  };

  /// Blocks up to `timeout_ms` (-1 = indefinitely) and appends ready
  /// events to `out` (cleared first).
  void wait(int timeout_ms, std::vector<Event>& out);

 private:
  int epoll_fd_ = -1;
};

/// eventfd doorbell: signal() from any thread, drain() on the poller
/// thread once its readable event fires.
class WakeFd {
 public:
  WakeFd();
  ~WakeFd();

  WakeFd(const WakeFd&) = delete;
  WakeFd& operator=(const WakeFd&) = delete;

  int fd() const { return fd_; }
  void signal();
  void drain();

 private:
  int fd_ = -1;
};

}  // namespace bdps
