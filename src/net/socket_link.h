// Non-blocking TCP primitives for the broker overlay.
//
// TcpListener binds an IPv4 address (127.0.0.1 and an ephemeral port by
// default; pass a dotted-quad literal to bind a real interface) and accepts
// non-blocking connections.  SocketLink is one connection's state: the Tx
// half is the reactor's TxAwaitWritable state in socket form — writes go
// into an outbound buffer, flush() pushes until EAGAIN, and wants_write()
// tells the poller when EPOLLOUT interest is needed; the Rx half reads
// into a scratch buffer that feeds a FrameAssembler (incremental frame
// reassembly across arbitrary read boundaries).
//
// BlockingConn is the control-plane counterpart: tools/brokerd's
// controller <-> daemon exchanges are strictly request/reply at human
// cadence, so plain blocking send/receive with the same wire format keeps
// that code free of readiness bookkeeping.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "net/wire.h"

namespace bdps {

/// Sets O_NONBLOCK; throws std::runtime_error on failure.
void make_nonblocking(int fd);

class TcpListener {
 public:
  /// Binds and listens on `bind_host`:`port` (0 = ephemeral; an empty
  /// host = 127.0.0.1, "0.0.0.0" = all interfaces).  Throws
  /// std::runtime_error on bind failure (port in use, no sockets) or a
  /// host that is not an IPv4 literal.
  explicit TcpListener(std::uint16_t port = 0,
                       const std::string& bind_host = {});
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  int fd() const { return fd_; }
  std::uint16_t port() const { return port_; }

  /// Accepts one pending connection (returned fd is non-blocking and
  /// cloexec); -1 when none is pending.
  int accept_connection();

  void close_now();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Tx side of a non-blocking connection (mirrors the reactor's Tx state
/// machine vocabulary: kIdle = buffer empty, kAwaitWritable = partial
/// write parked on EPOLLOUT).
enum class SocketTxState { kIdle, kAwaitWritable };

class SocketLink {
 public:
  SocketLink() = default;
  ~SocketLink() { close_now(); }

  SocketLink(SocketLink&& other) noexcept;
  SocketLink& operator=(SocketLink&& other) noexcept;
  SocketLink(const SocketLink&) = delete;
  SocketLink& operator=(const SocketLink&) = delete;

  /// Starts a non-blocking connect to `host`:`port` (empty host =
  /// 127.0.0.1).  The link is then `connecting` until the poller reports
  /// writability and finish_connect() confirms; throws std::runtime_error
  /// only when no socket can be created at all or the host is not an IPv4
  /// literal.
  void dial(std::uint16_t port, const std::string& host = {});

  /// Adopts an accepted fd (already non-blocking).
  void adopt(int fd);

  int fd() const { return fd_; }
  bool open() const { return fd_ >= 0 && !connecting_; }
  bool connecting() const { return fd_ >= 0 && connecting_; }
  bool closed() const { return fd_ < 0; }

  /// Resolves a pending non-blocking connect after EPOLLOUT: true when
  /// established; false closes the link (connection refused, ...).
  bool finish_connect();

  /// Queues bytes for transmission (no syscall; call flush()).
  void send(const std::uint8_t* data, std::size_t size);
  void send(const std::vector<std::uint8_t>& bytes) {
    send(bytes.data(), bytes.size());
  }

  /// Writes buffered bytes until EAGAIN or empty.  False = fatal error;
  /// the link is closed.
  bool flush();

  /// Reads whatever is available into the assembler.  False = EOF or
  /// fatal error; the link is closed.  Complete frames are drained by the
  /// caller via `assembler.next()`.
  bool read_into(FrameAssembler& assembler);

  SocketTxState tx_state() const {
    return buffer_.empty() ? SocketTxState::kIdle
                           : SocketTxState::kAwaitWritable;
  }
  bool wants_write() const { return connecting() || !buffer_.empty(); }
  std::size_t buffered_bytes() const { return buffer_.size() - offset_; }

  void close_now();

 private:
  int fd_ = -1;
  bool connecting_ = false;
  /// Outbound bytes not yet accepted by the kernel; `offset_` marks the
  /// partial-write position (compacted lazily).
  std::vector<std::uint8_t> buffer_;
  std::size_t offset_ = 0;
};

/// Blocking control-plane connection (see header comment).
class BlockingConn {
 public:
  BlockingConn() = default;
  explicit BlockingConn(int fd) : fd_(fd) {}
  ~BlockingConn() { close_now(); }

  BlockingConn(BlockingConn&& other) noexcept;
  BlockingConn& operator=(BlockingConn&& other) noexcept;
  BlockingConn(const BlockingConn&) = delete;
  BlockingConn& operator=(const BlockingConn&) = delete;

  /// Blocking connect to `host`:`port` (empty host = 127.0.0.1); false on
  /// failure, including a host that is not an IPv4 literal.
  bool dial(std::uint16_t port, const std::string& host = {});

  bool open() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends one frame fully; false on any error (connection closed).
  bool send_frame(const Frame& frame);

  /// Receives the next frame; nullopt on EOF/error.  Throws WireError on a
  /// malformed stream.
  std::optional<Frame> recv_frame();

  void close_now();

 private:
  int fd_ = -1;
  FrameAssembler assembler_;
  std::vector<std::uint8_t> scratch_;
};

}  // namespace bdps
