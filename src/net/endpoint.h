// NetEndpoint: the data-plane trunk transport of one overlay shard.
//
// Shards are fully meshed: every shard dials every other shard's trunk
// listener, and the two directions of a shard pair are *independent*
// connections — a dialed trunk carries only this shard's output (kHello,
// kForward copies, kAck receipts for traffic received *from* that peer),
// an accepted trunk is read-only.  One epoll thread owns all sockets;
// reactor workers hand copies over with forward_remote(), which stages
// bytes under a mutex and rings an eventfd doorbell.
//
// Reliability is a per-trunk cumulative-ack window.  Each kForward gets a
// monotonic sequence number (from 1); the encoded bytes stay in an
// `unacked` deque until the peer's cumulative kAck covers them, and a
// reconnect replays the whole deque in order after kHello (the receiver
// dedups via its last-seen seq — TCP FIFO plus in-order replay keep the
// stream contiguous).  Dropped trunks redial with capped exponential
// backoff; every up/down transition of *our* dialed trunk is surfaced
// through on_peer_state so the owner can drive set_link_state for the cut
// edges served by that trunk (fault-storm replay forces real disconnects
// through drop_peer and the same path heals them).
//
// Outstanding-copy accounting transfers ownership, it never gaps: a true
// return from forward_remote means the endpoint holds the sender's
// outstanding increment until the covering ack arrives (on_acked(n) hands
// it back), while the receiving shard increments *before* its ack is
// sent.  Summed over shards, outstanding therefore never transiently hits
// zero while a copy is in flight — sum(outstanding) == 0 across a stable
// re-poll is a rigorous cluster-drain barrier.  stop() returns the number
// of still-unacked copies so the caller can settle them as losses.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "message/message.h"
#include "net/poller.h"
#include "net/socket_link.h"
#include "net/wire.h"

namespace bdps {

struct NetEndpointOptions {
  int shard = 0;
  int shard_count = 1;
  /// First redial delay after a trunk drops; doubles per failed attempt.
  double reconnect_initial_ms = 5.0;
  /// Backoff ceiling.
  double reconnect_max_ms = 250.0;
  /// IPv4 literal the trunk listener binds ("" = 127.0.0.1, "0.0.0.0" =
  /// all interfaces).  Name resolution stays outside the data plane.
  std::string bind_host;
  /// IPv4 literal dialed per peer shard, indexed by shard id; missing or
  /// empty entries keep the loopback default (single-host deployments).
  std::vector<std::string> peer_hosts;
};

class NetEndpoint {
 public:
  /// `on_forward(target, message)` runs on the net thread for every newly
  /// deposited copy and MUST increment the owner's outstanding count
  /// before returning (the ack that licenses the sender's decrement is
  /// sent after the whole read batch).  `on_acked(n)` releases n
  /// sender-side outstanding increments.  `on_peer_state(peer, up)`
  /// reports dialed-trunk transitions.
  using ForwardHandler = std::function<void(BrokerId, const Message&)>;
  using AckHandler = std::function<void(std::uint64_t)>;
  using PeerStateHandler = std::function<void(int, bool)>;

  /// Binds the trunk listener (ephemeral port on options.bind_host,
  /// loopback by default; port() is valid immediately).  The net thread
  /// starts in connect().
  NetEndpoint(const NetEndpointOptions& options, ForwardHandler on_forward,
              AckHandler on_acked, PeerStateHandler on_peer_state);
  ~NetEndpoint();

  NetEndpoint(const NetEndpoint&) = delete;
  NetEndpoint& operator=(const NetEndpoint&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Starts the net thread and dials every other shard.  `ports` is
  /// indexed by shard id (our own entry is ignored); each dial targets
  /// options.peer_hosts[shard] when set, loopback otherwise.
  void connect(const std::vector<std::uint16_t>& ports);

  /// Blocks until every dialed trunk is up (or the deadline passes).
  bool wait_connected(std::chrono::milliseconds timeout);

  /// Hands one copy to the transport (any thread).  True: the endpoint
  /// now owns the caller's outstanding increment (released via on_acked
  /// or counted into stop()'s return).  False: the endpoint is stopped —
  /// the caller keeps ownership and must settle the copy itself.
  bool forward_remote(int peer, BrokerId target,
                      const std::shared_ptr<const Message>& message);

  /// Fault injection: closes our dialed trunk to `peer` (a real TCP
  /// disconnect; on_peer_state(peer, false) fires on the net thread) and
  /// lets the normal backoff schedule heal it.
  void drop_peer(int peer);

  /// Stops the net thread and returns the number of forwards never
  /// covered by an ack — copies the cluster must count as lost.
  /// Idempotent; later calls return 0.
  std::uint64_t stop();

  std::uint64_t forwards_sent() const {
    return forwards_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t forwards_received() const {
    return forwards_received_.load(std::memory_order_relaxed);
  }
  std::uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  /// Forwards currently awaiting a cumulative ack (diagnostic).
  std::uint64_t unacked_total() const;

 private:
  struct PeerTx {
    std::uint64_t next_seq = 1;
    std::uint64_t acked_through = 0;
    /// (seq, encoded kForward) awaiting the peer's cumulative ack.
    std::deque<std::pair<std::uint64_t, std::vector<std::uint8_t>>> unacked;
    /// Encoded frames staged by forward_remote but not yet handed to the
    /// socket (always a suffix of `unacked`).
    std::vector<std::uint8_t> staged;
  };

  struct Peer {
    SocketLink dial;
    FrameAssembler dial_assembler;
    SocketLink in;
    FrameAssembler in_assembler;
    std::uint16_t dial_port = 0;
    std::string dial_host;
    std::uint64_t last_seq_from = 0;
    double backoff_ms = 0.0;
    bool reconnect_pending = false;
    std::chrono::steady_clock::time_point reconnect_at{};
  };

  struct Pending {
    std::unique_ptr<SocketLink> link;
    FrameAssembler assembler;
  };

  void net_loop();
  void start_dial(int peer);
  void on_dial_established(int peer);
  void handle_dial_down(int peer);
  void schedule_reconnect(int peer);
  void handle_dial_event(int peer, const Poller::Event& event);
  void handle_in_event(int peer, const Poller::Event& event);
  void handle_pending_event(std::uint64_t id, const Poller::Event& event);
  void process_inbound(int peer, FrameAssembler& assembler);
  void accept_ready();
  void drain_staged();
  void flush_peer(int peer);
  void apply_commands();
  int poll_timeout_ms() const;

  NetEndpointOptions options_;
  ForwardHandler on_forward_;
  AckHandler on_acked_;
  PeerStateHandler on_peer_state_;

  TcpListener listener_;
  Poller poller_;
  WakeFd wake_;

  /// Net-thread-only connection state, indexed by shard id.
  std::vector<Peer> peers_;
  std::uint64_t next_pending_id_ = 0;
  std::vector<std::pair<std::uint64_t, Pending>> pending_;

  /// Shared Tx state (forward_remote callers + net thread).
  mutable std::mutex tx_mutex_;
  std::vector<PeerTx> tx_;
  bool stopped_ = false;

  /// Peers whose dialed trunk should be force-dropped (net thread drains).
  std::mutex command_mutex_;
  std::vector<int> drop_requests_;

  std::atomic<bool> stop_requested_{false};
  std::atomic<int> connected_count_{0};
  std::atomic<std::uint64_t> forwards_sent_{0};
  std::atomic<std::uint64_t> forwards_received_{0};
  std::atomic<std::uint64_t> reconnects_{0};

  std::thread thread_;
  bool joined_ = false;
};

}  // namespace bdps
