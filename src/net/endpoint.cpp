#include "net/endpoint.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace bdps {

namespace {

constexpr std::uint64_t kKeyWake = 0;
constexpr std::uint64_t kKeyListener = 1;
constexpr std::uint64_t kKeyDial = 2;
constexpr std::uint64_t kKeyIn = 3;
constexpr std::uint64_t kKeyPending = 4;

std::uint64_t make_key(std::uint64_t kind, std::uint64_t index) {
  return (kind << 32) | index;
}

}  // namespace

NetEndpoint::NetEndpoint(const NetEndpointOptions& options,
                         ForwardHandler on_forward, AckHandler on_acked,
                         PeerStateHandler on_peer_state)
    : options_(options),
      on_forward_(std::move(on_forward)),
      on_acked_(std::move(on_acked)),
      on_peer_state_(std::move(on_peer_state)),
      listener_(0, options.bind_host) {
  peers_.resize(static_cast<std::size_t>(options_.shard_count));
  tx_.resize(static_cast<std::size_t>(options_.shard_count));
  poller_.add(wake_.fd(), make_key(kKeyWake, 0), true, false);
  poller_.add(listener_.fd(), make_key(kKeyListener, 0), true, false);
}

NetEndpoint::~NetEndpoint() { stop(); }

void NetEndpoint::connect(const std::vector<std::uint16_t>& ports) {
  if (thread_.joinable()) return;
  const auto now = std::chrono::steady_clock::now();
  for (int peer = 0; peer < options_.shard_count; ++peer) {
    if (peer == options_.shard) continue;
    Peer& p = peers_[static_cast<std::size_t>(peer)];
    p.dial_port = peer < static_cast<int>(ports.size())
                      ? ports[static_cast<std::size_t>(peer)]
                      : 0;
    p.dial_host = peer < static_cast<int>(options_.peer_hosts.size())
                      ? options_.peer_hosts[static_cast<std::size_t>(peer)]
                      : std::string{};
    p.reconnect_pending = true;
    p.reconnect_at = now;
  }
  thread_ = std::thread([this] { net_loop(); });
}

bool NetEndpoint::wait_connected(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  const int want = options_.shard_count - 1;
  while (connected_count_.load(std::memory_order_acquire) < want) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

bool NetEndpoint::forward_remote(int peer, BrokerId target,
                                 const std::shared_ptr<const Message>& message) {
  {
    std::lock_guard<std::mutex> lock(tx_mutex_);
    if (stopped_) return false;
    PeerTx& tx = tx_[static_cast<std::size_t>(peer)];
    ForwardFrame forward;
    forward.seq = tx.next_seq++;
    forward.target = target;
    forward.message = *message;
    std::vector<std::uint8_t> bytes = encode_frame(Frame{std::move(forward)});
    tx.staged.insert(tx.staged.end(), bytes.begin(), bytes.end());
    tx.unacked.emplace_back(tx.next_seq - 1, std::move(bytes));
  }
  forwards_sent_.fetch_add(1, std::memory_order_relaxed);
  wake_.signal();
  return true;
}

void NetEndpoint::drop_peer(int peer) {
  {
    std::lock_guard<std::mutex> lock(command_mutex_);
    drop_requests_.push_back(peer);
  }
  wake_.signal();
}

std::uint64_t NetEndpoint::stop() {
  bool first = false;
  {
    std::lock_guard<std::mutex> lock(tx_mutex_);
    first = !stopped_;
    stopped_ = true;
  }
  stop_requested_.store(true, std::memory_order_release);
  wake_.signal();
  if (thread_.joinable()) thread_.join();
  if (!first) return 0;
  std::uint64_t lost = 0;
  std::lock_guard<std::mutex> lock(tx_mutex_);
  for (const PeerTx& tx : tx_) lost += tx.unacked.size();
  return lost;
}

std::uint64_t NetEndpoint::unacked_total() const {
  std::lock_guard<std::mutex> lock(tx_mutex_);
  std::uint64_t total = 0;
  for (const PeerTx& tx : tx_) total += tx.unacked.size();
  return total;
}

void NetEndpoint::net_loop() {
  std::vector<Poller::Event> events;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    poller_.wait(poll_timeout_ms(), events);
    if (stop_requested_.load(std::memory_order_acquire)) break;
    for (const Poller::Event& event : events) {
      const std::uint64_t kind = event.key >> 32;
      const std::uint32_t index = static_cast<std::uint32_t>(event.key);
      switch (kind) {
        case kKeyWake:
          wake_.drain();
          break;
        case kKeyListener:
          accept_ready();
          break;
        case kKeyDial:
          handle_dial_event(static_cast<int>(index), event);
          break;
        case kKeyIn:
          handle_in_event(static_cast<int>(index), event);
          break;
        case kKeyPending:
          handle_pending_event(index, event);
          break;
        default:
          break;
      }
    }
    apply_commands();
    const auto now = std::chrono::steady_clock::now();
    for (int peer = 0; peer < options_.shard_count; ++peer) {
      Peer& p = peers_[static_cast<std::size_t>(peer)];
      if (p.reconnect_pending && now >= p.reconnect_at) {
        p.reconnect_pending = false;
        start_dial(peer);
      }
    }
    drain_staged();
  }
}

int NetEndpoint::poll_timeout_ms() const {
  bool any = false;
  auto earliest = std::chrono::steady_clock::time_point::max();
  for (const Peer& p : peers_) {
    if (p.reconnect_pending && p.reconnect_at < earliest) {
      earliest = p.reconnect_at;
      any = true;
    }
  }
  if (!any) return -1;
  const auto now = std::chrono::steady_clock::now();
  if (earliest <= now) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      earliest - now)
                      .count();
  return static_cast<int>(std::min<long long>(ms + 1, 1000));
}

void NetEndpoint::start_dial(int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  try {
    p.dial.dial(p.dial_port, p.dial_host);
  } catch (const std::exception&) {
    schedule_reconnect(peer);  // fd exhaustion / bad host literal: back off
    return;
  }
  if (p.dial.closed()) {  // synchronous refusal
    schedule_reconnect(peer);
    return;
  }
  poller_.add(p.dial.fd(), make_key(kKeyDial, static_cast<std::uint64_t>(peer)),
              true, p.dial.wants_write());
  if (p.dial.open()) on_dial_established(peer);
}

void NetEndpoint::on_dial_established(int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  p.backoff_ms = 0.0;
  HelloFrame hello;
  hello.shard = static_cast<std::uint32_t>(options_.shard);
  hello.shard_count = static_cast<std::uint32_t>(options_.shard_count);
  hello.role = PeerRole::kPeer;
  std::vector<std::uint8_t> bytes;
  encode_frame(Frame{hello}, bytes);
  // The first ack lets the peer trim its unacked window even if our
  // earlier acks died with the previous connection.
  encode_frame(Frame{AckFrame{p.last_seq_from}}, bytes);
  {
    std::lock_guard<std::mutex> lock(tx_mutex_);
    PeerTx& tx = tx_[static_cast<std::size_t>(peer)];
    for (const auto& [seq, encoded] : tx.unacked) {
      bytes.insert(bytes.end(), encoded.begin(), encoded.end());
    }
    // Everything unacked is now on the socket; staged is a suffix of
    // unacked, so clearing it prevents a duplicate send.
    tx.staged.clear();
  }
  p.dial.send(bytes);
  connected_count_.fetch_add(1, std::memory_order_release);
  if (on_peer_state_) on_peer_state_(peer, true);
  flush_peer(peer);
}

void NetEndpoint::handle_dial_down(int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  p.dial.close_now();
  p.dial_assembler = FrameAssembler{};
  {
    std::lock_guard<std::mutex> lock(tx_mutex_);
    // Staged bytes were never socketed; their frames survive in unacked
    // and ride the reconnect replay.
    tx_[static_cast<std::size_t>(peer)].staged.clear();
  }
  connected_count_.fetch_sub(1, std::memory_order_release);
  reconnects_.fetch_add(1, std::memory_order_relaxed);
  if (on_peer_state_) on_peer_state_(peer, false);
  schedule_reconnect(peer);
}

void NetEndpoint::schedule_reconnect(int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  p.backoff_ms = p.backoff_ms <= 0.0
                     ? options_.reconnect_initial_ms
                     : std::min(p.backoff_ms * 2.0, options_.reconnect_max_ms);
  p.reconnect_pending = true;
  p.reconnect_at =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(static_cast<long long>(p.backoff_ms * 1000.0));
}

void NetEndpoint::handle_dial_event(int peer, const Poller::Event& event) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.dial.closed()) return;  // stale event from this batch
  if (p.dial.connecting()) {
    if (event.writable || event.hangup) {
      if (p.dial.finish_connect()) {
        on_dial_established(peer);
      } else {
        schedule_reconnect(peer);  // refused: was never up, no state change
      }
    }
    return;
  }
  if (event.readable || event.hangup) {
    // The peer's accepted side is read-only; inbound traffic here can only
    // be EOF/RST (or protocol garbage, treated the same).
    if (!p.dial.read_into(p.dial_assembler)) {
      handle_dial_down(peer);
      return;
    }
    try {
      while (p.dial_assembler.next()) {
      }
    } catch (const WireError&) {
      handle_dial_down(peer);
      return;
    }
  }
  if (event.writable) flush_peer(peer);
}

void NetEndpoint::handle_in_event(int peer, const Poller::Event& event) {
  (void)event;
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.in.closed()) return;
  const bool alive = p.in.read_into(p.in_assembler);
  try {
    process_inbound(peer, p.in_assembler);
  } catch (const WireError&) {
    p.in.close_now();
    p.in_assembler = FrameAssembler{};
    return;
  }
  if (!alive) p.in_assembler = FrameAssembler{};
}

void NetEndpoint::handle_pending_event(std::uint64_t id,
                                       const Poller::Event& event) {
  (void)event;
  auto it = std::find_if(pending_.begin(), pending_.end(),
                         [id](const auto& entry) { return entry.first == id; });
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  if (!pending.link->read_into(pending.assembler)) {
    pending_.erase(it);
    return;
  }
  std::optional<Frame> frame;
  try {
    frame = pending.assembler.next();
  } catch (const WireError&) {
    pending_.erase(it);
    return;
  }
  if (!frame) return;  // need more bytes for the hello
  const HelloFrame* hello = std::get_if<HelloFrame>(&frame->payload);
  if (hello == nullptr || hello->role != PeerRole::kPeer ||
      static_cast<int>(hello->shard) >= options_.shard_count ||
      static_cast<int>(hello->shard) == options_.shard) {
    pending_.erase(it);
    return;
  }
  const int peer = static_cast<int>(hello->shard);
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  p.in.close_now();  // a reconnect replaces any previous inbound trunk
  p.in = std::move(*pending.link);
  p.in_assembler = std::move(pending.assembler);
  pending_.erase(it);
  poller_.modify(p.in.fd(), make_key(kKeyIn, static_cast<std::uint64_t>(peer)),
                 true, false);
  try {
    process_inbound(peer, p.in_assembler);  // frames buffered behind the hello
  } catch (const WireError&) {
    p.in.close_now();
    p.in_assembler = FrameAssembler{};
  }
}

void NetEndpoint::process_inbound(int peer, FrameAssembler& assembler) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  bool ack_due = false;
  while (std::optional<Frame> frame = assembler.next()) {
    if (const ForwardFrame* f = std::get_if<ForwardFrame>(&frame->payload)) {
      if (f->seq > p.last_seq_from) {
        p.last_seq_from = f->seq;
        forwards_received_.fetch_add(1, std::memory_order_relaxed);
        // The handler increments the owner's outstanding count before we
        // return and ack — the sender's decrement can never race a copy
        // that is not yet accounted for.
        if (on_forward_) on_forward_(f->target, f->message);
      }
      ack_due = true;  // even a replayed duplicate refreshes the ack
    } else if (const AckFrame* a = std::get_if<AckFrame>(&frame->payload)) {
      std::uint64_t delta = 0;
      {
        std::lock_guard<std::mutex> lock(tx_mutex_);
        PeerTx& tx = tx_[static_cast<std::size_t>(peer)];
        const std::uint64_t upto = std::min(a->seq, tx.next_seq - 1);
        if (upto > tx.acked_through) {
          delta = upto - tx.acked_through;
          tx.acked_through = upto;
          while (!tx.unacked.empty() && tx.unacked.front().first <= upto) {
            tx.unacked.pop_front();
          }
        }
      }
      if (delta > 0 && on_acked_) on_acked_(delta);
    }
    // Other frame types (redundant hellos, future control traffic) are
    // ignored on a data trunk.
  }
  if (ack_due && p.dial.open()) {
    std::vector<std::uint8_t> bytes;
    encode_frame(Frame{AckFrame{p.last_seq_from}}, bytes);
    p.dial.send(bytes);
    flush_peer(peer);
  }
}

void NetEndpoint::accept_ready() {
  for (;;) {
    const int fd = listener_.accept_connection();
    if (fd < 0) break;
    Pending pending;
    pending.link = std::make_unique<SocketLink>();
    pending.link->adopt(fd);
    const std::uint64_t id = next_pending_id_++;
    poller_.add(fd, make_key(kKeyPending, id), true, false);
    pending_.emplace_back(id, std::move(pending));
  }
}

void NetEndpoint::drain_staged() {
  for (int peer = 0; peer < options_.shard_count; ++peer) {
    if (peer == options_.shard) continue;
    Peer& p = peers_[static_cast<std::size_t>(peer)];
    if (!p.dial.open()) continue;
    bool touched = false;
    {
      std::lock_guard<std::mutex> lock(tx_mutex_);
      std::vector<std::uint8_t>& staged =
          tx_[static_cast<std::size_t>(peer)].staged;
      if (!staged.empty()) {
        p.dial.send(staged);
        staged.clear();
        touched = true;
      }
    }
    if (touched || p.dial.buffered_bytes() > 0) flush_peer(peer);
  }
}

void NetEndpoint::flush_peer(int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (!p.dial.open()) return;
  if (!p.dial.flush()) {
    handle_dial_down(peer);
    return;
  }
  poller_.modify(p.dial.fd(), make_key(kKeyDial, static_cast<std::uint64_t>(peer)),
                 true, p.dial.wants_write());
}

void NetEndpoint::apply_commands() {
  std::vector<int> drops;
  {
    std::lock_guard<std::mutex> lock(command_mutex_);
    drops.swap(drop_requests_);
  }
  for (const int peer : drops) {
    if (peer < 0 || peer >= options_.shard_count || peer == options_.shard) {
      continue;
    }
    Peer& p = peers_[static_cast<std::size_t>(peer)];
    if (p.dial.open()) {
      handle_dial_down(peer);
    } else if (p.dial.connecting()) {
      p.dial.close_now();
      schedule_reconnect(peer);
    }
    // Already down: a reconnect is pending, nothing to drop.
  }
}

}  // namespace bdps
