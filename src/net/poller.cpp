#include "net/poller.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace bdps {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

epoll_event make_event(std::uint64_t key, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u) |
              EPOLLRDHUP;
  ev.data.u64 = key;
  return ev;
}

}  // namespace

Poller::Poller() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

void Poller::add(int fd, std::uint64_t key, bool want_read, bool want_write) {
  epoll_event ev = make_event(key, want_read, want_write);
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(ADD)");
  }
}

void Poller::modify(int fd, std::uint64_t key, bool want_read,
                    bool want_write) {
  epoll_event ev = make_event(key, want_read, want_write);
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(MOD)");
  }
}

void Poller::remove(int fd) {
  // Ignore failures: the fd may already be closed (kernel auto-deregisters).
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void Poller::wait(int timeout_ms, std::vector<Event>& out) {
  out.clear();
  epoll_event events[64];
  const int n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return;
    throw_errno("epoll_wait");
  }
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Event e;
    e.key = events[i].data.u64;
    e.readable = (events[i].events & (EPOLLIN | EPOLLRDHUP)) != 0;
    e.writable = (events[i].events & EPOLLOUT) != 0;
    e.hangup = (events[i].events & (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) != 0;
    out.push_back(e);
  }
}

WakeFd::WakeFd() {
  fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (fd_ < 0) throw_errno("eventfd");
}

WakeFd::~WakeFd() {
  if (fd_ >= 0) close(fd_);
}

void WakeFd::signal() {
  const std::uint64_t one = 1;
  // A full counter (EAGAIN) still wakes the poller; other errors cannot
  // happen on a healthy eventfd.
  [[maybe_unused]] const ssize_t n = write(fd_, &one, sizeof(one));
}

void WakeFd::drain() {
  std::uint64_t value = 0;
  [[maybe_unused]] const ssize_t n = read(fd_, &value, sizeof(value));
}

}  // namespace bdps
