// Wire format for the distributed broker overlay.
//
// Every frame is an 8-byte little-endian header followed by a bounded
// payload:
//
//   offset  size  field
//   0       4     payload length (bytes after the header)
//   4       1     protocol version (kWireVersion)
//   5       1     frame type (FrameType)
//   6       2     reserved, must be zero
//
// Payload encoding is fixed-width little-endian integers plus
// length-prefixed strings.  Doubles travel as their raw IEEE-754 bit
// pattern (std::bit_cast), so scores, deadlines and publish instants are
// *bit-exact* across processes — the cross-process differential gates
// compare delivery sets produced from these numbers, and a shortest
// round-trip-decimal detour would already be unacceptable drift.
// kNoDeadline (infinity) survives unchanged for the same reason.
//
// The vocabulary covers the three planes of tools/brokerd:
//   * data      — kForward (a publication copy crossing a cut edge, with a
//                 per-trunk sequence number), kAck (cumulative receipt),
//                 kSubscribe (dynamic membership, reserved: the fabric is
//                 static configuration today but the frame round-trips);
//   * fault     — kLinkState / kBrokerState (replayed storm transitions);
//   * control   — kHello, kConfig, kPorts/kPortReply, kStart,
//                 kStatus/kStatusReply, kDump/kDelivery/kSummary,
//                 kShutdown, kError.
//
// parse_frame(encode_frame(f)) == f for every well-formed frame (the fuzz
// suite in tests/net/wire_test.cpp feeds truncations, oversizes, bad
// versions and arbitrary split points); malformed input throws WireError,
// never reads out of bounds, and never allocates more than kMaxFrameBytes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "common/types.h"
#include "message/filter.h"
#include "message/message.h"

namespace bdps {

inline constexpr std::uint8_t kWireVersion = 1;
/// Header size in bytes.
inline constexpr std::size_t kWireHeaderBytes = 8;
/// Upper bound on a frame payload: large enough for any config/fault-plan
/// text or message head this system generates, small enough that a
/// corrupted length field cannot ask for gigabytes.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;
/// Caps on repeated substructures (validated before allocation).
inline constexpr std::size_t kMaxAttributes = 4096;
inline constexpr std::size_t kMaxPredicates = 4096;
inline constexpr std::size_t kMaxPorts = 4096;

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

enum class FrameType : std::uint8_t {
  kHello = 1,
  kForward = 2,
  kAck = 3,
  kSubscribe = 4,
  kLinkState = 5,
  kBrokerState = 6,
  kConfig = 7,
  kPorts = 8,
  kPortReply = 9,
  kStart = 10,
  kStatus = 11,
  kStatusReply = 12,
  kDump = 13,
  kDelivery = 14,
  kSummary = 15,
  kShutdown = 16,
  kError = 17,
};

/// Who is on the other end of an accepted connection.
enum class PeerRole : std::uint8_t { kPeer = 0, kController = 1 };

struct HelloFrame {
  std::uint32_t shard = 0;
  std::uint32_t shard_count = 1;
  PeerRole role = PeerRole::kPeer;
  bool operator==(const HelloFrame&) const = default;
};

/// One publication copy crossing a trunk.  `seq` is the per-trunk
/// monotonic sequence number (starting at 1) the ack/resend protocol runs
/// on; `target` is the downstream broker the copy is deposited at.
struct ForwardFrame {
  std::uint64_t seq = 0;
  BrokerId target = kNoBroker;
  Message message;
  bool operator==(const ForwardFrame& other) const;
};

/// Cumulative receipt: every kForward with seq <= `seq` has been deposited.
struct AckFrame {
  std::uint64_t seq = 0;
  bool operator==(const AckFrame&) const = default;
};

/// Dynamic membership (reserved): a subscription joining at runtime.  The
/// filter is encoded structurally (predicate list, operands bit-exact) —
/// the text syntax renders doubles at stream precision and would not
/// round-trip.
struct SubscribeFrame {
  SubscriberId subscriber = 0;
  BrokerId home = kNoBroker;
  TimeMs allowed_delay = kNoDeadline;
  double price = 1.0;
  Filter filter;
  bool operator==(const SubscribeFrame& other) const;
};

struct LinkStateFrame {
  EdgeId edge = kNoEdge;
  bool up = false;
  bool operator==(const LinkStateFrame&) const = default;
};

struct BrokerStateFrame {
  BrokerId broker = kNoBroker;
  bool up = false;
  bool operator==(const BrokerStateFrame&) const = default;
};

/// The serialized run description (experiment/live.h format_live_config).
struct ConfigFrame {
  std::string text;
  bool operator==(const ConfigFrame&) const = default;
};

/// Trunk listen ports of every shard, indexed by shard id.
struct PortsFrame {
  std::vector<std::uint16_t> ports;
  bool operator==(const PortsFrame&) const = default;
};

struct PortReplyFrame {
  std::uint32_t shard = 0;
  std::uint16_t port = 0;
  bool operator==(const PortReplyFrame&) const = default;
};

struct StartFrame {
  bool operator==(const StartFrame&) const = default;
};

struct StatusFrame {
  bool operator==(const StatusFrame&) const = default;
};

/// One shard's liveness sample: the controller declares the cluster
/// quiescent when every shard reports driver_done and outstanding == 0
/// across two stable polls.
struct StatusReplyFrame {
  std::uint32_t shard = 0;
  std::uint64_t outstanding = 0;
  std::uint64_t forwards_sent = 0;
  std::uint64_t forwards_received = 0;
  std::uint64_t receptions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t purged = 0;
  std::uint64_t lost = 0;
  std::uint64_t published = 0;
  bool driver_done = false;
  bool operator==(const StatusReplyFrame&) const = default;
};

struct DumpFrame {
  bool operator==(const DumpFrame&) const = default;
};

/// One delivery record streamed in response to kDump.
struct DeliveryFrame {
  SubscriberId subscriber = 0;
  MessageId message = 0;
  TimeMs delay = 0.0;
  bool valid = false;
  double price = 0.0;
  bool operator==(const DeliveryFrame& other) const;
};

/// Terminates a kDump stream; `delivery_count` must equal the number of
/// kDelivery frames that preceded it.
struct SummaryFrame {
  std::uint32_t shard = 0;
  std::uint64_t delivery_count = 0;
  std::uint64_t receptions = 0;
  std::uint64_t purged = 0;
  std::uint64_t lost = 0;
  std::uint64_t published = 0;
  double earning = 0.0;
  bool operator==(const SummaryFrame&) const = default;
};

struct ShutdownFrame {
  bool operator==(const ShutdownFrame&) const = default;
};

struct ErrorFrame {
  std::string what;
  bool operator==(const ErrorFrame&) const = default;
};

using FramePayload =
    std::variant<HelloFrame, ForwardFrame, AckFrame, SubscribeFrame,
                 LinkStateFrame, BrokerStateFrame, ConfigFrame, PortsFrame,
                 PortReplyFrame, StartFrame, StatusFrame, StatusReplyFrame,
                 DumpFrame, DeliveryFrame, SummaryFrame, ShutdownFrame,
                 ErrorFrame>;

struct Frame {
  FramePayload payload;
  FrameType type() const;
  bool operator==(const Frame&) const = default;

  template <typename T>
  const T& as() const {
    const T* p = std::get_if<T>(&payload);
    if (p == nullptr) throw WireError("wire: unexpected frame type");
    return *p;
  }
  template <typename T>
  bool is() const {
    return std::holds_alternative<T>(payload);
  }
};

/// Appends the framed encoding (header + payload) to `out`.
void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out);

/// Convenience: encode into a fresh buffer.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Parses exactly one frame from `data` (header included).  Throws
/// WireError on truncation, trailing bytes, bad version/type, or any
/// malformed payload.
Frame parse_frame(const std::uint8_t* data, std::size_t size);

/// Incremental frame reassembly over an arbitrary byte stream: feed
/// whatever a socket read returned, then drain complete frames with
/// next().  Malformed input (bad version, oversized length, payload that
/// fails to parse) throws WireError from next(); the assembler is then
/// poisoned and every later call rethrows — a transport must drop the
/// connection, there is no way to resynchronise a corrupt length-prefixed
/// stream.
class FrameAssembler {
 public:
  void feed(const std::uint8_t* data, std::size_t size);

  /// Returns the next complete frame, or nullopt when more bytes are
  /// needed.
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  bool poisoned_ = false;
};

}  // namespace bdps
